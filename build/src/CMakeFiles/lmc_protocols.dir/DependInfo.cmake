
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/election.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/election.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/election.cpp.o.d"
  "/root/repo/src/protocols/onepaxos.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/onepaxos.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/onepaxos.cpp.o.d"
  "/root/repo/src/protocols/paxos.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos.cpp.o.d"
  "/root/repo/src/protocols/paxos_core.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos_core.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos_core.cpp.o.d"
  "/root/repo/src/protocols/paxos_utility.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos_utility.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/paxos_utility.cpp.o.d"
  "/root/repo/src/protocols/randtree.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/randtree.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/randtree.cpp.o.d"
  "/root/repo/src/protocols/tree.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/tree.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/tree.cpp.o.d"
  "/root/repo/src/protocols/twophase.cpp" "src/CMakeFiles/lmc_protocols.dir/protocols/twophase.cpp.o" "gcc" "src/CMakeFiles/lmc_protocols.dir/protocols/twophase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lmc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lmc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
