file(REMOVE_RECURSE
  "liblmc_protocols.a"
)
