# Empty compiler generated dependencies file for lmc_protocols.
# This may be replaced when dependencies are built.
