file(REMOVE_RECURSE
  "CMakeFiles/lmc_protocols.dir/protocols/election.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/election.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/onepaxos.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/onepaxos.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos_core.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos_core.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos_utility.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/paxos_utility.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/randtree.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/randtree.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/tree.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/tree.cpp.o.d"
  "CMakeFiles/lmc_protocols.dir/protocols/twophase.cpp.o"
  "CMakeFiles/lmc_protocols.dir/protocols/twophase.cpp.o.d"
  "liblmc_protocols.a"
  "liblmc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
