file(REMOVE_RECURSE
  "liblmc_online.a"
)
