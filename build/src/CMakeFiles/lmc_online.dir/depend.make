# Empty dependencies file for lmc_online.
# This may be replaced when dependencies are built.
