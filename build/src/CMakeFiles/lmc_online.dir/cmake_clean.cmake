file(REMOVE_RECURSE
  "CMakeFiles/lmc_online.dir/online/crystalball.cpp.o"
  "CMakeFiles/lmc_online.dir/online/crystalball.cpp.o.d"
  "CMakeFiles/lmc_online.dir/online/live_runner.cpp.o"
  "CMakeFiles/lmc_online.dir/online/live_runner.cpp.o.d"
  "CMakeFiles/lmc_online.dir/online/snapshot.cpp.o"
  "CMakeFiles/lmc_online.dir/online/snapshot.cpp.o.d"
  "liblmc_online.a"
  "liblmc_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmc_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
