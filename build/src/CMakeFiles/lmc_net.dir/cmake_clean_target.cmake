file(REMOVE_RECURSE
  "liblmc_net.a"
)
