file(REMOVE_RECURSE
  "CMakeFiles/lmc_net.dir/net/monotonic_network.cpp.o"
  "CMakeFiles/lmc_net.dir/net/monotonic_network.cpp.o.d"
  "CMakeFiles/lmc_net.dir/net/network.cpp.o"
  "CMakeFiles/lmc_net.dir/net/network.cpp.o.d"
  "CMakeFiles/lmc_net.dir/net/sim_transport.cpp.o"
  "CMakeFiles/lmc_net.dir/net/sim_transport.cpp.o.d"
  "liblmc_net.a"
  "liblmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
