# Empty dependencies file for lmc_net.
# This may be replaced when dependencies are built.
