# Empty compiler generated dependencies file for lmc_runtime.
# This may be replaced when dependencies are built.
