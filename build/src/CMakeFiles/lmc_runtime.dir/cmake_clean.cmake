file(REMOVE_RECURSE
  "CMakeFiles/lmc_runtime.dir/runtime/hash.cpp.o"
  "CMakeFiles/lmc_runtime.dir/runtime/hash.cpp.o.d"
  "CMakeFiles/lmc_runtime.dir/runtime/message.cpp.o"
  "CMakeFiles/lmc_runtime.dir/runtime/message.cpp.o.d"
  "CMakeFiles/lmc_runtime.dir/runtime/serialize.cpp.o"
  "CMakeFiles/lmc_runtime.dir/runtime/serialize.cpp.o.d"
  "CMakeFiles/lmc_runtime.dir/runtime/state_machine.cpp.o"
  "CMakeFiles/lmc_runtime.dir/runtime/state_machine.cpp.o.d"
  "liblmc_runtime.a"
  "liblmc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
