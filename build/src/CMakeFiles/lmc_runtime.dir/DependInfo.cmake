
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/hash.cpp" "src/CMakeFiles/lmc_runtime.dir/runtime/hash.cpp.o" "gcc" "src/CMakeFiles/lmc_runtime.dir/runtime/hash.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/lmc_runtime.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/lmc_runtime.dir/runtime/message.cpp.o.d"
  "/root/repo/src/runtime/serialize.cpp" "src/CMakeFiles/lmc_runtime.dir/runtime/serialize.cpp.o" "gcc" "src/CMakeFiles/lmc_runtime.dir/runtime/serialize.cpp.o.d"
  "/root/repo/src/runtime/state_machine.cpp" "src/CMakeFiles/lmc_runtime.dir/runtime/state_machine.cpp.o" "gcc" "src/CMakeFiles/lmc_runtime.dir/runtime/state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
