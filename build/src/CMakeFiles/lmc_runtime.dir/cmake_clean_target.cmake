file(REMOVE_RECURSE
  "liblmc_runtime.a"
)
