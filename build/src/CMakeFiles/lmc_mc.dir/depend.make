# Empty dependencies file for lmc_mc.
# This may be replaced when dependencies are built.
