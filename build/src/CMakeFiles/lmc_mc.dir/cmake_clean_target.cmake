file(REMOVE_RECURSE
  "liblmc_mc.a"
)
