file(REMOVE_RECURSE
  "CMakeFiles/lmc_mc.dir/mc/dot_export.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/dot_export.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/global_mc.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/global_mc.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/local_mc.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/local_mc.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/parallel_local_mc.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/parallel_local_mc.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/racing.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/racing.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/replay.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/replay.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/soundness.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/soundness.cpp.o.d"
  "CMakeFiles/lmc_mc.dir/mc/system_state.cpp.o"
  "CMakeFiles/lmc_mc.dir/mc/system_state.cpp.o.d"
  "liblmc_mc.a"
  "liblmc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
