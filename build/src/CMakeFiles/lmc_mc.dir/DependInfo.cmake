
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/dot_export.cpp" "src/CMakeFiles/lmc_mc.dir/mc/dot_export.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/dot_export.cpp.o.d"
  "/root/repo/src/mc/global_mc.cpp" "src/CMakeFiles/lmc_mc.dir/mc/global_mc.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/global_mc.cpp.o.d"
  "/root/repo/src/mc/local_mc.cpp" "src/CMakeFiles/lmc_mc.dir/mc/local_mc.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/local_mc.cpp.o.d"
  "/root/repo/src/mc/parallel_local_mc.cpp" "src/CMakeFiles/lmc_mc.dir/mc/parallel_local_mc.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/parallel_local_mc.cpp.o.d"
  "/root/repo/src/mc/racing.cpp" "src/CMakeFiles/lmc_mc.dir/mc/racing.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/racing.cpp.o.d"
  "/root/repo/src/mc/replay.cpp" "src/CMakeFiles/lmc_mc.dir/mc/replay.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/replay.cpp.o.d"
  "/root/repo/src/mc/soundness.cpp" "src/CMakeFiles/lmc_mc.dir/mc/soundness.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/soundness.cpp.o.d"
  "/root/repo/src/mc/system_state.cpp" "src/CMakeFiles/lmc_mc.dir/mc/system_state.cpp.o" "gcc" "src/CMakeFiles/lmc_mc.dir/mc/system_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lmc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
