file(REMOVE_RECURSE
  "CMakeFiles/race_checkers.dir/race_checkers.cpp.o"
  "CMakeFiles/race_checkers.dir/race_checkers.cpp.o.d"
  "race_checkers"
  "race_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
