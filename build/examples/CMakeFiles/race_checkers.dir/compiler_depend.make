# Empty compiler generated dependencies file for race_checkers.
# This may be replaced when dependencies are built.
