file(REMOVE_RECURSE
  "CMakeFiles/randtree_check.dir/randtree_check.cpp.o"
  "CMakeFiles/randtree_check.dir/randtree_check.cpp.o.d"
  "randtree_check"
  "randtree_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randtree_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
