# Empty dependencies file for randtree_check.
# This may be replaced when dependencies are built.
