# Empty compiler generated dependencies file for onepaxos_bughunt.
# This may be replaced when dependencies are built.
