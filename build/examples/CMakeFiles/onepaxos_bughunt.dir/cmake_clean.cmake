file(REMOVE_RECURSE
  "CMakeFiles/onepaxos_bughunt.dir/onepaxos_bughunt.cpp.o"
  "CMakeFiles/onepaxos_bughunt.dir/onepaxos_bughunt.cpp.o.d"
  "onepaxos_bughunt"
  "onepaxos_bughunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onepaxos_bughunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
