# Empty dependencies file for paxos_bughunt.
# This may be replaced when dependencies are built.
