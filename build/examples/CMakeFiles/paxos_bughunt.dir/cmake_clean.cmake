file(REMOVE_RECURSE
  "CMakeFiles/paxos_bughunt.dir/paxos_bughunt.cpp.o"
  "CMakeFiles/paxos_bughunt.dir/paxos_bughunt.cpp.o.d"
  "paxos_bughunt"
  "paxos_bughunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_bughunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
