# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_paxos_core[1]_include.cmake")
include("/root/repo/build/tests/test_paxos_mc[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_randtree[1]_include.cmake")
include("/root/repo/build/tests/test_onepaxos[1]_include.cmake")
include("/root/repo/build/tests/test_local_mc[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_state_machine[1]_include.cmake")
include("/root/repo/build/tests/test_global_mc[1]_include.cmake")
include("/root/repo/build/tests/test_crosscheck[1]_include.cmake")
include("/root/repo/build/tests/test_invariant[1]_include.cmake")
include("/root/repo/build/tests/test_paxos_utility[1]_include.cmake")
include("/root/repo/build/tests/test_twophase[1]_include.cmake")
include("/root/repo/build/tests/test_election[1]_include.cmake")
include("/root/repo/build/tests/test_options[1]_include.cmake")
include("/root/repo/build/tests/test_racing[1]_include.cmake")
