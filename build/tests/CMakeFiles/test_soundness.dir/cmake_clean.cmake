file(REMOVE_RECURSE
  "CMakeFiles/test_soundness.dir/test_soundness.cpp.o"
  "CMakeFiles/test_soundness.dir/test_soundness.cpp.o.d"
  "test_soundness"
  "test_soundness.pdb"
  "test_soundness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
