# Empty dependencies file for test_paxos_core.
# This may be replaced when dependencies are built.
