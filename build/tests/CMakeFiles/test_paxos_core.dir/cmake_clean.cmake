file(REMOVE_RECURSE
  "CMakeFiles/test_paxos_core.dir/test_paxos_core.cpp.o"
  "CMakeFiles/test_paxos_core.dir/test_paxos_core.cpp.o.d"
  "test_paxos_core"
  "test_paxos_core.pdb"
  "test_paxos_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paxos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
