# Empty dependencies file for test_randtree.
# This may be replaced when dependencies are built.
