file(REMOVE_RECURSE
  "CMakeFiles/test_randtree.dir/test_randtree.cpp.o"
  "CMakeFiles/test_randtree.dir/test_randtree.cpp.o.d"
  "test_randtree"
  "test_randtree.pdb"
  "test_randtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
