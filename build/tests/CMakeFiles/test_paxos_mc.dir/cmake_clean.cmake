file(REMOVE_RECURSE
  "CMakeFiles/test_paxos_mc.dir/test_paxos_mc.cpp.o"
  "CMakeFiles/test_paxos_mc.dir/test_paxos_mc.cpp.o.d"
  "test_paxos_mc"
  "test_paxos_mc.pdb"
  "test_paxos_mc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paxos_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
