file(REMOVE_RECURSE
  "CMakeFiles/test_twophase.dir/test_twophase.cpp.o"
  "CMakeFiles/test_twophase.dir/test_twophase.cpp.o.d"
  "test_twophase"
  "test_twophase.pdb"
  "test_twophase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
