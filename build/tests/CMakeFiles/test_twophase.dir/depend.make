# Empty dependencies file for test_twophase.
# This may be replaced when dependencies are built.
