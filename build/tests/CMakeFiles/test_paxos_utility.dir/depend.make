# Empty dependencies file for test_paxos_utility.
# This may be replaced when dependencies are built.
