file(REMOVE_RECURSE
  "CMakeFiles/test_paxos_utility.dir/test_paxos_utility.cpp.o"
  "CMakeFiles/test_paxos_utility.dir/test_paxos_utility.cpp.o.d"
  "test_paxos_utility"
  "test_paxos_utility.pdb"
  "test_paxos_utility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paxos_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
