file(REMOVE_RECURSE
  "CMakeFiles/test_onepaxos.dir/test_onepaxos.cpp.o"
  "CMakeFiles/test_onepaxos.dir/test_onepaxos.cpp.o.d"
  "test_onepaxos"
  "test_onepaxos.pdb"
  "test_onepaxos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onepaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
