# Empty compiler generated dependencies file for test_onepaxos.
# This may be replaced when dependencies are built.
