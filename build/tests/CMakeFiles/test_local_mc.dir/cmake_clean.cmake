file(REMOVE_RECURSE
  "CMakeFiles/test_local_mc.dir/test_local_mc.cpp.o"
  "CMakeFiles/test_local_mc.dir/test_local_mc.cpp.o.d"
  "test_local_mc"
  "test_local_mc.pdb"
  "test_local_mc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
