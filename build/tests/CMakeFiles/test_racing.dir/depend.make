# Empty dependencies file for test_racing.
# This may be replaced when dependencies are built.
