file(REMOVE_RECURSE
  "CMakeFiles/test_racing.dir/test_racing.cpp.o"
  "CMakeFiles/test_racing.dir/test_racing.cpp.o.d"
  "test_racing"
  "test_racing.pdb"
  "test_racing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_racing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
