# Empty dependencies file for bench_fig11_states.
# This may be replaced when dependencies are built.
