file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_transitions.dir/bench_tab_transitions.cpp.o"
  "CMakeFiles/bench_tab_transitions.dir/bench_tab_transitions.cpp.o.d"
  "bench_tab_transitions"
  "bench_tab_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
