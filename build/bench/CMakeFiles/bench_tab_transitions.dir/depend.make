# Empty dependencies file for bench_tab_transitions.
# This may be replaced when dependencies are built.
