# Empty dependencies file for bench_fig10_time.
# This may be replaced when dependencies are built.
