file(REMOVE_RECURSE
  "CMakeFiles/bench_bug_1paxos_5_6.dir/bench_bug_1paxos_5_6.cpp.o"
  "CMakeFiles/bench_bug_1paxos_5_6.dir/bench_bug_1paxos_5_6.cpp.o.d"
  "bench_bug_1paxos_5_6"
  "bench_bug_1paxos_5_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bug_1paxos_5_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
