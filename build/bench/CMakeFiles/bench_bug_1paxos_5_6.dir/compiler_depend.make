# Empty compiler generated dependencies file for bench_bug_1paxos_5_6.
# This may be replaced when dependencies are built.
