# Empty compiler generated dependencies file for bench_scalability_5_2.
# This may be replaced when dependencies are built.
