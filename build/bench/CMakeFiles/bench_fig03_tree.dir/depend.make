# Empty dependencies file for bench_fig03_tree.
# This may be replaced when dependencies are built.
