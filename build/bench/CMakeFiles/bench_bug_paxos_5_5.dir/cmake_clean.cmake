file(REMOVE_RECURSE
  "CMakeFiles/bench_bug_paxos_5_5.dir/bench_bug_paxos_5_5.cpp.o"
  "CMakeFiles/bench_bug_paxos_5_5.dir/bench_bug_paxos_5_5.cpp.o.d"
  "bench_bug_paxos_5_5"
  "bench_bug_paxos_5_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bug_paxos_5_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
