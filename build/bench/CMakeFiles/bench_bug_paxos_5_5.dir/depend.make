# Empty dependencies file for bench_bug_paxos_5_5.
# This may be replaced when dependencies are built.
