// Online bug hunting in 1Paxos (the §5.6 workflow): the single-acceptor
// Multi-Paxos variant whose initialization contains the classic
// post-increment bug
//     acceptor = *(members.begin()++);   // acceptor aliases the leader
// The application triggers the fault detector with probability 0.1 instead
// of proposing; leader changes run through the PaxosUtility configuration
// log, itself replicated with full Paxos (a two-layer service stack).
//
// Build & run:   ./onepaxos_bughunt [seed]
#include <cstdio>
#include <cstdlib>

#include "online/crystalball.hpp"
#include "protocols/onepaxos.hpp"

using namespace lmc;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;

  onepaxos::Options live_opt;
  live_opt.bug_postincrement_init = true;
  live_opt.max_proposals = 3;
  live_opt.max_leader_faults = 2;
  SystemConfig live_cfg = onepaxos::make_config(3, live_opt);

  onepaxos::Options mc_opt = live_opt;
  mc_opt.max_proposals = 4;
  SystemConfig mc_cfg = onepaxos::make_config(3, mc_opt);

  auto invariant = onepaxos::make_agreement_invariant();

  LiveOptions lo;
  lo.seed = seed;
  lo.transport.drop_prob = 0.3;
  LiveRunner live(live_cfg, lo, fault_injecting_driver(0.1, onepaxos::kEvSuspectLeader));

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 12;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 15;

  std::printf("hunting the ++ bug in a live buggy 1Paxos (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  CrystalBall cb(mc_cfg, invariant.get(), live, opt);
  CrystalBallResult res = cb.run();
  if (!res.found) {
    std::printf("no violation found within %.0f s of live time (%d checker runs)\n",
                res.live_time, res.runs);
    return 1;
  }

  std::printf("\nVIOLATION of %s confirmed after %.0f s live time (checker run: %.2f s)\n",
              res.violation.invariant.c_str(), res.live_time, res.checker_elapsed_s);
  for (NodeId n = 0; n < 3; ++n) {
    std::printf("  node %u chose:", n);
    for (const auto& [idx, val] :
         onepaxos::chosen_map_of(mc_cfg, n, res.violation.system_state[n]))
      std::printf("  index %llu -> value %llu", static_cast<unsigned long long>(idx),
                  static_cast<unsigned long long>(val));
    std::printf("\n");
  }
  std::printf("\nwitness schedule (%zu events) confirms a node that still believed it was\n",
              res.violation.witness.size());
  std::printf("the leader proposed to ITSELF (poisoned cached acceptor) and chose alone.\n");
  return 0;
}
