// Quickstart: the paper's §2 tree example, checked both ways.
//
// Shows the complete LMC workflow on the 5-node distributed tree of Fig. 2:
//  1. define a protocol (TreeNode) and an invariant;
//  2. run the classic global checker (B-DFS) — every network change is a new
//     global state;
//  3. run the local checker — node states only, one shared monotonic
//     network, system states materialized transiently (4 of them, as in
//     Fig. 4), and the invalid "----r" combination rejected a posteriori by
//     soundness verification.
//
// Build & run:   ./quickstart [--trace FILE] [--metrics FILE]
//
// --trace FILE    write the LMC run's structured event trace ("lmc-trace/1"
//                 JSONL) to FILE; analyze with `lmc_report FILE`.
// --metrics FILE  write periodic metrics snapshots ("lmc-metrics/1" JSONL).
#include <cstdio>
#include <cstring>

#include "mc/dot_export.hpp"
#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/tree.hpp"

using namespace lmc;

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* metrics_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[++i];
  }

  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  tree::CausalDeliveryInvariant invariant(topo);

  std::printf("=== Global model checking (B-DFS, the classic approach) ===\n");
  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  GlobalModelChecker global(cfg, &invariant, gopt);
  global.run_from_initial();
  std::printf("  global states visited : %llu\n",
              static_cast<unsigned long long>(global.stats().unique_states));
  std::printf("  transitions executed  : %llu\n",
              static_cast<unsigned long long>(global.stats().transitions));
  std::printf("  distinct system states: %zu\n", global.system_state_tuples().size());
  std::printf("  violations            : %llu\n",
              static_cast<unsigned long long>(global.stats().violations));

  std::printf("\n=== Local model checking (LMC, this paper) ===\n");
  obs::TraceSink trace;
  obs::MetricsSink metrics(/*interval_s=*/0.0);  // sample every round
  LocalMcOptions lopt;
  if (trace_path != nullptr) lopt.trace = &trace;
  if (metrics_path != nullptr) lopt.metrics = &metrics;
  LocalModelChecker local(cfg, &invariant, lopt);
  local.run_from_initial();
  if (trace_path != nullptr) {
    trace.write_jsonl(trace_path);
    std::printf("  trace written         : %s (%zu events; try: lmc_report %s)\n", trace_path,
                trace.events().size(), trace_path);
  }
  if (metrics_path != nullptr) {
    metrics.write_jsonl(metrics_path);
    std::printf("  metrics written       : %s (%zu snapshots)\n", metrics_path,
                metrics.records().size());
  }
  const LocalMcStats& st = local.stats();
  std::printf("  node states traversed : %llu  (vs %llu global states)\n",
              static_cast<unsigned long long>(st.node_states),
              static_cast<unsigned long long>(global.stats().unique_states));
  std::printf("  transitions executed  : %llu  (vs %llu)\n",
              static_cast<unsigned long long>(st.transitions),
              static_cast<unsigned long long>(global.stats().transitions));
  std::printf("  system states created : %llu  (Fig. 4 shows 4)\n",
              static_cast<unsigned long long>(st.system_states));
  std::printf("  preliminary violations: %llu  (the invalid \"----r\")\n",
              static_cast<unsigned long long>(st.prelim_violations));
  std::printf("  rejected by soundness : %llu\n",
              static_cast<unsigned long long>(st.unsound_violations));
  std::printf("  confirmed violations  : %llu  (none: the protocol is correct)\n",
              static_cast<unsigned long long>(st.confirmed_violations));

  std::printf("\n=== Traversed node-state graph (Graphviz) ===\n%s",
              to_dot(local.store(), local.iplus()).c_str());
  return 0;
}
