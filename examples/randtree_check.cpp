// Checking a per-node invariant: RandTree's children/siblings disjointness
// (the §4.1 example of an invariant "defined on node states separately").
//
// Runs the local checker on a correct RandTree and on a variant with a
// notify-on-forward bug; because the invariant is per-node, LMC-OPT's
// projection marks only violating node states, so on the correct protocol
// ZERO system states are ever materialized.
//
// Build & run:   ./randtree_check
#include <cstdio>

#include "mc/replay.hpp"
#include "protocols/randtree.hpp"

#include "mc/local_mc.hpp"

using namespace lmc;

static void run_variant(const char* name, randtree::Options opt) {
  SystemConfig cfg = randtree::make_config(4, opt);
  randtree::DisjointInvariant invariant;

  LocalMcOptions mco;
  mco.use_projection = true;
  LocalModelChecker mc(cfg, &invariant, mco);
  mc.run_from_initial();
  const LocalMcStats& st = mc.stats();

  std::printf("%s:\n", name);
  std::printf("  node states %llu | transitions %llu | system states %llu | "
              "assert-discards %llu\n",
              static_cast<unsigned long long>(st.node_states),
              static_cast<unsigned long long>(st.transitions),
              static_cast<unsigned long long>(st.system_states),
              static_cast<unsigned long long>(st.local_assert_discards));
  if (const LocalViolation* v = mc.first_confirmed()) {
    std::printf("  CONFIRMED violation of %s\n", v->invariant.c_str());
    for (NodeId n = 0; n < cfg.num_nodes; ++n) {
      randtree::NodeView view = randtree::view_of(v->system_state[n]);
      std::printf("    node %u: children={", n);
      for (auto c : view.children) std::printf(" %u", c);
      std::printf(" } siblings={");
      for (auto s : view.siblings) std::printf(" %u", s);
      std::printf(" }\n");
    }
    ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                       v->witness, mc.events(), v->state_hashes);
    std::printf("  witness replay: %s (%zu events)\n", rep.ok ? "REPRODUCED" : rep.error.c_str(),
                v->witness.size());
  } else {
    std::printf("  no violation (as expected for the correct protocol)\n");
  }
  std::printf("\n");
}

int main() {
  run_variant("RandTree (correct)", randtree::Options{});
  run_variant("RandTree (notify-on-forward bug)", randtree::Options{2, true});
  return 0;
}
