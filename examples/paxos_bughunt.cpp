// Online bug hunting in Paxos (the §5.5 workflow, end to end):
//
//  * a live three-node Paxos deployment runs in simulation — each node
//    proposes its id then sleeps up to 60 s, and 30% of non-loopback
//    messages are dropped;
//  * the deployment carries the WiDS bug: the proposer adopts the value of
//    the LAST PrepareResponse instead of the highest-ballot one;
//  * every 60 s of live time, CrystalBall snapshots the system and restarts
//    the local model checker from the snapshot;
//  * the first CONFIRMED violation is replayed through the real handlers to
//    print a machine-checked event trace of the bug.
//
// Build & run:   ./paxos_bughunt [seed]
#include <cstdio>
#include <cstdlib>

#include "mc/replay.hpp"
#include "online/crystalball.hpp"
#include "protocols/paxos.hpp"

using namespace lmc;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  paxos::DriverConfig live_driver;
  live_driver.proposers = {0, 1, 2};
  live_driver.max_proposals = 3;
  live_driver.allow_fresh_index = true;
  SystemConfig live_cfg =
      paxos::make_config(3, paxos::CoreOptions{0, /*bug_last_response=*/true}, live_driver);

  paxos::DriverConfig mc_driver = live_driver;
  mc_driver.max_proposals = 4;
  mc_driver.allow_fresh_index = false;
  SystemConfig mc_cfg = paxos::make_config(3, paxos::CoreOptions{0, true}, mc_driver);

  auto invariant = paxos::make_agreement_invariant();

  LiveOptions lo;
  lo.seed = seed;
  lo.transport.drop_prob = 0.3;
  LiveRunner live(live_cfg, lo, first_enabled_driver());

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 16;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 15;

  std::printf("hunting the WiDS bug in a live buggy Paxos (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  CrystalBall cb(mc_cfg, invariant.get(), live, opt);
  CrystalBallResult res = cb.run();
  if (!res.found) {
    std::printf("no violation found within %.0f s of live time (%d checker runs)\n",
                res.live_time, res.runs);
    return 1;
  }

  std::printf("\nVIOLATION of %s confirmed after %.0f s live time (checker run: %.2f s)\n",
              res.violation.invariant.c_str(), res.live_time, res.checker_elapsed_s);
  for (NodeId n = 0; n < 3; ++n) {
    std::printf("  node %u chose:", n);
    for (const auto& [idx, val] : paxos::chosen_map_of(mc_cfg, n, res.violation.system_state[n]))
      std::printf("  index %llu -> value %llu", static_cast<unsigned long long>(idx),
                  static_cast<unsigned long long>(val));
    std::printf("\n");
  }

  // Re-execute the witness through the real handlers; print the trace.
  LocalModelChecker mc(mc_cfg, invariant.get(), opt.mc);
  mc.run(res.snapshot.nodes, res.snapshot.in_flight);
  const LocalViolation* v = mc.first_confirmed();
  if (v != nullptr) {
    ReplayResult rep = replay_schedule(mc_cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                       v->witness, mc.events(), v->state_hashes);
    std::printf("\nwitness replay: %s\n", rep.ok ? "REPRODUCED" : rep.error.c_str());
    for (const std::string& line : rep.log) std::printf("  %s\n", line.c_str());
  }
  return 0;
}
