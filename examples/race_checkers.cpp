// Racing the two checkers (§4.3): "running both local and global model
// checker in parallel and use the result of the one that finishes sooner."
//
// Local checking shines when preliminary violations are rare; global
// checking when states near the start are already (close to) violating.
// This demo races them on two-phase commit and ring leader election, each
// in a correct and a buggy variant.
//
// Build & run:   ./race_checkers
#include <cstdio>

#include "mc/racing.hpp"
#include "protocols/election.hpp"
#include "protocols/twophase.hpp"

using namespace lmc;

namespace {

void report(const char* name, const RacingResult& res) {
  const char* winner = res.winner == RacingResult::Winner::Global ? "GLOBAL"
                       : res.winner == RacingResult::Winner::Local ? "LOCAL"
                                                                   : "neither";
  std::printf("%-28s winner=%-7s %s  (%.3fs; global %llu trans, local %llu trans)\n", name,
              winner, res.found ? "VIOLATION" : "clean", res.elapsed_s,
              static_cast<unsigned long long>(res.global_stats.transitions),
              static_cast<unsigned long long>(res.local_stats.transitions));
  if (res.local_violation.has_value())
    std::printf("%-28s   local witness: %zu events\n", "",
                res.local_violation->witness.size());
  if (res.global_violation.has_value())
    std::printf("%-28s   global trace: %zu events\n", "", res.global_violation->trace.size());
}

template <typename MakeCfg, typename Inv>
void race(const char* name, MakeCfg&& make_cfg, Inv& inv) {
  SystemConfig cfg = make_cfg();
  RacingOptions opt;
  opt.global.time_budget_s = 60;
  opt.local.time_budget_s = 60;
  opt.local.use_projection = true;
  report(name, race_checkers(cfg, &inv, initial_states(cfg), {}, opt));
}

}  // namespace

int main() {
  twophase::AtomicityInvariant atomicity;
  race("2PC (correct)", [] { return twophase::make_config(3, {}); }, atomicity);
  race("2PC (majority-commit bug)",
       [] { return twophase::make_config(3, twophase::Options{{2}, true}); }, atomicity);

  election::SingleLeaderInvariant single_leader;
  race("election (correct)",
       [] { return election::make_config(3, election::Options{{0, 1}, false}); },
       single_leader);
  race("election (missing swallow)",
       [] { return election::make_config(3, election::Options{{0}, true}); }, single_leader);
  return 0;
}
