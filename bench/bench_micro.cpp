// Micro benchmarks (google-benchmark) for the substrate hot paths: state
// (de)serialization, hashing, handler execution, the monotonic network, and
// a single soundness verification — the per-unit costs behind Fig. 10/13.
#include <benchmark/benchmark.h>

#include "mc/local_mc.hpp"
#include "obs/bench_schema.hpp"
#include "mc/soundness.hpp"
#include "net/monotonic_network.hpp"
#include "protocols/paxos.hpp"
#include "runtime/hash.hpp"
#include "runtime/state_machine.hpp"

namespace {

using namespace lmc;

SystemConfig& cfg() {
  static SystemConfig c =
      paxos::make_config(3, paxos::CoreOptions{}, paxos::DriverConfig{{0}, 1});
  return c;
}

Blob busy_paxos_state() {
  auto nodes = initial_states(cfg());
  ExecResult r = exec_internal(cfg(), 0, nodes[0], {paxos::kEvInit, {}});
  auto evs = internal_events_of(cfg(), 0, r.state);
  ExecResult r2 = exec_internal(cfg(), 0, r.state, evs[0]);
  return r2.state;
}

void BM_SerializeRoundTrip(benchmark::State& state) {
  Blob blob = busy_paxos_state();
  for (auto _ : state) {
    auto m = machine_from_blob(cfg(), 0, blob);
    benchmark::DoNotOptimize(machine_to_blob(*m));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_HashBlob(benchmark::State& state) {
  Blob blob = busy_paxos_state();
  for (auto _ : state) benchmark::DoNotOptimize(hash_blob(blob));
}
BENCHMARK(BM_HashBlob);

void BM_ExecMessageHandler(benchmark::State& state) {
  Blob blob = busy_paxos_state();
  Message prep;
  prep.dst = 0;
  prep.src = 0;
  prep.type = paxos::kPrepare;
  prep.payload = paxos::PrepareMsg{0, paxos::make_ballot(1, 0)}.encode();
  for (auto _ : state) benchmark::DoNotOptimize(exec_message(cfg(), 0, blob, prep));
}
BENCHMARK(BM_ExecMessageHandler);

void BM_MonotonicNetworkAdd(benchmark::State& state) {
  std::uint32_t n = 0;
  for (auto _ : state) {
    MonotonicNetwork net;
    for (int i = 0; i < 64; ++i) {
      Message m;
      m.dst = (n + i) % 3;
      m.src = 0;
      m.type = i;
      net.add(m);
    }
    benchmark::DoNotOptimize(net.size());
    ++n;
  }
}
BENCHMARK(BM_MonotonicNetworkAdd);

void BM_MessageHash(benchmark::State& state) {
  Message m;
  m.dst = 1;
  m.src = 2;
  m.type = 3;
  m.payload = paxos::PrepareMsg{7, paxos::make_ballot(3, 1)}.encode();
  for (auto _ : state) benchmark::DoNotOptimize(m.hash());
}
BENCHMARK(BM_MessageHash);

void BM_SoundnessVerifyOneCombo(benchmark::State& state) {
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt;
  opt.enable_system_states = false;
  LocalModelChecker mc(cfg(), inv.get(), opt);
  mc.run_from_initial();
  std::vector<std::uint32_t> combo;
  for (NodeId n = 0; n < 3; ++n) combo.push_back(mc.store().size(n) - 1);
  for (auto _ : state) {
    SoundnessVerifier v(mc.store(), mc.initial_in_flight_hashes(), {});
    benchmark::DoNotOptimize(v.verify(combo));
  }
}
BENCHMARK(BM_SoundnessVerifyOneCombo);

void BM_FullLmcOneProposal(benchmark::State& state) {
  auto inv = paxos::make_agreement_invariant();
  for (auto _ : state) {
    LocalMcOptions opt;
    opt.use_projection = true;
    LocalModelChecker mc(cfg(), inv.get(), opt);
    mc.run_from_initial();
    benchmark::DoNotOptimize(mc.stats().node_states);
  }
}
BENCHMARK(BM_FullLmcOneProposal);

// Console output plus one "lmc-bench/1" record per benchmark, so the micro
// numbers land in the same $LMC_BENCH_JSON stream as every other harness.
class UnifiedReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      obs::BenchRecord rec("bench_micro", run.benchmark_name());
      rec.metric("real_time_ns", run.GetAdjustedRealTime());
      rec.metric("cpu_time_ns", run.GetAdjustedCPUTime());
      rec.metric("iterations", static_cast<std::uint64_t>(run.iterations));
      rec.emit();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  UnifiedReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
