// Figure 13: the overheads of LMC while model checking a Paxos
// implementation with the injected §5.5 bug, starting from the paper's live
// state.
//
// Three configurations isolate the cost components:
//   LMC-explore          — system-state creation disabled: pure exploration;
//   LMC-OPT-system-state — system states created/checked, soundness off;
//   LMC-OPT              — the full checker (stops when it confirms the bug).
// Paper result: system-state overhead is zero until the first conflicting
// values appear, then grows; soundness verification dominates near the bug
// (773 calls, 45 ms average, 427,731 sequences in their run).
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

// The §5.5 live state: node0 proposed v1 for index 0, nodes 0+1 accepted,
// only node0 learned it.
std::vector<Blob> build_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  auto deliver = [&](NodeId dst, std::uint32_t type) {
    for (std::size_t i = 0; i < flight.size(); ++i) {
      if (flight[i].dst == dst && flight[i].type == type) {
        Message m = flight[i];
        flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
        ExecResult r = exec_message(cfg, dst, nodes[dst], m);
        nodes[dst] = std::move(r.state);
        for (Message& o : r.sent) flight.push_back(std::move(o));
        return;
      }
    }
  };
  for (NodeId n = 0; n < 3; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {paxos::kEvInit, {}});
    nodes[n] = std::move(r.state);
  }
  auto evs = internal_events_of(cfg, 0, nodes[0]);
  ExecResult r = exec_internal(cfg, 0, nodes[0], evs[0]);
  nodes[0] = std::move(r.state);
  for (Message& m : r.sent) flight.push_back(std::move(m));
  for (NodeId n = 0; n < 3; ++n) deliver(n, paxos::kPrepare);
  for (int i = 0; i < 3; ++i) deliver(0, paxos::kPrepareResponse);
  deliver(0, paxos::kAccept);
  deliver(1, paxos::kAccept);
  deliver(0, paxos::kLearn);
  deliver(0, paxos::kLearn);
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_fig13_overheads");
  paxos::DriverConfig d;
  d.proposers = {0, 1};
  d.max_proposals = 1;
  SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{0, /*bug=*/true}, d);
  auto inv = paxos::make_agreement_invariant();
  std::vector<Blob> live = build_live_state(cfg);

  const double budget = env_f("LMC_BENCH_BUDGET_S", 30.0);
  const std::uint32_t max_depth = env_u("LMC_BENCH_MAX_DEPTH", 16);

  std::printf("# Figure 13: buggy Paxos from the live state, elapsed seconds vs depth\n");
  std::printf("%8s %14s %20s %14s %10s\n", "depth", "LMC-explore", "LMC-OPT-system-state",
              "LMC-OPT", "bug");
  LocalMcStats last_full{};
  for (std::uint32_t depth = 2; depth <= max_depth; depth += 2) {
    auto run = [&](bool system_states, bool soundness) {
      LocalMcOptions opt;
      opt.max_total_depth = depth;
      opt.time_budget_s = budget;
      opt.use_projection = true;
      opt.enable_system_states = system_states;
      opt.enable_soundness = soundness;
      opt.profile = prof.sink();
      LocalModelChecker mc(cfg, inv.get(), opt);
      mc.run(live, {});
      return mc.stats();
    };
    LocalMcStats explore = run(false, false);
    LocalMcStats system = run(true, false);
    LocalMcStats full = run(true, true);
    std::printf("%8u %14.4f %20.4f %14.4f %10s\n", depth, explore.elapsed_s, system.elapsed_s,
                full.elapsed_s, full.confirmed_violations > 0 ? "FOUND" : "-");
    last_full = full;
  }
  std::printf(
      "\n# last full run: %llu soundness calls, %llu joint-search expansions,\n"
      "# %llu prelim violations (%llu skipped by the feasibility cache), %.3fs in soundness\n",
      static_cast<unsigned long long>(last_full.soundness_calls),
      static_cast<unsigned long long>(last_full.sequences_checked),
      static_cast<unsigned long long>(last_full.prelim_violations),
      static_cast<unsigned long long>(last_full.feasibility_skips), last_full.soundness_s);
  std::printf("# paper: 773 soundness calls, 45ms each, 427,731 sequences; soundness\n");
  std::printf("# dominates as the bug nears; system-state overhead zero until conflicts.\n");

  obs::BenchRecord rec("bench_fig13_overheads", "last_full_run");
  rec.param("depth", static_cast<std::uint64_t>(max_depth));
  add_lmc_metrics(rec, last_full);
  rec.metric("sequences_checked", last_full.sequences_checked);
  rec.metric("feasibility_skips", last_full.feasibility_skips);
  rec.emit();
  return 0;
}
