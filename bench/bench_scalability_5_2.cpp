// §5.2 — LMC scalability limits: the two-proposal Paxos space (max valid
// depth 41; contention included).
//
// Paper result (hours of runtime): B-DFS reaches ~20 of 41 steps before the
// exponential wall; LMC reaches ~39 of its 68 (its depth axis counts
// invalid-sequence events too), and "the major contributor to the slowdown
// of LMC is the expensive task of soundness verification" — each invocation
// cost them ~10 s at depth 39.
//
// We report three columns to separate the two effects the paper describes:
//   B-DFS        — the global baseline (walls out around depth 20, as in
//                  the paper);
//   LMC-explore  — exploration only: the transition-sharing that lets LMC
//                  "postpone the explosion" (here it completes the WHOLE
//                  space in seconds);
//   LMC-full     — with invariant checking + soundness: contention creates
//                  masses of cross-branch (v1,v2) combinations that all
//                  must be refuted, and verification becomes the wall —
//                  the paper's own §5.2 observation.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_scalability_5_2");
  SystemConfig cfg = two_proposal_paxos();
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 20.0);
  const std::uint32_t max_depth = env_u("LMC_BENCH_MAX_DEPTH", 41);

  std::printf("# §5.2: two proposers; per-depth budget %.0fs; 'yes' = bounded space completed\n",
              budget);
  std::printf("%8s %12s %14s %12s %14s %16s\n", "depth", "B-DFS", "B-DFS trans", "LMC-explore",
              "LMC-full", "prelim combos");
  std::uint32_t bdfs_reached = 0, explore_reached = 0, full_reached = 0;
  for (std::uint32_t d = 4; d <= max_depth; d += 2) {
    GlobalMcStats g = run_bdfs(cfg, inv.get(), d, budget);
    LocalMcStats le =
        run_lmc(cfg, inv.get(), d, budget, true, /*system_states=*/false, true, prof.sink());
    LocalMcStats lf = run_lmc(cfg, inv.get(), d, budget, true, true, true, prof.sink());
    if (g.completed) bdfs_reached = d;
    if (le.completed) explore_reached = d;
    if (lf.completed) full_reached = d;
    std::printf("%8u %12s %14llu %12s %14s %16llu\n", d, g.completed ? "yes" : "NO",
                static_cast<unsigned long long>(g.transitions), le.completed ? "yes" : "NO",
                lf.completed ? "yes" : "NO",
                static_cast<unsigned long long>(lf.prelim_violations));
    if (!g.completed && !le.completed && !lf.completed) break;
  }
  std::printf("\n# deepest completed: B-DFS %u (paper: ~20), LMC exploration %u,"
              " LMC full checking %u\n",
              bdfs_reached, explore_reached, full_reached);
  std::printf("# paper's LMC wall was also verification: ~10s per soundness call at its\n");
  std::printf("# deepest level; exploration itself is the part LMC makes cheap.\n");

  obs::BenchRecord rec("bench_scalability_5_2", "deepest_completed");
  rec.param("budget_s", budget);
  rec.param("max_depth", static_cast<std::uint64_t>(max_depth));
  rec.metric("bdfs_depth", static_cast<std::uint64_t>(bdfs_reached));
  rec.metric("lmc_explore_depth", static_cast<std::uint64_t>(explore_reached));
  rec.metric("lmc_full_depth", static_cast<std::uint64_t>(full_reached));
  rec.emit();
  return 0;
}
