// Figure 12: consumed memory vs depth for the one-proposal Paxos space.
//
// Paper result: B-DFS memory grows exponentially (it must remember every
// global state); all LMC configurations stay flat and tiny (~200 KB,
// fitting in L2), because only node states are stored and system states are
// transient. "LMC-local" disables system-state creation entirely.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_fig12_memory");
  SystemConfig cfg = one_proposal_paxos();
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 60.0);
  const std::uint32_t max_depth = env_u("LMC_BENCH_MAX_DEPTH", 25);

  std::printf("# Figure 12: Paxos, one proposal, stored bytes (KB) vs depth\n");
  std::printf("%8s %12s %12s %12s %12s\n", "depth", "B-DFS", "LMC-GEN", "LMC-OPT", "LMC-local");
  GlobalMcStats g{};
  LocalMcStats lg{}, lo{}, ll{};
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    g = run_bdfs(cfg, inv.get(), d, budget);
    lg = run_lmc(cfg, inv.get(), d, budget, false, true, true, prof.sink());
    lo = run_lmc(cfg, inv.get(), d, budget, true, true, true, prof.sink());
    ll = run_lmc(cfg, inv.get(), d, budget, true, /*system_states=*/false, true, prof.sink());
    std::printf("%8u %12.1f %12.1f %12.1f %12.1f\n", d, g.peak_bytes / 1024.0,
                lg.stored_bytes / 1024.0, lo.stored_bytes / 1024.0, ll.stored_bytes / 1024.0);
  }
  std::printf("\n# paper: B-DFS exponential; every LMC variant flat (~200 KB total),\n");
  std::printf("# growing linearly with depth.\n");

  obs::BenchRecord rec("bench_fig12_memory", "max_depth");
  rec.param("depth", static_cast<std::uint64_t>(max_depth));
  rec.metric("bdfs_peak_bytes", static_cast<std::uint64_t>(g.peak_bytes));
  rec.metric("lmc_gen_stored_bytes", static_cast<std::uint64_t>(lg.stored_bytes));
  rec.metric("lmc_opt_stored_bytes", static_cast<std::uint64_t>(lo.stored_bytes));
  rec.metric("lmc_local_stored_bytes", static_cast<std::uint64_t>(ll.stored_bytes));
  rec.emit();
  return 0;
}
