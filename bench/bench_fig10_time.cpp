// Figure 10: elapsed time in model checking Paxos where only one out of
// three nodes proposes a value, as a function of exploration depth.
//
// Paper result (3 GHz Pentium 4): B-DFS blows up exponentially and takes
// 1514 s to finish the 22-event space; LMC-GEN finishes in 5.16 s (~300x);
// LMC-OPT in 0.189 s (~8000x). We reproduce the SHAPE: B-DFS exponential in
// depth, both LMC variants near-flat, OPT cheapest.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_fig10_time");
  SystemConfig cfg = one_proposal_paxos();
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 60.0);
  const std::uint32_t max_depth = env_u("LMC_BENCH_MAX_DEPTH", 25);

  print_header("Figure 10: Paxos, one proposal, elapsed time vs depth",
               "elapsed seconds per full (iterative-deepening) run");
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    Row r;
    r.depth = d;
    GlobalMcStats g = run_bdfs(cfg, inv.get(), d, budget);
    if (g.completed) r.bdfs = g.elapsed_s;
    LocalMcStats lg = run_lmc(cfg, inv.get(), d, budget, /*projection=*/false, true, true,
                              prof.sink());
    if (lg.completed) r.gen = lg.elapsed_s;
    LocalMcStats lo = run_lmc(cfg, inv.get(), d, budget, /*projection=*/true, true, true,
                              prof.sink());
    if (lo.completed) r.opt = lo.elapsed_s;
    print_row(r, " %13.4f");
  }

  // The headline totals at full depth (min of 3 to shed scheduler noise).
  auto min3 = [](auto&& fn) {
    double best = fn();
    for (int i = 0; i < 2; ++i) best = std::min(best, fn());
    return best;
  };
  const double g = min3([&] { return run_bdfs(cfg, inv.get(), 1u << 30, budget).elapsed_s; });
  const double lg =
      min3([&] { return run_lmc(cfg, inv.get(), 1u << 30, budget, false).elapsed_s; });
  const double lo =
      min3([&] { return run_lmc(cfg, inv.get(), 1u << 30, budget, true).elapsed_s; });
  std::printf("\n# full-space totals: B-DFS %.3fs | LMC-GEN %.4fs (%.0fx) | LMC-OPT %.4fs (%.0fx)\n",
              g, lg, g / lg, lo, g / lo);
  std::printf("# paper: 1514s | 5.16s (~300x) | 0.189s (~8000x)\n");

  obs::BenchRecord rec("bench_fig10_time", "full_space_totals");
  rec.param("budget_s", budget);
  rec.metric("bdfs_s", g);
  rec.metric("lmc_gen_s", lg);
  rec.metric("lmc_opt_s", lo);
  rec.metric("gen_speedup", g / lg);
  rec.metric("opt_speedup", g / lo);
  rec.emit();
  return 0;
}
