// §5.5 — Testing Paxos: online model checking against a live (simulated)
// deployment of Paxos with the injected WiDS bug: the proposer builds the
// Accept request from the LAST PrepareResponse instead of the one with the
// highest round number.
//
// Setup, as in the paper: three nodes, each proposes its id then sleeps
// 0..60 s; 30% of non-loopback messages dropped; the checker restarts from
// a live snapshot every 60 s.
//
// Paper result: detected after 1150 s of live time; the detecting LMC run
// took 11 s. Live time is simulated here, so wall cost is the checker runs.
#include "bench_util.hpp"
#include "online/crystalball.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_bug_paxos_5_5");
  paxos::DriverConfig live_d;
  live_d.proposers = {0, 1, 2};
  live_d.max_proposals = 3;
  live_d.allow_fresh_index = true;
  SystemConfig live_cfg = paxos::make_config(3, paxos::CoreOptions{0, /*bug=*/true}, live_d);

  paxos::DriverConfig mc_d = live_d;
  mc_d.max_proposals = 4;
  mc_d.allow_fresh_index = false;  // bounded checker driver
  SystemConfig mc_cfg = paxos::make_config(3, paxos::CoreOptions{0, true}, mc_d);

  auto inv = paxos::make_agreement_invariant();

  LiveOptions lo;
  lo.seed = env_u("LMC_BENCH_SEED", 1);
  lo.transport.drop_prob = 0.3;
  lo.app_min = 0.0;
  lo.app_max = 60.0;
  LiveRunner live(live_cfg, lo, first_enabled_driver());

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 16;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = env_f("LMC_BENCH_BUDGET_S", 15.0);
  opt.mc.profile = prof.sink();

  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  CrystalBallResult res = cb.run();

  std::printf("# §5.5: online bug hunt, buggy Paxos (WiDS last-response bug)\n");
  if (res.found) {
    std::printf("bug FOUND after %.0f s of live time (%d checker runs)\n", res.live_time,
                res.runs);
    std::printf("detecting LMC run: %.2f s wall, %llu node states, %llu soundness calls\n",
                res.checker_elapsed_s,
                static_cast<unsigned long long>(res.last_stats.node_states),
                static_cast<unsigned long long>(res.last_stats.soundness_calls));
    std::printf("witness schedule: %zu events\n", res.violation.witness.size());
  } else {
    std::printf("bug NOT found within %.0f s live time (%d runs) — unexpected\n", res.live_time,
                res.runs);
  }
  std::printf("# paper: detected after 1150 s live time; detecting run took 11 s\n");

  obs::BenchRecord rec("bench_bug_paxos_5_5", "online_hunt");
  rec.param("seed", static_cast<std::uint64_t>(lo.seed));
  rec.metric("found", static_cast<std::uint64_t>(res.found ? 1 : 0));
  rec.metric("live_time_s", res.live_time);
  rec.metric("checker_runs", static_cast<std::uint64_t>(res.runs));
  rec.metric("detecting_checker_s", res.checker_elapsed_s);
  add_lmc_metrics(rec, res.last_stats);
  rec.emit();
  return res.found ? 0 : 1;
}
