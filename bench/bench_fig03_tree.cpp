// Figures 3 & 4 — the §2 primer: the 5-node tree, global state space vs the
// local approach's node/system states.
//
// Paper: the global space materializes 12 global states (10 after joining
// duplicates) for a system with only 4 system states, of which LMC creates
// exactly those 4 — one of them ("----r") invalid and rejected a posteriori.
#include "bench_util.hpp"
#include "protocols/tree.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_fig03_tree");
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  tree::CausalDeliveryInvariant inv(topo);

  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  GlobalModelChecker g(cfg, &inv, gopt);
  g.run_from_initial();

  LocalMcOptions lopt;
  lopt.profile = prof.sink();
  LocalModelChecker l(cfg, &inv, lopt);
  l.run_from_initial();

  std::printf("# Figures 3/4: the 5-node tree example\n");
  std::printf("%-34s %10llu\n", "global states (deduplicated)",
              static_cast<unsigned long long>(g.stats().unique_states));
  std::printf("%-34s %10llu\n", "global transitions",
              static_cast<unsigned long long>(g.stats().transitions));
  std::printf("%-34s %10zu\n", "distinct valid system states",
              g.system_state_tuples().size());
  std::printf("%-34s %10llu\n", "LMC node states",
              static_cast<unsigned long long>(l.stats().node_states));
  std::printf("%-34s %10llu\n", "LMC system states created",
              static_cast<unsigned long long>(l.stats().system_states));
  std::printf("%-34s %10llu\n", "LMC transitions",
              static_cast<unsigned long long>(l.stats().transitions));
  std::printf("%-34s %10llu   (the invalid \"----r\")\n", "prelim violations",
              static_cast<unsigned long long>(l.stats().prelim_violations));
  std::printf("%-34s %10llu\n", "rejected by soundness",
              static_cast<unsigned long long>(l.stats().unsound_violations));
  std::printf("\n# paper: 12 global states (with duplicates) vs 4 system states;\n");
  std::printf("# \"----r\" caught by soundness verification.\n");

  {
    obs::BenchRecord rec("bench_fig03_tree", "global");
    add_gmc_metrics(rec, g.stats());
    rec.metric("system_state_tuples", static_cast<std::uint64_t>(g.system_state_tuples().size()));
    rec.emit();
  }
  {
    obs::BenchRecord rec("bench_fig03_tree", "lmc");
    add_lmc_metrics(rec, l.stats());
    rec.emit();
  }
  return 0;
}
