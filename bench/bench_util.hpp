// Shared helpers for the figure-regeneration harnesses.
//
// Every bench binary prints the rows/series of one table or figure from the
// paper's evaluation (§5). Absolute numbers differ from the paper's 2004-era
// Pentium 4 testbed; EXPERIMENTS.md records the shape comparison. Knobs:
//   LMC_BENCH_BUDGET_S   per-run wall-clock budget (default varies)
//   LMC_BENCH_MAX_DEPTH  cap on the depth sweep
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "obs/bench_schema.hpp"
#include "obs/prof.hpp"
#include "protocols/paxos.hpp"

namespace lmc::bench {

inline double env_f(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : dflt;
}

inline std::uint32_t env_u(const char* name, std::uint32_t dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::uint32_t>(std::atoi(v)) : dflt;
}

/// The §5.1 benchmark system: Paxos among three nodes, one node proposes
/// one value ("the example state space").
inline SystemConfig one_proposal_paxos(bool bug = false) {
  paxos::DriverConfig d;
  d.proposers = {0};
  d.max_proposals = 1;
  return paxos::make_config(3, paxos::CoreOptions{0, bug}, d);
}

/// The §5.2 scalability workload: two separate nodes propose.
inline SystemConfig two_proposal_paxos() {
  paxos::DriverConfig d;
  d.proposers = {0, 1};
  d.max_proposals = 1;
  return paxos::make_config(3, paxos::CoreOptions{}, d);
}

struct Row {
  std::uint32_t depth = 0;
  double bdfs = -1, gen = -1, opt = -1;  ///< -1: not run / budget exceeded
};

inline void print_header(const char* title, const char* metric) {
  std::printf("# %s\n", title);
  std::printf("# metric: %s ('-' = budget exceeded before completing the bounded space)\n",
              metric);
  std::printf("%8s %14s %14s %14s\n", "depth", "B-DFS", "LMC-GEN", "LMC-OPT");
}

inline void print_cell(double v, const char* fmt) {
  if (v < 0)
    std::printf(" %13s", "-");
  else
    std::printf(fmt, v);
}

inline void print_row(const Row& r, const char* fmt) {
  std::printf("%8u", r.depth);
  print_cell(r.bdfs, fmt);
  print_cell(r.gen, fmt);
  print_cell(r.opt, fmt);
  std::printf("\n");
}

/// Run B-DFS to `depth` with a budget; stats valid only if completed.
inline GlobalMcStats run_bdfs(const SystemConfig& cfg, const Invariant* inv,
                              std::uint32_t depth, double budget_s) {
  GlobalMcOptions opt;
  opt.max_depth = depth;
  opt.time_budget_s = budget_s;
  GlobalModelChecker mc(cfg, inv, opt);
  mc.run_from_initial();
  return mc.stats();
}

/// Run LMC (GEN or OPT) to total depth `depth` with a budget.
inline LocalMcStats run_lmc(const SystemConfig& cfg, const Invariant* inv, std::uint32_t depth,
                            double budget_s, bool use_projection,
                            bool enable_system_states = true, bool enable_soundness = true,
                            obs::ProfileSink* profile = nullptr) {
  LocalMcOptions opt;
  opt.max_total_depth = depth;
  opt.time_budget_s = budget_s;
  opt.use_projection = use_projection;
  opt.enable_system_states = enable_system_states;
  opt.enable_soundness = enable_soundness;
  opt.profile = profile;
  LocalModelChecker mc(cfg, inv, opt);
  mc.run_from_initial();
  return mc.stats();
}

/// Opt-in profiling for bench binaries: `--profile FILE` or
/// `--profile-dir DIR` on the command line (or LMC_BENCH_PROFILE=FILE in the
/// environment, for harnesses that cannot pass flags). One sink accumulates
/// every checker run the binary performs and the "lmc-prof/1" JSONL is
/// written at scope exit. sink() stays null when profiling was not
/// requested, so the default bench run is exactly the pre-profiling binary.
class BenchProfile {
 public:
  BenchProfile(int argc, char** argv, const char* bench_name) {
    if (const char* env = std::getenv("LMC_BENCH_PROFILE"); env != nullptr && env[0] != '\0')
      path_ = env;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--profile" && i + 1 < argc)
        path_ = argv[++i];
      else if (a == "--profile-dir" && i + 1 < argc)
        path_ = std::string(argv[++i]) + "/" + bench_name + "_prof.jsonl";
    }
    if (!path_.empty()) sink_ = std::make_unique<obs::ProfileSink>();
  }
  ~BenchProfile() {
    if (sink_ == nullptr) return;
    try {
      sink_->write_jsonl(path_);
      std::fprintf(stderr, "# profile written: %s\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "# profile write failed: %s\n", e.what());
    }
  }
  obs::ProfileSink* sink() const { return sink_.get(); }

 private:
  std::string path_;
  std::unique_ptr<obs::ProfileSink> sink_;
};

/// The LocalMcStats core every unified bench record shares. Callers add
/// their case-specific params/metrics on top and call rec.emit().
inline void add_lmc_metrics(obs::BenchRecord& rec, const LocalMcStats& s) {
  rec.metric("transitions", s.transitions);
  rec.metric("node_states", s.node_states);
  rec.metric("system_states", s.system_states);
  rec.metric("prelim_violations", s.prelim_violations);
  rec.metric("confirmed_violations", s.confirmed_violations);
  rec.metric("soundness_calls", s.soundness_calls);
  rec.metric("deferred_dropped", s.deferred_dropped);
  rec.metric("stored_bytes", static_cast<std::uint64_t>(s.stored_bytes));
  rec.metric("elapsed_s", s.elapsed_s);
  rec.metric("soundness_s", s.soundness_s);
  rec.metric("soundness_wall_s", s.soundness_wall_s);
  rec.metric("deferred_s", s.deferred_s);
  rec.metric("completed", static_cast<std::uint64_t>(s.completed ? 1 : 0));
}

/// Same for the global checker baseline.
inline void add_gmc_metrics(obs::BenchRecord& rec, const GlobalMcStats& s) {
  rec.metric("transitions", s.transitions);
  rec.metric("unique_states", s.unique_states);
  rec.metric("violations", s.violations);
  rec.metric("peak_bytes", static_cast<std::uint64_t>(s.peak_bytes));
  rec.metric("elapsed_s", s.elapsed_s);
  rec.metric("completed", static_cast<std::uint64_t>(s.completed ? 1 : 0));
}

/// One flat JSON object emitted as a single line ("JSON lines" output, one
/// record per checker run/period), so bench results can be piped straight
/// into jq or a plotting script without a parser in the repo.
class JsonLine {
 public:
  JsonLine& kv(const char* k, std::uint64_t v) {
    sep();
    buf_ += '"';
    buf_ += k;
    buf_ += "\":";
    buf_ += std::to_string(v);
    return *this;
  }
  JsonLine& kv(const char* k, int v) { return kv(k, static_cast<std::uint64_t>(v)); }
  JsonLine& kv(const char* k, double v) {
    sep();
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", v);
    buf_ += '"';
    buf_ += k;
    buf_ += "\":";
    buf_ += num;
    return *this;
  }
  JsonLine& kv(const char* k, bool v) {
    sep();
    buf_ += '"';
    buf_ += k;
    buf_ += "\":";
    buf_ += v ? "true" : "false";
    return *this;
  }
  JsonLine& kv(const char* k, const char* v) {
    sep();
    buf_ += '"';
    buf_ += k;
    buf_ += "\":\"";
    for (const char* p = v; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') buf_ += '\\';
      buf_ += *p;
    }
    buf_ += '"';
    return *this;
  }
  JsonLine& kv(const char* k, const std::string& v) { return kv(k, v.c_str()); }

  /// The LocalMcStats fields every bench record cares about.
  JsonLine& stats(const LocalMcStats& s) {
    kv("transitions", s.transitions);
    kv("node_states", s.node_states);
    kv("messages_in_iplus", s.messages_in_iplus);
    kv("confirmed_violations", s.confirmed_violations);
    kv("soundness_calls", s.soundness_calls);
    kv("elapsed_s", s.elapsed_s);
    return *this;
  }

  void print() const { std::printf("{%s}\n", buf_.c_str()); }

 private:
  void sep() {
    if (!buf_.empty()) buf_ += ',';
  }
  std::string buf_;
};

}  // namespace lmc::bench
