// Phase-2 parallel scaling: the combination sweep + soundness verification
// ("system state creation" in Fig. 13) sharded over the persistent worker
// pool, on the §5.5 buggy-Paxos live-state workload that actually confirms
// the WiDS violation.
//
// Prints, per thread count: total wall time, the phase-2 share
// (system_state_s + deferred_s), the speedup of that share over the
// 1-thread run, and the confirmed-violation fingerprint — which must be
// identical across all thread counts (the determinism contract). Exits
// non-zero if any run's results diverge from the single-threaded run.
//
// Knobs: LMC_BENCH_BUDGET_S (default 300), LMC_BENCH_THREADS (max, def. 8),
// LMC_BENCH_MAX_DEPTH (default 18).
#include <memory>

#include "bench_util.hpp"
#include "mc/replay.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

// §5.5 live state (mirror of the unit-test builder): node0 proposed and
// learned v1; node1 accepted it; the other Learn messages were dropped.
std::vector<Blob> build_5_5_live_state(const SystemConfig& cfg, bool* ok) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  *ok = true;
  auto fire = [&](NodeId n) {
    auto evs = internal_events_of(cfg, n, nodes[n]);
    if (evs.empty()) {
      *ok = false;
      return;
    }
    ExecResult r = exec_internal(cfg, n, nodes[n], evs[0]);
    nodes[n] = std::move(r.state);
    for (Message& out : r.sent) flight.push_back(std::move(out));
  };
  auto deliver = [&](NodeId dst, std::uint32_t type) {
    for (std::size_t i = 0; i < flight.size(); ++i) {
      if (flight[i].dst != dst || flight[i].type != type) continue;
      Message m = flight[i];
      flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
      ExecResult r = exec_message(cfg, dst, nodes[dst], m);
      nodes[dst] = std::move(r.state);
      for (Message& out : r.sent) flight.push_back(std::move(out));
      return;
    }
    *ok = false;
  };
  for (NodeId n = 0; n < 3; ++n) fire(n);
  fire(0);
  for (NodeId n = 0; n < 3; ++n) deliver(n, paxos::kPrepare);
  for (int i = 0; i < 3; ++i) deliver(0, paxos::kPrepareResponse);
  deliver(0, paxos::kAccept);
  deliver(1, paxos::kAccept);
  deliver(0, paxos::kLearn);
  deliver(0, paxos::kLearn);
  return nodes;
}

struct Fingerprint {
  std::uint64_t confirmed = 0;
  std::uint64_t prelims = 0;
  std::uint64_t system_states = 0;
  std::uint64_t soundness_calls = 0;
  std::vector<std::vector<Hash64>> violation_hashes;
  std::vector<std::size_t> witness_sizes;

  bool operator==(const Fingerprint& o) const {
    return confirmed == o.confirmed && prelims == o.prelims &&
           system_states == o.system_states && soundness_calls == o.soundness_calls &&
           violation_hashes == o.violation_hashes && witness_sizes == o.witness_sizes;
  }
};

Fingerprint fingerprint(const LocalModelChecker& mc) {
  Fingerprint f;
  f.confirmed = mc.stats().confirmed_violations;
  f.prelims = mc.stats().prelim_violations;
  f.system_states = mc.stats().system_states;
  f.soundness_calls = mc.stats().soundness_calls;
  for (const LocalViolation& v : mc.violations()) {
    f.violation_hashes.push_back(v.state_hashes);
    f.witness_sizes.push_back(v.witness.size());
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_parallel_combos");
  SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{0, /*bug=*/true},
                                        paxos::DriverConfig{{0, 1}, 1});
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 300.0);
  const std::uint32_t max_threads = env_u("LMC_BENCH_THREADS", 8);
  const std::uint32_t depth = env_u("LMC_BENCH_MAX_DEPTH", 18);

  std::printf("# phase-2 parallel scaling — §5.5 buggy-Paxos live state (WiDS bug)\n");
  std::printf("# phase2_s = system_state_s + deferred_s (sweep + soundness wall time)\n");
  std::printf("%8s %10s %10s %10s %10s %10s %9s\n", "threads", "total_s", "phase2_s",
              "speedup", "combos", "confirmed", "match");

  bool ok = true;
  bool all_match = true;
  double phase2_base = -1.0;
  Fingerprint base;
  for (std::uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    bool live_ok = true;
    std::vector<Blob> live = build_5_5_live_state(cfg, &live_ok);
    if (!live_ok) {
      std::printf("live-state construction failed\n");
      return 1;
    }
    LocalMcOptions opt;
    opt.max_total_depth = depth;
    opt.use_projection = true;
    opt.stop_on_confirmed = false;  // full sweep: the parallel phase dominates
    opt.time_budget_s = budget;
    opt.num_threads = threads;
    opt.profile = prof.sink();
    LocalModelChecker mc(cfg, inv.get(), opt);
    mc.run(live, {});

    const double phase2 = mc.stats().system_state_s + mc.stats().deferred_s;
    const Fingerprint f = fingerprint(mc);
    bool match = true;
    if (threads == 1) {
      base = f;
      phase2_base = phase2;
      ok = mc.stats().confirmed_violations >= 1 && mc.stats().completed;
    } else {
      match = f == base;
      all_match = all_match && match;
    }
    std::printf("%8u %10.2f %10.2f %9.2fx %10llu %10llu %9s\n", threads,
                mc.stats().elapsed_s, phase2,
                phase2 > 0 ? phase2_base / phase2 : 0.0,
                static_cast<unsigned long long>(mc.stats().system_states),
                static_cast<unsigned long long>(mc.stats().confirmed_violations),
                match ? "yes" : "NO");
    obs::BenchRecord rec("bench_parallel_combos", "threads");
    rec.param("threads", static_cast<std::uint64_t>(threads));
    rec.param("depth", static_cast<std::uint64_t>(depth));
    add_lmc_metrics(rec, mc.stats());
    rec.metric("phase2_s", phase2);
    rec.metric("phase2_speedup", phase2 > 0 ? phase2_base / phase2 : 0.0);
    rec.metric("fingerprint_match", static_cast<std::uint64_t>(match ? 1 : 0));
    rec.emit();
  }
  std::printf("# determinism: confirmed violations & witnesses %s across thread counts\n",
              all_match ? "identical" : "DIVERGED");
  if (!ok) std::printf("# UNEXPECTED: 1-thread run found no confirmed violation\n");
  return (ok && all_match) ? 0 : 1;
}
