// Symmetry-reduction trajectory (DESIGN.md §13): the combination sweep with
// the orbit canonicalizer on vs off, on the two workloads the reduction was
// built for.
//
//  - paxos_acceptors: the §5.1 one-proposal driver at N=3..7 nodes (one
//    proposer, N-1 interchangeable acceptors), chain depth 4. The ordered
//    sweep grows like k^(N-1); the reduced sweep enumerates acceptor
//    multisets. GATES at >=10x fewer explored combinations at N=6 — the
//    "Paxos at 5 acceptors" point.
//  - tree12: a 12-node broadcast tree written in the DSL (one root, eleven
//    interchangeable leaves), explored to the full fixpoint. GATES at >=10x.
//
// Both gates also require the reduced run to agree with the unreduced one on
// confirmed violations (none, on these clean workloads) and require the
// represented counter to cover every ordered combination the plain sweep
// materialized. Exits non-zero on any gate failure.
//
// Knobs: LMC_BENCH_BUDGET_S (default 120), LMC_BENCH_MAX_DEPTH (default 4,
// paxos chain depth).
#include <memory>

#include "bench_util.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

constexpr double kGateFactor = 10.0;

struct Pair {
  LocalMcStats plain;
  LocalMcStats reduced;
  symmetry::SymmetryStats sym;
  bool ok = true;
};

Pair run_pair(const SystemConfig& cfg, const Invariant* inv, std::uint32_t chain_depth,
              double budget_s, obs::ProfileSink* profile) {
  Pair p;
  for (int reduce = 0; reduce <= 1; ++reduce) {
    LocalMcOptions opt;
    opt.stop_on_confirmed = false;
    opt.max_chain_depth = chain_depth;
    opt.time_budget_s = budget_s;
    opt.profile = profile;
    if (reduce != 0) opt.symmetry.mode = symmetry::SymmetryMode::kAuto;
    LocalModelChecker mc(cfg, inv, opt);
    mc.run_from_initial();
    if (reduce == 0) {
      p.plain = mc.stats();
    } else {
      p.reduced = mc.stats();
      p.sym = mc.symmetry_stats();
    }
    p.ok = p.ok && mc.stats().completed;
  }
  // Agreement + accounting invariants of the reduction, checked on every row.
  p.ok = p.ok && p.plain.confirmed_violations == p.reduced.confirmed_violations;
  p.ok = p.ok && p.sym.active == 1 && p.reduced.system_states == p.sym.orbits;
  p.ok = p.ok && p.sym.represented >= p.plain.system_states;
  return p;
}

double factor(const Pair& p) {
  return p.reduced.system_states > 0
             ? static_cast<double>(p.plain.system_states) /
                   static_cast<double>(p.reduced.system_states)
             : 0.0;
}

void emit(const char* bench_case, std::uint32_t nodes, const Pair& p) {
  obs::BenchRecord rec("bench_symmetry", bench_case);
  rec.param("nodes", static_cast<std::uint64_t>(nodes));
  add_lmc_metrics(rec, p.reduced);
  rec.metric("plain_system_states", p.plain.system_states);
  rec.metric("orbits", p.sym.orbits);
  rec.metric("represented", p.sym.represented);
  rec.metric("reduction_factor", factor(p));
  rec.metric("agree", static_cast<std::uint64_t>(p.ok ? 1 : 0));
  rec.emit();
}

// The 12-node broadcast tree: the root pings all leaves; every leaf flips
// idle -> got independently, so the ordered sweep is 2 * 2^11 combinations
// while the reduced one sees 2 * 12 leaf multisets.
constexpr const char* kTree12 = R"(protocol tree12 {
  nodes 12;
  role root = 0;
  role leaf = 1 .. n - 1;
  states idle, sent, got;
  messages Ping;
  timer go at root @ idle -> sent { send Ping to leaf; }
  on Ping at leaf @ idle -> got { }
  invariant solo: never {sent} with {sent};
})";

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_symmetry");
  const double budget = env_f("LMC_BENCH_BUDGET_S", 120.0);
  const std::uint32_t depth = env_u("LMC_BENCH_MAX_DEPTH", 4);
  // Node range of the paxos_acceptors sweep. Narrowing it (e.g. 5..5 for a
  // single-configuration profile) skips the N=6 gate, which needs that row.
  const std::uint32_t n_lo = env_u("LMC_BENCH_MIN_NODES", 3);
  const std::uint32_t n_hi = env_u("LMC_BENCH_MAX_NODES", 7);

  std::printf("# symmetry reduction — ordered combination sweep vs orbit enumeration\n");
  std::printf("# paxos: one proposer, N-1 interchangeable acceptors, chain depth %u\n", depth);
  std::printf("%16s %6s %12s %12s %12s %9s %6s\n", "case", "nodes", "combos", "orbits",
              "represented", "factor", "ok");

  bool all_ok = true;
  auto inv = paxos::make_agreement_invariant();
  double gate_paxos = 0.0;
  bool gate_paxos_seen = false;
  for (std::uint32_t n = n_lo; n <= n_hi; ++n) {
    paxos::DriverConfig d;
    d.proposers = {0};
    d.max_proposals = 1;
    SystemConfig cfg = paxos::make_config(n, paxos::CoreOptions{}, d);
    Pair p = run_pair(cfg, inv.get(), depth, budget, prof.sink());
    if (n == 6) {
      gate_paxos = factor(p);
      gate_paxos_seen = true;
    }
    all_ok = all_ok && p.ok;
    std::printf("%16s %6u %12llu %12llu %12llu %8.2fx %6s\n", "paxos_acceptors", n,
                static_cast<unsigned long long>(p.plain.system_states),
                static_cast<unsigned long long>(p.sym.orbits),
                static_cast<unsigned long long>(p.sym.represented), factor(p),
                p.ok ? "yes" : "NO");
    emit("paxos_acceptors", n, p);
  }

  // LMC_BENCH_SKIP_TREE=1 drops the tree12 row (and its gate) so a narrowed
  // paxos sweep yields a single-family profile — EXPERIMENTS.md uses
  // MIN/MAX_NODES=5 + SKIP_TREE for the pure Paxos N=5 hottest-rules table.
  if (env_u("LMC_BENCH_SKIP_TREE", 0) != 0) {
    if (!all_ok) std::printf("# UNEXPECTED: a reduced run disagreed with its unreduced twin\n");
    if (gate_paxos_seen)
      std::printf("# gate: >=%.0fx at paxos N=6 (got %.2fx) — %s\n", kGateFactor, gate_paxos,
                  gate_paxos >= kGateFactor ? "PASS" : "FAIL");
    return (all_ok && (!gate_paxos_seen || gate_paxos >= kGateFactor)) ? 0 : 1;
  }

  dsl::LoadResult r = dsl::load_text(kTree12, "tree12.lmc");
  if (!r.ok()) {
    std::printf("tree12 failed to load:\n%s\n", r.diags.to_string().c_str());
    return 1;
  }
  dsl::CompiledProtocol tree = dsl::instantiate(*r.spec);
  Pair tp = run_pair(tree.cfg, tree.invariant.get(), UINT32_MAX, budget, prof.sink());
  const double gate_tree = factor(tp);
  all_ok = all_ok && tp.ok;
  std::printf("%16s %6u %12llu %12llu %12llu %8.2fx %6s\n", "tree_broadcast", 12u,
              static_cast<unsigned long long>(tp.plain.system_states),
              static_cast<unsigned long long>(tp.sym.orbits),
              static_cast<unsigned long long>(tp.sym.represented), gate_tree,
              tp.ok ? "yes" : "NO");
  emit("tree_broadcast", 12, tp);

  const bool gates =
      (!gate_paxos_seen || gate_paxos >= kGateFactor) && gate_tree >= kGateFactor;
  if (gate_paxos_seen)
    std::printf("# gate: >=%.0fx at paxos N=6 (got %.2fx) and tree12 (got %.2fx) — %s\n",
                kGateFactor, gate_paxos, gate_tree, gates ? "PASS" : "FAIL");
  else
    std::printf("# gate: paxos N=6 outside the node range — tree12 only (got %.2fx) — %s\n",
                gate_tree, gates ? "PASS" : "FAIL");
  if (!all_ok) std::printf("# UNEXPECTED: a reduced run disagreed with its unreduced twin\n");
  return (all_ok && gates) ? 0 : 1;
}
