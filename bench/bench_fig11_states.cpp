// Figure 11: the number of explored states vs depth for the one-proposal
// Paxos space.
//
// Paper result: B-DFS global states >> LMC-GEN system states >> LMC node
// states ("LMC-local"); LMC-OPT creates ZERO system states because no
// combination can violate the invariant in correct Paxos.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_fig11_states");
  SystemConfig cfg = one_proposal_paxos();
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 60.0);
  const std::uint32_t max_depth = env_u("LMC_BENCH_MAX_DEPTH", 25);

  std::printf("# Figure 11: Paxos, one proposal, explored states vs depth\n");
  std::printf("%8s %14s %18s %18s %12s\n", "depth", "B-DFS", "LMC-GEN-system",
              "LMC-OPT-system", "LMC-local");
  GlobalMcStats g{};
  LocalMcStats lg{}, lo{};
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    g = run_bdfs(cfg, inv.get(), d, budget);
    lg = run_lmc(cfg, inv.get(), d, budget, false, true, true, prof.sink());
    lo = run_lmc(cfg, inv.get(), d, budget, true, true, true, prof.sink());
    std::printf("%8u %14llu %18llu %18llu %12llu\n", d,
                static_cast<unsigned long long>(g.unique_states),
                static_cast<unsigned long long>(lg.system_states),
                static_cast<unsigned long long>(lo.system_states),
                static_cast<unsigned long long>(lo.node_states));
  }
  std::printf("\n# paper: LMC-OPT-system is identically zero; LMC-local orders of magnitude\n");
  std::printf("# below the global/system state counts.\n");

  obs::BenchRecord rec("bench_fig11_states", "max_depth");
  rec.param("depth", static_cast<std::uint64_t>(max_depth));
  rec.metric("bdfs_states", g.unique_states);
  rec.metric("lmc_gen_system_states", lg.system_states);
  rec.metric("lmc_opt_system_states", lo.system_states);
  rec.metric("lmc_node_states", lo.node_states);
  rec.emit();
  return 0;
}
