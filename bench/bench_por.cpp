// Partial-order-reduction trajectory (DESIGN.md §14): phase-1 exploration
// with the independence-driven sleep-set pruner on vs off, composed with the
// symmetry reduction (both runs use SymmetryMode::kAuto so the measured
// delta is POR's marginal contribution, not symmetry's).
//
//  - paxos_por: the §5.1 one-proposal driver at N=3..6 nodes, exhaustive
//    (unbounded-depth) exploration — POR only activates with unbounded
//    depth, because pruning first-discovery edges shifts recorded depths.
//    The combination sweep is off on paxos rows (POR thins PHASE-1
//    deliveries; sweeping millions of system-state combos at N=5..6 would
//    just add minutes of constant to both sides of the ratio) and the
//    honesty check is node-state-set size instead.
//    The static relation derives five independent handler pairs per node
//    (Prepare/PrepareResponse/Accept/Learn disjointness); the pruner skips
//    deliveries whose commuted twin already covers the successor. GATES at
//    >=2x fewer explored transitions on at least one row.
//  - paxos_por2: the same system with TWO competing proposers at N=3 — a
//    contention-heavy row (informational, no gate).
//  - two zoo specs (informational, no gate): the reduction's effect on
//    hand-written .lmc protocols, loaded from LMC_ZOO_DIR (default
//    ../examples/zoo, the CI bench working directory being build/).
//
// Every row also requires both runs to complete AND agree on confirmed
// violations AND on the explored node-state count — sleep-set pruning skips
// redundant deliveries only, so the reduced store must hold exactly as many
// states. Exits non-zero on any gate or agreement failure.
//
// Knobs: LMC_BENCH_BUDGET_S (default 120), LMC_ZOO_DIR.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

constexpr double kGateFactor = 2.0;

struct Pair {
  LocalMcStats plain;
  LocalMcStats reduced;
  indep::PorStats por;
  bool ok = true;
};

Pair run_pair(const SystemConfig& cfg, const Invariant* inv, double budget_s,
              bool system_states, obs::ProfileSink* profile) {
  Pair p;
  for (int reduce = 0; reduce <= 1; ++reduce) {
    LocalMcOptions opt;
    opt.stop_on_confirmed = false;
    opt.time_budget_s = budget_s;
    opt.enable_system_states = system_states;
    opt.symmetry.mode = symmetry::SymmetryMode::kAuto;
    opt.profile = profile;
    if (reduce != 0) opt.por.mode = indep::PorMode::kOn;
    LocalModelChecker mc(cfg, inv, opt);
    mc.run_from_initial();
    if (reduce == 0) {
      p.plain = mc.stats();
    } else {
      p.reduced = mc.stats();
      p.por = mc.por_stats();
    }
    p.ok = p.ok && mc.stats().completed;
  }
  // Per-row honesty: the pruned run must confirm exactly as many violations
  // and traverse exactly as many node states (it skips deliveries, not
  // states).
  p.ok = p.ok && p.plain.confirmed_violations == p.reduced.confirmed_violations &&
         p.plain.node_states == p.reduced.node_states;
  return p;
}

double factor(const Pair& p) {
  return p.reduced.transitions > 0 ? static_cast<double>(p.plain.transitions) /
                                         static_cast<double>(p.reduced.transitions)
                                   : 0.0;
}

void emit(const char* bench_case, std::uint32_t nodes, const Pair& p) {
  obs::BenchRecord rec("bench_por", bench_case);
  rec.param("nodes", static_cast<std::uint64_t>(nodes));
  add_lmc_metrics(rec, p.reduced);
  rec.metric("plain_transitions", p.plain.transitions);
  rec.metric("por_active", static_cast<std::uint64_t>(p.por.active));
  rec.metric("por_relation_pairs", p.por.relation_pairs);
  rec.metric("por_pruned", p.por.pairs_pruned);
  rec.metric("por_conservative", p.por.conservative_skips);
  rec.metric("por_deferrals", p.por.deferrals);
  rec.metric("reduction_factor", factor(p));
  rec.metric("agree", static_cast<std::uint64_t>(p.ok ? 1 : 0));
  rec.emit();
}

void print_row(const char* bench_case, std::uint32_t nodes, const Pair& p) {
  std::printf("%24s %6u %12llu %12llu %10llu %8.2fx %6s\n", bench_case, nodes,
              static_cast<unsigned long long>(p.plain.transitions),
              static_cast<unsigned long long>(p.reduced.transitions),
              static_cast<unsigned long long>(p.por.pairs_pruned), factor(p),
              p.ok ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_por");
  const double budget = env_f("LMC_BENCH_BUDGET_S", 120.0);
  const char* zoo_env = std::getenv("LMC_ZOO_DIR");
  const std::string zoo_dir = zoo_env != nullptr ? zoo_env : "../examples/zoo";

  std::printf("# partial-order reduction — por+symmetry vs symmetry alone\n");
  std::printf("# paxos: one-proposal driver, exhaustive (unbounded-depth) exploration\n");
  std::printf("%24s %6s %12s %12s %10s %9s %6s\n", "case", "nodes", "plain", "por", "pruned",
              "factor", "ok");

  bool all_ok = true;
  double gate_best = 0.0;
  auto inv = paxos::make_agreement_invariant();
  for (std::uint32_t n = 3; n <= 6; ++n) {
    paxos::DriverConfig d;
    d.proposers = {0};
    d.max_proposals = 1;
    SystemConfig cfg = paxos::make_config(n, paxos::CoreOptions{}, d);
    Pair p = run_pair(cfg, inv.get(), budget, /*system_states=*/false, prof.sink());
    all_ok = all_ok && p.ok && p.por.active != 0;
    if (factor(p) > gate_best) gate_best = factor(p);
    print_row("paxos_por", n, p);
    emit("paxos_por", n, p);
  }

  // Contention row: two proposers race Prepare/Accept traffic, so far more
  // deliveries commute past each other (informational, no gate).
  {
    paxos::DriverConfig d;
    d.proposers = {0, 1};
    d.max_proposals = 1;
    SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{}, d);
    Pair p = run_pair(cfg, inv.get(), budget, /*system_states=*/false, prof.sink());
    all_ok = all_ok && p.ok && p.por.active != 0;
    print_row("paxos_por2", 3, p);
    emit("paxos_por2", 3, p);
  }

  // Informational zoo rows (hand-written protocols; no gate — their state
  // spaces are small enough that pruning is a bonus, not the point).
  for (const char* name : {"raft_election_doublevote", "twophase_early_commit"}) {
    const std::string path = zoo_dir + "/" + name + ".lmc";
    dsl::LoadResult r = dsl::load_file(path);
    if (!r.ok()) {
      std::printf("# %s failed to load (set LMC_ZOO_DIR):\n%s\n", path.c_str(),
                  r.diags.to_string().c_str());
      return 1;
    }
    dsl::CompiledProtocol zoo = dsl::instantiate(*r.spec);
    Pair p = run_pair(zoo.cfg, zoo.invariant.get(), budget, /*system_states=*/true, prof.sink());
    all_ok = all_ok && p.ok;
    print_row(name, zoo.cfg.num_nodes, p);
    emit(name, zoo.cfg.num_nodes, p);
  }

  const bool gate = gate_best >= kGateFactor;
  std::printf("# gate: >=%.0fx fewer transitions on at least one paxos row (best %.2fx) — %s\n",
              kGateFactor, gate_best, gate ? "PASS" : "FAIL");
  if (!all_ok) std::printf("# UNEXPECTED: a reduced run disagreed with its unreduced twin\n");
  return (all_ok && gate) ? 0 : 1;
}
