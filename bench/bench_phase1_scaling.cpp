// Phase-1 work-stealing scaling (DESIGN.md §12): handler execution fanned
// out over the ExplorePipeline, on a synthetic ring protocol whose handlers
// burn a deterministic amount of CPU — the regime the pipeline exists for
// (real protocol handlers doing real work, not micro-handlers bounded by
// publish overhead).
//
// Runs LMC-explore (system-state creation off) so the measured wall time IS
// phase 1, at 1/2/4/8 threads. Prints, per thread count: wall time, handler
// throughput (transitions/s), speedup over the 1-thread run, and whether
// the checker's normalized checkpoint bytes are IDENTICAL to the 1-thread
// run — the determinism contract, enforced by the exit status. Speedup is
// hardware-bound (a 1-core container shows ~1x); byte identity must hold
// anywhere.
//
// Knobs: LMC_BENCH_BUDGET_S (default 300), LMC_BENCH_THREADS (max, def. 8),
// LMC_BENCH_WORK (mix iterations per handler, default 20000),
// LMC_BENCH_MAX_INC (ring increments per node, default 4).
#include <memory>

#include "bench_util.hpp"
#include "dfuzz/oracle.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

constexpr std::uint32_t kEvInc = 1;
constexpr std::uint32_t kMsgPing = 7;

/// splitmix64 finalizer — the deterministic CPU burn.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Ring counter with heavy handlers: every handler folds `work` rounds of
/// mix() into an accumulator the state carries (so the work cannot be
/// optimized away and every execution is order-independent-deterministic).
class HeavyRingNode final : public StateMachine {
 public:
  HeavyRingNode(NodeId self, std::uint32_t n, std::uint32_t max_inc, std::uint32_t work)
      : self_(self), n_(n), max_inc_(max_inc), work_(work) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgPing, "heavy: unknown message");
    ++pings_;
    burn(m.payload.empty() ? 0 : m.payload[0]);
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (incs_ < max_inc_) {
      Writer w;
      w.u32(incs_);
      return {InternalEvent{kEvInc, std::move(w).take()}};
    }
    return {};
  }
  void handle_internal(const InternalEvent& ev, Context& ctx) override {
    ctx.local_assert(ev.kind == kEvInc, "heavy: unknown event");
    ++incs_;
    burn(incs_);
    Writer w;
    w.u32(self_);
    w.u32(incs_);
    ctx.send((self_ + 1) % n_, kMsgPing, std::move(w).take());
  }
  void serialize(Writer& w) const override {
    w.u32(incs_);
    w.u32(pings_);
    w.u64(acc_);
  }
  void deserialize(Reader& r) override {
    incs_ = r.u32();
    pings_ = r.u32();
    acc_ = r.u64();
  }

 private:
  void burn(std::uint64_t seed) {
    std::uint64_t x = acc_ ^ seed;
    for (std::uint32_t i = 0; i < work_; ++i) x = mix(x);
    acc_ = x;
  }

  NodeId self_;
  std::uint32_t n_;
  std::uint32_t max_inc_;
  std::uint32_t work_;
  std::uint32_t incs_ = 0;
  std::uint32_t pings_ = 0;
  std::uint64_t acc_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_phase1_scaling");
  const double budget = env_f("LMC_BENCH_BUDGET_S", 300.0);
  const std::uint32_t max_threads = env_u("LMC_BENCH_THREADS", 8);
  const std::uint32_t work = env_u("LMC_BENCH_WORK", 20000);
  const std::uint32_t max_inc = env_u("LMC_BENCH_MAX_INC", 4);

  SystemConfig cfg;
  cfg.num_nodes = 3;
  cfg.factory = [max_inc, work](NodeId self, std::uint32_t n) {
    return std::make_unique<HeavyRingNode>(self, n, max_inc, work);
  };

  std::printf("# phase-1 work-stealing scaling — heavy-handler ring (LMC-explore)\n");
  std::printf("# handlers/s = transitions / wall; identical = normalized checkpoint bytes\n");
  std::printf("%8s %10s %12s %10s %12s %10s\n", "threads", "wall_s", "handlers/s", "speedup",
              "transitions", "identical");

  bool ok = true;
  bool all_match = true;
  double base_wall = -1.0;
  Blob base_bytes;
  for (std::uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    LocalMcOptions opt;
    opt.enable_system_states = false;  // LMC-explore: the run IS phase 1
    opt.time_budget_s = budget;
    opt.num_threads = threads;
    opt.profile = prof.sink();
    LocalModelChecker mc(cfg, nullptr, opt);
    mc.run_from_initial();

    const double wall = mc.stats().elapsed_s;
    const double rate = wall > 0 ? static_cast<double>(mc.stats().transitions) / wall : 0.0;
    const Blob norm = dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes());
    bool match = true;
    if (threads == 1) {
      base_bytes = norm;
      base_wall = wall;
      ok = mc.stats().completed && mc.stats().transitions > 0;
    } else {
      match = norm == base_bytes;
      all_match = all_match && match;
    }
    std::printf("%8u %10.3f %12.0f %9.2fx %12llu %10s\n", threads, wall, rate,
                wall > 0 ? base_wall / wall : 0.0,
                static_cast<unsigned long long>(mc.stats().transitions), match ? "yes" : "NO");
    obs::BenchRecord rec("bench_phase1_scaling", "threads");
    rec.param("threads", static_cast<std::uint64_t>(threads));
    rec.param("work", static_cast<std::uint64_t>(work));
    rec.param("max_inc", static_cast<std::uint64_t>(max_inc));
    add_lmc_metrics(rec, mc.stats());
    rec.metric("handlers_per_s", rate);
    rec.metric("phase1_speedup", wall > 0 ? base_wall / wall : 0.0);
    rec.metric("byte_identical", static_cast<std::uint64_t>(match ? 1 : 0));
    rec.emit();
  }
  std::printf("# determinism: checkpoints %s across thread counts\n",
              all_match ? "byte-identical" : "DIVERGED");
  if (!ok) std::printf("# UNEXPECTED: 1-thread run incomplete or empty\n");
  return (ok && all_match) ? 0 : 1;
}
