// Ablation: the cost of LMC's ingredients, beyond the paper's figures.
//
//  1. parallel handler execution (the paper's "embarrassingly parallel"
//     claim) — thread sweep over the exploration phase;
//  2. system-state creation policy — GEN's incremental Cartesian product vs
//     OPT's projection index (Fig. 10's GEN/OPT gap, isolated);
//  3. soundness components on the buggy space — full joint search vs the
//     cached member-feasibility pre-check alone.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_ablation");
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 60.0);

  std::printf("# Ablation 1: threads vs exploration wall time (two-proposal space, depth 14)\n");
  std::printf("%8s %12s %14s %14s\n", "threads", "elapsed_s", "transitions", "node states");
  SystemConfig cfg2 = two_proposal_paxos();
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    LocalMcOptions opt;
    opt.max_total_depth = 14;
    opt.time_budget_s = budget;
    opt.use_projection = true;
    opt.enable_system_states = false;  // isolate exploration
    opt.num_threads = t;
    opt.profile = prof.sink();
    LocalModelChecker mc(cfg2, inv.get(), opt);
    mc.run_from_initial();
    std::printf("%8u %12.3f %14llu %14llu\n", t, mc.stats().elapsed_s,
                static_cast<unsigned long long>(mc.stats().transitions),
                static_cast<unsigned long long>(mc.stats().node_states));
    obs::BenchRecord rec("bench_ablation", "threads");
    rec.param("threads", static_cast<std::uint64_t>(t));
    add_lmc_metrics(rec, mc.stats());
    rec.emit();
  }

  std::printf("\n# Ablation 2: system-state creation policy (one-proposal space, full depth)\n");
  std::printf("%-10s %12s %16s %14s\n", "policy", "elapsed_s", "system states", "inv checks");
  SystemConfig cfg1 = one_proposal_paxos();
  for (bool projection : {false, true}) {
    LocalMcStats s =
        run_lmc(cfg1, inv.get(), 1u << 30, budget, projection, true, true, prof.sink());
    std::printf("%-10s %12.4f %16llu %14llu\n", projection ? "OPT" : "GEN", s.elapsed_s,
                static_cast<unsigned long long>(s.system_states),
                static_cast<unsigned long long>(s.invariant_checks));
    obs::BenchRecord rec("bench_ablation", projection ? "policy_opt" : "policy_gen");
    add_lmc_metrics(rec, s);
    rec.metric("invariant_checks", s.invariant_checks);
    rec.emit();
  }

  std::printf("\n# Ablation 3: exploration-only vs +system-states vs +soundness (buggy space)\n");
  paxos::DriverConfig d;
  d.proposers = {0, 1};
  d.max_proposals = 1;
  SystemConfig bug_cfg = paxos::make_config(3, paxos::CoreOptions{0, true}, d);
  std::printf("%-24s %12s %12s\n", "configuration", "elapsed_s", "found");
  for (int mode = 0; mode < 3; ++mode) {
    LocalMcOptions opt;
    opt.max_total_depth = 14;
    opt.time_budget_s = budget;
    opt.use_projection = true;
    opt.enable_system_states = mode >= 1;
    opt.enable_soundness = mode >= 2;
    opt.profile = prof.sink();
    LocalModelChecker mc(bug_cfg, inv.get(), opt);
    mc.run_from_initial();
    const char* name = mode == 0 ? "explore" : (mode == 1 ? "+system-states" : "+soundness");
    std::printf("%-24s %12.4f %12s\n", name, mc.stats().elapsed_s,
                mc.stats().confirmed_violations > 0 ? "yes" : "-");
    obs::BenchRecord rec("bench_ablation", name);
    add_lmc_metrics(rec, mc.stats());
    rec.emit();
  }
  return 0;
}
