// §5.6 — Testing 1Paxos: online model checking of the single-acceptor
// Multi-Paxos variant with the "++" initialization bug:
//     acceptor = *(members.begin()++);   // returns begin(): acceptor==leader
// The application triggers the fault detector with probability 0.1 instead
// of proposing, stressing the leader/acceptor-change machinery (which runs
// over the embedded PaxosUtility, itself implemented with full Paxos).
//
// Paper result: a new bug found after 225 s of live time.
#include "bench_util.hpp"
#include "online/crystalball.hpp"
#include "protocols/onepaxos.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_bug_1paxos_5_6");
  onepaxos::Options live_o;
  live_o.bug_postincrement_init = true;
  live_o.max_proposals = 3;
  live_o.max_leader_faults = 2;
  SystemConfig live_cfg = onepaxos::make_config(3, live_o);

  onepaxos::Options mc_o = live_o;
  mc_o.max_proposals = 4;
  SystemConfig mc_cfg = onepaxos::make_config(3, mc_o);

  auto inv = onepaxos::make_agreement_invariant();

  LiveOptions lo;
  lo.seed = env_u("LMC_BENCH_SEED", 2);
  lo.transport.drop_prob = 0.3;
  lo.app_min = 0.0;
  lo.app_max = 60.0;
  LiveRunner live(live_cfg, lo, fault_injecting_driver(0.1, onepaxos::kEvSuspectLeader));

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 12;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = env_f("LMC_BENCH_BUDGET_S", 15.0);
  opt.mc.profile = prof.sink();

  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  CrystalBallResult res = cb.run();

  std::printf("# §5.6: online bug hunt, 1Paxos with the ++ initialization bug\n");
  if (res.found) {
    std::printf("bug FOUND after %.0f s of live time (%d checker runs)\n", res.live_time,
                res.runs);
    std::printf("detecting LMC run: %.2f s wall, %llu node states\n", res.checker_elapsed_s,
                static_cast<unsigned long long>(res.last_stats.node_states));
    std::printf("witness schedule: %zu events\n", res.violation.witness.size());
  } else {
    std::printf("bug NOT found within %.0f s live time (%d runs) — unexpected\n", res.live_time,
                res.runs);
  }
  std::printf("# paper: found after 225 s of live time\n");

  obs::BenchRecord rec("bench_bug_1paxos_5_6", "online_hunt");
  rec.param("seed", static_cast<std::uint64_t>(lo.seed));
  rec.metric("found", static_cast<std::uint64_t>(res.found ? 1 : 0));
  rec.metric("live_time_s", res.live_time);
  rec.metric("checker_runs", static_cast<std::uint64_t>(res.runs));
  rec.metric("detecting_checker_s", res.checker_elapsed_s);
  add_lmc_metrics(rec, res.last_stats);
  rec.emit();
  return res.found ? 0 : 1;
}
