// Warm-start vs cold-restart online checking on the §5.5 workload.
//
// CrystalBall's cold loop re-executes every handler of every period's
// closure from scratch. The warm loop runs the identical per-period
// searches but shares one transition cache (persist/exec_cache.hpp): any
// (event, state) handler execution an earlier period already performed is
// replayed from the cache instead of re-run. Both modes run the identical
// live execution (same seed), so the transition counts are directly
// comparable.
//
// The default period is 15 s — checking at a higher frequency than the
// paper's 60 s. That is deliberately the regime warm start targets: with
// short periods the live system often barely moves between snapshots
// (sometimes not at all), so consecutive closures overlap heavily and the
// cache strips the duplicated handler work. Warm start is what makes
// high-frequency online checking affordable.
//
// Output: JSON lines — one {"mode":...,"period":...} record per checker
// period, then one {"summary":true} record per mode, then a final
// comparison record. Exit 0 iff the warm run finds the bug with strictly
// fewer total transitions than the cold run.
#include "bench_util.hpp"
#include "online/crystalball.hpp"

using namespace lmc;
using namespace lmc::bench;

namespace {

struct ModeResult {
  CrystalBallResult res;
};

ModeResult run_mode(const char* mode, bool warm, const SystemConfig& live_cfg,
                    const SystemConfig& mc_cfg, const Invariant* inv, std::uint64_t seed,
                    double budget_s, obs::ProfileSink* profile) {
  LiveOptions lo;
  lo.seed = seed;
  lo.transport.drop_prob = 0.3;
  lo.app_min = 0.0;
  lo.app_max = 60.0;
  LiveRunner live(live_cfg, lo, first_enabled_driver());

  CrystalBallOptions opt;
  opt.period = env_f("LMC_BENCH_PERIOD", 15.0);
  if (!(opt.period > 0)) opt.period = 15.0;  // atof garbage -> 0 would never advance
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 16;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = budget_s;
  opt.mc.profile = profile;
  opt.warm_start = warm;
  opt.on_period = [mode](const CrystalBallPeriod& p) {
    JsonLine j;
    j.kv("mode", mode)
        .kv("period", p.index)
        .kv("live_time_s", p.live_time)
        .kv("period_transitions", p.transitions)
        .kv("period_checker_s", p.checker_s)
        .kv("found", p.found)
        .stats(p.stats);
    j.print();
  };

  CrystalBall cb(mc_cfg, inv, live, opt);
  ModeResult out;
  out.res = cb.run();

  JsonLine j;
  j.kv("summary", true)
      .kv("mode", mode)
      .kv("found", out.res.found)
      .kv("runs", out.res.runs)
      .kv("live_time_s", out.res.live_time)
      .kv("total_transitions", out.res.total_transitions)
      .kv("total_cache_hits", out.res.total_cache_hits)
      .kv("detecting_checker_s", out.res.checker_elapsed_s)
      .stats(out.res.last_stats);
  j.print();

  obs::BenchRecord rec("bench_warm_online", mode);
  rec.param("period_s", opt.period);
  rec.param("seed", seed);
  rec.metric("found", static_cast<std::uint64_t>(out.res.found ? 1 : 0));
  rec.metric("checker_runs", static_cast<std::uint64_t>(out.res.runs));
  rec.metric("live_time_s", out.res.live_time);
  rec.metric("total_transitions", out.res.total_transitions);
  rec.metric("total_cache_hits", out.res.total_cache_hits);
  rec.metric("detecting_checker_s", out.res.checker_elapsed_s);
  rec.emit();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_warm_online");
  paxos::DriverConfig live_d;
  live_d.proposers = {0, 1, 2};
  live_d.max_proposals = 3;
  live_d.allow_fresh_index = true;
  SystemConfig live_cfg = paxos::make_config(3, paxos::CoreOptions{0, /*bug=*/true}, live_d);

  paxos::DriverConfig mc_d = live_d;
  mc_d.max_proposals = 4;
  mc_d.allow_fresh_index = false;  // bounded checker driver
  SystemConfig mc_cfg = paxos::make_config(3, paxos::CoreOptions{0, true}, mc_d);

  auto inv = paxos::make_agreement_invariant();
  const std::uint64_t seed = env_u("LMC_BENCH_SEED", 1);
  const double budget_s = env_f("LMC_BENCH_BUDGET_S", 3.0);

  ModeResult cold = run_mode("cold", false, live_cfg, mc_cfg, inv.get(), seed, budget_s,
                             prof.sink());
  ModeResult warm = run_mode("warm", true, live_cfg, mc_cfg, inv.get(), seed, budget_s,
                             prof.sink());

  const bool ok = cold.res.found && warm.res.found &&
                  warm.res.total_transitions < cold.res.total_transitions;
  const double saved =
      cold.res.total_transitions > 0
          ? 1.0 - static_cast<double>(warm.res.total_transitions) /
                      static_cast<double>(cold.res.total_transitions)
          : 0.0;
  JsonLine j;
  j.kv("comparison", true)
      .kv("cold_transitions", cold.res.total_transitions)
      .kv("warm_transitions", warm.res.total_transitions)
      .kv("warm_cache_hits", warm.res.total_cache_hits)
      .kv("transitions_saved_frac", saved)
      .kv("warm_strictly_cheaper", ok);
  j.print();

  obs::BenchRecord rec("bench_warm_online", "comparison");
  rec.param("seed", seed);
  rec.metric("cold_transitions", cold.res.total_transitions);
  rec.metric("warm_transitions", warm.res.total_transitions);
  rec.metric("warm_cache_hits", warm.res.total_cache_hits);
  rec.metric("transitions_saved_frac", saved);
  rec.metric("warm_strictly_cheaper", static_cast<std::uint64_t>(ok ? 1 : 0));
  rec.emit();
  return ok ? 0 : 1;
}
