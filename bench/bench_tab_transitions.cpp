// §5.1 (text): total transitions executed over the full one-proposal space.
//
// Paper result: B-DFS performs 157,332 transitions; LMC 1,186 — ~132x fewer,
// because an LMC transition s -> s' is executed once, while global model
// checking redundantly repeats it for every global state that embeds s with
// the event enabled.
#include "bench_util.hpp"

using namespace lmc;
using namespace lmc::bench;

int main(int argc, char** argv) {
  BenchProfile prof(argc, argv, "bench_tab_transitions");
  SystemConfig cfg = one_proposal_paxos();
  auto inv = paxos::make_agreement_invariant();
  const double budget = env_f("LMC_BENCH_BUDGET_S", 120.0);

  GlobalMcStats g = run_bdfs(cfg, inv.get(), 1u << 30, budget);
  LocalMcStats l =
      run_lmc(cfg, inv.get(), 1u << 30, budget, /*projection=*/true, true, true, prof.sink());

  std::printf("# Transitions over the full one-proposal Paxos space (§5.1)\n");
  std::printf("%-12s %14s %14s %10s\n", "checker", "transitions", "states", "done");
  std::printf("%-12s %14llu %14llu %10s\n", "B-DFS",
              static_cast<unsigned long long>(g.transitions),
              static_cast<unsigned long long>(g.unique_states), g.completed ? "yes" : "NO");
  std::printf("%-12s %14llu %14llu %10s\n", "LMC",
              static_cast<unsigned long long>(l.transitions),
              static_cast<unsigned long long>(l.node_states), l.completed ? "yes" : "NO");
  std::printf("\n# ratio: %.1fx fewer transitions (paper: 157,332 vs 1,186 = ~132x)\n",
              static_cast<double>(g.transitions) / static_cast<double>(l.transitions));

  {
    obs::BenchRecord rec("bench_tab_transitions", "bdfs");
    add_gmc_metrics(rec, g);
    rec.emit();
  }
  {
    obs::BenchRecord rec("bench_tab_transitions", "lmc");
    add_lmc_metrics(rec, l);
    rec.metric("transition_ratio",
               static_cast<double>(g.transitions) / static_cast<double>(l.transitions));
    rec.emit();
  }
  return 0;
}
