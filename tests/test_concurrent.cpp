// The lock-free concurrent tables behind the work-stealing phase 1
// (DESIGN.md §12): SegLog reserve/commit storms, ConcurrentHashIndex
// insert/lookup/tombstone storms, and ExplorePipeline order/error/backlog
// semantics. These tests are the TSan targets for the tables — the checker
// itself only exercises the single-writer subset (applier-only mutation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mc/concurrent/hash_index.hpp"
#include "mc/concurrent/pipeline.hpp"
#include "mc/concurrent/segmented_log.hpp"

namespace lmc::concurrent {
namespace {

constexpr unsigned kStormThreads = 8;

// ---------------------------------------------------------------------------
// SegLog

TEST(SegLog, SingleProducerBasics) {
  SegLog<int> log;
  EXPECT_TRUE(log.empty());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(log.push_back(i * 3), static_cast<std::uint64_t>(i));
  ASSERT_EQ(log.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_EQ(log[i], static_cast<int>(i) * 3);

  // Addresses are stable across growth: remember one, push far past it.
  const int* p = &log[7];
  for (int i = 0; i < 5000; ++i) log.push_back(i);
  EXPECT_EQ(p, &log[7]) << "a committed element must never move";
  EXPECT_EQ(log.mut(7), 21);
  log.mut(7) = -1;
  EXPECT_EQ(log[7], -1);
}

TEST(SegLog, CopyAndMoveKeepTheCommittedPrefix) {
  SegLog<std::string> log;
  for (int i = 0; i < 100; ++i) log.push_back("v" + std::to_string(i));
  SegLog<std::string> copy(log);
  ASSERT_EQ(copy.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(copy[i], log[i]);
  copy.push_back("tail");
  EXPECT_EQ(log.size(), 100u) << "copies are independent";

  SegLog<std::string> moved(std::move(copy));
  ASSERT_EQ(moved.size(), 101u);
  EXPECT_EQ(moved[100], "tail");
  SegLog<std::string> assigned;
  assigned = log;
  ASSERT_EQ(assigned.size(), 100u);
  EXPECT_EQ(assigned[99], "v99");
}

TEST(SegLog, MultiProducerCommitStormWithConcurrentReaders) {
  // 8 producers reserve/commit interleaved indices while 2 readers scan the
  // committed prefix: every index below size() must already hold its final
  // value (the watermark publishes fully constructed cells only).
  constexpr std::uint64_t kPerThread = 4000;
  constexpr std::uint64_t kTotal = kStormThreads * kPerThread;
  SegLog<std::uint64_t> log;
  std::atomic<bool> bad{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t n = 0;
      while (n < kTotal && !bad.load(std::memory_order_relaxed)) {
        n = log.size();
        for (std::uint64_t i = 0; i < n; ++i)
          if (log[i] != i * 7 + 1) {
            bad.store(true, std::memory_order_relaxed);
            break;
          }
      }
    });
  }
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kStormThreads; ++t) {
    producers.emplace_back([&] {
      for (std::uint64_t j = 0; j < kPerThread; ++j) {
        const std::uint64_t i = log.reserve();
        log.commit(i, i * 7 + 1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(bad.load()) << "a reader saw a not-yet-committed cell below the watermark";
  ASSERT_EQ(log.size(), kTotal);
  for (std::uint64_t i = 0; i < kTotal; ++i) ASSERT_EQ(log[i], i * 7 + 1) << "index " << i;
}

// ---------------------------------------------------------------------------
// ConcurrentHashIndex

TEST(ConcurrentHashIndex, InsertFindEraseBasics) {
  ConcurrentHashIndex idx(64);
  EXPECT_EQ(idx.find(42), ConcurrentHashIndex::kNotFound);
  EXPECT_EQ(idx.insert_if_absent(42, 7), 7u);
  EXPECT_EQ(idx.insert_if_absent(42, 99), 7u) << "duplicate insert returns the existing value";
  EXPECT_EQ(idx.find(42), 7u);
  EXPECT_TRUE(idx.contains(42));
  EXPECT_EQ(idx.size(), 1u);

  EXPECT_TRUE(idx.erase(42));
  EXPECT_FALSE(idx.erase(42));
  EXPECT_EQ(idx.find(42), ConcurrentHashIndex::kNotFound);
  EXPECT_EQ(idx.size(), 0u);

  // Reinsert after a tombstone lands in a fresh slot and is findable.
  EXPECT_EQ(idx.insert_if_absent(42, 8), 8u);
  EXPECT_EQ(idx.find(42), 8u);
}

TEST(ConcurrentHashIndex, GrowthChainsTablesWithoutLosingKeys) {
  // Push far past the initial capacity: growth chains larger tables in
  // front; keys inserted before every growth stay reachable (no migration).
  ConcurrentHashIndex idx(64);
  constexpr std::uint32_t kKeys = 20000;
  for (std::uint32_t i = 0; i < kKeys; ++i)
    ASSERT_EQ(idx.insert_if_absent(0x9e3779b97f4a7c15ull * (i + 1), i), i);
  EXPECT_EQ(idx.size(), kKeys);
  for (std::uint32_t i = 0; i < kKeys; ++i)
    ASSERT_EQ(idx.find(0x9e3779b97f4a7c15ull * (i + 1)), i) << "key " << i;
  EXPECT_GT(idx.bytes(), std::size_t{kKeys} * 16) << "chain footprint is accounted";
}

TEST(ConcurrentHashIndex, EightThreadInsertStormDisjointKeys) {
  ConcurrentHashIndex idx(64);
  constexpr std::uint32_t kPerThread = 3000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kStormThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t j = 0; j < kPerThread; ++j) {
        const std::uint32_t v = t * kPerThread + j;
        const Hash64 key = 0x9e3779b97f4a7c15ull * (v + 1);
        ASSERT_EQ(idx.insert_if_absent(key, v), v);
        ASSERT_EQ(idx.find(key), v) << "own insert must be immediately visible";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(idx.size(), std::size_t{kStormThreads} * kPerThread);
  for (std::uint32_t v = 0; v < kStormThreads * kPerThread; ++v)
    ASSERT_EQ(idx.find(0x9e3779b97f4a7c15ull * (v + 1)), v);
}

TEST(ConcurrentHashIndex, EightThreadSameKeyRaceHasOneWinner) {
  // All threads race insert_if_absent on the SAME keys with different
  // values: exactly one value per key wins and every thread observes it.
  ConcurrentHashIndex idx(64);
  constexpr std::uint32_t kKeys = 512;
  std::vector<std::vector<std::uint32_t>> got(kStormThreads,
                                              std::vector<std::uint32_t>(kKeys));
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kStormThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t k = 0; k < kKeys; ++k)
        got[t][k] = idx.insert_if_absent(1000 + k, t * kKeys + k);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(idx.size(), kKeys);
  for (std::uint32_t k = 0; k < kKeys; ++k) {
    const std::uint32_t winner = idx.find(1000 + k);
    ASSERT_NE(winner, ConcurrentHashIndex::kNotFound);
    for (unsigned t = 0; t < kStormThreads; ++t)
      ASSERT_EQ(got[t][k], winner) << "thread " << t << " key " << k;
  }
}

TEST(ConcurrentHashIndex, TombstoneStormKeepsProbeChainsIntact) {
  // Writers erase/reinsert their own key slice while readers hammer find()
  // across the whole key space: a reader must never see a key vanish that
  // its slice-owner holds inserted, and tombstones must not break probes.
  ConcurrentHashIndex idx(64);
  constexpr std::uint32_t kKeys = 1024;
  for (std::uint32_t k = 0; k < kKeys; ++k) idx.insert_if_absent(k + 1, k);

  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Even keys churn; odd keys are stable and must ALWAYS be found.
        for (std::uint32_t k = 1; k < kKeys; k += 2)
          if (idx.find(k + 1) != k) {
            bad.store(true, std::memory_order_relaxed);
            return;
          }
      }
    });
  }
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        for (std::uint32_t k = t * 2; k < kKeys; k += 8) {  // disjoint even slices
          ASSERT_TRUE(idx.erase(k + 1));
          ASSERT_EQ(idx.insert_if_absent(k + 1, k), k);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(bad.load()) << "a stable key went missing during the tombstone storm";
  EXPECT_EQ(idx.size(), kKeys);
  for (std::uint32_t k = 0; k < kKeys; ++k) ASSERT_EQ(idx.find(k + 1), k);
}

// ---------------------------------------------------------------------------
// ExplorePipeline

using IntPipe = ExplorePipeline<int, int>;

std::vector<int> drain_all(IntPipe& pipe) {
  std::vector<int> out;
  while (pipe.have_pending()) {
    IntPipe::Slot& s = pipe.front();
    if (s.error) std::rethrow_exception(s.error);
    out.insert(out.end(), s.execs.begin(), s.execs.end());
    pipe.pop();
  }
  return out;
}

TEST(ExplorePipeline, ConsumesInPublicationOrderAtAnyWorkerCount) {
  auto fn = [](const int& t) { return std::vector<int>{t * 2, t * 2 + 1}; };
  std::vector<int> expected;
  for (int i = 0; i < 500; ++i) {
    expected.push_back(i * 2);
    expected.push_back(i * 2 + 1);
  }
  for (std::uint32_t workers : {0u, 7u}) {
    IntPipe pipe(workers, fn);
    for (int i = 0; i < 500; ++i) EXPECT_EQ(pipe.publish(i), static_cast<std::uint64_t>(i));
    EXPECT_EQ(drain_all(pipe), expected) << workers << " workers";
    EXPECT_EQ(pipe.consumed_count(), 500u);
    pipe.stop_and_join();
  }
}

TEST(ExplorePipeline, InterleavedPublishConsumeStreams) {
  // The checker's real shape: publish a generation, consume while workers
  // run ahead, publish the next generation from what was consumed.
  auto fn = [](const int& t) { return std::vector<int>{t}; };
  IntPipe pipe(3, fn);
  std::vector<int> seen;
  int next = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) pipe.publish(next++);
    while (pipe.have_pending()) {
      IntPipe::Slot& s = pipe.front();
      ASSERT_EQ(s.error, nullptr);
      seen.insert(seen.end(), s.execs.begin(), s.execs.end());
      pipe.pop();
    }
  }
  ASSERT_EQ(seen.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);
  pipe.stop_and_join();
}

TEST(ExplorePipeline, BacklogTasksAreTheUnconsumedTailInOrder) {
  auto fn = [](const int& t) { return std::vector<int>{t}; };
  IntPipe pipe(0, fn);
  for (int i = 0; i < 10; ++i) pipe.publish(i);
  for (int i = 0; i < 4; ++i) {
    pipe.front();
    pipe.pop();
  }
  const std::vector<int> tail = pipe.backlog_tasks();
  ASSERT_EQ(tail.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(tail[static_cast<std::size_t>(i)], i + 4);
}

TEST(ExplorePipeline, ErrorsSurfaceAtConsumeTimeInOrder) {
  auto fn = [](const int& t) -> std::vector<int> {
    if (t == 13) throw std::runtime_error("task 13 failed");
    return {t};
  };
  for (std::uint32_t workers : {0u, 7u}) {
    IntPipe pipe(workers, fn);
    for (int i = 0; i < 20; ++i) pipe.publish(i);
    int consumed = 0;
    bool threw = false;
    while (pipe.have_pending()) {
      IntPipe::Slot& s = pipe.front();
      if (s.error) {
        EXPECT_EQ(consumed, 13) << "errors must surface in publication order";
        EXPECT_THROW(std::rethrow_exception(s.error), std::runtime_error);
        threw = true;
        pipe.pop();
        ++consumed;
        continue;  // the pipeline itself survives an error slot
      }
      ASSERT_EQ(s.execs.size(), 1u);
      ASSERT_EQ(s.execs[0], consumed);
      pipe.pop();
      ++consumed;
    }
    EXPECT_TRUE(threw) << workers << " workers";
    EXPECT_EQ(consumed, 20);
    pipe.stop_and_join();
  }
}

TEST(ExplorePipeline, CountDroppedErrorsSeesEveryUnconsumedFailure) {
  // Every task throws. After workers finish them all, the unconsumed range
  // holds 8 READY error slots; an aborting applier rethrows the first and
  // accounts the other 7 (the checker's kWorkerError path).
  auto fn = [](const int&) -> std::vector<int> { throw std::runtime_error("boom"); };
  IntPipe pipe(7, fn);
  for (int i = 0; i < 8; ++i) pipe.publish(i);
  while (pipe.count_dropped_errors() < 8) std::this_thread::yield();
  pipe.stop_and_join();
  EXPECT_EQ(pipe.count_dropped_errors(), 8u);
  IntPipe::Slot& s = pipe.front();
  EXPECT_NE(s.error, nullptr);
  EXPECT_EQ(pipe.count_dropped_errors() - 1, 7u) << "secondary errors beyond the rethrown front";
}

TEST(ExplorePipeline, StopAndJoinIsIdempotentAndDtorSafeWithBacklog) {
  auto fn = [](const int& t) { return std::vector<int>{t}; };
  auto pipe = std::make_unique<IntPipe>(4, fn);
  for (int i = 0; i < 100; ++i) pipe->publish(i);
  pipe->stop_and_join();
  pipe->stop_and_join();  // idempotent
  // Destruction with a partially executed backlog must not leak or hang
  // (ASan/TSan builds verify the "not leak" half).
  pipe.reset();
}

}  // namespace
}  // namespace lmc::concurrent
