// Partial-order reduction (DESIGN.md §14): the reduced-vs-unreduced
// differential battery over the frozen fuzz corpus, the symmetric
// generator and the zoo; 1-vs-8-thread byte identity; checkpoint v5
// section-14 round-trips (including the deferred-pair tail); the
// mode/digest resume guards; and the Paxos prune-effectiveness floor that
// keeps the whole apparatus from silently degrading to a no-op.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "mc/local_mc.hpp"
#include "persist/checkpoint.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

using indep::PorMode;

// Set by tests/CMakeLists.txt.
const std::string kZooDir = LMC_ZOO_DIR;

LocalMcOptions por_opts() {
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.por.mode = PorMode::kOn;
  opt.por.audit = true;  // every prune decision re-executes both orders
  return opt;
}

SystemConfig paxos_cfg(std::uint32_t n, std::uint32_t proposers = 1) {
  paxos::DriverConfig d;
  d.proposers.clear();
  for (std::uint32_t p = 0; p < proposers; ++p) d.proposers.insert(p);
  d.max_proposals = 1;
  return paxos::make_config(n, paxos::CoreOptions{}, d);
}

// --- differential battery ---------------------------------------------------

TEST(PorDifferential, FrozenCorpusConfirmedSetsIdentical) {
  // Every frozen corpus seed through the oracle's POR mode: reduced and
  // unreduced confirmed sets must be EXACTLY equal (no permutation slack),
  // every reduced witness must replay, the commutation auditor runs at
  // every prune, and 1-vs-8-thread reduced runs must match byte for byte.
  dfuzz::OracleOptions oopt;
  oopt.check_por = true;
  dfuzz::DiffOracle oracle(oopt);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 1; i <= 50; ++i) seeds.push_back(i);
  for (std::uint64_t s : {97ull, 171ull, 664ull}) seeds.push_back(s);

  std::uint64_t por_checked = 0, pruned = 0, audits = 0;
  for (std::uint64_t seed : seeds) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << "seed " << seed << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.por_checked) ++por_checked;
    pruned += rep.por_pruned;
    audits += rep.por_audits;
  }
  EXPECT_GT(por_checked, 0u) << "no corpus seed activated the reduction; gate is vacuous";
  EXPECT_GT(pruned, 0u) << "the reduction activated but never pruned anything";
  EXPECT_EQ(audits, pruned) << "audit_every=1 must audit every prune decision";
}

TEST(PorDifferential, SymmetricGeneratorComposesWithSymmetry) {
  // POR on top of the symmetry reduction on the replicated-role generator:
  // both reductions active in the same run, both honesty checks in force.
  dfuzz::OracleOptions oopt;
  oopt.check_por = true;
  oopt.check_symmetry = true;
  dfuzz::DiffOracle oracle(oopt);

  std::uint64_t por_checked = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_symmetric_spec(seed));
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << "seed " << seed << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.por_checked) ++por_checked;
  }
  EXPECT_GT(por_checked, 0u);
}

TEST(PorDifferential, ZooSpecsAgree) {
  // Every hand-written zoo protocol through the same exact-equality check.
  std::uint64_t por_checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(kZooDir)) {
    if (entry.path().extension() != ".lmc") continue;
    dsl::LoadResult r = dsl::load_file(entry.path().string());
    ASSERT_TRUE(r.ok()) << entry.path() << ":\n" << r.diags.to_string();
    dsl::CompiledProtocol p = dsl::instantiate(*r.spec);
    dfuzz::OracleOptions oopt;
    oopt.check_por = true;
    dfuzz::DiffOracle oracle(oopt);
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << entry.path() << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << entry.path() << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.por_checked) ++por_checked;
  }
  EXPECT_GT(por_checked, 0u) << "no zoo spec activated the reduction";
}

// --- effectiveness ----------------------------------------------------------

TEST(PorEffectiveness, PaxosPrunesWithExactStateAgreement) {
  // The reduction must actually reduce on Paxos (the bench gates >=2x; this
  // tier-1 floor is deliberately looser at >=1.5x) while traversing exactly
  // the same node-state set — sleep-set pruning skips deliveries, never
  // states.
  SystemConfig cfg = paxos_cfg(3);
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions plain_opt;
  plain_opt.stop_on_confirmed = false;
  plain_opt.enable_system_states = false;
  LocalModelChecker plain(cfg, inv.get(), plain_opt);
  plain.run_from_initial();
  ASSERT_TRUE(plain.stats().completed);
  EXPECT_EQ(plain.por_stats().active, 0u);

  LocalMcOptions red_opt = por_opts();
  red_opt.enable_system_states = false;
  LocalModelChecker reduced(cfg, inv.get(), red_opt);
  reduced.run_from_initial();
  ASSERT_TRUE(reduced.stats().completed);
  ASSERT_EQ(reduced.por_stats().active, 1u);
  EXPECT_GT(reduced.por_stats().relation_pairs, 0u);
  EXPECT_GT(reduced.por_stats().pairs_pruned, 0u);
  EXPECT_EQ(reduced.por_stats().audits, reduced.por_stats().pairs_pruned);
  EXPECT_EQ(reduced.stats().node_states, plain.stats().node_states);
  EXPECT_EQ(reduced.stats().confirmed_violations, plain.stats().confirmed_violations);
  EXPECT_GE(static_cast<double>(plain.stats().transitions),
            1.5 * static_cast<double>(reduced.stats().transitions));
}

TEST(PorEffectiveness, BoundedDepthDisablesTheReduction) {
  // Pruning first-discovery edges shifts recorded depths; under a depth
  // bound the shifted states would be truncated and children silently lost.
  // The activation guard must therefore refuse bounded runs.
  SystemConfig cfg = paxos_cfg(3);
  auto inv = paxos::make_agreement_invariant();
  for (int which = 0; which < 2; ++which) {
    LocalMcOptions opt = por_opts();
    opt.enable_system_states = false;
    if (which == 0)
      opt.max_total_depth = 6;
    else
      opt.max_chain_depth = 6;
    LocalModelChecker mc(cfg, inv.get(), opt);
    mc.run_from_initial();
    ASSERT_TRUE(mc.stats().completed);
    EXPECT_EQ(mc.por_stats().active, 0u) << (which == 0 ? "total" : "chain");
    EXPECT_EQ(mc.por_stats().pairs_pruned, 0u);
  }
}

// --- determinism ------------------------------------------------------------

TEST(PorDeterminism, EightThreadsByteIdenticalToOne) {
  SystemConfig cfg = paxos_cfg(3, /*proposers=*/2);
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt = por_opts();
  opt.enable_system_states = false;
  LocalModelChecker one(cfg, inv.get(), opt);
  one.run_from_initial();
  ASSERT_TRUE(one.stats().completed);
  ASSERT_GT(one.por_stats().pairs_pruned, 0u);

  LocalMcOptions opt8 = opt;
  opt8.num_threads = 8;
  LocalModelChecker eight(cfg, inv.get(), opt8);
  eight.run_from_initial();
  ASSERT_TRUE(eight.stats().completed);
  EXPECT_EQ(dfuzz::normalized_checkpoint_bytes(one.checkpoint_bytes()),
            dfuzz::normalized_checkpoint_bytes(eight.checkpoint_bytes()));
}

// --- checkpoint/resume ------------------------------------------------------

std::string scratch_path(const char* tag) {
  return (std::filesystem::temp_directory_path() / (std::string("lmc_portest_") + tag + ".ckpt"))
      .string();
}

TEST(PorResume, SectionFourteenRoundTripsThroughTheCodec) {
  SystemConfig cfg = paxos_cfg(3);
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt = por_opts();
  opt.enable_system_states = false;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run_from_initial();
  ASSERT_TRUE(mc.stats().completed);
  ASSERT_EQ(mc.por_stats().active, 1u);

  const Blob bytes = mc.checkpoint_bytes();
  CheckerImage img = decode_checkpoint(bytes);
  EXPECT_TRUE(img.has_por);
  EXPECT_NE(img.por_digest, 0u);
  EXPECT_EQ(img.por_stats, mc.por_stats());
  // Canonical encoding: decode -> encode reproduces the input bytes.
  EXPECT_EQ(encode_checkpoint(img), bytes);

  const CheckpointInfo info = inspect_checkpoint(bytes);
  EXPECT_TRUE(info.has_por);
  EXPECT_EQ(info.por_digest, img.por_digest);
  EXPECT_EQ(info.por_pruned, mc.por_stats().pairs_pruned);
}

TEST(PorResume, InterruptedRunResumesByteIdentically) {
  // Interrupt mid-run — with POR on, the checkpoint must carry the pruner's
  // forward records AND any pairs deferred one generation whose retry had
  // not happened yet; the resumed run must land byte-identical to the
  // straight one.
  SystemConfig cfg = paxos_cfg(3);
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt = por_opts();
  opt.enable_system_states = false;
  LocalModelChecker straight(cfg, inv.get(), opt);
  straight.run_from_initial();
  ASSERT_TRUE(straight.stats().completed);
  ASSERT_GT(straight.por_stats().deferrals, 0u) << "test must exercise the deferred-pair tail";

  bool exercised_deferred_tail = false;
  for (std::uint64_t cut = 2; cut + 1 < straight.stats().transitions; cut += 3) {
    LocalMcOptions half = opt;
    half.max_transitions = cut;
    LocalModelChecker interrupted(cfg, inv.get(), half);
    interrupted.run_from_initial();
    if (interrupted.stats().completed) break;
    const Blob bytes = interrupted.checkpoint_bytes();
    if (decode_checkpoint(bytes).por_deferred.empty()) continue;
    exercised_deferred_tail = true;

    const std::string path = scratch_path("resume");
    interrupted.save_checkpoint(path);
    LocalModelChecker resumed(cfg, inv.get(), opt);
    resumed.run_resumed(path);
    std::remove(path.c_str());
    ASSERT_TRUE(resumed.stats().completed);
    EXPECT_EQ(resumed.por_stats().pairs_pruned, straight.por_stats().pairs_pruned);
    EXPECT_EQ(dfuzz::normalized_checkpoint_bytes(resumed.checkpoint_bytes()),
              dfuzz::normalized_checkpoint_bytes(straight.checkpoint_bytes()));
    break;
  }
  EXPECT_TRUE(exercised_deferred_tail)
      << "no interruption point left a deferred pair in flight; widen the cut sweep";
}

TEST(PorResume, ModeAndDigestMismatchesOnLoadThrow) {
  SystemConfig cfg = paxos_cfg(3);
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions on = por_opts();
  on.enable_system_states = false;
  LocalModelChecker writer(cfg, inv.get(), on);
  writer.run_from_initial();
  ASSERT_EQ(writer.por_stats().active, 1u);
  const std::string path = scratch_path("mismatch");
  writer.save_checkpoint(path);

  // A pruned checkpoint resumed without the reduction would under-explore
  // (and vice versa): refuse loudly.
  LocalMcOptions off;
  off.stop_on_confirmed = false;
  off.enable_system_states = false;
  LocalModelChecker off_mc(cfg, inv.get(), off);
  EXPECT_THROW(off_mc.load_checkpoint(path), CheckpointError);

  // Same mode, different relation: the digest guard must reject footprints
  // that derive a different independence relation than the writer pruned
  // under. A declared self-pair is never derived statically, so admitting
  // one is guaranteed to change the relation.
  SystemConfig declared = cfg;
  auto extra = std::make_shared<ProtocolFootprints>(*cfg.footprints);
  extra->nodes[0].declared_independent.push_back({true, 0, true, 0, "forged for the test"});
  declared.footprints = extra;
  LocalModelChecker other(declared, inv.get(), on);
  EXPECT_THROW(other.load_checkpoint(path), CheckpointError);

  LocalModelChecker plain_writer(cfg, inv.get(), off);
  plain_writer.run_from_initial();
  plain_writer.save_checkpoint(path);
  LocalModelChecker on_mc(cfg, inv.get(), on);
  EXPECT_THROW(on_mc.load_checkpoint(path), CheckpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lmc
