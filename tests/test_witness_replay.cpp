// Witness replay round-trips: for the buggy variant of EVERY example
// protocol, run LMC with stop_on_confirmed=false and replay the witness
// schedule of EVERY confirmed violation through the real handlers
// (src/mc/replay.*) — each must reconstruct exactly the violating states.
// This is the end-to-end guarantee behind "a confirmed violation is a real
// execution", exercised on real protocols rather than generated ones.
#include <gtest/gtest.h>

#include <functional>

#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/election.hpp"
#include "protocols/onepaxos.hpp"
#include "protocols/paxos.hpp"
#include "protocols/randtree.hpp"
#include "protocols/twophase.hpp"

namespace lmc {
namespace {

/// Replay every confirmed violation of a finished run; returns the count.
std::size_t replay_all_confirmed(const SystemConfig& cfg, const LocalModelChecker& mc,
                                 const char* what) {
  std::size_t confirmed = 0;
  for (const LocalViolation& v : mc.violations()) {
    if (!v.confirmed) continue;
    ++confirmed;
    ReplayResult r = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(), v.witness,
                                     mc.events(), v.state_hashes);
    EXPECT_TRUE(r.ok) << what << ": confirmed violation #" << confirmed
                      << " failed to replay: " << r.error;
  }
  return confirmed;
}

TEST(WitnessReplay, RandTreeBugAllConfirmedReplay) {
  SystemConfig cfg = randtree::make_config(4, randtree::Options{2, true});
  randtree::DisjointInvariant inv;
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.use_projection = true;
  opt.time_budget_s = 120;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_TRUE(mc.stats().completed);
  EXPECT_GE(replay_all_confirmed(cfg, mc, "randtree"), 1u);
}

TEST(WitnessReplay, TwoPhaseMajorityBugAllConfirmedReplay) {
  SystemConfig cfg = twophase::make_config(3, twophase::Options{{2}, true});
  twophase::AtomicityInvariant inv;
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.use_projection = true;
  opt.time_budget_s = 120;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_TRUE(mc.stats().completed);
  EXPECT_GE(replay_all_confirmed(cfg, mc, "twophase"), 1u);
}

TEST(WitnessReplay, ElectionForwardBugAllConfirmedReplay) {
  SystemConfig cfg = election::make_config(3, election::Options{{0}, true});
  election::SingleLeaderInvariant inv;
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.use_projection = true;
  opt.time_budget_s = 120;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_TRUE(mc.stats().completed);
  EXPECT_GE(replay_all_confirmed(cfg, mc, "election"), 1u);
}

// --- live-state scenarios (the paper's §5.5 / §5.6 rediscoveries) ----------

/// FIFO-deliver every in-flight message, discarding those matching `drop`.
void pump(const SystemConfig& cfg, std::vector<Blob>& nodes, std::vector<Message>& flight,
          const std::function<bool(const Message&)>& drop) {
  while (!flight.empty()) {
    Message m = flight.front();
    flight.erase(flight.begin());
    if (drop(m)) continue;
    ExecResult r = exec_message(cfg, m.dst, nodes[m.dst], m);
    ASSERT_FALSE(r.assert_failed) << r.assert_msg;
    nodes[m.dst] = std::move(r.state);
    for (Message& out : r.sent) flight.push_back(std::move(out));
  }
}

// §5.5 live state: node0 proposed and learned v1; node1 accepted it; the
// other Learns were dropped (mirror of the builder in test_parallel_mc).
std::vector<Blob> build_5_5_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  auto fire = [&](NodeId n) {
    auto evs = internal_events_of(cfg, n, nodes[n]);
    ASSERT_FALSE(evs.empty());
    ExecResult r = exec_internal(cfg, n, nodes[n], evs[0]);
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
    for (Message& out : r.sent) flight.push_back(std::move(out));
  };
  auto deliver = [&](NodeId dst, std::uint32_t type) {
    for (std::size_t i = 0; i < flight.size(); ++i) {
      if (flight[i].dst != dst || flight[i].type != type) continue;
      Message m = flight[i];
      flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
      ExecResult r = exec_message(cfg, dst, nodes[dst], m);
      ASSERT_FALSE(r.assert_failed);
      nodes[dst] = std::move(r.state);
      for (Message& out : r.sent) flight.push_back(std::move(out));
      return;
    }
    FAIL() << "no in-flight message of type " << type << " for node " << dst;
  };
  for (NodeId n = 0; n < 3; ++n) fire(n);  // init x3
  fire(0);                                 // node0 proposes
  for (NodeId n = 0; n < 3; ++n) deliver(n, paxos::kPrepare);
  for (int i = 0; i < 3; ++i) deliver(0, paxos::kPrepareResponse);
  deliver(0, paxos::kAccept);
  deliver(1, paxos::kAccept);
  deliver(0, paxos::kLearn);
  deliver(0, paxos::kLearn);
  return nodes;
}

TEST(WitnessReplay, PaxosWidsBugAllConfirmedReplay) {
  SystemConfig cfg =
      paxos::make_config(3, paxos::CoreOptions{0, /*bug=*/true}, paxos::DriverConfig{{0, 1}, 1});
  auto inv = paxos::make_agreement_invariant();
  std::vector<Blob> live;
  build_5_5_live_state(cfg).swap(live);
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.max_total_depth = 18;
  opt.use_projection = true;
  opt.time_budget_s = 300;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});
  ASSERT_TRUE(mc.stats().completed);
  EXPECT_GE(replay_all_confirmed(cfg, mc, "paxos"), 1u);
}

// §5.6 live state with the ++ bug: N3 (node 2) campaigns and wins leadership
// while every message to N1 (node 0) is dropped; node 0 still believes it is
// the leader (mirror of the builder in test_onepaxos).
std::vector<Blob> build_5_6_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  for (NodeId n = 0; n < 3; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {onepaxos::kEvInit, {}});
    EXPECT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
  }
  auto drop_to_0 = [](const Message& m) { return m.dst == 0; };

  ExecResult r = exec_internal(cfg, 2, nodes[2], {onepaxos::kEvSuspectLeader, {}});
  EXPECT_FALSE(r.assert_failed);
  nodes[2] = std::move(r.state);
  for (Message& m : r.sent) flight.push_back(std::move(m));
  pump(cfg, nodes, flight, drop_to_0);

  // Node 2 is now leader with acceptor node 1; it proposes.
  auto evs = internal_events_of(cfg, 2, nodes[2]);
  bool proposed = false;
  for (const InternalEvent& ev : evs) {
    if (ev.kind == onepaxos::kEvPropose) {
      ExecResult rr = exec_internal(cfg, 2, nodes[2], ev);
      EXPECT_FALSE(rr.assert_failed);
      nodes[2] = std::move(rr.state);
      for (Message& m : rr.sent) flight.push_back(std::move(m));
      proposed = true;
    }
  }
  EXPECT_TRUE(proposed);
  pump(cfg, nodes, flight, drop_to_0);
  return nodes;
}

TEST(WitnessReplay, OnePaxosInitBugAllConfirmedReplay) {
  SystemConfig cfg =
      onepaxos::make_config(3, onepaxos::Options{.bug_postincrement_init = true});
  auto inv = onepaxos::make_agreement_invariant();
  auto live = build_5_6_live_state(cfg);
  LocalMcOptions opt;
  // Exhausting depth 10 without the early stop takes minutes; stopping at
  // the first confirmed violation still replays everything recorded.
  opt.max_total_depth = 10;
  opt.use_projection = true;
  opt.time_budget_s = 300;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});
  EXPECT_GE(replay_all_confirmed(cfg, mc, "onepaxos"), 1u);
}

}  // namespace
}  // namespace lmc
