// Global checker (B-DFS) mechanics: bounds, dedup, re-expansion via shorter
// paths, violation traces, and budget behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "mc/global_mc.hpp"
#include "protocols/tree.hpp"

namespace lmc {
namespace {

constexpr std::uint32_t kMsgPing = 7;
constexpr std::uint32_t kEvKick = 1;

// Ring ping protocol: node 0 kicks once; each ping hop increments the
// receiving node's counter and forwards until `hops` is exhausted.
class RingNode final : public StateMachine {
 public:
  RingNode(NodeId self, std::uint32_t n, std::uint32_t hops)
      : self_(self), n_(n), hops_(hops) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgPing, "ring: bad type");
    Reader r(m.payload);
    std::uint32_t remaining = r.u32();
    ++count_;
    if (remaining > 0) {
      Writer w;
      w.u32(remaining - 1);
      ctx.send((self_ + 1) % n_, kMsgPing, std::move(w).take());
    }
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (self_ == 0 && !kicked_) return {InternalEvent{kEvKick, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    kicked_ = true;
    Writer w;
    w.u32(hops_);
    ctx.send(1 % n_, kMsgPing, std::move(w).take());
  }
  void serialize(Writer& w) const override {
    w.b(kicked_);
    w.u32(count_);
  }
  void deserialize(Reader& r) override {
    kicked_ = r.b();
    count_ = r.u32();
  }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::uint32_t hops_;
  bool kicked_ = false;
  std::uint32_t count_ = 0;
};

SystemConfig ring_cfg(std::uint32_t n, std::uint32_t hops) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [hops](NodeId self, std::uint32_t num) {
    return std::make_unique<RingNode>(self, num, hops);
  };
  return cfg;
}

std::uint32_t count_of(const Blob& b) {
  Reader r(b);
  r.b();
  return r.u32();
}

class CountLimit final : public Invariant {
 public:
  explicit CountLimit(std::uint32_t limit) : limit_(limit) {}
  std::string name() const override { return "ring.count_limit"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    std::uint32_t total = 0;
    for (const Blob* b : sys) total += count_of(*b);
    return total < limit_;
  }

 private:
  std::uint32_t limit_;
};

TEST(GlobalMc, ChainExploresExactStateCount) {
  // 2-node ring, 2 hops: kick -> ping(1) to node1 -> ping(0) to node0.
  // Linear chain: exactly 4 global states (no interleaving possible).
  SystemConfig cfg = ring_cfg(2, 1);
  CountLimit inv(100);
  GlobalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().unique_states, 4u);
  EXPECT_EQ(mc.stats().transitions, 3u);
  EXPECT_EQ(mc.stats().max_depth_reached, 3u);
}

TEST(GlobalMc, DepthBoundCutsExploration) {
  SystemConfig cfg = ring_cfg(2, 5);
  CountLimit inv(100);
  GlobalMcOptions opt;
  opt.max_depth = 2;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_EQ(mc.stats().max_depth_reached, 2u);
  EXPECT_EQ(mc.stats().unique_states, 3u);  // start + kick + first hop
}

TEST(GlobalMc, ViolationDetectedWithTrace) {
  SystemConfig cfg = ring_cfg(2, 3);
  CountLimit inv(2);  // violated after the second delivery
  GlobalMcOptions opt;
  opt.stop_on_violation = true;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GE(mc.stats().violations, 1u);
  const GlobalViolation& v = mc.violations().front();
  EXPECT_EQ(v.invariant, "ring.count_limit");
  EXPECT_EQ(v.trace.size(), v.depth);
  EXPECT_GE(v.depth, 3u);  // kick + 2 deliveries
}

TEST(GlobalMc, TransitionBudgetStops) {
  SystemConfig cfg = ring_cfg(3, 20);
  CountLimit inv(1000);
  GlobalMcOptions opt;
  opt.max_transitions = 5;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_FALSE(mc.stats().completed);
  EXPECT_LE(mc.stats().transitions, 6u);
}

TEST(GlobalMc, SystemStateTuplesCollected) {
  SystemConfig cfg = ring_cfg(2, 2);
  CountLimit inv(100);
  GlobalMcOptions opt;
  opt.collect_system_states = true;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  // Linear chain: every global state has a distinct system state here.
  EXPECT_EQ(mc.system_state_tuples().size(), mc.stats().unique_states);
  for (const auto& [h, tuple] : mc.system_state_tuples()) {
    (void)h;
    EXPECT_EQ(tuple.size(), 2u);
  }
}

TEST(GlobalMc, RunFromExplicitState) {
  SystemConfig cfg = ring_cfg(2, 1);
  CountLimit inv(100);
  auto nodes = initial_states(cfg);
  Message ping;
  ping.dst = 1;
  ping.src = 0;
  ping.type = kMsgPing;
  {
    Writer w;
    w.u32(0);
    ping.payload = std::move(w).take();
  }
  Network net;
  net.add(ping);
  GlobalModelChecker mc(cfg, &inv, {});
  mc.run(nodes, net);
  EXPECT_TRUE(mc.stats().completed);
  // The in-flight ping is deliverable, plus node0's kick chain.
  EXPECT_GT(mc.stats().transitions, 1u);
}

TEST(GlobalMc, NoInvariantStillExplores) {
  SystemConfig cfg = ring_cfg(2, 2);
  GlobalModelChecker mc(cfg, nullptr, {});
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().violations, 0u);
  EXPECT_EQ(mc.stats().invariant_checks, 0u);
}

TEST(GlobalMc, PeakBytesTracked) {
  SystemConfig cfg = ring_cfg(3, 6);
  CountLimit inv(1000);
  GlobalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_GT(mc.stats().peak_bytes, 0u);
}

}  // namespace
}  // namespace lmc
