// Checkpoint corruption robustness: a truncated, bit-flipped or otherwise
// mangled checkpoint must be REJECTED with CheckpointError — never crash,
// never decode into a half-valid image. This is the contract `lmc_ckpt
// validate` exposes to operators (decode + canonical re-encode must equal
// the input), pinned here at the CheckpointReader/decode_checkpoint layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "dfuzz/protogen.hpp"
#include "mc/local_mc.hpp"
#include "persist/checkpoint.hpp"

namespace lmc {
namespace {

// Deterministic PRNG for corruption positions (std distributions are not
// portable across standard libraries; same scheme as the fuzz generator).
struct SplitMix64 {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// A real mid-sized checkpoint: a completed run of a generated protocol
/// that exercises every section (violations, deferred queue, pending are
/// empty or not depending on the run — the container must handle both).
Blob sample_checkpoint() {
  static Blob cached = [] {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(3));
    LocalMcOptions opt;
    opt.stop_on_confirmed = false;
    opt.time_budget_s = 60;
    LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
    mc.run_from_initial();
    return mc.checkpoint_bytes();
  }();
  return cached;
}

TEST(CkptRobustness, ValidCheckpointRoundTripsCanonically) {
  Blob data = sample_checkpoint();
  ASSERT_GT(data.size(), 64u);
  // The operator-facing `lmc_ckpt validate` check: full decode, then the
  // canonical re-encode must reproduce the file byte for byte.
  CheckerImage img = decode_checkpoint(data);
  EXPECT_EQ(encode_checkpoint(img), data);
}

TEST(CkptRobustness, ReaderExposesSections) {
  Blob data = sample_checkpoint();
  CheckpointReader r(data);
  EXPECT_EQ(r.version(), kCheckpointVersion);
  EXPECT_GT(r.num_nodes(), 0u);
  ASSERT_FALSE(r.sections().empty());
  for (const auto& sec : r.sections()) {
    Reader payload = r.open(sec.id);  // must not throw for a listed section
    (void)payload;
  }
  ASSERT_TRUE(r.has(kSecStore));
  ASSERT_TRUE(r.has(kSecStats));
  EXPECT_FALSE(r.has(9999));
  EXPECT_THROW(r.open(9999), CheckpointError);
}

TEST(CkptRobustness, EmptyAndTinyBlobsRejected) {
  EXPECT_THROW(decode_checkpoint(Blob{}), CheckpointError);
  for (std::size_t n = 1; n <= 16; ++n) {
    EXPECT_THROW(decode_checkpoint(Blob(n, 0x00)), CheckpointError) << "len " << n;
    EXPECT_THROW(decode_checkpoint(Blob(n, 0xff)), CheckpointError) << "len " << n;
  }
}

TEST(CkptRobustness, EveryTruncationRejected) {
  Blob data = sample_checkpoint();
  // All short lengths exhaustively, then strided through the middle, then
  // every length near the tail (where the checksum and section table live).
  auto check = [&](std::size_t len) {
    Blob cut(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_checkpoint(cut), CheckpointError) << "truncated to " << len;
  };
  std::size_t n = data.size();
  for (std::size_t len = 0; len < std::min<std::size_t>(n, 256); ++len) check(len);
  for (std::size_t len = 256; len + 256 < n; len += 7) check(len);
  for (std::size_t len = n > 256 ? n - 256 : 256; len < n; ++len) check(len);
}

TEST(CkptRobustness, RandomBitFlipsRejected) {
  Blob data = sample_checkpoint();
  SplitMix64 rng{0xc0ffee};
  for (int i = 0; i < 512; ++i) {
    Blob bad = data;
    std::size_t byte = static_cast<std::size_t>(rng.next() % bad.size());
    bad[byte] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    // The trailing whole-file checksum catches any single-bit flip before
    // a field is interpreted; structural validation backstops the rest.
    EXPECT_THROW(decode_checkpoint(bad), CheckpointError)
        << "flip at byte " << byte << " survived";
  }
}

TEST(CkptRobustness, ForeignMagicAndVersionRejected) {
  Blob data = sample_checkpoint();
  {
    Blob bad = data;
    bad[0] = 'X';
    EXPECT_THROW(decode_checkpoint(bad), CheckpointError);
  }
  {
    // Version field follows the 8-byte magic; a bumped version must be
    // rejected even if the checksum is recomputed by an attacker/fuzzer —
    // here the flip alone breaks the checksum, which is also fine: either
    // failure path must surface as CheckpointError.
    Blob bad = data;
    bad[8] = static_cast<std::uint8_t>(kCheckpointVersion + 13);
    EXPECT_THROW(decode_checkpoint(bad), CheckpointError);
  }
}

TEST(CkptRobustness, LoadCheckpointBytesPropagatesErrors) {
  Blob data = sample_checkpoint();
  Blob bad = data;
  bad[bad.size() / 2] ^= 0x40;
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(3));
  LocalModelChecker mc(p.cfg, p.invariant.get(), {});
  EXPECT_THROW(mc.load_checkpoint_bytes(bad), CheckpointError);
  // A clean image still loads after the failed attempt.
  mc.load_checkpoint_bytes(data);
  EXPECT_GT(mc.stats().transitions, 0u);
}

}  // namespace
}  // namespace lmc
