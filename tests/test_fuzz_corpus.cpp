// Fixed-seed regression corpus for the differential fuzzer: every seed in
// the corpus must produce a conclusive, agreeing oracle verdict. Seeds 1-50
// are the standing corpus; 97, 171 and 664 are pinned regressions — each
// one found a real divergence during development:
//  * 97  — phase-1 soundness verdicts were final while the store still
//          grew; a predecessor edge added later made the combination sound
//          but nothing re-verified it (fixed: non-sound phase-1 verdicts
//          defer to the phase-2 a-posteriori drain);
//  * 171 — backward internal gotos let one message rule fire twice along a
//          chain, regenerating identical message content, which the
//          duplicate-delivery limit of 0 then suppressed (fixed: generated
//          internal gotos are non-decreasing);
//  * 664 — one blob reachable via different delivery histories; first-path
//          history inheritance pruned the real path (fixed: the consumed-
//          message digest makes history a function of the blob).
#include <gtest/gtest.h>

#include <vector>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "mc/local_mc.hpp"

namespace lmc {
namespace {

std::vector<std::uint64_t> corpus_seeds() {
  std::vector<std::uint64_t> s;
  for (std::uint64_t i = 1; i <= 50; ++i) s.push_back(i);
  s.push_back(97);
  s.push_back(171);
  s.push_back(664);
  return s;
}

TEST(FuzzCorpus, AllSeedsConclusiveAndAgreeing) {
  dfuzz::DiffOracle oracle{dfuzz::OracleOptions{}};
  std::uint64_t with_violations = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t replayed = 0;
  std::uint64_t resumes = 0;
  std::uint64_t opt_runs = 0;
  for (std::uint64_t seed : corpus_seeds()) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << "seed " << seed << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.gmc_violation_tuples > 0) ++with_violations;
    confirmed += rep.lmc_confirmed;
    replayed += rep.witnesses_replayed;
    if (rep.resume_checked) ++resumes;
    if (rep.opt_checked) ++opt_runs;
  }
  // The corpus is only a meaningful oracle regression if it covers both
  // verdicts and every secondary check at least once.
  EXPECT_GT(with_violations, 0u);
  EXPECT_LT(with_violations, corpus_seeds().size());
  EXPECT_GT(confirmed, 0u);
  EXPECT_GT(replayed, 0u);
  EXPECT_GT(resumes, 0u);
  EXPECT_GT(opt_runs, 0u);
}

/// Thread-count determinism over the ENTIRE frozen corpus: the same
// generated protocol explored with 1 and 8 threads — which now covers the
// work-stealing phase-1 pipeline as well as the phase-2 sweep/soundness
// pools — must leave the checker in a byte-identical state: stores, I+,
// violations, witnesses and counters, once wall-clock stats are zeroed.
TEST(FuzzCorpus, ThreadCountByteIdentical) {
  std::uint64_t total_confirmed = 0;
  for (std::uint64_t seed : corpus_seeds()) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    Blob base;
    std::size_t base_violations = 0;
    for (unsigned threads : {1u, 8u}) {
      LocalMcOptions opt;
      opt.stop_on_confirmed = false;
      opt.use_projection = false;
      opt.num_threads = threads;
      opt.time_budget_s = 120;
      LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
      mc.run_from_initial();
      ASSERT_TRUE(mc.stats().completed) << "seed " << seed << " threads " << threads;
      Blob norm = dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes());
      if (threads == 1) {
        base = std::move(norm);
        base_violations = mc.violations().size();
        total_confirmed += mc.stats().confirmed_violations;
      } else {
        EXPECT_EQ(base, norm) << "seed " << seed << ": checker state diverged at " << threads
                              << " threads";
        EXPECT_EQ(base_violations, mc.violations().size()) << "seed " << seed;
      }
    }
  }
  EXPECT_GT(total_confirmed, 0u);  // the determinism seeds must exercise violations
}

// Same gate with the symmetry reduction requested (DESIGN.md §13): orbit
// bookkeeping lives on the applier and the checkpoint's symmetry section is
// part of the normalized bytes, so a reduced run must also be byte-identical
// at any thread count. kAuto activates only where infer_symmetric_roles
// finds replicated roles — on the other seeds this doubles as a no-op gate.
TEST(FuzzCorpus, ThreadCountByteIdenticalWithSymmetry) {
  std::uint64_t active_runs = 0;
  for (std::uint64_t seed : corpus_seeds()) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    Blob base;
    for (unsigned threads : {1u, 8u}) {
      LocalMcOptions opt;
      opt.stop_on_confirmed = false;
      opt.use_projection = false;
      opt.num_threads = threads;
      opt.time_budget_s = 120;
      opt.symmetry.mode = symmetry::SymmetryMode::kAuto;
      LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
      mc.run_from_initial();
      ASSERT_TRUE(mc.stats().completed) << "seed " << seed << " threads " << threads;
      if (threads == 1 && mc.symmetry_stats().active != 0) ++active_runs;
      Blob norm = dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes());
      if (threads == 1)
        base = std::move(norm);
      else
        EXPECT_EQ(base, norm) << "seed " << seed << ": reduced checker state diverged at "
                              << threads << " threads";
    }
  }
  EXPECT_GT(active_runs, 0u) << "no corpus seed activated the reduction; the gate is vacuous";
}

}  // namespace
}  // namespace lmc
