// Columbia-assignment-style Paxos scenarios driven through the checker, at
// the paper's 3-node size and at 5 nodes where the acceptor class {2,3,4} is
// big enough for the symmetry reduction (DESIGN.md §13) to pay off.
//
// Scenario depths are calibrated against the combinatorial reality of the
// full (projection-free) combination sweep the reduction requires: a
// from-initial dueling-proposer run at 3 nodes already materializes 54M
// combinations by chain depth 4, so each scenario stages its interesting
// prefix concretely through the real handlers (exec_message/exec_internal)
// and lets the checker explore the short suffix where the §5.5 bug bites.
// Every 5-node scenario runs reduced AND unreduced; confirmed sets must
// agree up to acceptor permutation and reduced witnesses must replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "mc/symmetry/role_group.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

using paxos::DriverConfig;

// Pinned counts for the seeded-buggy (§5.5 bug_last_response) variants. A
// checker or protocol change that moves one of these must do so on purpose.
constexpr std::uint64_t kStale3Depth3Confirmed = 4;
constexpr std::uint64_t kStale3Depth4Confirmed = 60;
constexpr std::uint64_t kAccept3Confirmed = 224;        // depth 3
constexpr std::uint64_t kAccept5PlainConfirmed = 3888;  // depth 1, ordered
constexpr std::uint64_t kAccept5ReducedConfirmed = 1008;
// Pinned combination-sweep sizes for the 5-node reduced-vs-unreduced pairs:
// the reduction factor is the scenario's whole point, so its two sides are
// regression-pinned alongside the violation counts.
constexpr std::uint64_t kAccept5Combos = 5184, kAccept5Orbits = 1344;  // depth 1
constexpr std::uint64_t kDuel5Combos = 21168, kDuel5Orbits = 7840;     // depth 2
constexpr std::uint64_t kPart5Combos = 384, kPart5Orbits = 192;        // depth 3

SystemConfig duel_cfg(std::uint32_t n, bool bug) {
  return paxos::make_config(n, paxos::CoreOptions{0, bug}, DriverConfig{{0, 1}, 1});
}

bool deliver_one(const SystemConfig& cfg, std::vector<Blob>& nodes,
                 std::vector<Message>& flight, NodeId dst, std::uint32_t type) {
  for (std::size_t i = 0; i < flight.size(); ++i) {
    if (flight[i].dst == dst && flight[i].type == type) {
      Message m = flight[i];
      flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
      ExecResult r = exec_message(cfg, dst, nodes[dst], m);
      EXPECT_FALSE(r.assert_failed);
      nodes[dst] = std::move(r.state);
      for (Message& out : r.sent) flight.push_back(std::move(out));
      return true;
    }
  }
  return false;
}

void fire_internal(const SystemConfig& cfg, std::vector<Blob>& nodes,
                   std::vector<Message>& flight, NodeId n) {
  auto evs = internal_events_of(cfg, n, nodes[n]);
  ASSERT_FALSE(evs.empty());
  ExecResult r = exec_internal(cfg, n, nodes[n], evs[0]);
  ASSERT_FALSE(r.assert_failed);
  nodes[n] = std::move(r.state);
  for (Message& out : r.sent) flight.push_back(std::move(out));
}

// Checker options for the scenario runs. Symmetry requires the full-depth
// sweep (max_total_depth stays unbounded, see resolve_symmetry), so the
// space is bounded per chain instead.
LocalMcOptions scenario_opt(std::uint32_t chain_depth, bool reduce) {
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.max_chain_depth = chain_depth;
  opt.time_budget_s = 300;
  if (reduce) opt.symmetry.mode = symmetry::SymmetryMode::kAuto;
  return opt;
}

// Confirmed violations as a set of acceptor-permutation-invariant keys: the
// reduced run reports one representative per orbit, so raw counts are only
// comparable after canonicalization.
std::vector<Hash64> confirmed_canon_set(const LocalModelChecker& mc,
                                        const std::vector<std::vector<NodeId>>& classes) {
  std::vector<Hash64> keys;
  for (const LocalViolation& v : mc.violations())
    if (v.confirmed) keys.push_back(symmetry::canonical_key(v.state_hashes, classes));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// Replay every confirmed witness of `mc` through the real handlers.
void replay_all_confirmed(const SystemConfig& cfg, const LocalModelChecker& mc) {
  std::size_t replayed = 0;
  for (const LocalViolation& v : mc.violations()) {
    if (!v.confirmed) continue;
    ReplayResult r = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v.witness, mc.events(), v.state_hashes);
    EXPECT_TRUE(r.ok) << r.error;
    ++replayed;
  }
  EXPECT_EQ(replayed, mc.stats().confirmed_violations);
}

struct Live {
  std::vector<Blob> nodes;
  std::vector<Message> flight;
};

// Both proposers have fired their proposal; every Prepare is in flight.
Live build_duel_state(const SystemConfig& cfg, std::uint32_t n) {
  Live l;
  l.nodes = initial_states(cfg);
  for (NodeId i = 0; i < n; ++i) fire_internal(cfg, l.nodes, l.flight, i);  // init
  fire_internal(cfg, l.nodes, l.flight, 0);
  fire_internal(cfg, l.nodes, l.flight, 1);
  return l;
}

// §5.5 generalized to n nodes: node0's proposal is chosen at the majority
// {0..maj-1}, but only node0 learned it — every other Learn was dropped
// (the "acceptor crashed after promising" shape). Proposer 1 has not moved
// yet; the checker must FIND the interleaving where its second round
// collects a stale promise set the bug_last_response variant mishandles.
Live build_stale_promise_state(const SystemConfig& cfg, std::uint32_t n) {
  Live l;
  l.nodes = initial_states(cfg);
  for (NodeId i = 0; i < n; ++i) fire_internal(cfg, l.nodes, l.flight, i);
  fire_internal(cfg, l.nodes, l.flight, 0);
  for (NodeId i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kPrepare));
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kPrepareResponse));
  const std::uint32_t maj = n / 2 + 1;
  for (NodeId i = 0; i < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kAccept));
  for (std::uint32_t i = 0; i < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kLearn));
  l.flight.clear();

  auto chosen0 = paxos::chosen_map_of(cfg, 0, l.nodes[0]);
  EXPECT_EQ(chosen0.size(), 1u);
  EXPECT_EQ(chosen0[0], 1u);  // node0's proposed value is self+1
  for (NodeId i = 1; i < n; ++i)
    EXPECT_TRUE(paxos::chosen_map_of(cfg, i, l.nodes[i]).empty());
  return l;
}

// The stale-promise scenario staged all the way into proposer 1's second
// round (at 5 nodes the checker cannot reach this interleaving within a
// feasible chain depth, so the prefix is concrete): proposer 1's Prepares
// are delivered so that a PROMISE-ONLY response is the last one inside its
// first quorum — exactly the ordering where bug_last_response discards the
// accepted value and proposes its own — then its Accepts land everywhere
// and all but maj-1 of the round-2 Learns stay in flight.
Live build_accept_race_state(const SystemConfig& cfg, std::uint32_t n) {
  Live l;
  l.nodes = initial_states(cfg);
  const std::uint32_t maj = n / 2 + 1;
  for (NodeId i = 0; i < n; ++i) fire_internal(cfg, l.nodes, l.flight, i);
  // Round 1 = the stale-promise prefix: v1 chosen at {0..maj-1}, node0 knows.
  fire_internal(cfg, l.nodes, l.flight, 0);
  for (NodeId i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kPrepare));
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kPrepareResponse));
  for (NodeId i = 0; i < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kAccept));
  for (std::uint32_t i = 0; i < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kLearn));
  l.flight.clear();
  // Round 2: proposer 1 prepares; an empty promise is last in its quorum.
  fire_internal(cfg, l.nodes, l.flight, 1);
  EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kPrepare));
  for (NodeId i = maj; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kPrepare));
  for (NodeId i = 1; i < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kPrepare));
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 1, paxos::kPrepareResponse));
  for (NodeId i = 0; i < n; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kAccept));
  for (std::uint32_t i = 0; i + 1 < maj; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 1, paxos::kLearn));
  return l;
}

// Minority partition: node0's Prepare reached only {0,1} — no quorum at
// n>=3 — before the partition ate the rest. Nothing was ever accepted.
Live build_partition_state(const SystemConfig& cfg, std::uint32_t n) {
  Live l;
  l.nodes = initial_states(cfg);
  for (NodeId i = 0; i < n; ++i) fire_internal(cfg, l.nodes, l.flight, i);
  fire_internal(cfg, l.nodes, l.flight, 0);
  for (NodeId i = 0; i < 2; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, i, paxos::kPrepare));
  for (std::uint32_t i = 0; i < 2; ++i)
    EXPECT_TRUE(deliver_one(cfg, l.nodes, l.flight, 0, paxos::kPrepareResponse));
  l.flight.clear();
  for (NodeId i = 0; i < n; ++i)
    EXPECT_TRUE(paxos::chosen_map_of(cfg, i, l.nodes[i]).empty());
  return l;
}

// --- 3-node scenarios (below the class-size threshold; plain checker) ------

TEST(PaxosScenarios, DuelingProposersAtThreeNodes) {
  // Two racing proposers, every interleaving of the prepare phase. Two
  // chain steps materialize 2.2M combinations and neither variant can
  // disagree that early — the scenario pins the no-false-positive side.
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(3, bug);
    EXPECT_TRUE(cfg.symmetric_roles.empty());  // one non-proposer: no class
    Live live = build_duel_state(cfg, 3);
    LocalModelChecker mc(cfg, inv.get(), scenario_opt(2, /*reduce=*/false));
    mc.run(live.nodes, live.flight);
    ASSERT_TRUE(mc.stats().completed);
    EXPECT_EQ(mc.stats().system_states, 2202112u) << "bug=" << bug;
    EXPECT_EQ(mc.stats().confirmed_violations, 0u) << "bug=" << bug;
  }
}

TEST(PaxosScenarios, StalePromiseAtThreeNodes) {
  // The exact §5.5 experiment: proposer 1 wakes up against node0's
  // half-learned choice and the checker must FIND the bad interleaving.
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(3, bug);
    Live live = build_stale_promise_state(cfg, 3);
    LocalModelChecker mc(cfg, inv.get(), scenario_opt(3, /*reduce=*/false));
    mc.run(live.nodes, live.flight);
    ASSERT_TRUE(mc.stats().completed);
    if (!bug) {
      EXPECT_EQ(mc.stats().confirmed_violations, 0u);
    } else {
      EXPECT_EQ(mc.stats().confirmed_violations, kStale3Depth3Confirmed);
      replay_all_confirmed(cfg, mc);
    }
  }
  // One chain step deeper the buggy variant's violation count grows 4 -> 60;
  // pinned so depth handling regressions show up as a count shift.
  SystemConfig buggy = duel_cfg(3, /*bug=*/true);
  Live live = build_stale_promise_state(buggy, 3);
  LocalModelChecker mc(buggy, inv.get(), scenario_opt(4, /*reduce=*/false));
  mc.run(live.nodes, live.flight);
  ASSERT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().confirmed_violations, kStale3Depth4Confirmed);
}

TEST(PaxosScenarios, AcceptRaceAtThreeNodes) {
  // The fully staged second round: v2's Accepts landed, one Learn short of
  // disagreement. The buggy variant confirms violations immediately; the
  // correct one never does (it re-proposed v1, so both rounds agree).
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(3, bug);
    Live live = build_accept_race_state(cfg, 3);
    LocalModelChecker mc(cfg, inv.get(), scenario_opt(3, /*reduce=*/false));
    mc.run(live.nodes, live.flight);
    ASSERT_TRUE(mc.stats().completed);
    if (!bug) {
      EXPECT_EQ(mc.stats().confirmed_violations, 0u);
    } else {
      EXPECT_EQ(mc.stats().confirmed_violations, kAccept3Confirmed);
      replay_all_confirmed(cfg, mc);
    }
  }
}

// --- 5-node scenarios: reduced vs unreduced differential -------------------

struct ScenarioRuns {
  LocalMcStats plain;
  LocalMcStats reduced;
  symmetry::SymmetryStats sym;
  std::vector<Hash64> plain_keys;
  std::vector<Hash64> reduced_keys;
};

// Run one 5-node scenario with the reduction off and on; the confirmed sets
// must agree up to acceptor permutation, the represented counter must cover
// the plain sweep, and the reduced run's witnesses must replay.
ScenarioRuns run_both(const SystemConfig& cfg, const Invariant* inv, const Live& live,
                      std::uint32_t chain_depth) {
  ScenarioRuns out;
  const std::vector<std::vector<NodeId>>& classes = cfg.symmetric_roles;

  LocalModelChecker plain(cfg, inv, scenario_opt(chain_depth, false));
  plain.run(live.nodes, live.flight);
  EXPECT_TRUE(plain.stats().completed);
  EXPECT_EQ(plain.symmetry_stats().active, 0u);
  out.plain = plain.stats();
  out.plain_keys = confirmed_canon_set(plain, classes);

  LocalModelChecker reduced(cfg, inv, scenario_opt(chain_depth, true));
  reduced.run(live.nodes, live.flight);
  EXPECT_TRUE(reduced.stats().completed);
  EXPECT_EQ(reduced.symmetry_stats().active, 1u) << "acceptor class should activate";
  out.reduced = reduced.stats();
  out.sym = reduced.symmetry_stats();
  out.reduced_keys = confirmed_canon_set(reduced, classes);

  EXPECT_EQ(out.plain_keys, out.reduced_keys)
      << "reduced and unreduced confirmed sets differ mod acceptor permutation";
  // The reduced sweep materializes exactly its orbits, and the represented
  // counter must account for at least every ordered combination the plain
  // sweep saw (it may exceed it: orbits count unordered members even when
  // per-member masks make some arrangements unreachable).
  EXPECT_EQ(out.reduced.system_states, out.sym.orbits);
  EXPECT_GE(out.sym.represented, out.plain.system_states);
  replay_all_confirmed(cfg, reduced);
  return out;
}

TEST(PaxosScenarios, DuelingProposersAtFiveNodesReduced) {
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(5, bug);
    ASSERT_EQ(cfg.symmetric_roles.size(), 1u);
    ASSERT_EQ(cfg.symmetric_roles[0], (std::vector<NodeId>{2, 3, 4}));
    Live live = build_duel_state(cfg, 5);
    ScenarioRuns r = run_both(cfg, inv.get(), live, /*chain_depth=*/2);
    EXPECT_EQ(r.plain.system_states, kDuel5Combos) << "bug=" << bug;
    EXPECT_EQ(r.reduced.system_states, kDuel5Orbits) << "bug=" << bug;
    EXPECT_EQ(r.plain.confirmed_violations, 0u) << "bug=" << bug;
    EXPECT_EQ(r.reduced.confirmed_violations, 0u) << "bug=" << bug;
  }
}

TEST(PaxosScenarios, StalePromiseAtFiveNodesReduced) {
  // The acceptor class {2,3,4} starts ASYMMETRIC here: acceptor 2 accepted
  // node0's value, 3 and 4 only promised. The canonicalizer's per-member
  // realizability masks must carry that distinction — a reduction treating
  // the class as fully interchangeable would invent or lose violations and
  // this differential would catch it.
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(5, bug);
    Live live = build_stale_promise_state(cfg, 5);
    ScenarioRuns r = run_both(cfg, inv.get(), live, /*chain_depth=*/3);
    EXPECT_EQ(r.plain.confirmed_violations, 0u) << "bug=" << bug;
    EXPECT_EQ(r.reduced.confirmed_violations, 0u) << "bug=" << bug;
    EXPECT_LT(r.reduced.system_states, r.plain.system_states);
  }
}

TEST(PaxosScenarios, AcceptRaceAtFiveNodesReduced) {
  // The seeded-buggy 5-node headline: one chain step from the staged second
  // round, the ordered sweep confirms 3888 violating combinations and the
  // reduced sweep 1008 orbit representatives — same violation set modulo
  // acceptor permutation, every reduced witness replayed.
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(5, bug);
    Live live = build_accept_race_state(cfg, 5);
    ScenarioRuns r = run_both(cfg, inv.get(), live, /*chain_depth=*/1);
    EXPECT_EQ(r.plain.system_states, kAccept5Combos) << "bug=" << bug;
    EXPECT_EQ(r.reduced.system_states, kAccept5Orbits) << "bug=" << bug;
    if (!bug) {
      EXPECT_EQ(r.plain.confirmed_violations, 0u);
      EXPECT_EQ(r.reduced.confirmed_violations, 0u);
    } else {
      EXPECT_EQ(r.plain.confirmed_violations, kAccept5PlainConfirmed);
      EXPECT_EQ(r.reduced.confirmed_violations, kAccept5ReducedConfirmed);
      EXPECT_FALSE(r.plain_keys.empty());
    }
  }
}

TEST(PaxosScenarios, MinorityPartitionCannotDisagree) {
  // A partition alone must never produce disagreement: nothing was accepted,
  // so the healed network just lets proposer 1 choose cleanly — in the buggy
  // variant too (no stale accepted value exists to mis-prefer).
  auto inv = paxos::make_agreement_invariant();
  for (bool bug : {false, true}) {
    SystemConfig cfg = duel_cfg(5, bug);
    Live live = build_partition_state(cfg, 5);
    ScenarioRuns r = run_both(cfg, inv.get(), live, /*chain_depth=*/3);
    EXPECT_EQ(r.plain.system_states, kPart5Combos) << "bug=" << bug;
    EXPECT_EQ(r.reduced.system_states, kPart5Orbits) << "bug=" << bug;
    EXPECT_EQ(r.plain.confirmed_violations, 0u) << "bug=" << bug;
    EXPECT_EQ(r.reduced.confirmed_violations, 0u) << "bug=" << bug;
    EXPECT_TRUE(r.reduced_keys.empty());
  }
}

}  // namespace
}  // namespace lmc
