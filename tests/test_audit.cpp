// ModelValidityAuditor (runtime/audit.hpp): deliberately invalid machines
// must be caught, valid protocols must audit clean, and the failure must
// surface as ModelValidityError from the checker and as
// OracleFailure::ModelInvalid from the DiffOracle.
#include <gtest/gtest.h>

#include <memory>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "mc/local_mc.hpp"
#include "protocols/election.hpp"
#include "protocols/onepaxos.hpp"
#include "protocols/paxos.hpp"
#include "protocols/randtree.hpp"
#include "protocols/tree.hpp"
#include "protocols/twophase.hpp"
#include "runtime/audit.hpp"

namespace lmc {
namespace {

constexpr std::uint32_t kMsgPing = 7;
constexpr std::uint32_t kEvKick = 1;

/// Minimal valid 2-node machine: node 0's kick event sends one ping to
/// node 1, which counts deliveries. Subclasses break one validity
/// assumption each.
class BaseMachine : public StateMachine {
 public:
  explicit BaseMachine(NodeId self) : self_(self) {}

  void handle_message(const Message&, Context&) override { ++count_; }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (self_ == 0 && !fired_) return {{kEvKick, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    fired_ = true;
    ctx.send(1, kMsgPing, {});
  }
  void serialize(Writer& w) const override {
    w.b(fired_);
    w.u32(count_);
  }
  void deserialize(Reader& r) override {
    fired_ = r.b();
    count_ = r.u32();
  }

 protected:
  NodeId self_;
  bool fired_ = false;
  std::uint32_t count_ = 0;
};

template <class M>
SystemConfig two_node_config() {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId self, std::uint32_t) { return std::make_unique<M>(self); };
  return cfg;
}

/// The delivery produced by BaseMachine's kick, addressed to node 1.
Message ping() {
  Message m;
  m.dst = 1;
  m.src = 0;
  m.type = kMsgPing;
  return m;
}

// --- invalid machines -------------------------------------------------------

std::uint32_t g_entropy = 0;  // the "rand()" stand-in a handler must not read

/// Successor state depends on process-local entropy: the audit's
/// re-execution sees a different value.
class NondetStateMachine : public BaseMachine {
 public:
  using BaseMachine::BaseMachine;
  void handle_message(const Message&, Context&) override { count_ += ++g_entropy; }
};

/// Emission target depends on process-local entropy: state is stable but
/// the sent sequence differs on re-execution.
class NondetSendMachine : public BaseMachine {
 public:
  using BaseMachine::BaseMachine;
  void handle_message(const Message&, Context& ctx) override {
    ctx.send(++g_entropy % 2, kMsgPing, {});
  }
};

/// A non-serialized field gates enabled events: the live post-handler
/// machine and its rehydrated image behave differently.
class HiddenFieldMachine : public BaseMachine {
 public:
  using BaseMachine::BaseMachine;
  void handle_message(const Message&, Context&) override {
    ++count_;
    armed_ = true;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    auto evs = BaseMachine::enabled_internal_events();
    if (armed_) evs.push_back({kEvKick + 1, {}});
    return evs;
  }

 private:
  bool armed_ = false;  // deliberately missing from serialize()
};

/// serialize() writes shadow_, deserialize() reads-and-discards it (byte
/// counts match, so exec itself succeeds) — the round-trip loses the value.
class AsymmetricMachine : public BaseMachine {
 public:
  using BaseMachine::BaseMachine;
  void handle_message(const Message&, Context&) override {
    ++count_;
    ++shadow_;
  }
  void serialize(Writer& w) const override {
    BaseMachine::serialize(w);
    w.u32(shadow_);
  }
  void deserialize(Reader& r) override {
    BaseMachine::deserialize(r);
    (void)r.u32();  // deliberately forgets shadow_
  }

 private:
  std::uint32_t shadow_ = 0;
};

// --- unit level: audit_message on a single observed execution ---------------

TEST(Audit, ValidMachinePassesAllChecks) {
  SystemConfig cfg = two_node_config<BaseMachine>();
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 1, nodes[1], ping());
  AuditReport rep = audit_message(cfg, 1, nodes[1], ping(), r);
  EXPECT_TRUE(rep.ok) << rep.detail;

  ExecResult ri = exec_internal(cfg, 0, nodes[0], {kEvKick, {}});
  AuditReport repi = audit_internal(cfg, 0, nodes[0], {kEvKick, {}}, ri);
  EXPECT_TRUE(repi.ok) << repi.detail;
}

TEST(Audit, NondeterministicStateCaught) {
  SystemConfig cfg = two_node_config<NondetStateMachine>();
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 1, nodes[1], ping());
  AuditReport rep = audit_message(cfg, 1, nodes[1], ping(), r);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("different successor"), std::string::npos) << rep.detail;
}

TEST(Audit, NondeterministicEmissionCaught) {
  SystemConfig cfg = two_node_config<NondetSendMachine>();
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 1, nodes[1], ping());
  AuditReport rep = audit_message(cfg, 1, nodes[1], ping(), r);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("message sequence"), std::string::npos) << rep.detail;
}

TEST(Audit, HiddenFieldCaught) {
  SystemConfig cfg = two_node_config<HiddenFieldMachine>();
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 1, nodes[1], ping());
  AuditReport rep = audit_message(cfg, 1, nodes[1], ping(), r);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("different internal events"), std::string::npos) << rep.detail;
}

TEST(Audit, SerializeAsymmetryCaught) {
  SystemConfig cfg = two_node_config<AsymmetricMachine>();
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 1, nodes[1], ping());
  AuditReport rep = audit_message(cfg, 1, nodes[1], ping(), r);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.detail.find("not inverses"), std::string::npos) << rep.detail;
}

// --- checker level: LocalModelChecker under audit_validity ------------------

TEST(Audit, CheckerThrowsModelValidityError) {
  SystemConfig cfg = two_node_config<HiddenFieldMachine>();
  LocalMcOptions opt;
  opt.audit_validity = true;
  LocalModelChecker mc(cfg, nullptr, opt);
  EXPECT_THROW(mc.run_from_initial(), ModelValidityError);
}

TEST(Audit, CheckerThrowsOnNondeterminism) {
  SystemConfig cfg = two_node_config<NondetStateMachine>();
  LocalMcOptions opt;
  opt.audit_validity = true;
  opt.max_transitions = 10000;  // nondeterminism could otherwise explode LS_n
  LocalModelChecker mc(cfg, nullptr, opt);
  EXPECT_THROW(mc.run_from_initial(), ModelValidityError);
}

TEST(Audit, CheckerCleanOnValidMachineAndCountsAudits) {
  SystemConfig cfg = two_node_config<BaseMachine>();
  LocalMcOptions opt;
  opt.audit_validity = true;
  LocalModelChecker mc(cfg, nullptr, opt);
  EXPECT_NO_THROW(mc.run_from_initial());
  EXPECT_GT(mc.audits_performed(), 0u);
}

TEST(Audit, AuditsAlsoRunOnParallelWorkers) {
  SystemConfig cfg = two_node_config<HiddenFieldMachine>();
  LocalMcOptions opt;
  opt.audit_validity = true;
  opt.num_threads = 4;  // the pool must propagate the worker's throw
  LocalModelChecker mc(cfg, nullptr, opt);
  EXPECT_THROW(mc.run_from_initial(), ModelValidityError);
}

// --- oracle level: audit failure as a per-seed verdict ----------------------

TEST(Audit, OracleReportsModelInvalid) {
  SystemConfig cfg = two_node_config<HiddenFieldMachine>();
  dfuzz::OracleOptions opt;
  opt.audit_validity = true;
  dfuzz::OracleReport rep = dfuzz::DiffOracle{opt}.check(cfg, nullptr);
  ASSERT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure, dfuzz::OracleFailure::ModelInvalid);
  EXPECT_EQ(std::string("model-invalid"), dfuzz::to_string(rep.failure));
}

// --- corpus: the example protocols audit clean ------------------------------

TEST(AuditCorpus, ExampleProtocolsAuditClean) {
  struct Named {
    const char* name;
    SystemConfig cfg;
  };
  tree::Topology topo = tree::fig2_topology();
  std::vector<Named> protocols;
  protocols.push_back({"tree", tree::make_config(topo)});
  protocols.push_back({"randtree", randtree::make_config(4, randtree::Options{})});
  protocols.push_back({"paxos", paxos::make_config(3, paxos::CoreOptions{},
                                                   paxos::DriverConfig{{0}, 1})});
  protocols.push_back({"onepaxos", onepaxos::make_config(3, onepaxos::Options{})});
  protocols.push_back({"twophase", twophase::make_config(3, twophase::Options{})});
  protocols.push_back({"election", election::make_config(3, election::Options{{0, 1}, false})});
  for (Named& p : protocols) {
    LocalMcOptions opt;
    opt.audit_validity = true;
    // The audit verdict does not need a completed exploration; bound the
    // run so the suite stays fast on the bigger protocols.
    opt.max_transitions = 20000;
    LocalModelChecker mc(p.cfg, nullptr, opt);
    EXPECT_NO_THROW(mc.run_from_initial()) << p.name;
    EXPECT_GT(mc.audits_performed(), 0u) << p.name;
  }
}

TEST(AuditCorpus, FrozenFuzzCorpusAuditsClean) {
  dfuzz::OracleOptions opt;
  opt.audit_validity = true;
  dfuzz::DiffOracle oracle{opt};
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 1; i <= 50; ++i) seeds.push_back(i);
  seeds.push_back(97);
  seeds.push_back(171);
  seeds.push_back(664);
  std::uint64_t audited = 0;
  for (std::uint64_t seed : seeds) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    audited += rep.handler_audits;
  }
  EXPECT_GT(audited, 0u);
}

}  // namespace
}  // namespace lmc
