// Unit + property tests for the Writer/Reader byte serialization — state
// identity depends on these bytes being deterministic and exact.
#include <gtest/gtest.h>

#include <random>

#include "runtime/serialize.hpp"

namespace lmc {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.b(true);
  w.b(false);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, BytesRoundTrip) {
  Writer w;
  Blob b{1, 2, 3, 255, 0};
  w.bytes(b);
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), b);
  EXPECT_EQ(r.bytes(), Blob{});
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, UnderflowThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  r.u8();
  r.u8();
  EXPECT_THROW(r.u8(), SerializeError);
}

TEST(Serialize, TruncatedStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  Reader r(w.data());
  EXPECT_THROW(r.str(), SerializeError);
}

TEST(Serialize, ExpectExhaustedThrowsOnTrailing) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.data());
  r.u32();
  EXPECT_THROW(r.expect_exhausted(), SerializeError);
  r.u32();
  EXPECT_NO_THROW(r.expect_exhausted());
}

TEST(Serialize, SetHelpersRoundTrip) {
  std::set<std::uint32_t> s{5, 1, 99, 7};
  Writer w;
  write_u32_set(w, s);
  Reader r(w.data());
  EXPECT_EQ(read_u32_set(r), s);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, U64VecRoundTrip) {
  std::vector<std::uint64_t> v{0, 1, ~0ULL, 42};
  Writer w;
  write_u64_vec(w, v);
  Reader r(w.data());
  EXPECT_EQ(read_u64_vec(r), v);
}

TEST(Serialize, VecHelperRoundTrip) {
  std::vector<std::uint32_t> v{10, 20, 30};
  Writer w;
  w.vec(v, [](Writer& ww, std::uint32_t x) { ww.u32(x); });
  Reader r(w.data());
  auto got = r.vec<std::uint32_t>([](Reader& rr) { return rr.u32(); });
  EXPECT_EQ(got, v);
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, DeterministicBytes) {
  auto emit = [] {
    Writer w;
    w.u64(7);
    w.str("abc");
    w.bytes({9, 9});
    return std::move(w).take();
  };
  EXPECT_EQ(emit(), emit());
}

// Property: random mixed-type payloads round-trip exactly.
class SerializeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeFuzz, RandomRoundTrip) {
  std::mt19937_64 rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<int> kinds;
    Writer w;
    std::vector<std::uint64_t> vals;
    std::vector<std::string> strs;
    int n = 1 + static_cast<int>(rng() % 20);
    for (int i = 0; i < n; ++i) {
      int kind = static_cast<int>(rng() % 4);
      kinds.push_back(kind);
      switch (kind) {
        case 0: vals.push_back(rng() & 0xff); w.u8(static_cast<std::uint8_t>(vals.back())); break;
        case 1: vals.push_back(rng() & 0xffffffff); w.u32(static_cast<std::uint32_t>(vals.back())); break;
        case 2: vals.push_back(rng()); w.u64(vals.back()); break;
        case 3: {
          std::string s(rng() % 32, char('a' + rng() % 26));
          strs.push_back(s);
          w.str(s);
          break;
        }
      }
    }
    Reader r(w.data());
    std::size_t vi = 0, si = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0: EXPECT_EQ(r.u8(), vals[vi++]); break;
        case 1: EXPECT_EQ(r.u32(), vals[vi++]); break;
        case 2: EXPECT_EQ(r.u64(), vals[vi++]); break;
        case 3: EXPECT_EQ(r.str(), strs[si++]); break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace lmc
