// Static handler-independence analysis (DESIGN.md §14): one pinned fixture
// per IN rule firing, the dependent pair the checker must NOT admit, digest
// determinism, the SARIF shape shared with lmc_lint, and the runtime
// commutation auditor catching a deliberately false DeclaredPair.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "analyze/independence/auditor.hpp"
#include "analyze/independence/independence.hpp"
#include "analyze/sarif.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "mc/local_mc.hpp"
#include "protocols/paxos.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::indep {
namespace {

// Set by tests/CMakeLists.txt.
const std::string kFixtureDir = LMC_INDEP_FIXTURE_DIR;

dsl::CompiledProtocol load_fixture(const char* name) {
  dsl::LoadResult r = dsl::load_file(kFixtureDir + "/" + name);
  if (!r.ok()) throw std::runtime_error(r.diags.to_string());
  return dsl::instantiate(*r.spec);
}

std::uint64_t count_rule(const AnalysisResult& a, const char* rule) {
  return static_cast<std::uint64_t>(
      std::count_if(a.diagnostics.begin(), a.diagnostics.end(),
                    [&](const analyze::Diagnostic& d) { return d.rule == rule; }));
}

// --- IN rule firings --------------------------------------------------------

TEST(IndepAnalysis, In01AssertPairStaysDependent) {
  // A and B at the sink are disjoint on every checkable axis, but B carries
  // an injected assert: the near-miss is reported as IN01 and the pair is
  // conservatively kept dependent.
  dsl::CompiledProtocol p = load_fixture("in01_assert_pair.lmc");
  AnalysisResult a =
      analyze_independence(p.cfg.footprints.get(), p.cfg.num_nodes, "in01_assert_pair.lmc");
  EXPECT_EQ(count_rule(a, "IN01"), 1u);
  EXPECT_EQ(a.unclassifiable, 1u);
  // Message types A=0, B=1 — independent at the rule-less driver (both
  // no-ops there), dependent at the sink where the assert lives.
  EXPECT_TRUE(a.relation.independent(0, event_key(true, 0), event_key(true, 1)));
  EXPECT_FALSE(a.relation.independent(1, event_key(true, 0), event_key(true, 1)));
}

TEST(IndepAnalysis, In02DeclaredPairAdmittedAndFlagged) {
  // A field-flavor pair the static checker cannot confirm (same field
  // written with plain assignment on both sides) vouched for by the author:
  // admitted to the relation on the DeclaredPair, flagged IN02, and left to
  // the runtime auditor.
  ProtocolFootprints fp;
  fp.nodes.resize(1);
  NodeFootprints& nf = fp.nodes[0];
  nf.node = 0;
  nf.complete = true;
  for (std::uint32_t key = 0; key < 2; ++key) {
    RuleFootprint rf;
    rf.is_message = true;
    rf.key = key;
    rf.label = key == 0 ? "on_a" : "on_b";
    rf.writes.push_back({"shared", MergeKind::kNone});
    nf.rules.push_back(std::move(rf));
  }
  nf.declared_independent.push_back({true, 0, true, 1, "author says the writes never alias"});
  AnalysisResult a = analyze_independence(&fp, 1, "declared");
  EXPECT_EQ(count_rule(a, "IN02"), 1u);
  EXPECT_EQ(a.declared_pairs, 1u);
  EXPECT_EQ(a.derived_pairs, 0u);
  EXPECT_TRUE(a.relation.independent(0, event_key(true, 0), event_key(true, 1)));
}

TEST(IndepAnalysis, In03MissingMetadataMeansNoPairs) {
  // Null registry: one summary IN03, empty relation.
  AnalysisResult null_fp = analyze_independence(nullptr, 3, "bare");
  EXPECT_GE(count_rule(null_fp, "IN03"), 1u);
  EXPECT_EQ(null_fp.relation.size(), 0u);
  EXPECT_EQ(null_fp.nodes_without_metadata, 3u);

  // An incomplete node is just as opaque: disjoint rules, but `complete`
  // is false, so nothing may be derived for that node.
  ProtocolFootprints fp;
  fp.nodes.resize(1);
  fp.nodes[0].node = 0;
  fp.nodes[0].complete = false;
  for (std::uint32_t key = 0; key < 2; ++key) {
    RuleFootprint rf;
    rf.is_message = true;
    rf.key = key;
    rf.label = "r";
    rf.guard_states.push_back(key);
    rf.goto_states.push_back(key + 2);
    fp.nodes[0].rules.push_back(std::move(rf));
  }
  AnalysisResult a = analyze_independence(&fp, 1, "incomplete");
  EXPECT_GE(count_rule(a, "IN03"), 1u);
  EXPECT_EQ(a.relation.size(), 0u);
}

// --- the dependent pair -----------------------------------------------------

TEST(IndepAnalysis, RacingGuardPairIsNotIndependent) {
  // A and B consume the same idle guard at the sink — order-dependent by
  // construction. The checker must keep the pair dependent, and must not
  // report IN01 (it is not a near-miss, just dependent).
  dsl::CompiledProtocol p = load_fixture("dependent_pair.lmc");
  AnalysisResult a =
      analyze_independence(p.cfg.footprints.get(), p.cfg.num_nodes, "dependent_pair.lmc");
  EXPECT_FALSE(a.relation.independent(1, event_key(true, 0), event_key(true, 1)));
  EXPECT_EQ(count_rule(a, "IN01"), 0u);
  EXPECT_EQ(count_rule(a, "IN02"), 0u);
  EXPECT_EQ(count_rule(a, "IN03"), 0u);
}

TEST(IndepAnalysis, SelfPairsAreNeverDerived) {
  // Two messages of one type can race on the same counter even when the
  // type's footprint is self-disjoint — self-pairs only enter via
  // DeclaredPair.
  auto fp = paxos::make_config(3, paxos::CoreOptions{}, paxos::DriverConfig{}).footprints;
  ASSERT_NE(fp, nullptr);
  AnalysisResult a = analyze_independence(fp.get(), 3, "paxos");
  for (std::uint32_t t = 0; t < 4; ++t)
    EXPECT_FALSE(a.relation.independent(0, event_key(true, t), event_key(true, t)));
}

// --- digest determinism -----------------------------------------------------

TEST(IndepAnalysis, DigestIsDeterministicAndOrderInsensitive) {
  dsl::CompiledProtocol p = load_fixture("dependent_pair.lmc");
  AnalysisResult a = analyze_independence(p.cfg.footprints.get(), p.cfg.num_nodes, "x");
  AnalysisResult b = analyze_independence(p.cfg.footprints.get(), p.cfg.num_nodes, "x");
  EXPECT_NE(a.relation.digest(), 0u);
  EXPECT_EQ(a.relation.digest(), b.relation.digest());

  IndependenceRelation fwd(2), rev(2);
  fwd.add(0, event_key(true, 0), event_key(true, 1));
  fwd.add(1, event_key(false, 1), event_key(true, 2));
  fwd.seal();
  rev.add(1, event_key(true, 2), event_key(false, 1));  // swapped + reordered
  rev.add(0, event_key(true, 1), event_key(true, 0));
  rev.seal();
  EXPECT_EQ(fwd.digest(), rev.digest());
  EXPECT_EQ(fwd.size(), 2u);
}

// --- SARIF shape ------------------------------------------------------------

TEST(IndepAnalysis, SarifCarriesRulesAndFirings) {
  dsl::CompiledProtocol p = load_fixture("in01_assert_pair.lmc");
  AnalysisResult a =
      analyze_independence(p.cfg.footprints.get(), p.cfg.num_nodes, "in01_assert_pair.lmc");
  analyze::LintResult lint;
  lint.diagnostics = a.diagnostics;
  const std::string s = analyze::to_sarif(lint, "lmc_indep", indep_rules());
  EXPECT_NE(s.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"lmc_indep\""), std::string::npos);
  for (const char* id : {"IN01", "IN02", "IN03"})
    EXPECT_NE(s.find(std::string("\"id\":\"") + id + "\""), std::string::npos) << id;
  EXPECT_NE(s.find("in01_assert_pair.lmc"), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\":\"IN01\""), std::string::npos);
}

// --- runtime commutation auditor --------------------------------------------

TEST(IndepAuditor, FalseDeclaredPairIsCaughtAtPruneTime) {
  // divergence_pair.lmc: A-then-B lands in a_first, B-then-A in b_first. A
  // false DeclaredPair admits the racing pair to the relation; the pruner
  // claims a commuted twin covers one of the orders, and the auditor's
  // re-execution of both orders from the serialized pre-state must catch
  // the divergence before the unsound prune stands.
  dsl::CompiledProtocol p = load_fixture("divergence_pair.lmc");
  auto forged = std::make_shared<ProtocolFootprints>(*p.cfg.footprints);
  forged->nodes[1].declared_independent.push_back(
      {true, 0, true, 1, "forged: the guards actually race"});
  p.cfg.footprints = forged;

  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.por.mode = PorMode::kOn;
  opt.por.audit = true;
  LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
  EXPECT_THROW(mc.run_from_initial(), PorAuditError);
}

TEST(IndepAuditor, DivergentOrdersThrowDirectly) {
  // Unit-level: drive audit_commutation with the racing pair's own
  // messages and the real pre-state; both orders disagree on the final
  // state bytes.
  dsl::CompiledProtocol p = load_fixture("divergence_pair.lmc");
  const Blob pre = machine_to_blob(*p.cfg.make(1));
  AuditEvent a, b;
  a.is_message = true;
  a.msg.type = 0;  // A
  a.msg.src = 0;
  a.msg.dst = 1;
  b.is_message = true;
  b.msg.type = 1;  // B
  b.msg.src = 0;
  b.msg.dst = 1;
  EXPECT_THROW(audit_commutation(p.cfg, 1, pre, a, b), PorAuditError);
}

}  // namespace
}  // namespace lmc::indep
