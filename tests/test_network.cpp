// Network substrates: the classic in-flight set I and the monotonic I+.
#include <gtest/gtest.h>

#include "net/monotonic_network.hpp"
#include "net/network.hpp"
#include "net/sim_transport.hpp"

namespace lmc {
namespace {

Message mk(NodeId dst, NodeId src, std::uint32_t type, Blob payload = {}) {
  Message m;
  m.dst = dst;
  m.src = src;
  m.type = type;
  m.payload = std::move(payload);
  return m;
}

TEST(Network, AddAndTake) {
  Network net;
  EXPECT_TRUE(net.add(mk(1, 0, 7)));
  EXPECT_TRUE(net.add(mk(2, 0, 7)));
  EXPECT_EQ(net.size(), 2u);
  Message m = net.take(0);
  EXPECT_EQ(m.dst, 1u);
  EXPECT_EQ(net.size(), 1u);
  EXPECT_EQ(net.messages()[0].dst, 2u);
}

TEST(Network, DuplicateSuppression) {
  Network net;
  EXPECT_TRUE(net.add(mk(1, 0, 7)));
  EXPECT_FALSE(net.add(mk(1, 0, 7)));  // identical content
  EXPECT_EQ(net.size(), 1u);
  // After delivery the same content may be sent again (the suppression is
  // per in-flight set, not per history).
  net.take(0);
  EXPECT_TRUE(net.add(mk(1, 0, 7)));
}

TEST(Network, HashOrderIndependent) {
  Network a, b;
  a.add(mk(1, 0, 7));
  a.add(mk(2, 0, 8));
  b.add(mk(2, 0, 8));
  b.add(mk(1, 0, 7));
  EXPECT_EQ(a.hash(), b.hash());
  b.take(0);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Network, TakeOutOfRangeThrows) {
  Network net;
  EXPECT_THROW(net.take(0), std::out_of_range);
}

TEST(Network, AddAllReportsSuppressed) {
  Network net;
  std::vector<Message> batch{mk(1, 0, 7), mk(1, 0, 7), mk(2, 0, 7)};
  EXPECT_EQ(net.add_all(std::move(batch)), 1u);
  EXPECT_EQ(net.size(), 2u);
}

TEST(MonotonicNetwork, AppendOnlyWithDedup) {
  MonotonicNetwork net;
  EXPECT_TRUE(net.add(mk(1, 0, 7)));
  EXPECT_FALSE(net.add(mk(1, 0, 7)));
  EXPECT_TRUE(net.add(mk(1, 0, 8)));
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net.suppressed(), 1u);
}

TEST(MonotonicNetwork, CursorsStartAtZero) {
  MonotonicNetwork net;
  net.add(mk(1, 0, 7));
  EXPECT_EQ(net.at(0).next_state, 0u);
  net.at(0).next_state = 5;
  EXPECT_EQ(net.at(0).next_state, 5u);
}

TEST(MonotonicNetwork, MergeSuppressesKnownContentAndKeepsCursors) {
  MonotonicNetwork net;
  net.add(mk(1, 0, 7));
  net.at(0).next_state = 3;  // simulate earlier exploration progress

  // Merge a batch: one duplicate of existing content, one internal
  // duplicate pair, one genuinely new message.
  auto st = net.merge({mk(1, 0, 7), mk(2, 0, 8), mk(2, 0, 8), mk(3, 0, 9)});
  EXPECT_EQ(st.appended, 2u);
  EXPECT_EQ(st.suppressed, 2u);
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.suppressed(), 2u);
  // The pre-existing entry's cursor is untouched (warm start relies on it).
  EXPECT_EQ(net.at(0).next_state, 3u);
  // Appended entries start cold.
  EXPECT_EQ(net.at(1).next_state, 0u);
  EXPECT_EQ(net.at(2).next_state, 0u);
}

TEST(MonotonicNetwork, RestoreRebuildsIndexAndCursors) {
  MonotonicNetwork orig;
  orig.add(mk(1, 0, 7));
  orig.add(mk(2, 0, 8));
  orig.add(mk(1, 0, 7));  // suppressed
  orig.at(1).next_state = 4;

  std::vector<MonotonicNetwork::Entry> entries = orig.snapshot_entries();
  MonotonicNetwork net = MonotonicNetwork::restore(std::move(entries), orig.suppressed());
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net.suppressed(), 1u);
  EXPECT_EQ(net.at(1).next_state, 4u);
  EXPECT_TRUE(net.contains(mk(2, 0, 8).hash()));
  // Dedup still works against restored content.
  EXPECT_FALSE(net.add(mk(2, 0, 8)));
  EXPECT_EQ(net.suppressed(), 2u);
}

TEST(MonotonicNetwork, FindByHash) {
  MonotonicNetwork net;
  Message m = mk(2, 1, 9, {42});
  net.add(m);
  const Message* found = net.find(m.hash());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, m);
  EXPECT_EQ(net.find(12345), nullptr);
}

TEST(MonotonicNetwork, AllHashesInsertionOrder) {
  MonotonicNetwork net;
  Message a = mk(1, 0, 1), b = mk(2, 0, 2);
  net.add(a);
  net.add(b);
  auto hashes = net.all_hashes();
  ASSERT_EQ(hashes.size(), 2u);
  EXPECT_EQ(hashes[0], a.hash());
  EXPECT_EQ(hashes[1], b.hash());
}

TEST(SimTransport, LoopbackNeverDropped) {
  SimTransport t({1.0, 0.01, 0.05, 7});  // drop everything non-loopback
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(t.delivery_delay(mk(3, 3, 1)).has_value());
    EXPECT_FALSE(t.delivery_delay(mk(4, 3, 1)).has_value());
  }
  EXPECT_EQ(t.dropped(), 100u);
  EXPECT_EQ(t.sent(), 200u);
}

TEST(SimTransport, DropRateApproximatesConfig) {
  SimTransport t({0.3, 0.01, 0.05, 42});
  int dropped = 0;
  for (int i = 0; i < 10000; ++i)
    if (!t.delivery_delay(mk(1, 0, 1)).has_value()) ++dropped;
  EXPECT_NEAR(dropped / 10000.0, 0.3, 0.03);
}

TEST(SimTransport, LatencyWithinBounds) {
  SimTransport t({0.0, 0.010, 0.050, 5});
  for (int i = 0; i < 1000; ++i) {
    auto d = t.delivery_delay(mk(1, 0, 1));
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 0.010);
    EXPECT_LE(*d, 0.050);
  }
}

TEST(SimTransport, DeterministicUnderSeed) {
  SimTransport a({0.3, 0.01, 0.05, 99});
  SimTransport b({0.3, 0.01, 0.05, 99});
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.delivery_delay(mk(1, 0, 1)), b.delivery_delay(mk(1, 0, 1)));
}

}  // namespace
}  // namespace lmc
