// Checkpoint/resume: container-format validation, canonical round-trips,
// and the pinned property that an interrupted run resumed from its
// checkpoint performs EXACTLY the exploration the uninterrupted run would
// have (same states, transitions, violations).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>

#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/exec_cache.hpp"
#include "protocols/paxos.hpp"
#include "runtime/hash.hpp"

namespace lmc {
namespace {

constexpr std::uint32_t kEvInc = 1;
constexpr std::uint32_t kMsgPing = 7;

// Same tiny ring-counter protocol as test_local_mc: each node may fire
// `max_inc` increments, each pinging the next node; pings are counted.
class CounterNode final : public StateMachine {
 public:
  CounterNode(NodeId self, std::uint32_t n, std::uint32_t max_inc)
      : self_(self), n_(n), max_inc_(max_inc) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgPing, "counter: unknown message");
    if (m.type == kMsgPing) ++pings_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (incs_ < max_inc_) {
      Writer w;
      w.u32(incs_);
      return {InternalEvent{kEvInc, std::move(w).take()}};
    }
    return {};
  }
  void handle_internal(const InternalEvent& ev, Context& ctx) override {
    ctx.local_assert(ev.kind == kEvInc, "counter: unknown event");
    ++incs_;
    Writer w;
    w.u32(self_);
    w.u32(incs_);
    ctx.send((self_ + 1) % n_, kMsgPing, std::move(w).take());
  }
  void serialize(Writer& w) const override {
    w.u32(incs_);
    w.u32(pings_);
  }
  void deserialize(Reader& r) override {
    incs_ = r.u32();
    pings_ = r.u32();
  }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::uint32_t max_inc_;
  std::uint32_t incs_ = 0;
  std::uint32_t pings_ = 0;
};

SystemConfig counter_cfg(std::uint32_t n, std::uint32_t max_inc) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [max_inc](NodeId self, std::uint32_t num) {
    return std::make_unique<CounterNode>(self, num, max_inc);
  };
  return cfg;
}

class PingLimitInvariant final : public Invariant {
 public:
  explicit PingLimitInvariant(std::uint32_t limit) : limit_(limit) {}
  std::string name() const override { return "counter.ping_limit"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    std::uint32_t total = 0;
    for (const Blob* b : sys) {
      Reader r(*b);
      r.u32();
      total += r.u32();
    }
    return total < limit_;
  }

 private:
  std::uint32_t limit_;
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Structural fingerprint of a checker: per-node state-hash sets, I+ hashes,
// the numbers the resume-equality property pins down.
struct Fingerprint {
  std::vector<std::set<Hash64>> ls;
  std::set<Hash64> iplus;
  std::uint64_t transitions = 0;
  std::uint64_t node_states = 0;
  std::uint64_t confirmed = 0;
  std::vector<std::vector<Hash64>> violation_hashes;
};

Fingerprint fingerprint(const LocalModelChecker& mc, std::uint32_t num_nodes) {
  Fingerprint f;
  f.ls.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n)
    for (std::uint32_t i = 0; i < mc.store().size(n); ++i)
      f.ls[n].insert(mc.store().rec(n, i).hash);
  for (Hash64 h : mc.iplus().all_hashes()) f.iplus.insert(h);
  f.transitions = mc.stats().transitions;
  f.node_states = mc.stats().node_states;
  f.confirmed = mc.stats().confirmed_violations;
  for (const LocalViolation& v : mc.violations())
    if (v.confirmed) f.violation_hashes.push_back(v.state_hashes);
  return f;
}

void expect_equal(const Fingerprint& a, const Fingerprint& b) {
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.node_states, b.node_states);
  EXPECT_EQ(a.confirmed, b.confirmed);
  ASSERT_EQ(a.ls.size(), b.ls.size());
  for (std::size_t n = 0; n < a.ls.size(); ++n)
    EXPECT_EQ(a.ls[n], b.ls[n]) << "LS_" << n << " diverged";
  EXPECT_EQ(a.iplus, b.iplus) << "I+ diverged";
  EXPECT_EQ(a.violation_hashes, b.violation_hashes);
}

TEST(Persist, RoundTripIsByteIdentical) {
  SystemConfig cfg = counter_cfg(3, 2);
  PingLimitInvariant inv(4);
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();

  const Blob b = mc.checkpoint_bytes();
  // decode -> encode reproduces the bytes (canonical form).
  CheckerImage img = decode_checkpoint(b);
  EXPECT_EQ(encode_checkpoint(img), b);

  // load into a fresh checker -> re-save reproduces the bytes too.
  LocalModelChecker mc2(cfg, &inv, opt);
  mc2.load_checkpoint_bytes(b);
  EXPECT_EQ(mc2.checkpoint_bytes(), b);

  // And the loaded checker exposes identical state.
  expect_equal(fingerprint(mc, cfg.num_nodes), fingerprint(mc2, cfg.num_nodes));
}

TEST(Persist, MidRunCheckpointCarriesPendingTasks) {
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(1000);
  LocalMcOptions opt;
  opt.max_transitions = 5;  // stop mid-round: cursors passed uncollected tasks
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_FALSE(mc.stats().completed);

  const Blob b = mc.checkpoint_bytes();
  const CheckpointInfo info = inspect_checkpoint(b);
  EXPECT_GT(info.pending_tasks, 0u) << "a mid-round stop must persist the round's tail";
  // Round-trip still byte-identical with a pending section.
  EXPECT_EQ(encode_checkpoint(decode_checkpoint(b)), b);
}

TEST(Persist, InspectReportsCounters) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();

  const Blob b = mc.checkpoint_bytes();
  const CheckpointInfo info = inspect_checkpoint(b);
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.num_nodes, 2u);
  EXPECT_EQ(info.total_states, mc.store().total_states());
  EXPECT_EQ(info.net_size, mc.iplus().size());
  EXPECT_EQ(info.event_count, mc.events().size());
  EXPECT_EQ(info.epoch_count, 1u);
  EXPECT_EQ(info.transitions, mc.stats().transitions);
  EXPECT_EQ(info.sections.size(), 12u);
}

TEST(Persist, RejectsCorruptedInput) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  const Blob good = mc.checkpoint_bytes();

  // Too short / empty.
  EXPECT_THROW(decode_checkpoint(Blob{}), CheckpointError);
  EXPECT_THROW(decode_checkpoint(Blob(4, 0x42)), CheckpointError);

  // Bad magic.
  Blob bad = good;
  bad[0] ^= 0xff;
  EXPECT_THROW(decode_checkpoint(bad), CheckpointError);

  // Truncation anywhere is caught by the trailing checksum.
  Blob trunc(good.begin(), good.end() - 9);
  EXPECT_THROW(decode_checkpoint(trunc), CheckpointError);

  // A single flipped bit in the middle is caught by the checksum.
  Blob flipped = good;
  flipped[good.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_checkpoint(flipped), CheckpointError);
}

TEST(Persist, RejectsWrongVersionWithClearError) {
  SystemConfig cfg = counter_cfg(2, 1);
  LocalModelChecker mc(cfg, nullptr, {});
  mc.run_from_initial();
  Blob b = mc.checkpoint_bytes();

  // Patch the version field (offset 8, after the 8-byte magic) and redo the
  // trailing checksum so only the version check can reject it.
  b[8] = 0x77;
  const std::size_t body = b.size() - 8;
  const Hash64 sum = hash_bytes(b.data(), body);
  for (std::size_t i = 0; i < 8; ++i) b[body + i] = static_cast<std::uint8_t>(sum >> (8 * i));

  try {
    decode_checkpoint(b);
    FAIL() << "wrong version must be rejected";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(Persist, RejectsNodeCountMismatch) {
  SystemConfig cfg2 = counter_cfg(2, 1);
  LocalModelChecker mc(cfg2, nullptr, {});
  mc.run_from_initial();
  const Blob b = mc.checkpoint_bytes();

  SystemConfig cfg3 = counter_cfg(3, 1);
  LocalModelChecker other(cfg3, nullptr, {});
  EXPECT_THROW(other.load_checkpoint_bytes(b), CheckpointError);
}

TEST(Persist, FileRoundTripAndMissingFile) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();

  const std::string path = temp_path("ckpt_file_roundtrip.lmcckpt");
  mc.save_checkpoint(path);
  EXPECT_EQ(read_checkpoint_file(path), mc.checkpoint_bytes());

  LocalModelChecker mc2(cfg, &inv, {});
  mc2.load_checkpoint(path);
  expect_equal(fingerprint(mc, cfg.num_nodes), fingerprint(mc2, cfg.num_nodes));

  EXPECT_THROW(read_checkpoint_file(path + ".does-not-exist"), CheckpointError);
}

TEST(Persist, AutoCheckpointWritesDuringRun) {
  SystemConfig cfg = counter_cfg(4, 5);  // enough work for several rounds
  PingLimitInvariant inv(1u << 30);
  LocalMcOptions opt;
  opt.checkpoint_every_s = 1e-9;  // every round boundary
  opt.checkpoint_path = temp_path("ckpt_auto.lmcckpt");
  opt.max_transitions = 2000;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GT(mc.stats().checkpoints_written, 0u);
  // The file on disk is a valid checkpoint of this system.
  const CheckerImage img = decode_checkpoint(read_checkpoint_file(opt.checkpoint_path));
  EXPECT_EQ(img.num_nodes, cfg.num_nodes);
  EXPECT_GT(img.stats.checkpoints_written, 0u);
}

// The core property: interrupt at roughly half the transition budget,
// checkpoint, resume in a FRESH checker — the final exploration must be
// exactly the uninterrupted one.
TEST(Persist, InterruptedResumeEqualsUninterruptedCounter) {
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(6);
  LocalMcOptions full;
  full.stop_on_confirmed = false;
  LocalModelChecker a(cfg, &inv, full);
  a.run_from_initial();
  ASSERT_TRUE(a.stats().completed);
  ASSERT_GT(a.stats().transitions, 4u);

  LocalMcOptions half = full;
  half.max_transitions = a.stats().transitions / 2;
  LocalModelChecker b(cfg, &inv, half);
  b.run_from_initial();
  ASSERT_FALSE(b.stats().completed);
  ASSERT_LT(b.stats().transitions, a.stats().transitions);

  const std::string path = temp_path("ckpt_resume_counter.lmcckpt");
  b.save_checkpoint(path);

  LocalModelChecker c(cfg, &inv, full);
  c.run_resumed(path);
  EXPECT_TRUE(c.stats().completed);
  expect_equal(fingerprint(a, cfg.num_nodes), fingerprint(c, cfg.num_nodes));
  // Witnesses survive the round trip: still replayable from epoch 0.
  ASSERT_FALSE(c.violations().empty());
  const LocalViolation* v = c.first_confirmed();
  ASSERT_NE(v, nullptr);
  ReplayResult rep = replay_schedule(cfg, c.initial_nodes(), c.initial_in_flight(), v->witness,
                                     c.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

// Same property on the paper's §5.5 workload: the buggy-Paxos WiDS hunt,
// interrupted at half budget, must converge to the identical violation.
TEST(Persist, InterruptedResumeFindsSameWidsViolation) {
  SystemConfig cfg =
      paxos::make_config(3, paxos::CoreOptions{0, true}, paxos::DriverConfig{{0, 1}, 1});
  auto inv = paxos::make_agreement_invariant();

  // Build the §5.5 live state: node0's proposal chosen at node0 only.
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  auto fire = [&](NodeId n) {
    auto evs = internal_events_of(cfg, n, nodes[n]);
    ASSERT_FALSE(evs.empty());
    ExecResult r = exec_internal(cfg, n, nodes[n], evs[0]);
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
    for (Message& m : r.sent) flight.push_back(std::move(m));
  };
  auto deliver = [&](NodeId dst, std::uint32_t type) {
    for (std::size_t i = 0; i < flight.size(); ++i)
      if (flight[i].dst == dst && flight[i].type == type) {
        Message m = flight[i];
        flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
        ExecResult r = exec_message(cfg, dst, nodes[dst], m);
        ASSERT_FALSE(r.assert_failed);
        nodes[dst] = std::move(r.state);
        for (Message& out : r.sent) flight.push_back(std::move(out));
        return;
      }
    FAIL() << "no in-flight message of type " << type << " for node " << dst;
  };
  for (NodeId n = 0; n < 3; ++n) fire(n);
  fire(0);
  for (NodeId n = 0; n < 3; ++n) deliver(n, paxos::kPrepare);
  for (int i = 0; i < 3; ++i) deliver(0, paxos::kPrepareResponse);
  deliver(0, paxos::kAccept);
  deliver(1, paxos::kAccept);
  deliver(0, paxos::kLearn);
  deliver(0, paxos::kLearn);

  LocalMcOptions full;
  full.max_total_depth = 18;
  full.use_projection = true;
  full.time_budget_s = 120;
  LocalModelChecker a(cfg, inv.get(), full);
  a.run(nodes, {});
  ASSERT_GE(a.stats().confirmed_violations, 1u);

  LocalMcOptions half = full;
  half.max_transitions = a.stats().transitions / 2;
  LocalModelChecker b(cfg, inv.get(), half);
  b.run(nodes, {});
  ASSERT_FALSE(b.stats().completed);
  ASSERT_EQ(b.stats().confirmed_violations, 0u) << "half budget must interrupt before the bug";

  const std::string path = temp_path("ckpt_resume_wids.lmcckpt");
  b.save_checkpoint(path);

  LocalModelChecker c(cfg, inv.get(), full);
  c.run_resumed(path);
  expect_equal(fingerprint(a, cfg.num_nodes), fingerprint(c, cfg.num_nodes));

  const LocalViolation* v = c.first_confirmed();
  ASSERT_NE(v, nullptr);
  ReplayResult rep = replay_schedule(cfg, c.initial_nodes(), c.initial_in_flight(), v->witness,
                                     c.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

// A node that only absorbs kMsgWork messages, slowly: drives the
// inside-a-round checkpoint-interval regression test below.
constexpr std::uint32_t kMsgWork = 9;

class SlowSinkNode final : public StateMachine {
 public:
  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgWork, "slow: unknown message");
    std::this_thread::sleep_for(std::chrono::microseconds(1500));
    Reader r(m.payload);
    sum_ += r.u32();
    ++seen_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override { return {}; }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    ctx.local_assert(false, "slow: no internal events");
  }
  void serialize(Writer& w) const override {
    w.u32(seen_);
    w.u32(sum_);
  }
  void deserialize(Reader& r) override {
    seen_ = r.u32();
    sum_ = r.u32();
  }

 private:
  std::uint32_t seen_ = 0;
  std::uint32_t sum_ = 0;
};

TEST(Persist, SlowGenerationHonorsCheckpointInterval) {
  // checkpoint_every_s must be honored INSIDE a long generation of slow
  // handlers, not only at round boundaries: 40 ~1.5ms handlers land in one
  // round, so with a 5ms interval several checkpoints must be written at
  // the cooperative safepoints between task groups (the old round-barrier
  // loop wrote exactly one, after the round finished).
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId, std::uint32_t) { return std::make_unique<SlowSinkNode>(); };
  LocalMcOptions opt;
  opt.max_chain_depth = 1;  // each message is delivered to the root state only
  opt.checkpoint_every_s = 0.005;
  opt.checkpoint_path = temp_path("ckpt_slow_gen.lmcckpt");
  LocalModelChecker mc(cfg, nullptr, opt);

  std::vector<Message> flight;
  for (std::uint32_t i = 0; i < 40; ++i) {
    Writer w;
    w.u32(i);
    flight.push_back(Message{1, 0, kMsgWork, std::move(w).take()});
  }
  mc.run(initial_states(cfg), flight);
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().transitions, 40u);
  EXPECT_GE(mc.stats().checkpoints_written, 3u)
      << "the interval must fire at safepoints inside the round";
  // The file on disk is a valid checkpoint of this system.
  const CheckerImage img = decode_checkpoint(read_checkpoint_file(opt.checkpoint_path));
  EXPECT_EQ(img.num_nodes, cfg.num_nodes);
}

TEST(Persist, ResumedTraceContinuesSegmentAndRounds) {
  // Satellite of the segment section (FORMAT.md id 12): a resumed run's
  // trace must be stitchable to the original's — kRunBegin carries the
  // bumped segment id, and round numbering continues from the checkpoint's
  // round instead of restarting at 0.
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(1000);
  LocalMcOptions full;
  full.stop_on_confirmed = false;

  LocalModelChecker a(cfg, &inv, full);
  a.run_from_initial();
  ASSERT_TRUE(a.stats().completed);
  ASSERT_GT(a.stats().transitions, 4u);

  obs::TraceSink first_seg;
  LocalMcOptions half = full;
  half.max_transitions = a.stats().transitions / 2;
  half.trace = &first_seg;
  LocalModelChecker b(cfg, &inv, half);
  b.run_from_initial();
  ASSERT_FALSE(b.stats().completed);

  const CheckerImage img = decode_checkpoint(b.checkpoint_bytes());
  EXPECT_EQ(img.segment_id, 0u) << "a straight run is segment 0";
  ASSERT_GT(img.base_round, 0u);

  const std::string path = temp_path("ckpt_trace_seg.lmcckpt");
  b.save_checkpoint(path);

  obs::TraceSink second_seg;
  LocalMcOptions resume = full;
  resume.trace = &second_seg;
  LocalModelChecker c(cfg, &inv, resume);
  c.run_resumed(path);
  EXPECT_TRUE(c.stats().completed);

  auto run_begin = [](const obs::TraceSink& s) {
    for (const obs::TraceEvent& ev : s.events())
      if (ev.type == obs::EventType::kRunBegin) return ev;
    ADD_FAILURE() << "no kRunBegin in trace";
    return obs::TraceEvent{};
  };
  const obs::TraceEvent b0 = run_begin(first_seg);
  EXPECT_EQ(b0.a, 0u) << "mode: fresh";
  EXPECT_EQ(b0.seq, 0u) << "fresh run is segment 0";
  EXPECT_EQ(b0.round, 0u);
  const obs::TraceEvent b1 = run_begin(second_seg);
  EXPECT_EQ(b1.a, 2u) << "mode: resume";
  EXPECT_EQ(b1.seq, 1u) << "resume bumps the segment id";
  EXPECT_EQ(b1.round, img.base_round);

  // The resumed segment's first round is base_round + 1 (the replayed
  // pending tail of the interrupted round), never 0.
  std::uint32_t first_round = 0;
  for (const obs::TraceEvent& ev : second_seg.events())
    if (ev.type == obs::EventType::kRoundBegin) {
      first_round = ev.round;
      break;
    }
  EXPECT_EQ(first_round, img.base_round + 1);

  // Re-saving the resumed checker stamps the bumped segment id, and the
  // exploration is exactly the uninterrupted one.
  EXPECT_EQ(decode_checkpoint(c.checkpoint_bytes()).segment_id, 1u);
  expect_equal(fingerprint(a, cfg.num_nodes), fingerprint(c, cfg.num_nodes));
}

TEST(Persist, ExecCacheReplaysIdenticalExploration) {
  // A second run of the SAME search with a shared cache must perform ZERO
  // handler executions — every one replays from the cache — and still build
  // the identical exploration (stores, I+, violations).
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(6);
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;

  ExecCache cache;
  opt.exec_cache = &cache;
  LocalModelChecker first(cfg, &inv, opt);
  first.run_from_initial();
  ASSERT_GT(first.stats().transitions, 0u);
  EXPECT_EQ(first.stats().warm_pairs_skipped, 0u) << "first run: nothing to replay";
  EXPECT_EQ(cache.size(), first.stats().transitions);

  LocalModelChecker second(cfg, &inv, opt);
  second.run_from_initial();
  EXPECT_EQ(second.stats().transitions, 0u) << "every handler execution must be a cache hit";
  EXPECT_EQ(second.stats().warm_pairs_skipped, first.stats().transitions);

  Fingerprint fa = fingerprint(first, cfg.num_nodes);
  Fingerprint fb = fingerprint(second, cfg.num_nodes);
  fb.transitions = fa.transitions;  // by design: replays are not executions
  expect_equal(fa, fb);

  // Cached and uncached exploration build the identical search (only the
  // wall-clock stats fields can differ between separate runs).
  LocalMcOptions plain = opt;
  plain.exec_cache = nullptr;
  LocalModelChecker bare(cfg, &inv, plain);
  bare.run_from_initial();
  expect_equal(fa, fingerprint(bare, cfg.num_nodes));
}

TEST(Persist, ExecCacheFileRoundTripAndRejectsCorruption) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(100);
  LocalMcOptions opt;
  ExecCache cache;
  opt.exec_cache = &cache;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GT(cache.size(), 0u);

  const Blob b = cache.encode();
  ExecCache loaded;
  loaded.decode(b);
  EXPECT_EQ(loaded.size(), cache.size());
  EXPECT_EQ(loaded.encode(), b) << "canonical form: decode -> encode is identity";

  // A warm run against the loaded cache replays everything.
  LocalMcOptions opt2;
  opt2.exec_cache = &loaded;
  LocalModelChecker mc2(cfg, &inv, opt2);
  mc2.run_from_initial();
  EXPECT_EQ(mc2.stats().transitions, 0u);

  const std::string path = temp_path("warm.lmcexec");
  cache.save(path);
  ExecCache from_file;
  from_file.load(path);
  EXPECT_EQ(from_file.encode(), b);

  EXPECT_THROW(ExecCache().decode(Blob{}), CheckpointError);
  Blob bad_magic = b;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(ExecCache().decode(bad_magic), CheckpointError);
  Blob truncated(b.begin(), b.end() - 5);
  EXPECT_THROW(ExecCache().decode(truncated), CheckpointError);
  Blob flipped = b;
  flipped[flipped.size() / 2] ^= 0x10;
  EXPECT_THROW(ExecCache().decode(flipped), CheckpointError);
}

TEST(Persist, ExecCacheEvictsOldestGenerationFirst) {
  // Bounded memoization must favor RECENT entries: a budget-truncated period
  // inserts far more pairs than the cap, and the next period's reuse comes
  // from the newest ones. The cache rotates generations of half the cap —
  // the newest half-cap of inserts always survives; lookups never evict.
  auto res_tagged = [](std::uint8_t tag) {
    ExecResult r;
    r.state = Blob{tag};
    return r;
  };
  auto has = [](const ExecCache& c, std::uint64_t i) {
    ExecResult out;
    return c.lookup(i, 100 + i, out);
  };

  ExecCache cache(8);  // generation size: 4
  for (std::uint64_t i = 1; i <= 8; ++i) cache.insert(i, 100 + i, res_tagged(std::uint8_t(i)));
  EXPECT_EQ(cache.size(), 8u);
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_TRUE(has(cache, i)) << "key " << i;
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_TRUE(has(cache, i)) << "key " << i << " again";

  // Ninth insert rotates: the oldest generation {1..4} is dropped, however
  // recently its entries were hit.
  cache.insert(9, 109, res_tagged(9));
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_FALSE(has(cache, i)) << "key " << i;
  for (std::uint64_t i = 5; i <= 9; ++i) EXPECT_TRUE(has(cache, i)) << "key " << i;
  ExecResult out;
  ASSERT_TRUE(cache.lookup(5, 105, out));
  EXPECT_EQ(out.state, Blob{5});

  // {5..8} live in the old generation now; they survive until young fills
  // again, then age out together.
  for (std::uint64_t i = 10; i <= 12; ++i) cache.insert(i, 100 + i, res_tagged(std::uint8_t(i)));
  EXPECT_TRUE(has(cache, 5));
  cache.insert(13, 113, res_tagged(13));  // rotation: {5..8} dropped
  EXPECT_FALSE(has(cache, 5));
  for (std::uint64_t i = 9; i <= 13; ++i) EXPECT_TRUE(has(cache, i)) << "key " << i;

  // Re-inserting a key that is still present (in either generation) is a
  // no-op — no duplicates across generations.
  const std::size_t before = cache.size();
  cache.insert(9, 109, res_tagged(99));
  EXPECT_EQ(cache.size(), before);
  ASSERT_TRUE(cache.lookup(9, 109, out));
  EXPECT_EQ(out.state, Blob{9}) << "first insert wins";
}

TEST(Persist, WarmMergeAccumulatesEpochsAndCheckpoints) {
  // LocalModelChecker::run_warm merges each snapshot as a new epoch into the
  // shared LS_n / I+; the multi-epoch state must checkpoint canonically.
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(100);
  LocalMcOptions opt;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_warm(initial_states(cfg), {});  // first call == cold run
  ASSERT_EQ(mc.epochs().size(), 1u);
  const std::uint64_t t0 = mc.stats().transitions;

  // Second snapshot: same node states, one new in-flight message. The merge
  // must dedup the roots, append the message, and explore only the delta.
  Writer w;
  w.u32(9);
  w.u32(1);
  Message extra{0, 1, kMsgPing, std::move(w).take()};
  mc.run_warm(initial_states(cfg), {extra});
  EXPECT_EQ(mc.epochs().size(), 2u);
  EXPECT_EQ(mc.stats().warm_merges, 1u);
  EXPECT_EQ(mc.stats().warm_root_hits, 2u) << "identical roots must be reused, not re-added";
  EXPECT_GT(mc.stats().transitions, t0) << "the new message must be delivered";

  const Blob b = mc.checkpoint_bytes();
  EXPECT_EQ(encode_checkpoint(decode_checkpoint(b)), b);
  EXPECT_EQ(inspect_checkpoint(b).epoch_count, 2u);

  LocalModelChecker mc2(cfg, &inv, opt);
  mc2.load_checkpoint_bytes(b);
  expect_equal(fingerprint(mc, cfg.num_nodes), fingerprint(mc2, cfg.num_nodes));
}

}  // namespace
}  // namespace lmc
