// Firing fixture for ST02: handler touches a mutable namespace-scope variable.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>

#include "runtime/state_machine.hpp"

namespace fixture {

std::uint64_t g_shared_counter = 0;  // mutable global

class GlobalNode : public lmc::StateMachine {
 public:
  std::uint64_t mine_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    mine_ = g_shared_counter++;  // ST02 fires here
  }

  void serialize(lmc::Writer& w) const { w.u64(mine_); }
  void deserialize(lmc::Reader& r) { mine_ = r.u64(); }
};

}  // namespace fixture
