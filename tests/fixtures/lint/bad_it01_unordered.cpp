// Firing fixture for IT01: handler iterates an unordered container member.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>
#include <unordered_set>

#include "runtime/state_machine.hpp"

namespace fixture {

class UnorderedNode : public lmc::StateMachine {
 public:
  std::unordered_set<std::uint32_t> peers_;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    for (std::uint32_t p : peers_) {  // IT01 fires here: emission order is hash order
      lmc::Message out;
      out.dst = p;
      send(out);
    }
  }

  void serialize(lmc::Writer& w) const {
    for (auto it = peers_.begin(); it != peers_.end(); ++it) w.u32(*it);  // IT01 fires here too
  }
  void deserialize(lmc::Reader& r) { peers_.insert(r.u32()); }
};

}  // namespace fixture
