// Firing fixture for IO01: handler performs direct I/O.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdio>
#include <iostream>

#include "runtime/state_machine.hpp"

namespace fixture {

class IoNode : public lmc::StateMachine {
 public:
  std::uint64_t n_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    ++n_;
    printf("handled %llu\n", (unsigned long long)n_);  // IO01 fires here
    std::cout << "handled" << std::endl;               // IO01 fires here
  }

  void serialize(lmc::Writer& w) const { w.u64(n_); }
  void deserialize(lmc::Reader& r) { n_ = r.u64(); }
};

}  // namespace fixture
