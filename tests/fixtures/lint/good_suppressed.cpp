// Clean fixture: violations present but silenced by suppression directives.
// Must lint with ZERO diagnostics and a non-zero suppressed count.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>
#include <cstdlib>

#include "runtime/state_machine.hpp"

namespace fixture {

class SuppressedNode : public lmc::StateMachine {
 public:
  std::uint64_t n_ = 0;
  std::uint64_t cache_ = 0;  // derived state, rebuilt on demand

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    n_ += static_cast<std::uint64_t>(rand());  // lmc-lint-disable(ND01)
    // lmc-lint-disable(SR01) -- cache_ is derived from n_, not logical state
    cache_ = n_ * 2;
  }

  void serialize(lmc::Writer& w) const { w.u64(n_); }
  void deserialize(lmc::Reader& r) { n_ = r.u64(); }
};

}  // namespace fixture
