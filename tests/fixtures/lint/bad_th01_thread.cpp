// Firing fixture for TH01: handler uses a threading primitive.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <mutex>

#include "runtime/state_machine.hpp"

namespace fixture {

class ThreadNode : public lmc::StateMachine {
 public:
  std::uint64_t n_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    std::mutex mu;  // TH01 fires here
    std::lock_guard<std::mutex> lk(mu);
    ++n_;
  }

  void serialize(lmc::Writer& w) const { w.u64(n_); }
  void deserialize(lmc::Reader& r) { n_ = r.u64(); }
};

}  // namespace fixture
