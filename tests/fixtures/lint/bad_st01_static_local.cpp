// Firing fixture for ST01: mutable static local inside a handler.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>

#include "runtime/state_machine.hpp"

namespace fixture {

class StaticLocalNode : public lmc::StateMachine {
 public:
  std::uint64_t seen_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    static std::uint64_t calls = 0;  // ST01 fires here
    seen_ = ++calls;
  }

  void serialize(lmc::Writer& w) const { w.u64(seen_); }
  void deserialize(lmc::Reader& r) { seen_ = r.u64(); }
};

}  // namespace fixture
