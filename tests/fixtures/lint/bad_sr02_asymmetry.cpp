// Firing fixture for SR02: serialize()/deserialize() cover different fields.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>

#include "runtime/state_machine.hpp"

namespace fixture {

class AsymmetricNode : public lmc::StateMachine {
 public:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;  // SR02 fires here: written by serialize, never restored

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    a_ += 1;
    b_ += 2;
  }

  void serialize(lmc::Writer& w) const {
    w.u64(a_);
    w.u64(b_);
  }
  void deserialize(lmc::Reader& r) { a_ = r.u64(); }  // forgets b_
};

}  // namespace fixture
