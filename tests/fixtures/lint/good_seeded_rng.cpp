// Clean fixture: the sanctioned seeded-RNG-in-state pattern (DESIGN.md §9).
// Randomness is carried as a serialized field and advanced by a pure mixing
// function, so re-execution from the serialized state is deterministic.
// This file must lint with ZERO diagnostics.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>
#include <map>

#include "runtime/state_machine.hpp"

namespace fixture {

class SeededRngNode : public lmc::StateMachine {
 public:
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::map<std::uint32_t, std::uint64_t> draws_;

  // Pure splitmix64 step: same state in, same value out.
  std::uint64_t next_rand() {
    rng_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)send;
    draws_[m.src] = next_rand();
    for (const auto& [who, value] : draws_) {  // ordered map: fine
      (void)who;
      (void)value;
    }
  }

  void serialize(lmc::Writer& w) const {
    w.u64(rng_state_);
    w.u32(static_cast<std::uint32_t>(draws_.size()));
    for (const auto& [who, value] : draws_) {
      w.u32(who);
      w.u64(value);
    }
  }
  void deserialize(lmc::Reader& r) {
    rng_state_ = r.u64();
    const std::uint32_t n = r.u32();
    draws_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t who = r.u32();
      draws_[who] = r.u64();
    }
  }
};

}  // namespace fixture
