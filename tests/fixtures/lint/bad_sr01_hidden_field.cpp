// Firing fixture for SR01: handler mutates a field serialize() never writes.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>

#include "runtime/state_machine.hpp"

namespace fixture {

class HiddenFieldNode : public lmc::StateMachine {
 public:
  std::uint64_t visible_ = 0;
  std::uint64_t scratch_ = 0;  // mutated below but absent from serialize()

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    visible_ += 1;
    scratch_ += 1;  // SR01 fires here
  }

  void serialize(lmc::Writer& w) const { w.u64(visible_); }
  void deserialize(lmc::Reader& r) { visible_ = r.u64(); }
};

}  // namespace fixture
