// Firing fixture for ND02: handler takes the numeric identity of `this`.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdint>

#include "runtime/state_machine.hpp"

namespace fixture {

class PointerNode : public lmc::StateMachine {
 public:
  std::uint64_t tag_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    tag_ = reinterpret_cast<std::uintptr_t>(this);  // ND02 fires here
  }

  void serialize(lmc::Writer& w) const { w.u64(tag_); }
  void deserialize(lmc::Reader& r) { tag_ = r.u64(); }
};

}  // namespace fixture
