// Firing fixture for ND01: handler draws fresh entropy.
// NOT compiled into any target — parsed by lmc_lint tests only.
#include <cstdlib>
#include <random>

#include "runtime/state_machine.hpp"

namespace fixture {

class EntropyNode : public lmc::StateMachine {
 public:
  lmc::NodeId id_ = 0;
  std::uint64_t counter_ = 0;

  void handle_message(const lmc::Message& m, lmc::SendFn send) {
    (void)m;
    (void)send;
    counter_ += static_cast<std::uint64_t>(rand());  // ND01 fires here
    std::random_device rd;                           // ND01 fires here
    counter_ ^= rd();
  }

  void serialize(lmc::Writer& w) const { w.u64(counter_); }
  void deserialize(lmc::Reader& r) { counter_ = r.u64(); }
};

}  // namespace fixture
