// Unit tests for the differential-fuzzing subsystem itself: the generator's
// determinism and envelope guarantees, the ProtoSpec codec, the interpreter
// node's semantics, the shrinker, and a hand-written regression for the
// checker bug the fuzzer found (premature mid-run unsoundness verdicts).
#include <gtest/gtest.h>

#include <memory>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "dfuzz/shrink.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {
namespace {

// --- generator -------------------------------------------------------------

TEST(ProtoGen, SameSeedSameSpecSameBytes) {
  for (std::uint64_t seed : {1ull, 2ull, 42ull, 97ull, 664ull}) {
    dfuzz::ProtoSpec a = dfuzz::generate_spec(seed);
    dfuzz::ProtoSpec b = dfuzz::generate_spec(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    Writer wa, wb;
    a.serialize(wa);
    b.serialize(wb);
    EXPECT_EQ(std::move(wa).take(), std::move(wb).take()) << "seed " << seed;
  }
  // And different seeds actually vary.
  EXPECT_NE(dfuzz::generate_spec(1), dfuzz::generate_spec(2));
}

TEST(ProtoGen, EverySeedValidAndEnvelopeRespected) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    dfuzz::ProtoSpec s = dfuzz::generate_spec(seed);
    EXPECT_EQ(dfuzz::validate_spec(s), "") << "seed " << seed;
    // The completeness envelope: internal gotos never move backward, so no
    // rule can re-fire along a chain and regenerate message content
    // (regression for the seed-171 divergence class).
    for (const dfuzz::InternalRule& r : s.internals)
      EXPECT_GE(r.action.goto_state, r.guard_state) << "seed " << seed;
    // The first internal rule is enabled in the initial system state.
    ASSERT_FALSE(s.internals.empty()) << "seed " << seed;
    EXPECT_EQ(s.internals[0].guard_state, 0u) << "seed " << seed;
  }
}

TEST(ProtoGen, SpecSerializeRoundTrip) {
  dfuzz::ProtoSpec s = dfuzz::generate_spec(97);
  Writer w;
  s.serialize(w);
  Blob bytes = std::move(w).take();
  Reader r(bytes);
  EXPECT_EQ(dfuzz::ProtoSpec::deserialize(r), s);
}

TEST(ProtoGen, ValidateRejectsMalformedSpecs) {
  dfuzz::ProtoSpec base = dfuzz::generate_spec(5);
  ASSERT_EQ(dfuzz::validate_spec(base), "");

  auto broken = [&](auto mutate) {
    dfuzz::ProtoSpec s = base;
    mutate(s);
    return dfuzz::validate_spec(s);
  };
  EXPECT_NE(broken([](auto& s) { s.num_nodes = 1; }), "");
  EXPECT_NE(broken([](auto& s) { s.num_states = 1; }), "");
  EXPECT_NE(broken([](auto& s) { s.invariant.state_a = 0; }), "");
  EXPECT_NE(broken([](auto& s) { s.invariant.state_b = s.num_states; }), "");
  EXPECT_NE(broken([](auto& s) {
    s.internals[0].action.goto_state = s.num_states;  // out of range
  }), "");
  EXPECT_NE(broken([](auto& s) {
    dfuzz::MsgRule r;
    r.node = 0;
    r.type = 0;
    r.guard_state = 1;
    r.action.goto_state = 1;  // not strictly monotone
    s.msg_rules.push_back(r);
  }), "");
  EXPECT_NE(broken([](auto& s) {
    s.internals.resize(33, s.internals[0]);  // fired bitmask is 32 bits
  }), "");
  EXPECT_THROW(dfuzz::instantiate([&] {
    dfuzz::ProtoSpec s = base;
    s.num_nodes = 0;
    return s;
  }()), std::invalid_argument);
}

// --- interpreter node ------------------------------------------------------

/// 2 nodes, 3 states: node0 has one fire-once internal (stay at s0, send
/// type0 tag5 to node1); node1 moves s0->s1 on type0 (a second, shadowed
/// rule would move to s2 — first match must win) and s1->s2 on type0.
dfuzz::ProtoSpec hand_spec() {
  dfuzz::ProtoSpec s;
  s.seed = 0;
  s.num_nodes = 2;
  s.num_states = 3;
  s.num_msg_types = 2;
  s.internals.push_back({0, 0, {0, {{1, 0, 5}}, false}});
  s.msg_rules.push_back({1, 0, 0, {1, {}, false}});
  s.msg_rules.push_back({1, 0, 0, {2, {}, false}});  // shadowed by the rule above
  s.msg_rules.push_back({1, 0, 1, {2, {}, false}});
  s.invariant = {1, 1, false};
  return s;
}

Message tagged(NodeId dst, std::uint32_t type, std::uint32_t tag) {
  Writer w;
  w.u32(tag);
  return Message{dst, 0, type, std::move(w).take()};
}

TEST(GenNode, FireOnceInternalAndSends) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(hand_spec());
  std::vector<Blob> init = initial_states(p.cfg);
  EXPECT_EQ(dfuzz::gen_state_of(init[0]), 0u);
  EXPECT_EQ(dfuzz::gen_state_of(init[1]), 0u);

  auto evs = internal_events_of(p.cfg, 0, init[0]);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_TRUE(internal_events_of(p.cfg, 1, init[1]).empty());

  ExecResult r = exec_internal(p.cfg, 0, init[0], evs[0]);
  ASSERT_FALSE(r.assert_failed);
  EXPECT_EQ(dfuzz::gen_state_of(r.state), 0u);  // the rule stays at s0...
  EXPECT_NE(r.state, init[0]);                  // ...but the fired bit changed the blob
  ASSERT_EQ(r.sent.size(), 1u);
  EXPECT_EQ(r.sent[0].dst, 1u);
  EXPECT_EQ(r.sent[0].type, 0u);
  // Fire-once: the rule is gone even though the guard still matches.
  EXPECT_TRUE(internal_events_of(p.cfg, 0, r.state).empty());
}

TEST(GenNode, FirstMatchingRuleWins) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(hand_spec());
  std::vector<Blob> init = initial_states(p.cfg);
  ExecResult r = exec_message(p.cfg, 1, init[1], tagged(1, 0, 5));
  ASSERT_FALSE(r.assert_failed);
  EXPECT_EQ(dfuzz::gen_state_of(r.state), 1u);  // rule 0 (->s1), not rule 1 (->s2)
}

TEST(GenNode, UnmatchedDeliveryIsSilentNoOp) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(hand_spec());
  std::vector<Blob> init = initial_states(p.cfg);
  ExecResult r = exec_message(p.cfg, 1, init[1], tagged(1, 1, 9));  // no type-1 rule
  EXPECT_FALSE(r.assert_failed);
  EXPECT_EQ(r.state, init[1]);  // byte-identical: digest untouched on a drop
  EXPECT_TRUE(r.sent.empty());
}

TEST(GenNode, DigestSeparatesConsumedSetsButMergesReorderings) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(hand_spec());
  std::vector<Blob> init = initial_states(p.cfg);

  // Same rule, same successor state number — different consumed message.
  Blob via5 = exec_message(p.cfg, 1, init[1], tagged(1, 0, 5)).state;
  Blob via6 = exec_message(p.cfg, 1, init[1], tagged(1, 0, 6)).state;
  EXPECT_EQ(dfuzz::gen_state_of(via5), dfuzz::gen_state_of(via6));
  EXPECT_NE(via5, via6);  // histories differ, so the blobs must not merge

  // Consuming {5,6} in either order lands on the SAME blob: the digest is
  // order-insensitive, so LMC's predecessor merging still gets exercised.
  Blob ab = exec_message(p.cfg, 1, via5, tagged(1, 0, 6)).state;
  Blob ba = exec_message(p.cfg, 1, via6, tagged(1, 0, 5)).state;
  EXPECT_EQ(dfuzz::gen_state_of(ab), 2u);
  EXPECT_EQ(ab, ba);
}

// --- shrinker --------------------------------------------------------------

// Crippling the soundness verifier (joint-search expansion cap 0) turns
// every confirmation into a truncated Unsound verdict, so any violation-
// bearing protocol makes the oracle report gmc-violation-missing-from-lmc.
// The shrinker must reduce the protocol while preserving exactly that
// failure class, and its artifact must stay a valid, reproducing spec.
TEST(Shrink, MinimizesWhilePreservingFailureClass) {
  dfuzz::OracleOptions opt;
  opt.check_resume = false;  // irrelevant to the failure; keeps shrinking fast
  opt.check_opt = false;
  opt.soundness.max_schedules = 0;
  opt.soundness.quick_expansions = 0;

  dfuzz::ProtoSpec spec = dfuzz::generate_spec(14);  // violation-bearing seed
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(spec);
  dfuzz::OracleReport rep = dfuzz::DiffOracle(opt).check(p.cfg, p.invariant.get());
  ASSERT_TRUE(rep.conclusive) << rep.detail;
  ASSERT_FALSE(rep.ok);
  ASSERT_EQ(rep.failure, dfuzz::OracleFailure::GmcViolationMissing) << rep.detail;

  dfuzz::ShrinkResult res = dfuzz::shrink_spec(spec, rep.failure, opt);
  EXPECT_GT(res.attempts, 0u);
  EXPECT_EQ(dfuzz::validate_spec(res.spec), "");
  EXPECT_FALSE(res.report.ok);
  EXPECT_TRUE(res.report.conclusive);
  EXPECT_EQ(res.report.failure, dfuzz::OracleFailure::GmcViolationMissing);
  const std::size_t before = spec.internals.size() + spec.msg_rules.size();
  const std::size_t after = res.spec.internals.size() + res.spec.msg_rules.size();
  EXPECT_LE(after, before);
  EXPECT_GT(res.removed, 0u);  // seed 3 carries rules irrelevant to the bug
}

// Regression: node removal must reach MIDDLE nodes. The divergence here is
// carried by nodes 0 and 3 (each can reach s1, so the invariant's two-node
// coincidence is realizable); nodes 1 and 2 are pure bystanders chattering
// at each other. The old shrinker only ever peeled the HIGHEST node and
// stopped at the first failure — node 3 being load-bearing left the
// bystanders in the artifact forever. The rewritten pass tries every node
// and renumbers, so the artifact must land at exactly the two culprits.
TEST(Shrink, RemovesMiddleBystanderNodes) {
  dfuzz::ProtoSpec spec;
  spec.seed = 0;
  spec.num_nodes = 4;
  spec.num_states = 2;
  spec.num_msg_types = 1;
  spec.internals.push_back({0, 0, {1, {}, false}});
  spec.internals.push_back({3, 0, {1, {}, false}});
  spec.internals.push_back({1, 0, {0, {{2, 0, 11}}, false}});
  spec.internals.push_back({2, 0, {0, {{1, 0, 12}}, false}});
  spec.invariant = {1, 1, false};
  ASSERT_EQ(dfuzz::validate_spec(spec), "");

  dfuzz::OracleOptions opt;
  opt.check_resume = false;
  opt.check_opt = false;
  opt.soundness.max_schedules = 0;  // cripple soundness: see test above
  opt.soundness.quick_expansions = 0;

  dfuzz::GeneratedProtocol p = dfuzz::instantiate(spec);
  dfuzz::OracleReport rep = dfuzz::DiffOracle(opt).check(p.cfg, p.invariant.get());
  ASSERT_TRUE(rep.conclusive) << rep.detail;
  ASSERT_EQ(rep.failure, dfuzz::OracleFailure::GmcViolationMissing) << rep.detail;

  dfuzz::ShrinkResult res = dfuzz::shrink_spec(spec, rep.failure, opt);
  EXPECT_EQ(res.spec.num_nodes, 2u) << "bystander nodes 1 and 2 survived shrinking";
  EXPECT_EQ(res.spec.internals.size(), 2u);
  EXPECT_EQ(dfuzz::validate_spec(res.spec), "");
  EXPECT_TRUE(res.report.conclusive);
  EXPECT_EQ(res.report.failure, dfuzz::OracleFailure::GmcViolationMissing);
}

// --- regression: premature mid-run unsoundness verdicts --------------------

// Digest-less interpreter reproducing the seed-97 divergence shape: node 1
// has two fire-once internals at s0 — A stays and sends msg "1" to node 0,
// B advances to s1 and sends msg "2" — and node 0 moves s0->s1 on ANY
// message, so both deliveries produce the IDENTICAL node-0 blob. The sweep
// for node0@s1 runs right after the first delivery, when the only recorded
// predecessor is A's message: the combination {node0@s1, node1@s1-via-B-
// only} is infeasible AT THAT MOMENT (B never sent "1"), and only becomes
// sound when the second delivery adds B's predecessor edge. A checker that
// finalizes mid-run unsoundness verdicts misses the violation; the fix
// defers every non-sound phase-1 verdict to the a-posteriori drain.
class MergeNode final : public StateMachine {
 public:
  explicit MergeNode(NodeId self) : self_(self) {}

  void handle_message(const Message&, Context&) override {
    if (self_ == 0 && state_ == 0) state_ = 1;  // any message; payload ignored
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    std::vector<InternalEvent> evs;
    if (self_ == 1 && state_ == 0) {
      if (!(fired_ & 1)) evs.push_back({1, {}});  // A
      if (!(fired_ & 2)) evs.push_back({2, {}});  // B
    }
    return evs;
  }
  void handle_internal(const InternalEvent& ev, Context& ctx) override {
    Writer w;
    w.u32(ev.kind);
    ctx.send(0, 0, std::move(w).take());
    fired_ |= ev.kind == 1 ? 1u : 2u;
    if (ev.kind == 2) state_ = 1;
  }
  void serialize(Writer& w) const override {
    w.u32(state_);
    w.u32(fired_);
  }
  void deserialize(Reader& r) override {
    state_ = r.u32();
    fired_ = r.u32();
  }

 private:
  NodeId self_;
  std::uint32_t state_ = 0;
  std::uint32_t fired_ = 0;
};

class AtMostOneInS1 final : public Invariant {
 public:
  std::string name() const override { return "at_most_one_in_s1"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    std::size_t in_s1 = 0;
    for (const Blob* b : sys)
      if (dfuzz::gen_state_of(*b) == 1) ++in_s1;  // state is the leading u32
    return in_s1 <= 1;
  }
};

TEST(DeferralRegression, LatePredecessorEdgeStillConfirms) {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId self, std::uint32_t) { return std::make_unique<MergeNode>(self); };
  AtMostOneInS1 inv;
  dfuzz::OracleReport rep = dfuzz::DiffOracle(dfuzz::OracleOptions{}).check(cfg, &inv);
  ASSERT_TRUE(rep.conclusive) << rep.detail;
  EXPECT_TRUE(rep.ok) << "[" << dfuzz::to_string(rep.failure) << "] " << rep.detail;
  EXPECT_GT(rep.gmc_violation_tuples, 0u);
  EXPECT_GT(rep.lmc_confirmed, 0u);
  EXPECT_GT(rep.witnesses_replayed, 0u);
}

}  // namespace
}  // namespace lmc
