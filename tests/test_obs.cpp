// Observability layer (DESIGN.md §10, §15): trace determinism +
// non-perturbation over the frozen fuzz corpus, counter-exact report
// reproduction, JSONL round-trips, schema validation, the LMC_TRACE /
// LMC_PROF cost contracts, the profiling identity contract (1-vs-8-thread
// byte identity, checkpoint non-perturbation), the Chrome trace_event
// export, baseline missing-case reporting, and the checkpoint v3 stats
// fields (deferred_dropped counter, soundness_wall_s) including v2 read
// compatibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "mc/local_mc.hpp"
#include "obs/baseline.hpp"
#include "obs/bench_schema.hpp"
#include "obs/chrome.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "protocols/tree.hpp"
#include "runtime/hash.hpp"

namespace lmc {
namespace {

using obs::EventType;
using obs::TraceEvent;

std::vector<std::uint64_t> corpus_seeds() {
  std::vector<std::uint64_t> s;
  for (std::uint64_t i = 1; i <= 50; ++i) s.push_back(i);
  s.push_back(97);
  s.push_back(171);
  s.push_back(664);
  return s;
}

LocalMcOptions corpus_options(unsigned threads, obs::TraceSink* trace) {
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.use_projection = false;
  opt.num_threads = threads;
  opt.time_budget_s = 120;
  opt.trace = trace;
  return opt;
}

/// The identity stream with the one deliberately thread-count-dependent
/// field (kRunBegin's c = configured threads) masked out.
std::vector<obs::EventIdentity> thread_invariant_identities(const std::vector<TraceEvent>& evs) {
  std::vector<obs::EventIdentity> ids = obs::identities(evs);
  for (std::size_t i = 0; i < evs.size(); ++i)
    if (evs[i].type == EventType::kRunBegin) ids[i].c = 0;
  return ids;
}

/// Pin the report's counter-exact contract: every aggregate `summarize`
/// rebuilds from a full-run trace must equal the checker's own stats —
/// bit-for-bit for the doubles, since durations are summed in the same
/// order the checker accumulated them.
void expect_counter_exact(const obs::ReportSummary& sum, const LocalMcStats& st) {
  EXPECT_EQ(sum.transitions, st.transitions);
  EXPECT_EQ(sum.final_transitions, st.transitions);
  EXPECT_EQ(sum.prelim_violations, st.prelim_violations);
  EXPECT_EQ(sum.confirmed, st.confirmed_violations);
  EXPECT_EQ(sum.completed, st.completed);
  EXPECT_EQ(sum.elapsed_s, st.elapsed_s);
  EXPECT_EQ(sum.sweep_s, st.system_state_s);
  EXPECT_EQ(sum.soundness_wall_s, st.soundness_wall_s);
  EXPECT_EQ(sum.soundness_agg_s, st.soundness_s);
  EXPECT_EQ(sum.deferred_s, st.deferred_s);
}

// --- trace primitives -------------------------------------------------------

TEST(ObsTrace, IdentityIgnoresAttributionOnly) {
  TraceEvent a;
  a.type = EventType::kHandlerApply;
  a.phase = obs::Phase::kExplore;
  a.round = 3;
  a.node = 1;
  a.seq = 42;
  a.a = 0;
  a.b = 0xdeadbeef;
  a.c = 1;
  TraceEvent b = a;
  b.t = 5.0;       // attribution, not identity
  b.dur = 0.25;
  b.lane = 7;
  EXPECT_EQ(obs::identity(a), obs::identity(b));
  b.b = 0xdeadbef0;  // payload IS identity
  EXPECT_FALSE(obs::identity(a) == obs::identity(b));
}

TEST(ObsTrace, LmcTraceMacroDoesNotEvaluateArgsWhenOff) {
  int evaluated = 0;
  auto make = [&evaluated] {
    ++evaluated;
    return TraceEvent{};
  };
  obs::TraceSink* off = nullptr;
  LMC_TRACE(off, record(make()));
  EXPECT_EQ(evaluated, 0);
  obs::TraceSink on;
  LMC_TRACE(&on, record(make()));
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(on.events().size(), 1u);
}

TEST(ObsTrace, WorkerLanesDrainInSeqOrder) {
  obs::TraceSink sink;
  // Simulate out-of-order worker completion: seqs recorded 2, 0, 1.
  for (std::uint64_t seq : {2u, 0u, 1u}) {
    TraceEvent ev;
    ev.type = EventType::kHandlerRun;
    ev.seq = seq;
    sink.record_worker(ev);
  }
  EXPECT_EQ(sink.undrained(), 3u);
  sink.drain_workers();
  EXPECT_EQ(sink.undrained(), 0u);
  ASSERT_EQ(sink.events().size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(sink.events()[i].seq, i);
}

TEST(ObsTrace, JsonlRoundTripIsExact) {
  TraceEvent ev;
  ev.type = EventType::kComboSweep;
  ev.phase = obs::Phase::kSweep;
  ev.lane = 3;
  ev.round = 7;
  ev.node = TraceEvent::kNoNode;
  ev.seq = 0x1122334455667788ull;
  ev.a = 2;
  ev.b = ~0ull;  // u64 extremes must survive the JSON encoding
  ev.c = 1;
  ev.t = 0.1 + 0.2;          // not exactly representable — %.17g must round-trip
  ev.dur = 1.0 / 3.0;
  const std::string line = obs::to_jsonl_line(ev);
  std::string err;
  EXPECT_TRUE(obs::validate_obs_line(line, &err)) << err;
  TraceEvent back;
  ASSERT_TRUE(obs::parse_jsonl_line(line, back));
  EXPECT_EQ(obs::identity(ev), obs::identity(back));
  EXPECT_EQ(ev.lane, back.lane);
  EXPECT_EQ(ev.t, back.t);      // bitwise: %.17g is lossless for doubles
  EXPECT_EQ(ev.dur, back.dur);
}

TEST(ObsTrace, WorkerErrorRoundTripAndReportAggregation) {
  TraceEvent ev;
  ev.type = EventType::kWorkerError;
  ev.phase = obs::Phase::kExplore;
  ev.round = 3;
  ev.a = 2;  // secondary exceptions dropped
  ev.b = 0;  // source: phase-1 pipeline
  const std::string line = obs::to_jsonl_line(ev);
  std::string err;
  EXPECT_TRUE(obs::validate_obs_line(line, &err)) << err;
  TraceEvent back;
  ASSERT_TRUE(obs::parse_jsonl_line(line, back));
  EXPECT_EQ(back.type, EventType::kWorkerError);
  EXPECT_EQ(obs::identity(ev), obs::identity(back));

  // lmc_report surfaces both the event count and the summed drop count.
  TraceEvent pool_ev;
  pool_ev.type = EventType::kWorkerError;
  pool_ev.a = 1;
  pool_ev.b = 1;  // source: WorkerPool
  const obs::ReportSummary s = obs::summarize({ev, pool_ev});
  EXPECT_EQ(s.worker_errors, 2u);
  EXPECT_EQ(s.worker_exceptions_dropped, 3u);
}

// --- metrics ----------------------------------------------------------------

TEST(ObsMetrics, IntervalGatingAndRates) {
  obs::MetricsSink every(/*interval_s=*/0.0);
  obs::MetricsSnapshot s;
  s.where = "round";
  s.transitions = 10;
  s.exec_hits = 3;
  s.exec_misses = 1;
  every.tick(s);
  s.transitions = 30;
  every.tick(s);
  ASSERT_EQ(every.records().size(), 2u);
  EXPECT_EQ(every.records()[1].exec_hit_rate, 0.75);
  EXPECT_GE(every.records()[1].states_per_s, 0.0);

  obs::MetricsSink gated(/*interval_s=*/3600.0);
  gated.tick(s);   // first tick always records (nothing to gate against)
  gated.tick(s);   // inside the window — dropped
  gated.force(s);  // book-end — recorded regardless
  EXPECT_EQ(gated.records().size(), 2u);
}

TEST(ObsMetrics, JsonlRoundTripAndSchema) {
  obs::MetricsSink sink(0.0);
  obs::MetricsSnapshot s;
  s.where = "sweep";
  s.round = 2;
  s.transitions = 123;
  s.sweep_s = 0.125;
  sink.tick(s);
  const std::string jsonl = sink.to_jsonl();
  const std::string line = jsonl.substr(0, jsonl.find('\n'));
  std::string err;
  EXPECT_TRUE(obs::validate_obs_line(line, &err)) << err;
  obs::MetricsRecord back;
  ASSERT_TRUE(obs::parse_jsonl_line(line, back));
  EXPECT_EQ(back.snap.where, "sweep");
  EXPECT_EQ(back.snap.round, 2u);
  EXPECT_EQ(back.snap.transitions, 123u);
  EXPECT_EQ(back.snap.sweep_s, 0.125);
  // A metrics line is not a trace line — the parsers must not cross-accept.
  TraceEvent tev;
  EXPECT_FALSE(obs::parse_jsonl_line(line, tev));
}

// --- bench schema -----------------------------------------------------------

TEST(ObsBench, RecordValidatesAndBadLinesAreRejected) {
  obs::BenchRecord rec("bench_test", "case1");
  rec.param("threads", std::uint64_t{8});
  rec.param("proto", std::string("tree"));
  rec.metric("transitions", std::uint64_t{42});
  rec.metric("elapsed_s", 0.5);
  std::string err;
  EXPECT_TRUE(obs::validate_obs_line(rec.to_json(), &err)) << err;
  EXPECT_FALSE(obs::validate_obs_line("{\"bench\":\"x\"}", &err));        // no schema key
  EXPECT_FALSE(obs::validate_obs_line("{\"schema\":\"nope/9\"}", &err));  // unknown schema
  EXPECT_FALSE(obs::validate_obs_line("not json", &err));
}

// --- checker integration: non-perturbation, determinism, counter-exact ------

TEST(ObsChecker, TreeRunTracedVsUntracedAndReport) {
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  tree::CausalDeliveryInvariant inv(topo);

  LocalMcOptions plain_opt;
  LocalModelChecker plain(cfg, &inv, plain_opt);
  plain.run_from_initial();
  const Blob plain_bytes = dfuzz::normalized_checkpoint_bytes(plain.checkpoint_bytes());

  obs::TraceSink trace;
  obs::MetricsSink metrics(0.0);
  LocalMcOptions traced_opt;
  traced_opt.trace = &trace;
  traced_opt.metrics = &metrics;
  LocalModelChecker traced(cfg, &inv, traced_opt);
  traced.run_from_initial();

  // Non-perturbation: tracing on vs. off leaves identical checker output.
  EXPECT_EQ(plain_bytes, dfuzz::normalized_checkpoint_bytes(traced.checkpoint_bytes()));
  EXPECT_EQ(trace.undrained(), 0u);
  ASSERT_FALSE(trace.events().empty());
  EXPECT_FALSE(metrics.records().empty());

  const obs::ReportSummary sum = obs::summarize(trace.events());
  expect_counter_exact(sum, traced.stats());
  EXPECT_EQ(sum.run_begins, 1u);
  EXPECT_EQ(sum.run_ends, 1u);
  EXPECT_FALSE(sum.rules.empty());
  EXPECT_GE(sum.soundness_wall_s, 0.0);
  EXPECT_LE(sum.soundness_wall_s, sum.elapsed_s);

  // The file path reproduces the in-memory aggregates bit-for-bit: %.17g
  // JSONL is lossless, so lmc_report on the written trace agrees exactly.
  const std::string path = ::testing::TempDir() + "obs_tree_trace.jsonl";
  trace.write_jsonl(path);
  const std::vector<TraceEvent> loaded = obs::load_trace_file(path);
  ASSERT_EQ(loaded.size(), trace.events().size());
  EXPECT_EQ(obs::identities(loaded), obs::identities(trace.events()));
  const obs::ReportSummary from_file = obs::summarize(loaded);
  expect_counter_exact(from_file, traced.stats());
  EXPECT_EQ(from_file.handler_exec_s, sum.handler_exec_s);

  // Every line the sink wrote validates against "lmc-trace/1".
  std::string err;
  const std::string jsonl = trace.to_jsonl();
  std::size_t start = 0, lines = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    EXPECT_TRUE(obs::validate_obs_line(jsonl.substr(start, end - start), &err)) << err;
    ++lines;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(lines, trace.events().size());
}

// The tentpole contract over the frozen fuzz corpus: for every seed, at 1
// and at 8 threads, (a) tracing does not perturb the checker — normalized
// checkpoint bytes are identical on vs. off — and (b) the trace's identity
// stream is a pure function of the exploration — permutation-stable across
// thread counts. The traced runs double as counter-exact report fixtures.
TEST(ObsCorpus, TracedByteIdenticalAndThreadPermutationStable) {
  std::uint64_t with_soundness = 0;
  for (std::uint64_t seed : corpus_seeds()) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    std::vector<obs::EventIdentity> base_ids;
    for (unsigned threads : {1u, 8u}) {
      LocalModelChecker plain(p.cfg, p.invariant.get(), corpus_options(threads, nullptr));
      plain.run_from_initial();
      ASSERT_TRUE(plain.stats().completed) << "seed " << seed << " threads " << threads;
      const Blob plain_bytes = dfuzz::normalized_checkpoint_bytes(plain.checkpoint_bytes());

      obs::TraceSink sink;
      LocalModelChecker traced(p.cfg, p.invariant.get(), corpus_options(threads, &sink));
      traced.run_from_initial();
      ASSERT_EQ(plain_bytes, dfuzz::normalized_checkpoint_bytes(traced.checkpoint_bytes()))
          << "seed " << seed << ": tracing perturbed the run at " << threads << " threads";
      EXPECT_EQ(sink.undrained(), 0u) << "seed " << seed;

      expect_counter_exact(obs::summarize(sink.events()), traced.stats());
      if (traced.stats().soundness_calls > 0) ++with_soundness;

      std::vector<obs::EventIdentity> ids = thread_invariant_identities(sink.events());
      if (threads == 1) {
        base_ids = std::move(ids);
      } else {
        EXPECT_EQ(base_ids, ids)
            << "seed " << seed << ": trace identity diverged at " << threads << " threads";
      }
    }
  }
  // The corpus only pins the soundness/deferral event paths if some seeds
  // actually reach them.
  EXPECT_GT(with_soundness, 0u);
}

// --- checkpoint v3 stats fields --------------------------------------------

Blob small_checkpoint() {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(5));
  LocalModelChecker mc(p.cfg, p.invariant.get(), corpus_options(1, nullptr));
  mc.run_from_initial();
  return mc.checkpoint_bytes();
}

TEST(ObsCheckpoint, DeferredDroppedCounterAndWallSecondsRoundTrip) {
  CheckerImage img = decode_checkpoint(small_checkpoint());
  img.stats.deferred_dropped = 7;  // a counter now, not a latched bool
  img.stats.soundness_wall_s = 1.5;
  const Blob b = encode_checkpoint(img);
  const CheckerImage back = decode_checkpoint(b);
  EXPECT_EQ(back.stats.deferred_dropped, 7u);
  EXPECT_EQ(back.stats.soundness_wall_s, 1.5);
  // Canonical round-trip still holds for current-version files.
  EXPECT_EQ(encode_checkpoint(back), b);
}

// v3 stats payload layout (persist/FORMAT.md): 27 u64 counters (with
// deferred_dropped twelfth, at byte offset 88), then five doubles (with
// soundness_wall_s last, at byte offset 248), then bool + two u32s.
constexpr std::size_t kStatsV3Bytes = 32 * 8 + 1 + 4 + 4;
constexpr std::size_t kDroppedOff = 11 * 8;
constexpr std::size_t kWallOff = 31 * 8;

Blob stats_v3_to_v2(const Blob& p) {
  EXPECT_EQ(p.size(), kStatsV3Bytes);
  Blob q(p.begin(), p.begin() + kDroppedOff);
  bool dropped = false;  // v2 stored the counter as a latched bool
  for (std::size_t i = 0; i < 8; ++i) dropped |= p[kDroppedOff + i] != 0;
  q.push_back(dropped ? 1 : 0);
  q.insert(q.end(), p.begin() + kDroppedOff + 8, p.begin() + kWallOff);
  // v2 had no soundness_wall_s: skip those 8 bytes.
  q.insert(q.end(), p.begin() + kWallOff + 8, p.end());
  return q;
}

/// Rebuild a v3 checkpoint as the byte-exact v2 a previous writer would
/// have produced: version field, shrunken stats section, fresh checksum.
Blob downgrade_to_v2(const Blob& v3) {
  CheckpointReader r(v3);
  Writer w;
  w.raw(reinterpret_cast<const std::uint8_t*>(kCheckpointMagic), sizeof(kCheckpointMagic));
  w.u32(2);
  w.u32(r.num_nodes());
  w.u32(static_cast<std::uint32_t>(r.sections().size()));
  w.u32(0);
  for (const CheckpointReader::Section& s : r.sections()) {
    Blob payload(v3.begin() + s.offset, v3.begin() + s.offset + s.len);
    if (s.id == kSecStats) payload = stats_v3_to_v2(payload);
    w.u32(s.id);
    w.u32(0);
    w.u64(payload.size());
    w.raw(payload.data(), payload.size());
  }
  Blob out = std::move(w).take();
  const Hash64 sum = hash_bytes(out.data(), out.size());
  Writer tail;
  tail.u64(sum);
  out.insert(out.end(), tail.data().begin(), tail.data().end());
  return out;
}

TEST(ObsCheckpoint, ReadsV2FilesWideningChangedStatsFields) {
  CheckerImage img = decode_checkpoint(small_checkpoint());
  img.stats.deferred_dropped = 7;
  img.stats.soundness_wall_s = 1.5;
  const Blob v2 = downgrade_to_v2(encode_checkpoint(img));
  const CheckerImage back = decode_checkpoint(v2);
  // The v2 bool widens to 0/1; the field v2 never stored defaults to 0.
  EXPECT_EQ(back.stats.deferred_dropped, 1u);
  EXPECT_EQ(back.stats.soundness_wall_s, 0.0);
  // Everything else survives the downgrade untouched.
  EXPECT_EQ(back.stats.transitions, img.stats.transitions);
  EXPECT_EQ(back.stats.soundness_calls, img.stats.soundness_calls);
  EXPECT_EQ(back.stats.deferred_processed, img.stats.deferred_processed);
  EXPECT_EQ(back.stats.elapsed_s, img.stats.elapsed_s);
  EXPECT_EQ(back.stats.soundness_s, img.stats.soundness_s);
  EXPECT_EQ(back.stats.deferred_s, img.stats.deferred_s);
  EXPECT_EQ(back.stats.completed, img.stats.completed);
  EXPECT_EQ(back.store.total_states(), img.store.total_states());
  EXPECT_EQ(back.net_entries.size(), img.net_entries.size());
}

// --- profiling (DESIGN.md §15) ---------------------------------------------

TEST(ObsProf, LmcProfMacroDoesNotEvaluateArgsWhenOff) {
  int evaluated = 0;
  auto delta = [&evaluated] {
    ++evaluated;
    return std::uint64_t{1};
  };
  obs::ProfileSink* off = nullptr;
  LMC_PROF(off, count(obs::Counter::kHandlerRuns, delta()));
  EXPECT_EQ(evaluated, 0);
  obs::ProfileSink on;
  LMC_PROF(&on, count(obs::Counter::kHandlerRuns, delta()));
  EXPECT_EQ(evaluated, 1);
  EXPECT_EQ(on.counter(obs::Counter::kHandlerRuns), 1u);
}

TEST(ObsProf, TimeHistBucketsAreLog2Nanoseconds) {
  obs::TimeHist h;
  h.add(0.0);       // < 1ns -> bucket 0
  h.add(1.5e-9);    // [1, 2) ns -> bucket 1
  h.add(3e-9);      // [2, 4) ns -> bucket 2
  h.add(1e-6);      // ~2^10 ns
  EXPECT_EQ(h.samples(), 4u);
  EXPECT_EQ(h.count[0], 1u);
  EXPECT_EQ(h.count[1], 1u);
  EXPECT_EQ(h.count[2], 1u);
  obs::TimeHist other;
  other.add(1.5e-9);
  h.merge(other);
  EXPECT_EQ(h.samples(), 5u);
  EXPECT_EQ(h.count[1], 2u);
}

TEST(ObsProf, WorkerLanesFoldOnDrain) {
  obs::ProfileSink sink;
  sink.count_worker(obs::Counter::kSoundnessJobs, 5);
  sink.time_worker(obs::Phase::kSoundness, 0.25);
  // Worker-lane writes are invisible until the deterministic drain point.
  EXPECT_EQ(sink.counter(obs::Counter::kSoundnessJobs), 0u);
  sink.drain_workers();
  EXPECT_EQ(sink.counter(obs::Counter::kSoundnessJobs), 5u);
  EXPECT_EQ(sink.phase_seconds(obs::Phase::kSoundness), 0.25);
  // Draining is move-out, not copy: a second drain adds nothing.
  sink.drain_workers();
  EXPECT_EQ(sink.counter(obs::Counter::kSoundnessJobs), 5u);
}

TEST(ObsProf, JsonlRoundTripValidatesAndMergesExactly) {
  obs::ProfileSink sink;
  sink.note_threads(4);
  sink.run_wall(1.5);
  sink.count(obs::Counter::kBytesHashed, 1000);
  sink.count(obs::Counter::kHandlerRuns, 7);
  sink.count_shard(3, /*hit=*/true);
  sink.count_shard(3, /*hit=*/false);
  sink.phase_wall(obs::Phase::kSweep, 0.5);
  const obs::RuleKey key{2, 1, 9};
  sink.rule(key, /*cached=*/false, /*ser_bytes=*/64, /*hash_bytes=*/32, /*exec_s=*/1e-6);
  sink.rule(key, /*cached=*/true, /*ser_bytes=*/64, /*hash_bytes=*/0, /*exec_s=*/0.0);

  const std::string jsonl = sink.to_jsonl();
  obs::ProfileData data;
  std::size_t start = 0;
  std::string err;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    const std::string line = jsonl.substr(start, end - start);
    EXPECT_TRUE(obs::validate_obs_line(line, &err)) << err;
    EXPECT_TRUE(obs::merge_prof_line(line, data)) << line;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(data.threads, 4u);
  EXPECT_EQ(data.run_wall_s, 1.5);
  EXPECT_EQ(data.counters[static_cast<std::size_t>(obs::Counter::kBytesHashed)], 1000u);
  EXPECT_EQ(data.counters[static_cast<std::size_t>(obs::Counter::kHandlerRuns)], 7u);
  EXPECT_EQ(data.shard_hits[3], 1u);
  EXPECT_EQ(data.shard_misses[3], 1u);
  EXPECT_EQ(data.phase_s[static_cast<std::size_t>(obs::Phase::kSweep)], 0.5);
  ASSERT_EQ(data.rules.size(), 1u);
  const obs::ProfileData::Rule& r = data.rules.begin()->second;
  EXPECT_EQ(r.key, key);
  EXPECT_EQ(r.runs, 1u);
  EXPECT_EQ(r.cached, 1u);
  EXPECT_EQ(r.ser_bytes, 128u);
  EXPECT_EQ(r.hash_bytes, 32u);
  EXPECT_EQ(r.samples, 1u);  // only the uncached execution is timed

  // Non-prof lines are tolerated (mixed files); malformed prof lines fail
  // schema validation.
  EXPECT_FALSE(obs::merge_prof_line("{\"schema\":\"lmc-trace/1\"}", data));
  EXPECT_FALSE(obs::validate_obs_line(
      "{\"schema\":\"lmc-prof/1\",\"kind\":\"bogus\"}", &err));
  EXPECT_FALSE(obs::validate_obs_line("{\"schema\":\"lmc-prof/1\"}", &err));
}

// The tentpole contract over a frozen-corpus slice: the profile's identity
// aggregates are a pure function of the exploration — byte-identical at 1
// vs 8 threads — and attaching a sink does not perturb the checker
// (normalized checkpoint bytes identical profiling on vs off).
TEST(ObsProfCorpus, IdentityByteIdentical1v8AndCheckpointUnperturbed) {
  std::vector<std::uint64_t> slice;
  for (std::uint64_t i = 1; i <= 10; ++i) slice.push_back(i);
  slice.push_back(97);
  slice.push_back(171);
  slice.push_back(664);

  std::uint64_t with_handler_runs = 0;
  for (std::uint64_t seed : slice) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));

    LocalModelChecker plain(p.cfg, p.invariant.get(), corpus_options(1, nullptr));
    plain.run_from_initial();
    ASSERT_TRUE(plain.stats().completed) << "seed " << seed;
    const Blob plain_bytes = dfuzz::normalized_checkpoint_bytes(plain.checkpoint_bytes());

    std::string base_identity;
    for (unsigned threads : {1u, 8u}) {
      obs::ProfileSink prof;
      LocalMcOptions opt = corpus_options(threads, nullptr);
      opt.profile = &prof;
      LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
      mc.run_from_initial();
      ASSERT_TRUE(mc.stats().completed) << "seed " << seed << " threads " << threads;
      ASSERT_EQ(plain_bytes, dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes()))
          << "seed " << seed << ": profiling perturbed the run at " << threads << " threads";
      if (prof.counter(obs::Counter::kHandlerRuns) > 0) ++with_handler_runs;
      const std::string identity = prof.identity_text();
      if (threads == 1)
        base_identity = identity;
      else
        EXPECT_EQ(base_identity, identity)
            << "seed " << seed << ": profile identity diverged at " << threads << " threads";
    }
  }
  EXPECT_GT(with_handler_runs, 0u);
}

// --- Chrome trace_event export ----------------------------------------------

TEST(ObsChrome, ExportValidatesAndBadDocsRejected) {
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  tree::CausalDeliveryInvariant inv(topo);

  obs::TraceSink trace;
  obs::MetricsSink metrics(0.0);
  obs::ProfileSink prof;
  LocalMcOptions opt;
  opt.trace = &trace;
  opt.metrics = &metrics;
  opt.profile = &prof;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_FALSE(trace.events().empty());

  obs::ProfileData pdata;
  {
    const std::string jsonl = prof.to_jsonl();
    std::size_t start = 0;
    while (start < jsonl.size()) {
      const std::size_t end = jsonl.find('\n', start);
      obs::merge_prof_line(jsonl.substr(start, end - start), pdata);
      if (end == std::string::npos) break;
      start = end + 1;
    }
    ASSERT_GT(pdata.lines, 0u);
  }

  std::string err;
  const std::string with_prof = obs::chrome_trace_json(trace.events(), metrics.records(), &pdata);
  EXPECT_TRUE(obs::validate_chrome_trace(with_prof, &err)) << err;
  const std::string without = obs::chrome_trace_json(trace.events(), metrics.records(), nullptr);
  EXPECT_TRUE(obs::validate_chrome_trace(without, &err)) << err;

  EXPECT_FALSE(obs::validate_chrome_trace("not json", &err));
  EXPECT_FALSE(obs::validate_chrome_trace("{}", &err));                   // no traceEvents
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\":{}}", &err)); // not an array
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\"}]}", &err));                     // entry missing ph/pid
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1}]}", &err));             // non-meta missing ts
}

// --- baseline: missing cases are visible but never gate ----------------------

TEST(ObsBaseline, MissingCasesReportedNotGating) {
  std::map<std::string, std::map<std::string, double>> base, cur;
  base["bench_a|case1|"] = {{"elapsed_s", 1.0}, {"transitions", 100.0}};
  base["bench_a|case2|"] = {{"elapsed_s", 2.0}};  // whole case absent from current
  cur["bench_a|case1|"] = {{"elapsed_s", 1.01}, {"transitions", 100.0}};

  const obs::BaselineComparison cmp = obs::compare_benches(base, cur);
  ASSERT_EQ(cmp.missing_cases.size(), 1u);
  EXPECT_EQ(cmp.missing_cases[0], "bench_a|case2|");
  EXPECT_EQ(cmp.rows.size(), 2u);  // case1's two metrics; case2 contributes no rows
  EXPECT_TRUE(cmp.only_baseline.empty());

  // A tight gate over the compared rows: the +1% time delta passes at 5%,
  // and the missing case never counts as a regression.
  EXPECT_EQ(obs::print_baseline_report(cmp, /*fail_over_pct=*/5.0, stdout), 0u);
  // Sanity: the same gate at 0.5% flags the time metric — compared rows
  // still gate exactly as before.
  EXPECT_EQ(obs::print_baseline_report(cmp, /*fail_over_pct=*/0.5, stdout), 1u);
}

TEST(ObsCheckpoint, VersionsOutsideTheWindowAreRejected) {
  Blob b = small_checkpoint();
  auto put_u32 = [](Blob& blob, std::size_t off, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) blob[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  auto put_u64 = [](Blob& blob, std::size_t off, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) blob[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  for (std::uint32_t bad : {kMinCheckpointVersion - 1, kCheckpointVersion + 1}) {
    Blob m = b;
    put_u32(m, sizeof(kCheckpointMagic), bad);  // version field follows the magic
    put_u64(m, m.size() - 8, hash_bytes(m.data(), m.size() - 8));  // keep checksum valid
    EXPECT_THROW(decode_checkpoint(m), CheckpointError) << "version " << bad;
  }
}

}  // namespace
}  // namespace lmc
