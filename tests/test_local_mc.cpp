// Local model checker mechanics, exercised through a purpose-built tiny
// protocol so every knob (Fig. 13 variants, budgets, histories, caps) can be
// controlled precisely.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "mc/dot_export.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

constexpr std::uint32_t kEvInc = 1;
constexpr std::uint32_t kMsgPing = 7;

// Each node may fire `max_inc` internal increments, each of which pings the
// next node in the ring; receiving a ping bumps `pings`.
class CounterNode final : public StateMachine {
 public:
  CounterNode(NodeId self, std::uint32_t n, std::uint32_t max_inc)
      : self_(self), n_(n), max_inc_(max_inc) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgPing, "counter: unknown message");
    if (m.type == kMsgPing) ++pings_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (incs_ < max_inc_) {
      Writer w;
      w.u32(incs_);  // distinct arg per step: each inc is a distinct event
      return {InternalEvent{kEvInc, std::move(w).take()}};
    }
    return {};
  }
  void handle_internal(const InternalEvent& ev, Context& ctx) override {
    ctx.local_assert(ev.kind == kEvInc, "counter: unknown event");
    ++incs_;
    Writer w;
    w.u32(self_);
    w.u32(incs_);
    ctx.send((self_ + 1) % n_, kMsgPing, std::move(w).take());
  }
  void serialize(Writer& w) const override {
    w.u32(incs_);
    w.u32(pings_);
  }
  void deserialize(Reader& r) override {
    incs_ = r.u32();
    pings_ = r.u32();
  }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::uint32_t max_inc_;
  std::uint32_t incs_ = 0;
  std::uint32_t pings_ = 0;
};

SystemConfig counter_cfg(std::uint32_t n, std::uint32_t max_inc) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [max_inc](NodeId self, std::uint32_t num) {
    return std::make_unique<CounterNode>(self, num, max_inc);
  };
  return cfg;
}

std::pair<std::uint32_t, std::uint32_t> decode_counter(const Blob& b) {
  Reader r(b);
  std::uint32_t incs = r.u32();
  std::uint32_t pings = r.u32();
  return {incs, pings};
}

/// Violated when total pings across nodes reach `limit`. No projection:
/// exercises the holds()-per-combination GEN path.
class PingLimitInvariant final : public Invariant {
 public:
  explicit PingLimitInvariant(std::uint32_t limit) : limit_(limit) {}
  std::string name() const override { return "counter.ping_limit"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    std::uint32_t total = 0;
    for (const Blob* b : sys) total += decode_counter(*b).second;
    return total < limit_;
  }

 private:
  std::uint32_t limit_;
};

TEST(LocalMc, ExploreOnlyModeCreatesNoSystemStates) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(1);
  LocalMcOptions opt;
  opt.enable_system_states = false;  // Fig. 13 "LMC-explore"
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().system_states, 0u);
  EXPECT_EQ(mc.stats().prelim_violations, 0u);
  EXPECT_GT(mc.stats().node_states, 2u);
}

TEST(LocalMc, SoundnessDisabledCountsButNeverReports) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(1);  // any ping violates
  LocalMcOptions opt;
  opt.enable_soundness = false;  // Fig. 13 "LMC-*-system-state"
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GT(mc.stats().prelim_violations, 0u);
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
  EXPECT_EQ(mc.stats().soundness_calls, 0u);
  EXPECT_TRUE(mc.violations().empty());
}

TEST(LocalMc, ConfirmedViolationCarriesReplayableWitness) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(2);  // two pings somewhere violate
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->witness.empty());
  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(LocalMc, ViolationInLiveStateConfirmedImmediately) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(1);
  // Hand-build a live state that already violates: node 0 has one ping.
  Writer w;
  w.u32(0);
  w.u32(1);
  std::vector<Blob> live{std::move(w).take(), machine_to_blob(*cfg.make(1))};

  LocalModelChecker mc(cfg, &inv, {});
  mc.run(live, {});
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->witness.empty()) << "the live state itself violates: empty schedule";
}

TEST(LocalMc, TransitionBudgetStopsSearch) {
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(1000);
  LocalMcOptions opt;
  opt.max_transitions = 5;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_FALSE(mc.stats().completed);
  EXPECT_LE(mc.stats().transitions, 64u);  // round-granular overshoot allowed
}

TEST(LocalMc, StopOnConfirmedFalseCollectsMultiple) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1);
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GT(mc.stats().confirmed_violations, 1u);
  EXPECT_EQ(mc.violations().size(), mc.stats().confirmed_violations);
}

TEST(LocalMc, SystemStateCapTruncates) {
  SystemConfig cfg = counter_cfg(3, 2);
  PingLimitInvariant inv(1000);
  LocalMcOptions opt;
  opt.max_system_states_per_step = 2;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GT(mc.stats().combo_truncated, 0u);
}

TEST(LocalMc, DupMessagesSuppressed) {
  // Two different chains of node 0 send the identical ping message: the
  // second append to I+ must be suppressed.
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_GT(mc.stats().dup_msgs_suppressed, 0u);
}

TEST(LocalMc, HistoryPreventsRedelivery) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_GT(mc.stats().history_skips, 0u)
      << "descendants of a delivery must not re-execute the same message";
}

TEST(LocalMc, EventsTableCoversWitnesses) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(2);
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  for (const LocalViolation& v : mc.violations())
    for (const ScheduleStep& s : v.witness)
      EXPECT_TRUE(mc.events().count(s.ev_hash)) << "witness event missing from table";
}

TEST(LocalMc, NoInvariantMeansPureExploration) {
  SystemConfig cfg = counter_cfg(2, 1);
  LocalModelChecker mc(cfg, nullptr, {});
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().system_states, 0u);
  EXPECT_GT(mc.stats().node_states, 2u);
}

TEST(LocalMc, InitialInFlightMessagesAreExplored) {
  SystemConfig cfg = counter_cfg(2, 0);  // no internal events at all
  PingLimitInvariant inv(1);
  Message ping;
  ping.dst = 1;
  ping.src = 0;
  ping.type = kMsgPing;
  {
    Writer w;
    w.u32(0);
    w.u32(1);
    ping.payload = std::move(w).take();
  }
  LocalModelChecker mc(cfg, &inv, {});
  mc.run(initial_states(cfg), {ping});
  // The snapshot's in-flight ping is deliverable and its delivery violates;
  // the witness is the single delivery, valid thanks to the snapshot seed.
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_EQ(v->witness.size(), 1u);
  EXPECT_TRUE(v->witness[0].is_message);
  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(LocalMc, DotExportContainsAllStates) {
  SystemConfig cfg = counter_cfg(2, 1);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  std::string dot = to_dot(mc.store(), mc.iplus());
  EXPECT_NE(dot.find("digraph lmc"), std::string::npos);
  for (NodeId n = 0; n < 2; ++n)
    for (std::uint32_t i = 0; i < mc.store().size(n); ++i) {
      std::string id = "s" + std::to_string(n) + "_" + std::to_string(i);
      EXPECT_NE(dot.find(id), std::string::npos) << id;
    }
}

TEST(LocalMc, MemoryAccountingIsPopulated) {
  SystemConfig cfg = counter_cfg(3, 2);
  PingLimitInvariant inv(1000);
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_GT(mc.stats().stored_bytes, 0u);
  EXPECT_GT(mc.stats().messages_in_iplus, 0u);
}

TEST(LocalMc, TimeBudgetRespected) {
  SystemConfig cfg = counter_cfg(4, 6);  // big space
  PingLimitInvariant inv(1u << 30);
  LocalMcOptions opt;
  opt.time_budget_s = 0.2;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_LT(mc.stats().elapsed_s, 5.0);
}

}  // namespace
}  // namespace lmc
