// Checker/runtime option behaviours: the §4.2 assert policies and the
// TCP-like FIFO transport mode — each probed with a purpose-built protocol.
#include <gtest/gtest.h>

#include <memory>

#include "mc/local_mc.hpp"
#include "online/live_runner.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

constexpr std::uint32_t kMsgTick = 1;
constexpr std::uint32_t kMsgBurst = 2;
constexpr std::uint32_t kEvGo = 1;

// AssertProbe: node 0 sends one tick to node 1; node 1's handler asserts
// (always) but STILL mutates its counter — distinguishing DiscardState
// (successor dropped) from IgnoreViolation (successor explored).
class AssertProbe final : public StateMachine {
 public:
  AssertProbe(NodeId self, std::uint32_t) : self_(self) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(false, "probe: always fires");
    if (m.type == kMsgTick) ++ticks_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (self_ == 0 && !sent_) return {InternalEvent{kEvGo, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    sent_ = true;
    ctx.send(1, kMsgTick, {});
  }
  void serialize(Writer& w) const override {
    w.b(sent_);
    w.u32(ticks_);
  }
  void deserialize(Reader& r) override {
    sent_ = r.b();
    ticks_ = r.u32();
  }

 private:
  NodeId self_;
  bool sent_ = false;
  std::uint32_t ticks_ = 0;
};

SystemConfig assert_probe_cfg() {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId self, std::uint32_t n) {
    return std::make_unique<AssertProbe>(self, n);
  };
  return cfg;
}

TEST(AssertPolicy, DiscardPrunesIgnoreKeeps) {
  SystemConfig cfg = assert_probe_cfg();

  LocalMcOptions discard;
  LocalModelChecker a(cfg, nullptr, discard);
  a.run_from_initial();
  ASSERT_TRUE(a.stats().completed);
  EXPECT_EQ(a.stats().local_assert_discards, 1u);
  // node 1 never reaches the ticked state.
  EXPECT_EQ(a.store().size(1), 1u);

  LocalMcOptions ignore;
  ignore.assert_policy = LocalMcOptions::AssertPolicy::IgnoreViolation;
  LocalModelChecker b(cfg, nullptr, ignore);
  b.run_from_initial();
  ASSERT_TRUE(b.stats().completed);
  EXPECT_EQ(b.stats().local_assert_discards, 1u);  // still counted
  EXPECT_EQ(b.store().size(1), 2u);  // the ticked successor was kept
}

// BurstProbe: node 0 sends a numbered burst to node 1 in one handler; node
// 1 records arrival order. FIFO mode must deliver in send order.
class BurstProbe final : public StateMachine {
 public:
  static constexpr std::uint32_t kBurst = 6;

  BurstProbe(NodeId self, std::uint32_t) : self_(self) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgBurst, "probe: bad type");
    Reader r(m.payload);
    order_.push_back(r.u32());
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (self_ == 0 && !sent_) return {InternalEvent{kEvGo, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    sent_ = true;
    for (std::uint32_t k = 0; k < kBurst; ++k) {
      Writer w;
      w.u32(k);
      ctx.send(1, kMsgBurst, std::move(w).take());
    }
  }
  void serialize(Writer& w) const override {
    w.b(sent_);
    w.u32(static_cast<std::uint32_t>(order_.size()));
    for (std::uint32_t v : order_) w.u32(v);
  }
  void deserialize(Reader& r) override {
    sent_ = r.b();
    std::uint32_t n = r.u32();
    order_.clear();
    for (std::uint32_t i = 0; i < n; ++i) order_.push_back(r.u32());
  }

  static std::vector<std::uint32_t> order_of(const Blob& b) {
    Reader r(b);
    r.b();
    std::uint32_t n = r.u32();
    std::vector<std::uint32_t> v;
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u32());
    return v;
  }

 private:
  NodeId self_;
  bool sent_ = false;
  std::vector<std::uint32_t> order_;
};

SystemConfig burst_cfg() {
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId self, std::uint32_t n) {
    return std::make_unique<BurstProbe>(self, n);
  };
  return cfg;
}

LiveOptions burst_opts(std::uint64_t seed, bool fifo) {
  LiveOptions o;
  o.seed = seed;
  o.transport.drop_prob = 0.0;  // reliable, like TCP
  o.fifo_per_pair = fifo;
  o.app_min = 0.0;
  o.app_max = 1.0;
  return o;
}

TEST(FifoTransport, BurstArrivesInSendOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SystemConfig cfg = burst_cfg();
    LiveRunner r(cfg, burst_opts(seed, true), first_enabled_driver());
    r.run_until(100);
    auto order = BurstProbe::order_of(r.nodes()[1]);
    ASSERT_EQ(order.size(), BurstProbe::kBurst) << "seed " << seed;
    for (std::uint32_t k = 0; k < BurstProbe::kBurst; ++k)
      ASSERT_EQ(order[k], k) << "seed " << seed << ": FIFO order broken";
  }
}

TEST(FifoTransport, UnorderedModeDoesReorder) {
  // With independent random latencies a 6-message burst is practically
  // never delivered in exact send order across 20 seeds.
  bool reordered = false;
  for (std::uint64_t seed = 1; seed <= 20 && !reordered; ++seed) {
    SystemConfig cfg = burst_cfg();
    LiveRunner r(cfg, burst_opts(seed, false), first_enabled_driver());
    r.run_until(100);
    auto order = BurstProbe::order_of(r.nodes()[1]);
    ASSERT_EQ(order.size(), BurstProbe::kBurst);
    for (std::uint32_t k = 0; k < BurstProbe::kBurst; ++k)
      if (order[k] != k) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(FifoTransport, DeterministicUnderSeed) {
  paxos::DriverConfig d;
  d.proposers = {0};
  d.max_proposals = 1;
  d.allow_fresh_index = true;
  SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{}, d);
  LiveOptions o;
  o.seed = 9;
  o.fifo_per_pair = true;
  LiveRunner a(cfg, o, first_enabled_driver());
  LiveRunner b(cfg, o, first_enabled_driver());
  a.run_until(200);
  b.run_until(200);
  EXPECT_EQ(a.nodes(), b.nodes());
}

TEST(FifoTransport, PaxosStaysConsistentOverTcp) {
  paxos::DriverConfig d;
  d.proposers = {0, 1, 2};
  d.max_proposals = 2;
  d.allow_fresh_index = true;
  SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{}, d);
  auto inv = paxos::make_agreement_invariant();
  LiveOptions o;
  o.seed = 5;
  o.transport.drop_prob = 0.0;
  o.fifo_per_pair = true;
  o.app_max = 10.0;
  LiveRunner r(cfg, o, first_enabled_driver());
  r.run_until(400);
  SystemStateView view;
  for (const Blob& b : r.nodes()) view.push_back(&b);
  EXPECT_TRUE(inv->holds(cfg, view));
  EXPECT_GT(r.delivered(), 10u);
}

}  // namespace
}  // namespace lmc
