// Replay validator: success and every failure mode.
#include <gtest/gtest.h>

#include <memory>

#include "mc/replay.hpp"
#include "protocols/tree.hpp"

namespace lmc {
namespace {

struct ReplayFixture : ::testing::Test {
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  std::vector<Blob> start = initial_states(cfg);

  EventTable events;
  Message fwd01, fwd02, fwd24;
  InternalEvent send{tree::kEvSend, {}};
  Hash64 send_hash = 0;

  void SetUp() override {
    auto mk = [](NodeId dst, NodeId src) {
      Message m;
      m.dst = dst;
      m.src = src;
      m.type = tree::kMsgForward;
      return m;
    };
    fwd01 = mk(1, 0);
    fwd02 = mk(2, 0);
    fwd24 = mk(4, 2);
    for (const Message& m : {fwd01, fwd02, fwd24}) {
      EventRecord er;
      er.is_message = true;
      er.msg = m;
      events.emplace(m.hash(), er);
    }
    send_hash = send.hash(0);
    EventRecord er;
    er.is_message = false;
    er.node = 0;
    er.ev = send;
    events.emplace(send_hash, er);
  }
};

TEST_F(ReplayFixture, EmptyScheduleSucceeds) {
  ReplayResult r = replay_schedule(cfg, start, {}, {}, events, {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.final_nodes, start);
}

TEST_F(ReplayFixture, FullCausalChainReplays) {
  Schedule sched{
      {0, false, send_hash},        // origin sends
      {2, true, fwd02.hash()},      // relay 2 forwards
      {4, true, fwd24.hash()},      // target receives
  };
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(tree::status_of(r.final_nodes[0]), tree::Status::Sent);
  EXPECT_EQ(tree::status_of(r.final_nodes[4]), tree::Status::Received);
  EXPECT_EQ(r.log.size(), 3u);
}

TEST_F(ReplayFixture, DeliveryBeforeGenerationFails) {
  Schedule sched{{4, true, fwd24.hash()}};  // nothing generated it
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not in flight"), std::string::npos) << r.error;
}

TEST_F(ReplayFixture, InitialInFlightEnablesDelivery) {
  Schedule sched{{4, true, fwd24.hash()}};
  ReplayResult r = replay_schedule(cfg, start, {fwd24}, sched, events, {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(tree::status_of(r.final_nodes[4]), tree::Status::Received);
}

TEST_F(ReplayFixture, UnknownEventHashFails) {
  Schedule sched{{0, false, 0xdeadbeefULL}};
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown event"), std::string::npos);
}

TEST_F(ReplayFixture, FinalHashMismatchDetected) {
  Schedule sched{{0, false, send_hash}};
  std::vector<Hash64> wrong(5, 0x1234);
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, wrong);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("differs"), std::string::npos);
}

TEST_F(ReplayFixture, FinalHashMatchAccepted) {
  Schedule sched{{0, false, send_hash}};
  ExecResult ex = exec_internal(cfg, 0, start[0], send);
  std::vector<Hash64> expected;
  expected.push_back(hash_blob(ex.state));
  for (NodeId n = 1; n < 5; ++n) expected.push_back(hash_blob(start[n]));
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, expected);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(ReplayFixture, EventKindMismatchFails) {
  // Schedule claims the send event is a message.
  Schedule sched{{0, true, send_hash}};
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("kind mismatch"), std::string::npos);
}

TEST_F(ReplayFixture, SameMessageNotDeliverableTwice) {
  Schedule sched{
      {0, false, send_hash},
      {2, true, fwd02.hash()},
      {2, true, fwd02.hash()},  // consumed already
  };
  ReplayResult r = replay_schedule(cfg, start, {}, sched, events, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not in flight"), std::string::npos);
}

}  // namespace
}  // namespace lmc
