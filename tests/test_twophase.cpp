// Two-phase commit: protocol behaviour, the atomicity invariant, and the
// commit-on-majority bug under both checkers.
#include <gtest/gtest.h>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/twophase.hpp"

namespace lmc {
namespace {

using twophase::Decision;
using twophase::Options;

void run_sync(const SystemConfig& cfg, std::vector<Blob>& nodes) {
  std::vector<Message> q;
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {twophase::kEvInit, {}});
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
  }
  ExecResult r = exec_internal(cfg, 0, nodes[0], {twophase::kEvBegin, {}});
  ASSERT_FALSE(r.assert_failed);
  nodes[0] = std::move(r.state);
  for (Message& m : r.sent) q.push_back(std::move(m));
  while (!q.empty()) {
    Message m = q.front();
    q.erase(q.begin());
    ExecResult rr = exec_message(cfg, m.dst, nodes[m.dst], m);
    ASSERT_FALSE(rr.assert_failed) << rr.assert_msg;
    nodes[m.dst] = std::move(rr.state);
    for (Message& out : rr.sent) q.push_back(std::move(out));
  }
}

TEST(TwoPhase, AllYesCommitsEverywhere) {
  SystemConfig cfg = twophase::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes);
  for (const Blob& b : nodes) EXPECT_EQ(twophase::decision_of(b), Decision::Committed);
}

TEST(TwoPhase, OneNoAbortsEverywhere) {
  SystemConfig cfg = twophase::make_config(3, Options{{2}, false});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes);
  for (const Blob& b : nodes) EXPECT_EQ(twophase::decision_of(b), Decision::Aborted);
}

TEST(TwoPhase, InvariantSemantics) {
  SystemConfig cfg = twophase::make_config(2, Options{});
  twophase::AtomicityInvariant inv;
  auto committed = [&] {
    auto nodes = initial_states(cfg);
    run_sync(cfg, nodes);
    return nodes[0];
  }();
  SystemConfig abort_cfg = twophase::make_config(2, Options{{1}, false});
  auto aborted = [&] {
    auto nodes = initial_states(abort_cfg);
    std::vector<Message> q;
    for (NodeId n = 0; n < 2; ++n) {
      ExecResult r = exec_internal(abort_cfg, n, nodes[n], {twophase::kEvInit, {}});
      nodes[n] = std::move(r.state);
    }
    ExecResult r = exec_internal(abort_cfg, 0, nodes[0], {twophase::kEvBegin, {}});
    nodes[0] = std::move(r.state);
    for (Message& m : r.sent) q.push_back(std::move(m));
    while (!q.empty()) {
      Message m = q.front();
      q.erase(q.begin());
      ExecResult rr = exec_message(abort_cfg, m.dst, nodes[m.dst], m);
      nodes[m.dst] = std::move(rr.state);
      for (Message& out : rr.sent) q.push_back(std::move(out));
    }
    return nodes[1];
  }();

  SystemStateView mixed{&committed, &aborted};
  EXPECT_FALSE(inv.holds(cfg, mixed));
  SystemStateView same{&committed, &committed};
  EXPECT_TRUE(inv.holds(cfg, same));

  EXPECT_FALSE(inv.project(cfg, 0, committed).empty());
  EXPECT_TRUE(inv.projections_conflict(inv.project(cfg, 0, committed),
                                       inv.project(cfg, 1, aborted)));
}

TEST(TwoPhase, CorrectProtocolCleanUnderLmc) {
  for (Options o : {Options{}, Options{{2}, false}, Options{{1, 2}, false}}) {
    SystemConfig cfg = twophase::make_config(3, o);
    twophase::AtomicityInvariant inv;
    LocalMcOptions opt;
    opt.use_projection = true;
    opt.time_budget_s = 60;
    LocalModelChecker mc(cfg, &inv, opt);
    mc.run_from_initial();
    EXPECT_TRUE(mc.stats().completed);
    EXPECT_EQ(mc.stats().confirmed_violations, 0u);
  }
}

TEST(TwoPhase, MajorityBugFoundAndReplayable) {
  // 3 nodes, node 2 votes No: the buggy coordinator commits at 2 yes votes
  // while node 2 aborted unilaterally.
  SystemConfig cfg = twophase::make_config(3, Options{{2}, true});
  twophase::AtomicityInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);

  bool committed = false, aborted = false;
  for (const Blob& b : v->system_state) {
    committed = committed || twophase::decision_of(b) == Decision::Committed;
    aborted = aborted || twophase::decision_of(b) == Decision::Aborted;
  }
  EXPECT_TRUE(committed && aborted);

  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(TwoPhase, BugNeedsANoVoter) {
  // All-yes with the buggy coordinator: commit at majority is premature but
  // harmless — nobody aborts.
  SystemConfig cfg = twophase::make_config(3, Options{{}, true});
  twophase::AtomicityInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
}

TEST(TwoPhase, GlobalCheckerAgreesOnBug) {
  SystemConfig cfg = twophase::make_config(3, Options{{2}, true});
  twophase::AtomicityInvariant inv;
  GlobalMcOptions opt;
  opt.stop_on_violation = true;
  opt.time_budget_s = 60;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GE(mc.stats().violations, 1u);
}

TEST(TwoPhase, SerializationRoundTrip) {
  SystemConfig cfg = twophase::make_config(3, Options{{2}, false});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes);
  for (NodeId n = 0; n < 3; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(machine_to_blob(*m), nodes[n]);
  }
}

// Parameterized: vary system size and No-voter placement; correct protocol
// always clean, buggy protocol always caught (when a No voter exists).
struct TwoPhaseCase {
  std::uint32_t n;
  std::uint32_t no_voter;
};

class TwoPhaseSweep : public ::testing::TestWithParam<TwoPhaseCase> {};

TEST_P(TwoPhaseSweep, BuggyCaughtCorrectClean) {
  const auto [n, no_voter] = GetParam();
  twophase::AtomicityInvariant inv;

  SystemConfig good = twophase::make_config(n, Options{{no_voter}, false});
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 120;
  LocalModelChecker a(good, &inv, opt);
  a.run_from_initial();
  EXPECT_EQ(a.stats().confirmed_violations, 0u);

  SystemConfig bad = twophase::make_config(n, Options{{no_voter}, true});
  LocalModelChecker b(bad, &inv, opt);
  b.run_from_initial();
  EXPECT_GE(b.stats().confirmed_violations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoPhaseSweep,
                         ::testing::Values(TwoPhaseCase{3, 1}, TwoPhaseCase{3, 2},
                                           TwoPhaseCase{4, 3}, TwoPhaseCase{5, 2}),
                         [](const ::testing::TestParamInfo<TwoPhaseCase>& pinfo) {
                           return "n" + std::to_string(pinfo.param.n) + "_novoter" +
                                  std::to_string(pinfo.param.no_voter);
                         });

}  // namespace
}  // namespace lmc
