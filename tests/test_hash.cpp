// Hashing: stability, sensitivity and combiner properties. State identity
// is hash equality, so these invariants underpin every checker structure.
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "runtime/hash.hpp"
#include "runtime/message.hpp"

namespace lmc {
namespace {

TEST(Hash, EmptyAndStability) {
  Blob empty;
  EXPECT_EQ(hash_blob(empty), hash_blob(empty));
  Blob a{1, 2, 3};
  EXPECT_EQ(hash_blob(a), hash_blob(a));
}

TEST(Hash, SingleByteSensitivity) {
  Blob a{1, 2, 3, 4};
  Blob b{1, 2, 3, 5};
  EXPECT_NE(hash_blob(a), hash_blob(b));
}

TEST(Hash, LengthSensitivity) {
  Blob a{0, 0, 0};
  Blob b{0, 0};
  EXPECT_NE(hash_blob(a), hash_blob(b));
}

TEST(Hash, CombineOrderDependent) {
  EXPECT_NE(hash_combine(hash_combine(1, 2), 3), hash_combine(hash_combine(1, 3), 2));
}

TEST(Hash, CombineUnorderedCommutative) {
  Hash64 a = mix64(111), b = mix64(222), c = mix64(333);
  Hash64 h1 = hash_combine_unordered(hash_combine_unordered(0, a), b);
  Hash64 h2 = hash_combine_unordered(hash_combine_unordered(0, b), a);
  EXPECT_EQ(h1, h2);
  Hash64 h3 = hash_combine_unordered(hash_combine_unordered(hash_combine_unordered(0, a), b), c);
  Hash64 h4 = hash_combine_unordered(hash_combine_unordered(hash_combine_unordered(0, c), a), b);
  EXPECT_EQ(h3, h4);
}

TEST(Hash, NoCollisionsOnDistinctCorpus) {
  std::mt19937_64 rng(42);
  std::unordered_set<Hash64> seen;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    Blob b(8 + rng() % 32);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
    // Stamp a counter so every input is certainly distinct.
    b[0] = static_cast<std::uint8_t>(i);
    b[1] = static_cast<std::uint8_t>(i >> 8);
    b[2] = static_cast<std::uint8_t>(i >> 16);
    b[3] = 0x5a;
    seen.insert(hash_blob(b));
  }
  // 20k distinct inputs into a 64-bit hash: any collision means breakage.
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(Hash, MessageHashCoversAllFields) {
  Message m;
  m.dst = 1;
  m.src = 2;
  m.type = 3;
  m.payload = {9};
  Message m2 = m;
  EXPECT_EQ(m.hash(), m2.hash());
  m2.dst = 5;
  EXPECT_NE(m.hash(), m2.hash());
  m2 = m;
  m2.src = 5;
  EXPECT_NE(m.hash(), m2.hash());
  m2 = m;
  m2.type = 5;
  EXPECT_NE(m.hash(), m2.hash());
  m2 = m;
  m2.payload = {10};
  EXPECT_NE(m.hash(), m2.hash());
}

TEST(Hash, InternalEventHashIncludesNode) {
  InternalEvent e{7, {1, 2}};
  EXPECT_NE(e.hash(0), e.hash(1));
  EXPECT_EQ(e.hash(3), e.hash(3));
}

TEST(Hash, InternalEventDistinctFromMessage) {
  // An internal event and a message should not trivially collide even with
  // similar content (the event hash is domain-separated).
  Message m;
  m.dst = 0;
  m.src = 0;
  m.type = 7;
  m.payload = {1, 2};
  InternalEvent e{7, {1, 2}};
  EXPECT_NE(m.hash(), e.hash(0));
}

}  // namespace
}  // namespace lmc
