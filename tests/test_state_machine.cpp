// The runtime execution funnel: Context, blob round-trips, exec helpers.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/tree.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {
namespace {

TEST(Context, CollectsSentMessages) {
  Context ctx(3);
  ctx.send(1, 7, {9, 9});
  ctx.send(2, 8, {});
  ASSERT_EQ(ctx.sent().size(), 2u);
  EXPECT_EQ(ctx.sent()[0].src, 3u);
  EXPECT_EQ(ctx.sent()[0].dst, 1u);
  EXPECT_EQ(ctx.sent()[0].type, 7u);
  EXPECT_EQ(ctx.sent()[0].payload, (Blob{9, 9}));
  EXPECT_EQ(ctx.self(), 3u);
}

TEST(Context, LocalAssertLatchesFirstFailure) {
  Context ctx(0);
  ctx.local_assert(true, "fine");
  EXPECT_FALSE(ctx.assert_failed());
  ctx.local_assert(false, "first");
  ctx.local_assert(false, "second");
  EXPECT_TRUE(ctx.assert_failed());
  EXPECT_EQ(ctx.assert_message(), "first");
}

struct FunnelFixture : ::testing::Test {
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
};

TEST_F(FunnelFixture, InitialStatesOnePerNode) {
  auto nodes = initial_states(cfg);
  ASSERT_EQ(nodes.size(), cfg.num_nodes);
  for (NodeId n = 1; n < cfg.num_nodes; ++n) EXPECT_EQ(nodes[n], nodes[0]);
}

TEST_F(FunnelFixture, BlobRoundTripIsIdentity) {
  auto nodes = initial_states(cfg);
  auto m = machine_from_blob(cfg, 0, nodes[0]);
  EXPECT_EQ(machine_to_blob(*m), nodes[0]);
}

TEST_F(FunnelFixture, TruncatedBlobThrows) {
  Blob empty;
  EXPECT_THROW(machine_from_blob(cfg, 0, empty), SerializeError);
}

TEST_F(FunnelFixture, TrailingBytesThrow) {
  auto nodes = initial_states(cfg);
  Blob padded = nodes[0];
  padded.push_back(0xff);
  EXPECT_THROW(machine_from_blob(cfg, 0, padded), SerializeError);
}

TEST_F(FunnelFixture, ExecDoesNotMutateInput) {
  auto nodes = initial_states(cfg);
  Blob before = nodes[0];
  ExecResult r = exec_internal(cfg, 0, nodes[0], {tree::kEvSend, {}});
  EXPECT_EQ(nodes[0], before);
  EXPECT_NE(r.state, before);
}

TEST_F(FunnelFixture, ExecIsDeterministic) {
  auto nodes = initial_states(cfg);
  ExecResult a = exec_internal(cfg, 0, nodes[0], {tree::kEvSend, {}});
  ExecResult b = exec_internal(cfg, 0, nodes[0], {tree::kEvSend, {}});
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.sent, b.sent);
}

TEST_F(FunnelFixture, AssertFailureSurfacesInExecResult) {
  auto nodes = initial_states(cfg);
  Message bogus;
  bogus.dst = 0;
  bogus.src = 1;
  bogus.type = 999;
  ExecResult r = exec_message(cfg, 0, nodes[0], bogus);
  EXPECT_TRUE(r.assert_failed);
  EXPECT_FALSE(r.assert_msg.empty());
}

}  // namespace
}  // namespace lmc
