// .lmc DSL front end: parser/validator error paths pinned to exact
// file:line:col positions and [DSLnn] codes against the fixtures in
// tests/fixtures/dsl/, plus happy-path compilation, node-count override,
// canonical emission, and the loc-less validate() re-check.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "dsl/spec.hpp"

namespace lmc::dsl {
namespace {

// Set by tests/CMakeLists.txt.
const std::string kFixtureDir = LMC_DSL_FIXTURE_DIR;

// --- error-path fixtures ----------------------------------------------------

struct ExpectedDiag {
  const char* file;
  std::uint32_t line;
  std::uint32_t col;
  const char* code;        // "" for parse errors
  const char* msg_needle;  // substring of the message
};

// One fixture per diagnostic class. Positions are load-bearing: a parser
// refactor that shifts where an error is reported must update these on
// purpose, not by accident.
const ExpectedDiag kFixtures[] = {
    {"bad_parse_missing_arrow.lmc", 6, 22, "", "expected '->'"},
    {"bad_dsl01_decreasing_msg.lmc", 10, 25, "DSL01", "strictly higher state"},
    {"bad_dsl02_decreasing_internal.lmc", 7, 28, "DSL02", "must not decrease"},
    {"bad_dsl03_too_many_internals.lmc", 7, 3, "DSL03", "33 internal rules"},
    {"bad_dsl04_duplicate_handler.lmc", 8, 3, "DSL04", "duplicate message handler"},
    {"bad_dsl05_duplicate_label.lmc", 7, 3, "DSL05", "duplicate internal handler label"},
    {"bad_dsl06_sender_in_timer.lmc", 7, 18, "DSL06", "has no sender"},
    {"bad_dsl07_duplicate_tag.lmc", 10, 5, "DSL07", "duplicates message content"},
    {"bad_dsl08_initial_violation.lmc", 7, 3, "DSL08", "all-initial system state"},
    {"bad_dsl09_next_off_range.lmc", 7, 18, "DSL09", "runs off the end"},
};

TEST(DslDiagnostics, FixturesPinPositionAndCode) {
  for (const ExpectedDiag& e : kFixtures) {
    SCOPED_TRACE(e.file);
    LoadResult r = load_file(kFixtureDir + "/" + e.file);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.diags.items().empty());
    // Every fixture's FIRST diagnostic is the one under test (later ones,
    // e.g. per-node elaboration repeats, must be the same class).
    const Diag& d = r.diags.items().front();
    EXPECT_EQ(d.loc.line, e.line);
    EXPECT_EQ(d.loc.col, e.col);
    EXPECT_EQ(d.code, e.code);
    EXPECT_NE(d.msg.find(e.msg_needle), std::string::npos)
        << "message was: " << d.msg;
    for (const Diag& extra : r.diags.items()) EXPECT_EQ(extra.code, e.code);
  }
}

TEST(DslDiagnostics, ToStringIsGccStyle) {
  LoadResult r = load_file(kFixtureDir + "/bad_dsl05_duplicate_label.lmc");
  ASSERT_FALSE(r.diags.items().empty());
  std::string s = r.diags.items().front().to_string();
  // file:line:col: error: msg [CODE]
  EXPECT_NE(s.find("bad_dsl05_duplicate_label.lmc:7:3: error: "), std::string::npos) << s;
  EXPECT_EQ(s.substr(s.size() - 7), "[DSL05]") << s;
}

TEST(DslDiagnostics, MissingFileReportedAtLineZero) {
  LoadResult r = load_file(kFixtureDir + "/does_not_exist.lmc");
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.diags.items().size(), 1u);
  EXPECT_EQ(r.diags.items()[0].loc.line, 0u);
}

TEST(DslDiagnostics, MultipleErrorsAllReported) {
  // Parser recovers enough for the validator to flag independent problems;
  // at minimum both DSL05 duplicates-with-different-guards land.
  const char* text =
      "protocol multi {\n"
      "  nodes 2;\n"
      "  states a, b, c, d;\n"
      "  messages Ping;\n"
      "  timer t at 0 @ a -> b;\n"
      "  timer t at 0 @ b -> c;\n"
      "  timer t at 0 @ c -> d;\n"
      "  invariant i: never b with c;\n"
      "}\n";
  LoadResult r = load_text(text, "multi.lmc");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.diags.items().size(), 2u);
}

// --- happy path -------------------------------------------------------------

const char* kPing =
    "protocol ping {\n"
    "  nodes 3;\n"
    "  states idle, sent, done;\n"
    "  messages Ping, Pong;\n"
    "  timer kick at 0 @ idle -> sent {\n"
    "    send Ping to others;\n"
    "  }\n"
    "  on Ping at all @ idle -> sent {\n"
    "    send Pong to sender;\n"
    "  }\n"
    "  on Pong at 0 @ sent -> done;\n"
    "  invariant solo: never done with done;\n"
    "  scenario lossy {\n"
    "    seed 7;\n"
    "    drop 40;\n"
    "    sim_time 0.05;\n"
    "  }\n"
    "}\n";

TEST(DslCompile, ElaboratesPerNodeRules) {
  LoadResult r = load_text(kPing, "ping.lmc");
  ASSERT_TRUE(r.ok()) << r.diags.to_string();
  const DslSpec& s = *r.spec;
  EXPECT_EQ(s.name, "ping");
  EXPECT_EQ(s.num_nodes, 3u);
  ASSERT_EQ(s.states.size(), 3u);
  EXPECT_EQ(s.states[0], "idle");
  EXPECT_EQ(s.messages, (std::vector<std::string>{"Ping", "Pong"}));
  // timer at node 0 only; `on Ping at all` = 3 rules; `on Pong at 0` = 1.
  EXPECT_EQ(s.internals.size(), 1u);
  EXPECT_EQ(s.internals[0].node, 0u);
  EXPECT_EQ(s.internals[0].label, "kick");
  // `send Ping to others` from node 0 elaborates to nodes 1 and 2.
  EXPECT_EQ(s.internals[0].action.sends.size(), 2u);
  EXPECT_EQ(s.msg_rules.size(), 4u);
  auto pong_reply = std::count_if(s.msg_rules.begin(), s.msg_rules.end(),
                                  [](const SpecMsgRule& m) {
                                    return !m.action.sends.empty() &&
                                           m.action.sends[0].to_sender;
                                  });
  EXPECT_EQ(pong_reply, 3);
  ASSERT_EQ(s.invariants.size(), 1u);
  EXPECT_EQ(s.invariants[0].name, "solo");
  ASSERT_EQ(s.scenarios.size(), 1u);
  EXPECT_EQ(s.scenarios[0].seed, 7u);
  EXPECT_DOUBLE_EQ(s.scenarios[0].drop_pct, 40.0);
  EXPECT_DOUBLE_EQ(s.scenarios[0].sim_time, 0.05);
  // The elaborated spec passes the loc-less re-check too.
  EXPECT_EQ(validate(s), "");
}

TEST(DslCompile, OverrideNodesReelaborates) {
  CompileOptions opts;
  opts.override_nodes = 5;
  LoadResult r = load_text(kPing, "ping.lmc", opts);
  ASSERT_TRUE(r.ok()) << r.diags.to_string();
  EXPECT_EQ(r.spec->num_nodes, 5u);
  EXPECT_EQ(r.spec->msg_rules.size(), 6u);             // 5x Ping + 1x Pong
  EXPECT_EQ(r.spec->internals[0].action.sends.size(), 4u);  // others = 4 nodes
}

TEST(DslCompile, CanonicalTextReloadsToSameSpec) {
  LoadResult r = load_text(kPing, "ping.lmc");
  ASSERT_TRUE(r.ok());
  std::string canon = to_lmc_text(*r.spec);
  LoadResult r2 = load_text(canon, "ping_canonical.lmc");
  ASSERT_TRUE(r2.ok()) << r2.diags.to_string() << "\n--- emitted text ---\n" << canon;
  EXPECT_EQ(*r2.spec, *r.spec);
  // And emission is a fixed point: emit(parse(emit(s))) == emit(s).
  EXPECT_EQ(to_lmc_text(*r2.spec), canon);
}

TEST(DslValidate, RejectsProgrammaticEnvelopeBreaks) {
  LoadResult r = load_text(kPing, "ping.lmc");
  ASSERT_TRUE(r.ok());
  DslSpec s = *r.spec;
  s.msg_rules[0].action.goto_state = s.msg_rules[0].guard_state;  // not monotone
  EXPECT_NE(validate(s), "");
  EXPECT_THROW(instantiate(s), std::invalid_argument);
}

TEST(DslInterp, StateDecodeAndInitialStates) {
  LoadResult r = load_text(kPing, "ping.lmc");
  ASSERT_TRUE(r.ok());
  CompiledProtocol p = instantiate(*r.spec);
  EXPECT_EQ(p.cfg.num_nodes, 3u);
  std::vector<Blob> init = initial_states(p.cfg);
  ASSERT_EQ(init.size(), 3u);
  for (const Blob& b : init) EXPECT_EQ(dsl_state_of(b), 0u);
}

}  // namespace
}  // namespace lmc::dsl
