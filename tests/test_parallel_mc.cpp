// The parallel phase-2 machinery: the persistent WorkerPool (exception
// propagation, reuse), thread-count determinism of full checker runs on the
// GEN and OPT paths, the resumed-past-budget guard, checkpoint-write
// failures, and the I+ registration of messages sent by handlers whose
// local assert fails (addNextState order, Fig. 9).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "mc/local_mc.hpp"
#include "mc/parallel_local_mc.hpp"
#include "mc/replay.hpp"
#include "persist/checkpoint.hpp"
#include "protocols/election.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

// ---------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossJobs) {
  WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(WorkerPool, WorkerExceptionRethrownOnCaller) {
  // Before the pool, a throwing task crossed the std::thread boundary and
  // std::terminate'd the whole process.
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("task 7 failed");
               }),
      std::runtime_error);
}

TEST(WorkerPool, UsableAfterException) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run(16, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.run(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

TEST(WorkerPool, ExceptionShortCircuitsRemainingTasks) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(100000,
                        [&](std::size_t) {
                          ran.fetch_add(1);
                          throw std::runtime_error("first");
                        }),
               std::runtime_error);
  // Once the first exception lands, the remaining indices are abandoned.
  EXPECT_LT(ran.load(), 100000);
}

TEST(WorkerPool, SecondaryExceptionsAreCountedNotLost) {
  // When several workers throw in one fan-out, only the first exception
  // crosses run(); the rest must be COUNTED instead of vanishing. The
  // barrier guarantees both tasks are mid-flight before either throws.
  WorkerPool pool(4);
  EXPECT_EQ(pool.dropped_exceptions(), 0u);
  std::atomic<int> at_barrier{0};
  auto both_throw = [&](std::size_t i) {
    at_barrier.fetch_add(1);
    while (at_barrier.load() < 2) std::this_thread::yield();
    throw std::runtime_error("worker " + std::to_string(i) + " failed");
  };
  EXPECT_THROW(pool.run(2, both_throw), std::runtime_error);
  EXPECT_EQ(pool.dropped_exceptions(), 1u) << "one rethrown, one counted";

  // The counter accumulates across jobs on the same pool.
  at_barrier.store(0);
  EXPECT_THROW(pool.run(2, both_throw), std::runtime_error);
  EXPECT_EQ(pool.dropped_exceptions(), 2u);
}

TEST(ParallelFor, PropagatesExceptionsInsteadOfTerminating) {
  EXPECT_THROW(parallel_for(32, 4,
                            [](std::size_t i) {
                              if (i % 2 == 0) throw std::runtime_error("even index");
                            }),
               std::runtime_error);
  // threads <= 1 path throws from the plain loop.
  EXPECT_THROW(parallel_for(4, 1, [](std::size_t) { throw std::runtime_error("seq"); }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Tiny ring protocol (GEN path): every node may fire `max_inc` internal
// increments, each pinging the next node; receiving a ping bumps `pings`.

constexpr std::uint32_t kEvInc = 1;
constexpr std::uint32_t kMsgPing = 7;

class CounterNode final : public StateMachine {
 public:
  CounterNode(NodeId self, std::uint32_t n, std::uint32_t max_inc)
      : self_(self), n_(n), max_inc_(max_inc) {}

  void handle_message(const Message& m, Context& ctx) override {
    ctx.local_assert(m.type == kMsgPing, "counter: unknown message");
    if (m.type == kMsgPing) ++pings_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (incs_ < max_inc_) {
      Writer w;
      w.u32(incs_);
      return {InternalEvent{kEvInc, std::move(w).take()}};
    }
    return {};
  }
  void handle_internal(const InternalEvent& ev, Context& ctx) override {
    ctx.local_assert(ev.kind == kEvInc, "counter: unknown event");
    ++incs_;
    Writer w;
    w.u32(self_);
    w.u32(incs_);
    ctx.send((self_ + 1) % n_, kMsgPing, std::move(w).take());
  }
  void serialize(Writer& w) const override {
    w.u32(incs_);
    w.u32(pings_);
  }
  void deserialize(Reader& r) override {
    incs_ = r.u32();
    pings_ = r.u32();
  }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::uint32_t max_inc_;
  std::uint32_t incs_ = 0;
  std::uint32_t pings_ = 0;
};

SystemConfig counter_cfg(std::uint32_t n, std::uint32_t max_inc) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [max_inc](NodeId self, std::uint32_t num) {
    return std::make_unique<CounterNode>(self, num, max_inc);
  };
  return cfg;
}

class PingLimitInvariant final : public Invariant {
 public:
  explicit PingLimitInvariant(std::uint32_t limit) : limit_(limit) {}
  std::string name() const override { return "counter.ping_limit"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    std::uint32_t total = 0;
    for (const Blob* b : sys) {
      Reader r(*b);
      r.u32();  // incs
      total += r.u32();
    }
    return total < limit_;
  }

 private:
  std::uint32_t limit_;
};

// ---------------------------------------------------------------------------
// Thread-count determinism: the merge protocol promises byte-identical
// results for any thread count. Compare FULL runs — stores, counters,
// violations including witness schedules.

void expect_identical_runs(const LocalModelChecker& a, const LocalModelChecker& b,
                           std::uint32_t num_nodes) {
  const LocalMcStats& sa = a.stats();
  const LocalMcStats& sb = b.stats();
  EXPECT_EQ(sa.transitions, sb.transitions);
  EXPECT_EQ(sa.node_states, sb.node_states);
  EXPECT_EQ(sa.system_states, sb.system_states);
  EXPECT_EQ(sa.invariant_checks, sb.invariant_checks);
  EXPECT_EQ(sa.prelim_violations, sb.prelim_violations);
  EXPECT_EQ(sa.confirmed_violations, sb.confirmed_violations);
  EXPECT_EQ(sa.unsound_violations, sb.unsound_violations);
  EXPECT_EQ(sa.soundness_calls, sb.soundness_calls);
  EXPECT_EQ(sa.feasibility_skips, sb.feasibility_skips);
  EXPECT_EQ(sa.soundness_deferred, sb.soundness_deferred);
  EXPECT_EQ(sa.deferred_processed, sb.deferred_processed);
  EXPECT_EQ(sa.sequences_checked, sb.sequences_checked);
  EXPECT_EQ(sa.completed, sb.completed);

  for (NodeId n = 0; n < num_nodes; ++n) {
    ASSERT_EQ(a.store().size(n), b.store().size(n)) << "LS_" << n << " size diverged";
    for (std::uint32_t i = 0; i < a.store().size(n); ++i)
      EXPECT_EQ(a.store().rec(n, i).hash, b.store().rec(n, i).hash);
  }

  ASSERT_EQ(a.violations().size(), b.violations().size());
  for (std::size_t v = 0; v < a.violations().size(); ++v) {
    const LocalViolation& va = a.violations()[v];
    const LocalViolation& vb = b.violations()[v];
    EXPECT_EQ(va.combo, vb.combo);
    EXPECT_EQ(va.state_hashes, vb.state_hashes);
    EXPECT_EQ(va.system_state, vb.system_state);
    EXPECT_EQ(va.confirmed, vb.confirmed);
    EXPECT_EQ(va.epoch, vb.epoch);
    ASSERT_EQ(va.witness.size(), vb.witness.size()) << "witness schedules diverged";
    for (std::size_t s = 0; s < va.witness.size(); ++s) {
      EXPECT_EQ(va.witness[s].node, vb.witness[s].node);
      EXPECT_EQ(va.witness[s].is_message, vb.witness[s].is_message);
      EXPECT_EQ(va.witness[s].ev_hash, vb.witness[s].ev_hash);
    }
  }
}

// §5.5 live state: node0 proposed and learned v1; node1 accepted it; the
// other Learns were dropped (mirror of the builder in test_paxos_mc).
std::vector<Blob> build_5_5_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  auto fire = [&](NodeId n) {
    auto evs = internal_events_of(cfg, n, nodes[n]);
    ASSERT_FALSE(evs.empty());
    ExecResult r = exec_internal(cfg, n, nodes[n], evs[0]);
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
    for (Message& out : r.sent) flight.push_back(std::move(out));
  };
  auto deliver = [&](NodeId dst, std::uint32_t type) {
    for (std::size_t i = 0; i < flight.size(); ++i) {
      if (flight[i].dst != dst || flight[i].type != type) continue;
      Message m = flight[i];
      flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
      ExecResult r = exec_message(cfg, dst, nodes[dst], m);
      ASSERT_FALSE(r.assert_failed);
      nodes[dst] = std::move(r.state);
      for (Message& out : r.sent) flight.push_back(std::move(out));
      return;
    }
    FAIL() << "no in-flight message of type " << type << " for node " << dst;
  };
  for (NodeId n = 0; n < 3; ++n) fire(n);  // init x3
  fire(0);                                 // node0 proposes
  for (NodeId n = 0; n < 3; ++n) deliver(n, paxos::kPrepare);
  for (int i = 0; i < 3; ++i) deliver(0, paxos::kPrepareResponse);
  deliver(0, paxos::kAccept);
  deliver(1, paxos::kAccept);
  deliver(0, paxos::kLearn);
  deliver(0, paxos::kLearn);
  return nodes;
}

TEST(ParallelDeterminism, BuggyPaxosLiveStateAcrossThreadCounts) {
  // The OPT path on the workload that actually finds the WiDS bug: the
  // projection-pair scan, feasibility pre-checks, quick soundness passes
  // and the phase-2 drain all run sharded, yet every thread count must
  // confirm the same violation with the same witness.
  SystemConfig cfg = paxos::make_config(
      3, paxos::CoreOptions{0, /*bug=*/true}, paxos::DriverConfig{{0, 1}, 1});
  auto inv = paxos::make_agreement_invariant();

  std::vector<std::unique_ptr<LocalModelChecker>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    std::vector<Blob> live;
    build_5_5_live_state(cfg).swap(live);
    LocalMcOptions opt;
    opt.max_total_depth = 18;
    opt.use_projection = true;
    opt.time_budget_s = 300;
    opt.num_threads = threads;
    runs.push_back(std::make_unique<LocalModelChecker>(cfg, inv.get(), opt));
    runs.back()->run(live, {});
  }
  ASSERT_GE(runs[0]->stats().confirmed_violations, 1u) << "bug must be rediscovered";
  expect_identical_runs(*runs[0], *runs[1], cfg.num_nodes);
  expect_identical_runs(*runs[0], *runs[2], cfg.num_nodes);

  // The multi-threaded witness replays through the real handlers.
  const LocalViolation* v = runs[2]->first_confirmed();
  ASSERT_NE(v, nullptr);
  ReplayResult rep = replay_schedule(cfg, runs[2]->initial_nodes(), runs[2]->initial_in_flight(),
                                     v->witness, runs[2]->events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(ParallelDeterminism, BuggyElectionAcrossThreadCounts) {
  SystemConfig cfg = election::make_config(3, election::Options{{0}, /*bug=*/true});
  election::SingleLeaderInvariant inv;

  std::vector<std::unique_ptr<LocalModelChecker>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    LocalMcOptions opt;
    opt.use_projection = true;
    opt.time_budget_s = 300;
    opt.num_threads = threads;
    runs.push_back(std::make_unique<LocalModelChecker>(cfg, &inv, opt));
    runs.back()->run_from_initial();
  }
  ASSERT_GE(runs[0]->stats().confirmed_violations, 1u);
  expect_identical_runs(*runs[0], *runs[1], cfg.num_nodes);
  expect_identical_runs(*runs[0], *runs[2], cfg.num_nodes);
}

TEST(ParallelDeterminism, GenSweepAcrossThreadCounts) {
  // No projection: the mixed-radix GEN shards carry the whole sweep.
  // stop_on_confirmed=false exercises the multi-violation merge.
  SystemConfig cfg = counter_cfg(3, 2);
  PingLimitInvariant inv(3);

  std::vector<std::unique_ptr<LocalModelChecker>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    LocalMcOptions opt;
    opt.stop_on_confirmed = false;
    opt.time_budget_s = 300;
    opt.num_threads = threads;
    runs.push_back(std::make_unique<LocalModelChecker>(cfg, &inv, opt));
    runs.back()->run_from_initial();
  }
  ASSERT_GE(runs[0]->stats().confirmed_violations, 1u);
  ASSERT_GT(runs[0]->stats().system_states, 0u);
  expect_identical_runs(*runs[0], *runs[1], cfg.num_nodes);
  expect_identical_runs(*runs[0], *runs[2], cfg.num_nodes);
}

// ---------------------------------------------------------------------------
// Resume guard: a checkpoint whose recorded elapsed time already exceeds the
// budget must resume into an immediate clean stop — no replayed round, no
// new work, pending tasks preserved for a later resume with a real budget.

TEST(ParallelResume, ResumedPastBudgetStopsCleanlyWithoutWork) {
  SystemConfig cfg = counter_cfg(3, 3);
  PingLimitInvariant inv(1000);
  LocalMcOptions opt;
  opt.max_transitions = 5;  // stop mid-round: pending tasks exist
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_FALSE(mc.stats().completed);

  CheckerImage img = decode_checkpoint(mc.checkpoint_bytes());
  ASSERT_FALSE(img.pending.empty());
  img.stats.elapsed_s = 9'000.0;  // pretend the interrupted run burned 2.5 h
  const std::string path = testing::TempDir() + "lmc_past_budget.ckpt";
  write_checkpoint_file(path, encode_checkpoint(img));

  LocalMcOptions ropt;
  ropt.time_budget_s = 60;  // << 9000 already consumed
  LocalModelChecker re(cfg, &inv, ropt);
  re.run_resumed(path);
  EXPECT_FALSE(re.stats().completed);
  EXPECT_EQ(re.stats().transitions, img.stats.transitions) << "no new work allowed";
  EXPECT_EQ(re.stats().node_states, img.stats.node_states);
  EXPECT_GE(re.stats().elapsed_s, 9'000.0);

  // The unapplied round survives for the next (properly budgeted) resume.
  CheckerImage again = decode_checkpoint(re.checkpoint_bytes());
  EXPECT_EQ(again.pending.size(), img.pending.size());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Auto-checkpoint failure: a write error must not kill the run or leave
// checkpoints_written counting files that do not exist.

TEST(ParallelResume, FailedAutoCheckpointIsCountedAndRunContinues) {
  SystemConfig cfg = counter_cfg(2, 2);
  PingLimitInvariant inv(1000);
  LocalMcOptions opt;
  opt.checkpoint_every_s = 1e-9;  // every round
  opt.checkpoint_path = "/nonexistent-dir-for-lmc-test/ckpt.bin";
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed) << "write failures must not abort exploration";
  EXPECT_GE(mc.stats().checkpoint_failures, 1u);
  EXPECT_EQ(mc.stats().checkpoints_written, 0u);
}

// ---------------------------------------------------------------------------
// addNextState order (Fig. 9): messages sent by a handler whose local assert
// fails are REAL network traffic — they were sent before the assert tripped
// — and must enter I+ even when the successor state is discarded.

constexpr std::uint32_t kEvFire = 1;
constexpr std::uint32_t kMsgRelay = 9;

// Node 0 fires once: sends a relay to node 1, THEN fails a local assert.
// Node 1 counts received relays.
class SendThenAssertNode final : public StateMachine {
 public:
  explicit SendThenAssertNode(NodeId self) : self_(self) {}

  void handle_message(const Message& m, Context&) override {
    if (m.type == kMsgRelay) ++got_;
  }
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (self_ == 0 && !fired_) return {InternalEvent{kEvFire, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context& ctx) override {
    fired_ = true;
    Writer w;
    w.u32(self_);
    ctx.send(1, kMsgRelay, std::move(w).take());
    ctx.local_assert(false, "invariant tripped after send");
  }
  void serialize(Writer& w) const override {
    w.u32(fired_ ? 1 : 0);
    w.u32(got_);
  }
  void deserialize(Reader& r) override {
    fired_ = r.u32() != 0;
    got_ = r.u32();
  }

 private:
  NodeId self_;
  bool fired_ = false;
  std::uint32_t got_ = 0;
};

SystemConfig relay_cfg() {
  SystemConfig cfg;
  cfg.num_nodes = 3;
  cfg.factory = [](NodeId self, std::uint32_t) {
    return std::make_unique<SendThenAssertNode>(self);
  };
  return cfg;
}

/// Violated as soon as node 1 received a relay.
class RelayReceivedInvariant final : public Invariant {
 public:
  std::string name() const override { return "relay.received"; }
  bool holds(const SystemConfig&, const SystemStateView& sys) const override {
    Reader r(*sys[1]);
    r.u32();  // fired
    return r.u32() == 0;
  }
};

TEST(AssertSends, DiscardStateKeepsSentMessagesInIplus) {
  SystemConfig cfg = relay_cfg();
  RelayReceivedInvariant inv;
  LocalMcOptions opt;  // default policy: DiscardState
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();

  ASSERT_GE(mc.stats().local_assert_discards, 1u) << "the assert must have fired";
  // The relay was sent before the assert: it is in I+ and node 1 executed it.
  EXPECT_GE(mc.stats().messages_in_iplus, 1u) << "sent message lost on discarded state";
  EXPECT_GT(mc.stats().transitions, 1u) << "node 1 never received the relay";
  EXPECT_GE(mc.stats().prelim_violations, 1u);
  // But the discarded sender state generates no predecessor edge, so no
  // feasible schedule delivers the relay: the violation must stay unsound.
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
  EXPECT_TRUE(mc.violations().empty());
}

// ---------------------------------------------------------------------------
// Phase-1 pipeline exception accounting: two handlers rendezvous and then
// both throw. The checker rethrows the first (in consume order) and counts
// the other in worker_exceptions_dropped() instead of losing it.

std::atomic<int> g_throw_barrier{0};

class ThrowingPairNode final : public StateMachine {
 public:
  explicit ThrowingPairNode(NodeId self) : self_(self) {}
  void handle_message(const Message&, Context&) override {}
  std::vector<InternalEvent> enabled_internal_events() const override {
    if (!fired_) return {InternalEvent{kEvFire, {}}};
    return {};
  }
  void handle_internal(const InternalEvent&, Context&) override {
    fired_ = true;
    g_throw_barrier.fetch_add(1);
    while (g_throw_barrier.load() < 2) std::this_thread::yield();
    throw std::runtime_error("handler exploded");
  }
  void serialize(Writer& w) const override {
    w.u32(self_);
    w.u32(fired_ ? 1 : 0);
  }
  void deserialize(Reader& r) override {
    self_ = r.u32();
    fired_ = r.u32() != 0;
  }

 private:
  NodeId self_ = 0;
  bool fired_ = false;
};

TEST(ParallelDeterminism, PipelineCountsSecondaryHandlerExceptions) {
  g_throw_barrier.store(0);
  SystemConfig cfg;
  cfg.num_nodes = 2;
  cfg.factory = [](NodeId self, std::uint32_t) {
    return std::make_unique<ThrowingPairNode>(self);
  };
  LocalMcOptions opt;
  opt.num_threads = 4;
  LocalModelChecker mc(cfg, nullptr, opt);
  EXPECT_EQ(mc.worker_exceptions_dropped(), 0u);
  EXPECT_THROW(mc.run_from_initial(), std::runtime_error);
  EXPECT_EQ(mc.worker_exceptions_dropped(), 1u)
      << "the second handler's exception must be counted, not lost";
}

TEST(AssertSends, IgnoreViolationConfirmsTheSameViolation) {
  // Control: keeping the asserting successor state makes the relay
  // generatable, and the same invariant violation becomes confirmed.
  SystemConfig cfg = relay_cfg();
  RelayReceivedInvariant inv;
  LocalMcOptions opt;
  opt.assert_policy = LocalMcOptions::AssertPolicy::IgnoreViolation;
  opt.stop_on_confirmed = false;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GE(mc.stats().messages_in_iplus, 1u);
  EXPECT_GE(mc.stats().confirmed_violations, 1u);
}

}  // namespace
}  // namespace lmc
