// Online model checking: live-runner determinism, snapshots, and the
// CrystalBall loop rediscovering the §5.5 and §5.6 bugs end-to-end.
#include <gtest/gtest.h>

#include "mc/replay.hpp"
#include "online/crystalball.hpp"
#include "online/live_runner.hpp"
#include "online/snapshot.hpp"
#include "protocols/onepaxos.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

SystemConfig live_paxos_cfg(bool bug) {
  paxos::DriverConfig d;
  d.proposers = {0, 1, 2};
  d.max_proposals = 3;
  d.allow_fresh_index = true;  // live driver proposes for new indexes (§5.5)
  return paxos::make_config(3, paxos::CoreOptions{0, bug}, d);
}

SystemConfig checker_paxos_cfg(bool bug) {
  paxos::DriverConfig d;
  d.proposers = {0, 1, 2};
  d.max_proposals = 4;          // at least one more proposal per node
  d.allow_fresh_index = false;  // bounded checker driver
  return paxos::make_config(3, paxos::CoreOptions{0, bug}, d);
}

LiveOptions live_opts(std::uint64_t seed) {
  LiveOptions o;
  o.seed = seed;
  o.transport.drop_prob = 0.3;  // §5.5: 30% of non-loopback messages dropped
  o.app_min = 0.0;
  o.app_max = 60.0;  // propose, then sleep 0..60 s
  return o;
}

TEST(LiveRunner, DeterministicUnderSeed) {
  SystemConfig cfg = live_paxos_cfg(false);
  LiveRunner a(cfg, live_opts(7), first_enabled_driver());
  LiveRunner b(cfg, live_opts(7), first_enabled_driver());
  a.run_until(300);
  b.run_until(300);
  EXPECT_EQ(a.nodes(), b.nodes());
  EXPECT_EQ(a.delivered(), b.delivered());
  EXPECT_EQ(a.snapshot().in_flight.size(), b.snapshot().in_flight.size());
}

TEST(LiveRunner, DifferentSeedsDiverge) {
  SystemConfig cfg = live_paxos_cfg(false);
  LiveRunner a(cfg, live_opts(7), first_enabled_driver());
  LiveRunner b(cfg, live_opts(8), first_enabled_driver());
  a.run_until(300);
  b.run_until(300);
  EXPECT_NE(a.nodes(), b.nodes());
}

TEST(LiveRunner, ProgressAndDropsHappen) {
  SystemConfig cfg = live_paxos_cfg(false);
  LiveRunner r(cfg, live_opts(3), first_enabled_driver());
  r.run_until(600);
  EXPECT_GT(r.app_events(), 3u);        // inits + proposals fired
  EXPECT_GT(r.delivered(), 0u);
  EXPECT_GT(r.transport().dropped(), 0u);
  EXPECT_EQ(r.assert_failures(), 0u);
  // Consensus actually happens live: someone chose something.
  bool any_chosen = false;
  for (NodeId n = 0; n < 3; ++n)
    if (!paxos::chosen_map_of(cfg, n, r.nodes()[n]).empty()) any_chosen = true;
  EXPECT_TRUE(any_chosen);
}

TEST(LiveRunner, CorrectPaxosStaysConsistentForLong) {
  SystemConfig cfg = live_paxos_cfg(false);
  auto inv = paxos::make_agreement_invariant();
  LiveRunner r(cfg, live_opts(11), first_enabled_driver());
  for (double t = 60; t <= 1200; t += 60) {
    r.run_until(t);
    SystemStateView view;
    for (const Blob& b : r.nodes()) view.push_back(&b);
    ASSERT_TRUE(inv->holds(cfg, view)) << "live agreement broken at t=" << t;
  }
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  SystemConfig cfg = live_paxos_cfg(false);
  LiveRunner r(cfg, live_opts(5), first_enabled_driver());
  r.run_until(120);
  Snapshot s = r.snapshot();
  Snapshot back = Snapshot::decode(s.encode());
  EXPECT_EQ(s, back);
}

TEST(CrystalBall, FindsWidsBugOnline) {
  // §5.5 end-to-end: live buggy Paxos + periodic LMC restarts. The paper
  // detected the bug after 1150 s of live time; we assert detection within
  // a comparable horizon (simulated time, wall cost is milliseconds).
  SystemConfig live_cfg = live_paxos_cfg(true);
  SystemConfig mc_cfg = checker_paxos_cfg(true);
  auto inv = paxos::make_agreement_invariant();
  LiveRunner live(live_cfg, live_opts(1), first_enabled_driver());

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 16;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 10;
  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  CrystalBallResult res = cb.run();

  ASSERT_TRUE(res.found) << "WiDS bug must surface within an hour of live time";
  EXPECT_GT(res.live_time, 0.0);
  EXPECT_TRUE(res.violation.confirmed);
  EXPECT_FALSE(res.violation.witness.empty());
}

TEST(CrystalBall, WarmStartFindsWidsBugWithFewerTransitions) {
  // Same §5.5 system as FindsWidsBugOnline, checked at a HIGHER frequency
  // (15 s periods instead of 60 s), run cold and warm over identical live
  // executions. Short periods are where warm start pays: the live system
  // often barely moves between snapshots — seed 1 has a fully quiescent
  // window, whose period re-explores the previous closure — so the shared
  // transition cache replays that duplicated handler work. Warm must find
  // the bug with strictly fewer total handler executions than cold, the
  // savings must come from cache replays, and the witness must still replay.
  SystemConfig live_cfg = live_paxos_cfg(true);
  SystemConfig mc_cfg = checker_paxos_cfg(true);
  auto inv = paxos::make_agreement_invariant();

  CrystalBallOptions opt;
  opt.period = 15;
  opt.max_live_time = 300;
  opt.mc.max_total_depth = 16;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 3;

  LiveRunner live_cold(live_cfg, live_opts(1), first_enabled_driver());
  CrystalBall cold(mc_cfg, inv.get(), live_cold, opt);
  CrystalBallResult cold_res = cold.run();
  ASSERT_TRUE(cold_res.found);

  opt.warm_start = true;
  int periods_seen = 0;
  opt.on_period = [&](const CrystalBallPeriod&) { ++periods_seen; };
  LiveRunner live_warm(live_cfg, live_opts(1), first_enabled_driver());
  CrystalBall warm(mc_cfg, inv.get(), live_warm, opt);
  CrystalBallResult warm_res = warm.run();

  ASSERT_TRUE(warm_res.found) << "warm start must still find the WiDS bug";
  EXPECT_TRUE(warm_res.violation.confirmed);
  EXPECT_EQ(periods_seen, warm_res.runs);
  EXPECT_LT(warm_res.total_transitions, cold_res.total_transitions)
      << "warm start must redo strictly less work than cold restarts";
  EXPECT_GT(warm_res.total_cache_hits, 0u) << "the savings come from cache replays";

  // The witness anchors at the epoch soundness verified; replay it from
  // that period's snapshot through the real handlers.
  ReplayResult rep =
      replay_schedule(mc_cfg, warm_res.snapshot.nodes, warm_res.snapshot.in_flight,
                      warm_res.violation.witness, warm_res.events, warm_res.violation.state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(CrystalBall, CleanOnCorrectPaxos) {
  SystemConfig live_cfg = live_paxos_cfg(false);
  SystemConfig mc_cfg = checker_paxos_cfg(false);
  auto inv = paxos::make_agreement_invariant();
  LiveRunner live(live_cfg, live_opts(1), first_enabled_driver());

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 900;  // 15 checker runs
  opt.mc.max_total_depth = 14;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 10;
  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  CrystalBallResult res = cb.run();
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.runs, 15);
}

TEST(CrystalBall, FindsPlusPlusBugIn1Paxos) {
  // §5.6 end-to-end: fault-detector-driven 1Paxos with the ++ bug. The
  // paper found it in 225 s of live time.
  onepaxos::Options live_opt;
  live_opt.bug_postincrement_init = true;
  live_opt.max_proposals = 3;
  live_opt.max_leader_faults = 2;
  SystemConfig live_cfg = onepaxos::make_config(3, live_opt);

  onepaxos::Options mc_opt = live_opt;
  mc_opt.max_proposals = 4;
  SystemConfig mc_cfg = onepaxos::make_config(3, mc_opt);

  auto inv = onepaxos::make_agreement_invariant();
  LiveOptions lo = live_opts(2);
  LiveRunner live(live_cfg, lo, fault_injecting_driver(0.1, onepaxos::kEvSuspectLeader));

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 3600;
  opt.mc.max_total_depth = 12;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 10;
  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  CrystalBallResult res = cb.run();
  ASSERT_TRUE(res.found) << "1Paxos ++ bug must surface within an hour of live time";
  EXPECT_TRUE(res.violation.confirmed);
}

TEST(CrystalBall, NoBugIn1PaxosWithoutInjection) {
  onepaxos::Options o;
  o.max_proposals = 3;
  o.max_leader_faults = 2;
  SystemConfig live_cfg = onepaxos::make_config(3, o);
  onepaxos::Options mo = o;
  mo.max_proposals = 4;
  SystemConfig mc_cfg = onepaxos::make_config(3, mo);
  auto inv = onepaxos::make_agreement_invariant();
  LiveRunner live(live_cfg, live_opts(2), fault_injecting_driver(0.1, onepaxos::kEvSuspectLeader));

  CrystalBallOptions opt;
  opt.period = 60;
  opt.max_live_time = 600;
  opt.mc.max_total_depth = 10;
  opt.mc.use_projection = true;
  opt.mc.time_budget_s = 10;
  CrystalBall cb(mc_cfg, inv.get(), live, opt);
  EXPECT_FALSE(cb.run().found);
}

TEST(FaultDriver, FiresFaultsAtConfiguredRate) {
  std::mt19937_64 rng(3);
  AppDriver d = fault_injecting_driver(0.5, 99);
  std::vector<InternalEvent> enabled{InternalEvent{99, {}}, InternalEvent{1, {}}};
  int faults = 0;
  for (int i = 0; i < 2000; ++i) {
    auto pick = d(0, enabled, rng);
    ASSERT_TRUE(pick.has_value());
    if (pick->kind == 99) ++faults;
  }
  EXPECT_NEAR(faults / 2000.0, 0.5, 0.06);
}

}  // namespace
}  // namespace lmc
