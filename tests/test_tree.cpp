// The §2 tree example end-to-end: global vs local exploration, the Fig. 4
// system-state counts, and the invalid "----r" combination being caught by
// soundness verification.
#include <gtest/gtest.h>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/soundness.hpp"
#include "protocols/tree.hpp"

namespace lmc {
namespace {

using tree::Status;

struct TreeFixture : ::testing::Test {
  tree::Topology topo = tree::fig2_topology();
  SystemConfig cfg = tree::make_config(topo);
  tree::CausalDeliveryInvariant inv{topo};
};

TEST_F(TreeFixture, ProtocolBasics) {
  auto nodes = initial_states(cfg);
  ASSERT_EQ(nodes.size(), 5u);
  for (const Blob& b : nodes) EXPECT_EQ(tree::status_of(b), Status::Idle);

  // Origin's send event is the only enabled internal event in the system.
  EXPECT_EQ(internal_events_of(cfg, 0, nodes[0]).size(), 1u);
  for (NodeId n = 1; n < 5; ++n) EXPECT_TRUE(internal_events_of(cfg, n, nodes[n]).empty());

  ExecResult r = exec_internal(cfg, 0, nodes[0], {tree::kEvSend, {}});
  EXPECT_EQ(tree::status_of(r.state), Status::Sent);
  ASSERT_EQ(r.sent.size(), 2u);  // to children 1 and 2
  EXPECT_EQ(r.sent[0].dst, 1u);
  EXPECT_EQ(r.sent[1].dst, 2u);
  // Send event no longer enabled afterwards.
  EXPECT_TRUE(internal_events_of(cfg, 0, r.state).empty());
}

TEST_F(TreeFixture, IntermediateForwardsWithoutStateChange) {
  auto nodes = initial_states(cfg);
  Message m;
  m.dst = 2;
  m.src = 0;
  m.type = tree::kMsgForward;
  ExecResult r = exec_message(cfg, 2, nodes[2], m);
  EXPECT_EQ(r.state, nodes[2]);  // relay: no local change
  ASSERT_EQ(r.sent.size(), 1u);
  EXPECT_EQ(r.sent[0].dst, 4u);
}

TEST_F(TreeFixture, TargetReceives) {
  auto nodes = initial_states(cfg);
  Message m;
  m.dst = 4;
  m.src = 2;
  m.type = tree::kMsgForward;
  ExecResult r = exec_message(cfg, 4, nodes[4], m);
  EXPECT_EQ(tree::status_of(r.state), Status::Received);
  EXPECT_TRUE(r.sent.empty());
}

TEST_F(TreeFixture, GlobalExplorationCoversSpace) {
  GlobalMcOptions opt;
  opt.collect_system_states = true;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  const auto& st = mc.stats();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.violations, 0u);  // causal delivery can't be violated in real runs
  // Deduplicated global states: strictly more than the 4 system states —
  // the network component multiplies them (Fig. 3 shows 12 with duplicates).
  EXPECT_GT(st.unique_states, 4u);
  // Exactly 4 distinct system states: {--,s-} x {-,r} on origin/target.
  EXPECT_EQ(mc.system_state_tuples().size(), 3u)
      << "global exploration reaches only the 3 VALID system states";
}

TEST_F(TreeFixture, LocalExplorationCreatesFourSystemStates) {
  LocalMcOptions opt;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  const auto& st = mc.stats();
  EXPECT_TRUE(st.completed);
  // Fig. 4: node 0 has states {-, s}, node 4 has {-, r}, others only {-}:
  // 7 node states in total, 4 system states created.
  EXPECT_EQ(st.node_states, 7u);
  EXPECT_EQ(st.system_states, 4u);
  // The combination "----r" is invalid: preliminary violation, rejected by
  // soundness verification, never reported.
  EXPECT_EQ(st.prelim_violations, 1u);
  EXPECT_EQ(st.unsound_violations, 1u);
  EXPECT_EQ(st.confirmed_violations, 0u);
  EXPECT_TRUE(mc.violations().empty());
}

TEST_F(TreeFixture, LocalTransitionsFewerThanGlobal) {
  GlobalModelChecker g(cfg, &inv, {});
  g.run_from_initial();
  LocalModelChecker l(cfg, &inv, {});
  l.run_from_initial();
  EXPECT_LT(l.stats().transitions, g.stats().transitions);
}

TEST_F(TreeFixture, CompletenessCrossCheck) {
  // Every system state the global checker visits must be a combination of
  // node states LMC traversed.
  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  GlobalModelChecker g(cfg, &inv, gopt);
  g.run_from_initial();

  LocalModelChecker l(cfg, &inv, {});
  l.run_from_initial();

  for (const auto& [combined, tuple] : g.system_state_tuples()) {
    (void)combined;
    for (NodeId n = 0; n < cfg.num_nodes; ++n)
      EXPECT_NE(l.store().find(n, tuple[n]), UINT32_MAX)
          << "node " << n << " state from global run missing in LMC";
  }
}

TEST_F(TreeFixture, SoundnessAcceptsValidCombination) {
  LocalModelChecker l(cfg, &inv, {});
  l.run_from_initial();
  const LocalStore& store = l.store();

  // Find node 0's Sent state and node 4's Received state.
  auto find_status = [&](NodeId n, Status s) -> std::uint32_t {
    for (std::uint32_t i = 0; i < store.size(n); ++i)
      if (tree::status_of(store.rec(n, i).blob) == s) return i;
    return UINT32_MAX;
  };
  std::uint32_t sent = find_status(0, Status::Sent);
  std::uint32_t received = find_status(4, Status::Received);
  ASSERT_NE(sent, UINT32_MAX);
  ASSERT_NE(received, UINT32_MAX);

  SoundnessVerifier v(store, l.initial_in_flight_hashes(), {});
  // Valid: "s---r" (needs the self-loop extension for node 2's relay).
  std::vector<std::uint32_t> valid{sent, 0, 0, 0, received};
  EXPECT_TRUE(v.verify(valid).sound);
  // Invalid: "----r" — node 4 received before node 0 sent.
  std::vector<std::uint32_t> invalid{0, 0, 0, 0, received};
  EXPECT_FALSE(v.verify(invalid).sound);
  // Trivially valid: the initial combination (empty schedules).
  std::vector<std::uint32_t> initial{0, 0, 0, 0, 0};
  auto res = v.verify(initial);
  EXPECT_TRUE(res.sound);
  EXPECT_TRUE(res.schedule.empty());
}

TEST_F(TreeFixture, OptVariantMatchesGen) {
  LocalMcOptions gen;
  LocalModelChecker lg(cfg, &inv, gen);
  lg.run_from_initial();

  LocalMcOptions optv;
  optv.use_projection = true;
  LocalModelChecker lo(cfg, &inv, optv);
  lo.run_from_initial();

  // Identical exploration (node states / transitions)...
  EXPECT_EQ(lo.stats().node_states, lg.stats().node_states);
  EXPECT_EQ(lo.stats().transitions, lg.stats().transitions);
  // ...same verdicts...
  EXPECT_EQ(lo.stats().confirmed_violations, lg.stats().confirmed_violations);
  EXPECT_EQ(lo.stats().unsound_violations, lg.stats().unsound_violations);
  // ...but OPT materializes fewer system states (only conflicting combos).
  EXPECT_LT(lo.stats().system_states, lg.stats().system_states);
}

TEST_F(TreeFixture, DepthBoundZeroBlocksExploration) {
  LocalMcOptions opt;
  opt.max_total_depth = 0;
  LocalModelChecker l(cfg, &inv, opt);
  l.run_from_initial();
  EXPECT_EQ(l.stats().node_states, 5u);  // just the initial states
  EXPECT_EQ(l.stats().transitions, 0u);
}

TEST_F(TreeFixture, DepthSweepMonotonic) {
  std::uint64_t prev_states = 0;
  for (std::uint32_t d = 1; d <= 4; ++d) {
    LocalMcOptions opt;
    opt.max_total_depth = d;
    LocalModelChecker l(cfg, &inv, opt);
    l.run_from_initial();
    EXPECT_GE(l.stats().node_states, prev_states);
    prev_states = l.stats().node_states;
  }
}

}  // namespace
}  // namespace lmc
