// RandTree: protocol behaviour, the per-node disjointness invariant, the
// injected notify-on-forward bug, and model checking both variants.
#include <gtest/gtest.h>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/randtree.hpp"

namespace lmc {
namespace {

using randtree::Options;

Message mk(NodeId dst, NodeId src, std::uint32_t type, Blob payload = {}) {
  Message m;
  m.dst = dst;
  m.src = src;
  m.type = type;
  m.payload = std::move(payload);
  return m;
}

void fire_all_inits(const SystemConfig& cfg, std::vector<Blob>& nodes) {
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {randtree::kEvInit, {}});
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
  }
}

// Run a fully synchronous join sequence: nodes join one at a time, every
// message delivered immediately in FIFO order.
void run_sync(const SystemConfig& cfg, std::vector<Blob>& nodes) {
  std::vector<Message> q;
  for (NodeId n = 1; n < cfg.num_nodes; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {randtree::kEvJoin, {}});
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
    for (Message& m : r.sent) q.push_back(std::move(m));
    while (!q.empty()) {
      Message m = q.front();
      q.erase(q.begin());
      ExecResult rr = exec_message(cfg, m.dst, nodes[m.dst], m);
      ASSERT_FALSE(rr.assert_failed) << rr.assert_msg;
      nodes[m.dst] = std::move(rr.state);
      for (Message& out : rr.sent) q.push_back(std::move(out));
    }
  }
}

TEST(RandTree, RootAdoptsFirstJoiners) {
  SystemConfig cfg = randtree::make_config(4, Options{});
  auto nodes = initial_states(cfg);
  fire_all_inits(cfg, nodes);
  run_sync(cfg, nodes);

  auto root = randtree::view_of(nodes[0]);
  EXPECT_EQ(root.children, (std::set<std::uint32_t>{1, 2}));  // capacity 2
  auto n1 = randtree::view_of(nodes[1]);
  EXPECT_TRUE(n1.joined);
  EXPECT_EQ(n1.siblings, (std::set<std::uint32_t>{2}));
  auto n3 = randtree::view_of(nodes[3]);
  EXPECT_TRUE(n3.joined);  // forwarded to child 1
  auto n1after = randtree::view_of(nodes[1]);
  EXPECT_EQ(n1after.children, (std::set<std::uint32_t>{3}));
}

TEST(RandTree, CorrectVariantKeepsDisjointSets) {
  SystemConfig cfg = randtree::make_config(5, Options{});
  auto nodes = initial_states(cfg);
  fire_all_inits(cfg, nodes);
  run_sync(cfg, nodes);
  randtree::DisjointInvariant inv;
  SystemStateView view;
  for (const Blob& b : nodes) view.push_back(&b);
  EXPECT_TRUE(inv.holds(cfg, view));
}

TEST(RandTree, BuggyVariantViolatesDisjointnessInSyncRun) {
  // 4 nodes, capacity 2: node 3's join is forwarded; with the bug the
  // forward also announces node 3 as a sibling to the children — node 1
  // ends up with 3 in children AND siblings.
  SystemConfig cfg = randtree::make_config(4, Options{2, true});
  auto nodes = initial_states(cfg);
  fire_all_inits(cfg, nodes);
  run_sync(cfg, nodes);
  auto n1 = randtree::view_of(nodes[1]);
  EXPECT_TRUE(n1.children.count(3));
  EXPECT_TRUE(n1.siblings.count(3));
  randtree::DisjointInvariant inv;
  SystemStateView view;
  for (const Blob& b : nodes) view.push_back(&b);
  EXPECT_FALSE(inv.holds(cfg, view));
}

TEST(RandTree, InvariantProjectionMarksOnlyViolatingStates) {
  SystemConfig cfg = randtree::make_config(4, Options{});
  randtree::DisjointInvariant inv;
  auto nodes = initial_states(cfg);
  EXPECT_TRUE(inv.project(cfg, 0, nodes[0]).empty());
  EXPECT_FALSE(inv.projection_self_violates({}));
  EXPECT_TRUE(inv.projection_self_violates({{1, 1}}));
}

TEST(RandTree, LocalMcFindsBugAndConfirmsIt) {
  SystemConfig cfg = randtree::make_config(4, Options{2, true});
  randtree::DisjointInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;  // per-node invariant: OPT skips clean states
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);

  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(RandTree, LocalMcCleanOnCorrectVariant) {
  SystemConfig cfg = randtree::make_config(4, Options{});
  randtree::DisjointInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  // The conservative I+ delivery manufactures INVALID node states that
  // self-violate (a sibling notification from one branch mixed with an
  // adoption from another); every resulting preliminary violation must be
  // rejected a posteriori — zero confirmed.
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
  EXPECT_GT(mc.stats().prelim_violations, 0u);
  EXPECT_EQ(mc.stats().prelim_violations, mc.stats().unsound_violations);
}

TEST(RandTree, GlobalMcAgreesOnBug) {
  SystemConfig cfg = randtree::make_config(4, Options{2, true});
  randtree::DisjointInvariant inv;
  GlobalMcOptions opt;
  opt.stop_on_violation = true;
  opt.max_transitions = 2'000'000;
  opt.time_budget_s = 120;
  GlobalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_GE(mc.stats().violations, 1u);
}

TEST(RandTree, LocalAssertDiscardsStatesInLmc) {
  // In LMC, I+ deliveries can hand a node a message no real run would have
  // delivered yet (e.g. a Join at a node that never joined); the protocol's
  // local asserts reject those states and the checker discards them (§4.2).
  SystemConfig cfg = randtree::make_config(4, Options{});
  randtree::DisjointInvariant inv;
  LocalModelChecker mc(cfg, &inv, {});
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_GT(mc.stats().local_assert_discards, 0u);
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
}

TEST(RandTree, SerializationRoundTrip) {
  SystemConfig cfg = randtree::make_config(4, Options{});
  auto nodes = initial_states(cfg);
  fire_all_inits(cfg, nodes);
  run_sync(cfg, nodes);
  for (NodeId n = 0; n < 4; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(machine_to_blob(*m), nodes[n]);
  }
}

TEST(RandTree, PreInitDeliveryIsDropped) {
  SystemConfig cfg = randtree::make_config(4, Options{});
  auto nodes = initial_states(cfg);
  ExecResult r = exec_message(cfg, 0, nodes[0], mk(0, 1, randtree::kMsgJoin, [] {
                                Writer w;
                                w.u32(1);
                                return std::move(w).take();
                              }()));
  EXPECT_FALSE(r.assert_failed);
  EXPECT_EQ(r.state, nodes[0]);
  EXPECT_TRUE(r.sent.empty());
}

}  // namespace
}  // namespace lmc
