// Symmetry reduction for replicated roles (DESIGN.md §13): orbit-size math,
// canonicalizer identities, class inference, and the reduced-vs-unreduced
// differential battery that keeps the reduction honest — confirmed
// violations must agree with the plain checker up to within-class
// permutation, on the frozen fuzz corpus, on purpose-built symmetric
// protocols, and under deliberately WRONG class hints (the reduction is
// unconditionally sound; hints only steer enumeration).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "mc/local_mc.hpp"
#include "mc/symmetry/canonicalizer.hpp"
#include "mc/symmetry/role_group.hpp"
#include "persist/checkpoint.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

using symmetry::Canonicalizer;
using symmetry::SymmetryMode;

// --- orbit-size math --------------------------------------------------------

TEST(SymmetryMath, MultisetOrbitSize) {
  // c! / prod(mult_k!): all-equal collapses to one arrangement, all-distinct
  // to c!, and mixed multiplicities to the multinomial coefficient.
  EXPECT_EQ(symmetry::multiset_orbit_size({3}), 1u);
  EXPECT_EQ(symmetry::multiset_orbit_size({1, 1, 1}), 6u);
  EXPECT_EQ(symmetry::multiset_orbit_size({2, 1}), 3u);
  EXPECT_EQ(symmetry::multiset_orbit_size({2, 2}), 6u);
  EXPECT_EQ(symmetry::multiset_orbit_size({3, 1, 1}), 20u);
  // 20 distinct values fit (20! < 2^64), 21 saturate.
  EXPECT_EQ(symmetry::multiset_orbit_size(std::vector<std::uint32_t>(20, 1)),
            2'432'902'008'176'640'000ull);
  EXPECT_EQ(symmetry::multiset_orbit_size(std::vector<std::uint32_t>(21, 1)), UINT64_MAX);
}

TEST(SymmetryMath, SatAdd) {
  EXPECT_EQ(symmetry::sat_add(1, 2), 3u);
  EXPECT_EQ(symmetry::sat_add(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(symmetry::sat_add(UINT64_MAX - 1, 1), UINT64_MAX);
}

TEST(SymmetryMath, NormalizeClasses) {
  // Members sorted + deduped, singletons dropped, classes ordered by first
  // member.
  auto c = symmetry::normalize_classes({{3, 1, 3}, {2}, {5, 4}}, 6);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(c[1], (std::vector<NodeId>{4, 5}));
  EXPECT_THROW(symmetry::normalize_classes({{0, 1}, {1, 2}}, 3), std::invalid_argument);
  EXPECT_THROW(symmetry::normalize_classes({{0, 7}}, 3), std::invalid_argument);
}

TEST(SymmetryMath, CanonicalKeyIsPermutationInvariantWithinClasses) {
  const std::vector<Hash64> t = {10, 20, 30, 40};
  const std::vector<std::vector<NodeId>> cls = {{1, 2}};
  // Swapping the class members' states preserves the key; permuting states
  // across a class boundary, or having no classes at all, does not.
  EXPECT_EQ(symmetry::canonical_key({10, 20, 30, 40}, cls),
            symmetry::canonical_key({10, 30, 20, 40}, cls));
  EXPECT_NE(symmetry::canonical_key({10, 20, 30, 40}, cls),
            symmetry::canonical_key({40, 20, 30, 10}, cls));
  EXPECT_NE(symmetry::canonical_key(t, cls), symmetry::canonical_key(t, {}));
}

// --- class inference --------------------------------------------------------

// Star: node 0 broadcasts one type to 1..3; members reply to the sender.
std::vector<symmetry::NodeSig> star_sigs() {
  std::vector<symmetry::NodeSig> sigs(4);
  symmetry::RuleSig drv;
  drv.guard = 0;
  drv.goto_state = 1;
  for (NodeId m = 1; m < 4; ++m) drv.sends.push_back({false, m, 0});
  sigs[0].internals.push_back(drv);
  for (NodeId m = 1; m < 4; ++m) {
    symmetry::RuleSig r;
    r.trigger = 0;
    r.guard = 0;
    r.goto_state = 1;
    r.sends.push_back({true, 0, 1});  // reply to sender
    sigs[m].msgs.push_back(r);
  }
  return sigs;
}

TEST(SymmetryInference, StarMembersFormOneClass) {
  auto classes = symmetry::infer_classes(star_sigs());
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<NodeId>{1, 2, 3}));
}

TEST(SymmetryInference, DivergentMemberIsExcluded) {
  auto sigs = star_sigs();
  sigs[2].msgs[0].goto_state = 2;  // node 2 behaves differently
  auto classes = symmetry::infer_classes(sigs);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<NodeId>{1, 3}));
}

TEST(SymmetryInference, CrossSendsBlockMerging) {
  // Members that address each other BY ID are not interchangeable unless
  // the id pattern itself is an automorphism: a chain 1->2->3 is not.
  auto sigs = star_sigs();
  sigs[1].msgs[0].sends.push_back({false, 2, 0});
  sigs[2].msgs[0].sends.push_back({false, 3, 0});
  sigs[3].msgs[0].sends.push_back({false, 1, 0});
  auto classes = symmetry::infer_classes(sigs);
  // The 3-cycle is rotation-symmetric but NOT transposition-symmetric, and
  // the reduction only models full symmetric groups per class.
  EXPECT_TRUE(classes.empty());
}

TEST(SymmetryInference, PaxosNonProposersAreHinted) {
  SystemConfig cfg = paxos::make_config(5, paxos::CoreOptions{}, paxos::DriverConfig{{0}, 1});
  ASSERT_EQ(cfg.symmetric_roles.size(), 1u);
  EXPECT_EQ(cfg.symmetric_roles[0], (std::vector<NodeId>{1, 2, 3, 4}));
  // All-proposer configs have no replicated non-proposer role.
  SystemConfig all = paxos::make_config(3, paxos::CoreOptions{},
                                        paxos::DriverConfig{{0, 1, 2}, 1});
  EXPECT_TRUE(all.symmetric_roles.empty());
}

TEST(SymmetryInference, DslRolesAreInferredAndDsl10WarnsOnAsymmetry) {
  // Replicated workers: identical elaborated tables -> one class, no DSL10.
  const char* symmetric = R"(protocol sym_ok {
  nodes 4;
  role boss = 0;
  role worker = 1 .. n - 1;
  states idle, busy, done;
  messages Go, Done;
  timer kick at boss @ idle -> busy { send Go to worker; }
  on Go at worker @ idle -> busy { send Done to sender; }
  on Done at boss @ busy -> done { }
  invariant spread: never {done} with {busy};
})";
  dsl::LoadResult ok = dsl::load_text(symmetric, "sym_ok.lmc");
  ASSERT_TRUE(ok.ok()) << ok.diags.to_string();
  EXPECT_TRUE(ok.diags.items().empty()) << ok.diags.to_string();
  dsl::CompiledProtocol p = dsl::instantiate(*ok.spec);
  ASSERT_EQ(p.cfg.symmetric_roles.size(), 1u);
  EXPECT_EQ(p.cfg.symmetric_roles[0], (std::vector<NodeId>{1, 2, 3}));

  // A chain role addresses successors positionally: after elaboration each
  // link's send targets a DIFFERENT concrete id, so the members are not
  // interchangeable and the role hint earns a DSL10 warning — but the
  // protocol stays perfectly compilable.
  const char* chain = R"(protocol sym_chain {
  nodes 4;
  role head = 0;
  role link = 1 .. n - 2;
  role tail = n - 1;
  states idle, seen;
  messages Tok;
  timer kick at head @ idle -> seen { send Tok to next; }
  on Tok at link @ idle -> seen { send Tok to next; }
  on Tok at tail @ idle -> seen { }
  invariant one: never {seen} with {idle};
})";
  dsl::LoadResult warned = dsl::load_text(chain, "sym_chain.lmc");
  ASSERT_TRUE(warned.ok()) << warned.diags.to_string();
  const bool has_dsl10 =
      std::any_of(warned.diags.items().begin(), warned.diags.items().end(),
                  [](const dsl::Diag& d) { return d.code == "DSL10"; });
  EXPECT_TRUE(has_dsl10) << warned.diags.to_string();
}

// --- canonicalizer ----------------------------------------------------------

TEST(CanonicalizerTest, OrbitKeyStableUnderUniverseGrowthAndIdempotent) {
  Canonicalizer canon({{1, 2, 3}}, 4);
  EXPECT_EQ(canon.class_of(0), -1);
  EXPECT_EQ(canon.class_of(2), 0);
  EXPECT_EQ(canon.member_pos(3), 2u);
  ASSERT_EQ(canon.free_nodes(), (std::vector<NodeId>{0}));

  EXPECT_TRUE(canon.add_state(1, 100));
  EXPECT_TRUE(canon.add_state(2, 100));
  EXPECT_TRUE(canon.add_state(3, 200));
  EXPECT_FALSE(canon.add_state(2, 100));  // duplicate (hash, member)
  EXPECT_FALSE(canon.add_state(0, 999));  // free node: universe no-op...
  EXPECT_EQ(canon.universe(0).entries().size(), 2u);

  // counts over the sorted universe {100 -> mask 0b011, 200 -> mask 0b100}.
  const std::vector<std::pair<NodeId, Hash64>> fixed = {{0, 7}};
  const Hash64 key = canon.orbit_key(fixed, {{2, 1}});
  EXPECT_EQ(key, canon.orbit_key(fixed, {{2, 1}}));  // idempotent
  EXPECT_EQ(canon.orbit_size({{2, 1}}), 3u);
  EXPECT_EQ(canon.orbit_size({{3, 0}}), 1u);

  // Growing the universe must not move existing keys (entry hashes are
  // folded, not indices) — counts just gain a zero column.
  EXPECT_TRUE(canon.add_state(1, 50));  // sorts BEFORE 100
  EXPECT_EQ(canon.universe(0).entries().size(), 3u);
  EXPECT_EQ(canon.orbit_key(fixed, {{0, 2, 1}}), key);
}

TEST(CanonicalizerTest, SeenSetMarksAndRestores) {
  Canonicalizer canon({{0, 1}}, 2);
  EXPECT_FALSE(canon.seen_or_mark(11));
  EXPECT_FALSE(canon.seen_or_mark(7));
  EXPECT_TRUE(canon.seen_or_mark(11));
  EXPECT_EQ(canon.seen_count(), 2u);
  EXPECT_EQ(canon.seen_sorted(), (std::vector<Hash64>{7, 11}));

  Canonicalizer fresh({{0, 1}}, 2);
  fresh.restore_seen(canon.seen_sorted());
  EXPECT_TRUE(fresh.seen_or_mark(7));
  EXPECT_TRUE(fresh.seen_or_mark(11));
  EXPECT_FALSE(fresh.seen_or_mark(13));
}

TEST(CanonicalizerTest, EnumerationWalksExactlyTheRealizableMultisets) {
  // Universe: h=10 held by members {0,1}, h=20 by members {0,1,2}.
  Canonicalizer canon({{5, 6, 7}}, 8);
  canon.add_state(5, 10);
  canon.add_state(6, 10);
  canon.add_state(5, 20);
  canon.add_state(6, 20);
  canon.add_state(7, 20);

  std::vector<std::vector<std::uint32_t>> seen;
  EXPECT_TRUE(canon.for_each_multiset(0, -1, [&](const std::vector<std::uint32_t>& m) {
    seen.push_back(m);
    return true;
  }));
  // Size-3 multisets over {10, 20}: (3,0) needs three holders of 10 — only
  // two exist, so Kuhn prunes it; everything else is realizable.
  std::vector<std::vector<std::uint32_t>> expect = {{0, 3}, {1, 2}, {2, 1}};
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, expect);

  // forced = only multisets using entry 0 (h=10).
  std::size_t forced_count = 0;
  EXPECT_TRUE(canon.for_each_multiset(0, 0, [&](const std::vector<std::uint32_t>& m) {
    EXPECT_GT(m[0], 0u);
    ++forced_count;
    return true;
  }));
  EXPECT_EQ(forced_count, 2u);

  // Concretization: (2,1) pins members 0,1 to h=10, member 2 to h=20 — a
  // single perfect assignment; (1,2) admits two (member 0 or 1 takes h=10).
  EXPECT_EQ(canon.first_assignment(0, {2, 1}), (std::vector<std::size_t>{0, 0, 1}));
  std::size_t assignments = 0;
  EXPECT_TRUE(canon.for_each_assignment(0, {1, 2}, [&](const std::vector<std::size_t>&) {
    ++assignments;
    return true;
  }));
  EXPECT_EQ(assignments, 2u);
}

// --- checker integration ----------------------------------------------------

// Two structurally different nodes: kAuto must resolve to INACTIVE and the
// run must be byte-for-byte the plain run (the checkpoint then has no
// symmetry section, so normalized bytes compare equal across modes).
dfuzz::ProtoSpec asymmetric_spec() {
  dfuzz::ProtoSpec s;
  s.seed = 1;
  s.num_nodes = 2;
  s.num_states = 3;
  s.num_msg_types = 1;
  s.internals.push_back({0, 0, {1, {{1, 0, 5}}, false}});
  s.msg_rules.push_back({1, 0, 0, {2, {}, false}});
  s.invariant = {1, 2, false};
  return s;
}

TEST(SymmetryChecker, AsymmetricProtocolIsAByteIdenticalNoOp) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(asymmetric_spec());
  EXPECT_TRUE(p.cfg.symmetric_roles.empty());

  LocalMcOptions off;
  off.stop_on_confirmed = false;
  LocalModelChecker a(p.cfg, p.invariant.get(), off);
  a.run_from_initial();

  LocalMcOptions on = off;
  on.symmetry.mode = SymmetryMode::kAuto;
  LocalModelChecker b(p.cfg, p.invariant.get(), on);
  b.run_from_initial();

  EXPECT_EQ(b.symmetry_stats().active, 0u);
  EXPECT_TRUE(b.symmetry_classes().empty());
  EXPECT_EQ(dfuzz::normalized_checkpoint_bytes(a.checkpoint_bytes()),
            dfuzz::normalized_checkpoint_bytes(b.checkpoint_bytes()));
}

// Violation-bearing spec whose hinted "class" is NOT actually symmetric:
// node 2 pokes node 0, node 1 does not. The reduction must still confirm
// exactly the unreduced violations (up to the permutation the wrong hint
// claims) — hints steer enumeration, soundness never depends on them.
dfuzz::ProtoSpec wrong_hint_spec() {
  dfuzz::ProtoSpec s;
  s.seed = 2;
  s.num_nodes = 3;
  s.num_states = 2;
  s.num_msg_types = 1;
  s.internals.push_back({1, 0, {1, {}, false}});
  s.internals.push_back({2, 0, {1, {{0, 0, 9}}, false}});
  s.invariant = {1, 1, false};  // two distinct nodes in s1
  return s;
}

TEST(SymmetryChecker, WrongExplicitHintIsStillSound) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(wrong_hint_spec());

  LocalMcOptions off;
  off.stop_on_confirmed = false;
  LocalModelChecker a(p.cfg, p.invariant.get(), off);
  a.run_from_initial();
  ASSERT_TRUE(a.stats().completed);
  ASSERT_GT(a.stats().confirmed_violations, 0u);

  LocalMcOptions on = off;
  on.symmetry.mode = SymmetryMode::kExplicit;
  on.symmetry.classes = {{1, 2}};  // wrong: 1 and 2 do not mirror each other
  LocalModelChecker b(p.cfg, p.invariant.get(), on);
  b.run_from_initial();
  ASSERT_TRUE(b.stats().completed);
  ASSERT_EQ(b.symmetry_stats().active, 1u);

  auto canon_set = [&](const LocalModelChecker& mc) {
    std::vector<Hash64> keys;
    for (const LocalViolation& v : mc.violations())
      if (v.confirmed) keys.push_back(symmetry::canonical_key(v.state_hashes, {{1, 2}}));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  };
  EXPECT_EQ(canon_set(a), canon_set(b));
}

TEST(SymmetryChecker, MalformedExplicitClassesThrow) {
  dfuzz::GeneratedProtocol p = dfuzz::instantiate(wrong_hint_spec());
  LocalMcOptions opt;
  opt.symmetry.mode = SymmetryMode::kExplicit;
  opt.symmetry.classes = {{0, 1}, {1, 2}};  // overlapping
  LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
  EXPECT_THROW(mc.run_from_initial(), std::invalid_argument);
}

TEST(SymmetryChecker, ReductionShrinksExploredCombinationsOnSymmetricSpecs) {
  // On a protocol with a genuine replicated role the orbit count must be
  // strictly below the ordered-combination count, with the gap accounted
  // for by the represented-arrangements counter.
  std::size_t reduced_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_symmetric_spec(seed));
    LocalMcOptions off;
    off.stop_on_confirmed = false;
    LocalModelChecker a(p.cfg, p.invariant.get(), off);
    a.run_from_initial();
    ASSERT_TRUE(a.stats().completed) << "seed " << seed;

    LocalMcOptions on = off;
    on.symmetry.mode = SymmetryMode::kAuto;
    LocalModelChecker b(p.cfg, p.invariant.get(), on);
    b.run_from_initial();
    ASSERT_TRUE(b.stats().completed) << "seed " << seed;
    if (b.symmetry_stats().active == 0) continue;

    EXPECT_LE(b.stats().system_states, a.stats().system_states) << "seed " << seed;
    EXPECT_EQ(b.stats().system_states, b.symmetry_stats().orbits) << "seed " << seed;
    EXPECT_GE(b.symmetry_stats().represented, a.stats().system_states) << "seed " << seed;
    if (b.stats().system_states < a.stats().system_states) ++reduced_runs;
  }
  EXPECT_GT(reduced_runs, 0u) << "no symmetric seed actually reduced anything";
}

// --- differential battery ---------------------------------------------------

TEST(SymmetryDifferential, FrozenCorpusAgreesUpToPermutation) {
  // Every corpus seed (1..50 + pinned regressions) through the oracle's
  // symmetry mode: reduced and unreduced confirmed sets must match up to
  // within-class permutation, and reduced witnesses must replay.
  dfuzz::OracleOptions oopt;
  oopt.check_symmetry = true;
  dfuzz::DiffOracle oracle(oopt);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 1; i <= 50; ++i) seeds.push_back(i);
  for (std::uint64_t s : {97ull, 171ull, 664ull}) seeds.push_back(s);

  std::uint64_t sym_checked = 0;
  for (std::uint64_t seed : seeds) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_spec(seed));
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << "seed " << seed << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.sym_checked) ++sym_checked;
  }
  EXPECT_GT(sym_checked, 0u) << "no corpus seed activated the reduction; gate is vacuous";
}

TEST(SymmetryDifferential, SymmetricGeneratorSweepAgreesUpToPermutation) {
  // Purpose-built replicated-role protocols: most seeds must activate the
  // reduction, and the sweep must cover violation-bearing specs too.
  dfuzz::OracleOptions oopt;
  oopt.check_symmetry = true;
  dfuzz::DiffOracle oracle(oopt);

  std::uint64_t sym_checked = 0, with_violations = 0, orbits = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    dfuzz::ProtoSpec spec = dfuzz::generate_symmetric_spec(seed);
    ASSERT_EQ(dfuzz::validate_spec(spec), "") << "seed " << seed;
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(spec);
    dfuzz::OracleReport rep = oracle.check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << "seed " << seed << ": " << rep.detail;
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": [" << dfuzz::to_string(rep.failure) << "] "
                        << rep.detail;
    if (rep.sym_checked) ++sym_checked;
    if (rep.gmc_violation_tuples > 0) ++with_violations;
    orbits += rep.sym_orbits;
  }
  EXPECT_GT(sym_checked, 15u) << "the symmetric generator should activate on most seeds";
  EXPECT_GT(with_violations, 0u);
  EXPECT_GT(orbits, 0u);
}

// --- checkpoint/resume ------------------------------------------------------

std::string scratch_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("lmc_symtest_") + tag + ".ckpt"))
      .string();
}

TEST(SymmetryResume, InterruptedRunResumesByteIdentically) {
  // Find a symmetric seed with enough transitions to interrupt mid-way.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_symmetric_spec(seed));
    LocalMcOptions opt;
    opt.stop_on_confirmed = false;
    opt.symmetry.mode = SymmetryMode::kAuto;
    LocalModelChecker straight(p.cfg, p.invariant.get(), opt);
    straight.run_from_initial();
    ASSERT_TRUE(straight.stats().completed);
    if (straight.symmetry_stats().active == 0 || straight.stats().transitions < 8) continue;

    LocalMcOptions half = opt;
    half.max_transitions = straight.stats().transitions / 2;
    LocalModelChecker interrupted(p.cfg, p.invariant.get(), half);
    interrupted.run_from_initial();
    const std::string path = scratch_path("resume");
    interrupted.save_checkpoint(path);

    LocalModelChecker resumed(p.cfg, p.invariant.get(), opt);
    resumed.run_resumed(path);
    std::remove(path.c_str());
    ASSERT_TRUE(resumed.stats().completed);
    EXPECT_EQ(resumed.symmetry_stats(), straight.symmetry_stats());
    EXPECT_EQ(dfuzz::normalized_checkpoint_bytes(resumed.checkpoint_bytes()),
              dfuzz::normalized_checkpoint_bytes(straight.checkpoint_bytes()));
    return;  // one qualifying seed is the test
  }
  FAIL() << "no symmetric seed with an interruptible run found";
}

TEST(SymmetryResume, ModeMismatchOnLoadThrows) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_symmetric_spec(seed));
    LocalMcOptions on;
    on.stop_on_confirmed = false;
    on.symmetry.mode = SymmetryMode::kAuto;
    LocalModelChecker writer(p.cfg, p.invariant.get(), on);
    writer.run_from_initial();
    if (writer.symmetry_stats().active == 0) continue;
    const std::string path = scratch_path("mismatch");
    writer.save_checkpoint(path);

    // A reduced checkpoint resumed without the reduction (or vice versa)
    // would splice an orbit seen-set into an ordered-combination run:
    // refuse loudly instead of silently under- or over-exploring.
    LocalMcOptions off_opt;
    off_opt.stop_on_confirmed = false;
    LocalModelChecker off_mc(p.cfg, p.invariant.get(), off_opt);
    EXPECT_THROW(off_mc.load_checkpoint(path), CheckpointError);

    LocalModelChecker off_writer(p.cfg, p.invariant.get(), off_opt);
    off_writer.run_from_initial();
    off_writer.save_checkpoint(path);
    LocalModelChecker on_mc(p.cfg, p.invariant.get(), on);
    EXPECT_THROW(on_mc.load_checkpoint(path), CheckpointError);
    std::remove(path.c_str());
    return;
  }
  FAIL() << "no symmetric seed activated the reduction";
}

TEST(SymmetryResume, InspectSummarizesSymmetrySection) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    dfuzz::GeneratedProtocol p = dfuzz::instantiate(dfuzz::generate_symmetric_spec(seed));
    LocalMcOptions on;
    on.stop_on_confirmed = false;
    on.symmetry.mode = SymmetryMode::kAuto;
    LocalModelChecker writer(p.cfg, p.invariant.get(), on);
    writer.run_from_initial();
    if (writer.symmetry_stats().active == 0) continue;

    // The cheap inspection path must surface the section 13 summary without
    // a full decode, matching the live counters it was written from.
    const CheckpointInfo info = inspect_checkpoint(writer.checkpoint_bytes());
    EXPECT_TRUE(info.has_symmetry);
    EXPECT_EQ(info.sym_orbits, writer.symmetry_stats().orbits);
    EXPECT_EQ(info.sym_classes, writer.symmetry_stats().classes);
    EXPECT_EQ(info.sym_represented, writer.symmetry_stats().represented);
    EXPECT_GT(info.sym_seen, 0u);

    LocalMcOptions off_opt;
    off_opt.stop_on_confirmed = false;
    LocalModelChecker plain(p.cfg, p.invariant.get(), off_opt);
    plain.run_from_initial();
    EXPECT_FALSE(inspect_checkpoint(plain.checkpoint_bytes()).has_symmetry);
    return;
  }
  FAIL() << "no symmetric seed activated the reduction";
}

}  // namespace
}  // namespace lmc
