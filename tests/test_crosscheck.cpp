// Cross-checker properties (DESIGN.md §7), driven through the differential
// oracle (src/dfuzz/oracle.*). For a family of hand-written protocols the
// oracle asserts, against a completed global baseline:
//  1. completeness — every node state inside any globally visited system
//     state is traversed by LMC, and every global invariant violation is
//     among LMC's CONFIRMED violations;
//  2. soundness — every confirmed violation names a globally reached system
//     state whose invariant really fails, and its witness replays;
//  3. verifier completeness/soundness — a sample of globally reachable
//     tuples (every 7th, sorted by hash) verifies sound and replays;
//  4. persistence — interrupting mid-run and resuming from the checkpoint
//     reproduces the straight run byte-for-byte.
#include <gtest/gtest.h>

#include <memory>

#include "dfuzz/oracle.hpp"
#include "protocols/paxos.hpp"
#include "protocols/randtree.hpp"
#include "protocols/tree.hpp"

namespace lmc {
namespace {

struct Scenario {
  std::string name;
  SystemConfig cfg;
  std::shared_ptr<const Invariant> invariant;  ///< null: completeness/audit only
  bool expect_violation = false;
  std::uint32_t audit_every = 7;  ///< small state spaces audit densely
};

// Keep the topology alive for the tree scenario.
const tree::Topology& shared_topo() {
  static tree::Topology t = tree::fig2_topology();
  return t;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  v.push_back({"tree", tree::make_config(shared_topo()),
               std::make_shared<tree::CausalDeliveryInvariant>(shared_topo()), false,
               /*audit_every=*/1});
  v.push_back({"randtree", randtree::make_config(4, randtree::Options{}),
               std::make_shared<randtree::DisjointInvariant>(), false});
  v.push_back({"randtree_bug", randtree::make_config(4, randtree::Options{2, true}),
               std::make_shared<randtree::DisjointInvariant>(), true});
  v.push_back({"paxos_1p",
               paxos::make_config(3, paxos::CoreOptions{}, paxos::DriverConfig{{0}, 1}),
               std::shared_ptr<const Invariant>(paxos::make_agreement_invariant()), false});
  v.push_back({"paxos_1p_bug",
               paxos::make_config(3, paxos::CoreOptions{0, true}, paxos::DriverConfig{{0}, 1}),
               std::shared_ptr<const Invariant>(paxos::make_agreement_invariant()), false});
  // paxos_1p_bug: the acceptor bug needs interleaved proposals to bite; with
  // one proposer and one proposal the global search proves the space clean,
  // and the oracle checks LMC agrees (expect_violation stays false).
  return v;
}

class CrossCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossCheck, OracleAgreesWithGlobalBaseline) {
  Scenario sc = scenarios()[GetParam()];

  dfuzz::OracleOptions opt;
  opt.gmc_max_transitions = 5'000'000;
  opt.gmc_time_budget_s = 120;
  opt.lmc_time_budget_s = 120;
  opt.audit_every = sc.audit_every;  // every k-th reachable tuple keeps runtime sane
  dfuzz::OracleReport rep = dfuzz::DiffOracle(opt).check(sc.cfg, sc.invariant.get());

  ASSERT_TRUE(rep.conclusive) << sc.name << ": " << rep.detail;
  EXPECT_TRUE(rep.ok) << sc.name << ": [" << dfuzz::to_string(rep.failure) << "] " << rep.detail;
  EXPECT_GT(rep.tuples_audited, 0u) << sc.name;
  if (sc.expect_violation) {
    EXPECT_GT(rep.gmc_violation_tuples, 0u) << sc.name;
    EXPECT_GT(rep.lmc_confirmed, 0u) << sc.name;
    EXPECT_GT(rep.witnesses_replayed, 0u) << sc.name;
  } else {
    EXPECT_EQ(rep.gmc_violation_tuples, 0u) << sc.name;
    EXPECT_EQ(rep.lmc_confirmed, 0u) << sc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, CrossCheck, ::testing::Values(0u, 1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<std::size_t>& pinfo) {
                           return scenarios()[pinfo.param].name;
                         });

}  // namespace
}  // namespace lmc
