// Cross-checker properties (DESIGN.md §7): for a family of protocols,
//  1. completeness — every node state inside any system state the GLOBAL
//     checker visits is also traversed by LMC;
//  2. verifier completeness — globally reached system states are valid by
//     construction, so the soundness verifier must accept them;
//  3. verifier soundness — combinations the verifier accepts replay through
//     the real handlers to exactly the claimed states.
#include <gtest/gtest.h>

#include <memory>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "mc/soundness.hpp"
#include "protocols/paxos.hpp"
#include "protocols/randtree.hpp"
#include "protocols/tree.hpp"

namespace lmc {
namespace {

struct Scenario {
  std::string name;
  SystemConfig cfg;
};

// Keep the topology alive for the tree scenario.
const tree::Topology& shared_topo() {
  static tree::Topology t = tree::fig2_topology();
  return t;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> v;
  v.push_back({"tree", tree::make_config(shared_topo())});
  v.push_back({"randtree", randtree::make_config(4, randtree::Options{})});
  v.push_back({"randtree_bug", randtree::make_config(4, randtree::Options{2, true})});
  v.push_back({"paxos_1p", paxos::make_config(3, paxos::CoreOptions{},
                                              paxos::DriverConfig{{0}, 1})});
  v.push_back({"paxos_1p_bug", paxos::make_config(3, paxos::CoreOptions{0, true},
                                                  paxos::DriverConfig{{0}, 1})});
  return v;
}

class CrossCheck : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossCheck, GlobalStatesAreLmcCombinations) {
  Scenario sc = scenarios()[GetParam()];

  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  gopt.assert_is_violation = false;  // buggy variants may trip local asserts
  gopt.max_transitions = 5'000'000;
  gopt.time_budget_s = 120;
  GlobalModelChecker g(sc.cfg, nullptr, gopt);
  g.run_from_initial();
  ASSERT_TRUE(g.stats().completed) << sc.name;

  LocalMcOptions lopt;
  lopt.enable_system_states = false;
  lopt.time_budget_s = 120;
  LocalModelChecker l(sc.cfg, nullptr, lopt);
  l.run_from_initial();
  ASSERT_TRUE(l.stats().completed) << sc.name;

  // 1. Completeness of the local exploration.
  for (const auto& [h, tuple] : g.system_state_tuples()) {
    (void)h;
    for (NodeId n = 0; n < sc.cfg.num_nodes; ++n)
      ASSERT_NE(l.store().find(n, tuple[n]), UINT32_MAX)
          << sc.name << ": node " << n << " state reached globally but not locally";
  }

  // 2. Verifier completeness + 3. soundness, on a sample of global states.
  SoundnessVerifier verifier(l.store(), l.initial_in_flight_hashes(), {});
  std::size_t sampled = 0;
  for (const auto& [h, tuple] : g.system_state_tuples()) {
    (void)h;
    if (++sampled % 7 != 0) continue;  // every 7th state keeps runtime sane
    std::vector<std::uint32_t> combo;
    for (NodeId n = 0; n < sc.cfg.num_nodes; ++n) combo.push_back(l.store().find(n, tuple[n]));
    SoundnessResult res = verifier.verify(combo);
    ASSERT_TRUE(res.sound) << sc.name << ": globally reachable state rejected as unsound";

    std::vector<Hash64> expected;
    for (NodeId n = 0; n < sc.cfg.num_nodes; ++n) expected.push_back(tuple[n]);
    ReplayResult rep = replay_schedule(sc.cfg, l.initial_nodes(), l.initial_in_flight(),
                                       res.schedule, l.events(), expected);
    ASSERT_TRUE(rep.ok) << sc.name << ": " << rep.error;
  }
  EXPECT_GT(sampled, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, CrossCheck, ::testing::Values(0u, 1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return scenarios()[info.param].name;
                         });

}  // namespace
}  // namespace lmc
