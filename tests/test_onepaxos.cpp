// 1Paxos + PaxosUtility (§5.6): protocol behaviour, the "++" initialization
// bug, leader change through the utility log, and the checker rediscovering
// the bug from the paper's live state.
#include <gtest/gtest.h>

#include <functional>

#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/onepaxos.hpp"

namespace lmc {
namespace {

using onepaxos::OnePaxosNode;
using onepaxos::Options;

const OnePaxosNode& as_node(const std::unique_ptr<StateMachine>& m) {
  return static_cast<const OnePaxosNode&>(*m);
}

void fire(const SystemConfig& cfg, std::vector<Blob>& nodes, NodeId n, std::uint32_t kind,
          Blob arg = {}) {
  ExecResult r = exec_internal(cfg, n, nodes[n], {kind, std::move(arg)});
  ASSERT_FALSE(r.assert_failed) << r.assert_msg;
  nodes[n] = std::move(r.state);
}

void fire_sending(const SystemConfig& cfg, std::vector<Blob>& nodes,
                  std::vector<Message>& flight, NodeId n, std::uint32_t kind) {
  ExecResult r = exec_internal(cfg, n, nodes[n], {kind, {}});
  ASSERT_FALSE(r.assert_failed) << r.assert_msg;
  nodes[n] = std::move(r.state);
  for (Message& m : r.sent) flight.push_back(std::move(m));
}

/// FIFO-deliver every in-flight message, discarding those matching `drop`.
void pump(const SystemConfig& cfg, std::vector<Blob>& nodes, std::vector<Message>& flight,
          const std::function<bool(const Message&)>& drop) {
  while (!flight.empty()) {
    Message m = flight.front();
    flight.erase(flight.begin());
    if (drop(m)) continue;
    ExecResult r = exec_message(cfg, m.dst, nodes[m.dst], m);
    ASSERT_FALSE(r.assert_failed) << r.assert_msg;
    nodes[m.dst] = std::move(r.state);
    for (Message& out : r.sent) flight.push_back(std::move(out));
  }
}

TEST(OnePaxos, CorrectInitSeparatesLeaderAndAcceptor) {
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);
  for (NodeId n = 0; n < 3; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(as_node(m).leader(), 0u);
    EXPECT_EQ(as_node(m).acceptor(), 1u);  // ++members.begin(): second member
  }
}

TEST(OnePaxos, BuggyInitAliasesAcceptorToLeader) {
  SystemConfig cfg = onepaxos::make_config(3, Options{.bug_postincrement_init = true});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);
  for (NodeId n = 0; n < 3; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(as_node(m).leader(), 0u);
    EXPECT_EQ(as_node(m).acceptor(), 0u) << "*(members.begin()++) returns the first member";
  }
}

TEST(OnePaxos, SteadyStateProposalChoosesEverywhere) {
  // Correct variant: leader (node 0) proposes to acceptor (node 1); the
  // Learn broadcast makes everyone choose.
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);
  std::vector<Message> flight;
  // Fire the enabled propose event (its arg carries the picked index).
  bool fired = false;
  for (const InternalEvent& ev : internal_events_of(cfg, 0, nodes[0])) {
    if (ev.kind == onepaxos::kEvPropose) {
      ExecResult r = exec_internal(cfg, 0, nodes[0], ev);
      ASSERT_FALSE(r.assert_failed);
      nodes[0] = std::move(r.state);
      for (Message& m : r.sent) flight.push_back(std::move(m));
      fired = true;
    }
  }
  ASSERT_TRUE(fired);
  pump(cfg, nodes, flight, [](const Message&) { return false; });
  for (NodeId n = 0; n < 3; ++n) {
    auto chosen = onepaxos::chosen_map_of(cfg, n, nodes[n]);
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(chosen[0], 1u);  // leader's value = id + 1
  }
}

TEST(OnePaxos, LeaderChangeThroughUtility) {
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);
  std::vector<Message> flight;
  fire_sending(cfg, nodes, flight, 2, onepaxos::kEvSuspectLeader);
  pump(cfg, nodes, flight, [](const Message&) { return false; });

  auto m2 = machine_from_blob(cfg, 2, nodes[2]);
  EXPECT_EQ(as_node(m2).leader(), 2u);
  EXPECT_TRUE(as_node(m2).believes_leader());
  // New leader obtained the acceptor from the utility fallback: node 1.
  EXPECT_EQ(as_node(m2).acceptor(), 1u);
  // Everyone who learned the entry agrees on the leader.
  auto m0 = machine_from_blob(cfg, 0, nodes[0]);
  EXPECT_EQ(as_node(m0).leader(), 2u);
  EXPECT_FALSE(as_node(m0).believes_leader());
}

TEST(OnePaxos, UtilityLogIsRealPaxos) {
  // The utility layer runs the full Prepare/Accept/Learn protocol: its
  // chosen entries appear in the embedded PaxosCore.
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);
  std::vector<Message> flight;
  fire_sending(cfg, nodes, flight, 2, onepaxos::kEvSuspectLeader);
  pump(cfg, nodes, flight, [](const Message&) { return false; });

  auto m1 = machine_from_blob(cfg, 1, nodes[1]);
  const auto& log = as_node(m1).utility().chosen_map();
  ASSERT_EQ(log.count(0), 1u);
  EXPECT_EQ(onepaxos::entry_kind(log.at(0)), onepaxos::EntryKind::LeaderChange);
  EXPECT_EQ(onepaxos::entry_node(log.at(0)), 2u);
}

// Build the §5.6 live state with the ++ bug: N3 (node 2) campaigns and wins
// leadership while every message to N1 (node 0) is dropped; the new leader
// proposes its value, chosen by nodes 1 and 2. Node 0 still believes it is
// the leader and its cached acceptor is itself (the bug).
std::vector<Blob> build_5_6_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  for (NodeId n = 0; n < 3; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {onepaxos::kEvInit, {}});
    EXPECT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
  }
  auto drop_to_0 = [](const Message& m) { return m.dst == 0; };

  ExecResult r = exec_internal(cfg, 2, nodes[2], {onepaxos::kEvSuspectLeader, {}});
  EXPECT_FALSE(r.assert_failed);
  nodes[2] = std::move(r.state);
  for (Message& m : r.sent) flight.push_back(std::move(m));
  pump(cfg, nodes, flight, drop_to_0);

  // Node 2 is now leader with acceptor node 1; it proposes.
  auto evs = internal_events_of(cfg, 2, nodes[2]);
  bool proposed = false;
  for (const InternalEvent& ev : evs) {
    if (ev.kind == onepaxos::kEvPropose) {
      ExecResult rr = exec_internal(cfg, 2, nodes[2], ev);
      EXPECT_FALSE(rr.assert_failed);
      nodes[2] = std::move(rr.state);
      for (Message& m : rr.sent) flight.push_back(std::move(m));
      proposed = true;
    }
  }
  EXPECT_TRUE(proposed);
  pump(cfg, nodes, flight, drop_to_0);
  return nodes;
}

TEST(OnePaxos, Live56StateMatchesPaperScenario) {
  SystemConfig cfg = onepaxos::make_config(3, Options{.bug_postincrement_init = true});
  auto nodes = build_5_6_live_state(cfg);

  auto m0 = machine_from_blob(cfg, 0, nodes[0]);
  EXPECT_TRUE(as_node(m0).believes_leader()) << "N1 must still assume leadership";
  EXPECT_EQ(as_node(m0).acceptor(), 0u) << "N1's cached acceptor poisoned by the ++ bug";
  EXPECT_TRUE(as_node(m0).chosen_map().empty());

  for (NodeId n : {1u, 2u}) {
    auto chosen = onepaxos::chosen_map_of(cfg, n, nodes[n]);
    ASSERT_EQ(chosen.size(), 1u) << "node " << n;
    EXPECT_EQ(chosen[0], 3u);  // v3 = node2's id + 1
  }
}

TEST(OnePaxos, PlusPlusBugFoundFromLiveState) {
  SystemConfig cfg = onepaxos::make_config(3, Options{.bug_postincrement_init = true});
  auto inv = onepaxos::make_agreement_invariant();
  auto live = build_5_6_live_state(cfg);

  LocalMcOptions opt;
  opt.max_total_depth = 10;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});

  ASSERT_GE(mc.stats().confirmed_violations, 1u) << "the ++ bug must be rediscovered";
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);

  // The violating state: node 0 chose v1 (its own value) for the index the
  // others chose v3 for.
  auto chosen0 = onepaxos::chosen_map_of(cfg, 0, v->system_state[0]);
  ASSERT_EQ(chosen0.count(0), 1u);
  EXPECT_EQ(chosen0[0], 1u);

  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(OnePaxos, NoViolationWithoutTheBug) {
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto inv = onepaxos::make_agreement_invariant();
  auto live = build_5_6_live_state(cfg);

  // The correct-variant space is large (cross-branch value mixes produce
  // masses of unsound preliminary violations — the regime §4.3 warns
  // about); bound depth and time and assert there is NO false positive in
  // everything that was checked.
  LocalMcOptions opt;
  opt.max_total_depth = 8;
  opt.use_projection = true;
  opt.time_budget_s = 30;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});
  EXPECT_EQ(mc.stats().confirmed_violations, 0u)
      << "correct init routes node 0's proposal to the real acceptor";
  EXPECT_GT(mc.stats().prelim_violations, 0u)
      << "cross-branch combinations should at least LOOK violating";
}

TEST(OnePaxos, SerializationRoundTrip) {
  SystemConfig cfg = onepaxos::make_config(3, Options{.bug_postincrement_init = true});
  auto nodes = build_5_6_live_state(cfg);
  for (NodeId n = 0; n < 3; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(machine_to_blob(*m), nodes[n]) << "node " << n;
  }
}

TEST(OnePaxos, InsistingProposerGetsExistingValue) {
  // A second Propose for a decided index re-announces the old value (the
  // §4.2 repeated-Chosen pattern).
  SystemConfig cfg = onepaxos::make_config(3, Options{});
  auto nodes = initial_states(cfg);
  for (NodeId n = 0; n < 3; ++n) fire(cfg, nodes, n, onepaxos::kEvInit);

  Writer w;
  w.u64(0);
  Message propose1;
  propose1.dst = 1;
  propose1.src = 0;
  propose1.type = onepaxos::kMsgPropose;
  {
    Writer pw;
    pw.u64(0);
    pw.u64(111);
    propose1.payload = std::move(pw).take();
  }
  ExecResult r1 = exec_message(cfg, 1, nodes[1], propose1);
  nodes[1] = std::move(r1.state);
  ASSERT_EQ(r1.sent.size(), 3u);

  Message propose2 = propose1;
  {
    Writer pw;
    pw.u64(0);
    pw.u64(222);  // different value, same index
    propose2.payload = std::move(pw).take();
  }
  ExecResult r2 = exec_message(cfg, 1, nodes[1], propose2);
  ASSERT_EQ(r2.sent.size(), 3u);
  Reader lr(r2.sent[0].payload);
  EXPECT_EQ(lr.u64(), 0u);    // index
  EXPECT_EQ(lr.u64(), 111u);  // the FIRST accepted value is re-announced
}

}  // namespace
}  // namespace lmc
