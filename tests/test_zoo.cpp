// Protocol zoo acceptance: every examples/zoo/*.lmc must parse, compile and
// validate; every spec's base configuration must pass the full DiffOracle
// cross-check (LMC vs global B-DFS) with zero disagreements; `expect
// violation` annotations must match what the checkers find, and buggy
// variants must actually exercise witness replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dfuzz/oracle.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "mc/local_mc.hpp"

namespace lmc::dsl {
namespace {

namespace fs = std::filesystem;

// Set by tests/CMakeLists.txt.
const std::string kZooDir = LMC_ZOO_DIR;

std::vector<std::string> zoo_files() {
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(kZooDir))
    if (e.path().extension() == ".lmc") files.push_back(e.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Zoo, DirectoryHasTheFourFamilies) {
  std::vector<std::string> files = zoo_files();
  ASSERT_GE(files.size(), 8u);
  for (const char* family : {"raft_election", "twophase", "chain_repl", "gossip"}) {
    bool found = std::any_of(files.begin(), files.end(), [&](const std::string& f) {
      return f.find(family) != std::string::npos;
    });
    EXPECT_TRUE(found) << "no zoo spec for family " << family;
  }
}

TEST(Zoo, EverySpecCompilesWithScenariosAndInvariants) {
  for (const std::string& file : zoo_files()) {
    SCOPED_TRACE(file);
    LoadResult r = load_file(file);
    ASSERT_TRUE(r.ok()) << r.diags.to_string();
    EXPECT_EQ(validate(*r.spec), "");
    EXPECT_FALSE(r.spec->invariants.empty());
    // Each zoo protocol ships a seeded lossy/timer scenario matrix.
    EXPECT_GE(r.spec->scenarios.size(), 2u);
    bool has_lossy = std::any_of(r.spec->scenarios.begin(), r.spec->scenarios.end(),
                                 [](const Scenario& s) { return s.drop_pct > 0; });
    EXPECT_TRUE(has_lossy);
    // Canonical emission of a zoo spec reloads to the identical spec.
    LoadResult r2 = load_text(to_lmc_text(*r.spec), file + ".canonical");
    ASSERT_TRUE(r2.ok()) << r2.diags.to_string();
    EXPECT_EQ(*r2.spec, *r.spec);
  }
}

TEST(Zoo, BaseConfigsPassDiffOracleAndMatchExpectations) {
  std::map<std::string, std::uint64_t> confirmed_by_file;
  for (const std::string& file : zoo_files()) {
    SCOPED_TRACE(file);
    LoadResult r = load_file(file);
    ASSERT_TRUE(r.ok()) << r.diags.to_string();
    CompiledProtocol p = instantiate(*r.spec);

    dfuzz::OracleOptions opt;
    opt.num_threads = 2;
    dfuzz::OracleReport rep = dfuzz::DiffOracle(opt).check(p.cfg, p.invariant.get());
    EXPECT_TRUE(rep.ok) << dfuzz::to_string(rep.failure) << ": " << rep.detail;
    EXPECT_TRUE(rep.conclusive) << rep.detail;
    EXPECT_EQ(r.spec->expect_violation, rep.lmc_confirmed > 0)
        << "confirmed=" << rep.lmc_confirmed;
    if (r.spec->expect_violation) {
      // Buggy variants must exercise the replay path, not just the search.
      EXPECT_GT(rep.witnesses_replayed, 0u);
    }
    confirmed_by_file[fs::path(file).filename().string()] = rep.lmc_confirmed;
  }
  // Pin the violation counts of the seeded buggy variants: a semantic
  // change to a zoo protocol (or to the checkers) must move these on
  // purpose.
  EXPECT_EQ(confirmed_by_file["raft_election_doublevote.lmc"], 24u);
  EXPECT_EQ(confirmed_by_file["twophase_early_commit.lmc"], 4u);
  EXPECT_EQ(confirmed_by_file["chain_repl_ack_early.lmc"], 2u);
  EXPECT_EQ(confirmed_by_file["gossip_split_brain.lmc"], 3u);
}

TEST(Zoo, ThreadCountByteIdenticalAcrossTheZoo) {
  // Work-stealing phase 1 (DESIGN.md §12): every zoo spec explored with 1
  // and 8 threads must leave the checker byte-identical once wall-clock
  // stats (and the resume segment stamp) are normalized away.
  for (const std::string& file : zoo_files()) {
    SCOPED_TRACE(file);
    LoadResult r = load_file(file);
    ASSERT_TRUE(r.ok()) << r.diags.to_string();
    CompiledProtocol p = instantiate(*r.spec);

    Blob base;
    for (unsigned threads : {1u, 8u}) {
      LocalMcOptions opt;
      opt.stop_on_confirmed = false;
      opt.num_threads = threads;
      opt.time_budget_s = 300;
      LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
      mc.run_from_initial();
      ASSERT_TRUE(mc.stats().completed) << threads << " threads";
      Blob norm = dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes());
      if (threads == 1)
        base = std::move(norm);
      else
        EXPECT_EQ(base, norm) << "checker state diverged at " << threads << " threads";
    }
  }
}

TEST(Zoo, SymmetryDifferentialAcrossTheZoo) {
  // Reduced-vs-unreduced differential over every zoo spec: the oracle
  // re-runs LMC with the reduction on and demands the confirmed sets agree
  // up to role permutation, with the reduced witnesses replayed. Specs
  // whose roles are not interchangeable exercise the silent-no-op path.
  std::uint64_t sym_checked = 0;
  for (const std::string& file : zoo_files()) {
    SCOPED_TRACE(file);
    LoadResult r = load_file(file);
    ASSERT_TRUE(r.ok()) << r.diags.to_string();
    CompiledProtocol p = instantiate(*r.spec);

    dfuzz::OracleOptions opt;
    opt.check_symmetry = true;
    dfuzz::OracleReport rep = dfuzz::DiffOracle(opt).check(p.cfg, p.invariant.get());
    ASSERT_TRUE(rep.conclusive) << rep.detail;
    ASSERT_TRUE(rep.ok) << dfuzz::to_string(rep.failure) << ": " << rep.detail;
    if (rep.sym_checked) ++sym_checked;
  }
  EXPECT_GT(sym_checked, 0u) << "no zoo spec activated the reduction; the gate is vacuous";
}

TEST(Zoo, ThreadCountByteIdenticalWithSymmetry) {
  // The same gate with the symmetry reduction on (DESIGN.md §13). kAuto
  // activates wherever the compiler inferred interchangeable roles and the
  // spec's invariants are unordered; elsewhere it must behave as a no-op —
  // either way the normalized checkpoint must not depend on thread count.
  std::uint64_t active_specs = 0;
  for (const std::string& file : zoo_files()) {
    SCOPED_TRACE(file);
    LoadResult r = load_file(file);
    ASSERT_TRUE(r.ok()) << r.diags.to_string();
    CompiledProtocol p = instantiate(*r.spec);

    Blob base;
    for (unsigned threads : {1u, 8u}) {
      LocalMcOptions opt;
      opt.stop_on_confirmed = false;
      opt.num_threads = threads;
      opt.time_budget_s = 300;
      opt.symmetry.mode = symmetry::SymmetryMode::kAuto;
      LocalModelChecker mc(p.cfg, p.invariant.get(), opt);
      mc.run_from_initial();
      ASSERT_TRUE(mc.stats().completed) << threads << " threads";
      if (threads == 1 && mc.symmetry_stats().active != 0) ++active_specs;
      Blob norm = dfuzz::normalized_checkpoint_bytes(mc.checkpoint_bytes());
      if (threads == 1)
        base = std::move(norm);
      else
        EXPECT_EQ(base, norm) << "reduced checker state diverged at " << threads << " threads";
    }
  }
  EXPECT_GT(active_specs, 0u) << "no zoo spec activated the reduction; the gate is vacuous";
}

}  // namespace
}  // namespace lmc::dsl
