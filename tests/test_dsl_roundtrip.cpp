// ProtoGen <-> .lmc round-trip: the frozen 53-seed dfuzz corpus (1..50 plus
// the historical regression seeds 97, 171, 664) must map through
// from_proto -> to_lmc_text -> parse/compile -> to_proto back to the exact
// same rule table, and the re-parsed protocol must explore identically —
// byte-identical normalized LMC checkpoints at 1 and 8 threads. Also covers
// the repro artifact writer that lmc_fuzz --out-dir goes through.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dfuzz/artifacts.hpp"
#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "dfuzz/shrink.hpp"
#include "dsl/bridge.hpp"
#include "dsl/loader.hpp"
#include "mc/local_mc.hpp"
#include "runtime/serialize.hpp"

namespace lmc::dfuzz {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint64_t> corpus_seeds() {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 50; ++s) seeds.push_back(s);
  seeds.push_back(97);
  seeds.push_back(171);
  seeds.push_back(664);
  return seeds;
}

// Text round-trip through the bridge is the identity on the canonical rule
// table (shadowed message rules — dead under first-match dispatch — are
// pruned by from_proto; see drop_shadowed_rules).
ProtoSpec roundtrip_through_lmc(const ProtoSpec& spec, const std::string& label) {
  dsl::DslSpec lifted = dsl::from_proto(spec);
  std::string text = dsl::to_lmc_text(lifted);
  dsl::LoadResult r = dsl::load_text(text, label + ".lmc");
  EXPECT_TRUE(r.ok()) << r.diags.to_string() << "\n--- emitted text ---\n" << text;
  if (!r.ok()) return spec;
  std::string err;
  std::optional<ProtoSpec> back = dsl::to_proto(*r.spec, err);
  EXPECT_TRUE(back.has_value()) << err;
  return back ? *back : spec;
}

Blob lmc_checkpoint(const GeneratedProtocol& p, unsigned threads) {
  LocalMcOptions opt;
  opt.stop_on_confirmed = false;
  opt.num_threads = threads;
  LocalModelChecker l(p.cfg, p.invariant.get(), opt);
  l.run_from_initial();
  return normalized_checkpoint_bytes(l.checkpoint_bytes());
}

TEST(DslRoundTrip, FrozenCorpusIsTextRoundTrippable) {
  for (std::uint64_t seed : corpus_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ProtoSpec spec = generate_spec(seed);
    ProtoSpec back = roundtrip_through_lmc(spec, "seed" + std::to_string(seed));
    EXPECT_EQ(back, drop_shadowed_rules(spec));
    // Canonicalization only ever prunes dead message rules.
    EXPECT_LE(back.msg_rules.size(), spec.msg_rules.size());
    EXPECT_EQ(back.internals, spec.internals);
  }
}

TEST(DslRoundTrip, ReparsedSpecsExploreByteIdentically) {
  for (std::uint64_t seed : corpus_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ProtoSpec spec = generate_spec(seed);
    ProtoSpec back = roundtrip_through_lmc(spec, "seed" + std::to_string(seed));
    ASSERT_EQ(back, drop_shadowed_rules(spec));
    // The pruned spec and the ORIGINAL (shadowed rules included) must
    // explore identically — that is what makes the pruning sound.
    GeneratedProtocol orig = instantiate(spec);
    GeneratedProtocol reparsed = instantiate(back);
    Blob base = lmc_checkpoint(orig, 1);
    EXPECT_EQ(lmc_checkpoint(reparsed, 1), base);
    EXPECT_EQ(lmc_checkpoint(orig, 8), base);
    EXPECT_EQ(lmc_checkpoint(reparsed, 8), base);
  }
}

TEST(DslRoundTrip, ArtifactTripleIsWrittenAndLoadable) {
  ProtoSpec spec = generate_spec(664);
  ShrinkResult shrunk;
  shrunk.spec = spec;
  shrunk.report.ok = false;
  shrunk.report.failure = OracleFailure::MissingNodeState;
  shrunk.attempts = 3;
  shrunk.removed = 1;

  fs::path dir = fs::temp_directory_path() / "lmc_artifact_test" / "nested";
  fs::remove_all(dir.parent_path());
  ArtifactPaths paths = write_repro_artifacts(dir.string(), 664, shrunk, spec);

  // .bin deserializes to the shrunk spec (the lmc_fuzz --repro input).
  std::ifstream bin(paths.bin, std::ios::binary);
  ASSERT_TRUE(bin.good()) << paths.bin;
  Blob bytes((std::istreambuf_iterator<char>(bin)), std::istreambuf_iterator<char>());
  Reader rd(bytes);
  EXPECT_EQ(ProtoSpec::deserialize(rd), spec);

  // .txt mentions the original seed for provenance.
  std::ifstream txt(paths.txt);
  ASSERT_TRUE(txt.good()) << paths.txt;
  std::string text((std::istreambuf_iterator<char>(txt)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("664"), std::string::npos);

  // .lmc parses and lowers back to the same spec.
  dsl::LoadResult r = dsl::load_file(paths.lmc);
  ASSERT_TRUE(r.ok()) << r.diags.to_string();
  std::string err;
  std::optional<ProtoSpec> back = dsl::to_proto(*r.spec, err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, drop_shadowed_rules(spec));

  fs::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace lmc::dfuzz
