// PaxosCore protocol unit tests: roles, quorum logic, value adoption, the
// injected §5.5 bug, serialization, and the driver helpers.
#include <gtest/gtest.h>

#include "protocols/paxos.hpp"
#include "protocols/paxos_core.hpp"

namespace lmc::paxos {
namespace {

Message mk(NodeId dst, NodeId src, std::uint32_t type, Blob payload) {
  Message m;
  m.dst = dst;
  m.src = src;
  m.type = type;
  m.payload = std::move(payload);
  return m;
}

struct CoreFixture : ::testing::Test {
  static constexpr std::uint32_t N = 3;
  PaxosCore node(NodeId id, bool bug = false) { return PaxosCore(id, N, CoreOptions{0, bug}); }
};

TEST_F(CoreFixture, BallotOrderingAndUniqueness) {
  EXPECT_LT(make_ballot(1, 0), make_ballot(1, 1));
  EXPECT_LT(make_ballot(1, 2), make_ballot(2, 0));
  EXPECT_NE(make_ballot(3, 1), make_ballot(3, 2));
}

TEST_F(CoreFixture, ProposeBroadcastsPrepareToAll) {
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  ASSERT_EQ(ctx.sent().size(), 3u);  // includes loopback
  for (NodeId d = 0; d < 3; ++d) {
    EXPECT_EQ(ctx.sent()[d].dst, d);
    EXPECT_EQ(ctx.sent()[d].type, kPrepare);
    PrepareMsg pm = PrepareMsg::decode(ctx.sent()[d].payload);
    EXPECT_EQ(pm.index, 0u);
    EXPECT_EQ(pm.ballot, make_ballot(1, 0));
  }
}

TEST_F(CoreFixture, AcceptorPromisesHigherBallotOnly) {
  PaxosCore a = node(1);
  Context ctx(1);
  a.handle_message(mk(1, 0, kPrepare, PrepareMsg{0, make_ballot(2, 0)}.encode()), ctx);
  ASSERT_EQ(ctx.sent().size(), 1u);
  auto resp = PrepareResponseMsg::decode(ctx.sent()[0].payload);
  EXPECT_TRUE(resp.ok);
  EXPECT_FALSE(resp.has_accepted);

  // A lower ballot is rejected.
  Context ctx2(1);
  a.handle_message(mk(1, 2, kPrepare, PrepareMsg{0, make_ballot(1, 2)}.encode()), ctx2);
  auto resp2 = PrepareResponseMsg::decode(ctx2.sent()[0].payload);
  EXPECT_FALSE(resp2.ok);
}

TEST_F(CoreFixture, AcceptorReportsAcceptedValueInPromise) {
  PaxosCore a = node(1);
  Context c1(1);
  a.handle_message(mk(1, 0, kAccept, AcceptMsg{0, make_ballot(1, 0), 77}.encode()), c1);
  // Learn broadcast to everyone.
  EXPECT_EQ(c1.sent().size(), 3u);
  EXPECT_EQ(c1.sent()[0].type, kLearn);

  Context c2(1);
  a.handle_message(mk(1, 2, kPrepare, PrepareMsg{0, make_ballot(2, 2)}.encode()), c2);
  auto resp = PrepareResponseMsg::decode(c2.sent()[0].payload);
  EXPECT_TRUE(resp.ok);
  EXPECT_TRUE(resp.has_accepted);
  EXPECT_EQ(resp.accepted_value, 77u);
  EXPECT_EQ(resp.accepted_ballot, make_ballot(1, 0));
}

TEST_F(CoreFixture, AcceptorRejectsAcceptBelowPromise) {
  PaxosCore a = node(1);
  Context c1(1);
  a.handle_message(mk(1, 0, kPrepare, PrepareMsg{0, make_ballot(5, 0)}.encode()), c1);
  Context c2(1);
  a.handle_message(mk(1, 2, kAccept, AcceptMsg{0, make_ballot(1, 2), 9}.encode()), c2);
  EXPECT_TRUE(c2.sent().empty());  // silently ignored
}

TEST_F(CoreFixture, ProposerSendsAcceptAtMajority) {
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);

  Context c1(0);
  p.handle_message(
      mk(0, 1, kPrepareResponse, PrepareResponseMsg{0, b, true, false, 0, 0}.encode()), c1);
  EXPECT_TRUE(c1.sent().empty());  // 1 of 3: no majority yet

  Context c2(0);
  p.handle_message(
      mk(0, 2, kPrepareResponse, PrepareResponseMsg{0, b, true, false, 0, 0}.encode()), c2);
  ASSERT_EQ(c2.sent().size(), 3u);  // majority: Accept broadcast
  auto acc = AcceptMsg::decode(c2.sent()[0].payload);
  EXPECT_EQ(acc.value, 42u);  // nothing previously accepted: own value

  Context c3(0);
  p.handle_message(
      mk(0, 0, kPrepareResponse, PrepareResponseMsg{0, b, true, false, 0, 0}.encode()), c3);
  EXPECT_TRUE(c3.sent().empty());  // third response: Accept not re-sent
}

TEST_F(CoreFixture, ProposerAdoptsHighestBallotAcceptedValue) {
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);

  Context c1(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(1, 1), 111}.encode()),
                   c1);
  Context c2(0);
  p.handle_message(mk(0, 2, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(2, 2), 222}.encode()),
                   c2);
  ASSERT_EQ(c2.sent().size(), 3u);
  EXPECT_EQ(AcceptMsg::decode(c2.sent()[0].payload).value, 222u);  // higher accepted ballot wins
}

TEST_F(CoreFixture, HighestBallotWinsRegardlessOfArrivalOrder) {
  // Same two responses, reversed order: the correct proposer still adopts
  // the higher-ballot value.
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);
  Context c1(0);
  p.handle_message(mk(0, 2, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(2, 2), 222}.encode()),
                   c1);
  Context c2(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(1, 1), 111}.encode()),
                   c2);
  EXPECT_EQ(AcceptMsg::decode(c2.sent()[0].payload).value, 222u);
}

TEST_F(CoreFixture, BuggyProposerUsesLastResponse) {
  // The §5.5 bug: the value of the LAST PrepareResponse wins — and a
  // response with no accepted value erases a previously adopted one.
  PaxosCore p = node(0, /*bug=*/true);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);

  Context c1(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(1, 1), 111}.encode()),
                   c1);
  Context c2(0);
  p.handle_message(
      mk(0, 2, kPrepareResponse, PrepareResponseMsg{0, b, true, false, 0, 0}.encode()), c2);
  ASSERT_EQ(c2.sent().size(), 3u);
  // BUG MANIFESTS: adopted value 111 was forgotten; own value proposed.
  EXPECT_EQ(AcceptMsg::decode(c2.sent()[0].payload).value, 42u);
}

TEST_F(CoreFixture, BuggyProposerCorrectWhenValueArrivesLast) {
  PaxosCore p = node(0, /*bug=*/true);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);
  Context c1(0);
  p.handle_message(
      mk(0, 2, kPrepareResponse, PrepareResponseMsg{0, b, true, false, 0, 0}.encode()), c1);
  Context c2(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(1, 1), 111}.encode()),
                   c2);
  // In THIS interleaving the bug is latent — exactly why it needs a model
  // checker to find.
  EXPECT_EQ(AcceptMsg::decode(c2.sent()[0].payload).value, 111u);
}

TEST_F(CoreFixture, LearnerChoosesAtMajorityOfAcceptors) {
  PaxosCore l = node(2);
  const Ballot b = make_ballot(1, 0);
  Context c1(2);
  l.handle_message(mk(2, 0, kLearn, LearnMsg{0, b, 42}.encode()), c1);
  EXPECT_FALSE(l.chosen(0).has_value());
  Context c2(2);
  l.handle_message(mk(2, 1, kLearn, LearnMsg{0, b, 42}.encode()), c2);
  ASSERT_TRUE(l.chosen(0).has_value());
  EXPECT_EQ(*l.chosen(0), 42u);
}

TEST_F(CoreFixture, LearnerNeedsDistinctAcceptorsSameBallot) {
  PaxosCore l = node(2);
  const Ballot b = make_ballot(1, 0);
  Context c(2);
  // Same acceptor twice: no choice.
  l.handle_message(mk(2, 0, kLearn, LearnMsg{0, b, 42}.encode()), c);
  l.handle_message(mk(2, 0, kLearn, LearnMsg{0, b, 42}.encode()), c);
  EXPECT_FALSE(l.chosen(0).has_value());
  // Different ballot doesn't combine with b.
  l.handle_message(mk(2, 1, kLearn, LearnMsg{0, make_ballot(2, 1), 42}.encode()), c);
  EXPECT_FALSE(l.chosen(0).has_value());
}

TEST_F(CoreFixture, ChosenIsSticky) {
  PaxosCore l = node(2);
  Context c(2);
  const Ballot b1 = make_ballot(1, 0), b2 = make_ballot(2, 1);
  l.handle_message(mk(2, 0, kLearn, LearnMsg{0, b1, 42}.encode()), c);
  l.handle_message(mk(2, 1, kLearn, LearnMsg{0, b1, 42}.encode()), c);
  l.handle_message(mk(2, 0, kLearn, LearnMsg{0, b2, 99}.encode()), c);
  l.handle_message(mk(2, 1, kLearn, LearnMsg{0, b2, 99}.encode()), c);
  EXPECT_EQ(*l.chosen(0), 42u);  // first local choice wins
}

TEST_F(CoreFixture, StalePrepareResponseIgnored) {
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  // Response for a different (old) ballot.
  Context c(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, make_ballot(9, 1), true, false, 0, 0}.encode()),
                   c);
  Context c2(0);
  p.handle_message(mk(0, 2, kPrepareResponse,
                      PrepareResponseMsg{0, make_ballot(1, 0), true, false, 0, 0}.encode()),
                   c2);
  EXPECT_TRUE(c2.sent().empty());  // only ONE valid response so far
}

TEST_F(CoreFixture, ReProposeBumpsBallot) {
  PaxosCore p = node(1);
  Context c1(1);
  p.propose(5, 7, c1);
  Context c2(1);
  p.propose(5, 7, c2);
  auto m1 = PrepareMsg::decode(c1.sent()[0].payload);
  auto m2 = PrepareMsg::decode(c2.sent()[0].payload);
  EXPECT_GT(m2.ballot, m1.ballot);
}

TEST_F(CoreFixture, SerializationRoundTrip) {
  PaxosCore p = node(0);
  Context ctx(0);
  p.propose(0, 42, ctx);
  const Ballot b = make_ballot(1, 0);
  Context c1(0);
  p.handle_message(mk(0, 1, kPrepareResponse,
                      PrepareResponseMsg{0, b, true, true, make_ballot(1, 1), 7}.encode()),
                   c1);
  Context c2(0);
  p.handle_message(mk(0, 0, kLearn, LearnMsg{3, b, 9}.encode()), c2);

  Writer w;
  p.serialize(w);
  PaxosCore q = node(0);
  Reader r(w.data());
  q.deserialize(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(p, q);

  Writer w2;
  q.serialize(w2);
  EXPECT_EQ(w.data(), w2.data()) << "serialization must be deterministic";
}

TEST_F(CoreFixture, DriverIndexHelpers) {
  PaxosCore p = node(0);
  EXPECT_FALSE(p.first_unchosen_known_index().has_value());
  EXPECT_EQ(p.fresh_index(), 0u);

  Context ctx(0);
  p.propose(2, 42, ctx);
  ASSERT_TRUE(p.first_unchosen_known_index().has_value());
  EXPECT_EQ(*p.first_unchosen_known_index(), 2u);
  EXPECT_EQ(p.fresh_index(), 3u);

  // Once chosen locally, the index no longer demands attention.
  const Ballot b = make_ballot(1, 0);
  Context c(0);
  p.handle_message(mk(0, 0, kLearn, LearnMsg{2, b, 5}.encode()), c);
  p.handle_message(mk(0, 1, kLearn, LearnMsg{2, b, 5}.encode()), c);
  EXPECT_FALSE(p.first_unchosen_known_index().has_value());
}

TEST_F(CoreFixture, TypeBaseNamespacing) {
  PaxosCore p(0, 3, CoreOptions{100, false});
  Context ctx(0);
  p.propose(0, 1, ctx);
  EXPECT_EQ(ctx.sent()[0].type, 100u + kPrepare);
  // A message outside the namespace is not consumed.
  Context c(0);
  EXPECT_FALSE(p.handle_message(mk(0, 1, 3, {}), c));
  EXPECT_FALSE(p.handle_message(mk(0, 1, 104, {}), c));
}

// Parameterized sweep: one clean proposal among N nodes always converges to
// the proposer's value once all messages are delivered in order.
class CleanProposal : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CleanProposal, AllNodesChooseProposersValue) {
  const std::uint32_t n = GetParam();
  std::vector<PaxosCore> nodes;
  for (NodeId i = 0; i < n; ++i) nodes.emplace_back(i, n, CoreOptions{});

  // Synchronous in-order delivery of every message.
  std::vector<Message> queue;
  Context ctx(0);
  nodes[0].propose(0, 7, ctx);
  for (const Message& m : ctx.sent()) queue.push_back(m);
  while (!queue.empty()) {
    Message m = queue.front();
    queue.erase(queue.begin());
    Context c(m.dst);
    nodes[m.dst].handle_message(m, c);
    for (const Message& out : c.sent()) queue.push_back(out);
  }
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_TRUE(nodes[i].chosen(0).has_value()) << "node " << i;
    EXPECT_EQ(*nodes[i].chosen(0), 7u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CleanProposal, ::testing::Values(1, 2, 3, 4, 5, 7, 9));

}  // namespace
}  // namespace lmc::paxos
