// Invariant framework defaults: the sorted-merge conflict rule and the
// projection plumbing shared by every protocol invariant.
#include <gtest/gtest.h>

#include "mc/invariant.hpp"
#include "mc/parallel_local_mc.hpp"

#include <atomic>
#include <numeric>

namespace lmc {
namespace {

class Dummy final : public Invariant {
 public:
  std::string name() const override { return "dummy"; }
  bool holds(const SystemConfig&, const SystemStateView&) const override { return true; }
};

TEST(Invariant, DefaultConflictSameKeyDifferentValue) {
  Dummy inv;
  EXPECT_TRUE(inv.projections_conflict({{1, 10}}, {{1, 20}}));
  EXPECT_FALSE(inv.projections_conflict({{1, 10}}, {{1, 10}}));
}

TEST(Invariant, DefaultConflictDisjointKeys) {
  Dummy inv;
  EXPECT_FALSE(inv.projections_conflict({{1, 10}}, {{2, 10}}));
  EXPECT_FALSE(inv.projections_conflict({}, {{2, 10}}));
  EXPECT_FALSE(inv.projections_conflict({}, {}));
}

TEST(Invariant, DefaultConflictMergeWalksBothSides) {
  Dummy inv;
  // Multiple keys, conflict buried in the middle.
  Projection a{{1, 1}, {3, 30}, {5, 5}};
  Projection b{{2, 2}, {3, 31}, {6, 6}};
  EXPECT_TRUE(inv.projections_conflict(a, b));
  Projection c{{2, 2}, {3, 30}, {6, 6}};
  EXPECT_FALSE(inv.projections_conflict(a, c));
}

TEST(Invariant, DefaultSelfViolatesIsFalse) {
  Dummy inv;
  EXPECT_FALSE(inv.projection_self_violates({{1, 1}}));
  EXPECT_FALSE(inv.projection_self_violates({}));
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadDegenerates) {
  std::vector<int> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // strictly sequential in-order
}

TEST(ParallelFor, ZeroAndOneElements) {
  int count = 0;
  parallel_for(0, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(1, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace lmc
