// RacingChecker (§4.3's "run both and use the sooner"): verdict agreement,
// cancellation, and winner plausibility on contrasting workloads.
#include <gtest/gtest.h>

#include "mc/racing.hpp"
#include "protocols/election.hpp"
#include "protocols/paxos.hpp"
#include "protocols/twophase.hpp"

namespace lmc {
namespace {

TEST(Racing, CleanProtocolNoViolationEitherWay) {
  SystemConfig cfg = paxos::make_config(3, paxos::CoreOptions{},
                                        paxos::DriverConfig{{0}, 1});
  auto inv = paxos::make_agreement_invariant();
  RacingOptions opt;
  opt.global.time_budget_s = 120;
  opt.local.time_budget_s = 120;
  opt.local.use_projection = true;
  RacingResult res = race_checkers(cfg, inv.get(), initial_states(cfg), {}, opt);
  EXPECT_FALSE(res.found);
  EXPECT_NE(res.winner, RacingResult::Winner::Neither) << "someone must finish this tiny space";
}

TEST(Racing, BuggyProtocolFoundByWhicheverWins) {
  SystemConfig cfg = twophase::make_config(3, twophase::Options{{2}, true});
  twophase::AtomicityInvariant inv;
  RacingOptions opt;
  opt.global.time_budget_s = 120;
  opt.local.time_budget_s = 120;
  opt.local.use_projection = true;
  RacingResult res = race_checkers(cfg, &inv, initial_states(cfg), {}, opt);
  ASSERT_TRUE(res.found);
  if (res.winner == RacingResult::Winner::Global) {
    ASSERT_TRUE(res.global_violation.has_value());
    EXPECT_EQ(res.global_violation->invariant, "twophase.atomicity");
  } else {
    ASSERT_TRUE(res.local_violation.has_value());
    EXPECT_TRUE(res.local_violation->confirmed);
  }
}

TEST(Racing, LoserIsCancelled) {
  // A big space with a generous budget: whoever wins, the loser must not
  // run to its full budget (cancellation cuts it short).
  SystemConfig cfg = election::make_config(4, election::Options{{0, 1, 2, 3}, false});
  election::SingleLeaderInvariant inv;
  RacingOptions opt;
  opt.global.time_budget_s = 300;
  opt.local.time_budget_s = 300;
  opt.local.use_projection = true;
  RacingResult res = race_checkers(cfg, &inv, initial_states(cfg), {}, opt);
  EXPECT_LT(res.elapsed_s, 200.0);
  EXPECT_FALSE(res.found);
}

TEST(Racing, AgreesWithStandaloneCheckers) {
  for (bool bug : {false, true}) {
    SystemConfig cfg = election::make_config(3, election::Options{{0}, bug});
    election::SingleLeaderInvariant inv;
    RacingOptions opt;
    opt.global.time_budget_s = 120;
    opt.local.time_budget_s = 120;
    opt.local.use_projection = true;
    RacingResult res = race_checkers(cfg, &inv, initial_states(cfg), {}, opt);
    EXPECT_EQ(res.found, bug) << "bug=" << bug;
  }
}

}  // namespace
}  // namespace lmc
