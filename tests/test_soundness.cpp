// Soundness verification unit tests on hand-built LocalStore graphs —
// isolating isStateSound / isSequenceValid (Fig. 9, §4.2) from exploration.
#include <gtest/gtest.h>

#include "mc/local_store.hpp"
#include "mc/soundness.hpp"

namespace lmc {
namespace {

// Builders for a synthetic 2-node store. Node states are dummies; only
// hashes, preds and generated-message hashes matter to the verifier.
NodeStateRec state(Hash64 h, std::uint32_t depth) {
  NodeStateRec r;
  r.blob = {static_cast<std::uint8_t>(h)};
  r.hash = h;
  r.depth = depth;
  return r;
}

Pred msg_edge(std::uint32_t from, Hash64 msg, std::vector<Hash64> gen = {}) {
  return Pred{from, true, msg, std::move(gen)};
}

Pred internal_edge(std::uint32_t from, Hash64 ev, std::vector<Hash64> gen = {}) {
  return Pred{from, false, ev, std::move(gen)};
}

TEST(Soundness, InitialComboTriviallySound) {
  LocalStore store(2);
  store.add(0, state(10, 0));
  store.add(1, state(20, 0));
  SoundnessVerifier v(store, {}, {});
  auto res = v.verify({0, 0});
  EXPECT_TRUE(res.sound);
  EXPECT_TRUE(res.schedule.empty());
}

TEST(Soundness, InternalEventsAlwaysEnabled) {
  LocalStore store(1);
  store.add(0, state(10, 0));
  NodeStateRec s1 = state(11, 1);
  s1.preds.push_back(internal_edge(0, 0xE1));
  store.add(0, std::move(s1));
  SoundnessVerifier v(store, {}, {});
  auto res = v.verify({1});
  ASSERT_TRUE(res.sound);
  ASSERT_EQ(res.schedule.size(), 1u);
  EXPECT_FALSE(res.schedule[0].is_message);
  EXPECT_EQ(res.schedule[0].ev_hash, 0xE1u);
}

TEST(Soundness, NetworkEventNeedsGeneratedMessage) {
  // Node 1 received message M, but nothing generated M: unsound.
  LocalStore store(2);
  store.add(0, state(10, 0));
  store.add(1, state(20, 0));
  NodeStateRec s1 = state(21, 1);
  s1.preds.push_back(msg_edge(0, 0xAB));
  store.add(1, std::move(s1));
  SoundnessVerifier v(store, {}, {});
  EXPECT_FALSE(v.verify({0, 1}).sound);
}

TEST(Soundness, CausalChainAcrossNodes) {
  // Node 0: internal event E generates message M; node 1: receives M.
  LocalStore store(2);
  store.add(0, state(10, 0));
  store.add(1, state(20, 0));
  NodeStateRec s0 = state(11, 1);
  s0.preds.push_back(internal_edge(0, 0xE1, {0xAB}));
  store.add(0, std::move(s0));
  NodeStateRec s1 = state(21, 1);
  s1.preds.push_back(msg_edge(0, 0xAB));
  store.add(1, std::move(s1));

  SoundnessVerifier v(store, {}, {});
  // Both advanced: valid, and the schedule is causally ordered.
  auto res = v.verify({1, 1});
  ASSERT_TRUE(res.sound);
  ASSERT_EQ(res.schedule.size(), 2u);
  EXPECT_EQ(res.schedule[0].node, 0u);
  EXPECT_EQ(res.schedule[1].node, 1u);

  // Node 1 advanced but node 0 (the generator) still at its root: invalid
  // — the message was never produced in this combination.
  EXPECT_FALSE(v.verify({0, 1}).sound);
}

TEST(Soundness, InitialInFlightMessagesAreAvailable) {
  // The same "receive M with no generator" combo becomes valid when M was
  // in flight in the live snapshot.
  LocalStore store(2);
  store.add(0, state(10, 0));
  store.add(1, state(20, 0));
  NodeStateRec s1 = state(21, 1);
  s1.preds.push_back(msg_edge(0, 0xAB));
  store.add(1, std::move(s1));

  SoundnessVerifier with_flight(store, {0xAB}, {});
  EXPECT_TRUE(with_flight.verify({0, 1}).sound);
  SoundnessVerifier without(store, {}, {});
  EXPECT_FALSE(without.verify({0, 1}).sound);
}

TEST(Soundness, MessageConsumedOnlyOnce) {
  // Two distinct node-1 chains both consuming the single in-flight M — a
  // node CAN only consume it once per run; two consumptions in one
  // sequence must fail.
  LocalStore store(1);
  store.add(0, state(10, 0));
  NodeStateRec s1 = state(11, 1);
  s1.preds.push_back(msg_edge(0, 0xAB));
  store.add(0, std::move(s1));
  NodeStateRec s2 = state(12, 2);
  s2.preds.push_back(msg_edge(1, 0xAB));  // consumes M again
  store.add(0, std::move(s2));

  SoundnessVerifier v(store, {0xAB}, {});
  EXPECT_TRUE(v.verify({1}).sound);
  EXPECT_FALSE(v.verify({2}).sound) << "single in-flight message consumed twice";
  SoundnessVerifier v2(store, {0xAB, 0xAB}, {});
  EXPECT_TRUE(v2.verify({2}).sound) << "two copies in flight allow both deliveries";
}

TEST(Soundness, MultiplePredecessorPathsOneValid) {
  // State reachable two ways: via an unproducible message OR via an
  // internal event. The verifier must find the valid alternative.
  LocalStore store(1);
  store.add(0, state(10, 0));
  NodeStateRec s1 = state(11, 1);
  s1.preds.push_back(msg_edge(0, 0xDEAD));   // no generator: invalid path
  s1.preds.push_back(internal_edge(0, 0xE7));  // valid path
  store.add(0, std::move(s1));
  SoundnessVerifier v(store, {}, {});
  auto res = v.verify({1});
  EXPECT_TRUE(res.sound);
  EXPECT_GE(res.schedules_checked, 1u);
}

TEST(Soundness, CyclicPredecessorsDoNotHang) {
  // s1 -> s2 -> s1 cycle plus a valid entry; enumeration must terminate.
  LocalStore store(1);
  store.add(0, state(10, 0));
  NodeStateRec s1 = state(11, 1);
  s1.preds.push_back(internal_edge(0, 0xE1));
  store.add(0, std::move(s1));
  NodeStateRec s2 = state(12, 2);
  s2.preds.push_back(internal_edge(1, 0xE2));
  store.add(0, std::move(s2));
  // Close the cycle: s1 also reachable from s2.
  store.rec(0, 1).preds.push_back(internal_edge(2, 0xE3));

  SoundnessVerifier v(store, {}, {});
  auto res = v.verify({2});
  EXPECT_TRUE(res.sound);
}

TEST(Soundness, SequenceEnumerationCapsAreReported) {
  // A state with many predecessor paths; tiny cap must set `truncated`.
  LocalStore store(1);
  store.add(0, state(10, 0));
  // 8 distinct mid states, all leading to one final state.
  for (std::uint32_t k = 0; k < 8; ++k) {
    NodeStateRec mid = state(100 + k, 1);
    mid.preds.push_back(internal_edge(0, 0xE0 + k));
    store.add(0, std::move(mid));
  }
  NodeStateRec fin = state(999, 2);
  for (std::uint32_t k = 0; k < 8; ++k) fin.preds.push_back(internal_edge(1 + k, 0xF0 + k));
  store.add(0, std::move(fin));

  SoundnessOptions so;
  so.max_sequences_per_node = 3;
  SoundnessVerifier v(store, {}, so);
  bool trunc = false;
  auto seqs = v.enumerate_sequences(0, 9, &trunc);
  EXPECT_EQ(seqs.size(), 3u);
  EXPECT_TRUE(trunc);
}

TEST(Soundness, SelfLoopGeneratesMissingMessage) {
  // Node 0 stays in its initial state but a recorded self-loop (relay)
  // generates M; node 1's chain consumes M. Valid only thanks to the
  // self-loop extension.
  LocalStore store(2);
  store.add(0, state(10, 0));
  store.rec(0, 0).self_loops.push_back(msg_edge(0, 0xAA, {0xBB}));
  store.add(1, state(20, 0));
  NodeStateRec s1 = state(21, 1);
  s1.preds.push_back(msg_edge(0, 0xBB));
  store.add(1, std::move(s1));

  // The relay's own input 0xAA must itself be available (initial in-flight).
  SoundnessVerifier v(store, {0xAA}, {});
  auto res = v.verify({0, 1});
  ASSERT_TRUE(res.sound);
  ASSERT_EQ(res.schedule.size(), 2u);  // self-loop fire + delivery
  SoundnessVerifier v2(store, {}, {});
  EXPECT_FALSE(v2.verify({0, 1}).sound) << "self-loop input not available";
}

TEST(Soundness, ScheduleRespectsMessageCausality) {
  // Three-node relay chain: 0 generates M1 (internal), 1 consumes M1 and
  // generates M2, 2 consumes M2. Any valid schedule is the causal order.
  LocalStore store(3);
  for (NodeId n = 0; n < 3; ++n) store.add(n, state(10 * (n + 1), 0));
  NodeStateRec a = state(11, 1);
  a.preds.push_back(internal_edge(0, 0xE1, {0x111}));
  store.add(0, std::move(a));
  NodeStateRec b = state(21, 1);
  b.preds.push_back(msg_edge(0, 0x111, {0x222}));
  store.add(1, std::move(b));
  NodeStateRec c = state(31, 1);
  c.preds.push_back(msg_edge(0, 0x222));
  store.add(2, std::move(c));

  SoundnessVerifier v(store, {}, {});
  auto res = v.verify({1, 1, 1});
  ASSERT_TRUE(res.sound);
  ASSERT_EQ(res.schedule.size(), 3u);
  EXPECT_EQ(res.schedule[0].node, 0u);
  EXPECT_EQ(res.schedule[1].node, 1u);
  EXPECT_EQ(res.schedule[2].node, 2u);

  // Partial combos must degrade gracefully: node2 advanced without node1.
  EXPECT_FALSE(v.verify({1, 0, 1}).sound);
  EXPECT_TRUE(v.verify({1, 1, 0}).sound);
}

}  // namespace
}  // namespace lmc
