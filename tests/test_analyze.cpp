// lmc_lint static analysis: tokenizer units, one firing fixture per rule +
// the clean fixtures, suppression accounting, output shapes, and the
// corpus gate (src/protocols + examples must lint clean).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "analyze/lint.hpp"
#include "analyze/tokenizer.hpp"

namespace lmc::analyze {
namespace {

namespace fs = std::filesystem;

// Set by tests/CMakeLists.txt.
const std::string kFixtureDir = LMC_LINT_FIXTURE_DIR;
const std::string kSourceDir = LMC_SOURCE_DIR;

// --- tokenizer --------------------------------------------------------------

TEST(Tokenizer, BasicKindsAndPositions) {
  TokenizedFile f = tokenize("int x = 42;\nfoo->bar(\"s\");\n");
  ASSERT_GE(f.tokens.size(), 10u);
  EXPECT_EQ(f.tokens[0].kind, TokKind::Identifier);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].line, 1u);
  EXPECT_EQ(f.tokens[0].col, 1u);
  EXPECT_EQ(f.tokens[3].kind, TokKind::Number);
  EXPECT_EQ(f.tokens[3].text, "42");
  // '->' is one punct token, on line 2.
  auto arrow = std::find_if(f.tokens.begin(), f.tokens.end(),
                            [](const Token& t) { return t.text == "->"; });
  ASSERT_NE(arrow, f.tokens.end());
  EXPECT_EQ(arrow->line, 2u);
  auto str = std::find_if(f.tokens.begin(), f.tokens.end(),
                          [](const Token& t) { return t.kind == TokKind::String; });
  ASSERT_NE(str, f.tokens.end());
  EXPECT_EQ(str->text, "\"s\"");
}

TEST(Tokenizer, CommentsAreCapturedNotTokenized) {
  TokenizedFile f = tokenize("a; // trailing note\n/* block\nspan */ b;\n");
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].text, " trailing note");
  EXPECT_EQ(f.comments[0].line, 1u);
  EXPECT_EQ(f.comments[1].line, 2u);
  // Only `a`, `;`, `b`, `;` remain as tokens.
  ASSERT_EQ(f.tokens.size(), 4u);
  EXPECT_EQ(f.tokens[2].text, "b");
  EXPECT_EQ(f.tokens[2].line, 3u);
}

TEST(Tokenizer, PreprocessorAndRawStringsSkippedWhole) {
  TokenizedFile f = tokenize("#include <rand>\n#define X \\\n  rand()\nint y;\n");
  for (const Token& t : f.tokens) EXPECT_NE(t.text, "rand");
  TokenizedFile r = tokenize("auto s = R\"(no \" problem)\"; next");
  auto str = std::find_if(r.tokens.begin(), r.tokens.end(),
                          [](const Token& t) { return t.kind == TokKind::String; });
  ASSERT_NE(str, r.tokens.end());
  EXPECT_NE(r.tokens.back().text, "problem");
  EXPECT_EQ(r.tokens.back().text, "next");
}

TEST(Tokenizer, UnterminatedInputDoesNotThrow) {
  EXPECT_NO_THROW(tokenize("\"unterminated"));
  EXPECT_NO_THROW(tokenize("/* unterminated"));
  EXPECT_NO_THROW(tokenize("R\"(unterminated"));
}

// --- rule fixtures ----------------------------------------------------------

LintResult lint_fixture(const std::string& name) {
  Linter l;
  EXPECT_TRUE(l.add_file(kFixtureDir + "/" + name)) << name;
  return l.run();
}

std::set<std::string> rules_fired(const LintResult& r) {
  std::set<std::string> s;
  for (const Diagnostic& d : r.diagnostics) s.insert(d.rule);
  return s;
}

struct FixtureCase {
  const char* file;
  const char* rule;
};

TEST(LintRules, EveryRuleHasAFiringFixture) {
  const FixtureCase cases[] = {
      {"bad_nd01_entropy.cpp", "ND01"},   {"bad_nd02_pointer.cpp", "ND02"},
      {"bad_st01_static_local.cpp", "ST01"}, {"bad_st02_global.cpp", "ST02"},
      {"bad_it01_unordered.cpp", "IT01"}, {"bad_io01_direct_io.cpp", "IO01"},
      {"bad_th01_thread.cpp", "TH01"},    {"bad_sr01_hidden_field.cpp", "SR01"},
      {"bad_sr02_asymmetry.cpp", "SR02"},
  };
  // The fixture set must cover the whole rule table.
  std::set<std::string> covered;
  for (const FixtureCase& c : cases) {
    LintResult r = lint_fixture(c.file);
    EXPECT_EQ(r.machine_classes, 1u) << c.file;
    const std::set<std::string> fired = rules_fired(r);
    EXPECT_TRUE(fired.count(c.rule)) << c.file << " did not fire " << c.rule;
    covered.insert(c.rule);
    for (const Diagnostic& d : r.diagnostics) {
      EXPECT_GT(d.line, 0u) << c.file;
      EXPECT_FALSE(d.message.empty()) << c.file;
    }
  }
  // IN01-IN03 share the rule namespace but fire from the footprint-based
  // independence checker, not the token scan; their firing fixtures are the
  // .lmc specs under fixtures/indep/ pinned by tests/test_indep.cpp.
  for (const RuleInfo& ri : all_rules())
    if (std::string(ri.id).rfind("IN", 0) != 0) EXPECT_TRUE(covered.count(ri.id)) << ri.id;
  EXPECT_GE(all_rules().size(), 8u);
}

TEST(LintRules, SanctionedSeededRngPatternIsClean) {
  LintResult r = lint_fixture("good_seeded_rng.cpp");
  EXPECT_EQ(r.machine_classes, 1u);
  EXPECT_TRUE(r.diagnostics.empty()) << to_gcc(r);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintRules, SuppressionsSilenceAndAreCounted) {
  LintResult r = lint_fixture("good_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_gcc(r);
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(LintRules, FileWideSuppression) {
  Linter l;
  l.add_source("v.cpp",
               "// lmc-lint-disable-file(IO01)\n"
               "class M : public StateMachine {\n"
               " public:\n"
               "  int n_ = 0;\n"
               "  void handle_message(const Message& m, Context& c) { printf(\"x\"); n_++; }\n"
               "  void serialize(Writer& w) const { w.u32(n_); }\n"
               "  void deserialize(Reader& r) { n_ = r.u32(); }\n"
               "};\n");
  LintResult r = l.run();
  EXPECT_TRUE(r.diagnostics.empty()) << to_gcc(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintRules, HandlerReachabilityIsTransitive) {
  // The entropy call sits in a helper the handler calls, not in the
  // handler itself — the closure must still reach it.
  Linter l;
  l.add_source("v.cpp",
               "class M : public StateMachine {\n"
               " public:\n"
               "  int n_ = 0;\n"
               "  void helper() { n_ += rand(); }\n"
               "  void handle_message(const Message& m, Context& c) { helper(); }\n"
               "  void serialize(Writer& w) const { w.u32(n_); }\n"
               "  void deserialize(Reader& r) { n_ = r.u32(); }\n"
               "};\n");
  LintResult r = l.run();
  EXPECT_TRUE(rules_fired(r).count("ND01")) << to_gcc(r);
}

TEST(LintRules, NonMachineClassesAreIgnored) {
  // rand() in a class without the machine shape must not fire: lint scope
  // is protocol handlers, not arbitrary code.
  Linter l;
  l.add_source("v.cpp", "class Util { public: int draw() { return rand(); } };\n");
  LintResult r = l.run();
  EXPECT_EQ(r.machine_classes, 0u);
  EXPECT_TRUE(r.diagnostics.empty()) << to_gcc(r);
}

TEST(LintRules, CrossFileClassMerging) {
  // Declaration in the header, offending out-of-class definition in the
  // .cpp: the model must merge them by class name.
  Linter l;
  l.add_source("m.hpp",
               "class M : public StateMachine {\n"
               " public:\n"
               "  int n_ = 0;\n"
               "  void handle_message(const Message& m, Context& c);\n"
               "  void serialize(Writer& w) const;\n"
               "  void deserialize(Reader& r);\n"
               "};\n");
  l.add_source("m.cpp",
               "void M::handle_message(const Message& m, Context& c) { n_ += rand(); }\n"
               "void M::serialize(Writer& w) const { w.u32(n_); }\n"
               "void M::deserialize(Reader& r) { n_ = r.u32(); }\n");
  LintResult r = l.run();
  EXPECT_EQ(r.machine_classes, 1u);
  EXPECT_TRUE(rules_fired(r).count("ND01")) << to_gcc(r);
}

// --- output shapes ----------------------------------------------------------

TEST(LintOutput, GccStyleAndJson) {
  LintResult r = lint_fixture("bad_sr02_asymmetry.cpp");
  ASSERT_FALSE(r.diagnostics.empty());
  const std::string gcc = to_gcc(r);
  EXPECT_NE(gcc.find(": warning: "), std::string::npos);
  EXPECT_NE(gcc.find("[SR02]"), std::string::npos);
  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"rule\":\"SR02\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  // The per-rule firing-count summary covers the whole rule table, with the
  // fired rule counted and silent rules present as zeroes.
  EXPECT_NE(json.find("\"rule_counts\":{"), std::string::npos);
  EXPECT_NE(json.find("\"SR02\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ND01\":0"), std::string::npos);
}

TEST(LintOutput, DiagnosticsAreSorted) {
  LintResult r = lint_fixture("bad_th01_thread.cpp");
  for (std::size_t i = 1; i < r.diagnostics.size(); ++i) {
    const Diagnostic& a = r.diagnostics[i - 1];
    const Diagnostic& b = r.diagnostics[i];
    EXPECT_LE(std::tie(a.file, a.line, a.col, a.rule), std::tie(b.file, b.line, b.col, b.rule));
  }
}

// --- corpus gate ------------------------------------------------------------

TEST(LintCorpus, ProtocolsAndExamplesLintClean) {
  Linter l;
  std::size_t added = 0;
  for (const char* dir : {"src/protocols", "examples", "src/runtime"}) {
    const fs::path root = fs::path(kSourceDir) / dir;
    ASSERT_TRUE(fs::is_directory(root)) << root;
    for (const auto& e : fs::recursive_directory_iterator(root)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".cc" && ext != ".h") continue;
      ASSERT_TRUE(l.add_file(e.path().string()));
      ++added;
    }
  }
  ASSERT_GT(added, 10u);
  LintResult r = l.run();
  EXPECT_GE(r.machine_classes, 5u);  // the five example protocols at least
  EXPECT_TRUE(r.diagnostics.empty()) << to_gcc(r);
}

}  // namespace
}  // namespace lmc::analyze
