// Chang-Roberts ring election: protocol behaviour, the single-leader
// invariant (custom pairwise conflict: two leaders conflict regardless of
// values), and the missing-swallow bug under both checkers.
#include <gtest/gtest.h>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/election.hpp"

namespace lmc {
namespace {

using election::Options;

void run_sync(const SystemConfig& cfg, std::vector<Blob>& nodes,
              const std::set<std::uint32_t>& starters) {
  std::vector<Message> q;
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    ExecResult r = exec_internal(cfg, n, nodes[n], {election::kEvInit, {}});
    ASSERT_FALSE(r.assert_failed);
    nodes[n] = std::move(r.state);
  }
  for (std::uint32_t s : starters) {
    ExecResult r = exec_internal(cfg, s, nodes[s], {election::kEvStart, {}});
    ASSERT_FALSE(r.assert_failed);
    nodes[s] = std::move(r.state);
    for (Message& m : r.sent) q.push_back(std::move(m));
  }
  while (!q.empty()) {
    Message m = q.front();
    q.erase(q.begin());
    ExecResult rr = exec_message(cfg, m.dst, nodes[m.dst], m);
    ASSERT_FALSE(rr.assert_failed) << rr.assert_msg;
    nodes[m.dst] = std::move(rr.state);
    for (Message& out : rr.sent) q.push_back(std::move(out));
  }
}

int count_leaders(const std::vector<Blob>& nodes) {
  int leaders = 0;
  for (const Blob& b : nodes)
    if (election::leader_flag_of(b)) ++leaders;
  return leaders;
}

TEST(Election, HighestIdWins) {
  SystemConfig cfg = election::make_config(4, Options{{0}, false});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes, {0});
  EXPECT_EQ(count_leaders(nodes), 1);
  EXPECT_TRUE(election::leader_flag_of(nodes[3]));  // max id
  // Everyone learned the leader.
  for (NodeId n = 0; n < 4; ++n) {
    auto m = machine_from_blob(cfg, n, nodes[n]);
    EXPECT_EQ(static_cast<const election::ElectionNode&>(*m).known_leader(), 3);
  }
}

TEST(Election, ConcurrentStartsStillOneLeader) {
  SystemConfig cfg = election::make_config(4, Options{{0, 1, 2}, false});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes, {0, 1, 2});
  EXPECT_EQ(count_leaders(nodes), 1);
  EXPECT_TRUE(election::leader_flag_of(nodes[3]));
}

TEST(Election, BuggyVariantElectsTwoLeadersInSyncRun) {
  SystemConfig cfg = election::make_config(3, Options{{0}, true});
  auto nodes = initial_states(cfg);
  run_sync(cfg, nodes, {0});
  // The un-swallowed id 0 circles back to node 0, which also wins.
  EXPECT_GE(count_leaders(nodes), 2);
}

TEST(Election, LmcCleanOnCorrectVariant) {
  SystemConfig cfg = election::make_config(3, Options{{0, 1}, false});
  election::SingleLeaderInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
}

TEST(Election, LmcFindsTwoLeaderBugWithWitness) {
  SystemConfig cfg = election::make_config(3, Options{{0}, true});
  election::SingleLeaderInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, &inv, opt);
  mc.run_from_initial();
  ASSERT_GE(mc.stats().confirmed_violations, 1u);
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);
  int leaders = 0;
  for (const Blob& b : v->system_state)
    if (election::leader_flag_of(b)) ++leaders;
  EXPECT_GE(leaders, 2);

  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(Election, GlobalCheckerAgrees) {
  election::SingleLeaderInvariant inv;
  GlobalMcOptions opt;
  opt.time_budget_s = 60;
  opt.max_transitions = 3'000'000;

  SystemConfig good = election::make_config(3, Options{{0, 1}, false});
  GlobalModelChecker g(good, &inv, opt);
  g.run_from_initial();
  EXPECT_TRUE(g.stats().completed);
  EXPECT_EQ(g.stats().violations, 0u);

  opt.stop_on_violation = true;
  SystemConfig bad = election::make_config(3, Options{{0}, true});
  GlobalModelChecker b(bad, &inv, opt);
  b.run_from_initial();
  EXPECT_GE(b.stats().violations, 1u);
}

TEST(Election, CustomConflictRuleSemantics) {
  election::SingleLeaderInvariant inv;
  Projection leader_a{{0, 1}};
  Projection leader_b{{2, 1}};
  EXPECT_TRUE(inv.projections_conflict(leader_a, leader_b));
  EXPECT_FALSE(inv.projections_conflict(leader_a, {}));
  EXPECT_FALSE(inv.projections_conflict({}, {}));
  EXPECT_FALSE(inv.projection_self_violates(leader_a));
}

// Ring-size sweep for both variants.
class ElectionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ElectionSweep, CorrectCleanBuggyCaught) {
  const std::uint32_t n = GetParam();
  election::SingleLeaderInvariant inv;
  LocalMcOptions opt;
  opt.use_projection = true;
  opt.time_budget_s = 120;

  SystemConfig good = election::make_config(n, Options{{0}, false});
  LocalModelChecker a(good, &inv, opt);
  a.run_from_initial();
  EXPECT_EQ(a.stats().confirmed_violations, 0u);

  SystemConfig bad = election::make_config(n, Options{{0}, true});
  LocalModelChecker b(bad, &inv, opt);
  b.run_from_initial();
  EXPECT_GE(b.stats().confirmed_violations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Rings, ElectionSweep, ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace lmc
