// PaxosUtility helpers: entry encoding and configuration-log reading.
#include <gtest/gtest.h>

#include "protocols/paxos_utility.hpp"

namespace lmc::onepaxos {
namespace {

TEST(PaxosUtility, EntryEncodingRoundTrip) {
  for (NodeId n : {0u, 1u, 2u, 0xffffffu}) {
    paxos::Value lc = encode_entry(EntryKind::LeaderChange, n);
    EXPECT_EQ(entry_kind(lc), EntryKind::LeaderChange);
    EXPECT_EQ(entry_node(lc), n);
    paxos::Value ac = encode_entry(EntryKind::AcceptorChange, n);
    EXPECT_EQ(entry_kind(ac), EntryKind::AcceptorChange);
    EXPECT_EQ(entry_node(ac), n);
    EXPECT_NE(lc, ac);
  }
}

// Drive a utility core's learner directly to install chosen entries.
void install(paxos::PaxosCore& core, paxos::Index idx, paxos::Value v) {
  Context c(0);
  paxos::LearnMsg learn{idx, paxos::make_ballot(1, 0), v};
  for (NodeId src : {0u, 1u}) {  // majority of 3
    Message m;
    m.dst = 0;
    m.src = src;
    m.type = 100 + paxos::kLearn;
    m.payload = learn.encode();
    core.handle_message(m, c);
  }
}

TEST(PaxosUtility, EmptyLogHasNoRoles) {
  paxos::PaxosCore core(0, 3, paxos::CoreOptions{100, false});
  ConfigView v = read_config(core);
  EXPECT_FALSE(v.leader.has_value());
  EXPECT_FALSE(v.acceptor.has_value());
  EXPECT_EQ(next_log_index(core), 0u);
}

TEST(PaxosUtility, LastEntryWins) {
  paxos::PaxosCore core(0, 3, paxos::CoreOptions{100, false});
  install(core, 0, encode_entry(EntryKind::LeaderChange, 1));
  install(core, 1, encode_entry(EntryKind::AcceptorChange, 2));
  install(core, 2, encode_entry(EntryKind::LeaderChange, 2));
  ConfigView v = read_config(core);
  ASSERT_TRUE(v.leader.has_value());
  EXPECT_EQ(*v.leader, 2u);  // the later LeaderChange overrides the first
  ASSERT_TRUE(v.acceptor.has_value());
  EXPECT_EQ(*v.acceptor, 2u);
  EXPECT_EQ(next_log_index(core), 3u);
}

TEST(PaxosUtility, NextLogIndexSkipsChosenPrefix) {
  paxos::PaxosCore core(0, 3, paxos::CoreOptions{100, false});
  install(core, 0, encode_entry(EntryKind::LeaderChange, 1));
  EXPECT_EQ(next_log_index(core), 1u);
  // A hole: index 2 chosen but 1 not — proposals go to the hole.
  install(core, 2, encode_entry(EntryKind::LeaderChange, 2));
  EXPECT_EQ(next_log_index(core), 1u);
}

}  // namespace
}  // namespace lmc::onepaxos
