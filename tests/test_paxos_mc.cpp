// Model checking Paxos: the §5.1 one-proposal space (global vs local,
// completeness cross-check), and the §5.5 WiDS-bug hunt from a live state.
#include <gtest/gtest.h>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "protocols/paxos.hpp"

namespace lmc {
namespace {

using paxos::DriverConfig;

SystemConfig one_proposal_cfg(bool bug = false, std::set<NodeId> proposers = {0}) {
  return paxos::make_config(3, paxos::CoreOptions{0, bug},
                            DriverConfig{std::move(proposers), 1});
}

// Deliver one message matching (dst, type) from the in-flight vector;
// returns false if absent. Used to hand-build live states.
bool deliver_one(const SystemConfig& cfg, std::vector<Blob>& nodes,
                 std::vector<Message>& flight, NodeId dst, std::uint32_t type) {
  for (std::size_t i = 0; i < flight.size(); ++i) {
    if (flight[i].dst == dst && flight[i].type == type) {
      Message m = flight[i];
      flight.erase(flight.begin() + static_cast<std::ptrdiff_t>(i));
      ExecResult r = exec_message(cfg, dst, nodes[dst], m);
      EXPECT_FALSE(r.assert_failed);
      nodes[dst] = std::move(r.state);
      for (Message& out : r.sent) flight.push_back(std::move(out));
      return true;
    }
  }
  return false;
}

void fire_internal(const SystemConfig& cfg, std::vector<Blob>& nodes,
                   std::vector<Message>& flight, NodeId n, std::size_t which = 0) {
  auto evs = internal_events_of(cfg, n, nodes[n]);
  ASSERT_LT(which, evs.size());
  ExecResult r = exec_internal(cfg, n, nodes[n], evs[which]);
  ASSERT_FALSE(r.assert_failed);
  nodes[n] = std::move(r.state);
  for (Message& out : r.sent) flight.push_back(std::move(out));
}

TEST(PaxosMc, LocalCompletesOneProposalSpace) {
  SystemConfig cfg = one_proposal_cfg();
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run_from_initial();
  const auto& st = mc.stats();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.confirmed_violations, 0u);
  EXPECT_EQ(st.prelim_violations, 0u) << "correct Paxos: no combo should even look bad";
  // The proposer sees 10 events in a real run (init, propose, Prepare,
  // 3 PrepareResponses, Accept, 3 Learns), but the deepest chain of
  // DISTINCT states is 8: the post-majority PrepareResponse is a no-op, and
  // an Accept arriving without the loopback Prepare leaves the same
  // acceptor state (promised is set either way), shortening first-discovery
  // depth.
  EXPECT_GE(st.max_chain_depth_reached, 8u);
  EXPECT_LE(st.max_chain_depth_reached, 10u);
  EXPECT_GT(st.node_states, 10u);
  EXPECT_GT(st.transitions, 0u);
}

TEST(PaxosMc, OptCreatesZeroSystemStatesOnCorrectPaxos) {
  // Fig. 11: "The number of system states explored by LMC-OPT is zero."
  SystemConfig cfg = one_proposal_cfg();
  auto inv = paxos::make_agreement_invariant();
  LocalMcOptions opt;
  opt.use_projection = true;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run_from_initial();
  EXPECT_TRUE(mc.stats().completed);
  EXPECT_EQ(mc.stats().system_states, 0u);
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
}

TEST(PaxosMc, GlobalCompletesAndAgreesWithLocal) {
  SystemConfig cfg = one_proposal_cfg();
  auto inv = paxos::make_agreement_invariant();

  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  gopt.max_transitions = 20'000'000;
  gopt.time_budget_s = 300;
  GlobalModelChecker g(cfg, inv.get(), gopt);
  g.run_from_initial();
  ASSERT_TRUE(g.stats().completed) << "global exploration must finish this small space";
  EXPECT_EQ(g.stats().violations, 0u);

  LocalModelChecker l(cfg, inv.get(), {});
  l.run_from_initial();

  // The paper's headline ratios: far fewer transitions (§5.1 reports 132x)
  // and far fewer stored states.
  EXPECT_LT(l.stats().transitions * 10, g.stats().transitions);
  EXPECT_LT(l.stats().node_states * 10, g.stats().unique_states);

  // Completeness cross-check: every node state in any globally visited
  // system state was traversed by LMC.
  for (const auto& [h, tuple] : g.system_state_tuples()) {
    (void)h;
    for (NodeId n = 0; n < cfg.num_nodes; ++n)
      ASSERT_NE(l.store().find(n, tuple[n]), UINT32_MAX);
  }
}

// Builds the §5.5 live state: node0 proposed v1 for index 0; node0 and
// node1 accepted it; only node0 learned it (Learn messages to the others
// were "dropped"). Returns nodes; in-flight is left empty.
std::vector<Blob> build_5_5_live_state(const SystemConfig& cfg) {
  std::vector<Blob> nodes = initial_states(cfg);
  std::vector<Message> flight;
  for (NodeId n = 0; n < 3; ++n) fire_internal(cfg, nodes, flight, n);  // init x3
  fire_internal(cfg, nodes, flight, 0);                                 // node0 proposes
  for (NodeId n = 0; n < 3; ++n)
    EXPECT_TRUE(deliver_one(cfg, nodes, flight, n, paxos::kPrepare));
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(deliver_one(cfg, nodes, flight, 0, paxos::kPrepareResponse));
  // Accept reaches node0 and node1 only.
  EXPECT_TRUE(deliver_one(cfg, nodes, flight, 0, paxos::kAccept));
  EXPECT_TRUE(deliver_one(cfg, nodes, flight, 1, paxos::kAccept));
  // node0 learns from both acceptors; everyone else's Learns are dropped.
  EXPECT_TRUE(deliver_one(cfg, nodes, flight, 0, paxos::kLearn));
  EXPECT_TRUE(deliver_one(cfg, nodes, flight, 0, paxos::kLearn));

  auto chosen0 = paxos::chosen_map_of(cfg, 0, nodes[0]);
  EXPECT_EQ(chosen0.size(), 1u);
  EXPECT_EQ(chosen0[0], 1u);  // v1 = node0's id + 1
  EXPECT_TRUE(paxos::chosen_map_of(cfg, 1, nodes[1]).empty());
  EXPECT_TRUE(paxos::chosen_map_of(cfg, 2, nodes[2]).empty());
  return nodes;
}

TEST(PaxosMc, WidsBugFoundFromLiveState) {
  // §5.5 setup: node0 (N1) spent its proposal in the live run; the checker
  // explores node1's (N2's) proposal for the same index. LMC-OPT is the
  // variant the paper uses for the buggy experiments (Fig. 13).
  SystemConfig cfg = one_proposal_cfg(/*bug=*/true, /*proposers=*/{0, 1});
  auto inv = paxos::make_agreement_invariant();
  std::vector<Blob> live = build_5_5_live_state(cfg);

  LocalMcOptions opt;
  opt.max_total_depth = 18;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});

  ASSERT_GE(mc.stats().confirmed_violations, 1u) << "the WiDS bug must be rediscovered";
  const LocalViolation* v = mc.first_confirmed();
  ASSERT_NE(v, nullptr);

  // The violating system state pits v1 (node0's choice) against v2/v3.
  std::map<std::uint64_t, std::uint64_t> values;
  bool conflict = false;
  for (NodeId n = 0; n < 3; ++n)
    for (const auto& [i, val] : paxos::chosen_map_of(cfg, n, v->system_state[n])) {
      auto [it, fresh] = values.emplace(i, val);
      if (!fresh && it->second != val) conflict = true;
    }
  EXPECT_TRUE(conflict);

  // Machine-checked witness: replay the schedule through the real handlers.
  ReplayResult rep = replay_schedule(cfg, mc.initial_nodes(), mc.initial_in_flight(),
                                     v->witness, mc.events(), v->state_hashes);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(PaxosMc, WidsBugNotFoundInCorrectPaxosFromSameState) {
  // Identical live state and driver, but the bug flag off: no violation.
  SystemConfig cfg = one_proposal_cfg(/*bug=*/false, /*proposers=*/{0, 1});
  auto inv = paxos::make_agreement_invariant();
  std::vector<Blob> live = build_5_5_live_state(cfg);

  LocalMcOptions opt;
  opt.max_total_depth = 18;
  opt.use_projection = true;
  opt.time_budget_s = 60;
  LocalModelChecker mc(cfg, inv.get(), opt);
  mc.run(live, {});
  EXPECT_EQ(mc.stats().confirmed_violations, 0u);
  // Correct Paxos maps every node state to the same chosen value, so OPT
  // never even materializes a conflicting combination.
  EXPECT_EQ(mc.stats().system_states, 0u);
}

TEST(PaxosMc, ParallelRunIsDeterministic) {
  SystemConfig cfg = one_proposal_cfg();
  auto inv = paxos::make_agreement_invariant();

  LocalMcOptions seq;
  LocalModelChecker a(cfg, inv.get(), seq);
  a.run_from_initial();

  LocalMcOptions par = seq;
  par.num_threads = 4;
  LocalModelChecker b(cfg, inv.get(), par);
  b.run_from_initial();

  EXPECT_EQ(a.stats().transitions, b.stats().transitions);
  EXPECT_EQ(a.stats().node_states, b.stats().node_states);
  EXPECT_EQ(a.stats().system_states, b.stats().system_states);
  ASSERT_EQ(a.store().num_nodes(), b.store().num_nodes());
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(a.store().size(n), b.store().size(n));
    for (std::uint32_t i = 0; i < a.store().size(n); ++i)
      EXPECT_EQ(a.store().rec(n, i).hash, b.store().rec(n, i).hash);
  }
}

TEST(PaxosMc, DepthSweepGrowsMonotonically) {
  SystemConfig cfg = one_proposal_cfg();
  auto inv = paxos::make_agreement_invariant();
  std::uint64_t prev = 0;
  for (std::uint32_t d : {4u, 8u, 12u, 16u, 22u}) {
    LocalMcOptions opt;
    opt.max_total_depth = d;
    LocalModelChecker mc(cfg, inv.get(), opt);
    mc.run_from_initial();
    EXPECT_GE(mc.stats().node_states, prev);
    prev = mc.stats().node_states;
  }
}

TEST(PaxosMc, TwoProposerSpaceIsMuchLarger) {
  // §5.2's scalability workload: two proposers. Bounded identically, the
  // two-proposer space must dwarf the one-proposer space.
  auto inv = paxos::make_agreement_invariant();

  SystemConfig cfg1 = one_proposal_cfg();
  LocalMcOptions opt;
  opt.max_total_depth = 12;
  opt.enable_system_states = false;  // compare exploration effort only
  opt.time_budget_s = 60;
  LocalModelChecker a(cfg1, inv.get(), opt);
  a.run_from_initial();

  SystemConfig cfg2 = one_proposal_cfg(false, {0, 1});
  LocalModelChecker b(cfg2, inv.get(), opt);
  b.run_from_initial();

  EXPECT_GT(b.stats().node_states, a.stats().node_states);
  EXPECT_GT(b.stats().transitions, a.stats().transitions);
}

}  // namespace
}  // namespace lmc
