// Minimal, deterministic byte serialization.
//
// MaceMC relied on Mace's auto-generated (de)serialization of service state;
// this Writer/Reader pair is our hand-rolled equivalent. Determinism matters:
// state identity (dedup, predecessor pointers, soundness hashes) is the hash
// of these bytes, so equal logical states must serialize identically.
// All integers are little-endian fixed width; containers are length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/types.hpp"

namespace lmc {

/// Thrown by Reader on malformed/truncated input.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends values to a growing byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(const Blob& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw append without a length prefix (caller knows the framing).
  void raw(const std::uint8_t* p, std::size_t n) { buf_.insert(buf_.end(), p, p + n); }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& per_element) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const T& e : v) per_element(*this, e);
  }

  const Blob& data() const { return buf_; }
  Blob take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Blob buf_;
};

/// Consumes values from a byte buffer; throws SerializeError on underflow.
class Reader {
 public:
  explicit Reader(const Blob& b) : p_(b.data()), end_(b.data() + b.size()) {}
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  bool b() { return u8() != 0; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  Blob bytes() {
    std::uint32_t n = u32();
    need(n);
    Blob b(p_, p_ + n);
    p_ += n;
    return b;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& per_element) {
    std::uint32_t n = u32();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(per_element(*this));
    return v;
  }

  bool exhausted() const { return p_ == end_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  /// Asserts the buffer was fully consumed (catches schema drift early).
  void expect_exhausted() const {
    if (!exhausted()) throw SerializeError("trailing bytes after deserialization");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw SerializeError("buffer underflow");
  }

  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<T>(*p_++) << (8 * i));
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- container helpers used by the protocols ------------------------------

inline void write_u32_set(Writer& w, const std::set<std::uint32_t>& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (std::uint32_t v : s) w.u32(v);
}

inline std::set<std::uint32_t> read_u32_set(Reader& r) {
  std::uint32_t n = r.u32();
  std::set<std::uint32_t> s;
  for (std::uint32_t i = 0; i < n; ++i) s.insert(r.u32());
  return s;
}

inline void write_u64_vec(Writer& w, const std::vector<std::uint64_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) w.u64(x);
}

inline std::vector<std::uint64_t> read_u64_vec(Reader& r) {
  std::uint32_t n = r.u32();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

}  // namespace lmc
