#include "runtime/serialize.hpp"

// Header-only for now; this TU anchors the library and keeps room for
// out-of-line growth (e.g., a schema-versioned format).
