// The node state machine abstraction (the paper's Fig. 5 behaviour
// functions) plus the execution funnel both model checkers use.
//
// Mace programs declare handler and message boundaries and get
// (de)serialization generated; here protocols implement this interface by
// hand. Everything the checkers do — dedup, predecessors, soundness — works
// on the serialized representation (`Blob`) and its 64-bit hash, never on
// live objects, so checker state stays copy-free and compact (§4.2).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/footprint.hpp"
#include "runtime/message.hpp"
#include "runtime/serialize.hpp"
#include "runtime/types.hpp"

namespace lmc {

/// One node's deterministic state machine.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// HM: handle a network message. Sends via ctx; must be deterministic.
  virtual void handle_message(const Message& m, Context& ctx) = 0;

  /// Enumerate the internal events (timers, app calls) enabled in this
  /// state. The test driver of §4.2 is expressed through these.
  virtual std::vector<InternalEvent> enabled_internal_events() const = 0;

  /// HA: handle an internal event.
  virtual void handle_internal(const InternalEvent& ev, Context& ctx) = 0;

  /// Deterministic full-state (de)serialization. Equal logical states MUST
  /// produce identical bytes: hashes of these bytes are state identity.
  /// These contracts (and handler determinism above) are what lmc_lint
  /// checks statically and runtime/audit.hpp enforces dynamically.
  virtual void serialize(Writer& w) const = 0;
  virtual void deserialize(Reader& r) = 0;
};

/// Creates a fresh (pre-init) machine for node `self` in an `n`-node system.
using MachineFactory =
    std::function<std::unique_ptr<StateMachine>(NodeId self, std::uint32_t n)>;

/// Immutable description of the system under test.
struct SystemConfig {
  std::uint32_t num_nodes = 0;
  MachineFactory factory;

  /// Classes of interchangeable nodes ("replicated roles"): within one
  /// class, permuting node ids yields behaviourally identical systems.
  /// Consumed by `LocalMcOptions::symmetry` mode `kAuto` (src/mc/symmetry/).
  /// Purely advisory — a wrong hint costs reduction effectiveness, never
  /// soundness, because orbit verification re-checks concrete assignments.
  std::vector<std::vector<NodeId>> symmetric_roles;

  /// Static handler footprints (runtime/footprint.hpp), filled by the
  /// elaborator (DSL compiler, ProtoGen, hand-written make_config). Input
  /// of the static commutation checker behind `LocalMcOptions::por`; a
  /// config without footprints simply gets no partial-order reduction.
  /// Wrong footprints CAN cost soundness — that is what the runtime
  /// commutation auditor and the IN01–IN03 lint diagnostics police.
  std::shared_ptr<const ProtocolFootprints> footprints;

  std::unique_ptr<StateMachine> make(NodeId n) const { return factory(n, num_nodes); }
};

/// Serialize a machine into a fresh blob.
Blob machine_to_blob(const StateMachine& m);

/// Rehydrate node `n` of `cfg` from `state`.
std::unique_ptr<StateMachine> machine_from_blob(const SystemConfig& cfg, NodeId n,
                                                const Blob& state);

/// Result of executing one handler on one serialized node state.
struct ExecResult {
  Blob state;                   ///< successor node state (serialized)
  std::vector<Message> sent;    ///< the handler's `c` set
  bool assert_failed = false;   ///< a local assertion fired
  std::string assert_msg;
};

/// Execute HM / HA on a serialized state. These are the only ways the
/// checkers run protocol code.
ExecResult exec_message(const SystemConfig& cfg, NodeId n, const Blob& state, const Message& m);
ExecResult exec_internal(const SystemConfig& cfg, NodeId n, const Blob& state,
                         const InternalEvent& ev);

/// Enabled internal events of a serialized state.
std::vector<InternalEvent> internal_events_of(const SystemConfig& cfg, NodeId n,
                                              const Blob& state);

/// Initial (pre-init) serialized states for all nodes of `cfg`.
std::vector<Blob> initial_states(const SystemConfig& cfg);

}  // namespace lmc
