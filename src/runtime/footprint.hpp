// Handler footprints: the static read/write interface of every elaborated
// handler rule, registered by whatever elaborated the protocol (the DSL
// compiler, ProtoGen, or a hand-written make_config). This is the input of
// the static commutation checker (analyze/independence): two rules commute
// iff their footprints are disjoint under the monotonicity rules of the
// completeness envelope — anything the checker cannot classify from the
// data here is conservatively DEPENDENT.
//
// Two flavors, chosen per rule:
//  * table flavor (DSL rule tables, ProtoGen specs): the rule is a guarded
//    state transition — `guard_states` is the set of control states the
//    rule fires in, `goto_states` the set it can move to. Rules of a
//    table-flavor node read exactly their guard and write exactly their
//    goto (plus the message digest, which is an order-independent XOR fold
//    — see DESIGN.md §14 for why it may be omitted here).
//  * field flavor (hand-written nodes): `reads` and `writes` name the node
//    fields the handler's behaviour depends on / may modify. The contract
//    is semantic, not syntactic: `reads` must cover every input of the
//    handler's state updates, sends AND assertion outcomes; `writes` every
//    field it can modify. A write may carry a MergeKind when the update is
//    a commutative fold — two writers of the same field commute only if
//    both declare the same non-kNone merge and neither reads the field.
//
// `asserts` flags a handler with assertion inputs NOT captured by `reads`
// (or, for table rules, an injected fail_assert): such a rule is never
// classified independent; the checker reports the near-miss as IN01.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace lmc {

/// How a field write folds into the previous value. Anything but kNone
/// promises a commutative, order-independent merge.
enum class MergeKind : std::uint8_t {
  kNone = 0,       ///< plain assignment / arbitrary mutation
  kSetInsert = 1,  ///< set/map insert keyed by message identity
  kMaxFold = 2,    ///< x = max(x, v)
  kXorFold = 3,    ///< x ^= v
  kOrMask = 4,     ///< x |= v
};

struct FieldAccess {
  std::string field;
  MergeKind merge = MergeKind::kNone;
};

/// Footprint of one elaborated handler rule. Several rules may share an
/// event key (e.g. a DSL message type with one row per guard state); the
/// checker aggregates them per key.
struct RuleFootprint {
  bool is_message = false;  ///< message rule vs internal-event rule
  std::uint32_t key = 0;    ///< message type, or internal-event kind
  std::string label;        ///< rule name for diagnostics ("on_learn", "r3")

  // Field flavor:
  std::vector<std::string> reads;
  std::vector<FieldAccess> writes;
  bool sends = false;    ///< may emit messages (send targets are read-determined)
  bool asserts = false;  ///< assertion inputs beyond `reads` — unclassifiable

  // Table flavor (non-empty guard_states selects this flavor):
  std::vector<std::uint32_t> guard_states;
  std::vector<std::uint32_t> goto_states;
  bool fire_once = false;  ///< internal rule guarded by its own fired bit
};

/// A pair the protocol author vouches for. Declared pairs are admitted to
/// the relation even when the static checker cannot confirm them — they
/// are flagged IN02 and remain subject to the runtime commutation auditor.
struct DeclaredPair {
  bool a_is_message = false;
  std::uint32_t a_key = 0;
  bool b_is_message = false;
  std::uint32_t b_key = 0;
  std::string why;  ///< one-line justification, echoed in diagnostics
};

struct NodeFootprints {
  NodeId node = 0;
  /// True iff `rules` covers every handler the node can run. A node with
  /// incomplete (or absent) footprints gets no independent pairs (IN03).
  bool complete = false;
  std::vector<RuleFootprint> rules;
  std::vector<DeclaredPair> declared_independent;
};

/// Whole-system footprint registry, attached to SystemConfig::footprints.
struct ProtocolFootprints {
  std::vector<NodeFootprints> nodes;
};

}  // namespace lmc
