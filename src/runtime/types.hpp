// Core identifier and blob types shared by every LMC module.
#pragma once

#include <cstdint>
#include <vector>

namespace lmc {

/// Node identifier (index into the membership, dense 0..N-1).
using NodeId = std::uint32_t;

/// 64-bit state/event/message identity used throughout the checker.
using Hash64 = std::uint64_t;

/// Serialized state or payload bytes.
using Blob = std::vector<std::uint8_t>;

}  // namespace lmc
