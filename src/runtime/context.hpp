// Handler execution context: collects the set `c` of messages a handler
// sends (Fig. 5) and records local-assertion outcomes (§4.2 "Local
// assertions"). Handlers must be deterministic: any nondeterminism has to be
// captured in the event itself so a re-execution replays identically.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/message.hpp"
#include "runtime/types.hpp"

namespace lmc {

class Context {
 public:
  explicit Context(NodeId self) : self_(self) {}

  NodeId self() const { return self_; }

  /// Queue a message for the network (the handler's `c` set).
  void send(NodeId dst, std::uint32_t type, Blob payload) {
    Message m;
    m.dst = dst;
    m.src = self_;
    m.type = type;
    m.payload = std::move(payload);
    sent_.push_back(std::move(m));
  }

  void send(Message m) { sent_.push_back(std::move(m)); }

  /// Developer-style local assertion. In LMC a failure marks the node state
  /// invalid (it is discarded); in global MC, where every state is valid, a
  /// failure is a real bug. Live runs treat it as fatal.
  void local_assert(bool cond, std::string_view what = {}) {
    if (!cond && !assert_failed_) {
      assert_failed_ = true;
      assert_msg_ = std::string(what);
    }
  }

  bool assert_failed() const { return assert_failed_; }
  const std::string& assert_message() const { return assert_msg_; }

  const std::vector<Message>& sent() const { return sent_; }
  std::vector<Message> take_sent() && { return std::move(sent_); }

 private:
  NodeId self_;
  std::vector<Message> sent_;
  bool assert_failed_ = false;
  std::string assert_msg_;
};

}  // namespace lmc
