#include "runtime/hash.hpp"

namespace lmc {

Hash64 hash_bytes(const std::uint8_t* p, std::size_t n) {
  Hash64 h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return mix64(h);
}

}  // namespace lmc
