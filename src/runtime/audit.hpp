// ModelValidityAuditor: runtime enforcement of the assumptions LMC's
// soundness rests on (DESIGN.md §9). Token-level lint (analyze/lint.hpp)
// proves what it can statically; this auditor catches the rest by checking,
// for every executed handler transition:
//
//  1. Determinism — re-execute the same handler from the same serialized
//     pre-state and require a byte-identical successor, an identical emitted
//     message sequence and the same assert outcome (catches rand()/time(),
//     mutated static locals/globals, unordered-container emission order).
//  2. Round-trip identity — serialize(deserialize(successor)) must equal
//     the successor bytes (catches asymmetric serialize/deserialize).
//  3. No hidden state — the live post-handler machine and a machine
//     rehydrated from its serialization must enable the same internal
//     events (catches non-serialized fields that influence behaviour).
//
// Enabled by LocalMcOptions::audit_validity / OracleOptions::audit_validity;
// roughly doubles handler-execution cost, so it is a debug/CI knob, not a
// default.
#pragma once

#include <stdexcept>
#include <string>

#include "runtime/state_machine.hpp"

namespace lmc {

/// Raised by the checkers when an audit fails (the model is invalid, so any
/// further exploration result would be meaningless).
class ModelValidityError : public std::runtime_error {
 public:
  ModelValidityError(NodeId node, std::string detail)
      : std::runtime_error("model-validity audit failed on node " + std::to_string(node) + ": " +
                           detail),
        node_(node),
        detail_(std::move(detail)) {}

  NodeId node() const { return node_; }
  const std::string& detail() const { return detail_; }

 private:
  NodeId node_;
  std::string detail_;
};

struct AuditReport {
  bool ok = true;
  std::string detail;  ///< empty when ok; names the violated assumption otherwise
};

/// Audit one already-executed HM transition. `observed` is the ExecResult
/// the checker recorded for (n, pre, m); the audit re-executes and compares.
AuditReport audit_message(const SystemConfig& cfg, NodeId n, const Blob& pre, const Message& m,
                          const ExecResult& observed);

/// Audit one already-executed HA transition.
AuditReport audit_internal(const SystemConfig& cfg, NodeId n, const Blob& pre,
                           const InternalEvent& ev, const ExecResult& observed);

}  // namespace lmc
