#include "runtime/message.hpp"

#include <sstream>

namespace lmc {

Hash64 Message::hash() const {
  Hash64 h = hash_blob(payload);
  h = hash_combine(h, dst);
  h = hash_combine(h, src);
  h = hash_combine(h, type);
  return h;
}

void Message::serialize(Writer& w) const {
  w.u32(dst);
  w.u32(src);
  w.u32(type);
  w.bytes(payload);
}

Message Message::deserialize(Reader& r) {
  Message m;
  m.dst = r.u32();
  m.src = r.u32();
  m.type = r.u32();
  m.payload = r.bytes();
  return m;
}

Hash64 InternalEvent::hash(NodeId node) const {
  Hash64 h = hash_blob(arg);
  h = hash_combine(h, kind);
  h = hash_combine(h, node);
  // Distinguish internal events from messages that would otherwise collide.
  return hash_combine(h, 0x1157ULL);
}

void InternalEvent::serialize(Writer& w) const {
  w.u32(kind);
  w.bytes(arg);
}

InternalEvent InternalEvent::deserialize(Reader& r) {
  InternalEvent e;
  e.kind = r.u32();
  e.arg = r.bytes();
  return e;
}

std::string to_string(const Message& m) {
  std::ostringstream os;
  os << "msg{" << m.src << "->" << m.dst << " type=" << m.type << " |payload|=" << m.payload.size()
     << "}";
  return os.str();
}

std::string to_string(const InternalEvent& e) {
  std::ostringstream os;
  os << "internal{kind=" << e.kind << " |arg|=" << e.arg.size() << "}";
  return os.str();
}

}  // namespace lmc
