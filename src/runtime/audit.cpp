#include "runtime/audit.hpp"

#include <functional>
#include <sstream>

#include "runtime/context.hpp"

namespace lmc {

namespace {

std::string hex_preview(const Blob& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  const std::size_t n = b.size() < 16 ? b.size() : 16;
  for (std::size_t i = 0; i < n; ++i) {
    s += digits[(b[i] >> 4) & 0xf];
    s += digits[b[i] & 0xf];
  }
  if (b.size() > n) s += "...";
  return s;
}

AuditReport fail(const std::string& what) { return {false, what}; }

/// The shared audit: `run` invokes the handler under test on a live machine.
AuditReport audit_exec(const SystemConfig& cfg, NodeId n, const Blob& pre,
                       const std::function<void(StateMachine&, Context&)>& run,
                       const ExecResult& observed, const char* kind) {
  // 1. Determinism: second execution from the same serialized pre-state.
  std::unique_ptr<StateMachine> live;
  Context ctx(n);
  try {
    live = machine_from_blob(cfg, n, pre);
    run(*live, ctx);
  } catch (const ModelValidityError&) {
    throw;
  } catch (const std::exception& e) {
    return fail(std::string(kind) + " re-execution threw (first execution did not): " + e.what());
  }
  const Blob re_state = machine_to_blob(*live);
  if (re_state != observed.state)
    return fail(std::string(kind) +
                " re-execution from the same pre-state produced a different successor (" +
                hex_preview(observed.state) + " vs " + hex_preview(re_state) +
                "): the handler is not a deterministic function of (state, event)");
  if (ctx.sent() != observed.sent) {
    std::ostringstream os;
    os << kind << " re-execution emitted a different message sequence (" << observed.sent.size()
       << " vs " << ctx.sent().size()
       << " messages, or same count with different content/order): emission must be "
          "deterministic — unordered-container iteration is the usual cause";
    return fail(os.str());
  }
  if (ctx.assert_failed() != observed.assert_failed)
    return fail(std::string(kind) + " re-execution disagreed on the local-assert outcome");

  // 2. Round-trip identity: serialize(deserialize(successor)) == successor.
  std::unique_ptr<StateMachine> rehydrated;
  try {
    rehydrated = machine_from_blob(cfg, n, re_state);
  } catch (const std::exception& e) {
    return fail(std::string("deserialize rejected serialize output (") + e.what() +
                "): serialize()/deserialize() are not inverses");
  }
  const Blob round = machine_to_blob(*rehydrated);
  if (round != re_state)
    return fail("serialize(deserialize(successor)) differs from the successor bytes (" +
                hex_preview(re_state) + " vs " + hex_preview(round) +
                "): serialize()/deserialize() are not inverses");

  // 3. Hidden state: the live machine and its serialized image must behave
  // identically. Enabled internal events are the observable we can compare
  // without executing further transitions.
  if (live->enabled_internal_events() != rehydrated->enabled_internal_events())
    return fail(
        "the live post-handler machine and a machine rehydrated from its serialization enable "
        "different internal events: some behaviour-relevant field is missing from serialize()");

  return {};
}

}  // namespace

AuditReport audit_message(const SystemConfig& cfg, NodeId n, const Blob& pre, const Message& m,
                          const ExecResult& observed) {
  return audit_exec(
      cfg, n, pre, [&](StateMachine& sm, Context& ctx) { sm.handle_message(m, ctx); }, observed,
      "handle_message");
}

AuditReport audit_internal(const SystemConfig& cfg, NodeId n, const Blob& pre,
                           const InternalEvent& ev, const ExecResult& observed) {
  return audit_exec(
      cfg, n, pre, [&](StateMachine& sm, Context& ctx) { sm.handle_internal(ev, ctx); }, observed,
      "handle_internal");
}

}  // namespace lmc
