// Network messages and internal (node-local) events — the two event kinds of
// the Fig. 5 system model. A message is a pair (destination, content) where
// the content carries the sender and an opaque protocol payload.
#pragma once

#include <compare>
#include <string>

#include "runtime/hash.hpp"
#include "runtime/serialize.hpp"
#include "runtime/types.hpp"

namespace lmc {

/// An in-flight network message: the (N, M) pair of the paper's model.
/// `type` is a protocol-defined tag; `payload` the serialized body.
struct Message {
  NodeId dst = 0;
  NodeId src = 0;
  std::uint32_t type = 0;
  Blob payload;

  /// Identity hash over the full content (dst, src, type, payload).
  /// Two messages with equal hashes are treated as duplicates by the
  /// checkers (paper §4.2, duplicate-message limit 0).
  Hash64 hash() const;

  void serialize(Writer& w) const;
  static Message deserialize(Reader& r);

  bool operator==(const Message&) const = default;
};

/// A node-local event (timer firing, application/test-driver call).
/// `kind` is protocol-defined; `arg` optional serialized argument.
struct InternalEvent {
  std::uint32_t kind = 0;
  Blob arg;

  /// Identity hash; includes the node so the "same" timer on two nodes is
  /// two distinct events in soundness verification.
  Hash64 hash(NodeId node) const;

  void serialize(Writer& w) const;
  static InternalEvent deserialize(Reader& r);

  bool operator==(const InternalEvent&) const = default;
};

/// Human-readable rendering used in logs and bug reports.
std::string to_string(const Message& m);
std::string to_string(const InternalEvent& e);

}  // namespace lmc
