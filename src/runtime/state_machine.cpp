#include "runtime/state_machine.hpp"

namespace lmc {

Blob machine_to_blob(const StateMachine& m) {
  Writer w;
  m.serialize(w);
  return std::move(w).take();
}

std::unique_ptr<StateMachine> machine_from_blob(const SystemConfig& cfg, NodeId n,
                                                const Blob& state) {
  auto m = cfg.make(n);
  Reader r(state);
  m->deserialize(r);
  r.expect_exhausted();
  return m;
}

ExecResult exec_message(const SystemConfig& cfg, NodeId n, const Blob& state, const Message& m) {
  auto node = machine_from_blob(cfg, n, state);
  Context ctx(n);
  node->handle_message(m, ctx);
  ExecResult res;
  res.state = machine_to_blob(*node);
  res.assert_failed = ctx.assert_failed();
  res.assert_msg = ctx.assert_message();
  res.sent = std::move(ctx).take_sent();
  return res;
}

ExecResult exec_internal(const SystemConfig& cfg, NodeId n, const Blob& state,
                         const InternalEvent& ev) {
  auto node = machine_from_blob(cfg, n, state);
  Context ctx(n);
  node->handle_internal(ev, ctx);
  ExecResult res;
  res.state = machine_to_blob(*node);
  res.assert_failed = ctx.assert_failed();
  res.assert_msg = ctx.assert_message();
  res.sent = std::move(ctx).take_sent();
  return res;
}

std::vector<InternalEvent> internal_events_of(const SystemConfig& cfg, NodeId n,
                                              const Blob& state) {
  auto node = machine_from_blob(cfg, n, state);
  return node->enabled_internal_events();
}

std::vector<Blob> initial_states(const SystemConfig& cfg) {
  std::vector<Blob> v;
  v.reserve(cfg.num_nodes);
  for (NodeId n = 0; n < cfg.num_nodes; ++n) v.push_back(machine_to_blob(*cfg.make(n)));
  return v;
}

}  // namespace lmc
