// 64-bit hashing for state/message/event identity.
//
// The checker treats two node states (or messages) as identical iff their
// hashes are equal (same trade MaceMC makes). We use FNV-1a over the
// serialized bytes with a splitmix64 finalizer for avalanche, and a
// boost-style combiner for composite identities.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/types.hpp"

namespace lmc {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
constexpr Hash64 mix64(Hash64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range, then mixed.
Hash64 hash_bytes(const std::uint8_t* p, std::size_t n);

inline Hash64 hash_blob(const Blob& b) { return hash_bytes(b.data(), b.size()); }

/// Order-dependent combiner (h receives v).
constexpr Hash64 hash_combine(Hash64 h, Hash64 v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Order-independent combiner for sets (commutative + associative).
constexpr Hash64 hash_combine_unordered(Hash64 h, Hash64 v) { return h + mix64(v); }

}  // namespace lmc
