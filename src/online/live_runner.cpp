#include "online/live_runner.hpp"

#include <algorithm>

namespace lmc {

AppDriver first_enabled_driver() {
  return [](NodeId, const std::vector<InternalEvent>& enabled,
            std::mt19937_64&) -> std::optional<InternalEvent> {
    if (enabled.empty()) return std::nullopt;
    return enabled.front();
  };
}

AppDriver fault_injecting_driver(double p, std::uint32_t fault_kind) {
  return [p, fault_kind](NodeId, const std::vector<InternalEvent>& enabled,
                         std::mt19937_64& rng) -> std::optional<InternalEvent> {
    if (enabled.empty()) return std::nullopt;
    const InternalEvent* fault = nullptr;
    const InternalEvent* other = nullptr;
    for (const InternalEvent& e : enabled) {
      if (e.kind == fault_kind && fault == nullptr) fault = &e;
      if (e.kind != fault_kind && other == nullptr) other = &e;
    }
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    if (fault != nullptr && unit(rng) < p) return *fault;
    if (other != nullptr) return *other;
    return std::nullopt;
  };
}

namespace {
struct HeapCmp {
  // std::push_heap builds a max-heap; invert for earliest-first.
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};
}  // namespace

LiveRunner::LiveRunner(const SystemConfig& cfg, LiveOptions opt, AppDriver driver)
    : cfg_(cfg), opt_(opt), driver_(std::move(driver)),
      transport_([&] {
        auto t = opt.transport;
        t.seed = opt.seed * 0x9e3779b97f4a7c15ULL + 1;
        return t;
      }()),
      rng_(opt.seed) {
  nodes_ = initial_states(cfg_);
  // First app tick per node at a small random offset, so init orders vary
  // across seeds just as process start-up does on a real testbed.
  std::uniform_real_distribution<double> jitter(0.0, 0.1);
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    QEv ev;
    ev.t = jitter(rng_);
    ev.is_app = true;
    ev.node = n;
    push(std::move(ev));
  }
}

void LiveRunner::push(QEv ev) {
  ev.seq = seq_++;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
}

void LiveRunner::send_out(std::vector<Message> msgs) {
  for (Message& m : msgs) {
    if (auto delay = transport_.delivery_delay(m)) {
      double t = now_ + *delay;
      if (opt_.fifo_per_pair) {
        // TCP-like in-order delivery between a pair: never overtake the
        // previously scheduled delivery on the same (src, dst).
        double& last = last_delivery_[{m.src, m.dst}];
        t = std::max(t, last + 1e-9);
        last = t;
      }
      QEv ev;
      ev.t = t;
      ev.is_app = false;
      ev.node = m.dst;
      ev.msg = std::move(m);
      push(std::move(ev));
    }
  }
}

void LiveRunner::dispatch(const QEv& ev) {
  if (ev.is_app) {
    const std::vector<InternalEvent> enabled = internal_events_of(cfg_, ev.node, nodes_[ev.node]);
    if (auto pick = driver_(ev.node, enabled, rng_)) {
      ++app_events_;
      ExecResult r = exec_internal(cfg_, ev.node, nodes_[ev.node], *pick);
      if (r.assert_failed) {
        ++assert_failures_;
      } else {
        nodes_[ev.node] = std::move(r.state);
        send_out(std::move(r.sent));
      }
    }
    // Sleep a random time, then tick again (§5.5: 0..60 s).
    std::uniform_real_distribution<double> sleep(opt_.app_min, opt_.app_max);
    QEv next;
    next.t = now_ + std::max(1e-3, sleep(rng_));
    next.is_app = true;
    next.node = ev.node;
    push(std::move(next));
    return;
  }

  ++delivered_;
  ExecResult r = exec_message(cfg_, ev.node, nodes_[ev.node], ev.msg);
  if (r.assert_failed) {
    ++assert_failures_;
    return;
  }
  nodes_[ev.node] = std::move(r.state);
  send_out(std::move(r.sent));
}

void LiveRunner::run_until(double t) {
  while (!heap_.empty() && heap_.front().t <= t) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    QEv ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.t;
    dispatch(ev);
  }
  now_ = t;
}

Snapshot LiveRunner::snapshot() const {
  Snapshot s;
  s.time = now_;
  s.nodes = nodes_;
  for (const QEv& ev : heap_)
    if (!ev.is_app) s.in_flight.push_back(ev.msg);
  return s;
}

}  // namespace lmc
