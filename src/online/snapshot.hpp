// Live-system snapshots: the whole-service-stack state capture that seeds
// each online model-checking run (§3.3, §4.2 "save and restore the whole
// service stack"). A snapshot is the node blobs plus the in-flight messages
// at capture time; it round-trips through bytes so it can be shipped or
// archived.
#pragma once

#include <vector>

#include "runtime/message.hpp"
#include "runtime/serialize.hpp"
#include "runtime/types.hpp"

namespace lmc {

struct Snapshot {
  double time = 0.0;                 ///< live (simulated) capture time
  std::vector<Blob> nodes;           ///< serialized full service stacks
  std::vector<Message> in_flight;    ///< messages sent but not yet delivered

  Blob encode() const;
  static Snapshot decode(const Blob& b);

  bool operator==(const Snapshot&) const = default;
};

}  // namespace lmc
