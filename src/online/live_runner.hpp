// Discrete-event simulation of a live deployment — our substitute for the
// paper's three-node UDP testbed (§5.5): nodes run the real protocol
// handlers, the transport drops 30% of non-loopback messages, and an
// application driver fires internal events (proposals, fault-detector
// triggers) at random intervals. Fully deterministic under a seed, so the
// §5.5/§5.6 bug hunts are reproducible.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "net/sim_transport.hpp"
#include "online/snapshot.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

/// Picks which enabled internal event (if any) the application fires at an
/// app tick. The default driver fires the first enabled event — init first,
/// then whatever the protocol's test driver enables.
using AppDriver = std::function<std::optional<InternalEvent>(
    NodeId node, const std::vector<InternalEvent>& enabled, std::mt19937_64& rng)>;

AppDriver first_enabled_driver();

/// §5.6 driver: "the application instead of proposing a value triggers the
/// fault detector with the probability of 0.1" — fires a fault event with
/// probability p when one is enabled, otherwise the first non-fault event.
AppDriver fault_injecting_driver(double p, std::uint32_t fault_kind);

struct LiveOptions {
  std::uint64_t seed = 1;
  SimTransport::Options transport;   ///< 30% drops by default
  double app_min = 0.0;              ///< min sleep between app events (§5.5: 0 s)
  double app_max = 60.0;             ///< max sleep (§5.5: 60 s)
  /// TCP-like per-(src,dst) FIFO delivery: random latencies still decide
  /// cross-pair interleavings, but messages between the same pair never
  /// overtake each other (§4.3 discusses TCP as usually being simulated
  /// rather than stacked under the protocol).
  bool fifo_per_pair = false;
};

class LiveRunner {
 public:
  LiveRunner(const SystemConfig& cfg, LiveOptions opt, AppDriver driver);

  /// Process all events with timestamp <= t.
  void run_until(double t);

  double now() const { return now_; }
  Snapshot snapshot() const;
  const std::vector<Blob>& nodes() const { return nodes_; }

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t app_events() const { return app_events_; }
  std::uint64_t assert_failures() const { return assert_failures_; }
  const SimTransport& transport() const { return transport_; }

 private:
  struct QEv {
    double t = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal timestamps
    bool is_app = false;
    NodeId node = 0;
    Message msg;
  };

  void push(QEv ev);
  void dispatch(const QEv& ev);
  void send_out(std::vector<Message> msgs);

  const SystemConfig& cfg_;
  LiveOptions opt_;
  AppDriver driver_;
  SimTransport transport_;
  std::mt19937_64 rng_;

  std::vector<Blob> nodes_;
  std::vector<QEv> heap_;  ///< min-heap by (t, seq)
  std::map<std::pair<NodeId, NodeId>, double> last_delivery_;  ///< fifo_per_pair
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
  std::uint64_t delivered_ = 0;
  std::uint64_t app_events_ = 0;
  std::uint64_t assert_failures_ = 0;
};

}  // namespace lmc
