// CrystalBall-style online model checking (§3.3, §4.2): run the (simulated)
// live system, and periodically restart the local model checker from the
// current live snapshot. The checker only needs to out-run the exponential
// explosion for a few seconds per period — exactly the regime LMC targets.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "mc/local_mc.hpp"
#include "online/live_runner.hpp"

namespace lmc {

/// Per-period progress record (passed to CrystalBallOptions::on_period).
struct CrystalBallPeriod {
  int index = 0;             ///< 0-based checker run number
  double live_time = 0.0;    ///< simulated time of this period's snapshot
  bool found = false;        ///< a confirmed violation surfaced this period
  std::uint64_t transitions = 0;  ///< handler executions THIS period
  double checker_s = 0.0;         ///< checker wall time THIS period
  LocalMcStats stats;             ///< this period's checker stats
};

struct CrystalBallOptions {
  double period = 60.0;          ///< live seconds between checker runs (§5.5)
  double max_live_time = 3600.0; ///< give up after this much simulated time
  /// Warm start: share one transition cache (persist/exec_cache.hpp) across
  /// the per-period checker runs, so handler executions earlier periods
  /// already performed are replayed instead of re-run. Exploration stays
  /// identical to cold restarts — same bugs at the same periods — with
  /// strictly fewer handler executions whenever consecutive snapshots'
  /// closures overlap; see bench/bench_warm_online.cpp.
  bool warm_start = false;
  /// Observation hook, called after every checker period (cold or warm).
  std::function<void(const CrystalBallPeriod&)> on_period;
  LocalMcOptions mc;             ///< per-run checker configuration
};

struct CrystalBallResult {
  bool found = false;
  double live_time = 0.0;          ///< simulated time at the detecting snapshot
  double checker_elapsed_s = 0.0;  ///< wall time of the detecting checker run
  int runs = 0;                    ///< checker runs performed
  std::uint64_t total_transitions = 0;  ///< handler executions across all runs
  std::uint64_t total_cache_hits = 0;   ///< executions replayed from the warm cache
  LocalViolation violation;        ///< the confirmed violation (if found)
  Snapshot snapshot;               ///< the snapshot the witness starts from
  EventTable events;               ///< event table for witness replay (if found)
  LocalMcStats last_stats;         ///< stats of the final checker run
};

class CrystalBall {
 public:
  CrystalBall(const SystemConfig& cfg, const Invariant* invariant, LiveRunner& live,
              CrystalBallOptions opt)
      : cfg_(cfg), invariant_(invariant), live_(live), opt_(opt) {}

  /// Alternate live execution and checker runs until a confirmed violation
  /// is found or max_live_time passes.
  CrystalBallResult run();

 private:
  CrystalBallResult run_cold();
  CrystalBallResult run_warm();
  CrystalBallResult run_periods(ExecCache* cache);

 private:
  const SystemConfig& cfg_;
  const Invariant* invariant_;
  LiveRunner& live_;
  CrystalBallOptions opt_;
};

}  // namespace lmc
