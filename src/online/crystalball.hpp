// CrystalBall-style online model checking (§3.3, §4.2): run the (simulated)
// live system, and periodically restart the local model checker from the
// current live snapshot. The checker only needs to out-run the exponential
// explosion for a few seconds per period — exactly the regime LMC targets.
#pragma once

#include <limits>

#include "mc/local_mc.hpp"
#include "online/live_runner.hpp"

namespace lmc {

struct CrystalBallOptions {
  double period = 60.0;          ///< live seconds between checker runs (§5.5)
  double max_live_time = 3600.0; ///< give up after this much simulated time
  LocalMcOptions mc;             ///< per-run checker configuration
};

struct CrystalBallResult {
  bool found = false;
  double live_time = 0.0;          ///< simulated time at the detecting snapshot
  double checker_elapsed_s = 0.0;  ///< wall time of the detecting checker run
  int runs = 0;                    ///< checker runs performed
  LocalViolation violation;        ///< the confirmed violation (if found)
  Snapshot snapshot;               ///< the snapshot that exposed it
  LocalMcStats last_stats;         ///< stats of the final checker run
};

class CrystalBall {
 public:
  CrystalBall(const SystemConfig& cfg, const Invariant* invariant, LiveRunner& live,
              CrystalBallOptions opt)
      : cfg_(cfg), invariant_(invariant), live_(live), opt_(opt) {}

  /// Alternate live execution and checker runs until a confirmed violation
  /// is found or max_live_time passes.
  CrystalBallResult run();

 private:
  const SystemConfig& cfg_;
  const Invariant* invariant_;
  LiveRunner& live_;
  CrystalBallOptions opt_;
};

}  // namespace lmc
