#include "online/snapshot.hpp"

namespace lmc {

Blob Snapshot::encode() const {
  Writer w;
  w.u64(static_cast<std::uint64_t>(time * 1e6));  // microsecond fixed-point
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const Blob& b : nodes) w.bytes(b);
  w.u32(static_cast<std::uint32_t>(in_flight.size()));
  for (const Message& m : in_flight) m.serialize(w);
  return std::move(w).take();
}

Snapshot Snapshot::decode(const Blob& b) {
  Reader r(b);
  Snapshot s;
  s.time = static_cast<double>(r.u64()) / 1e6;
  std::uint32_t n = r.u32();
  s.nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.nodes.push_back(r.bytes());
  n = r.u32();
  s.in_flight.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.in_flight.push_back(Message::deserialize(r));
  r.expect_exhausted();
  return s;
}

}  // namespace lmc
