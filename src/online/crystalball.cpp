#include "online/crystalball.hpp"

namespace lmc {

CrystalBallResult CrystalBall::run() {
  CrystalBallResult out;
  for (double t = opt_.period; t <= opt_.max_live_time + 1e-9; t += opt_.period) {
    live_.run_until(t);
    Snapshot snap = live_.snapshot();
    LocalModelChecker mc(cfg_, invariant_, opt_.mc);
    mc.run(snap.nodes, snap.in_flight);
    ++out.runs;
    out.last_stats = mc.stats();
    if (const LocalViolation* v = mc.first_confirmed()) {
      out.found = true;
      out.live_time = snap.time;
      out.checker_elapsed_s = mc.stats().elapsed_s;
      out.violation = *v;
      out.snapshot = std::move(snap);
      return out;
    }
  }
  out.live_time = live_.now();
  return out;
}

}  // namespace lmc
