#include "online/crystalball.hpp"

#include "obs/trace.hpp"
#include "persist/exec_cache.hpp"

namespace lmc {

CrystalBallResult CrystalBall::run() { return opt_.warm_start ? run_warm() : run_cold(); }

CrystalBallResult CrystalBall::run_cold() { return run_periods(nullptr); }

// Warm start: every period's exploration is IDENTICAL to a cold restart — a
// fresh checker searches exactly the current snapshot's closure with fresh
// depths — but all periods share one transition cache, so any handler
// execution an earlier period already performed is replayed from the cache
// instead of re-run. Same bugs found at the same periods; strictly fewer
// handler executions whenever consecutive snapshots' closures overlap
// (bench/bench_warm_online.cpp measures the savings). Merging snapshots
// into ONE persistent checker (LocalModelChecker::run_warm) is NOT used
// here: it explores the closure of the union of all snapshots, which on
// slowly-changing systems costs a multiple of per-snapshot restarts.
CrystalBallResult CrystalBall::run_warm() {
  ExecCache cache;
  return run_periods(&cache);
}

CrystalBallResult CrystalBall::run_periods(ExecCache* cache) {
  CrystalBallResult out;
  int index = 0;
  for (double t = opt_.period; t <= opt_.max_live_time + 1e-9; t += opt_.period) {
    live_.run_until(t);
    Snapshot snap = live_.snapshot();
    LocalMcOptions mc_opt = opt_.mc;
    mc_opt.exec_cache = cache;
    LocalModelChecker mc(cfg_, invariant_, mc_opt);
    mc.run(snap.nodes, snap.in_flight);
    ++out.runs;
    out.last_stats = mc.stats();
    out.total_transitions += mc.stats().transitions;
    out.total_cache_hits += mc.stats().warm_pairs_skipped;
    const LocalViolation* v = mc.first_confirmed();
    if (opt_.mc.trace != nullptr) {
      obs::TraceEvent ev;
      ev.type = obs::EventType::kOnlinePeriod;
      ev.phase = obs::Phase::kOnline;
      ev.a = static_cast<std::uint64_t>(index);
      ev.b = mc.stats().transitions;
      ev.c = v != nullptr ? 1 : 0;
      ev.dur = mc.stats().elapsed_s;
      opt_.mc.trace->record(ev);
    }
    if (opt_.on_period) {
      CrystalBallPeriod p;
      p.index = index;
      p.live_time = snap.time;
      p.found = v != nullptr;
      p.transitions = mc.stats().transitions;
      p.checker_s = mc.stats().elapsed_s;
      p.stats = mc.stats();
      opt_.on_period(p);
    }
    ++index;
    if (v != nullptr) {
      out.found = true;
      out.live_time = snap.time;
      out.checker_elapsed_s = mc.stats().elapsed_s;
      out.violation = *v;
      out.events = mc.events();
      out.snapshot = std::move(snap);
      return out;
    }
  }
  out.live_time = live_.now();
  return out;
}

}  // namespace lmc
