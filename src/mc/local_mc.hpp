// The local model checker (LMC) — the paper's contribution (§4).
//
// The checker never stores global or system states. It stores:
//  * LS_n — the set of traversed local states of each node n, and
//  * I+   — one shared, monotonically growing network of every message any
//           transition ever generated.
// Exploration proceeds in rounds (Fig. 9): every message in I+ is executed
// on every not-yet-tried state of its destination node, and every state's
// enabled internal events are executed once. New states record predecessor
// pointers (event hash + generated-message hashes). System states are
// materialized only transiently, to check the invariant; a preliminary
// violation is confirmed by SoundnessVerifier before being reported.
//
// Variants (Figures 10-13):
//  * LMC-GEN: use_projection = false — every combination containing the new
//    node state is created and checked;
//  * LMC-OPT: use_projection = true — invariant-specific creation: only node
//    states mapped by the invariant's projection participate, and only
//    conflicting combinations are built (§4.2 "System states");
//  * LMC-explore: enable_system_states = false (Fig. 13);
//  * LMC-OPT-system-state: enable_soundness = false (Fig. 13).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mc/invariant.hpp"
#include "mc/local_store.hpp"
#include "mc/soundness.hpp"
#include "mc/stats.hpp"
#include "net/monotonic_network.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

struct LocalMcOptions {
  /// Expand a node state only while its chain depth is below this.
  std::uint32_t max_chain_depth = std::numeric_limits<std::uint32_t>::max();
  /// Check combinations only when the sum of chain depths is at most this
  /// (the Depth axis of Figures 10-13); also bounds expansion.
  std::uint32_t max_total_depth = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t max_transitions = std::numeric_limits<std::uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation (e.g. by RacingChecker). Checked with budgets.
  const std::atomic<bool>* cancel = nullptr;
  bool stop_on_confirmed = true;

  bool enable_system_states = true;  ///< false = LMC-explore (Fig. 13)
  bool enable_soundness = true;      ///< false = LMC-*-system-state (Fig. 13)
  bool use_projection = false;       ///< true = LMC-OPT (requires invariant projection)

  /// §4.2 "Local assertions" offers two policies for a failed local assert:
  /// discard the node state as invalid (the paper's choice and our default
  /// — the usual cause is an unexpected delivery that I+'s conservative
  /// policy made possible), or ignore the assert and keep the successor
  /// state (a protocol bug will eventually violate a system invariant).
  enum class AssertPolicy { DiscardState, IgnoreViolation };
  AssertPolicy assert_policy = AssertPolicy::DiscardState;

  /// Threads for handler execution within a round (1 = sequential). Results
  /// are merged in deterministic task order, so exploration is identical
  /// for any thread count.
  unsigned num_threads = 1;

  /// Safety cap on combinations materialized per new node state (GEN).
  std::uint64_t max_system_states_per_step = std::numeric_limits<std::uint64_t>::max();

  SoundnessOptions soundness;
};

/// A (preliminary or confirmed) invariant violation on a system state.
struct LocalViolation {
  std::vector<std::uint32_t> combo;   ///< per node: index into LS_n
  std::vector<Hash64> state_hashes;   ///< per node: state hash
  std::vector<Blob> system_state;     ///< per node: serialized state
  std::string invariant;
  bool confirmed = false;             ///< passed soundness verification
  Schedule witness;                   ///< feasible total order (if confirmed)
};

class LocalModelChecker {
 public:
  LocalModelChecker(const SystemConfig& cfg, const Invariant* invariant, LocalMcOptions opt);

  /// findBugs(liveState, invariant) — explore from a live snapshot.
  void run(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);

  /// Explore from the protocol's initial states, empty network.
  void run_from_initial();

  const LocalMcStats& stats() const { return stats_; }
  const std::vector<LocalViolation>& violations() const { return violations_; }
  /// First confirmed violation, or nullptr.
  const LocalViolation* first_confirmed() const;

  const LocalStore& store() const { return store_; }
  const MonotonicNetwork& iplus() const { return net_; }
  const EventTable& events() const { return events_; }
  const std::vector<Hash64>& initial_in_flight_hashes() const { return initial_hashes_; }
  const std::vector<Blob>& initial_nodes() const { return initial_nodes_; }
  const std::vector<Message>& initial_in_flight() const { return initial_msgs_; }

 private:
  struct Task {
    bool is_message = false;
    std::size_t net_idx = 0;     ///< message tasks: entry in I+
    NodeId node = 0;
    std::uint32_t state_idx = 0;
  };
  struct Exec {
    bool is_message = false;
    Hash64 ev_hash = 0;
    NodeId node = 0;
    std::uint32_t pred_idx = 0;
    ExecResult result;
    InternalEvent ev;  ///< internal tasks: the executed event
  };

  void init_run(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);
  bool collect_tasks(std::vector<Task>& tasks);
  void execute_tasks(const std::vector<Task>& tasks, std::vector<std::vector<Exec>>& results);
  void apply_exec(const Exec& e);
  void check_initial_combination();
  void check_combinations(NodeId n, std::uint32_t idx);
  void check_one_combination(std::vector<std::uint32_t>& combo);
  void check_masked_violation(const std::vector<std::uint32_t>& combo,
                              const std::vector<bool>& fixed);
  bool combo_violates(const std::vector<std::uint32_t>& combo) const;
  void handle_prelim_violation(const std::vector<std::uint32_t>& combo,
                               const std::vector<bool>* fixed = nullptr);
  std::uint32_t expand_bound() const;
  bool budget_exceeded() const;
  void refresh_memory_stats();

  const SystemConfig& cfg_;
  const Invariant* invariant_;
  LocalMcOptions opt_;

  LocalStore store_;
  MonotonicNetwork net_;
  EventTable events_;
  std::vector<Hash64> initial_hashes_;
  std::vector<Blob> initial_nodes_;
  std::vector<Message> initial_msgs_;
  std::vector<std::uint32_t> internal_scan_;   ///< per node: next state to scan for HA
  std::vector<std::vector<Projection>> proj_;  ///< per node, parallel to LS_n (when projecting)
  std::vector<std::vector<std::uint32_t>> mapped_;  ///< per node: states with non-empty projection

  bool member_feasible(NodeId n, std::uint32_t idx);
  void record_confirmed(const std::vector<std::uint32_t>& combo, SoundnessResult res);
  void process_deferred();

  struct Deferred {
    std::vector<std::uint32_t> combo;
    std::vector<bool> fixed;
    bool has_mask = false;
  };
  std::vector<Deferred> deferred_;

  LocalMcStats stats_;
  std::vector<LocalViolation> violations_;
  bool stop_ = false;
  double deadline_ = std::numeric_limits<double>::infinity();
  std::uint64_t combo_probe_ = 0;

  /// Message hashes each node's recorded transitions can generate; feeds
  /// the per-member feasibility pre-check (see SoundnessVerifier).
  std::vector<std::unordered_set<Hash64>> node_gens_;
  /// Pred/self-loop edges recorded per node (feasibility cache signature:
  /// a new edge anywhere in the node's graph can open new paths).
  std::vector<std::uint64_t> pred_edges_;
  struct FeasEntry {
    bool feasible = false;
    std::uint64_t sig = 0;  ///< availability signature the verdict was computed at
  };
  std::unordered_map<std::uint64_t, FeasEntry> feas_cache_;
};

}  // namespace lmc
