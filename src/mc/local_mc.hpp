// The local model checker (LMC) — the paper's contribution (§4).
//
// The checker never stores global or system states. It stores:
//  * LS_n — the set of traversed local states of each node n, and
//  * I+   — one shared, monotonically growing network of every message any
//           transition ever generated.
// Exploration follows Fig. 9's fixpoint: every message in I+ is executed
// on every not-yet-tried state of its destination node, and every state's
// enabled internal events are executed once. The cursor scans that discover
// this work publish tasks in deterministic order into a work-stealing
// pipeline (mc/concurrent/pipeline.hpp): workers execute the pure handler
// part concurrently while the applier consumes results in publication order
// — there is no round barrier serializing handler execution, and the
// exploration is byte-identical at any thread count (DESIGN.md §12). New
// states record predecessor pointers (event hash + generated-message
// hashes). System states are materialized only transiently, to check the
// invariant; a preliminary violation is confirmed by SoundnessVerifier
// before being reported.
//
// Variants (Figures 10-13):
//  * LMC-GEN: use_projection = false — every combination containing the new
//    node state is created and checked;
//  * LMC-OPT: use_projection = true — invariant-specific creation: only node
//    states mapped by the invariant's projection participate, and only
//    conflicting combinations are built (§4.2 "System states");
//  * LMC-explore: enable_system_states = false (Fig. 13);
//  * LMC-OPT-system-state: enable_soundness = false (Fig. 13).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/independence/independence.hpp"
#include "mc/concurrent/pipeline.hpp"
#include "mc/invariant.hpp"
#include "mc/local_store.hpp"
#include "mc/parallel_local_mc.hpp"
#include "mc/soundness.hpp"
#include "mc/stats.hpp"
#include "mc/symmetry/canonicalizer.hpp"
#include "net/monotonic_network.hpp"
#include "persist/checkpoint.hpp"
#include "runtime/hash.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

class ExecCache;

namespace obs {
class TraceSink;
class ProfileSink;
class MetricsSink;
struct MetricsSnapshot;
}  // namespace obs

struct LocalMcOptions {
  /// Expand a node state only while its chain depth is below this.
  std::uint32_t max_chain_depth = std::numeric_limits<std::uint32_t>::max();
  /// Check combinations only when the sum of chain depths is at most this
  /// (the Depth axis of Figures 10-13); also bounds expansion.
  std::uint32_t max_total_depth = std::numeric_limits<std::uint32_t>::max();
  std::uint64_t max_transitions = std::numeric_limits<std::uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation (e.g. by RacingChecker). Checked with budgets.
  const std::atomic<bool>* cancel = nullptr;
  bool stop_on_confirmed = true;

  bool enable_system_states = true;  ///< false = LMC-explore (Fig. 13)
  bool enable_soundness = true;      ///< false = LMC-*-system-state (Fig. 13)
  bool use_projection = false;       ///< true = LMC-OPT (requires invariant projection)

  /// §4.2 "Local assertions" offers two policies for a failed local assert:
  /// discard the node state as invalid (the paper's choice and our default
  /// — the usual cause is an unexpected delivery that I+'s conservative
  /// policy made possible), or ignore the assert and keep the successor
  /// state (a protocol bug will eventually violate a system invariant).
  enum class AssertPolicy { DiscardState, IgnoreViolation };
  AssertPolicy assert_policy = AssertPolicy::DiscardState;

  /// Threads for the parallel phases (1 = sequential): phase-1 handler
  /// execution (a work-stealing pipeline of num_threads - 1 workers plus
  /// the applier — tasks are published in deterministic cursor-scan order
  /// and their results consumed in exactly that order), the combination
  /// sweep per new node state (LMC-GEN Cartesian shards / LMC-OPT
  /// projection-pair shards), soundness verification of the sweep's
  /// preliminary violations, and the phase-2 deferred drain. All results
  /// merge in deterministic publication/enumeration order on the calling
  /// thread, so exploration, confirmed violations, witness schedules and
  /// checkpoints are byte-identical for any thread count. Invariants must
  /// be thread-safe for concurrent const use (pure predicates are). The
  /// pools are lazily created, kept across rounds, and never serialized.
  unsigned num_threads = 1;

  /// Safety cap on combinations materialized per new node state (GEN).
  std::uint64_t max_system_states_per_step = std::numeric_limits<std::uint64_t>::max();

  /// Auto-checkpointing: when both are set, the checker saves its full
  /// state to `checkpoint_path` (atomically) every `checkpoint_every_s`
  /// wall seconds, at cooperative safepoints between task groups — the
  /// interval is honored even inside a long generation of slow handlers
  /// (unconsumed published tasks are serialized as `pending`, exactly like
  /// a budget stop). 0 disables.
  double checkpoint_every_s = 0.0;
  std::string checkpoint_path;

  /// Optional cross-run transition cache (persist/exec_cache.hpp). Handler
  /// executions are memoized by (event hash, state hash): a pair any earlier
  /// run already executed is replayed from the cache — counted in
  /// stats.warm_pairs_skipped instead of stats.transitions — so restarts
  /// from overlapping snapshots redo none of the handler work. Handlers are
  /// deterministic, so the exploration ORDER is identical with or without
  /// it; under a wall-clock budget a cached run simply gets further before
  /// the cutoff (replays are cheaper than executions).
  ExecCache* exec_cache = nullptr;

  /// Structured exploration tracing (obs/trace.hpp). nullptr (the default)
  /// disables tracing at near-zero cost: every call site is a null-pointer
  /// test, no event is allocated. The trace's identity content is a pure
  /// function of the exploration — attaching a sink never perturbs results,
  /// and the same run traces identically at any num_threads (DESIGN.md §10).
  /// The sink is runtime-only state: it is never serialized to checkpoints.
  /// A resumed run's trace covers only its own segment, but stays stitchable
  /// to the original's: kRunBegin carries the segment id in `seq` (0 for a
  /// fresh run, incremented per resume) plus the carried-over transition
  /// count, and round numbering continues from the checkpoint's round
  /// instead of restarting at 0.
  obs::TraceSink* trace = nullptr;

  /// Deep performance profiling (obs/prof.hpp, DESIGN.md §15). nullptr (the
  /// default) disables it at the cost of a null-pointer test per call site.
  /// The profile's identity aggregates (typed counters, per-shard ExecCache
  /// hits/misses, per-rule run/byte ledgers) are a pure function of the
  /// exploration — byte-identical at any num_threads — while wall seconds
  /// and time histograms are attribution. Like the trace sink it is
  /// runtime-only state, never serialized to checkpoints, and attaching it
  /// never perturbs exploration results.
  obs::ProfileSink* profile = nullptr;

  /// Heartbeat metrics (obs/metrics.hpp). nullptr disables. The checker
  /// offers a snapshot at round boundaries and run book-ends; the sink's
  /// interval decides what is recorded. Attribution only — never affects
  /// exploration.
  obs::MetricsSink* metrics = nullptr;

  /// ModelValidityAuditor (runtime/audit.hpp): audit every non-cached
  /// handler execution for determinism, round-trip identity and hidden
  /// state. A failed audit throws ModelValidityError out of run*() — the
  /// model is invalid, so exploration results would be meaningless. Roughly
  /// doubles handler cost; a debug/CI knob, not a default.
  bool audit_validity = false;

  SoundnessOptions soundness;

  /// Symmetry reduction over replicated roles (src/mc/symmetry/, DESIGN.md
  /// §13). Defaults off, so every existing byte-identity gate is untouched.
  /// When it resolves to active (see the activation conditions on
  /// `LocalModelChecker::symmetry_classes`), the combination sweep
  /// enumerates one canonical representative per orbit of within-class
  /// permutations, `stats().system_states` counts orbits instead of ordered
  /// combinations, and every violating orbit is confirmed in the phase-2
  /// drain by expanding its concrete member assignments — so confirmed
  /// violations agree with the unreduced checker up to role permutation
  /// even for wrong class hints. kExplicit with malformed classes
  /// (overlapping / out of range) throws std::invalid_argument from run*().
  symmetry::SymmetryOptions symmetry;

  /// Sleep-set-style partial-order reduction driven by the static
  /// independence relation (analyze/independence/, DESIGN.md §14). Defaults
  /// off, so every existing byte-identity gate is untouched. Activation
  /// additionally requires registered handler footprints
  /// (SystemConfig::footprints), unbounded max_total_depth AND
  /// max_chain_depth (recorded depths are path-dependent under pruning —
  /// see resolve_por) and a non-empty derived relation;
  /// otherwise the run silently stays unreduced (PorStats::active == 0).
  /// Composes with `symmetry`: POR thins phase-1 deliveries, symmetry
  /// collapses the combination sweep — independent mechanisms.
  indep::PorOptions por;
};

class LocalModelChecker {
 public:
  LocalModelChecker(const SystemConfig& cfg, const Invariant* invariant, LocalMcOptions opt);

  /// findBugs(liveState, invariant) — explore from a live snapshot.
  void run(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);

  /// Explore from the protocol's initial states, empty network.
  void run_from_initial();

  /// Merge-based warm start: the first call behaves like run(); each later
  /// call MERGES the new snapshot into the existing LS_n / I+ — new node
  /// states become fresh roots, in-flight messages go through I+'s
  /// duplicate suppression — and continues exploration with all cursors
  /// intact, so only (message, state) pairs not tried in earlier calls
  /// execute. Each merged snapshot is an epoch; soundness verification
  /// anchors every confirmed violation to one epoch's consistent state
  /// (LocalViolation::epoch). Stats and violations accumulate across calls;
  /// the time budget applies per call, max_transitions to the total.
  ///
  /// Note the search space is the closure of the UNION of snapshots (one
  /// epoch's messages stay deliverable to every epoch's states), which on
  /// slowly-changing systems costs a multiple of per-snapshot restarts —
  /// online checking therefore warm-starts with per-period cold restarts
  /// sharing a LocalMcOptions::exec_cache instead (online/crystalball.cpp).
  void run_warm(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);

  /// Continue an interrupted run from a checkpoint file. The checker's
  /// stores, cursors, stats and the stopped round's unapplied tasks are
  /// restored, so the resumed exploration is exactly the one the original
  /// run would have performed (same states, transitions and violations) —
  /// see tests/test_persist.cpp for the pinned equivalence.
  void run_resumed(const std::string& path);

  /// Serialize the complete checker state (see persist/FORMAT.md).
  Blob checkpoint_bytes() const;
  void save_checkpoint(const std::string& path) const;
  /// Restore state from a checkpoint without running (run_resumed = load +
  /// continue). Throws CheckpointError on mismatch/corruption.
  void load_checkpoint(const std::string& path);
  void load_checkpoint_bytes(const Blob& data);

  const LocalMcStats& stats() const { return stats_; }
  /// Handler executions audited under audit_validity. Runtime-only (NOT in
  /// LocalMcStats: that struct is pinned by the checkpoint format).
  std::uint64_t audits_performed() const { return audits_performed_.load(std::memory_order_relaxed); }
  /// Worker exceptions beyond the first (rethrown) one of a failing fan-out
  /// — counted instead of silently lost, across both the phase-1 pipeline
  /// and the phase-2 WorkerPool. Runtime-only (NOT in LocalMcStats); also
  /// surfaced as kWorkerError trace events and in lmc_report.
  std::uint64_t worker_exceptions_dropped() const {
    return pipeline_dropped_ + (pool_ ? pool_->dropped_exceptions() : 0);
  }
  const std::vector<LocalViolation>& violations() const { return violations_; }
  /// First confirmed violation, or nullptr.
  const LocalViolation* first_confirmed() const;

  /// The symmetry classes the run resolved to (empty when the reduction is
  /// inactive). Activation requires symmetry.mode != kOff AND an invariant
  /// that vouches for the classes (Invariant::symmetric_under) AND the GEN
  /// sweep (use_projection with a projecting invariant is excluded) AND an
  /// unbounded max_total_depth (a finite total-depth filter is arrangement-
  /// dependent, which would break the orbit abstraction) AND at least one
  /// surviving class of 2..64 members.
  std::vector<std::vector<NodeId>> symmetry_classes() const {
    return canon_ != nullptr ? canon_->classes() : std::vector<std::vector<NodeId>>{};
  }
  /// Reduction counters (zero when inactive). Runtime + checkpoint section
  /// 13 — deliberately NOT part of LocalMcStats (pinned layout).
  const symmetry::SymmetryStats& symmetry_stats() const { return sym_stats_; }

  /// Partial-order reduction counters (PorStats::active == 0 when the
  /// reduction did not resolve). Runtime + checkpoint section 14 —
  /// deliberately NOT part of LocalMcStats (pinned layout).
  const indep::PorStats& por_stats() const { return por_stats_; }
  /// The independence relation driving the reduction; null when inactive.
  const indep::IndependenceRelation* por_relation() const { return por_rel_.get(); }

  const LocalStore& store() const { return store_; }
  const MonotonicNetwork& iplus() const { return net_; }
  const EventTable& events() const { return events_; }
  /// All snapshot epochs merged so far (offline runs have exactly one).
  const std::vector<CheckerEpoch>& epochs() const { return epochs_; }
  // First-epoch views, kept for the offline API (and single-epoch callers).
  const std::vector<Hash64>& initial_in_flight_hashes() const;
  const std::vector<Blob>& initial_nodes() const;
  const std::vector<Message>& initial_in_flight() const;

 private:
  struct Task {
    bool is_message = false;
    std::size_t net_idx = 0;     ///< message tasks: entry in I+
    NodeId node = 0;
    std::uint32_t state_idx = 0;
  };
  struct Exec {
    bool is_message = false;
    bool cached = false;  ///< result replayed from opt_.exec_cache, not executed
    /// Worker-side peek() saw the pair in the cache and skipped execution;
    /// the applier fetches (or, if a rotation evicted it meanwhile,
    /// re-executes) the result at consume time — see apply_exec.
    bool peek_hit = false;
    Hash64 ev_hash = 0;
    NodeId node = 0;
    std::uint32_t pred_idx = 0;
    ExecResult result;
    InternalEvent ev;      ///< internal tasks: the executed event
    double exec_s = 0.0;   ///< worker-measured handler seconds (tracing/profiling only)
  };
  using Pipeline = concurrent::ExplorePipeline<Task, Exec>;

  void init_run(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);
  void merge_snapshot(const std::vector<Blob>& nodes, const std::vector<Message>& in_flight);
  void explore_stream();
  std::uint64_t publish_round(Pipeline& pipe);
  std::vector<Exec> execute_task(const Task& t);
  void apply_exec(Exec& e, std::uint64_t seq);
  void check_snapshot_combination(const std::vector<std::uint32_t>& roots);
  void check_combinations(NodeId n, std::uint32_t idx);
  void check_one_combination(std::vector<std::uint32_t>& combo);
  bool combo_violates(const std::vector<std::uint32_t>& combo) const;
  std::uint32_t expand_bound() const;
  bool budget_exceeded() const;
  bool hard_budget_exceeded() const;
  void refresh_memory_stats();
  void finalize_stats();
  void maybe_auto_checkpoint();
  CheckerImage make_image() const;
  std::vector<EpochSeed> epoch_seeds() const;
  std::size_t total_in_flight() const;

  const SystemConfig& cfg_;
  const Invariant* invariant_;
  LocalMcOptions opt_;

  LocalStore store_;
  MonotonicNetwork net_;
  EventTable events_;
  std::vector<CheckerEpoch> epochs_;           ///< snapshots merged so far
  std::vector<std::uint32_t> internal_scan_;   ///< per node: next state to scan for HA
  std::vector<std::vector<Projection>> proj_;  ///< per node, parallel to LS_n (when projecting)
  std::vector<std::vector<std::uint32_t>> mapped_;  ///< per node: states with non-empty projection

  bool member_feasible(NodeId n, std::uint32_t idx);
  void record_confirmed(const std::vector<std::uint32_t>& combo, SoundnessResult res);
  void process_deferred();

  /// A combination awaiting (or deferred for) soundness verification —
  /// also the work item of the parallel verification phases. `sym` marks an
  /// orbit representative from the symmetry sweep: the phase-2 drain
  /// expands all concrete member assignments of its orbit and confirms the
  /// first sound one (de-canonicalization).
  struct Deferred {
    std::vector<std::uint32_t> combo;
    std::vector<bool> fixed;
    bool has_mask = false;
    bool sym = false;
  };
  std::vector<Deferred> deferred_;

  // --- phase-2 parallel machinery (see DESIGN.md "Parallel phase 2") ------
  // A sweep for a new node state runs in two fanned-out stages: (A) shards
  // of the combination/pair enumeration emit preliminary violations in
  // enumeration order with per-shard stat accumulators, (B) each preliminary
  // violation is verified (feasibility pre-check + quick-capped joint
  // search) independently. Outcomes are merged on the calling thread in
  // enumeration order, so counters, the deferred queue, confirmed
  // violations and witness schedules are identical for any thread count.
  void sweep_gen(NodeId n, std::uint32_t idx, std::vector<Deferred>& prelims);
  void sweep_opt(NodeId n, std::uint32_t idx, std::vector<Deferred>& prelims);
  // --- symmetry reduction (src/mc/symmetry/, DESIGN.md §13) ---------------
  /// Resolve LocalMcOptions::symmetry against the invariant/config and seed
  /// the per-class universes from the current store. Called from init_run
  /// and load_checkpoint_bytes; leaves canon_ null when inactive.
  void resolve_symmetry();
  /// Orbit-canonical replacement for sweep_gen: enumerate only canonical
  /// combinations (multisets over each class universe, concrete states at
  /// non-class nodes) containing the new state (n, idx). Runs inline on the
  /// applier — the orbit seen-set is single-writer by design.
  void sweep_sym(NodeId n, std::uint32_t idx);
  struct SymSweepCtx {
    std::uint64_t cap = 0;  ///< remaining max_system_states_per_step budget
    bool cap_noted = false;
  };
  /// Process one canonical candidate: orbit-hash dedup, stats, invariant
  /// check on the deterministic representative, defer-on-violation.
  /// Returns false when the sweep must stop (budget / cap).
  bool sym_consider(std::vector<std::uint32_t>& combo,
                    const std::vector<std::vector<std::uint32_t>>& counts, SymSweepCtx& ctx);
  /// Verify `jobs` in parallel, merge outcomes in order. phase2 = the
  /// deferred drain (full caps, no feasibility pre-check, no re-deferral).
  void verify_prelims(std::vector<Deferred> jobs, bool phase2);
  /// Run fn(0..n-1) on the persistent pool (created lazily; inline when
  /// num_threads <= 1 or n == 1). Worker exceptions rethrow here.
  void pool_run(std::size_t n, const std::function<void(std::size_t)>& fn);
  unsigned pool_width() const { return opt_.num_threads > 1 ? opt_.num_threads : 1; }

  /// Runtime-only worker pool — deliberately NOT part of CheckerImage /
  /// checkpoints (persist/FORMAT.md): thread state is not exploration state.
  std::unique_ptr<WorkerPool> pool_;
  /// The live phase-1 pipeline while explore_stream runs (for safepoint
  /// checkpoints to materialize the backlog); null otherwise. Runtime-only.
  Pipeline* pipe_ = nullptr;
  /// Secondary pipeline-worker exceptions accounted at an aborting consume
  /// (see worker_exceptions_dropped()).
  std::uint64_t pipeline_dropped_ = 0;

  /// Resolved symmetry context (classes, universes, orbit seen-set); null
  /// when the reduction is inactive. Rebuilt by resolve_symmetry.
  std::unique_ptr<symmetry::Canonicalizer> canon_;
  symmetry::SymmetryStats sym_stats_;

  // --- partial-order reduction (analyze/independence/, DESIGN.md §14) -----
  /// Outcome of one historical message delivery at (node, pred state): the
  /// justification database of the publish-time prune rule.
  enum class FwdOutcome : std::uint8_t {
    kSucc = 0,       ///< delivery produced/rediscovered a successor state
    kNoop = 1,       ///< silent no-op: no state change, no sends
    kLoopSends = 2,  ///< self-loop that sent (duplicate/stale re-send)
    kDiscard = 3,    ///< assert-discarded delivery
    kPruned = 4,     ///< the pair itself was pruned — sleep-set seed
  };
  struct FwdKey {
    std::uint32_t pred_idx = 0;
    Hash64 ev_hash = 0;
    bool operator==(const FwdKey&) const = default;
  };
  struct FwdKeyHash {
    std::size_t operator()(const FwdKey& k) const {
      return static_cast<std::size_t>(mix64(k.ev_hash ^ (static_cast<Hash64>(k.pred_idx) + 1)));
    }
  };
  struct FwdRec {
    FwdOutcome outcome = FwdOutcome::kSucc;
    std::uint32_t succ = 0;  ///< kSucc only: successor index in LS_n
  };
  /// Resolve LocalMcOptions::por against the config (footprints registered,
  /// unbounded max_total_depth, non-empty derived relation). Called after
  /// resolve_symmetry from init_run and load_checkpoint_bytes; leaves
  /// por_rel_ null when inactive.
  void resolve_por();
  /// Verdict of the publish-time prune rule: publish the pair, prune it, or
  /// (first pass only) hold it one generation because an independent pred
  /// edge's forward record is still in flight in the current stream.
  enum class PruneVerdict : std::uint8_t { kPublish = 0, kPrune = 1, kDefer = 2 };
  /// The publish-time prune rule (DESIGN.md §14). Applier-only; mutates
  /// only POR statistics, and may run the sampled commutation auditor,
  /// which throws indep::PorAuditError on divergence. `allow_defer` is set
  /// on a pair's first consideration and cleared on its deferred retry.
  PruneVerdict try_prune_por(const MonotonicNetwork::Entry& e, NodeId d, std::uint32_t rec_idx,
                             const NodeStateRec& rec, bool allow_defer);
  void record_fwd(NodeId n, std::uint32_t pred_idx, Hash64 ev_hash, FwdOutcome out,
                  std::uint32_t succ);
  std::unique_ptr<indep::IndependenceRelation> por_rel_;  ///< null = POR inactive
  /// True iff every registered footprint write is a plain MergeKind::kNone
  /// assignment. Under that guard a kLoopSends record also justifies a
  /// prune: independence then implies fully disjoint write sets, so the
  /// message still self-loops after the pred edge and re-sends byte-
  /// identical traffic that the monotone I+ dedups (DESIGN.md §14).
  /// Derived from the config in resolve_por — never persisted.
  bool por_loop_sends_ok_ = false;
  indep::PorStats por_stats_;
  /// Per node: delivery outcomes keyed by (pred state idx, message hash).
  /// kSucc/kLoopSends are reconstructible from preds/self_loops on
  /// checkpoint load; kNoop/kDiscard/kPruned leave no store trace and are
  /// persisted in checkpoint section 14.
  std::vector<std::unordered_map<FwdKey, FwdRec, FwdKeyHash>> por_fwd_;
  /// Message pairs deferred one generation (PruneVerdict::kDefer): decided
  /// for real at the top of the next publish_round, after the stream that
  /// carries their pred records has been applied. Serialized in checkpoint
  /// section 14 — cursors have already advanced past these pairs.
  std::vector<Task> por_deferred_;
  std::uint64_t por_audit_ctr_ = 0;  ///< audit_every sampling counter

  LocalMcStats stats_;
  /// audit_validity counter; atomic because audits run on pool workers.
  std::atomic<std::uint64_t> audits_performed_{0};
  std::vector<LocalViolation> violations_;
  bool stop_ = false;
  bool initialized_ = false;          ///< init_run/load_checkpoint has happened
  double deadline_ = std::numeric_limits<double>::infinity();
  std::uint64_t combo_probe_ = 0;
  /// Tasks collected (cursors already advanced) but not applied when the
  /// last run stopped; serialized in checkpoints, replayed first on resume.
  std::vector<Task> pending_tasks_;
  double base_elapsed_s_ = 0.0;       ///< elapsed_s carried over from prior runs
  double run_t0_ = 0.0;               ///< wall start of the current run segment
  double last_checkpoint_s_ = 0.0;
  /// Round (task-generation) counter for trace/metrics attribution. Stamped
  /// into checkpoints (kSecSegment) so a resumed segment's trace continues
  /// the original numbering instead of restarting at 0.
  std::uint32_t cur_round_ = 0;
  /// Trace segment id: 0 for a fresh run, +1 per resume (kRunBegin.seq).
  /// Stamped into checkpoints alongside the round counter.
  std::uint64_t segment_id_ = 0;
  void metrics_sample(const char* where, std::uint64_t frontier, bool force);

  /// Message hashes each node's recorded transitions can generate; feeds
  /// the per-member feasibility pre-check (see SoundnessVerifier).
  std::vector<std::unordered_set<Hash64>> node_gens_;
  /// Pred/self-loop edges recorded per node (feasibility cache signature:
  /// a new edge anywhere in the node's graph can open new paths).
  std::vector<std::uint64_t> pred_edges_;
  struct FeasEntry {
    bool feasible = false;
    std::uint64_t sig = 0;  ///< availability signature the verdict was computed at
  };
  /// Feasibility cache, striped by key so parallel verification workers can
  /// consult and populate it concurrently. Verdicts are deterministic
  /// functions of frozen per-sweep state, so racing recomputations of the
  /// same key are idempotent and cache contents never affect results.
  struct FeasStripe {
    std::mutex mu;
    std::unordered_map<std::uint64_t, FeasEntry> map;
  };
  static constexpr std::size_t kFeasStripes = 16;
  std::array<FeasStripe, kFeasStripes> feas_cache_;
  void clear_feas_cache();
};

}  // namespace lmc
