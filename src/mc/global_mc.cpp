#include "mc/global_mc.hpp"

#include <algorithm>

#include "mc/clock.hpp"

namespace lmc {

GlobalModelChecker::GlobalModelChecker(const SystemConfig& cfg, const Invariant* invariant,
                                       GlobalMcOptions opt)
    : cfg_(cfg), invariant_(invariant), opt_(opt) {}

Hash64 GlobalModelChecker::state_hash(const State& s) const {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (const Blob& b : s.nodes) h = hash_combine(h, hash_blob(b));
  return hash_combine(h, s.net.hash());
}

Hash64 GlobalModelChecker::system_hash(const State& s) const {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (const Blob& b : s.nodes) h = hash_combine(h, hash_blob(b));
  return h;
}

void GlobalModelChecker::collect_system(const State& s) {
  std::vector<Hash64> tuple;
  tuple.reserve(s.nodes.size());
  for (const Blob& b : s.nodes) tuple.push_back(hash_blob(b));
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (Hash64 nh : tuple) h = hash_combine(h, nh);
  sys_tuples_.emplace(h, std::move(tuple));
}

bool GlobalModelChecker::budget_exceeded() {
  if (stats_.transitions >= opt_.max_transitions) return true;
  if ((++budget_probe_ & 0x3ff) == 0) {
    if (now_s() > deadline_) return true;
    if (opt_.cancel != nullptr && opt_.cancel->load(std::memory_order_relaxed)) return true;
  }
  return false;
}

void GlobalModelChecker::record_violation(const State& s, std::uint32_t depth,
                                          const std::string& what,
                                          const std::vector<std::string>& trace) {
  GlobalViolation v;
  v.system_state = s.nodes;
  v.invariant = what;
  v.trace = trace;
  v.depth = depth;
  violations_.push_back(std::move(v));
  ++stats_.violations;
  if (opt_.stop_on_violation) stop_ = true;
}

void GlobalModelChecker::on_new_state(const State& s, std::uint32_t depth,
                                      std::vector<std::string>& trace) {
  ++stats_.unique_states;
  stats_.max_depth_reached = std::max(stats_.max_depth_reached, depth);
  if (opt_.collect_system_states) collect_system(s);
  if (opt_.check_invariants && invariant_ != nullptr) {
    ++stats_.invariant_checks;
    SystemStateView view;
    view.reserve(s.nodes.size());
    for (const Blob& b : s.nodes) view.push_back(&b);
    if (!invariant_->holds(cfg_, view)) record_violation(s, depth, invariant_->name(), trace);
  }
}

void GlobalModelChecker::dfs(State& s, std::uint32_t depth, std::vector<std::string>& trace) {
  if (stop_ || depth >= opt_.max_depth) return;
  if (budget_exceeded()) {
    stats_.completed = false;
    stop_ = true;
    return;
  }

  // Enumerate enabled events: one delivery per in-flight message, plus each
  // node's enabled internal events (HM and HA of Fig. 5).
  const std::size_t n_msgs = s.net.size();
  for (std::size_t i = 0; i < n_msgs && !stop_; ++i) {
    const Message m = s.net.messages()[i];
    State next;
    next.nodes = s.nodes;
    next.net = s.net;
    next.net.take(i);
    ExecResult r = exec_message(cfg_, m.dst, s.nodes[m.dst], m);
    ++stats_.transitions;
    if (r.assert_failed) {
      ++stats_.local_assert_failures;
      if (opt_.assert_is_violation)
        record_violation(s, depth, "local_assert: " + r.assert_msg, trace);
      continue;  // successor is not explored
    }
    next.nodes[m.dst] = std::move(r.state);
    stats_.dup_msgs_suppressed += next.net.add_all(std::move(r.sent));

    Hash64 h = state_hash(next);
    auto it = visited_.find(h);
    bool expand = false;
    if (it == visited_.end()) {
      visited_.emplace(h, depth + 1);
      trace.push_back("deliver " + to_string(m));
      on_new_state(next, depth + 1, trace);
      expand = true;
    } else if (depth + 1 < it->second) {
      // Reached an old state by a shorter path: re-expand so the depth
      // bound does not hide states (iterative-deepening correctness).
      it->second = depth + 1;
      trace.push_back("deliver " + to_string(m));
      ++stats_.revisits;
      expand = true;
    } else {
      ++stats_.revisits;
    }
    if (expand) {
      std::size_t extra = next.net.bytes();
      for (const Blob& b : next.nodes) extra += b.capacity();
      stack_bytes_ += extra;
      stats_.peak_bytes = std::max(stats_.peak_bytes, stack_bytes_ + visited_.size() * 16);
      dfs(next, depth + 1, trace);
      stack_bytes_ -= extra;
      trace.pop_back();
    }
  }

  for (NodeId n = 0; n < cfg_.num_nodes && !stop_; ++n) {
    for (const InternalEvent& ev : internal_events_of(cfg_, n, s.nodes[n])) {
      if (stop_) break;
      State next;
      next.nodes = s.nodes;
      next.net = s.net;
      ExecResult r = exec_internal(cfg_, n, s.nodes[n], ev);
      ++stats_.transitions;
      if (r.assert_failed) {
        ++stats_.local_assert_failures;
        if (opt_.assert_is_violation)
          record_violation(s, depth, "local_assert: " + r.assert_msg, trace);
        continue;
      }
      next.nodes[n] = std::move(r.state);
      stats_.dup_msgs_suppressed += next.net.add_all(std::move(r.sent));

      Hash64 h = state_hash(next);
      auto it = visited_.find(h);
      bool expand = false;
      if (it == visited_.end()) {
        visited_.emplace(h, depth + 1);
        trace.push_back("node " + std::to_string(n) + " " + to_string(ev));
        on_new_state(next, depth + 1, trace);
        expand = true;
      } else if (depth + 1 < it->second) {
        it->second = depth + 1;
        trace.push_back("node " + std::to_string(n) + " " + to_string(ev));
        ++stats_.revisits;
        expand = true;
      } else {
        ++stats_.revisits;
      }
      if (expand) {
        std::size_t extra = next.net.bytes();
        for (const Blob& b : next.nodes) extra += b.capacity();
        stack_bytes_ += extra;
        stats_.peak_bytes = std::max(stats_.peak_bytes, stack_bytes_ + visited_.size() * 16);
        dfs(next, depth + 1, trace);
        stack_bytes_ -= extra;
        trace.pop_back();
      }
    }
  }
}

void GlobalModelChecker::run(const std::vector<Blob>& nodes, const Network& net) {
  const double t0 = now_s();
  deadline_ = t0 + opt_.time_budget_s;
  stats_ = GlobalMcStats{};
  stats_.completed = true;  // cleared if a budget trips
  visited_.clear();
  sys_tuples_.clear();
  violations_.clear();
  stop_ = false;
  stack_bytes_ = 0;

  State start{nodes, net};
  visited_.emplace(state_hash(start), 0);
  std::vector<std::string> trace;
  on_new_state(start, 0, trace);
  dfs(start, 0, trace);

  if (opt_.stop_on_violation && !violations_.empty()) stats_.completed = false;
  stats_.elapsed_s = now_s() - t0;
  stats_.peak_bytes = std::max(stats_.peak_bytes, visited_.size() * 16);
}

void GlobalModelChecker::run_from_initial() { run(initial_states(cfg_), Network{}); }

}  // namespace lmc
