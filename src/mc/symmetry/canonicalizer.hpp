// Orbit canonicalization of local-state sets and system-state combinations
// (DESIGN.md §13).
//
// For each symmetry class the canonicalizer maintains a *universe*: the
// sorted set of distinct local-state hashes any member of the class has
// reached, each with a bitmask of which members hold it. A candidate
// combination is then identified not by "which state at which node" but by
// a *multiset over the universe* per class (plus concrete states at
// non-class nodes) — the canonical orbit representative of the
// sorted-by-serialized-blob family the ISSUE describes (hashes order blobs;
// within a class equal hashes mean equal blobs).
//
// Two concerns are deliberately split:
//  * enumeration (`for_each_multiset`): walk realizable multisets only — a
//    multiset is realizable iff the chosen occurrences admit a perfect
//    matching into the member availability masks (checked incrementally
//    with Kuhn's algorithm; unmatchable partial multisets never recover,
//    so the DFS prunes early);
//  * concretization (`first_assignment` / `for_each_assignment`): map a
//    multiset back to concrete member→state assignments, deterministically,
//    for invariant evaluation and phase-2 soundness verification.
//
// The orbit seen-set lives here too: the canonical orbit hash of every
// materialized combination, stored in a `ConcurrentHashIndex` (lock-free
// reads; the applier is the only inserter) with a sorted mirror for
// checkpointing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mc/concurrent/hash_index.hpp"
#include "mc/symmetry/role_group.hpp"
#include "runtime/hash.hpp"
#include "runtime/types.hpp"

namespace lmc::symmetry {

/// Sorted-by-hash universe of one class's local states.
class ClassUniverse {
 public:
  struct Entry {
    Hash64 hash = 0;
    std::uint64_t members = 0;  ///< bitmask over class positions holding this state
  };

  /// Record that class position `member_pos` reached state `h`. Returns
  /// true when the (hash, member) pair was new.
  bool add(Hash64 h, std::uint32_t member_pos);

  /// Index of `h`, or SIZE_MAX.
  std::size_t find(Hash64 h) const;

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Resolved symmetry context of one checker run: the classes, per-class
/// universes, and the orbit seen-set.
class Canonicalizer {
 public:
  /// `classes` must be normalized (see normalize_classes). Class sizes are
  /// capped at 64 members (universe masks are one word); larger hints must
  /// be rejected by the caller.
  Canonicalizer(std::vector<std::vector<NodeId>> classes, std::uint32_t num_nodes);

  const std::vector<std::vector<NodeId>>& classes() const { return classes_; }
  std::uint32_t num_nodes() const { return num_nodes_; }

  /// Class index of `n`, or -1 for non-class nodes.
  std::int32_t class_of(NodeId n) const { return class_of_[n]; }
  /// Position of `n` within its class (valid only when class_of >= 0).
  std::uint32_t member_pos(NodeId n) const { return member_pos_[n]; }
  /// Non-class nodes, ascending.
  const std::vector<NodeId>& free_nodes() const { return free_nodes_; }

  const ClassUniverse& universe(std::size_t c) const { return universes_[c]; }

  /// Feed one state arrival (call at every store insert, applier only).
  /// No-op for non-class nodes. Returns true when the universe grew.
  bool add_state(NodeId n, Hash64 h);

  // -- orbit identity ------------------------------------------------------

  /// Canonical orbit hash of a candidate: `fixed` = (node, state-hash) of
  /// every non-class node in ascending node order; `counts[c][e]` = how many
  /// members of class c take universe entry e. Stable under universe growth
  /// (folds entry hashes, not indices).
  Hash64 orbit_key(const std::vector<std::pair<NodeId, Hash64>>& fixed,
                   const std::vector<std::vector<std::uint32_t>>& counts) const;

  /// Orbit size (distinct ordered arrangements) of a candidate, saturating.
  std::uint64_t orbit_size(const std::vector<std::vector<std::uint32_t>>& counts) const;

  /// Seen-set: true if already present, otherwise inserts and returns false.
  bool seen_or_mark(Hash64 orbit);
  /// Sorted seen-set snapshot (checkpoint section 13).
  std::vector<Hash64> seen_sorted() const;
  /// Restore a checkpointed seen-set (replaces the current one).
  void restore_seen(const std::vector<Hash64>& seen);
  std::size_t seen_count() const { return seen_list_.size(); }

  // -- enumeration ---------------------------------------------------------

  /// Walk every realizable size-|class| multiset over class `c`'s universe;
  /// when `forced` >= 0, only multisets containing universe entry `forced`.
  /// `cb(counts)` returns false to abort; the walk returns false if aborted.
  bool for_each_multiset(std::size_t c, std::ptrdiff_t forced,
                         const std::function<bool(const std::vector<std::uint32_t>&)>& cb) const;

  // -- concretization ------------------------------------------------------

  /// Lexicographically first perfect assignment realizing `counts` for
  /// class `c`: one universe-entry index per member position. Empty only if
  /// the multiset is unrealizable.
  std::vector<std::size_t> first_assignment(std::size_t c,
                                            const std::vector<std::uint32_t>& counts) const;

  /// All perfect assignments, lexicographic order. `cb` returns false to
  /// abort; returns false if aborted.
  bool for_each_assignment(std::size_t c, const std::vector<std::uint32_t>& counts,
                           const std::function<bool(const std::vector<std::size_t>&)>& cb) const;

 private:
  bool assignment_dfs(std::size_t c, std::vector<std::uint32_t>& rem,
                      std::vector<std::size_t>& pick, std::size_t member,
                      const std::function<bool(const std::vector<std::size_t>&)>& cb,
                      bool& aborted) const;

  std::vector<std::vector<NodeId>> classes_;
  std::uint32_t num_nodes_ = 0;
  std::vector<std::int32_t> class_of_;
  std::vector<std::uint32_t> member_pos_;
  std::vector<NodeId> free_nodes_;
  std::vector<ClassUniverse> universes_;

  concurrent::ConcurrentHashIndex seen_;
  std::vector<Hash64> seen_list_;  ///< insertion-order mirror (sorted on demand)
};

}  // namespace lmc::symmetry
