#include "mc/symmetry/canonicalizer.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lmc::symmetry {

bool ClassUniverse::add(Hash64 h, std::uint32_t member_pos) {
  const std::uint64_t bit = std::uint64_t{1} << member_pos;
  auto it = std::lower_bound(entries_.begin(), entries_.end(), h,
                             [](const Entry& e, Hash64 v) { return e.hash < v; });
  if (it != entries_.end() && it->hash == h) {
    if ((it->members & bit) != 0) return false;
    it->members |= bit;
    return true;
  }
  entries_.insert(it, Entry{h, bit});
  return true;
}

std::size_t ClassUniverse::find(Hash64 h) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), h,
                             [](const Entry& e, Hash64 v) { return e.hash < v; });
  if (it == entries_.end() || it->hash != h) return SIZE_MAX;
  return static_cast<std::size_t>(it - entries_.begin());
}

Canonicalizer::Canonicalizer(std::vector<std::vector<NodeId>> classes, std::uint32_t num_nodes)
    : classes_(std::move(classes)),
      num_nodes_(num_nodes),
      class_of_(num_nodes, -1),
      member_pos_(num_nodes, 0),
      universes_(classes_.size()) {
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (classes_[c].size() > 64) throw std::invalid_argument("symmetry class larger than 64");
    for (std::size_t p = 0; p < classes_[c].size(); ++p) {
      const NodeId n = classes_[c][p];
      class_of_[n] = static_cast<std::int32_t>(c);
      member_pos_[n] = static_cast<std::uint32_t>(p);
    }
  }
  for (NodeId n = 0; n < num_nodes_; ++n)
    if (class_of_[n] < 0) free_nodes_.push_back(n);
}

bool Canonicalizer::add_state(NodeId n, Hash64 h) {
  const std::int32_t c = class_of_[n];
  if (c < 0) return false;
  return universes_[static_cast<std::size_t>(c)].add(h, member_pos_[n]);
}

Hash64 Canonicalizer::orbit_key(const std::vector<std::pair<NodeId, Hash64>>& fixed,
                                const std::vector<std::vector<std::uint32_t>>& counts) const {
  // Entry hashes are folded (never indices), and universes are sorted by
  // hash, so the key is stable as universes grow and across resume.
  Hash64 h = 0x6a09e667f3bcc908ULL;
  for (const auto& [n, v] : fixed)
    h = hash_combine(h, hash_combine(static_cast<Hash64>(n), v));
  for (std::size_t c = 0; c < counts.size(); ++c) {
    h = hash_combine(h, static_cast<Hash64>(c));
    const auto& entries = universes_[c].entries();
    for (std::size_t e = 0; e < counts[c].size(); ++e)
      for (std::uint32_t k = 0; k < counts[c][e]; ++k) h = hash_combine(h, entries[e].hash);
  }
  return h;
}

std::uint64_t Canonicalizer::orbit_size(
    const std::vector<std::vector<std::uint32_t>>& counts) const {
  std::uint64_t total = 1;
  std::vector<std::uint32_t> mults;
  for (const auto& cnt : counts) {
    mults.clear();
    for (std::uint32_t k : cnt)
      if (k > 0) mults.push_back(k);
    const std::uint64_t per = multiset_orbit_size(mults);
    if (per != 0 && total > UINT64_MAX / per) return UINT64_MAX;
    total *= per;
  }
  return total;
}

bool Canonicalizer::seen_or_mark(Hash64 orbit) {
  if (seen_.contains(orbit)) return true;
  seen_.insert_if_absent(orbit, static_cast<std::uint32_t>(seen_list_.size()));
  seen_list_.push_back(orbit);
  return false;
}

std::vector<Hash64> Canonicalizer::seen_sorted() const {
  std::vector<Hash64> out = seen_list_;
  std::sort(out.begin(), out.end());
  return out;
}

void Canonicalizer::restore_seen(const std::vector<Hash64>& seen) {
  for (Hash64 h : seen_list_) seen_.erase(h);
  seen_list_.clear();
  for (Hash64 h : seen) {
    seen_.insert_if_absent(h, static_cast<std::uint32_t>(seen_list_.size()));
    seen_list_.push_back(h);
  }
}

namespace {

/// Incremental bipartite matching of chosen occurrences onto class member
/// positions (Kuhn). Pushing an occurrence augments; popping the last
/// pushed occurrence just releases its member — the remaining matching
/// stays perfect, so DFS backtracking is O(1).
class OccMatcher {
 public:
  explicit OccMatcher(std::size_t members) : member_match_(members, -1) {}

  bool push(std::uint64_t mask) {
    occ_masks_.push_back(mask);
    occ_match_.push_back(UINT32_MAX);
    std::vector<bool> visited(member_match_.size(), false);
    if (augment(occ_masks_.size() - 1, visited)) return true;
    occ_masks_.pop_back();
    occ_match_.pop_back();
    return false;
  }

  void pop() {
    member_match_[occ_match_.back()] = -1;
    occ_match_.pop_back();
    occ_masks_.pop_back();
  }

 private:
  bool augment(std::size_t occ, std::vector<bool>& visited) {
    std::uint64_t mask = occ_masks_[occ];
    while (mask != 0) {
      const auto m = static_cast<std::uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      if (visited[m]) continue;
      visited[m] = true;
      if (member_match_[m] < 0 || augment(static_cast<std::size_t>(member_match_[m]), visited)) {
        occ_match_[occ] = m;
        member_match_[m] = static_cast<std::int32_t>(occ);
        return true;
      }
    }
    return false;
  }

  std::vector<std::uint64_t> occ_masks_;
  std::vector<std::uint32_t> occ_match_;   ///< occurrence -> member
  std::vector<std::int32_t> member_match_; ///< member -> occurrence (-1 free)
};

}  // namespace

bool Canonicalizer::for_each_multiset(
    std::size_t c, std::ptrdiff_t forced,
    const std::function<bool(const std::vector<std::uint32_t>&)>& cb) const {
  const auto& entries = universes_[c].entries();
  const auto slots = static_cast<std::uint32_t>(classes_[c].size());

  // suffix_cap[e] = max occurrences entries e.. can still contribute.
  std::vector<std::uint32_t> suffix_cap(entries.size() + 1, 0);
  for (std::size_t e = entries.size(); e-- > 0;)
    suffix_cap[e] =
        suffix_cap[e + 1] + static_cast<std::uint32_t>(std::popcount(entries[e].members));

  std::vector<std::uint32_t> counts(entries.size(), 0);
  OccMatcher matcher(slots);
  bool aborted = false;

  // DFS over counts per entry, ascending entry index. An occurrence is
  // admitted only while the partial multiset stays matchable — adding an
  // occurrence can never repair an unmatchable set, so failure prunes the
  // whole count range above it.
  auto dfs = [&](auto&& self, std::size_t e, std::uint32_t remaining) -> void {
    if (aborted) return;
    if (remaining == 0) {
      if (forced >= 0 && static_cast<std::size_t>(forced) >= e) return;  // forced not taken
      if (!cb(counts)) aborted = true;
      return;
    }
    if (e >= entries.size() || suffix_cap[e] < remaining) return;
    const std::uint32_t min_cnt = (static_cast<std::ptrdiff_t>(e) == forced) ? 1 : 0;
    const auto avail = static_cast<std::uint32_t>(std::popcount(entries[e].members));
    const std::uint32_t max_cnt = std::min(remaining, avail);
    if (min_cnt > max_cnt) return;
    std::uint32_t pushed = 0;
    bool ok = true;
    for (; pushed < min_cnt; ++pushed)
      if (!matcher.push(entries[e].members)) {
        ok = false;
        break;
      }
    if (ok) {
      for (std::uint32_t cnt = min_cnt;; ++cnt) {
        counts[e] = cnt;
        self(self, e + 1, remaining - cnt);
        if (aborted || cnt >= max_cnt || !matcher.push(entries[e].members)) break;
        ++pushed;
      }
    }
    counts[e] = 0;
    for (; pushed > 0; --pushed) matcher.pop();
  };
  dfs(dfs, 0, slots);
  return !aborted;
}

bool Canonicalizer::assignment_dfs(
    std::size_t c, std::vector<std::uint32_t>& rem, std::vector<std::size_t>& pick,
    std::size_t member, const std::function<bool(const std::vector<std::size_t>&)>& cb,
    bool& aborted) const {
  if (member == pick.size()) {
    if (!cb(pick)) aborted = true;
    return true;
  }
  const auto& entries = universes_[c].entries();
  bool any = false;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    if (rem[e] == 0 || ((entries[e].members >> member) & 1) == 0) continue;
    --rem[e];
    pick[member] = e;
    any = assignment_dfs(c, rem, pick, member + 1, cb, aborted) || any;
    ++rem[e];
    if (aborted) return any;
  }
  return any;
}

std::vector<std::size_t> Canonicalizer::first_assignment(
    std::size_t c, const std::vector<std::uint32_t>& counts) const {
  std::vector<std::size_t> result;
  std::vector<std::uint32_t> rem = counts;
  std::vector<std::size_t> pick(classes_[c].size(), 0);
  bool aborted = false;
  assignment_dfs(
      c, rem, pick, 0,
      [&](const std::vector<std::size_t>& p) {
        result = p;
        return false;  // stop at the first
      },
      aborted);
  return result;
}

bool Canonicalizer::for_each_assignment(
    std::size_t c, const std::vector<std::uint32_t>& counts,
    const std::function<bool(const std::vector<std::size_t>&)>& cb) const {
  std::vector<std::uint32_t> rem = counts;
  std::vector<std::size_t> pick(classes_[c].size(), 0);
  bool aborted = false;
  assignment_dfs(c, rem, pick, 0, cb, aborted);
  return !aborted;
}

}  // namespace lmc::symmetry
