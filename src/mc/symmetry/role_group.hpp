// Role permutation groups for symmetry reduction (DESIGN.md §13).
//
// A *class* is a set of node ids whose behaviours are interchangeable:
// permuting the ids of class members maps reachable system states onto
// reachable system states. The checker only ever uses classes to decide
// which combinations to *enumerate* — every violating orbit is re-verified
// on concrete member assignments by the ordinary soundness machinery — so
// a wrong class hint can cost reduction effectiveness but never soundness.
//
// Classes come from three places:
//  * `SymmetryMode::kExplicit`: caller-supplied `SymmetryOptions::classes`
//    (hand-written protocols, e.g. Paxos acceptors);
//  * `SymmetryMode::kAuto`: `SystemConfig::symmetric_roles`, filled by the
//    DSL / ProtoGen adapters via `infer_classes` below;
//  * inference itself: two nodes are merged when swapping their ids is an
//    automorphism of the per-node rule tables (`NodeSig`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/hash.hpp"
#include "runtime/types.hpp"

namespace lmc::symmetry {

enum class SymmetryMode : std::uint8_t {
  kOff = 0,       ///< no reduction (default; preserves every byte-identity gate)
  kAuto = 1,      ///< use SystemConfig::symmetric_roles
  kExplicit = 2,  ///< use SymmetryOptions::classes
};

struct SymmetryOptions {
  SymmetryMode mode = SymmetryMode::kOff;
  /// kExplicit only: requested classes. Validated and normalized at
  /// activation; overlapping or out-of-range hints are rejected.
  std::vector<std::vector<NodeId>> classes;
};

/// Reduction-side counters, kept separate from LocalMcStats (whose layout
/// is pinned by the checkpoint format). Persisted in checkpoint section 13.
struct SymmetryStats {
  std::uint64_t orbits = 0;            ///< canonical combinations materialized
  std::uint64_t orbit_hits = 0;        ///< enumeration re-reached a seen orbit
  std::uint64_t represented = 0;       ///< saturating sum of orbit sizes
  std::uint64_t assignments_tried = 0; ///< concrete assignments expanded in phase 2
  std::uint64_t orbit_defers = 0;      ///< violating orbits queued for the drain
  std::uint32_t classes = 0;           ///< number of active classes this run
  std::uint8_t active = 0;             ///< reduction resolved to on

  bool operator==(const SymmetryStats&) const = default;
};

// ---------------------------------------------------------------------------
// Rule-table signatures for automatic class inference.
// ---------------------------------------------------------------------------

/// One send of a rule, with everything identity-relevant except the payload
/// tag. Tags are deliberately excluded: distinct auto-assigned tags on
/// otherwise-mirrored sends would block inference, and excluding them is
/// safe because the reduction is unconditionally sound (wrong classes only
/// waste enumeration effort on orbits whose members never coincide).
struct SigSend {
  bool to_sender = false;
  NodeId dst = 0;  ///< ignored when to_sender
  std::uint32_t type = 0;

  bool operator==(const SigSend&) const = default;
  bool operator<(const SigSend& o) const {
    if (to_sender != o.to_sender) return to_sender < o.to_sender;
    if (dst != o.dst) return dst < o.dst;
    return type < o.type;
  }
};

/// One handler rule of one node. `trigger` is the message type for message
/// rules and an adapter-chosen marker for internal rules.
struct RuleSig {
  std::uint32_t trigger = 0;
  std::uint32_t guard = 0;
  std::uint32_t goto_state = 0;
  bool fail_assert = false;
  std::vector<SigSend> sends;  ///< compared as a multiset under renaming

  bool operator==(const RuleSig&) const = default;
};

/// A node's full behaviour signature: rule lists in table order (order is
/// identity — it drives the per-node fired-bit layout and scan order).
struct NodeSig {
  std::vector<RuleSig> internals;
  std::vector<RuleSig> msgs;
};

/// Maximal interchangeability classes of `nodes`: a ≡ b iff the
/// transposition (a b) is an automorphism of the whole rule table.
/// Transpositions compose, so the relation is transitive and union-find
/// closure is exact. Only classes with ≥ 2 members are returned, members
/// sorted, classes ordered by first member.
std::vector<std::vector<NodeId>> infer_classes(const std::vector<NodeSig>& nodes);

/// Validate + canonicalize class hints: members sorted and deduped, classes
/// with < 2 members dropped, classes ordered by first member. Throws
/// std::invalid_argument on out-of-range ids or overlapping classes.
std::vector<std::vector<NodeId>> normalize_classes(std::vector<std::vector<NodeId>> classes,
                                                   std::uint32_t num_nodes);

/// Number of distinct ordered arrangements of a class-sized multiset:
/// c! / prod(mult_k!), saturating at UINT64_MAX. `mults` are the
/// multiplicities of the distinct values (must sum to the class size).
std::uint64_t multiset_orbit_size(const std::vector<std::uint32_t>& mults);

/// Saturating add (orbit-size accounting).
inline std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return (a > UINT64_MAX - b) ? UINT64_MAX : a + b;
}

/// Canonical identity of a per-node state-hash tuple under `classes`:
/// class members contribute an order-independent fold of their sorted
/// multiset, everything else contributes (position, hash) in order. Two
/// tuples related by a within-class permutation get equal keys. Used by the
/// differential oracle's up-to-permutation violation comparator.
Hash64 canonical_key(const std::vector<Hash64>& per_node,
                     const std::vector<std::vector<NodeId>>& classes);

}  // namespace lmc::symmetry
