#include "mc/symmetry/role_group.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lmc::symmetry {

namespace {

/// nodes[x] with every send destination renamed through the transposition
/// (a b), sends sorted so they compare as multisets.
std::vector<RuleSig> renamed_rules(const std::vector<RuleSig>& rules, NodeId a, NodeId b) {
  std::vector<RuleSig> out = rules;
  for (RuleSig& r : out) {
    for (SigSend& s : r.sends) {
      if (s.to_sender) {
        s.dst = 0;
      } else if (s.dst == a) {
        s.dst = b;
      } else if (s.dst == b) {
        s.dst = a;
      }
    }
    std::sort(r.sends.begin(), r.sends.end());
  }
  return out;
}

std::vector<RuleSig> sorted_sends(const std::vector<RuleSig>& rules) {
  std::vector<RuleSig> out = rules;
  for (RuleSig& r : out) {
    for (SigSend& s : r.sends)
      if (s.to_sender) s.dst = 0;
    std::sort(r.sends.begin(), r.sends.end());
  }
  return out;
}

/// Is the transposition (a b) an automorphism of the rule table? Node x's
/// table must equal the table of (a b)(x) with destinations renamed, rule
/// by rule (table order is identity), sends as multisets.
bool swap_is_automorphism(const std::vector<NodeSig>& nodes, NodeId a, NodeId b) {
  const auto n = static_cast<NodeId>(nodes.size());
  for (NodeId x = 0; x < n; ++x) {
    const NodeId y = x == a ? b : x == b ? a : x;
    if (sorted_sends(nodes[x].internals) != renamed_rules(nodes[y].internals, a, b)) return false;
    if (sorted_sends(nodes[x].msgs) != renamed_rules(nodes[y].msgs, a, b)) return false;
  }
  return true;
}

}  // namespace

std::vector<std::vector<NodeId>> infer_classes(const std::vector<NodeSig>& nodes) {
  const auto n = static_cast<NodeId>(nodes.size());
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) {
      if (find(a) == find(b)) continue;
      if (swap_is_automorphism(nodes, a, b)) parent[find(b)] = find(a);
    }

  std::vector<std::vector<NodeId>> groups(n);
  for (NodeId x = 0; x < n; ++x) groups[find(x)].push_back(x);
  std::vector<std::vector<NodeId>> out;
  for (auto& g : groups)
    if (g.size() >= 2) out.push_back(std::move(g));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

std::vector<std::vector<NodeId>> normalize_classes(std::vector<std::vector<NodeId>> classes,
                                                   std::uint32_t num_nodes) {
  std::vector<std::vector<NodeId>> out;
  std::vector<bool> used(num_nodes, false);
  for (auto& c : classes) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    for (NodeId m : c) {
      if (m >= num_nodes) throw std::invalid_argument("symmetry class member out of range");
      if (used[m]) throw std::invalid_argument("symmetry classes overlap");
      used[m] = true;
    }
    if (c.size() >= 2) out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

std::uint64_t multiset_orbit_size(const std::vector<std::uint32_t>& mults) {
  // c! / prod(mult_k!) computed as a product of binomials C(remaining, mult)
  // so intermediates stay integral; saturate on overflow.
  std::uint32_t remaining = 0;
  for (std::uint32_t m : mults) remaining += m;
  std::uint64_t total = 1;
  for (std::uint32_t m : mults) {
    // C(remaining, m)
    std::uint64_t binom = 1;
    for (std::uint32_t i = 1; i <= m; ++i) {
      // binom = binom * (remaining - m + i) / i — exact at every step.
      const std::uint64_t num = remaining - m + i;
      if (binom > UINT64_MAX / num) return UINT64_MAX;
      binom = binom * num / i;
    }
    if (binom != 0 && total > UINT64_MAX / binom) return UINT64_MAX;
    total *= binom;
    remaining -= m;
  }
  return total;
}

Hash64 canonical_key(const std::vector<Hash64>& per_node,
                     const std::vector<std::vector<NodeId>>& classes) {
  std::vector<bool> in_class(per_node.size(), false);
  for (const auto& c : classes)
    for (NodeId m : c)
      if (m < per_node.size()) in_class[m] = true;

  Hash64 h = 0x517cc1b727220a95ULL;
  for (std::size_t n = 0; n < per_node.size(); ++n)
    if (!in_class[n]) h = hash_combine(h, hash_combine(static_cast<Hash64>(n), per_node[n]));
  for (std::size_t c = 0; c < classes.size(); ++c) {
    std::vector<Hash64> members;
    members.reserve(classes[c].size());
    for (NodeId m : classes[c])
      if (m < per_node.size()) members.push_back(per_node[m]);
    std::sort(members.begin(), members.end());
    h = hash_combine(h, static_cast<Hash64>(c));
    for (Hash64 v : members) h = hash_combine(h, v);
  }
  return h;
}

}  // namespace lmc::symmetry
