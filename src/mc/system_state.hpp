// Small utilities over transient system states, shared by both checkers
// and the cross-check tests.
#pragma once

#include <string>
#include <vector>

#include "mc/invariant.hpp"
#include "runtime/hash.hpp"
#include "runtime/types.hpp"

namespace lmc {

/// Canonical identity of a system state: ordered combination of the
/// per-node blob hashes. Both checkers use this, so their visited system
/// states are directly comparable.
Hash64 system_state_hash(const std::vector<Hash64>& node_hashes);
Hash64 system_state_hash_of(const std::vector<Blob>& nodes);

/// Non-owning view over owned blobs (for Invariant::holds).
SystemStateView make_view(const std::vector<Blob>& nodes);

/// Hex rendering for logs/bug reports.
std::string format_system_state(const std::vector<Hash64>& node_hashes);

}  // namespace lmc
