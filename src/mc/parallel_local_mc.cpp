#include "mc/parallel_local_mc.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace lmc {

void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  unsigned workers = threads;
  if (workers > n) workers = static_cast<unsigned>(n);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace lmc
