#include "mc/parallel_local_mc.hpp"

namespace lmc {

WorkerPool::WorkerPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (unsigned w = 0; w + 1 < threads; ++w) workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::drain(const std::function<void(std::size_t)>& fn, std::size_t n) {
  while (!failed_.load(std::memory_order_relaxed)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      } else {
        // Only the first exception crosses run(); losing the rest silently
        // would hide real failures, so at least account for them.
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    wake_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(std::size_t)>* fn = job_;
    const std::size_t n = job_n_;
    lk.unlock();
    drain(*fn, n);
    lk.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // No pool (or nothing to share): plain loop, exceptions propagate as-is.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  wake_cv_.notify_all();
  drain(fn, n);  // the calling thread is a lane too
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool pool(threads);
  pool.run(n, fn);
}

}  // namespace lmc
