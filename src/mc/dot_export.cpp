#include "mc/dot_export.hpp"

#include <iomanip>
#include <sstream>

namespace lmc {

namespace {
std::string short_hash(Hash64 h) {
  std::ostringstream os;
  os << std::hex << std::setw(6) << std::setfill('0') << (h & 0xffffffu);
  return os.str();
}
}  // namespace

std::string to_dot(const LocalStore& store, const MonotonicNetwork& net) {
  std::ostringstream os;
  os << "digraph lmc {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (NodeId n = 0; n < store.num_nodes(); ++n) {
    os << "  subgraph cluster_n" << n << " {\n    label=\"node " << n << "\";\n";
    for (std::uint32_t i = 0; i < store.size(n); ++i) {
      const NodeStateRec& r = store.rec(n, i);
      os << "    s" << n << "_" << i << " [label=\"#" << i << " d=" << r.depth << "\\n"
         << short_hash(r.hash) << "\"];\n";
    }
    os << "  }\n";
  }
  for (NodeId n = 0; n < store.num_nodes(); ++n) {
    for (std::uint32_t i = 0; i < store.size(n); ++i) {
      for (const Pred& p : store.rec(n, i).preds) {
        os << "  s" << n << "_" << p.pred_idx << " -> s" << n << "_" << i << " [label=\""
           << (p.is_message ? "m:" : "i:") << short_hash(p.ev_hash) << "\"";
        if (!p.is_message) os << ", style=dashed";
        os << "];\n";
      }
    }
  }
  os << "  // shared network I+: " << net.size() << " messages\n}\n";
  return os.str();
}

}  // namespace lmc
