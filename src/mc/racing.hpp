// Racing checker — the paper's §4.3 suggestion made concrete: "Perhaps, one
// solution could be running both local and global model checker in parallel
// and use the result of the one that finishes sooner."
//
// Local checking wins when preliminary violations are rare (it skips the
// cost of validating every visited state); global checking wins when the
// state is riddled with (or close to) violations, because every state it
// visits is valid by construction. The race hedges: both run concurrently
// on their own threads; the first to produce a CONFIRMED verdict — a sound
// violation, or completing its bounded space cleanly — cancels the other.
#pragma once

#include <optional>

#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"

namespace lmc {

struct RacingOptions {
  GlobalMcOptions global;
  LocalMcOptions local;
};

struct RacingResult {
  enum class Winner { Global, Local, Neither };
  Winner winner = Winner::Neither;

  bool found = false;                      ///< a violation was confirmed
  std::optional<GlobalViolation> global_violation;
  std::optional<LocalViolation> local_violation;

  GlobalMcStats global_stats;
  LocalMcStats local_stats;
  double elapsed_s = 0.0;
};

/// Run both checkers from the same start state; first decisive finisher
/// wins and cancels the other. `nodes`/`in_flight` as in the checkers' run.
RacingResult race_checkers(const SystemConfig& cfg, const Invariant* invariant,
                           const std::vector<Blob>& nodes,
                           const std::vector<Message>& in_flight, RacingOptions opt);

}  // namespace lmc
