// Replay validator: turns a confirmed soundness schedule back into real
// handler executions on the global model (live snapshot + real network with
// consume-on-deliver semantics). This is the machine-checked witness behind
// every bug LMC reports: if the replay reproduces the violating system
// state, the bug is certainly reachable in a real run.
#pragma once

#include <string>
#include <vector>

#include "mc/local_store.hpp"
#include "net/network.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

struct ReplayResult {
  bool ok = false;
  std::string error;                 ///< first divergence, when !ok
  std::vector<Blob> final_nodes;     ///< node states after the replay
  std::vector<std::string> log;      ///< one line per executed event
};

/// Execute `schedule` from (start_nodes, in_flight) through the real
/// handlers. Fails if a scheduled message is not actually in flight when
/// delivered, an event is unknown, a local assertion fires, or the final
/// per-node state hashes differ from `expected_hashes` (pass empty to skip
/// the final comparison).
ReplayResult replay_schedule(const SystemConfig& cfg, const std::vector<Blob>& start_nodes,
                             const std::vector<Message>& in_flight, const Schedule& schedule,
                             const EventTable& events,
                             const std::vector<Hash64>& expected_hashes);

}  // namespace lmc
