// Graphviz export of the local checker's per-node state graphs — the LS_n
// sets with predecessor edges — for documentation and debugging.
#pragma once

#include <string>

#include "mc/local_store.hpp"
#include "net/monotonic_network.hpp"

namespace lmc {

/// Render the traversed node states and predecessor edges as a DOT digraph,
/// one cluster per node. Edge labels carry the event kind and a short hash.
std::string to_dot(const LocalStore& store, const MonotonicNetwork& net);

}  // namespace lmc
