// Striped open-addressing concurrent hash index (DESIGN.md §12), in the
// style of LTSmin's mc-lib/lmap.c: cache-line-aware slots, atomic
// publication of key/value pairs, probe-sequence tombstones, and growth by
// chaining a larger table in front of the old one instead of migrating
// (readers walk the chain newest→oldest; a slot, once published, never
// moves).
//
// Concurrency contract:
//  * `find()` is lock-free and safe against any number of concurrent
//    writers: a slot becomes visible only through a release-store of its
//    control word after the key is in place, and the table chain is
//    published with a release-store of the head pointer.
//  * `insert_if_absent()` / `erase()` take one of 16 stripe locks chosen by
//    key, so same-key operations serialize (idempotent inserts) while
//    different-key writers proceed in parallel. Different-key writers CAN
//    race for the same empty probe slot — that race is resolved by a
//    CAS(EMPTY→RESERVED) claim on the control word; readers treat RESERVED
//    like a tombstone (the key is not yet published: a miss is
//    linearizable).
//  * Values are 32-bit indices into an append-only SegLog, packed into the
//    control word: ctrl = (value<<2)|FULL. Low two bits encode
//    EMPTY/TOMB/RESERVED/FULL.
//
// In the checker the applier is the only inserter (determinism contract);
// the full multi-writer path is pounded by tests/test_concurrent.cpp under
// TSan.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>

#include "runtime/types.hpp"

namespace lmc::concurrent {

class ConcurrentHashIndex {
 public:
  static constexpr std::uint32_t kNotFound = UINT32_MAX;

  explicit ConcurrentHashIndex(std::size_t initial_capacity = 256) {
    head_.store(new Table(round_up_pow2(initial_capacity)), std::memory_order_release);
  }

  ~ConcurrentHashIndex() {
    Table* t = head_.load(std::memory_order_relaxed);
    while (t != nullptr) {
      Table* older = t->older;
      delete t;
      t = older;
    }
  }

  ConcurrentHashIndex(const ConcurrentHashIndex&) = delete;
  ConcurrentHashIndex& operator=(const ConcurrentHashIndex&) = delete;

  /// Lock-free lookup. Walks the table chain newest→oldest; within a table,
  /// linear probe until the key, or an EMPTY slot (key cannot be in this
  /// table — fall through to the older one).
  std::uint32_t find(Hash64 key) const {
    for (const Table* t = head_.load(std::memory_order_acquire); t != nullptr; t = t->older) {
      std::uint64_t mask = t->mask;
      std::uint64_t i = key & mask;
      for (std::uint64_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
        std::uint64_t ctrl = t->slots[i].ctrl.load(std::memory_order_acquire);
        std::uint64_t state = ctrl & kStateMask;
        if (state == kEmpty) break;  // not in this table
        if (state == kFull && t->slots[i].key.load(std::memory_order_relaxed) == key)
          return static_cast<std::uint32_t>(ctrl >> 2);
        // TOMB or RESERVED: keep probing (tombstones do not break chains).
      }
    }
    return kNotFound;
  }

  bool contains(Hash64 key) const { return find(key) != kNotFound; }

  /// Insert key→value unless the key is already present; returns the value
  /// now associated with the key (the existing one on a duplicate). Safe
  /// from any number of threads.
  std::uint32_t insert_if_absent(Hash64 key, std::uint32_t value) {
    std::lock_guard<std::mutex> lk(stripes_[stripe_of(key)].mu);
    // Under the stripe lock no same-key writer can interleave, so a plain
    // find gives an authoritative presence answer.
    std::uint32_t existing = find(key);
    if (existing != kNotFound) return existing;
    for (;;) {
      Table* t = head_.load(std::memory_order_acquire);
      if (try_claim(t, key, value)) {
        live_.fetch_add(1, std::memory_order_relaxed);
        maybe_grow(t);
        return value;
      }
      grow(t);  // the head table ran out of claimable slots
    }
  }

  /// Tombstone the key. Returns false if absent. The slot is never reused —
  /// probe sequences crossing it stay intact (lmap.c discipline).
  bool erase(Hash64 key) {
    std::lock_guard<std::mutex> lk(stripes_[stripe_of(key)].mu);
    for (Table* t = head_.load(std::memory_order_acquire); t != nullptr; t = t->older) {
      std::uint64_t mask = t->mask;
      std::uint64_t i = key & mask;
      for (std::uint64_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
        std::uint64_t ctrl = t->slots[i].ctrl.load(std::memory_order_acquire);
        std::uint64_t state = ctrl & kStateMask;
        if (state == kEmpty) break;
        if (state == kFull && t->slots[i].key.load(std::memory_order_relaxed) == key) {
          t->slots[i].ctrl.store(kTomb, std::memory_order_release);
          live_.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
    return false;
  }

  /// Live (inserted minus erased) entries. Exact when quiesced.
  std::size_t size() const { return live_.load(std::memory_order_relaxed); }

  /// Approximate heap footprint across the table chain.
  std::size_t bytes() const {
    std::size_t b = 0;
    for (const Table* t = head_.load(std::memory_order_acquire); t != nullptr; t = t->older)
      b += sizeof(Table) + (t->mask + 1) * sizeof(Slot);
    return b;
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kTomb = 1;
  static constexpr std::uint64_t kReserved = 2;
  static constexpr std::uint64_t kFull = 3;
  static constexpr std::uint64_t kStateMask = 3;
  static constexpr std::size_t kStripes = 16;

  struct alignas(16) Slot {
    std::atomic<std::uint64_t> ctrl{kEmpty};
    std::atomic<std::uint64_t> key{0};
  };

  struct Table {
    explicit Table(std::uint64_t capacity)
        : mask(capacity - 1), slots(std::make_unique<Slot[]>(capacity)) {}
    std::uint64_t mask;
    std::atomic<std::uint64_t> used{0};  ///< claimed slots (FULL + RESERVED + TOMB)
    Table* older = nullptr;
    std::unique_ptr<Slot[]> slots;
  };

  struct alignas(64) Stripe {
    std::mutex mu;
  };

  static std::size_t stripe_of(Hash64 key) {
    return static_cast<std::size_t>((key >> 7) ^ key) % kStripes;
  }

  static std::uint64_t round_up_pow2(std::uint64_t v) {
    std::uint64_t p = 64;
    while (p < v) p <<= 1;
    return p;
  }

  /// Claim an empty probe slot in `t` and publish key→value. Returns false
  /// if the probe sequence exhausted the table (caller grows and retries).
  bool try_claim(Table* t, Hash64 key, std::uint32_t value) {
    std::uint64_t mask = t->mask;
    std::uint64_t i = key & mask;
    for (std::uint64_t probes = 0; probes <= mask; ++probes, i = (i + 1) & mask) {
      std::uint64_t ctrl = t->slots[i].ctrl.load(std::memory_order_acquire);
      if ((ctrl & kStateMask) != kEmpty) continue;  // FULL/TOMB/RESERVED: probe on
      // Race different-key writers for the empty slot.
      if (t->slots[i].ctrl.compare_exchange_strong(ctrl, kReserved, std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
        t->slots[i].key.store(key, std::memory_order_relaxed);
        t->slots[i].ctrl.store((std::uint64_t{value} << 2) | kFull, std::memory_order_release);
        t->used.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Lost the claim; the slot is now RESERVED/FULL with some other key.
    }
    return false;
  }

  void maybe_grow(Table* t) {
    std::uint64_t cap = t->mask + 1;
    if (t->used.load(std::memory_order_relaxed) * 10 > cap * 7) grow(t);
  }

  /// Install a table of twice `seen`'s capacity in front of the chain, if
  /// nobody else already has. Taking growth_mu_ while holding a stripe lock
  /// is safe: stripe locks are never acquired under growth_mu_.
  void grow(Table* seen) {
    std::lock_guard<std::mutex> lk(growth_mu_);
    Table* head = head_.load(std::memory_order_acquire);
    if (head != seen) return;  // someone grew while we waited
    Table* bigger = new Table((head->mask + 1) * 2);
    bigger->older = head;
    head_.store(bigger, std::memory_order_release);
  }

  std::atomic<Table*> head_{nullptr};
  std::atomic<std::uint64_t> live_{0};
  std::mutex growth_mu_;
  Stripe stripes_[kStripes];
};

}  // namespace lmc::concurrent
