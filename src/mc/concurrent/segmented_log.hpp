// Append-only segmented log with atomic tail reservation (DESIGN.md §12).
//
// The work-stealing phase 1 needs `LS_n` records and `I+` entries to stay
// readable from pipeline workers WHILE the applier appends. A deque breaks
// that contract (push_back may allocate a new map block and touch internal
// bookkeeping racing readers); this log never moves or frees a committed
// element until destruction:
//
//  * storage is a chain of geometrically growing segments (segment k holds
//    64<<k elements), published through a fixed directory of atomic
//    pointers — an element's address is stable for the log's lifetime;
//  * `reserve()` hands out indices with an atomic fetch-add so multiple
//    producers can claim slots without a lock; `commit()` fills the slot
//    and advances the contiguous-committed watermark;
//  * readers only access indices below `size()` (the watermark), so every
//    visible element is fully constructed — the release-store on the cell's
//    ready flag plus the release-CAS on the watermark give the necessary
//    happens-before edge to `size()`'s acquire load.
//
// In the checker the applier is the only producer of both `LS_n` and `I+`
// (determinism contract, DESIGN.md §12); the multi-producer reserve/commit
// path is exercised by the TSan stress tests and keeps the table honest for
// the distributed-fleet direction in ROADMAP.md.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace lmc::concurrent {

template <typename T>
class SegLog {
 public:
  SegLog() = default;

  ~SegLog() { free_segments(); }

  SegLog(const SegLog& o) { copy_from(o); }
  SegLog& operator=(const SegLog& o) {
    if (this != &o) {
      free_segments();
      reset_counters();
      copy_from(o);
    }
    return *this;
  }
  SegLog(SegLog&& o) noexcept { steal_from(o); }
  SegLog& operator=(SegLog&& o) noexcept {
    if (this != &o) {
      free_segments();
      steal_from(o);
    }
    return *this;
  }

  /// Claim the next index. The caller owns the slot until commit().
  std::uint64_t reserve() { return tail_.fetch_add(1, std::memory_order_relaxed); }

  /// Fill a reserved slot and advance the committed watermark over every
  /// contiguous ready cell. Each index is committed by exactly one thread.
  void commit(std::uint64_t i, T value) {
    Cell& c = cell(i, /*create=*/true);
    c.value = std::move(value);
    c.ready.store(1, std::memory_order_release);
    advance_committed();
  }

  /// Single-producer convenience: reserve + commit. Returns the index.
  std::uint64_t push_back(T value) {
    std::uint64_t i = reserve();
    commit(i, std::move(value));
    return i;
  }

  /// Number of contiguously committed elements. Indices below this are
  /// safe to read from any thread.
  std::uint64_t size() const { return committed_.load(std::memory_order_acquire); }

  bool empty() const { return size() == 0; }

  const T& operator[](std::uint64_t i) const { return cell_ro(i).value; }

  /// Mutable access — callers must serialize writes to one element against
  /// its readers themselves (the checker only mutates fields the pipeline
  /// workers never read, e.g. I+ cursors).
  T& mut(std::uint64_t i) { return cell(i, /*create=*/false).value; }

 private:
  // Segment k holds 64<<k elements: [0,64) live in segment 0, [64,192) in
  // segment 1, ... 40 segments cover > 2^45 elements.
  static constexpr std::uint32_t kBaseShift = 6;
  static constexpr std::uint32_t kMaxSegments = 40;

  struct Cell {
    T value{};
    std::atomic<std::uint8_t> ready{0};
  };

  static std::uint32_t segment_of(std::uint64_t i) {
    return static_cast<std::uint32_t>(std::bit_width((i >> kBaseShift) + 1) - 1);
  }
  static std::uint64_t segment_base(std::uint32_t k) {
    return ((std::uint64_t{1} << k) - 1) << kBaseShift;
  }
  static std::uint64_t segment_capacity(std::uint32_t k) {
    return std::uint64_t{1} << (kBaseShift + k);
  }

  Cell& cell(std::uint64_t i, bool create) {
    std::uint32_t k = segment_of(i);
    Cell* seg = segments_[k].load(std::memory_order_acquire);
    if (seg == nullptr && create) {
      Cell* fresh = new Cell[segment_capacity(k)];
      if (segments_[k].compare_exchange_strong(seg, fresh, std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        seg = fresh;
      } else {
        delete[] fresh;  // another producer won the install race
      }
    }
    return seg[i - segment_base(k)];
  }

  const Cell& cell_ro(std::uint64_t i) const {
    std::uint32_t k = segment_of(i);
    return segments_[k].load(std::memory_order_acquire)[i - segment_base(k)];
  }

  void advance_committed() {
    // Scan forward over ready cells from the current watermark. If another
    // committer fills the hole we stopped at, its own rescan (which starts
    // from the then-current watermark) covers our cell — every committed
    // prefix is eventually published.
    for (;;) {
      std::uint64_t c = committed_.load(std::memory_order_acquire);
      std::uint64_t t = tail_.load(std::memory_order_acquire);
      std::uint64_t n = c;
      while (n < t) {
        std::uint32_t k = segment_of(n);
        Cell* seg = segments_[k].load(std::memory_order_acquire);
        if (seg == nullptr || seg[n - segment_base(k)].ready.load(std::memory_order_acquire) == 0)
          break;
        ++n;
      }
      if (n == c) return;
      if (committed_.compare_exchange_weak(c, n, std::memory_order_release,
                                           std::memory_order_relaxed))
        return;
      // Lost the race: someone else advanced; rescan from their watermark.
    }
  }

  void free_segments() {
    for (auto& s : segments_) {
      delete[] s.load(std::memory_order_relaxed);
      s.store(nullptr, std::memory_order_relaxed);
    }
  }

  void reset_counters() {
    tail_.store(0, std::memory_order_relaxed);
    committed_.store(0, std::memory_order_relaxed);
  }

  // Copies the committed prefix. Only meaningful on quiesced logs (the
  // checker copies stores in merge_snapshot and tests, never mid-round).
  void copy_from(const SegLog& o) {
    std::uint64_t n = o.size();
    for (std::uint64_t i = 0; i < n; ++i) push_back(o[i]);
  }

  void steal_from(SegLog& o) {
    for (std::uint32_t k = 0; k < kMaxSegments; ++k) {
      segments_[k].store(o.segments_[k].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      o.segments_[k].store(nullptr, std::memory_order_relaxed);
    }
    tail_.store(o.tail_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    committed_.store(o.committed_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    o.reset_counters();
  }

  std::array<std::atomic<Cell*>, kMaxSegments> segments_{};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> committed_{0};
};

}  // namespace lmc::concurrent
