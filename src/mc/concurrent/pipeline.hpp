// Work-stealing execution pipeline for phase 1 (DESIGN.md §12).
//
// The determinism contract (byte-identical checkpoints, violations and
// identity trace streams at 1 vs N threads) hinges on one rule: only the
// APPLIER mutates checker state, and it consumes task results in exactly
// the order the tasks were published. What parallelizes is the expensive
// pure part — running protocol handlers against immutable snapshots of
// `LS_n` and `I+` — which this pipeline fans out to stealing workers:
//
//   applier: publish(t0) publish(t1) ... front()/pop() in t0,t1,... order
//   workers: scan [consumed, published) for PUBLISHED slots, CAS-claim,
//            execute, mark READY
//
// Slot life cycle: EMPTY → PUBLISHED (applier, release) → CLAIMED (worker
// or applier, CAS) → READY (release) → EMPTY (applier pop). Slots live in
// append-only geometric segments that are never freed before destruction,
// so a worker scanning a stale index range can never touch freed memory;
// pop() clears the heavy payload (task/execs/error) and leaves the shell.
//
// When the applier reaches a slot that is still CLAIMED it does not idle:
// it steals a later PUBLISHED slot and executes it inline (help_one), the
// same path a 1-thread run takes for every slot — the single-threaded and
// multi-threaded executions are literally the same code.
//
// Worker exceptions are ALWAYS captured into the slot (even on the inline
// path) and rethrown by the applier at consume time, in publication order;
// secondary exceptions sitting in later READY slots when an earlier one
// throws are counted, not lost (ISSUE 7 satellite: multi-exception loss).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lmc::concurrent {

template <typename Task, typename Exec>
class ExplorePipeline {
 public:
  using ExecFn = std::function<std::vector<Exec>(const Task&)>;

  struct Slot {
    Task task{};
    std::vector<Exec> execs;
    std::exception_ptr error;
    alignas(64) std::atomic<std::uint32_t> state{kEmpty};
  };

  /// `num_workers` stealing threads (0 = everything runs inline on the
  /// applier). `fn` must be pure with respect to checker state: it may read
  /// published/immutable data only.
  ExplorePipeline(std::uint32_t num_workers, ExecFn fn) : fn_(std::move(fn)) {
    workers_.reserve(num_workers);
    for (std::uint32_t i = 0; i < num_workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ExplorePipeline() {
    stop_and_join();
    free_segments();
  }

  ExplorePipeline(const ExplorePipeline&) = delete;
  ExplorePipeline& operator=(const ExplorePipeline&) = delete;

  /// Applier-only. Publishes the next task; its slot index is the
  /// deterministic sequence number of the task.
  std::uint64_t publish(Task t) {
    std::uint64_t i = published_.load(std::memory_order_relaxed);
    Slot& s = slot(i, /*create=*/true);
    s.task = std::move(t);
    s.state.store(kPublished, std::memory_order_release);
    published_.store(i + 1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lk(park_mu_); }  // Dekker: order vs predicate check
      park_cv_.notify_all();
    }
    return i;
  }

  bool have_pending() const {
    return consumed_.load(std::memory_order_relaxed) < published_.load(std::memory_order_relaxed);
  }

  std::uint64_t published_count() const { return published_.load(std::memory_order_relaxed); }
  std::uint64_t consumed_count() const { return consumed_.load(std::memory_order_relaxed); }

  /// Applier-only. Blocks until the next slot in publication order is
  /// READY — executing it inline if unclaimed, stealing later published
  /// slots while a worker finishes it — and returns it. The caller reads
  /// .execs/.error, then calls pop().
  Slot& front() {
    std::uint64_t i = consumed_.load(std::memory_order_relaxed);
    Slot& s = slot(i, /*create=*/false);
    std::uint32_t spins = 0;
    for (;;) {
      std::uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == kReady) return s;
      if (st == kPublished) {
        std::uint32_t expected = kPublished;
        if (s.state.compare_exchange_strong(expected, kClaimed, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
          run_slot(s);  // the 1-thread path: applier executes everything
          return s;
        }
        continue;
      }
      // CLAIMED by a worker: be useful instead of spinning.
      if (help_one(i + 1)) {
        spins = 0;
        continue;
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  /// Applier-only. Releases the front slot's payload and advances.
  void pop() {
    std::uint64_t i = consumed_.load(std::memory_order_relaxed);
    Slot& s = slot(i, /*create=*/false);
    s.task = Task{};
    s.execs.clear();
    s.execs.shrink_to_fit();
    s.error = nullptr;
    s.state.store(kEmpty, std::memory_order_release);
    consumed_.store(i + 1, std::memory_order_seq_cst);
  }

  /// Applier-only, after workers are stopped (or known idle): the tasks
  /// published but not yet consumed, in publication order. These become
  /// checkpoint `pending` entries on budget stops and safepoints.
  std::vector<Task> backlog_tasks() const {
    std::vector<Task> out;
    std::uint64_t from = consumed_.load(std::memory_order_relaxed);
    std::uint64_t to = published_.load(std::memory_order_relaxed);
    out.reserve(to - from);
    for (std::uint64_t i = from; i < to; ++i) out.push_back(slot_ro(i).task);
    return out;
  }

  /// Applier-only, after stop_and_join(): READY slots past the consumption
  /// point whose execution threw — their exceptions will never be rethrown
  /// (an earlier error aborted the run) and must be accounted, not lost.
  std::uint64_t count_dropped_errors() const {
    std::uint64_t dropped = 0;
    std::uint64_t from = consumed_.load(std::memory_order_relaxed);
    std::uint64_t to = published_.load(std::memory_order_relaxed);
    for (std::uint64_t i = from; i < to; ++i) {
      const Slot& s = slot_ro(i);
      if (s.state.load(std::memory_order_acquire) == kReady && s.error != nullptr) ++dropped;
    }
    return dropped;
  }

  /// Stop workers and join them. Idempotent; also called by the dtor.
  /// In-flight claimed slots finish executing first (workers only check
  /// stop_ between tasks), so after this returns every slot is EMPTY,
  /// PUBLISHED, or READY.
  void stop_and_join() {
    stop_.store(true, std::memory_order_seq_cst);
    { std::lock_guard<std::mutex> lk(park_mu_); }
    park_cv_.notify_all();
    for (std::thread& t : workers_)
      if (t.joinable()) t.join();
    workers_.clear();
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kPublished = 1;
  static constexpr std::uint32_t kClaimed = 2;
  static constexpr std::uint32_t kReady = 3;

  static constexpr std::uint32_t kBaseShift = 6;
  static constexpr std::uint32_t kMaxSegments = 40;

  static std::uint32_t segment_of(std::uint64_t i) {
    return static_cast<std::uint32_t>(std::bit_width((i >> kBaseShift) + 1) - 1);
  }
  static std::uint64_t segment_base(std::uint32_t k) {
    return ((std::uint64_t{1} << k) - 1) << kBaseShift;
  }
  static std::uint64_t segment_capacity(std::uint32_t k) {
    return std::uint64_t{1} << (kBaseShift + k);
  }

  Slot& slot(std::uint64_t i, bool create) {
    std::uint32_t k = segment_of(i);
    Slot* seg = segments_[k].load(std::memory_order_acquire);
    if (seg == nullptr && create) {
      // Only the applier creates segments (it is the only publisher), but
      // install with a CAS anyway so the invariant is structural.
      Slot* fresh = new Slot[segment_capacity(k)];
      if (segments_[k].compare_exchange_strong(seg, fresh, std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        seg = fresh;
      } else {
        delete[] fresh;
      }
    }
    return seg[i - segment_base(k)];
  }

  const Slot& slot_ro(std::uint64_t i) const {
    std::uint32_t k = segment_of(i);
    return segments_[k].load(std::memory_order_acquire)[i - segment_base(k)];
  }

  void free_segments() {
    for (auto& s : segments_) {
      delete[] s.load(std::memory_order_relaxed);
      s.store(nullptr, std::memory_order_relaxed);
    }
  }

  void run_slot(Slot& s) {
    try {
      s.execs = fn_(s.task);
    } catch (...) {
      s.error = std::current_exception();
    }
    s.state.store(kReady, std::memory_order_release);
  }

  /// Claim and execute one PUBLISHED slot in [from, published). Used by the
  /// applier while it waits for the front slot, and by workers.
  bool help_one(std::uint64_t from) {
    std::uint64_t to = published_.load(std::memory_order_acquire);
    for (std::uint64_t i = from; i < to; ++i) {
      Slot& s = slot(i, /*create=*/false);
      std::uint32_t expected = kPublished;
      if (s.state.load(std::memory_order_acquire) != kPublished) continue;
      if (s.state.compare_exchange_strong(expected, kClaimed, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        run_slot(s);
        return true;
      }
    }
    return false;
  }

  void worker_loop() {
    while (!stop_.load(std::memory_order_seq_cst)) {
      std::uint64_t pub = published_.load(std::memory_order_seq_cst);
      if (help_one(consumed_.load(std::memory_order_relaxed))) continue;
      // Nothing claimable: park until the applier publishes or stops.
      parked_.fetch_add(1, std::memory_order_seq_cst);
      if (published_.load(std::memory_order_seq_cst) == pub &&
          !stop_.load(std::memory_order_seq_cst)) {
        std::unique_lock<std::mutex> lk(park_mu_);
        park_cv_.wait(lk, [&] {
          return stop_.load(std::memory_order_seq_cst) ||
                 published_.load(std::memory_order_seq_cst) != pub;
        });
      }
      parked_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  ExecFn fn_;
  std::array<std::atomic<Slot*>, kMaxSegments> segments_{};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint32_t> parked_{0};
  std::atomic<bool> stop_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::vector<std::thread> workers_;
};

}  // namespace lmc::concurrent
