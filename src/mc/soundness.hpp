// A-posteriori soundness verification (§4.1 isStateSound/isSequenceValid,
// with the hash-only event accounting of §4.2).
//
// A preliminary invariant violation names one state per node; the system
// state is valid iff some interleaving of per-node event chains leading to
// those states could occur in a real run. The paper enumerates per-node
// event sequences from the predecessor pointers and greedily schedules each
// combination; it also notes that "the number of paths could exponentially
// increase with sequence size, which is the major cost in soundness
// verification" (§4.1). Near a bug the pred graph fans out so hard that
// materialized sequence sets overflow any cap before the one valid path is
// found, so verify() instead runs a *joint demand-driven search* over the
// same predecessor structure:
//  1. per node, collect the backward closure of the target state — the
//     sub-DAG of states on some root->target path — and its forward edges;
//  2. prune message edges whose message hash no other edge (or the
//     snapshot's in-flight set, or a recorded self-loop) can generate, and
//     drop states from which the target becomes unreachable;
//  3. DFS over joint positions (one per node) plus the multiset of
//     generated-but-unconsumed message hashes, memoizing visited joint
//     states; internal edges are always enabled, message edges need their
//     hash in the multiset; recorded self-loops fire when they contribute
//     a new message.
// A run that parks every node on its target state is a feasible schedule;
// it is returned as the witness (and can be re-executed by the replay
// validator). Everything is integer/hash comparisons — no handler runs.
//
// The sequence-based primitives of the paper (enumerate_sequences,
// is_sequence_valid) are kept as a public API: they are the direct
// transcription of Fig. 9 and remain useful for small graphs and tests.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "mc/local_store.hpp"

namespace lmc {

struct SoundnessOptions {
  std::uint64_t max_sequences_per_node = 256;  ///< enumeration cap (sequence API)
  std::uint64_t max_schedules = 1u << 20;      ///< joint-search expansion cap per verify()
  std::uint32_t max_seq_len = 1u << 12;        ///< per-sequence length cap (sequence API)
  /// Two-phase verification (checker-side): a preliminary violation is
  /// first verified with this expansion cap. Sound combinations confirm
  /// almost immediately (tens of expansions); refuting an unsound one can
  /// cost thousands, so cap-hit combinations are deferred and re-verified
  /// with the full cap only after exploration finishes, within the time
  /// budget. 0 disables the quick pass.
  std::uint64_t quick_expansions = 512;
  /// Upper bound on the deferred queue; overflow sets a stats flag.
  std::uint64_t max_deferred = 1u << 20;
};

struct SoundnessResult {
  bool sound = false;
  Schedule schedule;                  ///< a feasible total order, if sound
  /// Final state index per node. Fixed nodes sit on their targets; free
  /// nodes wherever the feasible run left them (a co-reachable completion).
  std::vector<std::uint32_t> final_combo;
  /// Epoch whose snapshot the schedule starts from (warm-started online
  /// checking verifies against each merged snapshot, newest first).
  std::size_t epoch = 0;
  std::uint64_t sequences_enumerated = 0;  ///< relevant subgraph states visited
  std::uint64_t schedules_checked = 0;     ///< joint-search expansions
  bool truncated = false;               ///< some cap was hit (result may be incomplete)
};

/// One snapshot's soundness seed: per-node root state indices plus the
/// in-flight message hashes that exist without any generating event. A
/// feasible schedule starts every node on the SAME epoch's root — each live
/// snapshot is a consistent global state, so combining roots of different
/// epochs could fabricate runs no deployment produced.
struct EpochSeed {
  std::vector<std::uint32_t> roots;   ///< per node: index into LS_n
  std::vector<Hash64> in_flight;      ///< snapshot's in-flight message hashes
};

/// Thread-safety: a verifier is immutable after construction — verify(),
/// target_feasible() and enumerate_sequences() are const, touch only the
/// (frozen during a verification phase) LocalStore plus per-call locals, and
/// may run concurrently on one instance or on independent instances. The
/// parallel verification phase of LocalModelChecker builds one verifier per
/// job (the instances are cheap: they borrow the store and copy the seeds).
class SoundnessVerifier {
 public:
  /// One event of a candidate per-node sequence, oldest first.
  struct SeqEv {
    bool is_message = false;
    Hash64 ev_hash = 0;
    const std::vector<Hash64>* gen = nullptr;  ///< messages generated (owned by store)
    std::uint32_t state_after = 0;             ///< state index reached by this event
  };
  struct NodeSeq {
    std::uint32_t root = 0;       ///< starting state index (the live/initial state)
    std::vector<SeqEv> evs;
    std::size_t size() const { return evs.size(); }
  };

  /// Single-epoch (offline) verifier: every node starts at state 0, the
  /// snapshot's in-flight messages are available without generation.
  SoundnessVerifier(const LocalStore& store, std::vector<Hash64> initial_in_flight,
                    SoundnessOptions opt);

  /// Multi-epoch (warm-started online) verifier: each epoch contributes one
  /// consistent (roots, in-flight) start; verify() tries epochs newest
  /// first and reports the one that admitted a schedule. (A factory rather
  /// than an overload: `{}` would be ambiguous against the offline ctor.)
  static SoundnessVerifier with_epochs(const LocalStore& store, std::vector<EpochSeed> epochs,
                                       SoundnessOptions opt);

  /// Verify the system state formed by `combo` (one state index per node).
  /// When `fixed` is non-null, only nodes with fixed[n] == true must reach
  /// combo[n]; the others are free — the search may drive them through any
  /// recorded transitions (their whole traversed graph) and parks them
  /// wherever the feasible run ends. Free nodes make pair-conflict
  /// violations (LMC-OPT) verifiable in ONE search instead of one per
  /// combination of bystander states.
  SoundnessResult verify(const std::vector<std::uint32_t>& combo,
                         const std::vector<bool>* fixed = nullptr) const;

  /// Cheap necessary condition for any combination containing (n, target):
  /// can the target still be reached when every message any OTHER node ever
  /// generated (`other_avail`, plus the snapshot's in-flight set) is assumed
  /// available? If not, every combination with this member is unsound and
  /// the full search can be skipped. The caller caches results — they only
  /// change when other_avail grows.
  bool target_feasible(NodeId n, std::uint32_t target,
                       const std::unordered_set<Hash64>& other_avail) const;

  /// All predecessor-closed event sequences reaching (n, idx), capped.
  /// Exposed for tests and for the replay validator.
  std::vector<NodeSeq> enumerate_sequences(NodeId n, std::uint32_t idx, bool* truncated) const;

  /// Greedy feasibility check of one sequence combination. On success the
  /// discovered total order is appended to *schedule (if non-null).
  bool is_sequence_valid(const std::vector<const NodeSeq*>& seqs, Schedule* schedule) const;

 private:
  const LocalStore& store_;
  /// Union of every epoch's in-flight hashes — seeds the sequence API and
  /// the (conservative) edge-availability pruning; the joint search itself
  /// is seeded per epoch.
  std::vector<Hash64> initial_in_flight_;
  std::vector<EpochSeed> epochs_;
  SoundnessOptions opt_;
};

}  // namespace lmc
