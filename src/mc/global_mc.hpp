// Global model checking baseline: bounded depth-first search (B-DFS, §3.2)
// over global states (L, I). This is the approach LMC is measured against in
// Figures 10-12: every network change creates a fresh global state, so the
// exponential explosion arrives at shallow depths.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mc/invariant.hpp"
#include "mc/stats.hpp"
#include "net/network.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

struct GlobalMcOptions {
  std::uint32_t max_depth = 1u << 30;
  std::uint64_t max_transitions = std::numeric_limits<std::uint64_t>::max();
  double time_budget_s = std::numeric_limits<double>::infinity();
  /// Cooperative cancellation (e.g. by RacingChecker when the other
  /// checker finishes first). Checked alongside the budgets.
  const std::atomic<bool>* cancel = nullptr;
  bool stop_on_violation = false;
  /// Local assertion failures are real bugs under global MC (every visited
  /// state is valid, §3.2); set false to silently discard instead.
  bool assert_is_violation = true;
  bool check_invariants = true;
  /// Record every distinct *system* state seen (projection of global
  /// states) as its per-node hash tuple; used by the LMC completeness
  /// cross-check.
  bool collect_system_states = false;
};

/// A violation found by B-DFS; sound by construction (§3.2).
struct GlobalViolation {
  std::vector<Blob> system_state;        ///< node states at the violation
  std::string invariant;                 ///< invariant name or "local_assert: ..."
  std::vector<std::string> trace;        ///< event path from the start state
  std::uint32_t depth = 0;
};

class GlobalModelChecker {
 public:
  GlobalModelChecker(const SystemConfig& cfg, const Invariant* invariant, GlobalMcOptions opt);

  /// Explore from an explicit start state (live snapshot or initial state).
  void run(const std::vector<Blob>& nodes, const Network& net);

  /// Explore from the protocol's initial (pre-init) state, empty network.
  void run_from_initial();

  const GlobalMcStats& stats() const { return stats_; }
  const std::vector<GlobalViolation>& violations() const { return violations_; }

  /// Distinct system states as per-node hash tuples, keyed by combined hash
  /// (only if collect_system_states).
  const std::unordered_map<Hash64, std::vector<Hash64>>& system_state_tuples() const {
    return sys_tuples_;
  }

 private:
  struct State {
    std::vector<Blob> nodes;
    Network net;
  };

  Hash64 state_hash(const State& s) const;
  Hash64 system_hash(const State& s) const;
  void collect_system(const State& s);
  void dfs(State& s, std::uint32_t depth, std::vector<std::string>& trace);
  bool budget_exceeded();
  void on_new_state(const State& s, std::uint32_t depth, std::vector<std::string>& trace);
  void record_violation(const State& s, std::uint32_t depth, const std::string& what,
                        const std::vector<std::string>& trace);

  const SystemConfig& cfg_;
  const Invariant* invariant_;
  GlobalMcOptions opt_;

  std::unordered_map<Hash64, std::uint32_t> visited_;  // state hash -> min depth seen
  std::unordered_map<Hash64, std::vector<Hash64>> sys_tuples_;
  GlobalMcStats stats_;
  std::vector<GlobalViolation> violations_;
  std::size_t stack_bytes_ = 0;
  bool stop_ = false;
  double deadline_ = std::numeric_limits<double>::infinity();
  std::uint64_t budget_probe_ = 0;
};

}  // namespace lmc
