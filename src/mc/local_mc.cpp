#include "mc/local_mc.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "analyze/independence/auditor.hpp"
#include "mc/clock.hpp"
#include "mc/parallel_local_mc.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "persist/exec_cache.hpp"
#include "runtime/audit.hpp"

namespace lmc {

namespace {

using obs::EventType;
using obs::TraceEvent;

/// Trace-event builder: keeps the emission sites below one-liners.
TraceEvent tev(EventType type, obs::Phase phase, std::uint32_t round, std::uint64_t a,
               std::uint64_t b, std::uint64_t c, double dur = 0.0,
               std::uint32_t node = TraceEvent::kNoNode, std::uint64_t seq = 0) {
  TraceEvent ev;
  ev.type = type;
  ev.phase = phase;
  ev.round = round;
  ev.node = node;
  ev.seq = seq;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.dur = dur;
  return ev;
}

bool history_contains(const std::vector<Hash64>& hist, Hash64 h) {
  return std::binary_search(hist.begin(), hist.end(), h);
}

void history_insert(std::vector<Hash64>& hist, Hash64 h) {
  hist.insert(std::upper_bound(hist.begin(), hist.end(), h), h);
}

}  // namespace

LocalModelChecker::LocalModelChecker(const SystemConfig& cfg, const Invariant* invariant,
                                     LocalMcOptions opt)
    : cfg_(cfg), invariant_(invariant), opt_(opt), store_(cfg.num_nodes) {}

const LocalViolation* LocalModelChecker::first_confirmed() const {
  for (const LocalViolation& v : violations_)
    if (v.confirmed) return &v;
  return nullptr;
}

std::uint32_t LocalModelChecker::expand_bound() const {
  return std::min(opt_.max_chain_depth, opt_.max_total_depth);
}

bool LocalModelChecker::budget_exceeded() const {
  return stats_.transitions >= opt_.max_transitions || hard_budget_exceeded();
}

// Time/cancel only. The combination-sweep probes use this deliberately: a
// transition-budget stop must happen at a task-group boundary (probes fire
// at data-dependent points, which would make the stop — and therefore a
// checkpoint taken there — non-reproducible on resume).
bool LocalModelChecker::hard_budget_exceeded() const {
  if (now_s() > deadline_) return true;
  return opt_.cancel != nullptr && opt_.cancel->load(std::memory_order_relaxed);
}

void LocalModelChecker::init_run(const std::vector<Blob>& nodes,
                                 const std::vector<Message>& in_flight) {
  store_ = LocalStore(cfg_.num_nodes);
  net_ = MonotonicNetwork{};
  events_.clear();
  epochs_.clear();
  internal_scan_.assign(cfg_.num_nodes, 0);
  proj_.assign(cfg_.num_nodes, {});
  mapped_.assign(cfg_.num_nodes, {});
  node_gens_.assign(cfg_.num_nodes, {});
  pred_edges_.assign(cfg_.num_nodes, 0);
  por_fwd_.assign(cfg_.num_nodes, {});
  por_deferred_.clear();
  por_audit_ctr_ = 0;
  clear_feas_cache();
  deferred_.clear();
  pending_tasks_.clear();
  stats_ = LocalMcStats{};
  violations_.clear();
  stop_ = false;
  base_elapsed_s_ = 0.0;
  cur_round_ = 0;
  segment_id_ = 0;
  pipeline_dropped_ = 0;

  CheckerEpoch ep;
  ep.nodes = nodes;
  ep.msgs = in_flight;
  const bool projecting = invariant_ != nullptr && invariant_->has_projection();
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    NodeStateRec rec;
    rec.blob = nodes[n];
    rec.hash = hash_blob(rec.blob);
    LMC_PROF(opt_.profile, count(obs::Counter::kBytesHashed, rec.blob.size()));
    rec.depth = 0;
    const Hash64 root_hash = rec.hash;
    const std::uint32_t root_idx = store_.add(n, std::move(rec));
    ep.roots.push_back(root_idx);
    ++stats_.node_states;
    LMC_TRACE(opt_.trace, record(tev(EventType::kStateInsert, obs::Phase::kExplore, cur_round_,
                                     root_idx, root_hash, 0, 0.0, n)));
    if (projecting) {
      Projection p = invariant_->project(cfg_, n, nodes[n]);
      if (!p.empty()) mapped_[n].push_back(0);
      proj_[n].push_back(std::move(p));
    }
  }
  // Snapshot in-flight messages seed I+ and are available to soundness
  // verification without any generating event.
  for (const Message& m : in_flight) {
    Hash64 h = m.hash();
    ep.in_flight.push_back(h);
    if (net_.add(m)) {
      EventRecord er;
      er.is_message = true;
      er.msg = m;
      events_.emplace(h, std::move(er));
      LMC_TRACE(opt_.trace, record(tev(EventType::kIplusAppend, obs::Phase::kExplore, cur_round_,
                                       h, net_.size(), 0, 0.0, m.dst)));
    }
  }
  epochs_.push_back(std::move(ep));
  resolve_symmetry();
  resolve_por();
  initialized_ = true;
}

// Decide whether the symmetry reduction is active for this run and build
// the canonicalizer (DESIGN.md §13). Every condition here is about either
// profitability or keeping the orbit abstraction exact:
//  * the invariant must vouch for each class (symmetric_under) — otherwise
//    a non-representative orbit member could violate while the canonical
//    representative does not, and the sweep would miss it;
//  * the projection sweep (LMC-OPT) is excluded: it enumerates conflicting
//    projection PAIRS, not whole combinations, so "orbit of a combination"
//    is not the unit it works in;
//  * max_total_depth must be unbounded: the total-depth filter sums member
//    depths, and two arrangements of one orbit can have different depth
//    sums when members reached equal states at different depths — a finite
//    filter would make orbit membership arrangement-dependent. Bound
//    exploration with max_chain_depth instead (bench_symmetry does).
void LocalModelChecker::resolve_symmetry() {
  canon_.reset();
  sym_stats_ = symmetry::SymmetryStats{};
  const symmetry::SymmetryOptions& so = opt_.symmetry;
  if (so.mode == symmetry::SymmetryMode::kOff || invariant_ == nullptr) return;
  if (!opt_.enable_system_states) return;
  if (opt_.use_projection && invariant_->has_projection()) return;
  if (opt_.max_total_depth != std::numeric_limits<std::uint32_t>::max()) return;
  std::vector<std::vector<NodeId>> classes = symmetry::normalize_classes(
      so.mode == symmetry::SymmetryMode::kExplicit ? so.classes : cfg_.symmetric_roles,
      cfg_.num_nodes);
  // Per-class filtering is sound: invariance under each class's permutations
  // implies invariance under the product group they generate.
  std::vector<std::vector<NodeId>> kept;
  for (auto& c : classes) {
    if (c.size() > 64) continue;  // universe member masks are one word
    if (invariant_->symmetric_under({c})) kept.push_back(std::move(c));
  }
  if (kept.empty()) return;
  canon_ = std::make_unique<symmetry::Canonicalizer>(std::move(kept), cfg_.num_nodes);
  sym_stats_.active = 1;
  sym_stats_.classes = static_cast<std::uint32_t>(canon_->classes().size());
  // Seed the universes from whatever the store already holds: the epoch
  // roots on a fresh run, the full store on checkpoint load.
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    const std::uint32_t cnt = store_.size(n);
    for (std::uint32_t i = 0; i < cnt; ++i) {
      canon_->add_state(n, store_.rec(n, i).hash);
      LMC_PROF(opt_.profile, count(obs::Counter::kStatesCanonicalized));
    }
  }
}

// Decide whether the partial-order reduction is active for this run. The
// conditions:
//  * registered footprints (SystemConfig::footprints) — the relation is
//    derived from them; no metadata, no reduction;
//  * max_total_depth AND max_chain_depth unbounded: recorded depths are
//    path-dependent, and pruning a first-discovery edge can re-record a
//    state one level deeper via its covering path. Under a depth bound that
//    shift silently truncates the state's expansion (observed empirically:
//    bound-frontier states lose children), and the total-depth filter sums
//    recorded depths, so either bound makes the reduced run diverge from
//    the unreduced one. Sleep-set pruning is exact only for exhaustive
//    exploration of the (finite) reachable space (DESIGN.md §14);
//  * a non-empty derived relation — an empty relation can never prune, and
//    resolving to "off" keeps checkpoint mode-matching deterministic.
void LocalModelChecker::resolve_por() {
  por_rel_.reset();
  por_loop_sends_ok_ = false;
  por_stats_ = indep::PorStats{};
  if (opt_.por.mode != indep::PorMode::kOn) return;
  if (cfg_.footprints == nullptr) return;
  if (opt_.max_total_depth != std::numeric_limits<std::uint32_t>::max()) return;
  if (opt_.max_chain_depth != std::numeric_limits<std::uint32_t>::max()) return;
  indep::AnalysisResult res =
      indep::analyze_independence(cfg_.footprints.get(), cfg_.num_nodes, "");
  if (res.relation.size() == 0) return;
  por_rel_ = std::make_unique<indep::IndependenceRelation>(std::move(res.relation));
  por_loop_sends_ok_ = true;
  for (const NodeFootprints& nf : cfg_.footprints->nodes)
    for (const RuleFootprint& rf : nf.rules)
      for (const FieldAccess& w : rf.writes)
        if (w.merge != MergeKind::kNone) por_loop_sends_ok_ = false;
  por_stats_.active = 1;
  por_stats_.relation_pairs = por_rel_->size();
  LMC_TRACE(opt_.trace, record(tev(EventType::kPorResolve, obs::Phase::kRun, cur_round_,
                                   por_stats_.relation_pairs, por_rel_->digest(),
                                   res.unclassifiable)));
}

// Warm start: fold a new live snapshot into the existing stores. Snapshot
// states already in LS_n contribute nothing new (the common case when the
// live system idles); fresh ones become depth-0 roots with no predecessors
// and empty history — exactly how init_run seeds epoch 0. In-flight
// messages pass through I+'s duplicate suppression, so a message observed
// in-flight over several periods is executed against each destination state
// ONCE across all periods. This, plus the surviving per-message cursors, is
// where warm runs beat cold re-derivation on transitions.
void LocalModelChecker::merge_snapshot(const std::vector<Blob>& nodes,
                                       const std::vector<Message>& in_flight) {
  ++stats_.warm_merges;
  const std::uint64_t pre_root_hits = stats_.warm_root_hits;
  const std::uint64_t pre_msgs_reused = stats_.warm_msgs_reused;
  CheckerEpoch ep;
  ep.nodes = nodes;
  ep.msgs = in_flight;
  std::vector<std::pair<NodeId, std::uint32_t>> fresh;
  const bool projecting = invariant_ != nullptr && invariant_->has_projection();
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    const Hash64 h = hash_blob(nodes[n]);
    LMC_PROF(opt_.profile, count(obs::Counter::kBytesHashed, nodes[n].size()));
    std::uint32_t idx = store_.find(n, h);
    if (idx == UINT32_MAX) {
      NodeStateRec rec;
      rec.blob = nodes[n];
      rec.hash = h;
      rec.depth = 0;
      idx = store_.add(n, std::move(rec));
      if (canon_ != nullptr) {
        canon_->add_state(n, h);
        LMC_PROF(opt_.profile, count(obs::Counter::kStatesCanonicalized));
      }
      ++stats_.node_states;
      ++stats_.warm_new_roots;
      fresh.emplace_back(n, idx);
      LMC_TRACE(opt_.trace, record(tev(EventType::kStateInsert, obs::Phase::kExplore, cur_round_,
                                       idx, h, 0, 0.0, n)));
      if (projecting) {
        Projection p = invariant_->project(cfg_, n, nodes[n]);
        if (!p.empty()) mapped_[n].push_back(idx);
        proj_[n].push_back(std::move(p));
      }
    } else {
      ++stats_.warm_root_hits;
    }
    ep.roots.push_back(idx);
  }
  for (const Message& m : in_flight) {
    Hash64 h = m.hash();
    ep.in_flight.push_back(h);
    if (net_.add(m)) {
      EventRecord er;
      er.is_message = true;
      er.msg = m;
      events_.emplace(h, std::move(er));
      LMC_TRACE(opt_.trace, record(tev(EventType::kIplusAppend, obs::Phase::kExplore, cur_round_,
                                       h, net_.size(), 0, 0.0, m.dst)));
    } else {
      ++stats_.warm_msgs_reused;
    }
  }
  epochs_.push_back(std::move(ep));
  LMC_TRACE(opt_.trace, record(tev(EventType::kWarmMerge, obs::Phase::kRun, cur_round_,
                                   fresh.size(), stats_.warm_root_hits - pre_root_hits,
                                   stats_.warm_msgs_reused - pre_msgs_reused)));

  // Fresh roots are new node states: check their combinations like any
  // other (after the epoch is registered — soundness must see its seed).
  if (opt_.enable_system_states && invariant_ != nullptr) {
    for (const auto& [n, idx] : fresh) {
      if (stop_) break;
      const double t0 = now_s();
      const std::uint64_t pre_ss = stats_.system_states;
      const std::uint64_t pre_pv = stats_.prelim_violations;
      check_combinations(n, idx);
      const double dt = now_s() - t0;
      stats_.system_state_s += dt;
      LMC_PROF(opt_.profile, phase_wall(obs::Phase::kSweep, dt));
      LMC_TRACE(opt_.trace, record(tev(EventType::kComboSweep, obs::Phase::kSweep, cur_round_,
                                       /*site=*/1, stats_.system_states - pre_ss,
                                       stats_.prelim_violations - pre_pv, dt, n)));
    }
  }
}

std::vector<EpochSeed> LocalModelChecker::epoch_seeds() const {
  std::vector<EpochSeed> seeds;
  seeds.reserve(epochs_.size());
  for (const CheckerEpoch& e : epochs_) seeds.push_back(EpochSeed{e.roots, e.in_flight});
  return seeds;
}

std::size_t LocalModelChecker::total_in_flight() const {
  std::size_t n = 0;
  for (const CheckerEpoch& e : epochs_) n += e.in_flight.size();
  return n;
}

const std::vector<Hash64>& LocalModelChecker::initial_in_flight_hashes() const {
  static const std::vector<Hash64> empty;
  return epochs_.empty() ? empty : epochs_.front().in_flight;
}

const std::vector<Blob>& LocalModelChecker::initial_nodes() const {
  static const std::vector<Blob> empty;
  return epochs_.empty() ? empty : epochs_.front().nodes;
}

const std::vector<Message>& LocalModelChecker::initial_in_flight() const {
  static const std::vector<Message> empty;
  return epochs_.empty() ? empty : epochs_.front().msgs;
}

// One cursor-scan generation (Fig. 9): publish, in deterministic scan
// order, every (message, state) pair and internal-event task the store and
// I+ grew since the last scan. Runs on the applier only, between consume
// streams — publication order is therefore a pure function of the
// exploration, independent of thread count.
std::uint64_t LocalModelChecker::publish_round(Pipeline& pipe) {
  const std::uint32_t bound = expand_bound();
  std::uint64_t published = 0;
  std::uint64_t round_pruned = 0;

  // POR pairs deferred by the previous generation: their pred records (if
  // any) were applied by the stream in between, so decide them for real now
  // — prune or publish, never a second deferral.
  if (!por_deferred_.empty()) {
    std::vector<Task> retry;
    retry.swap(por_deferred_);
    for (const Task& t : retry) {
      const MonotonicNetwork::Entry& e = std::as_const(net_).at(t.net_idx);
      const NodeStateRec& rec = store_.rec(t.node, t.state_idx);
      if (por_rel_ != nullptr &&
          try_prune_por(e, t.node, t.state_idx, rec, /*allow_defer=*/false) ==
              PruneVerdict::kPrune) {
        ++por_stats_.pairs_pruned;
        ++round_pruned;
        continue;
      }
      pipe.publish(t);
      ++published;
    }
  }

  // Network events: each message in I+ on every not-yet-tried state of its
  // destination (the per-message cursor of §4.2).
  const std::size_t n_msgs = net_.size();
  for (std::size_t i = 0; i < n_msgs; ++i) {
    MonotonicNetwork::Entry& e = net_.at(i);
    const NodeId d = e.msg.dst;
    const std::uint32_t limit = store_.size(d);
    for (std::uint32_t idx = static_cast<std::uint32_t>(e.next_state); idx < limit; ++idx) {
      const NodeStateRec& rec = store_.rec(d, idx);
      if (rec.depth >= bound) continue;
      if (history_contains(rec.history, e.hash)) {
        ++stats_.history_skips;
        continue;
      }
      if (por_rel_ != nullptr) {
        const PruneVerdict v = try_prune_por(e, d, idx, rec, /*allow_defer=*/true);
        if (v == PruneVerdict::kPrune) {
          ++por_stats_.pairs_pruned;
          ++round_pruned;
          continue;
        }
        if (v == PruneVerdict::kDefer) {
          por_deferred_.push_back(Task{true, i, d, idx});
          ++por_stats_.deferrals;
          LMC_PROF(opt_.profile, count(obs::Counter::kPorDeferrals));
          continue;
        }
      }
      pipe.publish(Task{true, i, d, idx});
      ++published;
    }
    e.next_state = limit;
  }
  if (round_pruned > 0) {
    LMC_PROF(opt_.profile, count(obs::Counter::kPorPrunes, round_pruned));
    LMC_TRACE(opt_.trace, record(tev(EventType::kPorPrune, obs::Phase::kExplore, cur_round_,
                                     round_pruned, por_stats_.pairs_pruned,
                                     por_stats_.conservative_skips)));
  }

  // Internal events: scan states added since the last generation.
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    const std::uint32_t limit = store_.size(n);
    for (std::uint32_t idx = internal_scan_[n]; idx < limit; ++idx) {
      if (store_.rec(n, idx).depth >= bound) continue;
      pipe.publish(Task{false, 0, n, idx});
      ++published;
    }
    internal_scan_[n] = limit;
  }
  return published;
}

// DESIGN.md §14: decide at publish time whether delivering message e to
// state s (= rec) can be skipped. Justification shape: an incoming edge
// `a` of s from predecessor p such that (1) the static relation declares a
// and the message independent at this node, and (2) the recorded outcome
// of delivering the SAME message at p proves the commuted path covers
// everything (m, s) would contribute:
//  * kNoop — m matched nothing at p, and by independence matches nothing
//    at s either: (m, s) is a silent no-op, prune unconditionally;
//  * kSucc(q) — the diamond closes through q: exec(q, a) = exec(s, m) and
//    the sends coincide, so the successor and its traffic are reached via
//    (a, q). Requires (i) a executable at q — for message edges a must not
//    sit in q's recorded history (histories are first-path, never merged);
//    (ii) q.depth <= s.depth, keeping the covering path at least as shallow
//    as the pruned one (POR only activates with unbounded depth, so this is
//    defense-in-depth, not load-bearing); (iii) for message edges the
//    tie-break e.hash < a.hash — justifying hashes along any chain of
//    prunes strictly increase, so one member of every commuting clique
//    always executes. Internal edges need no tie-break: internal tasks are
//    never pruned;
//  * kLoopSends — m self-looped at p but sent. Prunable only under the
//    all-kNone guard (por_loop_sends_ok_): with no commutative merges,
//    independence forces a's writes disjoint from m's reads AND writes, so
//    m reads the same values at s, performs the same (state-preserving)
//    assignments, and re-sends byte-identical messages the monotone I+
//    dedups — (m, s) contributes nothing. No successor is created, so the
//    tie-break/history/depth conditions of kSucc do not apply;
//  * kPruned — (m, p) was itself pruned: the classic sleep-set propagation
//    step. m "sleeps" across the independent edge a — inductively exec(p, m)
//    is covered by whichever record grounded p's prune, and the commuted
//    edge a from that covering state reaches exec(s, m), so (m, s) is
//    covered too. The chain is well-founded: every kPruned record consulted
//    was created strictly earlier, so it traces back to a grounded
//    kNoop/kSucc/kLoopSends record for the SAME message. Guarded by
//    p.depth < s.depth (p is a minimal-depth pred), the same
//    defense-in-depth shallowness condition as kSucc's;
//  * kDiscard — conservative skip: the delivery at p was discarded;
//    nothing proves (m, s) redundant;
//  * missing record — on the pair's FIRST consideration this usually means
//    (m, p) is published in the current generation and its outcome is still
//    in flight: defer (m, s) one generation and decide it at the top of the
//    next publish_round, by which time the stream has applied the record.
//    On the deferred retry a still-missing record (the pred pair was
//    history-skipped or out of depth) is a conservative skip.
// A successful prune records itself as kPruned so later states (and resumed
// runs, via checkpoint section 14) can propagate the decision.
// All inputs (rec.preds, events_, por_fwd_) are applier-written state
// frozen between generations, so decisions are deterministic and
// thread-count independent, and a resumed run reproduces them exactly.
LocalModelChecker::PruneVerdict LocalModelChecker::try_prune_por(const MonotonicNetwork::Entry& e,
                                                                 NodeId d, std::uint32_t rec_idx,
                                                                 const NodeStateRec& rec,
                                                                 bool allow_defer) {
  const std::uint64_t mkey = indep::event_key(true, e.msg.type);
  bool record_in_flight = false;
  for (const Pred& pr : rec.preds) {
    auto eit = events_.find(pr.ev_hash);
    if (eit == events_.end()) {
      ++por_stats_.conservative_skips;
      continue;
    }
    const EventRecord& er = eit->second;
    const std::uint64_t pkey = er.is_message ? indep::event_key(true, er.msg.type)
                                             : indep::event_key(false, er.ev.kind);
    if (!por_rel_->independent(d, mkey, pkey)) continue;
    auto fit = por_fwd_[d].find(FwdKey{pr.pred_idx, e.hash});
    if (fit == por_fwd_[d].end()) {
      if (allow_defer)
        record_in_flight = true;  // counted as a skip only on the final pass
      else
        ++por_stats_.conservative_skips;
      continue;
    }
    bool prune = false;
    switch (fit->second.outcome) {
      case FwdOutcome::kNoop:
        prune = true;
        break;
      case FwdOutcome::kSucc: {
        const NodeStateRec& q = store_.rec(d, fit->second.succ);
        const bool hash_ok = !pr.is_message || e.hash < pr.ev_hash;
        const bool hist_ok = !pr.is_message || !history_contains(q.history, pr.ev_hash);
        prune = hash_ok && hist_ok && q.depth <= rec.depth;
        break;
      }
      case FwdOutcome::kLoopSends:
        prune = por_loop_sends_ok_;
        if (!prune) ++por_stats_.conservative_skips;
        break;
      case FwdOutcome::kPruned:
        prune = store_.rec(d, pr.pred_idx).depth < rec.depth;
        if (!prune) ++por_stats_.conservative_skips;
        break;
      case FwdOutcome::kDiscard:
        ++por_stats_.conservative_skips;
        break;
    }
    if (!prune) continue;
    if (opt_.por.audit) {
      // Sampled runtime cross-check: execute both orders of (a, m) from the
      // serialized predecessor state and compare successor bytes and sent
      // sequences. A divergence means the registered footprints are wrong —
      // the prune we were about to take is unsound — so the auditor throws
      // out of run*() rather than let the reduced run silently differ.
      const std::uint32_t every = opt_.por.audit_every == 0 ? 1 : opt_.por.audit_every;
      if (por_audit_ctr_++ % every == 0) {
        indep::AuditEvent a;
        a.is_message = er.is_message;
        if (er.is_message)
          a.msg = er.msg;
        else
          a.ev = er.ev;
        indep::AuditEvent b;
        b.is_message = true;
        b.msg = e.msg;
        indep::audit_commutation(cfg_, d, store_.rec(d, pr.pred_idx).blob, a, b);
        ++por_stats_.audits;
      }
    }
    record_fwd(d, rec_idx, e.hash, FwdOutcome::kPruned, 0);
    return PruneVerdict::kPrune;
  }
  return record_in_flight ? PruneVerdict::kDefer : PruneVerdict::kPublish;
}

void LocalModelChecker::record_fwd(NodeId n, std::uint32_t pred_idx, Hash64 ev_hash,
                                   FwdOutcome out, std::uint32_t succ) {
  por_fwd_[n].emplace(FwdKey{pred_idx, ev_hash}, FwdRec{out, succ});
}

// The pipeline worker body: run the handler(s) of one task against
// immutable published data (the record's blob/hash and the I+ entry's
// msg/hash are write-once; the applier only ever mutates OTHER fields).
// With an exec cache attached the worker probes with the counter-free
// peek() and skips execution on a hit — the applier finalizes the cached
// verdict (and the hit/miss counters) authoritatively at consume time, so
// counters and results never depend on worker timing.
std::vector<LocalModelChecker::Exec> LocalModelChecker::execute_task(const Task& t) {
  std::vector<Exec> out;
  ExecCache* const cache = opt_.exec_cache;
  const bool timing = opt_.trace != nullptr || opt_.profile != nullptr;
  const NodeStateRec& rec = store_.rec(t.node, t.state_idx);
  if (t.is_message) {
    const MonotonicNetwork::Entry& e = std::as_const(net_).at(t.net_idx);
    Exec ex;
    ex.is_message = true;
    ex.ev_hash = e.hash;
    ex.node = t.node;
    ex.pred_idx = t.state_idx;
    const double tr0 = timing ? now_s() : 0.0;
    if (cache != nullptr && cache->peek(e.hash, rec.hash)) {
      ex.peek_hit = true;
    } else {
      ex.result = exec_message(cfg_, t.node, rec.blob, e.msg);
      if (opt_.audit_validity) {
        const AuditReport rep = audit_message(cfg_, t.node, rec.blob, e.msg, ex.result);
        audits_performed_.fetch_add(1, std::memory_order_relaxed);
        if (!rep.ok) throw ModelValidityError(t.node, rep.detail);
      }
    }
    if (timing) ex.exec_s = now_s() - tr0;
    out.push_back(std::move(ex));
  } else {
    for (const InternalEvent& ev : internal_events_of(cfg_, t.node, rec.blob)) {
      Exec ex;
      ex.is_message = false;
      ex.ev_hash = ev.hash(t.node);
      ex.node = t.node;
      ex.pred_idx = t.state_idx;
      ex.ev = ev;
      const double tr0 = timing ? now_s() : 0.0;
      if (cache != nullptr && cache->peek(ex.ev_hash, rec.hash)) {
        ex.peek_hit = true;
      } else {
        ex.result = exec_internal(cfg_, t.node, rec.blob, ev);
        if (opt_.audit_validity) {
          const AuditReport rep = audit_internal(cfg_, t.node, rec.blob, ev, ex.result);
          audits_performed_.fetch_add(1, std::memory_order_relaxed);
          if (!rep.ok) throw ModelValidityError(t.node, rep.detail);
        }
      }
      if (timing) ex.exec_s = now_s() - tr0;
      out.push_back(std::move(ex));
    }
  }
  return out;
}

void LocalModelChecker::apply_exec(Exec& e, std::uint64_t seq) {
  // Finalize the exec-cache verdict authoritatively on the applier, in
  // consume order: within a run every (event, state) pair executes at most
  // once (cursor discipline), so this lookup hits exactly when an EARLIER
  // run inserted the pair — the same verdict a serial run computes — and
  // the hit/miss counters are bumped exactly once per pair. The worker's
  // speculative peek() only decided whether to bother executing.
  if (ExecCache* const cache = opt_.exec_cache; cache != nullptr) {
    const NodeStateRec& pred0 = store_.rec(e.node, e.pred_idx);
    ExecResult replay;
    if (cache->lookup(e.ev_hash, pred0.hash, replay)) {
      e.cached = true;
      e.result = std::move(replay);
      if (obs::ProfileSink* const psink = opt_.profile; psink != nullptr) {
        psink->count(obs::Counter::kExecCacheHits);
        psink->count_shard(ExecCache::shard_index(e.ev_hash, pred0.hash), true);
      }
    } else {
      if (obs::ProfileSink* const psink = opt_.profile; psink != nullptr) {
        psink->count(obs::Counter::kExecCacheMisses);
        psink->count_shard(ExecCache::shard_index(e.ev_hash, pred0.hash), false);
      }
      if (e.peek_hit) {
        // The worker's peek saw the pair but a generation rotation evicted
        // it before consumption: execute here (rare; still audited).
        const double tr0 = opt_.trace != nullptr || opt_.profile != nullptr ? now_s() : 0.0;
        if (e.is_message) {
          const Message* m = net_.find(e.ev_hash);
          e.result = exec_message(cfg_, e.node, pred0.blob, *m);
          if (opt_.audit_validity) {
            const AuditReport rep = audit_message(cfg_, e.node, pred0.blob, *m, e.result);
            audits_performed_.fetch_add(1, std::memory_order_relaxed);
            if (!rep.ok) throw ModelValidityError(e.node, rep.detail);
          }
        } else {
          e.result = exec_internal(cfg_, e.node, pred0.blob, e.ev);
          if (opt_.audit_validity) {
            const AuditReport rep = audit_internal(cfg_, e.node, pred0.blob, e.ev, e.result);
            audits_performed_.fetch_add(1, std::memory_order_relaxed);
            if (!rep.ok) throw ModelValidityError(e.node, rep.detail);
          }
        }
        if (opt_.trace != nullptr || opt_.profile != nullptr) e.exec_s = now_s() - tr0;
      }
      cache->insert(e.ev_hash, pred0.hash, e.result);
    }
  }
  LMC_TRACE(opt_.trace, record(tev(EventType::kHandlerRun, obs::Phase::kExplore, cur_round_,
                                   e.is_message ? 1 : 0, e.ev_hash, e.cached ? 1 : 0,
                                   e.exec_s, e.node, seq)));
  // Per-rule cost attribution. All fields are computed from the Exec alone
  // (identity: a pure function of the exploration); exec_s is worker wall
  // time (attribution). hash_bytes anticipates the hash_blob below — zero
  // when the assert policy will discard the state before it is hashed.
  if (obs::ProfileSink* const psink = opt_.profile; psink != nullptr) {
    obs::RuleKey rk;
    rk.node = e.node;
    rk.is_message = e.is_message ? 1 : 0;
    if (e.is_message) {
      const auto it = events_.find(e.ev_hash);
      if (it != events_.end()) rk.kind = it->second.msg.type;
    } else {
      rk.kind = e.ev.kind;
    }
    std::uint64_t ser = e.result.state.size();
    for (const Message& m : e.result.sent) ser += m.payload.size();
    const bool discards = e.result.assert_failed &&
                          opt_.assert_policy == LocalMcOptions::AssertPolicy::DiscardState;
    const std::uint64_t hash_bytes = discards ? 0 : e.result.state.size();
    psink->rule(rk, e.cached, ser, hash_bytes, e.exec_s);
    psink->count(e.cached ? obs::Counter::kCachedReplays : obs::Counter::kHandlerRuns);
    psink->count(obs::Counter::kBytesSerialized, ser);
    psink->count(obs::Counter::kBytesHashed, hash_bytes);
  }
  // A cached replay is not a handler execution: it is exactly the work the
  // warm start avoided. Everything downstream treats it identically.
  if (e.cached)
    ++stats_.warm_pairs_skipped;
  else
    ++stats_.transitions;
  // outcome: 0 new state, 1 dedup/new path, 2 self-loop, 3 assert-discard.
  auto apply_ev = [&](std::uint64_t outcome) {
    LMC_TRACE(opt_.trace, record(tev(EventType::kHandlerApply, obs::Phase::kExplore, cur_round_,
                                     e.cached ? 1 : 0, e.ev_hash, outcome, 0.0, e.node)));
  };
  // addNextState (Fig. 9): register generated messages in I+ first — BEFORE
  // the local-assert policy can discard the successor state. The handler
  // really sent these messages before its assertion fired, and I+ is
  // monotonic/never-remove (§3, §4.2): dropping them would hide every
  // behaviour they trigger on other nodes and can mask real bugs whose
  // trigger message precedes an assert.
  std::vector<Hash64> gen;
  gen.reserve(e.result.sent.size());
  for (const Message& m : e.result.sent) {
    Hash64 h = m.hash();
    gen.push_back(h);
    node_gens_[e.node].insert(h);
    if (net_.add(m)) {
      EventRecord er;
      er.is_message = true;
      er.msg = m;
      events_.emplace(h, std::move(er));
      LMC_TRACE(opt_.trace, record(tev(EventType::kIplusAppend, obs::Phase::kExplore, cur_round_,
                                       h, net_.size(), 0, 0.0, m.dst)));
    }
  }

  if (e.result.assert_failed) {
    ++stats_.local_assert_discards;
    // §4.2 "Local assertions": by default treat the assert as marking the
    // node state invalid (usually an unexpected delivery made possible by
    // the conservative I+ policy) and discard it; under IgnoreViolation,
    // keep exploring the successor — a real protocol bug will eventually
    // manifest as a system-invariant violation. The messages stay in I+
    // either way; no predecessor edge generates them, so soundness
    // verification will not schedule deliveries that depend on them.
    if (opt_.assert_policy == LocalMcOptions::AssertPolicy::DiscardState) {
      if (por_rel_ != nullptr && e.is_message)
        record_fwd(e.node, e.pred_idx, e.ev_hash, FwdOutcome::kDiscard, 0);
      apply_ev(3);
      return;
    }
  }

  if (!e.is_message) {
    EventRecord er;
    er.is_message = false;
    er.node = e.node;
    er.ev = e.ev;
    events_.emplace(e.ev_hash, std::move(er));
  }

  NodeStateRec& pred = store_.rec(e.node, e.pred_idx);
  const Hash64 h2 = hash_blob(e.result.state);
  if (h2 == pred.hash) {
    // No-op transition. If it generated messages (a stateless relay), keep
    // it as a self-loop so soundness verification can account for the
    // generation (see NodeStateRec::self_loops).
    if (por_rel_ != nullptr && e.is_message)
      record_fwd(e.node, e.pred_idx, e.ev_hash,
                 gen.empty() ? FwdOutcome::kNoop : FwdOutcome::kLoopSends, 0);
    if (!gen.empty()) {
      pred.self_loops.push_back(Pred{e.pred_idx, e.is_message, e.ev_hash, std::move(gen)});
      ++pred_edges_[e.node];
    }
    apply_ev(2);
    return;
  }

  const std::uint32_t existing = store_.find(e.node, h2);
  if (existing != UINT32_MAX) {
    // Known state reached by a new path: extend its predecessor set. The
    // history is intentionally not merged (paper's simplification).
    if (por_rel_ != nullptr && e.is_message)
      record_fwd(e.node, e.pred_idx, e.ev_hash, FwdOutcome::kSucc, existing);
    store_.rec(e.node, existing)
        .preds.push_back(Pred{e.pred_idx, e.is_message, e.ev_hash, std::move(gen)});
    ++pred_edges_[e.node];
    apply_ev(1);
    return;
  }

  NodeStateRec rec;
  rec.blob = e.result.state;
  rec.hash = h2;
  rec.depth = pred.depth + 1;
  rec.history = pred.history;
  if (e.is_message) history_insert(rec.history, e.ev_hash);
  rec.preds.push_back(Pred{e.pred_idx, e.is_message, e.ev_hash, std::move(gen)});
  ++pred_edges_[e.node];
  const std::uint32_t idx = store_.add(e.node, std::move(rec));
  if (por_rel_ != nullptr && e.is_message)
    record_fwd(e.node, e.pred_idx, e.ev_hash, FwdOutcome::kSucc, idx);
  if (canon_ != nullptr) {
    canon_->add_state(e.node, h2);
    LMC_PROF(opt_.profile, count(obs::Counter::kStatesCanonicalized));
  }
  ++stats_.node_states;
  stats_.max_chain_depth_reached = std::max(stats_.max_chain_depth_reached, pred.depth + 1);
  apply_ev(0);
  LMC_TRACE(opt_.trace, record(tev(EventType::kStateInsert, obs::Phase::kExplore, cur_round_,
                                   idx, h2, pred.depth + 1, 0.0, e.node)));

  if (invariant_ != nullptr && invariant_->has_projection()) {
    Projection p = invariant_->project(cfg_, e.node, store_.rec(e.node, idx).blob);
    if (!p.empty()) mapped_[e.node].push_back(idx);
    proj_[e.node].push_back(std::move(p));
  }

  if (opt_.enable_system_states && invariant_ != nullptr && !stop_) {
    const double t0 = now_s();
    const std::uint64_t pre_ss = stats_.system_states;
    const std::uint64_t pre_pv = stats_.prelim_violations;
    check_combinations(e.node, idx);
    const double dt = now_s() - t0;
    stats_.system_state_s += dt;
    LMC_PROF(opt_.profile, phase_wall(obs::Phase::kSweep, dt));
    LMC_TRACE(opt_.trace, record(tev(EventType::kComboSweep, obs::Phase::kSweep, cur_round_,
                                     /*site=*/0, stats_.system_states - pre_ss,
                                     stats_.prelim_violations - pre_pv, dt, e.node)));
  }
}

bool LocalModelChecker::combo_violates(const std::vector<std::uint32_t>& combo) const {
  if (invariant_->has_projection()) {
    for (NodeId i = 0; i < cfg_.num_nodes; ++i)
      if (invariant_->projection_self_violates(proj_[i][combo[i]])) return true;
    for (NodeId i = 0; i < cfg_.num_nodes; ++i)
      for (NodeId j = i + 1; j < cfg_.num_nodes; ++j)
        if (invariant_->projections_conflict(proj_[i][combo[i]], proj_[j][combo[j]])) return true;
    return false;
  }
  SystemStateView view(cfg_.num_nodes);
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) view[i] = &store_.rec(i, combo[i]).blob;
  return !invariant_->holds(cfg_, view);
}

void LocalModelChecker::check_one_combination(std::vector<std::uint32_t>& combo) {
  // System-state creation and soundness can dwarf exploration (Fig. 13);
  // honor the wall-clock budget from inside the combination loops too.
  if ((++combo_probe_ & 0xff) == 0 && hard_budget_exceeded()) {
    stats_.completed = false;
    stop_ = true;
    return;
  }
  std::uint64_t depth_sum = 0;
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) depth_sum += store_.rec(i, combo[i]).depth;
  if (depth_sum > opt_.max_total_depth) return;
  stats_.max_total_depth_reached =
      std::max<std::uint32_t>(stats_.max_total_depth_reached,
                              static_cast<std::uint32_t>(depth_sum));
  ++stats_.system_states;
  ++stats_.invariant_checks;
  if (!combo_violates(combo)) return;
  std::vector<Deferred> one(1);
  one[0].combo = combo;
  verify_prelims(std::move(one), /*phase2=*/false);
}

void LocalModelChecker::pool_run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (opt_.num_threads > 1 && n > 1) {
    if (!pool_) pool_ = std::make_unique<WorkerPool>(opt_.num_threads);
    const std::uint64_t pre = pool_->dropped_exceptions();
    try {
      pool_->run(n, fn);
    } catch (...) {
      // run() rethrows only the FIRST worker exception; any others the pool
      // counted for this fan-out would otherwise vanish — surface them.
      const std::uint64_t dropped = pool_->dropped_exceptions() - pre;
      if (dropped > 0)
        LMC_TRACE(opt_.trace, record(tev(EventType::kWorkerError, obs::Phase::kRun, cur_round_,
                                         dropped, /*source=*/1, 0)));
      throw;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void LocalModelChecker::clear_feas_cache() {
  for (FeasStripe& s : feas_cache_) s.map.clear();
}

bool LocalModelChecker::member_feasible(NodeId n, std::uint32_t idx) {
  // Signature: the verdict only changes when what the OTHER nodes can
  // generate grows (or a new path to idx appears — approximated by the
  // node's pred-edge growth being reflected in its own gens; conservative
  // refreshes on any growth of the key below keep this sound). During a
  // parallel verification phase the inputs are frozen, so concurrent
  // callers of the same key race only on who computes the identical
  // verdict; the striped locks protect the map, not the answer.
  std::uint64_t sig = total_in_flight();
  for (NodeId m = 0; m < cfg_.num_nodes; ++m)
    sig += (m == n) ? pred_edges_[n] : node_gens_[m].size();
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 32) | idx;
  FeasStripe& stripe = feas_cache_[key % kFeasStripes];
  {
    std::lock_guard<std::mutex> lk(stripe.mu);
    auto it = stripe.map.find(key);
    if (it != stripe.map.end() && (it->second.feasible || it->second.sig == sig))
      return it->second.feasible;
  }

  std::unordered_set<Hash64> other_avail;
  for (NodeId m = 0; m < cfg_.num_nodes; ++m)
    if (m != n) other_avail.insert(node_gens_[m].begin(), node_gens_[m].end());
  SoundnessVerifier verifier = SoundnessVerifier::with_epochs(store_, epoch_seeds(), opt_.soundness);
  const bool feasible = verifier.target_feasible(n, idx, other_avail);
  {
    std::lock_guard<std::mutex> lk(stripe.mu);
    stripe.map[key] = FeasEntry{feasible, sig};
  }
  return feasible;
}

void LocalModelChecker::verify_prelims(std::vector<Deferred> jobs, bool phase2) {
  if (jobs.empty()) return;
  if (!opt_.enable_soundness) {
    // Fig. 13 "system-state" variant: count preliminary violations only.
    if (!phase2) stats_.prelim_violations += jobs.size();
    return;
  }

  // Kind values align with the obs::kVerdict* constants by construction.
  enum class Kind : std::uint8_t { Skipped, FeasSkip, Sound, Unsound, Defer };
  struct Outcome {
    Kind kind = Kind::Skipped;
    SoundnessResult res;
    double secs = 0.0;
    /// Verifier invocations this job consumed (symmetry jobs aggregate one
    /// per expanded assignment; plain jobs are exactly one call).
    std::uint64_t calls = 1;
    std::uint64_t tried = 0;  ///< symmetry jobs: concrete assignments expanded
  };
  std::vector<Outcome> out(jobs.size());
  const std::vector<EpochSeed> seeds = epoch_seeds();
  obs::TraceSink* const tsink = opt_.trace;
  obs::ProfileSink* const psink = opt_.profile;
  const obs::Phase tphase = phase2 ? obs::Phase::kDrain : obs::Phase::kSoundness;
  const double wall_t0 = now_s();

  // Fan out: every job is verified independently against the frozen stores
  // by its own SoundnessVerifier instance; outcomes land in per-job slots.
  pool_run(jobs.size(), [&](std::size_t i) {
    Outcome& o = out[i];
    if (hard_budget_exceeded()) return;  // stays Skipped
    const Deferred& d = jobs[i];
    if (d.sym && canon_ != nullptr) {
      // Orbit representative from the symmetry sweep: the orbit violates
      // the invariant (position-symmetric within classes), but only SOME
      // arrangements of its members may be jointly reachable. Expand every
      // concrete assignment in deterministic order against the frozen
      // stores and confirm the first sound one — this is where witnesses
      // get de-canonicalized back to concrete node ids. The worker owns
      // slot i, so writing the winning assignment into jobs[i] is safe.
      const auto& classes = canon_->classes();
      std::vector<std::vector<std::uint32_t>> counts(classes.size());
      for (std::size_t c = 0; c < classes.size(); ++c) {
        counts[c].assign(canon_->universe(c).entries().size(), 0);
        for (NodeId m : classes[c])
          ++counts[c][canon_->universe(c).find(store_.rec(m, d.combo[m]).hash)];
      }
      std::vector<std::uint32_t> combo = d.combo;
      bool found = false, any_truncated = false, budget_hit = false;
      std::uint64_t tried = 0, feas_skipped = 0, calls = 0, seqs = 0;
      double secs = 0.0;
      auto try_combo = [&]() -> bool {
        if (hard_budget_exceeded()) {
          budget_hit = true;
          return false;
        }
        ++tried;
        for (NodeId k = 0; k < cfg_.num_nodes; ++k)
          if (!member_feasible(k, combo[k])) {
            ++feas_skipped;
            return true;  // next assignment
          }
        const double t0 = now_s();
        SoundnessVerifier verifier = SoundnessVerifier::with_epochs(store_, seeds, opt_.soundness);
        SoundnessResult res = verifier.verify(combo, nullptr);
        secs += now_s() - t0;
        ++calls;
        seqs += res.schedules_checked;
        if (res.truncated) any_truncated = true;
        if (res.sound) {
          found = true;
          o.res = std::move(res);
          jobs[i].combo = combo;
          return false;
        }
        return true;
      };
      auto expand = [&](auto&& self, std::size_t c) -> bool {
        if (c == classes.size()) return try_combo();
        return canon_->for_each_assignment(
            c, counts[c], [&](const std::vector<std::size_t>& pick) {
              for (std::size_t p = 0; p < pick.size(); ++p) {
                const NodeId m = classes[c][p];
                combo[m] = store_.find(m, canon_->universe(c).entries()[pick[p]].hash);
              }
              return self(self, c + 1);
            });
      };
      expand(expand, 0);
      o.secs = secs;
      o.calls = calls;
      o.tried = tried;
      o.res.schedules_checked = seqs;
      if (budget_hit && !found) return;  // stays Skipped
      if (found)
        o.kind = Kind::Sound;
      else if (calls == 0)
        o.kind = Kind::FeasSkip;  // every arrangement failed the pre-check
      else {
        o.kind = Kind::Unsound;
        o.res.truncated = any_truncated;
      }
      if (tsink != nullptr)
        tsink->record_worker(tev(EventType::kSoundnessRun, tphase, cur_round_,
                                 static_cast<std::uint64_t>(o.kind), 0, phase2 ? 1 : 0, o.secs,
                                 TraceEvent::kNoNode, i));
      if (psink != nullptr) {
        psink->count_worker(obs::Counter::kSoundnessJobs);
        psink->time_worker(tphase, o.secs);
      }
      return;
    }
    // Per-member pre-check: a combination whose members cannot
    // individually be reached even with maximal help from the other
    // nodes is unsound — skip the joint search entirely (cached; kills
    // the bulk of the preliminary violations near a bug, cf. §5.4). Runs
    // in both phases: during exploration it spares the quick search, in
    // the final drain it is conclusive against the frozen store.
    for (NodeId k = 0; k < cfg_.num_nodes; ++k) {
      if (d.has_mask && !d.fixed[k]) continue;
      if (!member_feasible(k, d.combo[k])) {
        o.kind = Kind::FeasSkip;
        return;
      }
    }
    SoundnessOptions so = opt_.soundness;
    const bool quick = !phase2 && so.quick_expansions != 0;
    if (quick) so.max_schedules = std::min(so.max_schedules, so.quick_expansions);
    const double t0 = now_s();
    SoundnessVerifier verifier = SoundnessVerifier::with_epochs(store_, seeds, so);
    o.res = verifier.verify(d.combo, d.has_mask ? &d.fixed : nullptr);
    o.secs = now_s() - t0;
    o.kind = o.res.sound ? Kind::Sound
                         : (quick && o.res.truncated ? Kind::Defer : Kind::Unsound);
    if (tsink != nullptr)
      tsink->record_worker(tev(EventType::kSoundnessRun, tphase, cur_round_,
                               static_cast<std::uint64_t>(o.kind), 0, phase2 ? 1 : 0, o.secs,
                               TraceEvent::kNoNode, i));
    if (psink != nullptr) {
      psink->count_worker(obs::Counter::kSoundnessJobs);
      psink->time_worker(tphase, o.secs);
    }
  });
  if (tsink != nullptr) tsink->drain_workers();
  if (psink != nullptr) psink->drain_workers();

  // Deterministic merge in enumeration/queue order: counters, the deferred
  // queue and confirmed violations come out identical for any thread count.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (stop_) {
      if (phase2 && i < jobs.size()) stats_.completed = false;  // partial drain
      break;
    }
    Outcome& o = out[i];
    if (o.kind == Kind::Skipped) {  // wall-clock budget / cancel hit
      stats_.completed = false;
      if (!phase2) stop_ = true;
      break;
    }
    if (phase2)
      ++stats_.deferred_processed;
    else
      ++stats_.prelim_violations;
    if (jobs[i].sym) sym_stats_.assignments_tried += o.tried;
    // During exploration, every non-sound verdict is PROVISIONAL: the store
    // is still growing, and a predecessor edge recorded later (another
    // message reaching an already-deduplicated state) can turn an unsound
    // combination sound. A mid-run rejection is therefore only a deferral;
    // the verdict becomes final in the phase-2 drain, when the traversal
    // has reached its fixpoint (the paper's a-posteriori check, §4.2).
    auto defer = [&](Deferred&& d) {
      if (deferred_.size() < opt_.soundness.max_deferred) {
        deferred_.push_back(std::move(d));
        ++stats_.soundness_deferred;
      } else {
        ++stats_.deferred_dropped;
      }
    };
    // dur carries exactly the seconds added to stats_.soundness_s for this
    // job (0 when none were), so a report's sum reproduces it bit-for-bit.
    auto verdict_ev = [&](double secs) {
      LMC_TRACE(tsink, record(tev(EventType::kSoundnessVerdict, tphase, cur_round_,
                                  static_cast<std::uint64_t>(o.kind), o.res.schedules_checked,
                                  phase2 ? 1 : 0, secs, TraceEvent::kNoNode, i)));
    };
    if (o.kind == Kind::FeasSkip) {
      verdict_ev(0.0);
      if (!phase2) {
        defer(std::move(jobs[i]));
        continue;
      }
      ++stats_.unsound_violations;
      ++stats_.feasibility_skips;
      continue;
    }
    stats_.soundness_calls += o.calls;
    stats_.soundness_s += o.secs;
    stats_.sequences_checked += o.res.schedules_checked;
    verdict_ev(o.secs);
    switch (o.kind) {
      case Kind::Sound:
        record_confirmed(jobs[i].combo, std::move(o.res));
        break;
      case Kind::Defer:
        // Undecided at the quick cap: defer the expensive refutation/search
        // to phase 2 (after exploration), so unsound floods cannot starve
        // the exploration that produces the genuinely sound combinations.
        defer(std::move(jobs[i]));
        break;
      default:  // Unsound
        if (!phase2) {
          defer(std::move(jobs[i]));
          break;
        }
        if (o.res.truncated) ++stats_.seq_enum_truncated;
        ++stats_.unsound_violations;
        break;
    }
  }

  // Wall seconds of the whole phase, as seen by this (merging) thread — the
  // counterpart to the AGGREGATE soundness_s summed across workers above.
  const double wall_dt = now_s() - wall_t0;
  stats_.soundness_wall_s += wall_dt;
  LMC_PROF(psink, phase_wall(tphase, wall_dt));
  LMC_TRACE(tsink, record(tev(EventType::kSoundnessPhase, tphase, cur_round_, jobs.size(),
                              phase2 ? 1 : 0, 0, wall_dt)));
}

void LocalModelChecker::record_confirmed(const std::vector<std::uint32_t>& combo,
                                         SoundnessResult res) {
  ++stats_.confirmed_violations;
  LocalViolation v;
  v.combo = res.final_combo.empty() ? combo : res.final_combo;
  v.invariant = invariant_->name();
  v.confirmed = true;
  v.witness = std::move(res.schedule);
  v.epoch = res.epoch;
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) {
    const NodeStateRec& r = store_.rec(i, v.combo[i]);
    v.state_hashes.push_back(r.hash);
    v.system_state.push_back(r.blob);
  }
  violations_.push_back(std::move(v));
  if (opt_.stop_on_confirmed) stop_ = true;
}

void LocalModelChecker::process_deferred() {
  if (deferred_.empty() || !opt_.enable_soundness) return;
  // Phase 2: a parallel drain — each queued combination gets its own
  // independent SoundnessVerifier with the full caps; outcomes are merged
  // in queue order so the drain is deterministic across thread counts.
  const double t0 = now_s();
  std::vector<Deferred> jobs;
  jobs.swap(deferred_);
  const std::size_t n_jobs = jobs.size();
  verify_prelims(std::move(jobs), /*phase2=*/true);
  const double dt = now_s() - t0;
  stats_.deferred_s += dt;
  LMC_TRACE(opt_.trace, record(tev(EventType::kDeferralDrain, obs::Phase::kDrain, cur_round_,
                                   n_jobs, 0, 0, dt)));
}

void LocalModelChecker::check_snapshot_combination(const std::vector<std::uint32_t>& roots) {
  if (!opt_.enable_system_states || invariant_ == nullptr) return;
  std::vector<std::uint32_t> combo = roots;
  const double t0 = now_s();
  const std::uint64_t pre_ss = stats_.system_states;
  const std::uint64_t pre_pv = stats_.prelim_violations;
  if (canon_ != nullptr) {
    // Route the live combination through the orbit machinery, so its orbit
    // is marked seen and later sweeps do not re-count it.
    const auto& classes = canon_->classes();
    std::vector<std::vector<std::uint32_t>> counts(classes.size());
    for (std::size_t c = 0; c < classes.size(); ++c) {
      counts[c].assign(canon_->universe(c).entries().size(), 0);
      for (NodeId m : classes[c])
        ++counts[c][canon_->universe(c).find(store_.rec(m, roots[m]).hash)];
    }
    SymSweepCtx ctx{opt_.max_system_states_per_step, false};
    sym_consider(combo, counts, ctx);
    const double dt = now_s() - t0;
    stats_.system_state_s += dt;
    LMC_PROF(opt_.profile, phase_wall(obs::Phase::kSweep, dt));
    LMC_TRACE(opt_.trace, record(tev(EventType::kComboSweep, obs::Phase::kSweep, cur_round_,
                                     /*site=*/2, stats_.system_states - pre_ss,
                                     stats_.prelim_violations - pre_pv, dt)));
    return;
  }
  if (opt_.use_projection && invariant_->has_projection()) {
    // LMC-OPT materializes a system state only when projections flag a
    // possible violation (keeps "OPT creates zero system states" exact on
    // correct protocols, Fig. 11) — the live state included.
    if (combo_violates(combo)) check_one_combination(combo);
  } else {
    check_one_combination(combo);
  }
  const double dt = now_s() - t0;
  stats_.system_state_s += dt;
  LMC_PROF(opt_.profile, phase_wall(obs::Phase::kSweep, dt));
  LMC_TRACE(opt_.trace, record(tev(EventType::kComboSweep, obs::Phase::kSweep, cur_round_,
                                   /*site=*/2, stats_.system_states - pre_ss,
                                   stats_.prelim_violations - pre_pv, dt)));
}

void LocalModelChecker::check_combinations(NodeId n, std::uint32_t idx) {
  // Sweep the combinations that include the NEW state (n, idx); combinations
  // of previously seen states were checked in earlier rounds (§4.2). Phase A
  // (the sweep) shards the enumeration space and collects preliminary
  // violations in enumeration order; phase B verifies them in parallel and
  // merges the outcomes in that same order, so the full round is
  // deterministic regardless of thread count.
  if (canon_ != nullptr) {
    // Symmetry reduction: canonical enumeration + always-defer verification
    // (sweep_sym queues violating orbits straight onto deferred_).
    sweep_sym(n, idx);
    return;
  }
  std::vector<Deferred> prelims;
  if (opt_.use_projection && invariant_->has_projection())
    sweep_opt(n, idx, prelims);
  else
    sweep_gen(n, idx, prelims);
  if (stop_) return;  // budget stop inside the sweep: its findings are dropped
  verify_prelims(std::move(prelims), /*phase2=*/false);
}

void LocalModelChecker::sweep_gen(NodeId n, std::uint32_t idx, std::vector<Deferred>& prelims) {
  // LMC-GEN: full incremental Cartesian product over the other nodes. The
  // product [0, n_combos) is mixed-radix decoded (first `other` node =
  // fastest-varying digit, preserving the historical enumeration order), so
  // contiguous index ranges become independent shards.
  std::vector<NodeId> others;
  for (NodeId m = 0; m < cfg_.num_nodes; ++m)
    if (m != n) others.push_back(m);

  std::vector<std::uint64_t> radix(others.size());
  std::uint64_t total = 1;
  for (std::size_t k = 0; k < others.size(); ++k) {
    radix[k] = store_.size(others[k]);
    if (radix[k] == 0) return;  // no states yet for that node: empty product
    if (total > std::numeric_limits<std::uint64_t>::max() / radix[k])
      total = std::numeric_limits<std::uint64_t>::max();  // saturate
    else
      total *= radix[k];
  }
  std::uint64_t n_combos = total;
  if (n_combos > opt_.max_system_states_per_step) {
    n_combos = opt_.max_system_states_per_step;
    ++stats_.combo_truncated;
  }
  if (n_combos == 0) return;

  struct Shard {
    std::vector<Deferred> prelims;
    std::uint64_t system_states = 0;
    std::uint64_t invariant_checks = 0;
    std::uint32_t max_depth = 0;
    bool stopped = false;  // wall-clock budget / cancel hit mid-shard
  };
  const std::uint64_t max_shards = static_cast<std::uint64_t>(pool_width()) * 8;
  const std::size_t n_shards =
      static_cast<std::size_t>(std::min<std::uint64_t>(n_combos, max_shards));
  std::vector<Shard> shards(n_shards);

  pool_run(n_shards, [&](std::size_t s) {
    Shard& sh = shards[s];
    const std::uint64_t base = n_combos / n_shards;
    const std::uint64_t rem = n_combos % n_shards;
    const std::uint64_t lo = s * base + std::min<std::uint64_t>(s, rem);
    const std::uint64_t hi = lo + base + (s < rem ? 1 : 0);
    std::vector<std::uint32_t> combo(cfg_.num_nodes, 0);
    combo[n] = idx;
    std::vector<std::uint64_t> pos(others.size(), 0);
    std::uint64_t r = lo;
    for (std::size_t k = 0; k < others.size(); ++k) {
      pos[k] = r % radix[k];
      r /= radix[k];
    }
    std::uint64_t probe = 0;
    for (std::uint64_t g = lo; g < hi; ++g) {
      // System-state creation can dwarf exploration (Fig. 13): honor the
      // wall-clock budget from inside the shards too.
      if ((++probe & 0xff) == 0 && hard_budget_exceeded()) {
        sh.stopped = true;
        return;
      }
      for (std::size_t k = 0; k < others.size(); ++k)
        combo[others[k]] = static_cast<std::uint32_t>(pos[k]);
      std::uint64_t depth_sum = 0;
      for (NodeId i = 0; i < cfg_.num_nodes; ++i) depth_sum += store_.rec(i, combo[i]).depth;
      if (depth_sum <= opt_.max_total_depth) {
        sh.max_depth = std::max<std::uint32_t>(sh.max_depth, static_cast<std::uint32_t>(depth_sum));
        ++sh.system_states;
        ++sh.invariant_checks;
        if (combo_violates(combo)) {
          Deferred d;
          d.combo = combo;
          sh.prelims.push_back(std::move(d));
        }
      }
      for (std::size_t k = 0; k < others.size(); ++k) {
        if (++pos[k] < radix[k]) break;
        pos[k] = 0;
      }
    }
  });

  // Reduce shard accumulators in shard (= enumeration) order.
  for (Shard& sh : shards) {
    stats_.system_states += sh.system_states;
    stats_.invariant_checks += sh.invariant_checks;
    stats_.max_total_depth_reached = std::max(stats_.max_total_depth_reached, sh.max_depth);
    if (sh.stopped) {
      stats_.completed = false;
      stop_ = true;
    }
    for (Deferred& d : sh.prelims) prelims.push_back(std::move(d));
  }
}

void LocalModelChecker::sweep_opt(NodeId n, std::uint32_t idx, std::vector<Deferred>& prelims) {
  // LMC-OPT: invariant-specific creation. Unmapped states (empty
  // projection — e.g. Paxos states with no chosen value) never participate
  // (§4.2). A violation witnessed by projections is decided by one
  // self-violating state or one conflicting pair, so only those states are
  // pinned; the bystander nodes stay FREE in soundness verification, which
  // parks them on a co-reachable completion (see SoundnessVerifier::verify).
  const Projection& p = proj_[n][idx];
  if (p.empty()) return;

  auto emit = [&](NodeId m, std::uint32_t j, bool pair) {
    Deferred d;
    d.combo.assign(cfg_.num_nodes, 0);
    d.combo[n] = idx;
    d.fixed.assign(cfg_.num_nodes, false);
    d.fixed[n] = true;
    d.has_mask = true;
    std::uint64_t depth_sum = store_.rec(n, idx).depth;
    if (pair) {
      d.combo[m] = j;
      d.fixed[m] = true;
      depth_sum += store_.rec(m, j).depth;
    }
    if (depth_sum > opt_.max_total_depth) return;
    stats_.max_total_depth_reached = std::max<std::uint32_t>(
        stats_.max_total_depth_reached, static_cast<std::uint32_t>(depth_sum));
    ++stats_.system_states;
    ++stats_.invariant_checks;
    prelims.push_back(std::move(d));
  };

  if (invariant_->projection_self_violates(p)) {
    emit(/*m=*/0, /*j=*/0, /*pair=*/false);
    return;
  }

  // Projection-pair scan: flatten the mapped candidate states of the other
  // nodes and evaluate the conflict predicates in parallel shards; flagged
  // pairs are emitted (and counted) serially in scan order.
  struct Cand {
    NodeId m;
    std::uint32_t j;
  };
  std::vector<Cand> cands;
  for (NodeId m = 0; m < cfg_.num_nodes; ++m) {
    if (m == n) continue;
    for (std::uint32_t j : mapped_[m]) cands.push_back(Cand{m, j});
  }
  if (cands.empty()) return;

  std::vector<std::uint8_t> hit(cands.size(), 0);
  const std::size_t n_shards =
      std::min<std::size_t>(cands.size(), static_cast<std::size_t>(pool_width()) * 8);
  std::atomic<bool> stopped{false};
  pool_run(n_shards, [&](std::size_t s) {
    const std::size_t base = cands.size() / n_shards;
    const std::size_t rem = cands.size() % n_shards;
    const std::size_t lo = s * base + std::min(s, rem);
    const std::size_t hi = lo + base + (s < rem ? 1 : 0);
    std::uint64_t probe = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if ((++probe & 0xff) == 0 && hard_budget_exceeded()) {
        stopped.store(true, std::memory_order_relaxed);
        return;
      }
      const Projection& q = proj_[cands[i].m][cands[i].j];
      hit[i] = invariant_->projections_conflict(p, q) ||
               invariant_->projection_self_violates(q);
    }
  });
  if (stopped.load(std::memory_order_relaxed)) {
    stats_.completed = false;
    stop_ = true;
    return;
  }
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (hit[i]) emit(cands[i].m, cands[i].j, /*pair=*/true);
}

bool LocalModelChecker::sym_consider(std::vector<std::uint32_t>& combo,
                                     const std::vector<std::vector<std::uint32_t>>& counts,
                                     SymSweepCtx& ctx) {
  // Same budget-probe discipline as the unreduced sweeps.
  if ((++combo_probe_ & 0xff) == 0 && hard_budget_exceeded()) {
    stats_.completed = false;
    stop_ = true;
    return false;
  }
  const auto& classes = canon_->classes();
  std::vector<std::pair<NodeId, Hash64>> fixed;
  fixed.reserve(canon_->free_nodes().size());
  for (NodeId m : canon_->free_nodes()) fixed.emplace_back(m, store_.rec(m, combo[m]).hash);
  const Hash64 key = canon_->orbit_key(fixed, counts);
  if (canon_->seen_or_mark(key)) {
    ++sym_stats_.orbit_hits;
    LMC_PROF(opt_.profile, count(obs::Counter::kOrbitCollapses));
    return true;
  }
  if (ctx.cap == 0) {
    if (!ctx.cap_noted) {
      ++stats_.combo_truncated;
      ctx.cap_noted = true;
    }
    return false;
  }
  --ctx.cap;
  ++stats_.system_states;  // counts ORBITS while the reduction is active
  ++stats_.invariant_checks;
  ++sym_stats_.orbits;
  sym_stats_.represented = symmetry::sat_add(sym_stats_.represented, canon_->orbit_size(counts));

  // Deterministic representative: lexicographically first perfect
  // assignment per class. The invariant is position-symmetric within each
  // class (activation requirement), so the representative's verdict is the
  // whole orbit's verdict.
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const std::vector<std::size_t> pick = canon_->first_assignment(c, counts[c]);
    for (std::size_t p = 0; p < pick.size(); ++p) {
      const NodeId m = classes[c][p];
      combo[m] = store_.find(m, canon_->universe(c).entries()[pick[p]].hash);
    }
  }
  std::uint64_t depth_sum = 0;
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) depth_sum += store_.rec(i, combo[i]).depth;
  stats_.max_total_depth_reached = std::max<std::uint32_t>(
      stats_.max_total_depth_reached, static_cast<std::uint32_t>(depth_sum));
  if (!combo_violates(combo)) return true;

  // Always-defer: a mid-run quick verdict on one arrangement would be both
  // provisional (the store is still growing) and arrangement-sensitive; the
  // phase-2 drain expands the whole orbit against the frozen store instead.
  ++stats_.prelim_violations;
  if (opt_.enable_soundness) {
    if (deferred_.size() < opt_.soundness.max_deferred) {
      Deferred d;
      d.combo = combo;
      d.sym = true;
      deferred_.push_back(std::move(d));
      ++stats_.soundness_deferred;
      ++sym_stats_.orbit_defers;
    } else {
      ++stats_.deferred_dropped;
    }
  }
  return true;
}

void LocalModelChecker::sweep_sym(NodeId n, std::uint32_t idx) {
  // Canonical counterpart of sweep_gen: cross every realizable multiset of
  // each class universe with the full store product over non-class nodes,
  // forcing the new state (n, idx) into its own dimension. Runs inline on
  // the applier: the orbit seen-set already de-duplicates across arrivals,
  // and a single writer keeps it deterministic at any thread count.
  const auto& classes = canon_->classes();
  const auto& free_nodes = canon_->free_nodes();
  const std::int32_t nc = canon_->class_of(n);
  std::ptrdiff_t forced = -1;
  if (nc >= 0) {
    const std::size_t e =
        canon_->universe(static_cast<std::size_t>(nc)).find(store_.rec(n, idx).hash);
    forced = static_cast<std::ptrdiff_t>(e);
  }

  std::vector<std::vector<std::uint32_t>> counts(classes.size());
  std::vector<std::uint32_t> combo(cfg_.num_nodes, 0);
  SymSweepCtx ctx{opt_.max_system_states_per_step, false};

  auto rec_classes = [&](auto&& self, std::size_t c) -> bool {
    if (c == classes.size()) return sym_consider(combo, counts, ctx);
    const std::ptrdiff_t f = (static_cast<std::int32_t>(c) == nc) ? forced : -1;
    return canon_->for_each_multiset(c, f, [&](const std::vector<std::uint32_t>& cnt) {
      counts[c] = cnt;
      return self(self, c + 1);
    });
  };
  auto rec_free = [&](auto&& self, std::size_t k) -> bool {
    if (k == free_nodes.size()) return rec_classes(rec_classes, 0);
    const NodeId m = free_nodes[k];
    if (m == n) {
      combo[m] = idx;
      return self(self, k + 1);
    }
    const std::uint32_t lim = store_.size(m);
    for (std::uint32_t j = 0; j < lim; ++j) {
      combo[m] = j;
      if (!self(self, k + 1)) return false;
    }
    return true;
  };
  rec_free(rec_free, 0);
}

void LocalModelChecker::metrics_sample(const char* where, std::uint64_t frontier, bool force) {
  obs::MetricsSink* const ms = opt_.metrics;
  if (ms == nullptr) return;
  obs::MetricsSnapshot snap;
  snap.where = where;
  snap.round = cur_round_;
  snap.transitions = stats_.transitions;
  snap.states_total = stats_.node_states;
  snap.iplus_total = net_.size();
  snap.frontier = frontier;
  snap.deferred_depth = deferred_.size();
  // The ExecCache hit rate over handler work: cached replays vs executions.
  snap.exec_hits = stats_.warm_pairs_skipped;
  snap.exec_misses = stats_.transitions;
  snap.combos = stats_.system_states;
  snap.prelim = stats_.prelim_violations;
  snap.confirmed = stats_.confirmed_violations;
  snap.sym_orbits = sym_stats_.orbits;
  snap.sym_orbit_hits = sym_stats_.orbit_hits;
  snap.sym_represented = sym_stats_.represented;
  snap.por_pruned = por_stats_.pairs_pruned;
  snap.por_deferred = por_stats_.deferrals;
  const double elapsed = base_elapsed_s_ + (now_s() - run_t0_);
  snap.sweep_s = stats_.system_state_s;
  snap.soundness_wall_s = stats_.soundness_wall_s;
  snap.deferred_s = stats_.deferred_s;
  // Exploration wall time is what is left of elapsed once the (serialized)
  // sweep and drain windows are taken out; soundness phase 1 runs inside
  // the sweep window, so it is not subtracted again.
  snap.explore_s = std::max(0.0, elapsed - stats_.system_state_s - stats_.deferred_s);
  if (force)
    ms->force(snap);
  else
    ms->tick(snap);
}

void LocalModelChecker::refresh_memory_stats() {
  stats_.stored_bytes = std::max(stats_.stored_bytes, store_.bytes() + net_.bytes());
}

void LocalModelChecker::finalize_stats() {
  stats_.dup_msgs_suppressed = net_.suppressed();
  stats_.messages_in_iplus = net_.size();
  refresh_memory_stats();
  stats_.elapsed_s = base_elapsed_s_ + (now_s() - run_t0_);
}

// Cooperative safepoint: called after every consumed task group, not just
// between generations, so `checkpoint_every_s` is honored even while a
// generation of slow handlers is in flight. Unconsumed published tasks
// (whose cursors already advanced at publish time) are materialized as
// `pending` for the image — exactly what a budget stop serializes — and a
// resume re-executes them in publication order.
void LocalModelChecker::maybe_auto_checkpoint() {
  if (opt_.checkpoint_every_s <= 0.0 || opt_.checkpoint_path.empty() || stop_) return;
  const double now = now_s();
  if (now - last_checkpoint_s_ < opt_.checkpoint_every_s) return;
  last_checkpoint_s_ = now;
  const bool backlog = pipe_ != nullptr && pipe_->have_pending();
  if (backlog) pending_tasks_ = pipe_->backlog_tasks();
  ++stats_.checkpoints_written;  // before encoding: the file must carry it
  finalize_stats();
  bool ok = true;
  try {
    save_checkpoint(opt_.checkpoint_path);
  } catch (const std::exception&) {
    // A failed write must not poison the run (or the stat it pre-counted):
    // roll the counter back, record the failure, keep exploring. The next
    // interval retries with a fresh image.
    --stats_.checkpoints_written;
    ++stats_.checkpoint_failures;
    ok = false;
  }
  if (backlog) pending_tasks_.clear();  // the live pipeline still owns them
  LMC_TRACE(opt_.trace, record(tev(EventType::kCheckpointSave, obs::Phase::kCheckpoint,
                                   cur_round_, ok ? 1 : 0, stats_.checkpoints_written, 0,
                                   now_s() - now)));
}

// The phase-1 driver: a work-stealing stream replacing the old
// execute-all-then-apply-all round barrier. Each generation's tasks are
// published in deterministic cursor-scan order; workers (and the applier,
// when it reaches an unclaimed slot) execute handlers concurrently while
// the applier consumes results strictly in publication order — so every
// checker-state mutation, stop decision and trace event happens on the
// applier in an order independent of thread count. Budget stops happen at
// task-group boundaries ONLY: the unconsumed backlog (whose cursors already
// advanced at publish time) is captured in pending_tasks_, so a checkpoint
// taken after the stop resumes by re-executing exactly those tasks, in
// order — the resumed exploration is indistinguishable from an
// uninterrupted one. A confirmed-violation stop (stop_on_confirmed) drops
// the remainder of its own group, matching the historical semantics.
void LocalModelChecker::explore_stream() {
  last_checkpoint_s_ = now_s();
  stats_.completed = true;

  auto run_end_ev = [&] {
    LMC_TRACE(opt_.trace, record(tev(EventType::kRunEnd, obs::Phase::kRun, cur_round_,
                                     stats_.transitions, stats_.confirmed_violations,
                                     stats_.completed ? 1 : 0, stats_.elapsed_s)));
    if (obs::ProfileSink* const psink = opt_.profile; psink != nullptr) {
      psink->note_threads(opt_.num_threads);
      psink->run_wall(stats_.elapsed_s);
    }
    metrics_sample("end", 0, /*force=*/true);
  };

  // A run that starts already over budget (e.g. resumed from a checkpoint
  // whose recorded elapsed time exceeds the budget) does no work at all:
  // pending tasks stay pending for the next resume.
  if (budget_exceeded()) {
    stats_.completed = false;
    finalize_stats();
    run_end_ev();
    return;
  }

  Pipeline pipe(opt_.num_threads > 1 ? opt_.num_threads - 1 : 0,
                [this](const Task& t) { return execute_task(t); });
  pipe_ = &pipe;
  struct PipeGuard {  // exceptions unwind through here; the dtor joins
    LocalModelChecker* mc;
    ~PipeGuard() { mc->pipe_ = nullptr; }
  } guard{this};

  // Consume everything currently published, in publication order.
  auto stream_round = [&](std::uint64_t published) {
    ++cur_round_;
    LMC_TRACE(opt_.trace, record(tev(EventType::kRoundBegin, obs::Phase::kRun, cur_round_,
                                     published, 0, 0)));
    const double t0 = now_s();
    std::uint64_t seq = 0;
    while (pipe.have_pending()) {
      Pipeline::Slot& slot = pipe.front();
      if (slot.error) {
        // A worker exception aborts the run at its publication position.
        // Later READY slots may hold further exceptions that will never be
        // rethrown — count and trace them instead of losing them silently.
        pipe.stop_and_join();
        const std::uint64_t others = pipe.count_dropped_errors() - 1;
        if (others > 0) {
          pipeline_dropped_ += others;
          LMC_TRACE(opt_.trace, record(tev(EventType::kWorkerError, obs::Phase::kRun,
                                           cur_round_, others, /*source=*/0, 0)));
        }
        std::rethrow_exception(slot.error);
      }
      for (Exec& e : slot.execs) {
        if (stop_) break;
        apply_exec(e, seq);
      }
      pipe.pop();
      ++seq;
      if (!stop_ && budget_exceeded()) {
        stats_.completed = false;
        stop_ = true;
      }
      if (stop_) {
        pending_tasks_ = pipe.backlog_tasks();
        break;
      }
      maybe_auto_checkpoint();  // cooperative safepoint (slow-handler fix)
    }
    refresh_memory_stats();
    LMC_TRACE(opt_.trace, record(tev(EventType::kRoundEnd, obs::Phase::kRun, cur_round_,
                                     published, stats_.node_states, net_.size(),
                                     now_s() - t0)));
    metrics_sample("round", published, /*force=*/false);
  };

  // Resume path: finish the generation that was interrupted (its cursors
  // had already advanced past these tasks when the checkpoint was taken).
  if (!pending_tasks_.empty() && !stop_) {
    std::vector<Task> pend = std::move(pending_tasks_);
    pending_tasks_.clear();
    for (const Task& t : pend) pipe.publish(t);
    stream_round(pend.size());
  }

  while (!stop_) {
    if (budget_exceeded()) {
      stats_.completed = false;
      break;
    }
    const std::uint64_t published = publish_round(pipe);
    // Fixpoint: exploration exhausted — but deferred POR pairs still count
    // as pending work (the next generation decides them without deferring).
    if (published == 0 && por_deferred_.empty()) break;
    stream_round(published);
    maybe_auto_checkpoint();
  }
  pipe.stop_and_join();
  // Phase 2: re-verify the combinations the quick pass could not decide.
  if (!stop_) process_deferred();
  if (stop_ && !violations_.empty()) stats_.completed = false;
  finalize_stats();
  run_end_ev();
}

void LocalModelChecker::run(const std::vector<Blob>& nodes,
                            const std::vector<Message>& in_flight) {
  run_t0_ = now_s();
  deadline_ = run_t0_ + opt_.time_budget_s;
  segment_id_ = 0;  // a fresh run starts trace segment 0
  LMC_TRACE(opt_.trace, record(tev(EventType::kRunBegin, obs::Phase::kRun, 0, /*mode=*/0, 0,
                                   opt_.num_threads, 0.0, TraceEvent::kNoNode, segment_id_)));
  init_run(nodes, in_flight);
  metrics_sample("begin", 0, /*force=*/true);
  check_snapshot_combination(epochs_.front().roots);
  explore_stream();
}

void LocalModelChecker::run_from_initial() { run(initial_states(cfg_), {}); }

void LocalModelChecker::run_warm(const std::vector<Blob>& nodes,
                                 const std::vector<Message>& in_flight) {
  if (!initialized_) {
    run(nodes, in_flight);
    return;
  }
  run_t0_ = now_s();
  deadline_ = run_t0_ + opt_.time_budget_s;  // time budget is per call
  base_elapsed_s_ = stats_.elapsed_s;        // wall clock accumulates
  stop_ = false;
  LMC_TRACE(opt_.trace, record(tev(EventType::kRunBegin, obs::Phase::kRun, cur_round_,
                                   /*mode=*/1, stats_.transitions, opt_.num_threads, 0.0,
                                   TraceEvent::kNoNode, segment_id_)));
  merge_snapshot(nodes, in_flight);
  check_snapshot_combination(epochs_.back().roots);
  explore_stream();
}

void LocalModelChecker::run_resumed(const std::string& path) {
  load_checkpoint(path);
  run_t0_ = now_s();
  // Whatever wall clock the interrupted run already consumed counts against
  // the budget (inf - x == inf keeps unbounded runs unbounded).
  deadline_ = run_t0_ + (opt_.time_budget_s - base_elapsed_s_);
  // This process's trace is a NEW segment of the checkpointed run: bump the
  // segment id (the checkpoint stores the id of the segment that wrote it)
  // and continue round numbering from the checkpoint's round.
  ++segment_id_;
  LMC_TRACE(opt_.trace, record(tev(EventType::kRunBegin, obs::Phase::kRun, cur_round_,
                                   /*mode=*/2, stats_.transitions, opt_.num_threads, 0.0,
                                   TraceEvent::kNoNode, segment_id_)));
  explore_stream();
}

// --- persistence -----------------------------------------------------------

CheckerImage LocalModelChecker::make_image() const {
  CheckerImage img;
  img.num_nodes = cfg_.num_nodes;
  img.store = store_;
  img.net_entries = net_.snapshot_entries();
  img.net_suppressed = net_.suppressed();
  img.segment_id = segment_id_;
  img.base_round = cur_round_;
  img.events = events_;
  img.epochs = epochs_;
  img.node_gens.resize(cfg_.num_nodes);
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    img.node_gens[n].assign(node_gens_[n].begin(), node_gens_[n].end());
    std::sort(img.node_gens[n].begin(), img.node_gens[n].end());
  }
  img.pred_edges = pred_edges_;
  img.internal_scan = internal_scan_;
  img.stats = stats_;
  img.deferred.reserve(deferred_.size());
  for (const Deferred& d : deferred_) {
    DeferredCombo dc;
    dc.combo = d.combo;
    dc.fixed.assign(d.fixed.begin(), d.fixed.end());
    dc.has_mask = d.has_mask;
    dc.sym = d.sym;
    img.deferred.push_back(std::move(dc));
  }
  if (canon_ != nullptr) {
    img.has_symmetry = true;
    img.sym_stats = sym_stats_;
    img.sym_seen = canon_->seen_sorted();
  }
  if (por_rel_ != nullptr) {
    img.has_por = true;
    img.por_digest = por_rel_->digest();
    img.por_stats = por_stats_;
    // Only kNoop/kDiscard/kPruned outcomes are serialized: kSucc/kLoopSends
    // are rebuilt from preds/self_loops on load. Sorted for canonical bytes.
    img.por_entries.resize(cfg_.num_nodes);
    for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
      for (const auto& [k, r] : por_fwd_[n]) {
        std::uint8_t code = 0;
        switch (r.outcome) {
          case FwdOutcome::kNoop: code = 0; break;
          case FwdOutcome::kDiscard: code = 1; break;
          case FwdOutcome::kPruned: code = 2; break;
          default: continue;
        }
        img.por_entries[n].push_back(PorFwdEntry{k.pred_idx, k.ev_hash, code});
      }
      std::sort(img.por_entries[n].begin(), img.por_entries[n].end(),
                [](const PorFwdEntry& a, const PorFwdEntry& b) {
                  return std::tie(a.pred_idx, a.ev_hash) < std::tie(b.pred_idx, b.ev_hash);
                });
    }
    img.por_deferred.reserve(por_deferred_.size());
    for (const Task& t : por_deferred_)
      img.por_deferred.push_back(PendingTask{true, t.net_idx, t.node, t.state_idx});
  }
  img.violations = violations_;
  img.pending.reserve(pending_tasks_.size());
  for (const Task& t : pending_tasks_)
    img.pending.push_back(PendingTask{t.is_message, t.net_idx, t.node, t.state_idx});
  return img;
}

Blob LocalModelChecker::checkpoint_bytes() const { return encode_checkpoint(make_image()); }

void LocalModelChecker::save_checkpoint(const std::string& path) const {
  write_checkpoint_file(path, checkpoint_bytes());
}

void LocalModelChecker::load_checkpoint_bytes(const Blob& data) {
  CheckerImage img = decode_checkpoint(data);
  if (img.num_nodes != cfg_.num_nodes)
    throw CheckpointError("checkpoint: node count mismatch (file " +
                          std::to_string(img.num_nodes) + ", config " +
                          std::to_string(cfg_.num_nodes) + ")");

  store_ = std::move(img.store);
  net_ = MonotonicNetwork::restore(std::move(img.net_entries), img.net_suppressed);
  events_ = std::move(img.events);
  epochs_ = std::move(img.epochs);
  internal_scan_ = std::move(img.internal_scan);
  node_gens_.assign(cfg_.num_nodes, {});
  for (NodeId n = 0; n < cfg_.num_nodes; ++n)
    node_gens_[n].insert(img.node_gens[n].begin(), img.node_gens[n].end());
  pred_edges_ = std::move(img.pred_edges);
  stats_ = img.stats;
  deferred_.clear();
  deferred_.reserve(img.deferred.size());
  for (const DeferredCombo& dc : img.deferred) {
    Deferred d;
    d.combo = dc.combo;
    d.fixed.assign(dc.fixed.begin(), dc.fixed.end());
    d.has_mask = dc.has_mask;
    d.sym = dc.sym;
    deferred_.push_back(std::move(d));
  }
  violations_ = std::move(img.violations);
  pending_tasks_.clear();
  pending_tasks_.reserve(img.pending.size());
  for (const PendingTask& t : img.pending)
    pending_tasks_.push_back(
        Task{t.is_message, static_cast<std::size_t>(t.net_idx), t.node, t.state_idx});

  // Projections are derived state — recompute from the invariant (the
  // checkpoint stays invariant-agnostic).
  proj_.assign(cfg_.num_nodes, {});
  mapped_.assign(cfg_.num_nodes, {});
  if (invariant_ != nullptr && invariant_->has_projection()) {
    for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
      const std::uint32_t count = store_.size(n);
      for (std::uint32_t i = 0; i < count; ++i) {
        Projection p = invariant_->project(cfg_, n, store_.rec(n, i).blob);
        if (!p.empty()) mapped_[n].push_back(i);
        proj_[n].push_back(std::move(p));
      }
    }
  }
  // Re-resolve the reduction against the restored store, then restore the
  // orbit seen-set so already-counted orbits are not re-processed. Options
  // must agree with the writing run: a symmetry-mode mismatch would splice
  // two incompatible enumeration disciplines into one exploration.
  resolve_symmetry();
  if ((canon_ != nullptr) != img.has_symmetry)
    throw CheckpointError("checkpoint symmetry mode mismatch (file " +
                          std::string(img.has_symmetry ? "on" : "off") + ", options resolve to " +
                          std::string(canon_ != nullptr ? "on" : "off") + ")");
  if (canon_ != nullptr) {
    canon_->restore_seen(img.sym_seen);
    sym_stats_ = img.sym_stats;
  }
  // Re-resolve the reduction, then rebuild the forward map: kSucc from pred
  // edges, kLoopSends from self-loops, and the persisted kNoop/kDiscard/
  // kPruned entries (section 14) on top — the result is byte-for-byte the
  // map the writing run held, so resumed prune decisions replay identically. Mode
  // and relation digest must agree with the writer for the same reason a
  // symmetry mismatch throws: splicing differently-pruned explorations is
  // not the run the checkpoint describes.
  resolve_por();
  if ((por_rel_ != nullptr) != img.has_por)
    throw CheckpointError("checkpoint por mode mismatch (file " +
                          std::string(img.has_por ? "on" : "off") + ", options resolve to " +
                          std::string(por_rel_ != nullptr ? "on" : "off") + ")");
  por_fwd_.assign(cfg_.num_nodes, {});
  por_deferred_.clear();
  por_audit_ctr_ = 0;
  if (por_rel_ != nullptr) {
    if (img.por_digest != por_rel_->digest())
      throw CheckpointError("checkpoint por relation digest mismatch: the file was written "
                            "with different handler footprints");
    for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
      const std::uint32_t count = store_.size(n);
      for (std::uint32_t i = 0; i < count; ++i) {
        const NodeStateRec& r = store_.rec(n, i);
        for (const Pred& p : r.preds)
          if (p.is_message) record_fwd(n, p.pred_idx, p.ev_hash, FwdOutcome::kSucc, i);
        for (const Pred& p : r.self_loops)
          if (p.is_message) record_fwd(n, p.pred_idx, p.ev_hash, FwdOutcome::kLoopSends, 0);
      }
      if (n < img.por_entries.size())
        for (const PorFwdEntry& pe : img.por_entries[n])
          record_fwd(n, pe.pred_idx, pe.ev_hash,
                     pe.outcome == 2   ? FwdOutcome::kPruned
                     : pe.outcome == 1 ? FwdOutcome::kDiscard
                                       : FwdOutcome::kNoop,
                     0);
    }
    por_deferred_.reserve(img.por_deferred.size());
    for (const PendingTask& t : img.por_deferred)
      por_deferred_.push_back(
          Task{true, static_cast<std::size_t>(t.net_idx), t.node, t.state_idx});
    por_stats_ = img.por_stats;
  }
  clear_feas_cache();
  combo_probe_ = 0;
  // Trace continuity across resumes: rounds continue from the checkpoint's
  // counter, and the segment id is restored as-is (run_resumed bumps it for
  // the NEW segment; a bare load must round-trip byte-identically).
  cur_round_ = img.base_round;
  segment_id_ = img.segment_id;
  stop_ = false;
  initialized_ = true;
  base_elapsed_s_ = stats_.elapsed_s;
}

void LocalModelChecker::load_checkpoint(const std::string& path) {
  load_checkpoint_bytes(read_checkpoint_file(path));
}

}  // namespace lmc
