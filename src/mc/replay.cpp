#include "mc/replay.hpp"

#include <sstream>

namespace lmc {

ReplayResult replay_schedule(const SystemConfig& cfg, const std::vector<Blob>& start_nodes,
                             const std::vector<Message>& in_flight, const Schedule& schedule,
                             const EventTable& events,
                             const std::vector<Hash64>& expected_hashes) {
  ReplayResult out;
  std::vector<Blob> nodes = start_nodes;
  Network net{in_flight};

  std::size_t step_no = 0;
  for (const ScheduleStep& step : schedule) {
    ++step_no;
    auto it = events.find(step.ev_hash);
    if (it == events.end()) {
      out.error = "step " + std::to_string(step_no) + ": unknown event hash";
      return out;
    }
    const EventRecord& er = it->second;
    if (er.is_message != step.is_message) {
      out.error = "step " + std::to_string(step_no) + ": event kind mismatch";
      return out;
    }

    ExecResult r;
    if (er.is_message) {
      // The message must actually be in flight — this is where an unsound
      // schedule would be caught red-handed.
      const auto& msgs = net.messages();
      std::size_t pos = msgs.size();
      for (std::size_t i = 0; i < msgs.size(); ++i)
        if (msgs[i].hash() == step.ev_hash) {
          pos = i;
          break;
        }
      if (pos == msgs.size()) {
        out.error = "step " + std::to_string(step_no) + ": message not in flight: " +
                    to_string(er.msg);
        return out;
      }
      Message m = net.take(pos);
      if (m.dst != step.node) {
        out.error = "step " + std::to_string(step_no) + ": destination mismatch";
        return out;
      }
      r = exec_message(cfg, m.dst, nodes[m.dst], m);
      out.log.push_back("deliver " + to_string(m));
    } else {
      if (er.node != step.node) {
        out.error = "step " + std::to_string(step_no) + ": node mismatch";
        return out;
      }
      r = exec_internal(cfg, er.node, nodes[er.node], er.ev);
      out.log.push_back("node " + std::to_string(er.node) + " " + to_string(er.ev));
    }
    if (r.assert_failed) {
      out.error = "step " + std::to_string(step_no) + ": local assert: " + r.assert_msg;
      return out;
    }
    nodes[step.node] = std::move(r.state);
    net.add_all(std::move(r.sent));
  }

  if (!expected_hashes.empty()) {
    for (NodeId n = 0; n < nodes.size(); ++n) {
      if (hash_blob(nodes[n]) != expected_hashes[n]) {
        out.error = "final state of node " + std::to_string(n) + " differs from the violation";
        out.final_nodes = std::move(nodes);
        return out;
      }
    }
  }
  out.ok = true;
  out.final_nodes = std::move(nodes);
  return out;
}

}  // namespace lmc
