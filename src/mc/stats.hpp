// Instrumentation counters for both checkers — these numbers regenerate
// Figures 10-13 and the transition-count comparison of §5.1.
#pragma once

#include <cstdint>

namespace lmc {

struct GlobalMcStats {
  std::uint64_t transitions = 0;        ///< handler executions
  std::uint64_t unique_states = 0;      ///< deduplicated global states visited
  std::uint64_t revisits = 0;           ///< hits in the visited set
  std::uint64_t invariant_checks = 0;
  std::uint64_t violations = 0;
  std::uint64_t dup_msgs_suppressed = 0;
  std::uint64_t local_assert_failures = 0;
  std::size_t peak_bytes = 0;           ///< visited set + deepest stack (Fig. 12)
  double elapsed_s = 0.0;
  bool completed = false;               ///< search exhausted within the bounds
  std::uint32_t max_depth_reached = 0;
};

struct LocalMcStats {
  std::uint64_t transitions = 0;          ///< handler executions (cf. §5.1: 1,186 vs 157,332)
  std::uint64_t node_states = 0;          ///< "LMC-local" in Fig. 11
  std::uint64_t system_states = 0;        ///< combinations materialized (Fig. 11)
  std::uint64_t invariant_checks = 0;
  std::uint64_t prelim_violations = 0;    ///< invariant failed on a combination
  std::uint64_t confirmed_violations = 0; ///< survived soundness verification
  std::uint64_t unsound_violations = 0;   ///< rejected by soundness verification
  std::uint64_t soundness_calls = 0;      ///< isStateSound invocations (§5.4: 773)
  std::uint64_t feasibility_skips = 0;    ///< combos rejected by the cached member pre-check
  std::uint64_t soundness_deferred = 0;   ///< quick-pass truncations queued for phase 2
  std::uint64_t deferred_processed = 0;   ///< phase-2 verifications completed
  std::uint64_t deferred_dropped = 0;     ///< deferrals lost to queue overflow (possible misses)
  std::uint64_t sequences_checked = 0;    ///< isSequenceValid invocations (§5.4: 427,731)
  std::uint64_t seq_enum_truncated = 0;   ///< sequence enumeration hit a cap
  std::uint64_t combo_truncated = 0;      ///< combination enumeration hit a cap
  std::uint64_t dup_msgs_suppressed = 0;
  std::uint64_t history_skips = 0;        ///< deliveries skipped via state history
  std::uint64_t local_assert_discards = 0;///< node states discarded on local assert
  std::uint64_t messages_in_iplus = 0;
  std::uint64_t warm_merges = 0;          ///< online warm-start epochs merged
  std::uint64_t warm_new_roots = 0;       ///< snapshot states added as fresh roots
  std::uint64_t warm_root_hits = 0;       ///< snapshot states already present in LS_n
  std::uint64_t warm_msgs_reused = 0;     ///< snapshot in-flight msgs already in I+
  std::uint64_t warm_pairs_skipped = 0;   ///< handler executions replayed from the ExecCache
  std::uint64_t checkpoints_written = 0;  ///< auto-checkpoints saved during the run
  std::uint64_t checkpoint_failures = 0;  ///< auto-checkpoint writes that failed (run continued)
  std::size_t stored_bytes = 0;           ///< LS + I+ footprint (Fig. 12)
  double elapsed_s = 0.0;
  double soundness_s = 0.0;               ///< time inside soundness verification; with
                                          ///< num_threads > 1 this sums per-call durations
                                          ///< across workers (AGGREGATE, not wall, seconds —
                                          ///< it can exceed elapsed_s; see soundness_wall_s)
  double soundness_wall_s = 0.0;          ///< wall time of the soundness phases as observed
                                          ///< by the merging thread (always <= elapsed_s)
  double system_state_s = 0.0;            ///< wall time creating/checking system states
  double deferred_s = 0.0;                ///< wall time in the phase-2 deferred drain
  bool completed = false;
  std::uint32_t max_chain_depth_reached = 0;
  std::uint32_t max_total_depth_reached = 0;
};

}  // namespace lmc
