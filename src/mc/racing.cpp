#include "mc/racing.hpp"

#include <atomic>
#include <thread>

#include "mc/clock.hpp"
#include "net/network.hpp"

namespace lmc {

RacingResult race_checkers(const SystemConfig& cfg, const Invariant* invariant,
                           const std::vector<Blob>& nodes,
                           const std::vector<Message>& in_flight, RacingOptions opt) {
  const double t0 = now_s();
  std::atomic<bool> cancel_global{false};
  std::atomic<bool> cancel_local{false};
  // 0 = undecided; 1 = global won; 2 = local won.
  std::atomic<int> decided{0};

  opt.global.cancel = &cancel_global;
  opt.global.stop_on_violation = true;
  opt.local.cancel = &cancel_local;
  opt.local.stop_on_confirmed = true;

  GlobalModelChecker global(cfg, invariant, opt.global);
  LocalModelChecker local(cfg, invariant, opt.local);

  auto claim = [&](int who) {
    int expected = 0;
    if (decided.compare_exchange_strong(expected, who)) {
      if (who == 1)
        cancel_local.store(true, std::memory_order_relaxed);
      else
        cancel_global.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  bool global_won = false, local_won = false;
  std::thread tg([&] {
    global.run(nodes, Network{in_flight});
    // Decisive iff it found a violation or exhausted its bounded space.
    if (global.stats().violations > 0 || global.stats().completed) global_won = claim(1);
  });
  std::thread tl([&] {
    local.run(nodes, in_flight);
    if (local.stats().confirmed_violations > 0 || local.stats().completed) local_won = claim(2);
  });
  tg.join();
  tl.join();

  RacingResult res;
  res.global_stats = global.stats();
  res.local_stats = local.stats();
  res.elapsed_s = now_s() - t0;
  if (global_won) {
    res.winner = RacingResult::Winner::Global;
    if (!global.violations().empty()) {
      res.found = true;
      res.global_violation = global.violations().front();
    }
  } else if (local_won) {
    res.winner = RacingResult::Winner::Local;
    if (const LocalViolation* v = local.first_confirmed()) {
      res.found = true;
      res.local_violation = *v;
    }
  }
  return res;
}

}  // namespace lmc
