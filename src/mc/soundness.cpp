#include "mc/soundness.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace lmc {

SoundnessVerifier::SoundnessVerifier(const LocalStore& store,
                                     std::vector<Hash64> initial_in_flight, SoundnessOptions opt)
    : store_(store), initial_in_flight_(std::move(initial_in_flight)), opt_(opt) {
  // Offline runs have exactly one epoch: every node starts at LS_n[0] (the
  // snapshot state is always the first state added) with the snapshot's
  // in-flight messages available.
  EpochSeed e;
  e.roots.assign(store.num_nodes(), 0);
  e.in_flight = initial_in_flight_;
  epochs_.push_back(std::move(e));
}

SoundnessVerifier SoundnessVerifier::with_epochs(const LocalStore& store,
                                                 std::vector<EpochSeed> epochs,
                                                 SoundnessOptions opt) {
  SoundnessVerifier v(store, std::vector<Hash64>{}, opt);
  v.epochs_ = std::move(epochs);
  v.initial_in_flight_.clear();
  for (const EpochSeed& e : v.epochs_)
    v.initial_in_flight_.insert(v.initial_in_flight_.end(), e.in_flight.begin(),
                                e.in_flight.end());
  return v;
}

std::vector<SoundnessVerifier::NodeSeq> SoundnessVerifier::enumerate_sequences(
    NodeId n, std::uint32_t idx, bool* truncated) const {
  std::vector<NodeSeq> out;
  // Backward DFS over predecessor pointers. `path` holds the events from
  // the target back towards the root; a completed path (a state with no
  // predecessors, i.e. the live/initial state) is reversed into a sequence.
  std::vector<SeqEv> path;
  std::vector<std::uint32_t> on_path;  // state indices, for cycle pruning

  struct Frame {
    std::uint32_t idx;
    std::size_t next_pred;
  };
  std::vector<Frame> stack;
  stack.push_back({idx, 0});
  on_path.push_back(idx);

  while (!stack.empty()) {
    if (out.size() >= opt_.max_sequences_per_node) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    Frame& f = stack.back();
    const NodeStateRec& rec = store_.rec(n, f.idx);

    if (rec.preds.empty()) {
      // Root reached: emit the path, oldest event first.
      NodeSeq seq;
      seq.root = f.idx;
      seq.evs.assign(path.rbegin(), path.rend());
      out.push_back(std::move(seq));
      stack.pop_back();
      on_path.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }

    if (f.next_pred >= rec.preds.size()) {
      stack.pop_back();
      on_path.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }

    const Pred& p = rec.preds[f.next_pred++];
    // Prune edges that revisit a state already on this path (covers the
    // paper's self-references and longer cycles); also cap path length.
    bool cyclic = false;
    for (std::uint32_t s : on_path)
      if (s == p.pred_idx) {
        cyclic = true;
        break;
      }
    if (cyclic || path.size() >= opt_.max_seq_len) {
      if (path.size() >= opt_.max_seq_len && truncated != nullptr) *truncated = true;
      continue;
    }

    // The edge leads *to* the current frame's state.
    path.push_back(SeqEv{p.is_message, p.ev_hash, &p.gen, f.idx});
    stack.push_back({p.pred_idx, 0});
    on_path.push_back(p.pred_idx);
  }

  return out;
}

bool SoundnessVerifier::is_sequence_valid(const std::vector<const NodeSeq*>& seqs,
                                          Schedule* schedule) const {
  // Multiset of available message hashes; seeded with the snapshot's
  // in-flight messages (they exist without any event generating them).
  std::unordered_map<Hash64, std::uint32_t> net;
  for (Hash64 h : initial_in_flight_) ++net[h];

  const std::size_t n_nodes = seqs.size();
  std::vector<std::size_t> ptr(n_nodes, 0);
  const std::size_t scheduled_at_entry = schedule != nullptr ? schedule->size() : 0;
  // Self-loops already fired, keyed by (node, state, ordinal).
  std::unordered_set<std::uint64_t> fired;

  auto state_at = [&](std::size_t n) -> std::uint32_t {
    const NodeSeq& s = *seqs[n];
    return ptr[n] == 0 ? s.root : s.evs[ptr[n] - 1].state_after;
  };

  bool done = false;
  while (!done) {
    // Phase 1: greedily advance the per-node sequences (Fig. 9's
    // isSequenceValid). Feasibility is confluent, so any enabled-first
    // order works.
    bool advanced = true;
    while (advanced) {
      advanced = false;
      for (std::size_t n = 0; n < n_nodes; ++n) {
        while (ptr[n] < seqs[n]->size()) {
          const SeqEv& ev = seqs[n]->evs[ptr[n]];
          if (ev.is_message) {
            auto it = net.find(ev.ev_hash);
            if (it == net.end() || it->second == 0) break;  // not yet generated
            --it->second;
          }
          for (Hash64 g : *ev.gen) ++net[g];
          if (schedule != nullptr)
            schedule->push_back({static_cast<NodeId>(n), ev.is_message, ev.ev_hash});
          ++ptr[n];
          advanced = true;
        }
      }
    }

    done = true;
    for (std::size_t n = 0; n < n_nodes; ++n)
      if (ptr[n] != seqs[n]->size()) done = false;
    if (done) break;

    // Phase 2 (extension over the paper; see NodeStateRec::self_loops):
    // stuck — try firing one recorded no-op transition of some node's
    // current state to generate the missing messages.
    bool fired_one = false;
    for (std::size_t n = 0; n < n_nodes && !fired_one; ++n) {
      const std::uint32_t st = state_at(n);
      const NodeStateRec& rec = store_.rec(static_cast<NodeId>(n), st);
      for (std::size_t k = 0; k < rec.self_loops.size(); ++k) {
        const Pred& sl = rec.self_loops[k];
        const std::uint64_t key =
            (static_cast<std::uint64_t>(n) << 40) ^ (static_cast<std::uint64_t>(st) << 8) ^ k;
        if (fired.count(key)) continue;
        if (sl.is_message) {
          auto it = net.find(sl.ev_hash);
          if (it == net.end() || it->second == 0) continue;
          --it->second;
        }
        for (Hash64 g : sl.gen) ++net[g];
        if (schedule != nullptr)
          schedule->push_back({static_cast<NodeId>(n), sl.is_message, sl.ev_hash});
        fired.insert(key);
        fired_one = true;
        break;
      }
    }
    if (!fired_one) break;  // truly stuck
  }

  for (std::size_t n = 0; n < n_nodes; ++n)
    if (ptr[n] != seqs[n]->size()) {
      if (schedule != nullptr) schedule->resize(scheduled_at_entry);
      return false;
    }
  return true;
}

namespace {

/// One forward transition inside a node's relevant sub-DAG.
struct FwdEdge {
  std::uint32_t to = 0;
  bool is_message = false;
  Hash64 ev_hash = 0;
  const std::vector<Hash64>* gen = nullptr;
  bool self_loop = false;
};

struct SubGraph {
  // Forward adjacency restricted to states on some path to the target
  // (fixed nodes) or the whole traversed graph (free nodes). After pruning,
  // `states` of a fixed node holds exactly the states that still reach the
  // target — an epoch is a candidate iff every fixed root is in it.
  std::unordered_map<std::uint32_t, std::vector<FwdEdge>> out;
  std::unordered_set<std::uint32_t> states;
  std::uint32_t target = 0;
  bool fixed = true;  ///< must end exactly on `target`
};

/// Backward closure of `target` over predecessor pointers, then the forward
/// edges among those states (plus recorded self-loops).
SubGraph build_subgraph(const LocalStore& store, NodeId n, std::uint32_t target) {
  SubGraph g;
  g.target = target;
  std::vector<std::uint32_t> work{target};
  g.states.insert(target);
  while (!work.empty()) {
    std::uint32_t s = work.back();
    work.pop_back();
    for (const Pred& p : store.rec(n, s).preds)
      if (g.states.insert(p.pred_idx).second) work.push_back(p.pred_idx);
  }
  for (std::uint32_t s : g.states) {
    const NodeStateRec& rec = store.rec(n, s);
    for (const Pred& p : rec.preds)
      if (g.states.count(p.pred_idx))
        g.out[p.pred_idx].push_back(FwdEdge{s, p.is_message, p.ev_hash, &p.gen, false});
    for (const Pred& sl : rec.self_loops)
      g.out[s].push_back(FwdEdge{s, sl.is_message, sl.ev_hash, &sl.gen, true});
  }
  return g;
}

/// The entire traversed graph of node n — used for free (unconstrained)
/// nodes, which may end anywhere.
SubGraph build_full_graph(const LocalStore& store, NodeId n) {
  SubGraph g;
  g.fixed = false;
  for (std::uint32_t s = 0; s < store.size(n); ++s) {
    g.states.insert(s);
    const NodeStateRec& rec = store.rec(n, s);
    for (const Pred& p : rec.preds)
      g.out[p.pred_idx].push_back(FwdEdge{s, p.is_message, p.ev_hash, &p.gen, false});
    for (const Pred& sl : rec.self_loops)
      g.out[s].push_back(FwdEdge{s, sl.is_message, sl.ev_hash, &sl.gen, true});
  }
  return g;
}

/// Drop message edges whose hash nothing can generate, then drop states
/// that can no longer reach the target; iterate to a fixpoint.
void prune_subgraphs(std::vector<SubGraph>& graphs, const std::vector<Hash64>& initial) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<Hash64> available(initial.begin(), initial.end());
    for (const SubGraph& g : graphs)
      for (const auto& [src, edges] : g.out)
        for (const FwdEdge& e : edges)
          for (Hash64 h : *e.gen) available.insert(h);

    for (SubGraph& g : graphs) {
      // Remove unavailable message edges.
      for (auto& [src, edges] : g.out) {
        auto it = std::remove_if(edges.begin(), edges.end(), [&](const FwdEdge& e) {
          return e.is_message && !available.count(e.ev_hash);
        });
        if (it != edges.end()) {
          edges.erase(it, edges.end());
          changed = true;
        }
      }
      if (!g.fixed) continue;  // free nodes may end anywhere: no target pruning
      // Keep only states that can still reach the target (backward BFS over
      // the surviving forward edges).
      std::unordered_set<std::uint32_t> reaches{g.target};
      bool grew = true;
      while (grew) {
        grew = false;
        for (const auto& [src, edges] : g.out) {
          if (reaches.count(src)) continue;
          for (const FwdEdge& e : edges)
            if (!e.self_loop && reaches.count(e.to)) {
              reaches.insert(src);
              grew = true;
              break;
            }
        }
      }
      for (auto it = g.out.begin(); it != g.out.end();) {
        if (!reaches.count(it->first)) {
          it = g.out.erase(it);
          changed = true;
          continue;
        }
        auto& edges = it->second;
        auto drop = std::remove_if(edges.begin(), edges.end(), [&](const FwdEdge& e) {
          return !e.self_loop && !reaches.count(e.to);
        });
        if (drop != edges.end()) {
          edges.erase(drop, edges.end());
          changed = true;
        }
        ++it;
      }
      g.states = std::move(reaches);
    }
  }
}

/// Joint DFS over (positions, net multiset). Returns true and fills
/// `schedule` when every node parks on its target.
class JointSearch {
 public:
  JointSearch(const std::vector<SubGraph>& graphs, const std::vector<Hash64>& initial,
              std::uint64_t max_expansions)
      : graphs_(graphs), max_expansions_(max_expansions) {
    for (Hash64 h : initial) ++net_[h];
  }

  bool run(std::vector<std::uint32_t> start, Schedule* schedule) {
    pos_ = std::move(start);
    return dfs(schedule);
  }

  std::uint64_t expansions() const { return expansions_; }
  bool truncated() const { return truncated_; }

 private:
  Hash64 joint_hash() const {
    Hash64 h = 0x51ed270b9a3bULL;
    for (std::uint32_t p : pos_) h = hash_combine(h, p);
    Hash64 nh = 0;
    for (const auto& [k, c] : net_)
      if (c != 0) nh = hash_combine_unordered(nh, hash_combine(k, c));
    return hash_combine(h, nh);
  }

  bool at_goal() const {
    for (std::size_t n = 0; n < graphs_.size(); ++n)
      if (graphs_[n].fixed && pos_[n] != graphs_[n].target) return false;
    return true;
  }

 public:
  const std::vector<std::uint32_t>& positions() const { return pos_; }

 private:

  bool dfs(Schedule* schedule) {
    if (at_goal()) return true;
    if (expansions_ >= max_expansions_) {
      truncated_ = true;
      return false;
    }
    if (!visited_.insert(joint_hash()).second) return false;
    ++expansions_;

    for (std::size_t n = 0; n < graphs_.size(); ++n) {
      auto it = graphs_[n].out.find(pos_[n]);
      if (it == graphs_[n].out.end()) continue;
      for (const FwdEdge& e : it->second) {
        if (e.is_message) {
          auto nit = net_.find(e.ev_hash);
          if (nit == net_.end() || nit->second == 0) continue;
        }
        if (e.self_loop) {
          // Fire only when it contributes a message we do not have yet;
          // bounds re-firing without tracking per-path state.
          bool contributes = false;
          for (Hash64 g : *e.gen)
            if (net_[g] == 0) contributes = true;
          if (!contributes) continue;
        }
        // Apply.
        const std::uint32_t old_pos = pos_[n];
        if (e.is_message) --net_[e.ev_hash];
        for (Hash64 g : *e.gen) ++net_[g];
        pos_[n] = e.to;
        if (schedule != nullptr)
          schedule->push_back({static_cast<NodeId>(n), e.is_message, e.ev_hash});

        if (dfs(schedule)) return true;

        // Undo.
        if (schedule != nullptr) schedule->pop_back();
        pos_[n] = old_pos;
        for (Hash64 g : *e.gen) --net_[g];
        if (e.is_message) ++net_[e.ev_hash];
      }
    }
    return false;
  }

  const std::vector<SubGraph>& graphs_;
  std::uint64_t max_expansions_;
  std::vector<std::uint32_t> pos_;
  std::unordered_map<Hash64, std::uint32_t> net_;
  std::unordered_set<Hash64> visited_;
  std::uint64_t expansions_ = 0;
  bool truncated_ = false;
};

}  // namespace

bool SoundnessVerifier::target_feasible(NodeId n, std::uint32_t target,
                                        const std::unordered_set<Hash64>& other_avail) const {
  for (const EpochSeed& e : epochs_)
    if (e.roots[n] == target) return true;  // target IS a snapshot state
  SubGraph g = build_subgraph(store_, n, target);
  // Prune under maximal help: everything other nodes could ever generate is
  // assumed available, plus what this subgraph's own surviving edges make.
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_set<Hash64> avail = other_avail;
    for (Hash64 h : initial_in_flight_) avail.insert(h);
    for (const auto& [src, edges] : g.out)
      for (const FwdEdge& e : edges)
        for (Hash64 h : *e.gen) avail.insert(h);

    for (auto& [src, edges] : g.out) {
      auto it = std::remove_if(edges.begin(), edges.end(), [&](const FwdEdge& e) {
        return e.is_message && !avail.count(e.ev_hash);
      });
      if (it != edges.end()) {
        edges.erase(it, edges.end());
        changed = true;
      }
    }
  }
  // Target still reachable from some epoch's root over surviving edges?
  std::unordered_set<std::uint32_t> reached;
  std::vector<std::uint32_t> work;
  for (const EpochSeed& e : epochs_)
    if (reached.insert(e.roots[n]).second) work.push_back(e.roots[n]);
  while (!work.empty()) {
    std::uint32_t s = work.back();
    work.pop_back();
    if (s == target) return true;
    auto it = g.out.find(s);
    if (it == g.out.end()) continue;
    for (const FwdEdge& e : it->second)
      if (!e.self_loop && reached.insert(e.to).second) work.push_back(e.to);
  }
  return reached.count(target) != 0;
}

SoundnessResult SoundnessVerifier::verify(const std::vector<std::uint32_t>& combo,
                                          const std::vector<bool>* fixed) const {
  // Reentrant: all search state (sub-graphs, frontiers, the schedule under
  // construction) lives in locals; the members read here are set once at
  // construction. Concurrent verify() calls — the parallel verification
  // phase — therefore need no locking.
  SoundnessResult res;
  const std::uint32_t n_nodes = store_.num_nodes();

  std::vector<SubGraph> graphs;
  graphs.reserve(n_nodes);
  for (NodeId n = 0; n < n_nodes; ++n) {
    if (fixed == nullptr || (*fixed)[n])
      graphs.push_back(build_subgraph(store_, n, combo[n]));
    else
      graphs.push_back(build_full_graph(store_, n));
  }

  // Prune once against the union of every epoch's in-flight set — a
  // conservative superset, so no feasible edge is ever dropped; the joint
  // search below enforces the per-epoch availability exactly.
  prune_subgraphs(graphs, initial_in_flight_);
  for (NodeId n = 0; n < n_nodes; ++n) res.sequences_enumerated += graphs[n].states.size();

  // Try each epoch newest first: later snapshots are closer to the violating
  // states, so their searches are shorter; the expansion budget is shared.
  for (std::size_t e = epochs_.size(); e-- > 0;) {
    const EpochSeed& seed = epochs_[e];
    bool candidate = true;
    for (NodeId n = 0; n < n_nodes && candidate; ++n) {
      const std::uint32_t root = seed.roots[n];
      // A fixed node's pruned state set holds exactly the states that still
      // reach the target; a root outside it provably cannot.
      if (graphs[n].fixed && graphs[n].states.count(root) == 0) candidate = false;
    }
    if (!candidate) continue;

    if (res.schedules_checked >= opt_.max_schedules) {
      res.truncated = true;
      break;
    }
    JointSearch search(graphs, seed.in_flight, opt_.max_schedules - res.schedules_checked);
    Schedule sched;
    std::vector<std::uint32_t> start(seed.roots.begin(), seed.roots.end());
    const bool found = search.run(std::move(start), &sched);
    res.schedules_checked += search.expansions();
    res.truncated = res.truncated || search.truncated();
    if (found) {
      res.sound = true;
      res.schedule = std::move(sched);
      res.final_combo = search.positions();
      res.epoch = e;
      return res;
    }
  }
  return res;
}

}  // namespace lmc
