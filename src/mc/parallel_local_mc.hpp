// Deterministic parallel execution helpers for the local checker.
//
// §1 (contributions): "Having the exploration, system state creation, and
// soundness verification decoupled, the model checking process can be
// embarrassingly parallelized." Three phases of an LMC round are fanned out
// over threads:
//  * handler execution — tasks read immutable node states and write results
//    to per-index slots;
//  * the combination sweep (LMC-GEN Cartesian product / LMC-OPT projection
//    pair scan) — shards of the enumeration space emit preliminary
//    violations tagged with their enumeration index;
//  * soundness verification — feasibility pre-checks and (quick or full)
//    joint searches of independent combinations.
// Every phase merges its results sequentially in task order on the calling
// thread, so an LMC run is bit-identical regardless of thread count.
//
// `WorkerPool` keeps its threads alive across calls: a round performs many
// small fan-outs (one sweep per new node state), and spawn-per-call thread
// creation would dominate them. A worker exception does not cross the
// std::thread boundary (which would std::terminate the process): the first
// one is captured, remaining tasks are abandoned, and run() rethrows it on
// the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lmc {

/// A persistent pool of `threads - 1` workers; the calling thread is the
/// remaining lane, so `run` uses exactly `threads` lanes and a pool of width
/// 1 never context-switches. The pool is runtime-only state: it is never
/// serialized (checkpoints exclude it — see persist/FORMAT.md) and a checker
/// recreates it lazily after a restore.
class WorkerPool {
 public:
  /// threads <= 1 creates no worker threads (run() degenerates to a loop).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Parallel lanes run() distributes over (worker threads + the caller).
  unsigned width() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(0..n-1) across the pool and the calling thread; returns when all
  /// indices finished. fn must be thread-safe for distinct indices; results
  /// must be written to per-index slots. If any invocation throws, the first
  /// exception is rethrown here (after all workers went idle) and the
  /// remaining indices are skipped; the pool stays usable. Not reentrant:
  /// do not call run() from inside fn.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Exceptions thrown by workers AFTER the first one of a run() was already
  /// captured. run() rethrows only the first; the rest used to vanish
  /// silently — now they are counted here (cumulative across runs) so the
  /// checker can surface the loss in reports (kWorkerError trace events).
  std::uint64_t dropped_exceptions() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  void worker_loop();
  void drain(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_;  ///< workers wait for a new job
  std::condition_variable done_cv_;  ///< run() waits for workers to finish
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mu_
  std::size_t job_n_ = 0;                                  // guarded by mu_
  std::uint64_t generation_ = 0;                           // guarded by mu_
  std::size_t active_ = 0;                                 // guarded by mu_
  bool shutdown_ = false;                                  // guarded by mu_
  std::exception_ptr first_error_;                         // guarded by mu_
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::atomic<std::uint64_t> dropped_{0};  ///< secondary exceptions (see accessor)
};

/// One-shot convenience: run fn(0..n-1) over `threads` lanes. threads <= 1
/// degenerates to a plain loop. Exceptions propagate like WorkerPool::run
/// (first one rethrown after join — they no longer abort the process).
/// Spawns threads per call; hot paths should hold a WorkerPool instead.
void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn);

}  // namespace lmc
