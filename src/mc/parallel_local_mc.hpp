// Deterministic parallel execution helper for the local checker.
//
// §1 (contributions): "Having the exploration, system state creation, and
// soundness verification decoupled, the model checking process can be
// embarrassingly parallelized." Handler executions within a round are
// independent — they read immutable node states and produce results that
// are merged sequentially in task order, so an LMC run is bit-identical
// regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace lmc {

/// Run fn(0..n-1), distributing indices over `threads` workers.
/// threads <= 1 degenerates to a plain loop. fn must be thread-safe for
/// distinct indices; results must be written to per-index slots.
void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn);

}  // namespace lmc
