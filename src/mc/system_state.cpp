#include "mc/system_state.hpp"

#include <iomanip>
#include <sstream>

namespace lmc {

Hash64 system_state_hash(const std::vector<Hash64>& node_hashes) {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (Hash64 nh : node_hashes) h = hash_combine(h, nh);
  return h;
}

Hash64 system_state_hash_of(const std::vector<Blob>& nodes) {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (const Blob& b : nodes) h = hash_combine(h, hash_blob(b));
  return h;
}

SystemStateView make_view(const std::vector<Blob>& nodes) {
  SystemStateView v;
  v.reserve(nodes.size());
  for (const Blob& b : nodes) v.push_back(&b);
  return v;
}

std::string format_system_state(const std::vector<Hash64>& node_hashes) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < node_hashes.size(); ++i) {
    if (i) os << ", ";
    os << "n" << i << "=0x" << std::hex << std::setw(8) << std::setfill('0')
       << (node_hashes[i] & 0xffffffffu) << std::dec;
  }
  os << "]";
  return os.str();
}

}  // namespace lmc
