// User-specified invariants over *system states* (the paper's key premise:
// invariants mention only node local states, never the network, §1 obs. 1).
//
// Beyond the boolean predicate, an invariant may expose a cheap per-node
// *projection*. LMC-OPT (§4.2 "System states") uses projections to build
// only those system states that could possibly violate the invariant:
//  * Paxos maps each node state to the values it has chosen; only
//    combinations where two projections disagree on an index are built.
//  * RandTree's children/siblings-disjoint invariant is per-node: only
//    combinations containing a self-violating node state are built.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/state_machine.hpp"
#include "runtime/types.hpp"

namespace lmc {

/// A transient system state: one serialized local state per node
/// (non-owning; valid only during the invariant call).
using SystemStateView = std::vector<const Blob*>;

/// Per-node projection: sorted (key, value) pairs. The default conflict
/// rule is "same key, different value" (Paxos: key = consensus index,
/// value = chosen value).
using Projection = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

class Invariant {
 public:
  virtual ~Invariant() = default;

  virtual std::string name() const = 0;

  /// Full check on a combination of node states. True = invariant holds.
  virtual bool holds(const SystemConfig& cfg, const SystemStateView& sys) const = 0;

  /// Whether project()/conflict predicates are meaningful for this
  /// invariant (enables the LMC-OPT builder).
  virtual bool has_projection() const { return false; }

  /// Cheap summary of one node state; empty = cannot participate in any
  /// violation (such states are skipped entirely by LMC-OPT).
  virtual Projection project(const SystemConfig& /*cfg*/, NodeId /*n*/,
                             const Blob& /*state*/) const {
    return {};
  }

  /// A single projection already implies a violation (per-node invariants,
  /// e.g. RandTree disjointness).
  virtual bool projection_self_violates(const Projection& /*p*/) const { return false; }

  /// Whether the predicate is invariant under permuting node *positions*
  /// within each of `classes` (i.e. holds() reads the view through the
  /// node index only symmetrically for those positions). Symmetry
  /// reduction (src/mc/symmetry/) refuses to activate a class unless the
  /// invariant vouches for it, so the default is conservative.
  virtual bool symmetric_under(const std::vector<std::vector<NodeId>>& /*classes*/) const {
    return false;
  }

  /// Two projections together imply a possible violation. Default: some key
  /// present in both with different values.
  virtual bool projections_conflict(const Projection& a, const Projection& b) const {
    // Both sorted by key: linear merge.
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].first < b[j].first) {
        ++i;
      } else if (b[j].first < a[i].first) {
        ++j;
      } else {
        if (a[i].second != b[j].second) return true;
        ++i;
        ++j;
      }
    }
    return false;
  }
};

}  // namespace lmc
