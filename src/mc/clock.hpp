// Monotonic wall-clock helper shared by the checkers' budget logic.
#pragma once

#include <chrono>

namespace lmc {

inline double now_s() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

}  // namespace lmc
