// Lossy best-effort transport policy for live (simulated) deployments.
//
// The paper's testbed runs nodes over UDP and randomly drops 30% of
// non-loopback messages "to allow rare states to be also created" (§5.5).
// We reproduce that as a seeded policy object: given a message, either
// return a delivery delay or decide the message is lost. The discrete-event
// LiveRunner owns the clock and queues; this class owns only randomness.
#pragma once

#include <cstdint>
#include <optional>
#include <random>

#include "runtime/message.hpp"

namespace lmc {

class SimTransport {
 public:
  struct Options {
    double drop_prob = 0.3;      ///< loss probability for non-loopback messages
    double latency_min = 0.010;  ///< seconds
    double latency_max = 0.050;  ///< seconds
    std::uint64_t seed = 1;
  };

  explicit SimTransport(Options opt);

  /// Delay until delivery, or nullopt if the message is dropped.
  /// Loopback (src == dst) messages are never dropped, as in the paper.
  std::optional<double> delivery_delay(const Message& m);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  Options opt_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lmc
