#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace lmc {

Network::Network(std::vector<Message> msgs) {
  for (Message& m : msgs) add(std::move(m));
}

bool Network::add(Message m) {
  Hash64 h = m.hash();
  if (contains_hash(h)) return false;
  msgs_.push_back(std::move(m));
  hashes_.push_back(h);
  return true;
}

std::size_t Network::add_all(std::vector<Message> msgs) {
  std::size_t suppressed = 0;
  for (Message& m : msgs)
    if (!add(std::move(m))) ++suppressed;
  return suppressed;
}

Message Network::take(std::size_t i) {
  if (i >= msgs_.size()) throw std::out_of_range("Network::take");
  Message m = std::move(msgs_[i]);
  msgs_.erase(msgs_.begin() + static_cast<std::ptrdiff_t>(i));
  hashes_.erase(hashes_.begin() + static_cast<std::ptrdiff_t>(i));
  return m;
}

Hash64 Network::hash() const {
  Hash64 h = 0;
  for (Hash64 mh : hashes_) h = hash_combine_unordered(h, mh);
  return mix64(h);
}

std::size_t Network::bytes() const {
  std::size_t b = msgs_.size() * (sizeof(Message) + sizeof(Hash64));
  for (const Message& m : msgs_) b += m.payload.capacity();
  return b;
}

bool Network::contains_hash(Hash64 h) const {
  return std::find(hashes_.begin(), hashes_.end(), h) != hashes_.end();
}

}  // namespace lmc
