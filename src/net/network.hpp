// The classic network state `I`: the set of in-flight messages that is part
// of every global state in global model checking (§3.1). Delivery removes
// the message; sending inserts it. Duplicate sends (identical content) are
// suppressed, mirroring the paper's duplicate-message limit of zero (§4.2).
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/hash.hpp"
#include "runtime/message.hpp"

namespace lmc {

class Network {
 public:
  Network() = default;
  explicit Network(std::vector<Message> msgs);

  /// Insert a message; returns false if an identical message (same content
  /// hash) is already in flight and was therefore suppressed.
  bool add(Message m);

  /// Insert a batch (a handler's `c` set); returns #suppressed.
  std::size_t add_all(std::vector<Message> msgs);

  /// Remove and return the i-th in-flight message (a delivery event).
  Message take(std::size_t i);

  const std::vector<Message>& messages() const { return msgs_; }
  std::size_t size() const { return msgs_.size(); }
  bool empty() const { return msgs_.empty(); }

  /// Order-independent content hash of the in-flight set; feeds the global
  /// state identity hash.
  Hash64 hash() const;

  /// Approximate heap footprint, for the Fig. 12 memory accounting.
  std::size_t bytes() const;

  bool contains_hash(Hash64 h) const;

 private:
  std::vector<Message> msgs_;
  std::vector<Hash64> hashes_;  // parallel to msgs_
};

}  // namespace lmc
