#include "net/monotonic_network.hpp"

namespace lmc {

bool MonotonicNetwork::add(Message m) {
  Hash64 h = m.hash();
  if (index_.count(h)) {
    ++suppressed_;
    return false;
  }
  index_.emplace(h, entries_.size());
  entries_.push_back(Entry{std::move(m), h, 0});
  return true;
}

MonotonicNetwork::MergeStats MonotonicNetwork::merge(const std::vector<Message>& msgs) {
  MergeStats st;
  for (const Message& m : msgs) {
    if (add(m))
      ++st.appended;
    else
      ++st.suppressed;
  }
  return st;
}

std::size_t MonotonicNetwork::add_all(const std::vector<Message>& msgs) {
  return merge(msgs).suppressed;
}

MonotonicNetwork MonotonicNetwork::restore(std::vector<Entry> entries, std::uint64_t suppressed) {
  MonotonicNetwork net;
  for (Entry& e : entries) {
    net.index_.emplace(e.hash, net.entries_.size());
    net.entries_.push_back(std::move(e));
  }
  net.suppressed_ = suppressed;
  return net;
}

const Message* MonotonicNetwork::find(Hash64 h) const {
  auto it = index_.find(h);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second].msg;
}

std::vector<Hash64> MonotonicNetwork::all_hashes() const {
  std::vector<Hash64> v;
  v.reserve(entries_.size());
  for (std::uint64_t i = 0; i < entries_.size(); ++i) v.push_back(entries_[i].hash);
  return v;
}

std::size_t MonotonicNetwork::bytes() const {
  std::size_t b = entries_.size() * (sizeof(Entry) + sizeof(Hash64) + 2 * sizeof(std::size_t));
  for (std::uint64_t i = 0; i < entries_.size(); ++i) b += entries_[i].msg.payload.capacity();
  return b;
}

}  // namespace lmc
