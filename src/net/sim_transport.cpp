#include "net/sim_transport.hpp"

namespace lmc {

SimTransport::SimTransport(Options opt) : opt_(opt), rng_(opt.seed) {}

std::optional<double> SimTransport::delivery_delay(const Message& m) {
  ++sent_;
  if (m.src != m.dst && unit_(rng_) < opt_.drop_prob) {
    ++dropped_;
    return std::nullopt;
  }
  double span = opt_.latency_max - opt_.latency_min;
  return opt_.latency_min + span * unit_(rng_);
}

}  // namespace lmc
