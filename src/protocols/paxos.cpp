#include "protocols/paxos.hpp"

namespace lmc::paxos {

void PaxosNode::handle_message(const Message& m, Context& ctx) {
  if (!initialized_) return;  // best-effort network: pre-init delivery is lost
  if (!core_.handle_message(m, ctx)) ctx.local_assert(false, "paxos: unknown message type");
}

Index PaxosNode::pick_index() const {
  // §4.2 test driver: prefer a recent index not yet (locally) chosen —
  // "where not all the nodes have learned the proposal yet" — otherwise a
  // new index (live mode) or the lowest chosen index (bounded checker mode;
  // see DriverConfig::allow_fresh_index).
  if (auto idx = core_.first_unchosen_known_index()) return *idx;
  if (driver_.allow_fresh_index) return core_.fresh_index();
  if (!core_.chosen_map().empty()) return core_.chosen_map().begin()->first;
  return 0;
}

std::vector<InternalEvent> PaxosNode::enabled_internal_events() const {
  if (!initialized_) return {InternalEvent{kEvInit, {}}};
  if (driver_.proposers.count(self_) && proposals_made_ < driver_.max_proposals) {
    Writer w;
    w.u64(pick_index());
    return {InternalEvent{kEvPropose, std::move(w).take()}};
  }
  return {};
}

void PaxosNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  switch (ev.kind) {
    case kEvInit:
      ctx.local_assert(!initialized_, "paxos: double init");
      initialized_ = true;
      break;
    case kEvPropose: {
      ctx.local_assert(initialized_, "paxos: propose before init");
      if (!initialized_) return;
      Reader r(ev.arg);
      const Index index = r.u64();
      ++proposals_made_;
      core_.propose(index, self_ + 1, ctx);  // value = node id (§5.5)
      break;
    }
    default:
      ctx.local_assert(false, "paxos: unknown internal event");
  }
}

void PaxosNode::serialize(Writer& w) const {
  w.b(initialized_);
  w.u32(proposals_made_);
  core_.serialize(w);
}

void PaxosNode::deserialize(Reader& r) {
  initialized_ = r.b();
  proposals_made_ = r.u32();
  core_.deserialize(r);
}

namespace {

// Hand-audited field footprints for PaxosNode, keyed by the serialized field
// groups (initialized_/proposals_made_ plus PaxosCore's four maps). Audited
// invariants, policed by the runtime commutation auditor:
//  - message handlers silently drop pre-init deliveries (no assert), so
//    initialized_ sits in the READ set and `asserts` stays false;
//  - on_prepare/on_accept touch only acceptor_; on_prepare_response only
//    proposer_; on_learn only learner_ + chosen_;
//  - PrepareResponse is NOT independent of itself (the promises-majority
//    threshold makes delivery order visible), and self-pairs are never
//    derived, so no DeclaredPair appears here.
// The kNone merge is deliberate: no pair below shares a written field, so
// commutativity comes from disjointness alone.
std::shared_ptr<const ProtocolFootprints> paxos_footprints(std::uint32_t n,
                                                           const CoreOptions& core_opt) {
  auto msg = [&](std::uint32_t rel, const char* label, std::vector<std::string> reads,
                 std::vector<std::string> writes, bool sends) {
    RuleFootprint rf;
    rf.is_message = true;
    rf.key = core_opt.type_base + rel;
    rf.label = label;
    rf.reads = std::move(reads);
    for (std::string& w : writes) rf.writes.push_back({std::move(w), MergeKind::kNone});
    rf.sends = sends;
    return rf;
  };
  auto internal = [&](std::uint32_t kind, const char* label, std::vector<std::string> reads,
                      std::vector<std::string> writes, bool sends) {
    RuleFootprint rf;
    rf.is_message = false;
    rf.key = kind;
    rf.label = label;
    rf.reads = std::move(reads);
    for (std::string& w : writes) rf.writes.push_back({std::move(w), MergeKind::kNone});
    rf.sends = sends;
    rf.asserts = true;  // local_assert inputs (double-init / pre-init propose)
    return rf;
  };
  auto fp = std::make_shared<ProtocolFootprints>();
  fp->nodes.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    NodeFootprints& nf = fp->nodes[i];
    nf.node = i;
    nf.complete = true;
    nf.rules.push_back(msg(kPrepare, "Prepare", {"initialized_", "acceptor_"}, {"acceptor_"},
                           /*sends=*/true));
    nf.rules.push_back(msg(kPrepareResponse, "PrepareResponse", {"initialized_", "proposer_"},
                           {"proposer_"}, /*sends=*/true));
    nf.rules.push_back(msg(kAccept, "Accept", {"initialized_", "acceptor_"}, {"acceptor_"},
                           /*sends=*/true));
    nf.rules.push_back(msg(kLearn, "Learn", {"initialized_", "learner_", "chosen_"},
                           {"learner_", "chosen_"}, /*sends=*/false));
    nf.rules.push_back(internal(kEvInit, "EvInit", {"initialized_"}, {"initialized_"},
                                /*sends=*/false));
    // pick_index() scans every slot map, so EvPropose reads all of them.
    nf.rules.push_back(internal(
        kEvPropose, "EvPropose",
        {"initialized_", "proposals_made_", "proposer_", "acceptor_", "learner_", "chosen_"},
        {"proposals_made_", "proposer_"}, /*sends=*/true));
  }
  return fp;
}

}  // namespace

SystemConfig make_config(std::uint32_t n, CoreOptions core_opt, DriverConfig driver) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.footprints = paxos_footprints(n, core_opt);
  // Non-proposers are interchangeable: a PaxosNode's id reaches its state
  // and messages only through proposals (value = id, ballots seeded by id),
  // so nodes that never propose behave identically under id swaps. Proposers
  // are excluded — their proposed values ARE their ids.
  std::vector<NodeId> replicas;
  for (NodeId i = 0; i < n; ++i)
    if (driver.proposers.count(i) == 0) replicas.push_back(i);
  if (replicas.size() >= 2) cfg.symmetric_roles.push_back(std::move(replicas));
  cfg.factory = [core_opt, driver](NodeId self, std::uint32_t num) {
    return std::make_unique<PaxosNode>(self, num, core_opt, driver);
  };
  return cfg;
}

std::map<Index, Value> chosen_map_of(const SystemConfig& cfg, NodeId n, const Blob& state) {
  auto machine = machine_from_blob(cfg, n, state);
  return static_cast<const PaxosNode&>(*machine).core().chosen_map();
}

bool AgreementInvariant::holds(const SystemConfig& cfg, const SystemStateView& sys) const {
  std::map<Index, Value> agreed;
  for (NodeId n = 0; n < sys.size(); ++n) {
    for (const auto& [i, v] : extract_(cfg, n, *sys[n])) {
      auto [it, inserted] = agreed.emplace(i, v);
      if (!inserted && it->second != v) return false;
    }
  }
  return true;
}

Projection AgreementInvariant::project(const SystemConfig& cfg, NodeId n,
                                       const Blob& state) const {
  Projection p;
  for (const auto& [i, v] : extract_(cfg, n, state)) p.emplace_back(i, v);
  return p;  // std::map iteration order keeps keys sorted
}

std::unique_ptr<AgreementInvariant> make_agreement_invariant() {
  return std::make_unique<AgreementInvariant>(
      [](const SystemConfig& cfg, NodeId n, const Blob& state) {
        return chosen_map_of(cfg, n, state);
      });
}

}  // namespace lmc::paxos
