#include "protocols/randtree.hpp"

#include <algorithm>

namespace lmc::randtree {

namespace {
Blob encode_id(std::uint32_t id) {
  Writer w;
  w.u32(id);
  return std::move(w).take();
}
std::uint32_t decode_id(const Blob& b) {
  Reader r(b);
  std::uint32_t id = r.u32();
  r.expect_exhausted();
  return id;
}
}  // namespace

void RandTreeNode::on_join(NodeId joiner, Context& ctx) {
  if (children_.size() < opt_.max_children) {
    // Adopt: existing children gain a sibling; the joiner learns its
    // siblings (the current children) from the reply.
    for (std::uint32_t c : children_) ctx.send(c, kMsgSiblingUpdate, encode_id(joiner));
    Writer w;
    write_u32_set(w, children_);
    ctx.send(joiner, kMsgJoinReply, std::move(w).take());
    children_.insert(joiner);
    return;
  }
  // Full: push the join down to the smallest child.
  const NodeId target = *children_.begin();
  if (opt_.bug_notify_on_forward) {
    // BUG: notify children of a "new sibling" that is in fact being
    // forwarded into one child's subtree — that child will later adopt the
    // joiner, ending up with it in both children and siblings.
    for (std::uint32_t c : children_) ctx.send(c, kMsgSiblingUpdate, encode_id(joiner));
  }
  ctx.send(target, kMsgJoin, encode_id(joiner));
}

void RandTreeNode::handle_message(const Message& m, Context& ctx) {
  if (!initialized_) return;  // lossy network: pre-init delivery is lost
  switch (m.type) {
    case kMsgJoin: {
      ctx.local_assert(joined_, "randtree: join request at unjoined node");
      if (!joined_) return;
      on_join(decode_id(m.payload), ctx);
      break;
    }
    case kMsgJoinReply: {
      ctx.local_assert(!joined_, "randtree: duplicate join reply");
      if (joined_) return;
      joined_ = true;
      parent_ = m.src;
      Reader r(m.payload);
      siblings_ = read_u32_set(r);
      break;
    }
    case kMsgSiblingUpdate: {
      // May legitimately arrive before our own JoinReply (reordering), so
      // no joined-state assertion here.
      siblings_.insert(decode_id(m.payload));
      break;
    }
    default:
      ctx.local_assert(false, "randtree: unknown message type");
  }
}

std::vector<InternalEvent> RandTreeNode::enabled_internal_events() const {
  if (!initialized_) return {InternalEvent{kEvInit, {}}};
  if (self_ != 0 && !joined_ && !join_sent_) return {InternalEvent{kEvJoin, {}}};
  return {};
}

void RandTreeNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  switch (ev.kind) {
    case kEvInit:
      ctx.local_assert(!initialized_, "randtree: double init");
      initialized_ = true;
      if (self_ == 0) joined_ = true;  // node 0 is the root
      break;
    case kEvJoin:
      ctx.local_assert(initialized_ && !joined_ && !join_sent_, "randtree: bad join event");
      join_sent_ = true;
      ctx.send(0, kMsgJoin, encode_id(self_));
      break;
    default:
      ctx.local_assert(false, "randtree: unknown internal event");
  }
}

void RandTreeNode::serialize(Writer& w) const {
  w.b(initialized_);
  w.b(joined_);
  w.b(join_sent_);
  w.i64(parent_);
  write_u32_set(w, children_);
  write_u32_set(w, siblings_);
}

void RandTreeNode::deserialize(Reader& r) {
  initialized_ = r.b();
  joined_ = r.b();
  join_sent_ = r.b();
  parent_ = r.i64();
  children_ = read_u32_set(r);
  siblings_ = read_u32_set(r);
}

SystemConfig make_config(std::uint32_t n, Options opt) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [opt](NodeId self, std::uint32_t num) {
    return std::make_unique<RandTreeNode>(self, num, opt);
  };
  return cfg;
}

NodeView view_of(const Blob& state) {
  Reader r(state);
  NodeView v;
  r.b();  // initialized
  v.joined = r.b();
  r.b();  // join_sent
  r.i64();
  v.children = read_u32_set(r);
  v.siblings = read_u32_set(r);
  return v;
}

namespace {
bool disjoint(const std::set<std::uint32_t>& a, const std::set<std::uint32_t>& b) {
  for (std::uint32_t x : a)
    if (b.count(x)) return false;
  return true;
}
}  // namespace

bool DisjointInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  for (const Blob* b : sys) {
    NodeView v = view_of(*b);
    if (!disjoint(v.children, v.siblings)) return false;
  }
  return true;
}

Projection DisjointInvariant::project(const SystemConfig&, NodeId n, const Blob& state) const {
  NodeView v = view_of(state);
  if (disjoint(v.children, v.siblings)) return {};
  return {{n, 1}};
}

}  // namespace lmc::randtree
