#include "protocols/paxos_core.hpp"

#include <algorithm>

namespace lmc::paxos {

// --- message codecs --------------------------------------------------------

Blob PrepareMsg::encode() const {
  Writer w;
  w.u64(index);
  w.u64(ballot);
  return std::move(w).take();
}

PrepareMsg PrepareMsg::decode(const Blob& b) {
  Reader r(b);
  PrepareMsg m;
  m.index = r.u64();
  m.ballot = r.u64();
  r.expect_exhausted();
  return m;
}

Blob PrepareResponseMsg::encode() const {
  Writer w;
  w.u64(index);
  w.u64(ballot);
  w.b(ok);
  w.b(has_accepted);
  w.u64(accepted_ballot);
  w.u64(accepted_value);
  return std::move(w).take();
}

PrepareResponseMsg PrepareResponseMsg::decode(const Blob& b) {
  Reader r(b);
  PrepareResponseMsg m;
  m.index = r.u64();
  m.ballot = r.u64();
  m.ok = r.b();
  m.has_accepted = r.b();
  m.accepted_ballot = r.u64();
  m.accepted_value = r.u64();
  r.expect_exhausted();
  return m;
}

Blob AcceptMsg::encode() const {
  Writer w;
  w.u64(index);
  w.u64(ballot);
  w.u64(value);
  return std::move(w).take();
}

AcceptMsg AcceptMsg::decode(const Blob& b) {
  Reader r(b);
  AcceptMsg m;
  m.index = r.u64();
  m.ballot = r.u64();
  m.value = r.u64();
  r.expect_exhausted();
  return m;
}

Blob LearnMsg::encode() const {
  Writer w;
  w.u64(index);
  w.u64(ballot);
  w.u64(value);
  return std::move(w).take();
}

LearnMsg LearnMsg::decode(const Blob& b) {
  Reader r(b);
  LearnMsg m;
  m.index = r.u64();
  m.ballot = r.u64();
  m.value = r.u64();
  r.expect_exhausted();
  return m;
}

// --- sending ---------------------------------------------------------------

void PaxosCore::send(Context& ctx, NodeId dst, std::uint32_t type, Blob payload) const {
  ctx.send(dst, opt_.type_base + type, std::move(payload));
}

void PaxosCore::broadcast(Context& ctx, std::uint32_t type, const Blob& payload) const {
  // Loopback included: the paper's event count (3 Prepare messages for 3
  // nodes) counts the self-addressed message as a network message.
  for (NodeId d = 0; d < n_; ++d) send(ctx, d, type, payload);
}

// --- proposer --------------------------------------------------------------

void PaxosCore::propose(Index index, Value value, Context& ctx) {
  ProposerSlot& slot = proposer_[index];
  slot.round += 1;
  slot.ballot = make_ballot(slot.round, self_);
  slot.value = value;
  slot.promises.clear();
  slot.has_adopted = false;
  slot.adopted_ballot = 0;
  slot.adopted_value = 0;
  slot.accept_sent = false;
  broadcast(ctx, kPrepare, PrepareMsg{index, slot.ballot}.encode());
}

void PaxosCore::on_prepare_response(const Message& m, Context& ctx) {
  const PrepareResponseMsg resp = PrepareResponseMsg::decode(m.payload);
  auto it = proposer_.find(resp.index);
  if (it == proposer_.end()) return;
  ProposerSlot& slot = it->second;
  if (resp.ballot != slot.ballot || slot.accept_sent) return;  // stale round
  if (!resp.ok) return;  // rejected; a retry is driven by a new propose event
  slot.promises.insert(m.src);

  if (opt_.bug_last_response) {
    // BUG (§5.5): blindly track the latest response — including dropping a
    // previously adopted value when this response carries none.
    slot.has_adopted = resp.has_accepted;
    slot.adopted_ballot = resp.accepted_ballot;
    slot.adopted_value = resp.accepted_value;
  } else if (resp.has_accepted &&
             (!slot.has_adopted || resp.accepted_ballot > slot.adopted_ballot)) {
    slot.has_adopted = true;
    slot.adopted_ballot = resp.accepted_ballot;
    slot.adopted_value = resp.accepted_value;
  }

  if (slot.promises.size() >= majority() && !slot.accept_sent) {
    slot.accept_sent = true;
    const Value v = slot.has_adopted ? slot.adopted_value : slot.value;
    broadcast(ctx, kAccept, AcceptMsg{resp.index, slot.ballot, v}.encode());
  }
}

// --- acceptor ---------------------------------------------------------------

void PaxosCore::on_prepare(const Message& m, Context& ctx) {
  const PrepareMsg prep = PrepareMsg::decode(m.payload);
  AcceptorSlot& slot = acceptor_[prep.index];
  PrepareResponseMsg resp;
  resp.index = prep.index;
  resp.ballot = prep.ballot;
  if (prep.ballot > slot.promised) {
    slot.promised = prep.ballot;
    resp.ok = true;
    resp.has_accepted = slot.has_accepted;
    resp.accepted_ballot = slot.accepted_ballot;
    resp.accepted_value = slot.accepted_value;
  } else {
    resp.ok = false;
  }
  send(ctx, m.src, kPrepareResponse, resp.encode());
}

void PaxosCore::on_accept(const Message& m, Context& ctx) {
  const AcceptMsg acc = AcceptMsg::decode(m.payload);
  AcceptorSlot& slot = acceptor_[acc.index];
  if (acc.ballot < slot.promised) return;  // promised a higher ballot: reject
  slot.promised = acc.ballot;
  slot.has_accepted = true;
  slot.accepted_ballot = acc.ballot;
  slot.accepted_value = acc.value;
  broadcast(ctx, kLearn, LearnMsg{acc.index, acc.ballot, acc.value}.encode());
}

// --- learner ----------------------------------------------------------------

void PaxosCore::on_learn(const Message& m, Context&) {
  const LearnMsg learn = LearnMsg::decode(m.payload);
  LearnTally& tally = learner_[learn.index][learn.ballot];
  tally.value = learn.value;
  tally.acceptors.insert(m.src);
  if (tally.acceptors.size() >= majority() && !chosen_.count(learn.index))
    chosen_.emplace(learn.index, learn.value);
}

// --- dispatch ----------------------------------------------------------------

bool PaxosCore::handle_message(const Message& m, Context& ctx) {
  if (m.type < opt_.type_base || m.type >= opt_.type_base + kTypeCount) return false;
  switch (m.type - opt_.type_base) {
    case kPrepare: on_prepare(m, ctx); break;
    case kPrepareResponse: on_prepare_response(m, ctx); break;
    case kAccept: on_accept(m, ctx); break;
    case kLearn: on_learn(m, ctx); break;
    default: return false;
  }
  return true;
}

// --- queries -----------------------------------------------------------------

std::optional<Value> PaxosCore::chosen(Index index) const {
  auto it = chosen_.find(index);
  if (it == chosen_.end()) return std::nullopt;
  return it->second;
}

std::optional<Index> PaxosCore::first_unchosen_known_index() const {
  std::set<Index> known;
  for (const auto& [i, _] : proposer_) known.insert(i);
  for (const auto& [i, slot] : acceptor_)
    if (slot.has_accepted) known.insert(i);
  for (const auto& [i, _] : learner_) known.insert(i);
  for (Index i : known)
    if (!chosen_.count(i)) return i;
  return std::nullopt;
}

Index PaxosCore::fresh_index() const {
  Index next = 0;
  auto bump = [&next](Index i) { next = std::max(next, i + 1); };
  for (const auto& [i, _] : proposer_) bump(i);
  for (const auto& [i, _] : acceptor_) bump(i);
  for (const auto& [i, _] : learner_) bump(i);
  for (const auto& [i, _] : chosen_) bump(i);
  return next;
}

// --- serialization ------------------------------------------------------------

void PaxosCore::serialize(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(proposer_.size()));
  for (const auto& [i, s] : proposer_) {
    w.u64(i);
    w.u32(s.round);
    w.u64(s.ballot);
    w.u64(s.value);
    write_u32_set(w, s.promises);
    w.b(s.has_adopted);
    w.u64(s.adopted_ballot);
    w.u64(s.adopted_value);
    w.b(s.accept_sent);
  }
  w.u32(static_cast<std::uint32_t>(acceptor_.size()));
  for (const auto& [i, s] : acceptor_) {
    w.u64(i);
    w.u64(s.promised);
    w.b(s.has_accepted);
    w.u64(s.accepted_ballot);
    w.u64(s.accepted_value);
  }
  w.u32(static_cast<std::uint32_t>(learner_.size()));
  for (const auto& [i, tallies] : learner_) {
    w.u64(i);
    w.u32(static_cast<std::uint32_t>(tallies.size()));
    for (const auto& [b, t] : tallies) {
      w.u64(b);
      w.u64(t.value);
      write_u32_set(w, t.acceptors);
    }
  }
  w.u32(static_cast<std::uint32_t>(chosen_.size()));
  for (const auto& [i, v] : chosen_) {
    w.u64(i);
    w.u64(v);
  }
}

void PaxosCore::deserialize(Reader& r) {
  proposer_.clear();
  acceptor_.clear();
  learner_.clear();
  chosen_.clear();
  std::uint32_t n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    Index i = r.u64();
    ProposerSlot s;
    s.round = r.u32();
    s.ballot = r.u64();
    s.value = r.u64();
    s.promises = read_u32_set(r);
    s.has_adopted = r.b();
    s.adopted_ballot = r.u64();
    s.adopted_value = r.u64();
    s.accept_sent = r.b();
    proposer_.emplace(i, std::move(s));
  }
  n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    Index i = r.u64();
    AcceptorSlot s;
    s.promised = r.u64();
    s.has_accepted = r.b();
    s.accepted_ballot = r.u64();
    s.accepted_value = r.u64();
    acceptor_.emplace(i, s);
  }
  n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    Index i = r.u64();
    std::uint32_t nt = r.u32();
    auto& tallies = learner_[i];
    for (std::uint32_t t = 0; t < nt; ++t) {
      Ballot b = r.u64();
      LearnTally tally;
      tally.value = r.u64();
      tally.acceptors = read_u32_set(r);
      tallies.emplace(b, std::move(tally));
    }
  }
  n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    Index i = r.u64();
    Value v = r.u64();
    chosen_.emplace(i, v);
  }
}

}  // namespace lmc::paxos
