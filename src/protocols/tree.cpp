#include "protocols/tree.hpp"

namespace lmc::tree {

Topology fig2_topology() {
  Topology t;
  t.children = {{1, 2}, {3}, {4}, {}, {}};
  t.origin = 0;
  t.target = 4;
  return t;
}

void TreeNode::handle_message(const Message& m, Context& ctx) {
  if (m.type != kMsgForward) {
    ctx.local_assert(false, "tree: unexpected message type");
    return;
  }
  if (self_ == topo_->target) {
    status_ = Status::Received;
    return;
  }
  for (NodeId c : topo_->children[self_]) ctx.send(c, kMsgForward, {});
}

std::vector<InternalEvent> TreeNode::enabled_internal_events() const {
  if (self_ == topo_->origin && status_ == Status::Idle)
    return {InternalEvent{kEvSend, {}}};
  return {};
}

void TreeNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  if (ev.kind != kEvSend || self_ != topo_->origin || status_ != Status::Idle) {
    ctx.local_assert(false, "tree: unexpected internal event");
    return;
  }
  status_ = Status::Sent;
  for (NodeId c : topo_->children[self_]) ctx.send(c, kMsgForward, {});
}

void TreeNode::serialize(Writer& w) const { w.u8(static_cast<std::uint8_t>(status_)); }

void TreeNode::deserialize(Reader& r) { status_ = static_cast<Status>(r.u8()); }

SystemConfig make_config(const Topology& topo) {
  SystemConfig cfg;
  cfg.num_nodes = topo.num_nodes();
  cfg.factory = [&topo](NodeId self, std::uint32_t) {
    return std::make_unique<TreeNode>(self, topo);
  };
  return cfg;
}

Status status_of(const Blob& state) {
  Reader r(state);
  return static_cast<Status>(r.u8());
}

bool CausalDeliveryInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  const bool sent = status_of(*sys[topo_->origin]) != Status::Idle;
  const bool received = status_of(*sys[topo_->target]) == Status::Received;
  return sent || !received;
}

Projection CausalDeliveryInvariant::project(const SystemConfig&, NodeId n,
                                            const Blob& state) const {
  // key 0: origin's sent flag; key 1: target's received flag. Nodes that
  // are neither are never part of a violation and stay unmapped.
  if (n == topo_->origin)
    return {{0, status_of(state) != Status::Idle ? 1u : 0u}};
  if (n == topo_->target)
    return {{1, status_of(state) == Status::Received ? 1u : 0u}};
  return {};
}

bool CausalDeliveryInvariant::projections_conflict(const Projection& a,
                                                   const Projection& b) const {
  auto value_of = [](const Projection& p, std::uint64_t key) -> const std::uint64_t* {
    for (const auto& [k, v] : p)
      if (k == key) return &v;
    return nullptr;
  };
  const std::uint64_t* a_sent = value_of(a, 0);
  const std::uint64_t* b_recv = value_of(b, 1);
  if (a_sent != nullptr && b_recv != nullptr && *a_sent == 0 && *b_recv == 1) return true;
  const std::uint64_t* b_sent = value_of(b, 0);
  const std::uint64_t* a_recv = value_of(a, 1);
  return b_sent != nullptr && a_recv != nullptr && *b_sent == 0 && *a_recv == 1;
}

}  // namespace lmc::tree
