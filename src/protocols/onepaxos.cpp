#include "protocols/onepaxos.hpp"

namespace lmc::onepaxos {

namespace {
Blob encode_iv(paxos::Index i, paxos::Value v) {
  Writer w;
  w.u64(i);
  w.u64(v);
  return std::move(w).take();
}
std::pair<paxos::Index, paxos::Value> decode_iv(const Blob& b) {
  Reader r(b);
  paxos::Index i = r.u64();
  paxos::Value v = r.u64();
  r.expect_exhausted();
  return {i, v};
}
}  // namespace

void OnePaxosNode::refresh_config(Context& ctx) {
  const ConfigView cfg = read_config(util_);
  if (cfg.leader.has_value()) {
    const bool becoming_leader = *cfg.leader == self_ && leader_ != self_;
    leader_ = *cfg.leader;
    if (becoming_leader) {
      // The correct code path of §5.6: a *new* leader obtains the active
      // acceptor from the PaxosUtility, falling back to the protocol
      // default. (A node that already believes it is the leader never gets
      // here — it keeps its cached value, which is what the ++ bug
      // poisons.)
      acceptor_ = cfg.acceptor.value_or(default_acceptor());
      if (acceptor_ == self_ && n_ > 1) {
        // Leader and acceptor must be separate nodes: replace the acceptor.
        const NodeId backup = (self_ + 1) % n_;
        util_.propose(next_log_index(util_), encode_entry(EntryKind::AcceptorChange, backup),
                      ctx);
        acceptor_ = backup;
      }
    } else if (cfg.acceptor.has_value()) {
      acceptor_ = *cfg.acceptor;
    }
  } else if (cfg.acceptor.has_value()) {
    acceptor_ = *cfg.acceptor;
  }
}

void OnePaxosNode::handle_message(const Message& m, Context& ctx) {
  if (!initialized_) return;  // lossy network: pre-init delivery is lost
  switch (m.type) {
    case kMsgPropose: {
      // Single-acceptor accept: the leader addressed us, so act as the
      // acceptor (the leader is authoritative about routing in 1Paxos).
      const auto [index, value] = decode_iv(m.payload);
      auto it = accepted_.find(index);
      if (it == accepted_.end()) {
        accepted_.emplace(index, value);
        for (NodeId d = 0; d < n_; ++d) ctx.send(d, kMsgLearn, encode_iv(index, value));
      } else {
        // Insisting proposer: re-announce the already accepted value (the
        // repeated-Chosen pattern of §4.2, bounded by dedup in the checker).
        for (NodeId d = 0; d < n_; ++d) ctx.send(d, kMsgLearn, encode_iv(index, it->second));
      }
      return;
    }
    case kMsgLearn: {
      const auto [index, value] = decode_iv(m.payload);
      chosen_.emplace(index, value);  // sticky: first learn wins locally
      return;
    }
    default:
      break;
  }
  if (m.type >= kUtilBase && m.type < kUtilBase + paxos::kTypeCount) {
    util_.handle_message(m, ctx);
    refresh_config(ctx);
    return;
  }
  ctx.local_assert(false, "1paxos: unknown message type");
}

paxos::Index OnePaxosNode::pick_index() const {
  paxos::Index i = 0;
  while (chosen_.count(i)) ++i;
  return i;
}

std::vector<InternalEvent> OnePaxosNode::enabled_internal_events() const {
  if (!initialized_) return {InternalEvent{kEvInit, {}}};
  std::vector<InternalEvent> evs;
  if (believes_leader() && proposals_made_ < opt_.max_proposals) {
    Writer w;
    w.u64(pick_index());
    evs.push_back(InternalEvent{kEvPropose, std::move(w).take()});
  }
  if (!believes_leader() && leader_faults_ < opt_.max_leader_faults)
    evs.push_back(InternalEvent{kEvSuspectLeader, {}});
  if (believes_leader() && acceptor_faults_ < opt_.max_acceptor_faults)
    evs.push_back(InternalEvent{kEvSuspectAcceptor, {}});
  return evs;
}

void OnePaxosNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  switch (ev.kind) {
    case kEvInit: {
      ctx.local_assert(!initialized_, "1paxos: double init");
      initialized_ = true;
      // members.begin() is the initial leader...
      leader_ = 0;
      // ...and the acceptor is the second member — unless the developer
      // wrote *(members.begin()++), which evaluates to the FIRST member
      // (§5.6). The acceptor then silently equals the leader.
      acceptor_ = opt_.bug_postincrement_init ? 0 : default_acceptor();
      break;
    }
    case kEvPropose: {
      ctx.local_assert(believes_leader(), "1paxos: propose by non-leader");
      if (!believes_leader()) return;
      Reader r(ev.arg);
      const paxos::Index index = r.u64();
      ++proposals_made_;
      // §5.6: "Since N1 considers itself to be the leader, according to the
      // protocol, it does not refer to PaxosUtility to get the acceptor Id"
      // — the cached acceptor_ is used as-is.
      ctx.send(acceptor_, kMsgPropose, encode_iv(index, self_ + 1));
      break;
    }
    case kEvSuspectLeader: {
      ctx.local_assert(initialized_, "1paxos: fault before init");
      if (believes_leader()) return;
      ++leader_faults_;
      // Campaign: insert a LeaderChange entry into the PaxosUtility.
      util_.propose(next_log_index(util_), encode_entry(EntryKind::LeaderChange, self_), ctx);
      break;
    }
    case kEvSuspectAcceptor: {
      if (!believes_leader()) return;
      ++acceptor_faults_;
      const NodeId backup = (acceptor_ + 1) % n_;
      util_.propose(next_log_index(util_), encode_entry(EntryKind::AcceptorChange, backup), ctx);
      break;
    }
    default:
      ctx.local_assert(false, "1paxos: unknown internal event");
  }
}

void OnePaxosNode::serialize(Writer& w) const {
  w.b(initialized_);
  w.u32(leader_);
  w.u32(acceptor_);
  w.u32(proposals_made_);
  w.u32(leader_faults_);
  w.u32(acceptor_faults_);
  w.u32(static_cast<std::uint32_t>(accepted_.size()));
  for (const auto& [i, v] : accepted_) {
    w.u64(i);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(chosen_.size()));
  for (const auto& [i, v] : chosen_) {
    w.u64(i);
    w.u64(v);
  }
  util_.serialize(w);
}

void OnePaxosNode::deserialize(Reader& r) {
  initialized_ = r.b();
  leader_ = r.u32();
  acceptor_ = r.u32();
  proposals_made_ = r.u32();
  leader_faults_ = r.u32();
  acceptor_faults_ = r.u32();
  accepted_.clear();
  chosen_.clear();
  std::uint32_t n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    paxos::Index i = r.u64();
    accepted_.emplace(i, r.u64());
  }
  n = r.u32();
  for (std::uint32_t k = 0; k < n; ++k) {
    paxos::Index i = r.u64();
    chosen_.emplace(i, r.u64());
  }
  util_.deserialize(r);
}

SystemConfig make_config(std::uint32_t n, Options opt) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [opt](NodeId self, std::uint32_t num) {
    return std::make_unique<OnePaxosNode>(self, num, opt);
  };
  return cfg;
}

std::map<paxos::Index, paxos::Value> chosen_map_of(const SystemConfig& cfg, NodeId n,
                                                   const Blob& state) {
  auto machine = machine_from_blob(cfg, n, state);
  return static_cast<const OnePaxosNode&>(*machine).chosen_map();
}

std::unique_ptr<paxos::AgreementInvariant> make_agreement_invariant() {
  return std::make_unique<paxos::AgreementInvariant>(
      [](const SystemConfig& cfg, NodeId n, const Blob& state) {
        return chosen_map_of(cfg, n, state);
      });
}

}  // namespace lmc::onepaxos
