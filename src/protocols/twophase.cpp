#include "protocols/twophase.hpp"

namespace lmc::twophase {

void TwoPhaseNode::decide(Decision d, Context&) {
  if (decision_ == Decision::None) decision_ = d;
}

void TwoPhaseNode::handle_message(const Message& m, Context& ctx) {
  if (!initialized_) return;  // lossy network: pre-init delivery is lost
  switch (m.type) {
    case kMsgVoteRequest: {
      if (voted_) return;  // duplicate request (idempotent)
      voted_ = true;
      if (opt_.no_voters.count(self_)) {
        ctx.send(m.src, kMsgVoteNo, {});
        // A participant voting No knows the outcome: unilateral abort
        // (standard presumed-abort behaviour).
        decide(Decision::Aborted, ctx);
      } else {
        ctx.send(m.src, kMsgVoteYes, {});
      }
      break;
    }
    case kMsgVoteYes: {
      ctx.local_assert(coordinator(), "2pc: vote at non-coordinator");
      if (!coordinator() || decision_sent_) return;
      yes_.insert(m.src);
      const bool all_yes = yes_.size() == n_;
      const bool majority_yes = yes_.size() >= n_ / 2 + 1;
      if (all_yes || (opt_.bug_commit_on_majority && majority_yes)) {
        // BUG (when flagged): a lagging No voter may already have aborted.
        decision_sent_ = true;
        for (NodeId d = 0; d < n_; ++d) ctx.send(d, kMsgGlobalCommit, {});
      }
      break;
    }
    case kMsgVoteNo: {
      ctx.local_assert(coordinator(), "2pc: vote at non-coordinator");
      if (!coordinator() || decision_sent_) return;
      no_.insert(m.src);
      decision_sent_ = true;
      for (NodeId d = 0; d < n_; ++d) ctx.send(d, kMsgGlobalAbort, {});
      break;
    }
    case kMsgGlobalCommit:
      decide(Decision::Committed, ctx);
      break;
    case kMsgGlobalAbort:
      decide(Decision::Aborted, ctx);
      break;
    default:
      ctx.local_assert(false, "2pc: unknown message type");
  }
}

std::vector<InternalEvent> TwoPhaseNode::enabled_internal_events() const {
  if (!initialized_) return {InternalEvent{kEvInit, {}}};
  if (coordinator() && !begun_) return {InternalEvent{kEvBegin, {}}};
  return {};
}

void TwoPhaseNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  switch (ev.kind) {
    case kEvInit:
      ctx.local_assert(!initialized_, "2pc: double init");
      initialized_ = true;
      break;
    case kEvBegin:
      ctx.local_assert(coordinator() && !begun_, "2pc: bad begin");
      if (!coordinator() || begun_) return;
      begun_ = true;
      for (NodeId d = 0; d < n_; ++d) ctx.send(d, kMsgVoteRequest, {});
      break;
    default:
      ctx.local_assert(false, "2pc: unknown internal event");
  }
}

void TwoPhaseNode::serialize(Writer& w) const {
  w.b(initialized_);
  w.b(begun_);
  w.b(voted_);
  write_u32_set(w, yes_);
  write_u32_set(w, no_);
  w.b(decision_sent_);
  w.u8(static_cast<std::uint8_t>(decision_));
}

void TwoPhaseNode::deserialize(Reader& r) {
  initialized_ = r.b();
  begun_ = r.b();
  voted_ = r.b();
  yes_ = read_u32_set(r);
  no_ = read_u32_set(r);
  decision_sent_ = r.b();
  decision_ = static_cast<Decision>(r.u8());
}

SystemConfig make_config(std::uint32_t n, Options opt) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [opt](NodeId self, std::uint32_t num) {
    return std::make_unique<TwoPhaseNode>(self, num, opt);
  };
  return cfg;
}

Decision decision_of(const Blob& state) {
  Reader r(state);
  r.b();  // initialized
  r.b();  // begun
  r.b();  // voted
  read_u32_set(r);
  read_u32_set(r);
  r.b();  // decision_sent
  return static_cast<Decision>(r.u8());
}

bool AtomicityInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  bool committed = false, aborted = false;
  for (const Blob* b : sys) {
    Decision d = decision_of(*b);
    committed = committed || d == Decision::Committed;
    aborted = aborted || d == Decision::Aborted;
  }
  return !(committed && aborted);
}

Projection AtomicityInvariant::project(const SystemConfig&, NodeId, const Blob& state) const {
  Decision d = decision_of(state);
  if (d == Decision::None) return {};
  return {{0, static_cast<std::uint64_t>(d)}};
}

}  // namespace lmc::twophase
