// The didactic distributed tree of §2 (Fig. 2-4).
//
// A static tree overlay: the origin node fires one internal "send" event,
// creating a message addressed (logically) to the target; every node that
// receives the message forwards it to its children; the target flips to
// "received". Only the origin and the target change local state, so the
// system-state space is tiny (4 states) while the global-state space blows
// up with every network change (12 states in Fig. 3) — the contrast the
// paper opens with.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mc/invariant.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::tree {

/// Node status rendered as '-', 's', 'r' in the paper's figures.
enum class Status : std::uint8_t { Idle = 0, Sent = 1, Received = 2 };

/// Static topology: children[n] lists the children of node n.
struct Topology {
  std::vector<std::vector<NodeId>> children;
  NodeId origin = 0;
  NodeId target = 0;

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(children.size()); }
};

/// The 5-node tree of Fig. 2: 0 -> {1, 2}, 1 -> {3}, 2 -> {4};
/// node 0 initiates, node 4 is the destination.
Topology fig2_topology();

constexpr std::uint32_t kMsgForward = 1;   ///< the forwarded payload message
constexpr std::uint32_t kEvSend = 1;       ///< origin's internal send event

class TreeNode final : public StateMachine {
 public:
  TreeNode(NodeId self, const Topology& topo) : self_(self), topo_(&topo) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  Status status() const { return status_; }

 private:
  NodeId self_;
  const Topology* topo_;
  Status status_ = Status::Idle;
};

/// SystemConfig factory over a topology (which must outlive the config).
SystemConfig make_config(const Topology& topo);

/// Decode just the status byte from a serialized TreeNode.
Status status_of(const Blob& state);

/// "Causal delivery" invariant: the target can be in Received only if the
/// origin is in Sent — the invariant the invalid "----r" combination of
/// Fig. 4 preliminarily violates before soundness verification rejects it.
class CausalDeliveryInvariant final : public Invariant {
 public:
  explicit CausalDeliveryInvariant(const Topology& topo) : topo_(&topo) {}

  std::string name() const override { return "tree.causal_delivery"; }
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;

  /// The verdict reads only the origin's and the target's status, so any
  /// permutation fixing those two nodes leaves it unchanged.
  bool symmetric_under(const std::vector<std::vector<NodeId>>& classes) const override {
    for (const auto& c : classes)
      for (NodeId m : c)
        if (m == topo_->origin || m == topo_->target) return false;
    return true;
  }

  bool has_projection() const override { return true; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  bool projections_conflict(const Projection& a, const Projection& b) const override;

 private:
  const Topology* topo_;
};

}  // namespace lmc::tree
