// Paxos as a checkable StateMachine, plus the test driver of §4.2 and the
// Paxos safety invariant of §5 ("no two nodes will choose different values
// for the same index").
//
// The driver mirrors the paper: a configurable set of nodes may propose, up
// to a per-node budget; a proposal targets the first locally-known index the
// node has not seen chosen (helping contended/unfinished instances along),
// otherwise a fresh index; the proposed value is the node's id (§5.5).
// Initialization is an explicit internal event, so the three init events of
// the paper's 22-event one-proposal space are part of the explored space.
#pragma once

#include <functional>
#include <memory>
#include <set>

#include "mc/invariant.hpp"
#include "protocols/paxos_core.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::paxos {

constexpr std::uint32_t kEvInit = 1;
constexpr std::uint32_t kEvPropose = 2;

struct DriverConfig {
  std::set<NodeId> proposers;         ///< nodes allowed to propose
  std::uint32_t max_proposals = 1;    ///< per-node proposal budget (per chain)
  /// Live-deployment driver only: propose for a brand-new index when all
  /// known indexes are chosen (§5.5's "each node proposes its Id for a new
  /// index"). MUST stay false inside a checker: with the monotonic shared
  /// network, chains can relay each other's frontier messages at tiny
  /// depth, so a fresh-index driver would mint unboundedly many indexes and
  /// the exploration would never reach a fixpoint. The bounded checker
  /// driver re-proposes the lowest chosen index instead (the paper's
  /// "insisting proposer" case, §4.2).
  bool allow_fresh_index = false;
  bool operator==(const DriverConfig&) const = default;
};

class PaxosNode final : public StateMachine {
 public:
  PaxosNode(NodeId self, std::uint32_t n, CoreOptions core_opt, DriverConfig driver)
      : self_(self), driver_(std::move(driver)), core_(self, n, core_opt) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  bool initialized() const { return initialized_; }
  std::uint32_t proposals_made() const { return proposals_made_; }
  const PaxosCore& core() const { return core_; }

 private:
  Index pick_index() const;

  NodeId self_;
  DriverConfig driver_;
  bool initialized_ = false;
  std::uint32_t proposals_made_ = 0;
  PaxosCore core_;
};

/// System of `n` Paxos nodes. `core_opt.bug_last_response` injects the §5.5
/// bug; `driver` shapes the explored state space.
SystemConfig make_config(std::uint32_t n, CoreOptions core_opt, DriverConfig driver);

/// Decode a PaxosNode blob and return its learner's chosen map.
std::map<Index, Value> chosen_map_of(const SystemConfig& cfg, NodeId n, const Blob& state);

/// Extracts (index -> chosen value) from a node state; lets the agreement
/// invariant work for any protocol with Paxos-style chosen outputs (plain
/// Paxos here, 1Paxos in onepaxos.hpp).
using ChosenExtractor =
    std::function<std::map<Index, Value>(const SystemConfig&, NodeId, const Blob&)>;

/// The Paxos safety property. Violated iff two nodes chose different values
/// for the same index. Projection: the chosen (index, value) pairs — node
/// states with nothing chosen are unmapped, which is exactly the LMC-OPT
/// optimization of §4.2.
class AgreementInvariant final : public Invariant {
 public:
  explicit AgreementInvariant(ChosenExtractor extractor) : extract_(std::move(extractor)) {}

  std::string name() const override { return "paxos.agreement"; }
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  /// Agreement only aggregates chosen maps over all nodes — invariant under
  /// any node permutation, so any class decomposition is fine.
  bool symmetric_under(const std::vector<std::vector<NodeId>>&) const override { return true; }
  bool has_projection() const override { return true; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;

 private:
  ChosenExtractor extract_;
};

/// Agreement invariant wired to PaxosNode states.
std::unique_ptr<AgreementInvariant> make_agreement_invariant();

}  // namespace lmc::paxos
