// Chang-Roberts ring leader election — a compact, chatty protocol (every
// election circulates the ring) that stresses exactly the regime LMC is
// built for: lots of parallel in-flight messages whose interleavings a
// global checker must enumerate.
//
//   START (internal): a node becomes a candidate and sends its id clockwise.
//   CANDIDATE(c):  c > self  -> forward clockwise;
//                  c < self  -> swallow (and candidate up if not already);
//                  c == self -> the node's own id survived the full ring:
//                               it is the leader, broadcast ELECTED.
//   ELECTED(l): record the leader.
//
// Invariant: at most one node ever considers itself leader. The projection
// marks self-leaders, and two of them conflict — a *pairwise* violation
// with a custom conflict rule (same key, same value!), exercising the
// OPT machinery differently from Paxos's same-key-different-value rule.
//
// Injectable bug (`bug_forward_smaller`): the swallow branch is missing —
// smaller candidate ids are forwarded too (the classic lost `else`), so a
// smaller node's id can survive the ring and produce a second leader.
#pragma once

#include <memory>
#include <set>

#include "mc/invariant.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::election {

constexpr std::uint32_t kMsgCandidate = 1;  ///< payload: candidate id
constexpr std::uint32_t kMsgElected = 2;    ///< payload: leader id
constexpr std::uint32_t kEvInit = 1;
constexpr std::uint32_t kEvStart = 2;

struct Options {
  /// Nodes allowed to spontaneously start an election.
  std::set<std::uint32_t> starters;
  /// BUG: forward candidate ids smaller than our own instead of swallowing.
  bool bug_forward_smaller = false;
  bool operator==(const Options&) const = default;
};

class ElectionNode final : public StateMachine {
 public:
  ElectionNode(NodeId self, std::uint32_t n, Options opt) : self_(self), n_(n), opt_(opt) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  bool is_leader() const { return leader_self_; }
  std::int64_t known_leader() const { return known_leader_; }

 private:
  NodeId next() const { return (self_ + 1) % n_; }
  void candidate_up(Context& ctx);

  NodeId self_;
  std::uint32_t n_;
  Options opt_;

  bool initialized_ = false;
  bool participant_ = false;     ///< our own id is circulating
  bool leader_self_ = false;     ///< we won
  std::int64_t known_leader_ = -1;
};

SystemConfig make_config(std::uint32_t n, Options opt);

/// Decode the self-leader flag from a serialized ElectionNode.
bool leader_flag_of(const Blob& state);

/// "At most one leader": two node states that BOTH believe they are leader
/// conflict, regardless of key values — a custom pairwise rule.
class SingleLeaderInvariant final : public Invariant {
 public:
  std::string name() const override { return "election.single_leader"; }
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  bool has_projection() const override { return true; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  bool projections_conflict(const Projection& a, const Projection& b) const override {
    return !a.empty() && !b.empty();  // both mapped == both leaders
  }
};

}  // namespace lmc::election
