// RandTree: the random-overlay-tree service from the Mace suite that the
// paper uses to illustrate per-node invariants (§4.1: "in all node states
// the children and siblings must be disjoint sets").
//
// Nodes join by contacting the root (node 0). A parent with spare capacity
// adopts the joiner, tells its existing children about their new sibling,
// and replies with the joiner's sibling set; a full parent forwards the
// join request down to its smallest child.
//
// Injectable bug (`bug_notify_on_forward`): the parent sends the
// SiblingUpdate notifications even when it merely *forwards* the join — a
// copy-paste error. The forwarded joiner later becomes a child of the
// subtree node that also received the bogus sibling notification, putting
// the same node in both `children` and `siblings`.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "mc/invariant.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::randtree {

constexpr std::uint32_t kMsgJoin = 1;           ///< payload: joiner id
constexpr std::uint32_t kMsgJoinReply = 2;      ///< payload: sibling set
constexpr std::uint32_t kMsgSiblingUpdate = 3;  ///< payload: new sibling id
constexpr std::uint32_t kEvInit = 1;
constexpr std::uint32_t kEvJoin = 2;

struct Options {
  std::uint32_t max_children = 2;
  bool bug_notify_on_forward = false;
  bool operator==(const Options&) const = default;
};

class RandTreeNode final : public StateMachine {
 public:
  RandTreeNode(NodeId self, std::uint32_t n, Options opt) : self_(self), n_(n), opt_(opt) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  bool joined() const { return joined_; }
  std::int64_t parent() const { return parent_; }
  const std::set<std::uint32_t>& children() const { return children_; }
  const std::set<std::uint32_t>& siblings() const { return siblings_; }

 private:
  void on_join(NodeId joiner, Context& ctx);

  NodeId self_;
  std::uint32_t n_;
  Options opt_;

  bool initialized_ = false;
  bool joined_ = false;
  bool join_sent_ = false;
  std::int64_t parent_ = -1;
  std::set<std::uint32_t> children_;
  std::set<std::uint32_t> siblings_;
};

SystemConfig make_config(std::uint32_t n, Options opt);

/// Decoded view of the fields the invariant needs.
struct NodeView {
  bool joined = false;
  std::set<std::uint32_t> children;
  std::set<std::uint32_t> siblings;
};
NodeView view_of(const Blob& state);

/// §4.1's per-node invariant: children and siblings are disjoint. Because
/// it is checkable on each node state alone, its projection marks only
/// violating states (empty otherwise), and LMC-OPT skips every clean state.
class DisjointInvariant final : public Invariant {
 public:
  std::string name() const override { return "randtree.children_siblings_disjoint"; }
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  bool has_projection() const override { return true; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  bool projection_self_violates(const Projection& p) const override { return !p.empty(); }
  bool projections_conflict(const Projection&, const Projection&) const override {
    return false;  // purely per-node
  }
};

}  // namespace lmc::randtree
