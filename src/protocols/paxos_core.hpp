// Multi-instance Paxos core: proposer, acceptor and learner roles on every
// node (§5 "In usual implementations of Paxos, each node implements three
// roles"). The core is an embeddable component rather than a StateMachine:
// PaxosNode wraps it directly for the §5.1-5.5 experiments, and OnePaxosNode
// embeds a second instance as its PaxosUtility configuration service (§5.6)
// — the multi-layer service-stack case that made the authors add whole-stack
// (de)serialization to MaceMC.
//
// Message flow per proposal (index i):
//   propose -> Prepare*N -> PrepareResponse*N -> Accept*N (at majority)
//           -> each acceptor broadcasts Learn*N -> chosen at majority.
// Ballots are (round << 8) | node, so ballots are unique and totally
// ordered across proposers.
//
// Injectable bug (§5.5, first reported for the WiDS Paxos implementation):
// with `bug_last_response` the proposer adopts the accepted value carried by
// the *last* PrepareResponse instead of the one with the highest accepted
// ballot — including forgetting a previously adopted value when the last
// response carries none. Whether the bug manifests depends purely on message
// interleaving, which is exactly what the model checker explores.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "runtime/context.hpp"
#include "runtime/message.hpp"
#include "runtime/serialize.hpp"
#include "runtime/types.hpp"

namespace lmc::paxos {

using Index = std::uint64_t;
using Ballot = std::uint64_t;
using Value = std::uint64_t;

constexpr Ballot make_ballot(std::uint32_t round, NodeId node) {
  return (static_cast<Ballot>(round) << 8) | node;
}

/// Message types, relative to the instance's type_base.
enum MsgType : std::uint32_t {
  kPrepare = 0,
  kPrepareResponse = 1,
  kAccept = 2,
  kLearn = 3,
  kTypeCount = 4,
};

struct PrepareMsg {
  Index index = 0;
  Ballot ballot = 0;
  Blob encode() const;
  static PrepareMsg decode(const Blob& b);
};

struct PrepareResponseMsg {
  Index index = 0;
  Ballot ballot = 0;       ///< the ballot being answered
  bool ok = false;         ///< promise granted
  bool has_accepted = false;
  Ballot accepted_ballot = 0;
  Value accepted_value = 0;
  Blob encode() const;
  static PrepareResponseMsg decode(const Blob& b);
};

struct AcceptMsg {
  Index index = 0;
  Ballot ballot = 0;
  Value value = 0;
  Blob encode() const;
  static AcceptMsg decode(const Blob& b);
};

struct LearnMsg {
  Index index = 0;
  Ballot ballot = 0;
  Value value = 0;
  Blob encode() const;
  static LearnMsg decode(const Blob& b);
};

struct CoreOptions {
  std::uint32_t type_base = 0;     ///< message-type namespace offset
  bool bug_last_response = false;  ///< inject the §5.5 WiDS bug
  bool operator==(const CoreOptions&) const = default;
};

class PaxosCore {
 public:
  PaxosCore(NodeId self, std::uint32_t num_nodes, CoreOptions opt)
      : self_(self), n_(num_nodes), opt_(opt) {}

  /// Start (or retry with a higher ballot) a proposal for `index`.
  void propose(Index index, Value value, Context& ctx);

  /// Dispatch a message whose type is within [type_base, type_base+4).
  /// Returns false if the type does not belong to this instance.
  bool handle_message(const Message& m, Context& ctx);

  /// Learner output: value chosen at this node for `index`, if any.
  std::optional<Value> chosen(Index index) const;
  const std::map<Index, Value>& chosen_map() const { return chosen_; }

  /// Driver helper (§4.2 test driver): the smallest index this node knows
  /// about (proposed/accepted) that it has not seen chosen; nullopt if all
  /// known indexes are chosen locally.
  std::optional<Index> first_unchosen_known_index() const;
  /// One past the largest index this node knows about ("a new index").
  Index fresh_index() const;

  std::uint32_t majority() const { return n_ / 2 + 1; }

  void serialize(Writer& w) const;
  void deserialize(Reader& r);

  bool operator==(const PaxosCore&) const = default;

 private:
  struct ProposerSlot {
    std::uint32_t round = 0;
    Ballot ballot = 0;
    Value value = 0;  ///< the node's own proposed value
    std::set<std::uint32_t> promises;
    bool has_adopted = false;
    Ballot adopted_ballot = 0;
    Value adopted_value = 0;
    bool accept_sent = false;
    bool operator==(const ProposerSlot&) const = default;
  };
  struct AcceptorSlot {
    Ballot promised = 0;
    bool has_accepted = false;
    Ballot accepted_ballot = 0;
    Value accepted_value = 0;
    bool operator==(const AcceptorSlot&) const = default;
  };
  struct LearnTally {
    Value value = 0;
    std::set<std::uint32_t> acceptors;
    bool operator==(const LearnTally&) const = default;
  };

  void on_prepare(const Message& m, Context& ctx);
  void on_prepare_response(const Message& m, Context& ctx);
  void on_accept(const Message& m, Context& ctx);
  void on_learn(const Message& m, Context& ctx);
  void send(Context& ctx, NodeId dst, std::uint32_t type, Blob payload) const;
  void broadcast(Context& ctx, std::uint32_t type, const Blob& payload) const;

  NodeId self_;
  std::uint32_t n_;
  CoreOptions opt_;

  std::map<Index, ProposerSlot> proposer_;
  std::map<Index, AcceptorSlot> acceptor_;
  std::map<Index, std::map<Ballot, LearnTally>> learner_;
  std::map<Index, Value> chosen_;  ///< sticky: first majority wins locally
};

}  // namespace lmc::paxos
