// 1Paxos (§5.6): an efficient Multi-Paxos variant with a SINGLE active
// acceptor. The global leader sends proposals straight to the acceptor (no
// prepare phase); the acceptor's accept is decisive (majority of one) and is
// broadcast as a Learn. Upon suspicion, a node campaigns by inserting a
// LeaderChange entry into the PaxosUtility log (full Paxos among all nodes);
// on becoming leader it obtains the active acceptor from the utility log,
// falling back to the protocol's default (the second member) when the log
// has no AcceptorChange entry. The leader and acceptor roles must live on
// two separate nodes.
//
// Injectable bug (`bug_postincrement_init`): the original developer wrote
//     acceptor = *(members.begin()++);   // post-increment: returns begin()
// instead of
//     acceptor = *(++members.begin());
// so every node's *cached* initial acceptor equals the initial leader (the
// first member). A node that still believes it is the leader "does not refer
// to PaxosUtility to get the acceptor Id" (§5.6) and uses that poisoned
// cache — proposing to itself, accepting its own value, and choosing a value
// no other node chose.
#pragma once

#include <map>
#include <memory>

#include "mc/invariant.hpp"
#include "protocols/paxos.hpp"
#include "protocols/paxos_utility.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::onepaxos {

// Main-layer message types; the embedded utility Paxos owns [kUtilBase,
// kUtilBase + 4).
constexpr std::uint32_t kMsgPropose = 10;  ///< leader -> acceptor {index, value}
constexpr std::uint32_t kMsgLearn = 11;    ///< acceptor -> all {index, value}
constexpr std::uint32_t kUtilBase = 100;

constexpr std::uint32_t kEvInit = 1;
constexpr std::uint32_t kEvPropose = 2;       ///< application proposal
constexpr std::uint32_t kEvSuspectLeader = 3; ///< fault detector: campaign for leadership
constexpr std::uint32_t kEvSuspectAcceptor = 4;  ///< leader replaces the acceptor

struct Options {
  bool bug_postincrement_init = false;  ///< the §5.6 "++" bug
  std::uint32_t max_proposals = 1;      ///< per-node application proposals
  std::uint32_t max_leader_faults = 1;  ///< per-node leader-suspicion budget
  std::uint32_t max_acceptor_faults = 0;
  bool operator==(const Options&) const = default;
};

class OnePaxosNode final : public StateMachine {
 public:
  OnePaxosNode(NodeId self, std::uint32_t n, Options opt)
      : self_(self), n_(n), opt_(opt),
        util_(self, n, paxos::CoreOptions{kUtilBase, false}) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  bool initialized() const { return initialized_; }
  NodeId leader() const { return leader_; }
  NodeId acceptor() const { return acceptor_; }
  bool believes_leader() const { return initialized_ && leader_ == self_; }
  const std::map<paxos::Index, paxos::Value>& chosen_map() const { return chosen_; }
  const paxos::PaxosCore& utility() const { return util_; }

 private:
  /// The correctly written fallback used on the leader-change path.
  NodeId default_acceptor() const { return n_ > 1 ? 1 : 0; }
  /// Re-derive leader/acceptor from the learned utility log after every
  /// utility message (§5.6: roles are defined by the last log entries).
  void refresh_config(Context& ctx);
  paxos::Index pick_index() const;

  NodeId self_;
  std::uint32_t n_;
  Options opt_;

  bool initialized_ = false;
  NodeId leader_ = 0;
  NodeId acceptor_ = 0;  ///< cached; poisoned by the ++ bug at init
  std::uint32_t proposals_made_ = 0;
  std::uint32_t leader_faults_ = 0;
  std::uint32_t acceptor_faults_ = 0;
  std::map<paxos::Index, paxos::Value> accepted_;  ///< single-acceptor log
  std::map<paxos::Index, paxos::Value> chosen_;    ///< learner output
  paxos::PaxosCore util_;                          ///< PaxosUtility layer
};

SystemConfig make_config(std::uint32_t n, Options opt);

/// Decode an OnePaxosNode blob and return its chosen map (for the shared
/// agreement invariant).
std::map<paxos::Index, paxos::Value> chosen_map_of(const SystemConfig& cfg, NodeId n,
                                                   const Blob& state);

/// Paxos agreement invariant over 1Paxos chosen values.
std::unique_ptr<paxos::AgreementInvariant> make_agreement_invariant();

}  // namespace lmc::onepaxos
