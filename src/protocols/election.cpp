#include "protocols/election.hpp"

namespace lmc::election {

namespace {
Blob encode_id(std::uint32_t id) {
  Writer w;
  w.u32(id);
  return std::move(w).take();
}
std::uint32_t decode_id(const Blob& b) {
  Reader r(b);
  std::uint32_t id = r.u32();
  r.expect_exhausted();
  return id;
}
}  // namespace

void ElectionNode::candidate_up(Context& ctx) {
  if (participant_) return;
  participant_ = true;
  ctx.send(next(), kMsgCandidate, encode_id(self_));
}

void ElectionNode::handle_message(const Message& m, Context& ctx) {
  if (!initialized_) return;  // lossy network: pre-init delivery is lost
  switch (m.type) {
    case kMsgCandidate: {
      const std::uint32_t c = decode_id(m.payload);
      ctx.local_assert(c < n_, "election: candidate id out of range");
      if (c == self_) {
        // Our id survived the whole ring: we win.
        if (!leader_self_) {
          leader_self_ = true;
          known_leader_ = self_;
          for (NodeId d = 0; d < n_; ++d)
            if (d != self_) ctx.send(d, kMsgElected, encode_id(self_));
        }
      } else if (c > self_) {
        ctx.send(next(), kMsgCandidate, encode_id(c));
        participant_ = true;
      } else {
        // c < self: the correct protocol swallows the smaller id and
        // candidates up itself; the buggy one ALSO forwards it.
        if (opt_.bug_forward_smaller) ctx.send(next(), kMsgCandidate, encode_id(c));
        candidate_up(ctx);
      }
      break;
    }
    case kMsgElected: {
      known_leader_ = decode_id(m.payload);
      break;
    }
    default:
      ctx.local_assert(false, "election: unknown message type");
  }
}

std::vector<InternalEvent> ElectionNode::enabled_internal_events() const {
  if (!initialized_) return {InternalEvent{kEvInit, {}}};
  if (opt_.starters.count(self_) && !participant_) return {InternalEvent{kEvStart, {}}};
  return {};
}

void ElectionNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  switch (ev.kind) {
    case kEvInit:
      ctx.local_assert(!initialized_, "election: double init");
      initialized_ = true;
      break;
    case kEvStart:
      ctx.local_assert(initialized_, "election: start before init");
      candidate_up(ctx);
      break;
    default:
      ctx.local_assert(false, "election: unknown internal event");
  }
}

void ElectionNode::serialize(Writer& w) const {
  w.b(initialized_);
  w.b(participant_);
  w.b(leader_self_);
  w.i64(known_leader_);
}

void ElectionNode::deserialize(Reader& r) {
  initialized_ = r.b();
  participant_ = r.b();
  leader_self_ = r.b();
  known_leader_ = r.i64();
}

SystemConfig make_config(std::uint32_t n, Options opt) {
  SystemConfig cfg;
  cfg.num_nodes = n;
  cfg.factory = [opt](NodeId self, std::uint32_t num) {
    return std::make_unique<ElectionNode>(self, num, opt);
  };
  return cfg;
}

bool leader_flag_of(const Blob& state) {
  Reader r(state);
  r.b();  // initialized
  r.b();  // participant
  return r.b();
}

bool SingleLeaderInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  int leaders = 0;
  for (const Blob* b : sys)
    if (leader_flag_of(*b)) ++leaders;
  return leaders <= 1;
}

Projection SingleLeaderInvariant::project(const SystemConfig&, NodeId n,
                                          const Blob& state) const {
  if (!leader_flag_of(state)) return {};
  return {{n, 1}};
}

}  // namespace lmc::election
