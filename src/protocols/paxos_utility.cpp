#include "protocols/paxos_utility.hpp"

namespace lmc::onepaxos {

ConfigView read_config(const paxos::PaxosCore& util) {
  ConfigView v;
  for (const auto& [idx, value] : util.chosen_map()) {
    (void)idx;  // ascending map order: later entries overwrite earlier ones
    switch (entry_kind(value)) {
      case EntryKind::LeaderChange: v.leader = entry_node(value); break;
      case EntryKind::AcceptorChange: v.acceptor = entry_node(value); break;
    }
  }
  return v;
}

paxos::Index next_log_index(const paxos::PaxosCore& util) {
  paxos::Index i = 0;
  while (util.chosen_map().count(i)) ++i;
  return i;
}

}  // namespace lmc::onepaxos
