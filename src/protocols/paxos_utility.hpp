// PaxosUtility (§5.6): the auxiliary consensus service 1Paxos uses to
// uniquely identify the global leader and the active acceptor. Following the
// paper's experiment, it is "implemented using Paxos itself": the utility is
// an embedded PaxosCore instance whose chosen values form a configuration
// log of LeaderChange/AcceptorChange entries. The current leader (acceptor)
// is the node named by the last LeaderChange (AcceptorChange) entry in the
// locally learned log.
#pragma once

#include <cstdint>
#include <optional>

#include "protocols/paxos_core.hpp"

namespace lmc::onepaxos {

enum class EntryKind : std::uint32_t { LeaderChange = 1, AcceptorChange = 2 };

/// Config-log entries are encoded as Paxos values: (kind << 32) | node.
constexpr paxos::Value encode_entry(EntryKind k, NodeId node) {
  return (static_cast<paxos::Value>(k) << 32) | node;
}
constexpr EntryKind entry_kind(paxos::Value v) {
  return static_cast<EntryKind>(v >> 32);
}
constexpr NodeId entry_node(paxos::Value v) {
  return static_cast<NodeId>(v & 0xffffffffu);
}

/// View of the locally learned configuration log.
struct ConfigView {
  std::optional<NodeId> leader;    ///< last LeaderChange entry, if any
  std::optional<NodeId> acceptor;  ///< last AcceptorChange entry, if any
};

/// Scan a utility core's chosen map (ascending log positions).
ConfigView read_config(const paxos::PaxosCore& util);

/// First log position with no locally chosen entry (where a new entry is
/// proposed).
paxos::Index next_log_index(const paxos::PaxosCore& util);

}  // namespace lmc::onepaxos
