// Two-phase commit (2PC): a further checkable protocol beyond the paper's
// evaluation set, exercising the framework on a coordinator/participant
// topology (the paper's techniques are protocol-agnostic; 2PC is the
// canonical "atomicity invariant" workload).
//
// Node 0 coordinates; everyone (coordinator included) is a participant.
//   BEGIN (internal, coordinator)  -> VoteRequest broadcast
//   participant votes Yes/No       -> VoteYes / VoteNo to coordinator
//   all yes                        -> GlobalCommit broadcast
//   any no                         -> GlobalAbort broadcast
//   participant applies the decision.
//
// Invariant (atomicity): no node is COMMITTED while another is ABORTED.
// Projection: the local decision — undecided nodes are unmapped, so
// LMC-OPT materializes combinations only for decided, disagreeing pairs.
//
// Injectable bug (`bug_commit_on_majority`): the coordinator decides commit
// once a MAJORITY of yes-votes arrives instead of waiting for all — with a
// lagging no-voter, some participants commit while the no-voter (which
// aborts locally on voting no... as 2PC presumes-abort participants do
// after voting no under the buggy coordinator's premature commit) has
// already aborted. The checker exposes the disagreement window.
#pragma once

#include <memory>
#include <set>

#include "mc/invariant.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::twophase {

constexpr std::uint32_t kMsgVoteRequest = 1;
constexpr std::uint32_t kMsgVoteYes = 2;
constexpr std::uint32_t kMsgVoteNo = 3;
constexpr std::uint32_t kMsgGlobalCommit = 4;
constexpr std::uint32_t kMsgGlobalAbort = 5;
constexpr std::uint32_t kEvInit = 1;
constexpr std::uint32_t kEvBegin = 2;

enum class Decision : std::uint8_t { None = 0, Committed = 1, Aborted = 2 };

struct Options {
  /// Nodes that vote No (everyone else votes Yes).
  std::set<std::uint32_t> no_voters;
  /// BUG: commit at majority-yes instead of all-yes.
  bool bug_commit_on_majority = false;
  bool operator==(const Options&) const = default;
};

class TwoPhaseNode final : public StateMachine {
 public:
  TwoPhaseNode(NodeId self, std::uint32_t n, Options opt) : self_(self), n_(n), opt_(opt) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

  Decision decision() const { return decision_; }

 private:
  bool coordinator() const { return self_ == 0; }
  void decide(Decision d, Context& ctx);

  NodeId self_;
  std::uint32_t n_;
  Options opt_;

  bool initialized_ = false;
  bool begun_ = false;              // coordinator: vote requests sent
  bool voted_ = false;              // participant: vote cast
  std::set<std::uint32_t> yes_;     // coordinator: yes votes received
  std::set<std::uint32_t> no_;      // coordinator: no votes received
  bool decision_sent_ = false;      // coordinator: global decision broadcast
  Decision decision_ = Decision::None;
};

SystemConfig make_config(std::uint32_t n, Options opt);

/// Decode the local decision from a serialized TwoPhaseNode.
Decision decision_of(const Blob& state);

/// Atomicity: no committed node may coexist with an aborted node.
class AtomicityInvariant final : public Invariant {
 public:
  std::string name() const override { return "twophase.atomicity"; }
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  bool has_projection() const override { return true; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  // Default conflict rule: key 0, value = decision; differing decisions of
  // decided nodes conflict.
};

}  // namespace lmc::twophase
