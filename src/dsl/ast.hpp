// Surface AST of a .lmc protocol — names still unresolved, selectors and
// destinations still symbolic. The compiler (compile.hpp) elaborates this
// into the per-node rule tables of spec.hpp for a concrete node count; the
// AST is kept around so scenario blocks can re-elaborate with an overridden
// `nodes N` (role ranges like `1..n-2` are node-count-relative).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dsl/diag.hpp"

namespace lmc::dsl::ast {

/// `INT` or `n - INT` (node-count-relative); `n` alone is `n - 0`.
struct NodeExpr {
  bool rel_n = false;
  std::int64_t value = 0;
  SrcLoc loc;
};

/// Which nodes a handler is installed on (`at ...`; omitted = all).
struct Selector {
  enum class Kind : std::uint8_t { kAll, kRole, kRange };
  Kind kind = Kind::kAll;
  std::string role;
  NodeExpr lo, hi;  ///< kRange; a single node is lo..lo
  SrcLoc loc;
};

/// A send's destination.
struct Dst {
  enum class Kind : std::uint8_t { kNode, kSender, kOthers, kAll, kNext, kPrev, kRole };
  Kind kind = Kind::kNode;
  NodeExpr node;     ///< kNode
  std::string role;  ///< kRole
  SrcLoc loc;
};

struct SendAct {
  std::string msg;
  Dst dst;
  std::optional<std::uint32_t> tag;  ///< explicit payload tag; auto-assigned if absent
  SrcLoc loc;
};

/// `on MSG at SEL @ GUARD -> TARGET { ... }` (message handler), or
/// `internal|timer LABEL at SEL @ GUARD -> TARGET { ... }` (fire-once).
struct Handler {
  bool is_message = false;
  std::string trigger;  ///< message type name (kMessage) or handler label
  Selector at;
  std::string guard;
  std::string target;
  std::vector<SendAct> sends;
  bool fail_assert = false;     ///< `assert false;` — injected local-assert failure
  std::string assert_msg;
  SrcLoc loc;
  SrcLoc target_loc;
};

/// `invariant NAME: never A with B [projected];`
/// `invariant NAME: never A before B [projected];`  (A at a lower node index)
struct InvariantDecl {
  std::string name;
  std::vector<std::string> a, b;  ///< state sets ({s1, s2} or a single state)
  std::vector<SrcLoc> a_locs, b_locs;
  bool before = false;
  bool projected = false;
  SrcLoc loc;
};

/// `scenario NAME { nodes N; seed S; drop PCT; sim_time SEC; app_max SEC; fifo; }`
struct ScenarioDecl {
  std::string name;
  std::optional<std::uint32_t> nodes;
  std::uint64_t seed = 1;
  double drop_pct = 30.0;
  double sim_time = 30.0;
  double app_max = 10.0;
  bool fifo = false;
  SrcLoc loc;
};

struct RoleDecl {
  std::string name;
  Selector sel;
  SrcLoc loc;
};

struct Protocol {
  std::string name;
  std::uint32_t nodes = 0;  ///< default node count (`nodes N;`, required)
  std::uint64_t seed = 0;   ///< opaque metadata (dfuzz repro provenance)
  bool expect_violation = false;
  std::vector<std::string> states, messages;
  std::vector<SrcLoc> state_locs, message_locs;
  std::vector<RoleDecl> roles;
  std::vector<Handler> handlers;
  std::vector<InvariantDecl> invariants;
  std::vector<ScenarioDecl> scenarios;
  SrcLoc loc;
  SrcLoc nodes_loc;
};

}  // namespace lmc::dsl::ast
