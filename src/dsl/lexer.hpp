// Tokenizer for the .lmc protocol DSL. Keywords are contextual — the lexer
// only distinguishes identifiers, numbers, strings and punctuation; the
// parser matches keyword spellings itself, so protocol authors may reuse
// words like `drop` or `seed` as state names.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsl/diag.hpp"

namespace lmc::dsl {

enum class Tok : std::uint8_t {
  kIdent,
  kInt,      ///< decimal integer literal (also available as double)
  kNumber,   ///< decimal literal with a fractional part
  kString,   ///< double-quoted, supports \" and \\ escapes
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kColon,
  kArrow,    ///< ->
  kAt,       ///< @
  kDotDot,   ///< ..
  kEquals,
  kMinus,
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;          ///< identifier/string contents, literal spelling
  std::uint64_t int_value = 0;
  double num_value = 0.0;
  SrcLoc loc;
};

/// Tokenize `text`. Lexical errors (bad characters, unterminated strings)
/// are reported into `diags`; the offending byte is skipped so the parser
/// still sees a best-effort stream ending in kEof.
std::vector<Token> lex(std::string_view text, DiagList& diags);

/// Human name of a token kind for "expected X, got Y" messages.
const char* tok_name(Tok t);

}  // namespace lmc::dsl
