// Diagnostics for the .lmc protocol DSL (DESIGN.md §11).
//
// Every parser/validator complaint carries a source position and renders in
// the gcc style tooling already understands:
//
//   examples/zoo/raft_election.lmc:14:3: error: message handler must move to
//   a strictly higher state ('voted' -> 'voted') [DSL01]
//
// Validator rules have stable [DSLnn] codes (see compile.hpp) so tests and
// fixtures can pin the *class* of an error without freezing its wording.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmc::dsl {

/// 1-based source position inside one .lmc file.
struct SrcLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;
};

struct Diag {
  enum class Severity : std::uint8_t { kError, kWarning };

  Severity severity = Severity::kError;
  std::string file;
  SrcLoc loc;
  std::string msg;
  std::string code;  ///< "DSL01".."DSL09" for validator rules; empty for parse errors

  /// "file:line:col: error: msg [CODE]"
  std::string to_string() const {
    std::string s = file + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col) +
                    (severity == Severity::kError ? ": error: " : ": warning: ") + msg;
    if (!code.empty()) s += " [" + code + "]";
    return s;
  }
};

/// Accumulates diagnostics for one file. `ok()` means no errors (warnings
/// are allowed through).
class DiagList {
 public:
  explicit DiagList(std::string file = {}) : file_(std::move(file)) {}

  void error(SrcLoc loc, std::string msg, std::string code = {}) {
    items_.push_back({Diag::Severity::kError, file_, loc, std::move(msg), std::move(code)});
  }
  void warning(SrcLoc loc, std::string msg, std::string code = {}) {
    items_.push_back({Diag::Severity::kWarning, file_, loc, std::move(msg), std::move(code)});
  }

  bool ok() const {
    for (const Diag& d : items_)
      if (d.severity == Diag::Severity::kError) return false;
    return true;
  }

  const std::vector<Diag>& items() const { return items_; }
  const std::string& file() const { return file_; }

  /// All diagnostics, one per line (gcc style), for stderr or test pins.
  std::string to_string() const {
    std::string s;
    for (const Diag& d : items_) {
      s += d.to_string();
      s += '\n';
    }
    return s;
  }

 private:
  std::string file_;
  std::vector<Diag> items_;
};

}  // namespace lmc::dsl
