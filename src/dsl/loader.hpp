// One-call entry point: .lmc source -> parsed AST + elaborated spec, with
// all diagnostics collected against the file name. The AST is returned too
// so callers (lmc_run) can re-elaborate at a scenario's node count.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dsl/compile.hpp"
#include "dsl/diag.hpp"
#include "dsl/parser.hpp"
#include "dsl/spec.hpp"

namespace lmc::dsl {

struct LoadResult {
  std::optional<ast::Protocol> protocol;  ///< surface AST (may be partial on error)
  std::optional<DslSpec> spec;            ///< present iff diags.ok()
  DiagList diags;

  bool ok() const { return spec.has_value(); }
};

/// Parse + compile in-memory text; `filename` only labels diagnostics.
LoadResult load_text(std::string_view text, std::string filename,
                     const CompileOptions& opts = {});

/// Read and load a .lmc file. A missing/unreadable file is reported as a
/// diagnostic at line 0.
LoadResult load_file(const std::string& path, const CompileOptions& opts = {});

}  // namespace lmc::dsl
