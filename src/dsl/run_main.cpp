// lmc_run: load, validate, model-check and cross-check a .lmc protocol.
//
//   lmc_run [options] SPEC.lmc
//     --check            parse + validate only (gcc-style diagnostics, exit 0/2)
//     --emit             print the canonical fully-elaborated .lmc text
//     --oracle           base run through the full DiffOracle (LMC vs global
//                        baseline, witness replay, resume round-trip, OPT path)
//     --symmetry         oracle only: add the reduced-vs-unreduced differential
//                        (confirmed sets must match up to role permutation)
//     --por              oracle only: add the partial-order-reduction
//                        differential (exactly equal confirmed sets, every
//                        prune decision runtime-audited, 1-vs-8-thread
//                        checkpoint byte identity)
//     --scenario NAME    run only the named scenario from the spec
//     --no-scenarios     base run only
//     --nodes N          override the protocol's node count
//     --threads T        LMC phase-2 threads (default 1)
//     --time-budget SEC  per-checker budget (default 30)
//     --audit-every K    oracle: sampled soundness audit of reachable tuples
//     --audit-validity   audit handler executions (ModelValidityAuditor)
//     --trace FILE       write an "lmc-trace/1" JSONL of the base exploration
//     --profile FILE     write an "lmc-prof/1" JSONL profile of the base
//                        exploration (per-rule costs; lmc_report --profile)
//
// The base run explores from the protocol's initial states and enforces the
// spec's expectation: `expect violation;` demands at least one confirmed
// violation, its absence demands zero. Each scenario then runs the seeded
// lossy-transport/timer prelude (LiveRunner + SimTransport), snapshots, and
// differentially checks LMC against the global baseline FROM THE SNAPSHOT:
// node-state completeness, identical violation verdict sets, and witness
// replay of every confirmed violation. Scenario runs gate on agreement, not
// on bug presence — whether a prelude reaches a buggy region depends on the
// seed, which is exactly the diversity the matrix exists to sample.
//
// Exit: 0 = ok, 1 = disagreement/expectation failure, 2 = usage/spec errors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dfuzz/oracle.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "obs/bench_schema.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "online/live_runner.hpp"
#include "runtime/audit.hpp"
#include "runtime/hash.hpp"

namespace {

using namespace lmc;

struct Args {
  std::string spec_path;
  std::string scenario;
  std::string trace_file;
  std::string profile_file;
  std::uint32_t nodes = 0;  ///< 0 = use the spec's count
  unsigned threads = 1;
  double time_budget_s = 30.0;
  std::uint32_t audit_every = 0;
  bool audit_validity = false;
  bool check_only = false;
  bool emit = false;
  bool oracle = false;
  bool symmetry = false;  ///< --oracle only: reduced-vs-unreduced differential
  bool por = false;       ///< --oracle only: POR-reduced-vs-unreduced differential
  bool no_scenarios = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: lmc_run [--check] [--emit] [--oracle] [--symmetry] [--por]\n"
               "               [--scenario NAME] [--no-scenarios] [--nodes N] [--threads T]\n"
               "               [--time-budget SEC] [--audit-every K] [--audit-validity]\n"
               "               [--trace FILE] [--profile FILE] SPEC.lmc\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--check") {
      a.check_only = true;
    } else if (arg == "--emit") {
      a.emit = true;
    } else if (arg == "--oracle") {
      a.oracle = true;
    } else if (arg == "--symmetry") {
      a.symmetry = true;
    } else if (arg == "--por") {
      a.por = true;
    } else if (arg == "--no-scenarios") {
      a.no_scenarios = true;
    } else if (arg == "--audit-validity") {
      a.audit_validity = true;
    } else if (arg == "--scenario" && (v = next())) {
      a.scenario = v;
    } else if (arg == "--trace" && (v = next())) {
      a.trace_file = v;
    } else if (arg == "--profile" && (v = next())) {
      a.profile_file = v;
    } else if (arg == "--nodes" && (v = next())) {
      a.nodes = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads" && (v = next())) {
      a.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--time-budget" && (v = next())) {
      a.time_budget_s = std::strtod(v, nullptr);
    } else if (arg == "--audit-every" && (v = next())) {
      a.audit_every = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (!arg.empty() && arg[0] != '-' && a.spec_path.empty()) {
      a.spec_path = arg;
    } else {
      return false;
    }
  }
  // --symmetry rides on the oracle's unreduced reference run; the plain
  // diff path compares EXACT violation sets against the global baseline,
  // which a reduced run intentionally does not reproduce.
  if (a.symmetry && !a.oracle) {
    std::fprintf(stderr, "error: --symmetry requires --oracle\n");
    return false;
  }
  if (a.por && !a.oracle) {
    std::fprintf(stderr, "error: --por requires --oracle\n");
    return false;
  }
  return !a.spec_path.empty();
}

Hash64 tuple_hash(const std::vector<Hash64>& tuple) {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (Hash64 nh : tuple) h = hash_combine(h, nh);
  return h;
}

/// Aggregated over the base run + every scenario; feeds the bench record.
struct RunTotals {
  std::uint64_t gmc_states = 0;
  std::uint64_t lmc_transitions = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t witnesses_replayed = 0;
  std::uint64_t disagreements = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t scenarios_run = 0;
};

/// Differential check from a snapshot (the base run passes the initial
/// state): global B-DFS vs LMC on identical starts, then node-state
/// completeness, verdict-set equality both ways, and witness replay.
/// Returns false on any disagreement.
bool diff_check_from(const char* label, const SystemConfig& cfg,
                     const dsl::DslInvariant* inv, const std::vector<Blob>& nodes,
                     const std::vector<Message>& in_flight, const Args& args,
                     obs::TraceSink* trace, obs::ProfileSink* profile, RunTotals& tot,
                     std::uint64_t* confirmed_out) {
  bool ok = true;
  auto fail = [&](const std::string& what) {
    if (ok) ++tot.disagreements;
    ok = false;
    std::printf("  DISAGREEMENT: %s\n", what.c_str());
  };

  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  gopt.assert_is_violation = false;  // match LMC's AssertPolicy::DiscardState
  gopt.max_transitions = 2'000'000;
  gopt.time_budget_s = args.time_budget_s;
  GlobalModelChecker g(cfg, inv, gopt);
  g.run(nodes, Network(in_flight));
  tot.gmc_states += g.stats().unique_states;
  if (!g.stats().completed) {
    ++tot.inconclusive;
    std::printf("  %s: inconclusive (global baseline hit a budget)\n", label);
    return true;
  }

  LocalMcOptions lopt;
  lopt.stop_on_confirmed = false;
  lopt.num_threads = args.threads;
  lopt.time_budget_s = args.time_budget_s;
  lopt.audit_validity = args.audit_validity;
  lopt.trace = trace;
  lopt.profile = profile;
  LocalModelChecker l(cfg, inv, lopt);
  try {
    l.run(nodes, in_flight);
  } catch (const ModelValidityError& e) {
    fail(std::string("model validity audit: ") + e.what());
    return false;
  }
  tot.lmc_transitions += l.stats().transitions;
  tot.confirmed += l.stats().confirmed_violations;
  if (confirmed_out != nullptr) *confirmed_out = l.stats().confirmed_violations;
  if (!l.stats().completed) {
    ++tot.inconclusive;
    std::printf("  %s: inconclusive (local checker hit a budget)\n", label);
    return true;
  }

  // Completeness: every node state inside a globally reached system tuple
  // was traversed locally.
  for (const auto& [h, tuple] : g.system_state_tuples()) {
    (void)h;
    for (NodeId n = 0; n < cfg.num_nodes; ++n)
      if (l.store().find(n, tuple[n]) == UINT32_MAX) {
        fail("node state reached globally but never traversed by LMC (node " +
             std::to_string(n) + ")");
        break;
      }
    if (!ok) break;
  }

  // Verdict sets must agree in both directions.
  std::unordered_map<Hash64, std::vector<Hash64>> gmc_viol;
  for (const GlobalViolation& v : g.violations()) {
    std::vector<Hash64> tuple;
    tuple.reserve(v.system_state.size());
    for (const Blob& b : v.system_state) tuple.push_back(hash_blob(b));
    gmc_viol.emplace(tuple_hash(tuple), std::move(tuple));
  }
  std::unordered_set<Hash64> lmc_confirmed;
  for (const LocalViolation& v : l.violations())
    if (v.confirmed) lmc_confirmed.insert(tuple_hash(v.state_hashes));
  for (const auto& [h, tuple] : gmc_viol) {
    (void)tuple;
    if (lmc_confirmed.count(h) == 0)
      fail("globally found violation missing from LMC's confirmed set");
  }
  for (const LocalViolation& v : l.violations()) {
    if (!v.confirmed) continue;
    if (gmc_viol.count(tuple_hash(v.state_hashes)) == 0)
      fail("LMC confirmed a violation the global search never reached");
  }

  // Witness replay: every confirmed violation re-executes through the real
  // handlers back to the claimed states.
  for (const LocalViolation& v : l.violations()) {
    if (!v.confirmed) continue;
    ReplayResult r = replay_schedule(cfg, l.initial_nodes(), l.initial_in_flight(), v.witness,
                                     l.events(), v.state_hashes);
    ++tot.witnesses_replayed;
    if (!r.ok) fail("witness replay failed: " + r.error);
  }

  std::printf("  %s: %s — %" PRIu64 " global states, %" PRIu64 " LMC transitions, %" PRIu64
              " confirmed violation(s), %" PRIu64 " global violation tuple(s)\n",
              label, ok ? "agree" : "DISAGREE", g.stats().unique_states,
              l.stats().transitions, l.stats().confirmed_violations,
              static_cast<std::uint64_t>(gmc_viol.size()));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  dsl::CompileOptions copts;
  if (args.nodes != 0) copts.override_nodes = args.nodes;
  dsl::LoadResult loaded = dsl::load_file(args.spec_path, copts);
  std::fputs(loaded.diags.to_string().c_str(), stderr);
  if (!loaded.ok()) return 2;
  const dsl::DslSpec& spec = *loaded.spec;

  if (args.emit) {
    std::fputs(dsl::to_lmc_text(spec).c_str(), stdout);
    return 0;
  }

  std::printf("%s: protocol '%s' — %u nodes, %zu states, %zu message types, %zu internal + "
              "%zu message rule(s), %zu invariant(s), %zu scenario(s)%s\n",
              args.spec_path.c_str(), spec.name.c_str(), spec.num_nodes, spec.states.size(),
              spec.messages.size(), spec.internals.size(), spec.msg_rules.size(),
              spec.invariants.size(), spec.scenarios.size(),
              spec.expect_violation ? " [expect violation]" : "");
  if (args.check_only) return 0;

  try {
    RunTotals tot;
    bool ok = true;
    obs::TraceSink trace;
    obs::TraceSink* trace_ptr = args.trace_file.empty() ? nullptr : &trace;
    obs::ProfileSink prof;
    obs::ProfileSink* prof_ptr = args.profile_file.empty() ? nullptr : &prof;

    // --- base run: from initial states, expectation enforced ----------------
    dsl::CompiledProtocol base = dsl::instantiate(spec);
    std::uint64_t base_confirmed = 0;
    if (args.oracle) {
      dfuzz::OracleOptions oopt;
      oopt.num_threads = args.threads;
      oopt.gmc_time_budget_s = args.time_budget_s;
      oopt.lmc_time_budget_s = args.time_budget_s;
      oopt.audit_every = args.audit_every;
      oopt.audit_validity = args.audit_validity;
      oopt.check_symmetry = args.symmetry;
      oopt.check_por = args.por;
      oopt.trace = trace_ptr;
      oopt.profile = prof_ptr;
      dfuzz::OracleReport rep = dfuzz::DiffOracle(oopt).check(base.cfg, base.invariant.get());
      tot.gmc_states += rep.gmc_states;
      tot.lmc_transitions += rep.lmc_transitions;
      tot.confirmed += rep.lmc_confirmed;
      tot.witnesses_replayed += rep.witnesses_replayed;
      base_confirmed = rep.lmc_confirmed;
      if (!rep.conclusive) {
        ++tot.inconclusive;
        std::printf("  base oracle: inconclusive (%s)\n", rep.detail.c_str());
      } else if (rep.ok) {
        std::printf("  base oracle: agree — %" PRIu64 " global states, %" PRIu64
                    " confirmed violation(s), %" PRIu64 " witness(es) replayed%s%s\n",
                    rep.gmc_states, rep.lmc_confirmed, rep.witnesses_replayed,
                    rep.opt_checked ? ", OPT path checked" : "",
                    rep.sym_checked ? ", symmetry reduction checked" : "");
        if (rep.sym_checked)
          std::printf("  symmetry: %" PRIu64 " orbit(s) materialized, %" PRIu64
                      " confirmed in the reduced run\n",
                      rep.sym_orbits, rep.sym_confirmed);
        if (rep.por_checked)
          std::printf("  por: %" PRIu64 " independent pair(s), %" PRIu64
                      " delivery(ies) pruned, %" PRIu64 " commutation audit(s), %" PRIu64
                      " confirmed in the reduced run\n",
                      rep.por_relation_pairs, rep.por_pruned, rep.por_audits,
                      rep.por_confirmed);
      } else {
        ++tot.disagreements;
        ok = false;
        std::printf("  base oracle: DISAGREEMENT [%s] %s\n", dfuzz::to_string(rep.failure),
                    rep.detail.c_str());
      }
    } else {
      std::vector<Blob> init = initial_states(base.cfg);
      ok = diff_check_from("base", base.cfg, base.invariant.get(), init, {}, args, trace_ptr,
                           prof_ptr, tot, &base_confirmed) &&
           ok;
    }

    // Expectation check (base run only: scenario preludes may or may not
    // steer into a buggy region, by design).
    if (spec.expect_violation && base_confirmed == 0) {
      ok = false;
      std::printf("  EXPECTATION FAILED: spec declares 'expect violation;' but the base run "
                  "confirmed none\n");
    } else if (!spec.expect_violation && base_confirmed > 0) {
      ok = false;
      std::printf("  EXPECTATION FAILED: base run confirmed %" PRIu64
                  " violation(s) but the spec declares none expected\n",
                  base_confirmed);
    }

    // --- scenario matrix ----------------------------------------------------
    if (!args.no_scenarios) {
      bool matched = false;
      for (const dsl::Scenario& sc : spec.scenarios) {
        if (!args.scenario.empty() && sc.name != args.scenario) continue;
        matched = true;
        ++tot.scenarios_run;

        // Re-elaborate at the scenario's node count (role ranges and
        // broadcasts are node-count-relative).
        dsl::CompileOptions scopts;
        scopts.override_nodes = sc.num_nodes;
        dsl::DiagList sdiags(args.spec_path);
        auto sspec = dsl::compile(*loaded.protocol, sdiags, scopts);
        if (!sspec) {
          std::fputs(sdiags.to_string().c_str(), stderr);
          std::printf("  scenario %s: spec does not elaborate at %u nodes\n", sc.name.c_str(),
                      sc.num_nodes);
          ok = false;
          continue;
        }
        dsl::CompiledProtocol p = dsl::instantiate(*sspec);

        LiveOptions lo;
        lo.seed = sc.seed;
        lo.transport.seed = sc.seed;
        lo.transport.drop_prob = sc.drop_pct / 100.0;
        lo.app_min = 0.0;
        lo.app_max = sc.app_max;
        lo.fifo_per_pair = sc.fifo;
        LiveRunner live(p.cfg, lo, first_enabled_driver());
        live.run_until(sc.sim_time);
        Snapshot snap = live.snapshot();
        std::printf("scenario %s: nodes=%u seed=%" PRIu64 " drop=%.0f%% — prelude delivered "
                    "%" PRIu64 " message(s), dropped %" PRIu64 ", %zu in flight\n",
                    sc.name.c_str(), sc.num_nodes, sc.seed, sc.drop_pct, live.delivered(),
                    live.transport().dropped(), snap.in_flight.size());
        if (live.assert_failures() > 0) {
          ok = false;
          std::printf("  LIVE ASSERT: %" PRIu64 " local assertion failure(s) in the prelude\n",
                      live.assert_failures());
        }
        ok = diff_check_from(sc.name.c_str(), p.cfg, p.invariant.get(), snap.nodes,
                             snap.in_flight, args, nullptr, nullptr, tot, nullptr) &&
             ok;
      }
      if (!args.scenario.empty() && !matched) {
        std::fprintf(stderr, "error: no scenario named '%s' in %s\n", args.scenario.c_str(),
                     args.spec_path.c_str());
        return 2;
      }
    }

    if (trace_ptr != nullptr) trace.write_jsonl(args.trace_file);
    if (prof_ptr != nullptr) prof.write_jsonl(args.profile_file);

    obs::BenchRecord rec("lmc_run", spec.name);
    rec.param("spec", args.spec_path);
    rec.param("threads", static_cast<std::uint64_t>(args.threads));
    rec.param("oracle", static_cast<std::uint64_t>(args.oracle ? 1 : 0));
    rec.metric("scenarios_run", tot.scenarios_run);
    rec.metric("gmc_states", tot.gmc_states);
    rec.metric("lmc_transitions", tot.lmc_transitions);
    rec.metric("confirmed_violations", tot.confirmed);
    rec.metric("witnesses_replayed", tot.witnesses_replayed);
    rec.metric("disagreements", tot.disagreements);
    rec.metric("inconclusive", tot.inconclusive);
    rec.emit();

    std::printf("lmc_run: %s — %" PRIu64 " scenario(s), %" PRIu64 " disagreement(s), %" PRIu64
                " witness(es) replayed\n",
                ok ? "OK" : "FAILED", tot.scenarios_run, tot.disagreements,
                tot.witnesses_replayed);
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
