#include "dsl/interp.hpp"

#include <algorithm>
#include <stdexcept>

#include "mc/symmetry/role_group.hpp"
#include "runtime/hash.hpp"

namespace lmc::dsl {

namespace {

bool in_set(const std::vector<std::uint32_t>& set, std::uint32_t s) {
  return std::binary_search(set.begin(), set.end(), s);
}

}  // namespace

// --- node -------------------------------------------------------------------

void DslNode::apply(const SpecAction& a, Context& ctx, NodeId sender, bool have_sender) {
  for (const SpecSend& s : a.sends) {
    NodeId dst = s.dst;
    if (s.to_sender) {
      if (!have_sender) {
        // Compile-time rule DSL06 makes this unreachable from .lmc source.
        ctx.local_assert(false, "dsl: 'sender' destination outside a message handler");
        return;
      }
      dst = sender;
    }
    Writer w;
    w.u32(s.tag);
    ctx.send(dst, s.type, std::move(w).take());
  }
  // Sends precede the assert: the messages are real traffic even when the
  // successor state is discarded (the order Fig. 9's addNextState pins).
  if (a.fail_assert)
    ctx.local_assert(false, a.assert_msg.empty() ? "dsl: assert false" : a.assert_msg);
  state_ = a.goto_state;
}

void DslNode::handle_message(const Message& m, Context& ctx) {
  for (const SpecMsgRule& r : spec_->msg_rules) {
    if (r.node != self_ || r.type != m.type || r.guard_state != state_) continue;
    // Fold the consumed message's identity into the digest BEFORE applying:
    // a matched delivery always changes the blob (strict state progress
    // already guarantees that, the digest additionally separates
    // same-progress paths that consumed different messages or the same
    // message from different senders — src IS folded, the seed-664 lesson).
    // The destination is deliberately NOT folded: it equals self_ for every
    // delivered message, so it adds no information but would bake the
    // node's own id into the blob and defeat symmetry-class blob alignment.
    Hash64 d = hash_combine(static_cast<Hash64>(m.src), static_cast<Hash64>(m.type));
    d = hash_combine(d, hash_bytes(m.payload.data(), m.payload.size()));
    digest_ ^= mix64(d + 0x6d4f);
    apply(r.action, ctx, m.src, /*have_sender=*/true);
    return;
  }
  // No matching rule: the delivery is a silent no-op. I+ offers every
  // message to every state of its destination, so this must not assert.
}

std::vector<InternalEvent> DslNode::enabled_internal_events() const {
  // The event kind stays the GLOBAL rule index (event identity must be
  // unambiguous across nodes), but the fired_ bit is the rule's position
  // among self_'s own rules — so two nodes with mirrored rule tables at
  // different global offsets still produce identical blobs.
  std::vector<InternalEvent> evs;
  std::uint32_t local = 0;
  for (std::size_t i = 0; i < spec_->internals.size(); ++i) {
    const SpecInternalRule& r = spec_->internals[i];
    if (r.node != self_) continue;
    const std::uint32_t bit = local++;
    if (r.guard_state != state_) continue;
    if ((fired_ & (1u << bit)) != 0) continue;
    evs.push_back(InternalEvent{static_cast<std::uint32_t>(i) + 1, {}});
  }
  return evs;
}

void DslNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  const std::size_t idx = ev.kind - 1;
  if (idx >= spec_->internals.size()) {
    ctx.local_assert(false, "dsl: unknown internal rule");
    return;
  }
  const SpecInternalRule& r = spec_->internals[idx];
  std::uint32_t bit = 0;
  for (std::size_t k = 0; k < idx; ++k)
    if (spec_->internals[k].node == self_) ++bit;
  if (r.node != self_ || r.guard_state != state_ || (fired_ & (1u << bit)) != 0) {
    ctx.local_assert(false, "dsl: internal rule not enabled");
    return;
  }
  fired_ |= 1u << bit;
  apply(r.action, ctx, 0, /*have_sender=*/false);
}

void DslNode::serialize(Writer& w) const {
  w.u32(state_);
  w.u32(fired_);
  w.u64(digest_);
}

void DslNode::deserialize(Reader& r) {
  state_ = r.u32();
  fired_ = r.u32();
  digest_ = r.u64();
}

std::uint32_t dsl_state_of(const Blob& state) {
  Reader r(state);
  return r.u32();
}

// --- invariant --------------------------------------------------------------

std::string DslInvariant::name() const { return "dsl." + spec_->name; }

std::string DslInvariant::first_violated(const SystemStateView& sys) const {
  std::vector<std::uint32_t> st(sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) st[i] = dsl_state_of(*sys[i]);
  for (const SpecInvariant& inv : spec_->invariants) {
    for (std::size_t i = 0; i < st.size(); ++i) {
      for (std::size_t j = i + 1; j < st.size(); ++j) {
        if (inv.before) {
          // Ordered: a lower-indexed node in A while a higher one is in B.
          if (in_set(inv.a, st[i]) && in_set(inv.b, st[j])) return inv.name;
        } else {
          // Symmetric mutual exclusion across two distinct nodes.
          if ((in_set(inv.a, st[i]) && in_set(inv.b, st[j])) ||
              (in_set(inv.a, st[j]) && in_set(inv.b, st[i])))
            return inv.name;
        }
      }
    }
  }
  return "";
}

bool DslInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  return first_violated(sys).empty();
}

bool DslInvariant::symmetric_under(const std::vector<std::vector<NodeId>>&) const {
  // `never A with B` scans unordered node pairs — invariant under any
  // permutation. `never A before B` compares node POSITIONS, so permuting
  // ids changes the verdict: reject symmetry outright when any invariant
  // is ordered.
  for (const SpecInvariant& inv : spec_->invariants)
    if (inv.before) return false;
  return true;
}

bool DslInvariant::has_projection() const {
  if (spec_->invariants.empty()) return false;
  for (const SpecInvariant& inv : spec_->invariants)
    if (!inv.projected) return false;
  return true;
}

Projection DslInvariant::project(const SystemConfig&, NodeId n, const Blob& state) const {
  // Invariant k contributes key 2k when the node sits in A and key 2k+1 when
  // in B; the value is the node id so 'before' can order the pair. States in
  // no invariant's sets project empty and never participate (LMC-OPT skips
  // them entirely).
  const std::uint32_t s = dsl_state_of(state);
  Projection p;
  for (std::size_t k = 0; k < spec_->invariants.size(); ++k) {
    const SpecInvariant& inv = spec_->invariants[k];
    if (in_set(inv.a, s)) p.emplace_back(2 * k, n);
    if (in_set(inv.b, s)) p.emplace_back(2 * k + 1, n);
  }
  return p;
}

bool DslInvariant::projections_conflict(const Projection& a, const Projection& b) const {
  auto get = [](const Projection& p, std::uint64_t key, std::uint64_t& val) {
    for (const auto& [k, v] : p) {
      if (k == key) {
        val = v;
        return true;
      }
    }
    return false;
  };
  for (std::size_t k = 0; k < spec_->invariants.size(); ++k) {
    const SpecInvariant& inv = spec_->invariants[k];
    std::uint64_t ia = 0, jb = 0;
    if (inv.before) {
      // Conflict iff the A-node precedes the B-node (check both argument
      // orders: the pair scan is unordered).
      if (get(a, 2 * k, ia) && get(b, 2 * k + 1, jb) && ia < jb) return true;
      if (get(b, 2 * k, ia) && get(a, 2 * k + 1, jb) && ia < jb) return true;
    } else {
      // Distinct nodes in A x B — the value check rules out the one case
      // a single node's own A and B memberships could look like a pair.
      if (get(a, 2 * k, ia) && get(b, 2 * k + 1, jb) && ia != jb) return true;
      if (get(b, 2 * k, ia) && get(a, 2 * k + 1, jb) && ia != jb) return true;
    }
  }
  return false;
}

// --- instantiation ----------------------------------------------------------

std::vector<std::vector<NodeId>> infer_symmetric_roles(const DslSpec& spec) {
  std::vector<symmetry::NodeSig> sigs(spec.num_nodes);
  auto sig_action = [](symmetry::RuleSig& sig, const SpecAction& a) {
    sig.goto_state = a.goto_state;
    sig.fail_assert = a.fail_assert;
    for (const SpecSend& s : a.sends)
      sig.sends.push_back(symmetry::SigSend{s.to_sender, s.dst, s.type});
  };
  for (const SpecInternalRule& r : spec.internals) {
    symmetry::RuleSig sig;
    sig.guard = r.guard_state;
    sig_action(sig, r.action);
    sigs[r.node].internals.push_back(std::move(sig));
  }
  for (const SpecMsgRule& r : spec.msg_rules) {
    symmetry::RuleSig sig;
    sig.trigger = r.type;
    sig.guard = r.guard_state;
    sig_action(sig, r.action);
    sigs[r.node].msgs.push_back(std::move(sig));
  }
  return symmetry::infer_classes(sigs);
}

// Footprint extraction (runtime/footprint.hpp): every elaborated rule is a
// guarded state transition, so the table flavor captures it exactly. The
// internal-event key convention matches enabled_internal_events(): global
// rule index + 1. Message types with no row at a node get a null-handler
// entry — a delivery of that type is a guaranteed no-op there.
std::shared_ptr<const ProtocolFootprints> extract_footprints(const DslSpec& spec) {
  auto fp = std::make_shared<ProtocolFootprints>();
  fp->nodes.resize(spec.num_nodes);
  for (NodeId n = 0; n < spec.num_nodes; ++n) {
    NodeFootprints& nf = fp->nodes[n];
    nf.node = n;
    nf.complete = true;
    for (std::size_t i = 0; i < spec.internals.size(); ++i) {
      const SpecInternalRule& r = spec.internals[i];
      if (r.node != n) continue;
      RuleFootprint rf;
      rf.is_message = false;
      rf.key = static_cast<std::uint32_t>(i) + 1;
      rf.label = r.label.empty() ? "internal#" + std::to_string(i) : r.label;
      rf.guard_states.push_back(r.guard_state);
      rf.goto_states.push_back(r.action.goto_state);
      rf.fire_once = true;
      rf.sends = !r.action.sends.empty();
      rf.asserts = r.action.fail_assert;
      nf.rules.push_back(std::move(rf));
    }
    for (std::uint32_t t = 0; t < spec.messages.size(); ++t) {
      bool any = false;
      for (const SpecMsgRule& r : spec.msg_rules) {
        if (r.node != n || r.type != t) continue;
        any = true;
        RuleFootprint rf;
        rf.is_message = true;
        rf.key = t;
        rf.label = spec.messages[t];
        rf.guard_states.push_back(r.guard_state);
        rf.goto_states.push_back(r.action.goto_state);
        rf.sends = !r.action.sends.empty();
        rf.asserts = r.action.fail_assert;
        nf.rules.push_back(std::move(rf));
      }
      if (!any) {
        RuleFootprint rf;
        rf.is_message = true;
        rf.key = t;
        rf.label = spec.messages[t];
        nf.rules.push_back(std::move(rf));
      }
    }
  }
  return fp;
}

CompiledProtocol instantiate(const DslSpec& spec) {
  if (std::string err = validate(spec); !err.empty())
    throw std::invalid_argument("dsl: invalid spec '" + spec.name + "': " + err);
  CompiledProtocol p;
  p.spec = std::make_shared<const DslSpec>(spec);
  p.cfg.num_nodes = spec.num_nodes;
  p.cfg.symmetric_roles = infer_symmetric_roles(spec);
  p.cfg.footprints = extract_footprints(spec);
  std::shared_ptr<const DslSpec> shared = p.spec;
  p.cfg.factory = [shared](NodeId self, std::uint32_t) {
    return std::make_unique<DslNode>(self, shared);
  };
  p.invariant = std::make_unique<DslInvariant>(p.spec);
  return p;
}

}  // namespace lmc::dsl
