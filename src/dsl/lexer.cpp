#include "dsl/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace lmc::dsl {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer";
    case Tok::kNumber: return "number";
    case Tok::kString: return "string";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kArrow: return "'->'";
    case Tok::kAt: return "'@'";
    case Tok::kDotDot: return "'..'";
    case Tok::kEquals: return "'='";
    case Tok::kMinus: return "'-'";
    case Tok::kEof: return "end of file";
  }
  return "?";
}

std::vector<Token> lex(std::string_view text, DiagList& diags) {
  std::vector<Token> out;
  std::uint32_t line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto peek = [&](std::size_t k = 0) -> char { return i + k < n ? text[i + k] : '\0'; };
  auto advance = [&]() {
    if (text[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](Tok kind, SrcLoc loc, std::string t = {}) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(t);
    tok.loc = loc;
    out.push_back(std::move(tok));
  };

  while (i < n) {
    const char c = peek();
    const SrcLoc loc{line, col};

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {  // comment to end of line
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (ident_start(c)) {
      std::string s;
      while (i < n && ident_char(peek())) {
        s += peek();
        advance();
      }
      push(Tok::kIdent, loc, std::move(s));
      continue;
    }
    if (digit(c)) {
      std::string s;
      while (i < n && digit(peek())) {
        s += peek();
        advance();
      }
      bool is_float = false;
      // '..' after digits is a range operator, a single '.' starts a fraction
      if (peek() == '.' && digit(peek(1))) {
        is_float = true;
        s += peek();
        advance();
        while (i < n && digit(peek())) {
          s += peek();
          advance();
        }
      }
      Token tok;
      tok.kind = is_float ? Tok::kNumber : Tok::kInt;
      tok.text = s;
      tok.num_value = std::strtod(s.c_str(), nullptr);
      if (!is_float) tok.int_value = std::strtoull(s.c_str(), nullptr, 10);
      tok.loc = loc;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance();
      std::string s;
      bool closed = false;
      while (i < n) {
        char d = peek();
        if (d == '"') {
          advance();
          closed = true;
          break;
        }
        if (d == '\\' && (peek(1) == '"' || peek(1) == '\\')) {
          advance();
          d = peek();
        }
        if (d == '\n') break;  // strings do not span lines
        s += d;
        advance();
      }
      if (!closed) diags.error(loc, "unterminated string literal");
      push(Tok::kString, loc, std::move(s));
      continue;
    }
    switch (c) {
      case '{': advance(); push(Tok::kLBrace, loc); continue;
      case '}': advance(); push(Tok::kRBrace, loc); continue;
      case ',': advance(); push(Tok::kComma, loc); continue;
      case ';': advance(); push(Tok::kSemi, loc); continue;
      case ':': advance(); push(Tok::kColon, loc); continue;
      case '@': advance(); push(Tok::kAt, loc); continue;
      case '=': advance(); push(Tok::kEquals, loc); continue;
      case '-':
        if (peek(1) == '>') {
          advance();
          advance();
          push(Tok::kArrow, loc);
        } else {
          advance();
          push(Tok::kMinus, loc);
        }
        continue;
      case '.':
        if (peek(1) == '.') {
          advance();
          advance();
          push(Tok::kDotDot, loc);
          continue;
        }
        [[fallthrough]];
      default:
        diags.error(loc, std::string("unexpected character '") + c + "'");
        advance();
        continue;
    }
  }
  push(Tok::kEof, {line, col});
  return out;
}

}  // namespace lmc::dsl
