// Elaborated form of a .lmc protocol: every handler expanded to concrete
// per-node rules for a fixed node count, names resolved to dense indices,
// payload tags assigned. This is the layer the interpreter (interp.hpp)
// executes and the ProtoGen bridge (bridge.hpp) maps to `dfuzz::ProtoSpec`.
//
// The shape deliberately mirrors dfuzz's rule tables — fire-once internal
// rules, strictly-monotone message rules, fixed sends — because those are
// exactly the structural properties that keep a protocol inside the local
// model's documented completeness envelope. The one extension over dfuzz is
// `SpecSend::to_sender`: a reply destination resolved from the delivered
// message at execution time (still deterministic — the sender is part of
// the event, not hidden state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace lmc::dsl {

/// One elaborated message emission. Destination is either fixed (`dst`) or
/// the delivering message's source (`to_sender`, message handlers only).
struct SpecSend {
  bool to_sender = false;
  NodeId dst = 0;
  std::uint32_t type = 0;
  std::uint32_t tag = 0;  ///< payload discriminator (explicit or auto-assigned)
  bool operator==(const SpecSend&) const = default;
};

struct SpecAction {
  std::uint32_t goto_state = 0;
  std::vector<SpecSend> sends;
  bool fail_assert = false;
  std::string assert_msg;
  bool operator==(const SpecAction&) const = default;
};

/// Fire-once internal/timer rule (HA). `label` survives elaboration for
/// diagnostics and canonical text emission.
struct SpecInternalRule {
  NodeId node = 0;
  std::uint32_t guard_state = 0;
  SpecAction action;
  std::string label;
  bool operator==(const SpecInternalRule&) const = default;
};

/// Guarded message rule (HM); goto is strictly above the guard.
struct SpecMsgRule {
  NodeId node = 0;
  std::uint32_t type = 0;
  std::uint32_t guard_state = 0;
  SpecAction action;
  bool operator==(const SpecMsgRule&) const = default;
};

/// `never A with B`: no two distinct nodes simultaneously in A x B.
/// `never A before B`: no pair i < j with node i in A and node j in B
/// (chain-style ordering properties). State sets are sorted and deduped.
struct SpecInvariant {
  std::string name;
  bool before = false;
  bool projected = false;  ///< expose a pairwise projection (LMC-OPT path)
  std::vector<std::uint32_t> a, b;
  bool operator==(const SpecInvariant&) const = default;
};

/// A seeded lossy-transport/timer prelude: run the protocol live under
/// SimTransport for `sim_time`, snapshot, and model-check from there.
struct Scenario {
  std::string name;
  std::uint32_t num_nodes = 0;  ///< may differ from the protocol default
  std::uint64_t seed = 1;
  double drop_pct = 30.0;
  double sim_time = 30.0;
  double app_max = 10.0;
  bool fifo = false;
  bool operator==(const Scenario&) const = default;
};

struct DslSpec {
  std::string name;
  std::uint64_t seed = 0;  ///< provenance metadata (dfuzz repro seed)
  bool expect_violation = false;
  std::uint32_t num_nodes = 0;
  std::vector<std::string> states;    ///< index == numeric state; [0] is initial
  std::vector<std::string> messages;  ///< index == message type
  std::vector<SpecInternalRule> internals;
  std::vector<SpecMsgRule> msg_rules;
  std::vector<SpecInvariant> invariants;
  std::vector<Scenario> scenarios;

  bool operator==(const DslSpec&) const = default;
};

/// Loc-less structural re-check of an elaborated spec (defense in depth for
/// specs built programmatically, e.g. by the ProtoGen bridge). Compilation
/// from source reports the same conditions with positions. Empty == valid.
std::string validate(const DslSpec& spec);

/// Canonical fully-elaborated .lmc text: one rule per line with explicit
/// `at <node>` selectors and explicit `tag` values. Parsing and compiling
/// this text reproduces the spec exactly (the round-trip tests pin this),
/// which is what makes dfuzz repro artifacts readable *and* executable.
std::string to_lmc_text(const DslSpec& spec);

}  // namespace lmc::dsl
