#include "dsl/parser.hpp"

#include <utility>

#include "dsl/lexer.hpp"

namespace lmc::dsl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagList& diags) : toks_(std::move(toks)), diags_(diags) {}

  std::optional<ast::Protocol> run() {
    ast::Protocol p;
    if (!expect_kw("protocol")) return std::nullopt;
    p.loc = prev().loc;
    if (!expect(Tok::kIdent, "protocol name")) return std::nullopt;
    p.name = prev().text;
    if (!expect(Tok::kLBrace, "'{'")) return std::nullopt;
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) top_level(p);
    expect(Tok::kRBrace, "'}'");
    if (at_kw("protocol"))
      diags_.error(cur().loc, "only one protocol per .lmc file");
    if (p.nodes == 0 && diags_.ok())
      diags_.error(p.loc, "protocol is missing a 'nodes N;' declaration");
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& prev() const { return toks_[pos_ == 0 ? 0 : pos_ - 1]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_kw(std::string_view kw) const { return at(Tok::kIdent) && cur().text == kw; }
  void advance() {
    if (!at(Tok::kEof)) ++pos_;
  }
  bool accept(Tok k) {
    if (!at(k)) return false;
    advance();
    return true;
  }
  bool accept_kw(std::string_view kw) {
    if (!at_kw(kw)) return false;
    advance();
    return true;
  }
  bool expect(Tok k, const char* what) {
    if (accept(k)) return true;
    diags_.error(cur().loc, std::string("expected ") + what + ", got " + tok_name(cur().kind) +
                                (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
    return false;
  }
  bool expect_kw(const char* kw) {
    if (accept_kw(kw)) return true;
    diags_.error(cur().loc, std::string("expected '") + kw + "', got " + tok_name(cur().kind) +
                                (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
    return false;
  }

  /// Skip to just past the next ';' (or stop before '}'/EOF) after an error.
  void sync() {
    while (!at(Tok::kEof) && !at(Tok::kRBrace)) {
      if (accept(Tok::kSemi)) return;
      advance();
    }
  }
  /// Skip a whole brace-balanced block we gave up on.
  void sync_block() {
    int depth = 0;
    while (!at(Tok::kEof)) {
      if (at(Tok::kLBrace)) ++depth;
      if (at(Tok::kRBrace)) {
        if (depth == 0) return;
        if (--depth == 0) {
          advance();
          return;
        }
      }
      advance();
    }
  }

  void top_level(ast::Protocol& p) {
    const SrcLoc loc = cur().loc;
    if (accept_kw("nodes")) {
      if (expect(Tok::kInt, "node count")) {
        p.nodes = static_cast<std::uint32_t>(prev().int_value);
        p.nodes_loc = loc;
        if (p.nodes == 0) diags_.error(loc, "node count must be at least 1");
      }
      expect(Tok::kSemi, "';'");
      return;
    }
    if (accept_kw("seed")) {
      if (expect(Tok::kInt, "seed value")) p.seed = prev().int_value;
      expect(Tok::kSemi, "';'");
      return;
    }
    if (accept_kw("expect")) {
      if (expect_kw("violation")) p.expect_violation = true;
      expect(Tok::kSemi, "';'");
      return;
    }
    if (accept_kw("states")) {
      name_list(p.states, p.state_locs, "state name");
      return;
    }
    if (accept_kw("messages")) {
      name_list(p.messages, p.message_locs, "message name");
      return;
    }
    if (accept_kw("role")) {
      role_decl(p);
      return;
    }
    if (at_kw("on") || at_kw("internal") || at_kw("timer")) {
      handler(p);
      return;
    }
    if (accept_kw("invariant")) {
      invariant(p);
      return;
    }
    if (accept_kw("scenario")) {
      scenario(p);
      return;
    }
    diags_.error(loc, "expected a declaration (nodes, seed, states, messages, role, on, "
                      "internal, timer, invariant, scenario or expect), got " +
                          std::string(tok_name(cur().kind)) +
                          (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
    advance();
    sync();
  }

  void name_list(std::vector<std::string>& names, std::vector<SrcLoc>& locs, const char* what) {
    do {
      if (!expect(Tok::kIdent, what)) {
        sync();
        return;
      }
      names.push_back(prev().text);
      locs.push_back(prev().loc);
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "';'");
  }

  void role_decl(ast::Protocol& p) {
    ast::RoleDecl r;
    r.loc = prev().loc;
    if (!expect(Tok::kIdent, "role name")) {
      sync();
      return;
    }
    r.name = prev().text;
    if (!expect(Tok::kEquals, "'='")) {
      sync();
      return;
    }
    if (auto sel = selector()) {
      r.sel = *sel;
      p.roles.push_back(std::move(r));
    }
    expect(Tok::kSemi, "';'");
  }

  /// `all` | role-ident | nodeexpr | nodeexpr `..` nodeexpr
  std::optional<ast::Selector> selector() {
    ast::Selector s;
    s.loc = cur().loc;
    if (accept_kw("all")) {
      s.kind = ast::Selector::Kind::kAll;
      return s;
    }
    if (at(Tok::kInt) || at_kw("n")) {
      s.kind = ast::Selector::Kind::kRange;
      auto lo = node_expr();
      if (!lo) return std::nullopt;
      s.lo = *lo;
      s.hi = *lo;
      if (accept(Tok::kDotDot)) {
        auto hi = node_expr();
        if (!hi) return std::nullopt;
        s.hi = *hi;
      }
      return s;
    }
    if (at(Tok::kIdent)) {
      s.kind = ast::Selector::Kind::kRole;
      s.role = cur().text;
      advance();
      return s;
    }
    diags_.error(cur().loc, std::string("expected a node selector (all, a role name, or a "
                                        "node range), got ") +
                                tok_name(cur().kind));
    return std::nullopt;
  }

  /// INT | `n` | `n - INT`
  std::optional<ast::NodeExpr> node_expr() {
    ast::NodeExpr e;
    e.loc = cur().loc;
    if (accept(Tok::kInt)) {
      e.value = static_cast<std::int64_t>(prev().int_value);
      return e;
    }
    if (accept_kw("n")) {
      e.rel_n = true;
      if (accept(Tok::kMinus)) {
        if (!expect(Tok::kInt, "integer after 'n -'")) return std::nullopt;
        e.value = static_cast<std::int64_t>(prev().int_value);
      }
      return e;
    }
    diags_.error(cur().loc, std::string("expected a node index (an integer or 'n - k'), got ") +
                                tok_name(cur().kind));
    return std::nullopt;
  }

  void handler(ast::Protocol& p) {
    ast::Handler h;
    h.loc = cur().loc;
    if (accept_kw("on")) {
      h.is_message = true;
    } else if (accept_kw("internal") || accept_kw("timer")) {
      h.is_message = false;
    }
    if (!expect(Tok::kIdent, h.is_message ? "message name" : "handler label")) {
      sync();
      return;
    }
    h.trigger = prev().text;
    if (accept_kw("at")) {
      auto sel = selector();
      if (!sel) {
        sync();
        return;
      }
      h.at = *sel;
    }
    if (!expect(Tok::kAt, "'@' before the guard state")) {
      sync();
      return;
    }
    if (!expect(Tok::kIdent, "guard state")) {
      sync();
      return;
    }
    h.guard = prev().text;
    if (!expect(Tok::kArrow, "'->'")) {
      sync();
      return;
    }
    if (!expect(Tok::kIdent, "target state")) {
      sync();
      return;
    }
    h.target = prev().text;
    h.target_loc = prev().loc;
    if (accept(Tok::kSemi)) {
      p.handlers.push_back(std::move(h));
      return;
    }
    if (!expect(Tok::kLBrace, "'{' or ';'")) {
      sync();
      return;
    }
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) action(h);
    expect(Tok::kRBrace, "'}'");
    p.handlers.push_back(std::move(h));
  }

  void action(ast::Handler& h) {
    const SrcLoc loc = cur().loc;
    if (accept_kw("send")) {
      ast::SendAct s;
      s.loc = loc;
      if (!expect(Tok::kIdent, "message name")) {
        sync();
        return;
      }
      s.msg = prev().text;
      if (!expect_kw("to")) {
        sync();
        return;
      }
      auto d = dst();
      if (!d) {
        sync();
        return;
      }
      s.dst = *d;
      if (accept_kw("tag")) {
        if (expect(Tok::kInt, "tag value"))
          s.tag = static_cast<std::uint32_t>(prev().int_value);
      }
      expect(Tok::kSemi, "';'");
      h.sends.push_back(std::move(s));
      return;
    }
    if (accept_kw("assert")) {
      if (expect_kw("false")) {
        h.fail_assert = true;
        if (at(Tok::kString)) {
          h.assert_msg = cur().text;
          advance();
        }
      }
      expect(Tok::kSemi, "';'");
      return;
    }
    diags_.error(loc, "expected an action ('send' or 'assert'), got " +
                          std::string(tok_name(cur().kind)) +
                          (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
    advance();
    sync();
  }

  /// `node INT` | `sender` | `others` | `all` | `next` | `prev` | role-ident
  std::optional<ast::Dst> dst() {
    ast::Dst d;
    d.loc = cur().loc;
    if (accept_kw("node")) {
      d.kind = ast::Dst::Kind::kNode;
      auto e = node_expr();
      if (!e) return std::nullopt;
      d.node = *e;
      return d;
    }
    if (accept_kw("sender")) {
      d.kind = ast::Dst::Kind::kSender;
      return d;
    }
    if (accept_kw("others")) {
      d.kind = ast::Dst::Kind::kOthers;
      return d;
    }
    if (accept_kw("all")) {
      d.kind = ast::Dst::Kind::kAll;
      return d;
    }
    if (accept_kw("next")) {
      d.kind = ast::Dst::Kind::kNext;
      return d;
    }
    if (accept_kw("prev")) {
      d.kind = ast::Dst::Kind::kPrev;
      return d;
    }
    if (at(Tok::kIdent)) {
      d.kind = ast::Dst::Kind::kRole;
      d.role = cur().text;
      advance();
      return d;
    }
    diags_.error(cur().loc,
                 std::string("expected a destination (node K, sender, others, all, next, "
                             "prev, or a role name), got ") +
                     tok_name(cur().kind));
    return std::nullopt;
  }

  void invariant(ast::Protocol& p) {
    ast::InvariantDecl inv;
    inv.loc = prev().loc;
    if (!expect(Tok::kIdent, "invariant name")) {
      sync();
      return;
    }
    inv.name = prev().text;
    if (!expect(Tok::kColon, "':'") || !expect_kw("never")) {
      sync();
      return;
    }
    if (!state_set(inv.a, inv.a_locs)) {
      sync();
      return;
    }
    if (accept_kw("with")) {
      inv.before = false;
    } else if (accept_kw("before")) {
      inv.before = true;
    } else {
      diags_.error(cur().loc, std::string("expected 'with' or 'before', got ") +
                                  tok_name(cur().kind) +
                                  (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
      sync();
      return;
    }
    if (!state_set(inv.b, inv.b_locs)) {
      sync();
      return;
    }
    if (accept_kw("projected")) inv.projected = true;
    expect(Tok::kSemi, "';'");
    p.invariants.push_back(std::move(inv));
  }

  /// STATE | `{` STATE (`,` STATE)* `}`
  bool state_set(std::vector<std::string>& out, std::vector<SrcLoc>& locs) {
    if (accept(Tok::kLBrace)) {
      do {
        if (!expect(Tok::kIdent, "state name")) return false;
        out.push_back(prev().text);
        locs.push_back(prev().loc);
      } while (accept(Tok::kComma));
      return expect(Tok::kRBrace, "'}'");
    }
    if (!expect(Tok::kIdent, "state name")) return false;
    out.push_back(prev().text);
    locs.push_back(prev().loc);
    return true;
  }

  void scenario(ast::Protocol& p) {
    ast::ScenarioDecl sc;
    sc.loc = prev().loc;
    if (!expect(Tok::kIdent, "scenario name")) {
      sync_block();
      return;
    }
    sc.name = prev().text;
    if (!expect(Tok::kLBrace, "'{'")) {
      sync_block();
      return;
    }
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
      const SrcLoc loc = cur().loc;
      if (accept_kw("nodes")) {
        if (expect(Tok::kInt, "node count")) {
          sc.nodes = static_cast<std::uint32_t>(prev().int_value);
          if (*sc.nodes == 0) diags_.error(loc, "node count must be at least 1");
        }
        expect(Tok::kSemi, "';'");
        continue;
      }
      if (accept_kw("seed")) {
        if (expect(Tok::kInt, "seed value")) sc.seed = prev().int_value;
        expect(Tok::kSemi, "';'");
        continue;
      }
      if (accept_kw("fifo")) {
        sc.fifo = true;
        expect(Tok::kSemi, "';'");
        continue;
      }
      double* field = nullptr;
      if (accept_kw("drop")) field = &sc.drop_pct;
      else if (accept_kw("sim_time")) field = &sc.sim_time;
      else if (accept_kw("app_max")) field = &sc.app_max;
      if (field != nullptr) {
        if (at(Tok::kInt) || at(Tok::kNumber)) {
          *field = cur().num_value;
          advance();
        } else {
          diags_.error(cur().loc,
                       std::string("expected a number, got ") + tok_name(cur().kind));
        }
        expect(Tok::kSemi, "';'");
        continue;
      }
      diags_.error(loc, "expected a scenario setting (nodes, seed, drop, sim_time, app_max "
                        "or fifo), got " +
                            std::string(tok_name(cur().kind)) +
                            (at(Tok::kIdent) ? " '" + cur().text + "'" : ""));
      advance();
      sync();
    }
    expect(Tok::kRBrace, "'}'");
    p.scenarios.push_back(std::move(sc));
  }

  std::vector<Token> toks_;
  DiagList& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<ast::Protocol> parse(std::string_view text, DiagList& diags) {
  std::vector<Token> toks = lex(text, diags);
  Parser p(std::move(toks), diags);
  return p.run();
}

}  // namespace lmc::dsl
