// Bridge between dfuzz's binary ProtoSpec tables and the .lmc text format.
//
// ProtoSpec is exactly the DSL's "core fragment": fixed destinations, one
// anonymous mutual-exclusion invariant, no scenarios. Mapping a ProtoSpec
// through `.lmc` text and back is the identity up to dropping shadowed
// (dead-under-first-match) message rules, which the DSL rejects as DSL04
// (the round-trip test pins `parse(to_lmc_text(from_proto(s)))` ==
// `drop_shadowed_rules(s)` via ProtoSpec::operator==), which
// is what makes dfuzz repro artifacts simultaneously human-readable specs
// and byte-exact reproducers: the re-parsed spec instantiates through the
// same GenNode interpreter, so its normalized checkpoints are identical to
// the original run's.
#pragma once

#include <optional>
#include <string>

#include "dfuzz/protogen.hpp"
#include "dsl/spec.hpp"

namespace lmc::dsl {

/// Lift a dfuzz rule table into an elaborated DSL spec with synthesized
/// names (states s0..s{K-1}, messages m0..m{M-1}, internal labels r0..).
DslSpec from_proto(const dfuzz::ProtoSpec& spec);

/// Lower a spec back to a ProtoSpec. Fails (returning nullopt and setting
/// `err`) outside the core fragment: sender-relative sends, multiple or
/// 'before' invariants, or non-singleton invariant state sets.
std::optional<dfuzz::ProtoSpec> to_proto(const DslSpec& spec, std::string& err);

}  // namespace lmc::dsl
