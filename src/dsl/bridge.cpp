#include "dsl/bridge.hpp"

namespace lmc::dsl {

namespace {

SpecAction lift_action(const dfuzz::RuleAction& a) {
  SpecAction out;
  out.goto_state = a.goto_state;
  out.fail_assert = a.fail_assert;
  for (const dfuzz::SendAction& s : a.sends) {
    SpecSend send;
    send.dst = s.dst;
    send.type = s.type;
    send.tag = s.tag;
    out.sends.push_back(send);
  }
  return out;
}

std::optional<dfuzz::RuleAction> lower_action(const SpecAction& a, std::string& err) {
  dfuzz::RuleAction out;
  out.goto_state = a.goto_state;
  out.fail_assert = a.fail_assert;
  for (const SpecSend& s : a.sends) {
    if (s.to_sender) {
      err = "sender-relative send (outside the ProtoSpec core fragment)";
      return std::nullopt;
    }
    dfuzz::SendAction send;
    send.dst = s.dst;
    send.type = s.type;
    send.tag = s.tag;
    out.sends.push_back(send);
  }
  return out;
}

}  // namespace

DslSpec from_proto(const dfuzz::ProtoSpec& raw) {
  // Canonicalize first: shadowed (dead) message rules would trip DSL04 when
  // the emitted text is re-compiled, and pruning them cannot change
  // execution (first-match dispatch).
  const dfuzz::ProtoSpec spec = dfuzz::drop_shadowed_rules(raw);
  DslSpec out;
  out.name = "dfuzz_seed_" + std::to_string(spec.seed);
  out.seed = spec.seed;
  out.num_nodes = spec.num_nodes;
  for (std::uint32_t i = 0; i < spec.num_states; ++i)
    out.states.push_back("s" + std::to_string(i));
  for (std::uint32_t i = 0; i < spec.num_msg_types; ++i)
    out.messages.push_back("m" + std::to_string(i));
  for (std::size_t i = 0; i < spec.internals.size(); ++i) {
    const dfuzz::InternalRule& r = spec.internals[i];
    SpecInternalRule ir;
    ir.node = r.node;
    ir.guard_state = r.guard_state;
    ir.action = lift_action(r.action);
    ir.label = "r" + std::to_string(i);
    out.internals.push_back(std::move(ir));
  }
  for (const dfuzz::MsgRule& r : spec.msg_rules) {
    SpecMsgRule mr;
    mr.node = r.node;
    mr.type = r.type;
    mr.guard_state = r.guard_state;
    mr.action = lift_action(r.action);
    out.msg_rules.push_back(std::move(mr));
  }
  SpecInvariant inv;
  inv.name = "mutex";
  inv.projected = spec.invariant.use_projection;
  inv.a = {spec.invariant.state_a};
  inv.b = {spec.invariant.state_b};
  out.invariants.push_back(std::move(inv));
  return out;
}

std::optional<dfuzz::ProtoSpec> to_proto(const DslSpec& spec, std::string& err) {
  dfuzz::ProtoSpec out;
  out.seed = spec.seed;
  out.num_nodes = spec.num_nodes;
  out.num_states = static_cast<std::uint32_t>(spec.states.size());
  out.num_msg_types = static_cast<std::uint32_t>(spec.messages.size());
  if (out.num_msg_types == 0) {
    err = "no message types (ProtoSpec needs at least one)";
    return std::nullopt;
  }
  for (const SpecInternalRule& r : spec.internals) {
    auto a = lower_action(r.action, err);
    if (!a) return std::nullopt;
    dfuzz::InternalRule ir;
    ir.node = r.node;
    ir.guard_state = r.guard_state;
    ir.action = std::move(*a);
    out.internals.push_back(std::move(ir));
  }
  for (const SpecMsgRule& r : spec.msg_rules) {
    auto a = lower_action(r.action, err);
    if (!a) return std::nullopt;
    dfuzz::MsgRule mr;
    mr.node = r.node;
    mr.type = r.type;
    mr.guard_state = r.guard_state;
    mr.action = std::move(*a);
    out.msg_rules.push_back(std::move(mr));
  }
  if (spec.invariants.size() != 1) {
    err = "ProtoSpec carries exactly one invariant, spec has " +
          std::to_string(spec.invariants.size());
    return std::nullopt;
  }
  const SpecInvariant& inv = spec.invariants[0];
  if (inv.before) {
    err = "'before' invariant (outside the ProtoSpec core fragment)";
    return std::nullopt;
  }
  if (inv.a.size() != 1 || inv.b.size() != 1) {
    err = "non-singleton invariant state set (outside the ProtoSpec core fragment)";
    return std::nullopt;
  }
  out.invariant.state_a = inv.a[0];
  out.invariant.state_b = inv.b[0];
  out.invariant.use_projection = inv.projected;
  return out;
}

}  // namespace lmc::dsl
