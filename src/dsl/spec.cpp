#include "dsl/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace lmc::dsl {

namespace {

std::string check_action(const DslSpec& spec, const SpecAction& a) {
  if (a.goto_state >= spec.states.size()) return "goto state out of range";
  for (const SpecSend& s : a.sends) {
    if (!s.to_sender && s.dst >= spec.num_nodes) return "send dst out of range";
    if (s.type >= spec.messages.size()) return "send type out of range";
  }
  return "";
}

std::string check_state_set(const DslSpec& spec, const std::vector<std::uint32_t>& set) {
  if (set.empty()) return "empty state set";
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i] >= spec.states.size()) return "state out of range";
    if (i > 0 && set[i] <= prev) return "state set not sorted/deduped";
    prev = set[i];
  }
  return "";
}

bool in_set(const std::vector<std::uint32_t>& set, std::uint32_t s) {
  for (std::uint32_t v : set)
    if (v == s) return true;
  return false;
}

/// Shortest plain decimal (never scientific — the lexer has no exponents)
/// that round-trips small config values (30, 0.5, 12.25).
std::string fmt_num(double v) {
  char buf[64];
  for (int prec = 0; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string s = buf;
  if (s.find('.') == std::string::npos) s += ".0";
  return s;
}

}  // namespace

std::string validate(const DslSpec& spec) {
  if (spec.num_nodes < 2) return "fewer than 2 nodes";
  if (spec.states.size() < 2) return "fewer than 2 states";
  if (spec.internals.size() > 32) return "more than 32 elaborated internal rules";
  for (const SpecInternalRule& r : spec.internals) {
    if (r.node >= spec.num_nodes) return "internal rule node out of range";
    if (r.guard_state >= spec.states.size()) return "internal guard out of range";
    if (r.action.goto_state < r.guard_state) return "internal rule decreases the state";
    for (const SpecSend& s : r.action.sends)
      if (s.to_sender) return "internal rule sends to 'sender'";
    if (std::string e = check_action(spec, r.action); !e.empty()) return "internal rule: " + e;
  }
  for (const SpecMsgRule& r : spec.msg_rules) {
    if (r.node >= spec.num_nodes) return "msg rule node out of range";
    if (r.type >= spec.messages.size()) return "msg rule type out of range";
    if (r.guard_state >= spec.states.size()) return "msg guard out of range";
    if (r.action.goto_state <= r.guard_state) return "msg rule not strictly monotone";
    if (std::string e = check_action(spec, r.action); !e.empty()) return "msg rule: " + e;
  }
  if (spec.invariants.empty()) return "no invariant";
  for (const SpecInvariant& inv : spec.invariants) {
    if (std::string e = check_state_set(spec, inv.a); !e.empty())
      return "invariant " + inv.name + ": " + e;
    if (std::string e = check_state_set(spec, inv.b); !e.empty())
      return "invariant " + inv.name + ": " + e;
    if (in_set(inv.a, 0) && in_set(inv.b, 0))
      return "invariant " + inv.name + " is violated by the initial system state";
  }
  for (const Scenario& sc : spec.scenarios) {
    if (sc.num_nodes < 2) return "scenario " + sc.name + ": fewer than 2 nodes";
    if (sc.drop_pct < 0.0 || sc.drop_pct > 100.0)
      return "scenario " + sc.name + ": drop percentage out of range";
  }
  return "";
}

std::string to_lmc_text(const DslSpec& spec) {
  std::ostringstream os;
  os << "# canonical elaborated form; regenerate with to_lmc_text()\n";
  os << "protocol " << spec.name << " {\n";
  os << "  nodes " << spec.num_nodes << ";\n";
  if (spec.seed != 0) os << "  seed " << spec.seed << ";\n";
  if (spec.expect_violation) os << "  expect violation;\n";

  auto name_list = [&](const char* kw, const std::vector<std::string>& names) {
    if (names.empty()) return;
    os << "  " << kw << " ";
    for (std::size_t i = 0; i < names.size(); ++i) os << (i ? ", " : "") << names[i];
    os << ";\n";
  };
  name_list("states", spec.states);
  name_list("messages", spec.messages);

  auto body = [&](const SpecAction& a) {
    if (a.sends.empty() && !a.fail_assert) {
      os << ";\n";
      return;
    }
    os << " {";
    for (const SpecSend& s : a.sends) {
      os << " send " << spec.messages[s.type] << " to ";
      if (s.to_sender)
        os << "sender";
      else
        os << "node " << s.dst;
      os << " tag " << s.tag << ";";
    }
    if (a.fail_assert) {
      os << " assert false";
      if (!a.assert_msg.empty()) {
        os << " \"";
        for (char c : a.assert_msg) {
          if (c == '"' || c == '\\') os << '\\';
          os << c;
        }
        os << '"';
      }
      os << ";";
    }
    os << " }\n";
  };

  for (const SpecInternalRule& r : spec.internals) {
    os << "  internal " << r.label << " at " << r.node << " @ " << spec.states[r.guard_state]
       << " -> " << spec.states[r.action.goto_state];
    body(r.action);
  }
  for (const SpecMsgRule& r : spec.msg_rules) {
    os << "  on " << spec.messages[r.type] << " at " << r.node << " @ "
       << spec.states[r.guard_state] << " -> " << spec.states[r.action.goto_state];
    body(r.action);
  }

  auto state_set = [&](const std::vector<std::uint32_t>& set) {
    if (set.size() == 1) {
      os << spec.states[set[0]];
      return;
    }
    os << "{";
    for (std::size_t i = 0; i < set.size(); ++i) os << (i ? ", " : "") << spec.states[set[i]];
    os << "}";
  };
  for (const SpecInvariant& inv : spec.invariants) {
    os << "  invariant " << inv.name << ": never ";
    state_set(inv.a);
    os << (inv.before ? " before " : " with ");
    state_set(inv.b);
    if (inv.projected) os << " projected";
    os << ";\n";
  }

  for (const Scenario& sc : spec.scenarios) {
    os << "  scenario " << sc.name << " {";
    os << " nodes " << sc.num_nodes << ";";
    os << " seed " << sc.seed << ";";
    os << " drop " << fmt_num(sc.drop_pct) << ";";
    os << " sim_time " << fmt_num(sc.sim_time) << ";";
    os << " app_max " << fmt_num(sc.app_max) << ";";
    if (sc.fifo) os << " fifo;";
    os << " }\n";
  }

  os << "}\n";
  return std::move(os).str();
}

}  // namespace lmc::dsl
