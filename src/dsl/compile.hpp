// AST -> DslSpec elaboration: resolve names, expand selectors into per-node
// rules, assign payload tags, and enforce the LMC completeness envelope with
// positioned diagnostics. Rule codes (stable, pinned by fixture tests):
//
//   DSL01  message handler's target state not strictly above its guard
//   DSL02  internal/timer handler's target state below its guard
//   DSL03  more than 32 elaborated internal rules (fire-once bitmask — the
//          serialized node state could no longer capture which rules ran)
//   DSL04  two message handlers for the same (node, message, guard) —
//          hidden nondeterminism: first-match would silently win
//   DSL05  duplicate internal handler label on the same node
//   DSL06  'sender' destination in an internal/timer handler
//   DSL07  two elaborated sends with identical content (src, dst, message,
//          tag) — duplicate in-flight messages break the paper's
//          duplicate-limit-0 network model
//   DSL08  invariant violated by the all-initial system state
//   DSL09  'next'/'prev' destination runs off the end of the node range
//
// The same conditions are re-checked loc-lessly by dsl::validate() for
// specs constructed programmatically.
#pragma once

#include <optional>

#include "dsl/ast.hpp"
#include "dsl/diag.hpp"
#include "dsl/spec.hpp"

namespace lmc::dsl {

struct CompileOptions {
  /// Re-elaborate for a different node count (scenario `nodes N;`
  /// overrides; role ranges like `1..n-2` are node-count-relative).
  std::optional<std::uint32_t> override_nodes;
};

/// Elaborate `p` into an executable spec. Returns nullopt iff `diags` gained
/// at least one error; on success `validate(*result)` is empty.
std::optional<DslSpec> compile(const ast::Protocol& p, DiagList& diags,
                               const CompileOptions& opts = {});

}  // namespace lmc::dsl
