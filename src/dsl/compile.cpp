#include "dsl/compile.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "dsl/interp.hpp"

namespace lmc::dsl {

namespace {

bool reserved(const std::string& s) {
  static const char* const kWords[] = {"all", "n", "sender", "others", "next", "prev", "node"};
  for (const char* w : kWords)
    if (s == w) return true;
  return false;
}

class Compiler {
 public:
  Compiler(const ast::Protocol& p, DiagList& diags, const CompileOptions& opts)
      : p_(p), diags_(diags), opts_(opts) {}

  std::optional<DslSpec> run() {
    const bool pre_ok = diags_.ok();
    spec_.name = p_.name;
    spec_.seed = p_.seed;
    spec_.expect_violation = p_.expect_violation;
    spec_.num_nodes = opts_.override_nodes.value_or(p_.nodes);
    if (spec_.num_nodes < 2)
      diags_.error(p_.nodes_loc, "a checkable protocol needs at least 2 nodes");

    index_names(p_.states, p_.state_locs, states_, "state");
    index_names(p_.messages, p_.message_locs, messages_, "message");
    if (p_.states.size() < 2)
      diags_.error(p_.loc, "protocol needs at least 2 states (the first one is initial)");
    spec_.states = p_.states;
    spec_.messages = p_.messages;

    for (const ast::RoleDecl& r : p_.roles) {
      if (reserved(r.name)) {
        diags_.error(r.loc, "role name '" + r.name + "' is a reserved word");
        continue;
      }
      if (states_.count(r.name) != 0 || messages_.count(r.name) != 0)
        diags_.error(r.loc, "role '" + r.name + "' collides with a state or message name");
      if (roles_.count(r.name) != 0) {
        diags_.error(r.loc, "duplicate role '" + r.name + "'");
        continue;
      }
      roles_[r.name] = resolve_selector(r.sel);
    }

    for (const ast::Handler& h : p_.handlers) elaborate(h);

    if (spec_.internals.size() > 32 && overflow_loc_.line != 0)
      diags_.error(overflow_loc_,
                   "protocol elaborates to " + std::to_string(spec_.internals.size()) +
                       " internal rules; the fire-once bitmask serialized per node holds at "
                       "most 32 — beyond that the node state no longer records which rules "
                       "ran and re-execution would diverge",
                   "DSL03");

    assign_auto_tags();

    for (const ast::InvariantDecl& inv : p_.invariants) invariant(inv);
    if (p_.invariants.empty())
      diags_.error(p_.loc, "protocol declares no invariant; add at least one "
                           "'invariant NAME: never A with B;'");

    std::set<std::string> scen_names;
    for (const ast::ScenarioDecl& sc : p_.scenarios) {
      if (!scen_names.insert(sc.name).second)
        diags_.error(sc.loc, "duplicate scenario '" + sc.name + "'");
      Scenario s;
      s.name = sc.name;
      s.num_nodes = sc.nodes.value_or(spec_.num_nodes);
      s.seed = sc.seed;
      s.drop_pct = sc.drop_pct;
      s.sim_time = sc.sim_time;
      s.app_max = sc.app_max;
      s.fifo = sc.fifo;
      if (s.drop_pct < 0.0 || s.drop_pct > 100.0)
        diags_.error(sc.loc, "scenario drop must be a percentage in [0, 100]");
      if (s.num_nodes < 2) diags_.error(sc.loc, "scenario needs at least 2 nodes");
      spec_.scenarios.push_back(std::move(s));
    }

    // A pre-existing parse error also voids the result: the AST may be a
    // fragment and this elaboration ran on half a protocol.
    if (!pre_ok || !diags_.ok()) return std::nullopt;
    check_role_symmetry();
    return std::move(spec_);
  }

 private:
  /// DSL10 (warning, never an error — asymmetric roles like a replication
  /// chain are perfectly legal): a role declared with >= 2 members *looks*
  /// like a claim of interchangeability, so flag it when the elaborated
  /// rule tables say otherwise and symmetry reduction would not treat the
  /// members as one class.
  void check_role_symmetry() {
    std::vector<std::vector<NodeId>> classes;
    bool inferred = false;
    for (const ast::RoleDecl& r : p_.roles) {
      auto it = roles_.find(r.name);
      if (it == roles_.end() || it->second.size() < 2) continue;
      if (!inferred) {
        classes = infer_symmetric_roles(spec_);
        inferred = true;
      }
      const bool covered = std::any_of(classes.begin(), classes.end(), [&](const auto& c) {
        return std::all_of(it->second.begin(), it->second.end(), [&](NodeId m) {
          return std::find(c.begin(), c.end(), m) != c.end();
        });
      });
      if (!covered)
        diags_.warning(r.loc,
                       "role '" + r.name + "' groups " + std::to_string(it->second.size()) +
                           " nodes, but their elaborated rule tables are not interchangeable "
                           "under id swaps — symmetry reduction (--symmetry) will not treat "
                           "them as one class",
                       "DSL10");
    }
  }

 private:
  void index_names(const std::vector<std::string>& names, const std::vector<SrcLoc>& locs,
                   std::map<std::string, std::uint32_t>& out, const char* what) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (reserved(names[i])) {
        diags_.error(locs[i],
                     std::string(what) + " name '" + names[i] + "' is a reserved word");
        continue;
      }
      if (!out.emplace(names[i], static_cast<std::uint32_t>(i)).second)
        diags_.error(locs[i], std::string("duplicate ") + what + " '" + names[i] + "'");
    }
  }

  std::optional<NodeId> eval_node(const ast::NodeExpr& e) {
    const std::int64_t n = static_cast<std::int64_t>(spec_.num_nodes);
    const std::int64_t v = e.rel_n ? n - e.value : e.value;
    if (v < 0 || v >= n) {
      diags_.error(e.loc, "node index " + std::to_string(v) + " is out of range for " +
                              std::to_string(n) + " nodes");
      return std::nullopt;
    }
    return static_cast<NodeId>(v);
  }

  std::vector<NodeId> resolve_selector(const ast::Selector& sel) {
    std::vector<NodeId> out;
    switch (sel.kind) {
      case ast::Selector::Kind::kAll:
        for (NodeId i = 0; i < spec_.num_nodes; ++i) out.push_back(i);
        break;
      case ast::Selector::Kind::kRole: {
        auto it = roles_.find(sel.role);
        if (it == roles_.end()) {
          diags_.error(sel.loc, "unknown role '" + sel.role + "'");
          break;
        }
        out = it->second;
        break;
      }
      case ast::Selector::Kind::kRange: {
        auto lo = eval_node(sel.lo);
        auto hi = eval_node(sel.hi);
        if (!lo || !hi) break;
        if (*lo > *hi) {
          diags_.error(sel.loc, "empty node range (" + std::to_string(*lo) + " .. " +
                                    std::to_string(*hi) + ")");
          break;
        }
        for (NodeId i = *lo; i <= *hi; ++i) out.push_back(i);
        break;
      }
    }
    return out;
  }

  std::optional<std::uint32_t> state_of(const std::string& name, SrcLoc loc) {
    auto it = states_.find(name);
    if (it == states_.end()) {
      diags_.error(loc, "unknown state '" + name + "'");
      return std::nullopt;
    }
    return it->second;
  }

  std::optional<std::uint32_t> msg_of(const std::string& name, SrcLoc loc) {
    auto it = messages_.find(name);
    if (it == messages_.end()) {
      diags_.error(loc, "unknown message '" + name + "'");
      return std::nullopt;
    }
    return it->second;
  }

  void elaborate(const ast::Handler& h) {
    auto guard = state_of(h.guard, h.loc);
    auto target = state_of(h.target, h.target_loc);
    if (!guard || !target) return;
    if (h.is_message && *target <= *guard) {
      diags_.error(h.target_loc,
                   "message handler must move to a strictly higher state ('" + h.guard +
                       "' -> '" + h.target + "'); without monotone progress a message could "
                       "be consumed twice and the delivery history would no longer be a "
                       "function of the node state",
                   "DSL01");
      return;
    }
    if (!h.is_message && *target < *guard) {
      diags_.error(h.target_loc,
                   "internal handler must not decrease the state ('" + h.guard + "' -> '" +
                       h.target + "'); a backward goto re-enables already-consumed rules and "
                       "leaves the local checker's completeness envelope",
                   "DSL02");
      return;
    }
    std::optional<std::uint32_t> trigger_type;
    if (h.is_message) {
      trigger_type = msg_of(h.trigger, h.loc);
      if (!trigger_type) return;
    }

    for (NodeId node : resolve_selector(h.at)) {
      SpecAction action;
      action.goto_state = *target;
      action.fail_assert = h.fail_assert;
      action.assert_msg = h.assert_msg;
      /// (send index into action.sends, surface-send ordinal) pairs for
      /// sends lacking an explicit tag.
      std::vector<std::pair<std::size_t, std::size_t>> auto_sends;
      bool bad = false;
      for (const ast::SendAct& s : h.sends) {
        auto type = msg_of(s.msg, s.loc);
        if (!type) {
          bad = true;
          continue;
        }
        // Every elaborated copy of one surface send shares one auto tag
        // (ordinal by first appearance): mirrored handlers at different
        // nodes then emit byte-identical payloads, which is what lets
        // symmetry reduction align class members' states. Within one copy
        // the destinations are distinct and across copies the source
        // differs, so sharing cannot create duplicate message content.
        std::size_t ast_ord = 0;
        if (!s.tag) ast_ord = ast_ord_.emplace(&s, ast_ord_.size()).first->second;
        for (SpecSend send : resolve_dst(s, node, h.is_message, bad)) {
          send.type = *type;
          if (s.tag) {
            send.tag = *s.tag;
            check_explicit_tag(node, send, s.loc);
          } else {
            auto_sends.push_back({action.sends.size(), ast_ord});
          }
          action.sends.push_back(send);
        }
      }
      if (bad) continue;

      if (h.is_message) {
        if (!msg_keys_.insert({node, *trigger_type, *guard}).second) {
          diags_.error(h.loc,
                       "duplicate message handler: node " + std::to_string(node) +
                           " already handles '" + h.trigger + "' in state '" + h.guard +
                           "' — first-match dispatch would silently hide this handler "
                           "(nondeterminism the checker cannot see)",
                       "DSL04");
          continue;
        }
        SpecMsgRule r;
        r.node = node;
        r.type = *trigger_type;
        r.guard_state = *guard;
        r.action = std::move(action);
        for (const auto& [si, ao] : auto_sends)
          auto_tags_.push_back({/*is_internal=*/false, spec_.msg_rules.size(), si, ao});
        spec_.msg_rules.push_back(std::move(r));
      } else {
        if (!int_labels_.insert({node, h.trigger}).second) {
          diags_.error(h.loc,
                       "duplicate internal handler label '" + h.trigger + "' on node " +
                           std::to_string(node) +
                           " — labels identify fire-once slots and must be unique per node",
                       "DSL05");
          continue;
        }
        if (spec_.internals.size() == 32 && overflow_loc_.line == 0) overflow_loc_ = h.loc;
        SpecInternalRule r;
        r.node = node;
        r.guard_state = *guard;
        r.action = std::move(action);
        r.label = h.trigger;
        for (const auto& [si, ao] : auto_sends)
          auto_tags_.push_back({/*is_internal=*/true, spec_.internals.size(), si, ao});
        spec_.internals.push_back(std::move(r));
      }
    }
  }

  /// Expand one surface send for `node` into concrete destinations (type and
  /// tag filled by the caller). Broadcast destinations become fixed per-node
  /// sends in ascending node order.
  std::vector<SpecSend> resolve_dst(const ast::SendAct& s, NodeId node, bool is_message,
                                    bool& bad) {
    std::vector<SpecSend> out;
    auto fixed = [&](NodeId d) {
      SpecSend send;
      send.dst = d;
      out.push_back(send);
    };
    switch (s.dst.kind) {
      case ast::Dst::Kind::kNode: {
        auto d = eval_node(s.dst.node);
        if (!d) {
          bad = true;
          break;
        }
        fixed(*d);
        break;
      }
      case ast::Dst::Kind::kSender: {
        if (!is_message) {
          diags_.error(s.dst.loc,
                       "'sender' destination is only meaningful in a message handler — an "
                       "internal event has no sender",
                       "DSL06");
          bad = true;
          break;
        }
        SpecSend send;
        send.to_sender = true;
        out.push_back(send);
        break;
      }
      case ast::Dst::Kind::kOthers:
        for (NodeId d = 0; d < spec_.num_nodes; ++d)
          if (d != node) fixed(d);
        break;
      case ast::Dst::Kind::kAll:
        for (NodeId d = 0; d < spec_.num_nodes; ++d) fixed(d);
        break;
      case ast::Dst::Kind::kNext:
        if (node + 1 >= spec_.num_nodes) {
          diags_.error(s.dst.loc,
                       "'next' on node " + std::to_string(node) +
                           " (the last node) runs off the end of the node range; narrow the "
                           "handler's 'at' selector",
                       "DSL09");
          bad = true;
          break;
        }
        fixed(node + 1);
        break;
      case ast::Dst::Kind::kPrev:
        if (node == 0) {
          diags_.error(s.dst.loc,
                       "'prev' on node 0 runs off the end of the node range; narrow the "
                       "handler's 'at' selector",
                       "DSL09");
          bad = true;
          break;
        }
        fixed(node - 1);
        break;
      case ast::Dst::Kind::kRole: {
        auto it = roles_.find(s.dst.role);
        if (it == roles_.end()) {
          diags_.error(s.dst.loc, "unknown destination role '" + s.dst.role + "'");
          bad = true;
          break;
        }
        for (NodeId d : it->second) fixed(d);
        break;
      }
    }
    return out;
  }

  /// Duplicate-content check for EXPLICIT tags (auto tags are allocated
  /// above every explicit tag, distinct across surface sends, and shared
  /// only between copies with distinct (src, dst), so they cannot
  /// collide). Identical (src, dst, message, tag) from two rules can put
  /// two indistinguishable messages in flight; the model's network is a set
  /// with duplicate limit 0, so the second would silently vanish.
  void check_explicit_tag(NodeId src, const SpecSend& s, SrcLoc loc) {
    const auto key = std::make_tuple(src, s.to_sender, s.to_sender ? 0u : s.dst, s.type, s.tag);
    auto [it, inserted] = explicit_tags_.emplace(key, loc);
    if (inserted) return;
    if (!dsl07_reported_.insert({loc.line, loc.col}).second) return;
    diags_.error(loc,
                 "elaborated send duplicates message content already produced at line " +
                     std::to_string(it->second.line) + " ('" + spec_.messages[s.type] +
                     "' tag " + std::to_string(s.tag) +
                     " from node " + std::to_string(src) +
                     ") — duplicate in-flight messages break the set-network model; use a "
                     "distinct 'tag'",
                 "DSL07");
  }

  /// Tags left implicit get values above every explicit tag: one tag per
  /// surface send (first-appearance order), shared by all its elaborated
  /// copies — deterministic, collision-free, and symmetric across nodes.
  void assign_auto_tags() {
    std::uint32_t base = 0;
    auto consider = [&](const SpecAction& a) {
      for (const SpecSend& s : a.sends)
        if (s.tag >= base) base = s.tag + 1;
    };
    for (const SpecInternalRule& r : spec_.internals) consider(r.action);
    for (const SpecMsgRule& r : spec_.msg_rules) consider(r.action);
    for (const AutoTag& at : auto_tags_) {
      SpecAction& a =
          at.is_internal ? spec_.internals[at.rule].action : spec_.msg_rules[at.rule].action;
      a.sends[at.send].tag = base + static_cast<std::uint32_t>(at.ast);
    }
  }

  void invariant(const ast::InvariantDecl& inv) {
    if (!inv_names_.insert(inv.name).second)
      diags_.error(inv.loc, "duplicate invariant '" + inv.name + "'");
    SpecInvariant out;
    out.name = inv.name;
    out.before = inv.before;
    out.projected = inv.projected;
    bool ok = true;
    auto resolve_set = [&](const std::vector<std::string>& names,
                           const std::vector<SrcLoc>& locs, std::vector<std::uint32_t>& set) {
      for (std::size_t i = 0; i < names.size(); ++i) {
        auto s = state_of(names[i], locs[i]);
        if (!s) {
          ok = false;
          continue;
        }
        set.push_back(*s);
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    };
    resolve_set(inv.a, inv.a_locs, out.a);
    resolve_set(inv.b, inv.b_locs, out.b);
    if (!ok) return;
    const bool a0 = std::find(out.a.begin(), out.a.end(), 0u) != out.a.end();
    const bool b0 = std::find(out.b.begin(), out.b.end(), 0u) != out.b.end();
    if (a0 && b0) {
      diags_.error(inv.loc,
                   "invariant '" + inv.name + "' lists the initial state '" + spec_.states[0] +
                       "' on both sides, so the all-initial system state already violates it",
                   "DSL08");
      return;
    }
    spec_.invariants.push_back(std::move(out));
  }

  struct AutoTag {
    bool is_internal;
    std::size_t rule;
    std::size_t send;
    std::size_t ast;  ///< surface-send ordinal (shared tag per AST send)
  };

  const ast::Protocol& p_;
  DiagList& diags_;
  const CompileOptions& opts_;
  DslSpec spec_;
  std::map<std::string, std::uint32_t> states_, messages_;
  std::map<std::string, std::vector<NodeId>> roles_;
  std::set<std::tuple<NodeId, std::uint32_t, std::uint32_t>> msg_keys_;
  std::set<std::pair<NodeId, std::string>> int_labels_;
  std::set<std::string> inv_names_;
  std::map<std::tuple<NodeId, bool, NodeId, std::uint32_t, std::uint32_t>, SrcLoc>
      explicit_tags_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> dsl07_reported_;
  std::vector<AutoTag> auto_tags_;
  std::map<const ast::SendAct*, std::size_t> ast_ord_;  ///< surface send -> ordinal
  SrcLoc overflow_loc_;
};

}  // namespace

std::optional<DslSpec> compile(const ast::Protocol& p, DiagList& diags,
                               const CompileOptions& opts) {
  Compiler c(p, diags, opts);
  return c.run();
}

}  // namespace lmc::dsl
