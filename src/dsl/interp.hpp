// Interpreter: runs an elaborated DslSpec as a StateMachine + Invariant so
// LocalMc, GlobalMc, DiffOracle and the ModelValidityAuditor work on .lmc
// protocols unchanged.
//
// The node state is the same compact triple dfuzz uses — (state, fired
// bitmask, delivery digest) — and it is serialization-complete: everything a
// handler's behaviour can depend on (current state, which fire-once rules
// ran, which messages were consumed) is in the blob, so equal blobs really
// are interchangeable under re-execution. The digest folds the FULL message
// identity (src included): with sender-relative replies two deliveries that
// differ only in their sender produce different successor blobs, keeping the
// delivery history a function of the state (the seed-664 lesson — states
// reachable via different histories must not alias).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsl/spec.hpp"
#include "mc/invariant.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::dsl {

class DslNode final : public StateMachine {
 public:
  DslNode(NodeId self, std::shared_ptr<const DslSpec> spec)
      : self_(self), spec_(std::move(spec)) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

 private:
  void apply(const SpecAction& a, Context& ctx, NodeId sender, bool have_sender);

  NodeId self_;
  std::shared_ptr<const DslSpec> spec_;
  std::uint32_t state_ = 0;
  std::uint32_t fired_ = 0;   ///< bitmask over self_'s OWN internal rules, in table order
  std::uint64_t digest_ = 0;  ///< XOR of mix64(src,type,payload) per consumed message
};

/// The conjunction of the spec's named invariants. Each one is pairwise
/// ("never A with B" on distinct nodes, or "never A before B" on an ordered
/// node pair), so when every invariant opts into `projected` the whole
/// conjunction exposes an exact pairwise projection for LMC-OPT: invariant k
/// owns keys 2k (state in A) and 2k+1 (state in B), values carry the node id
/// so `before` can compare positions.
class DslInvariant final : public Invariant {
 public:
  explicit DslInvariant(std::shared_ptr<const DslSpec> spec) : spec_(std::move(spec)) {}

  std::string name() const override;
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  bool symmetric_under(const std::vector<std::vector<NodeId>>& classes) const override;
  bool has_projection() const override;
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  bool projections_conflict(const Projection& a, const Projection& b) const override;

  /// Name of the first invariant `sys` violates; empty when all hold.
  std::string first_violated(const SystemStateView& sys) const;

 private:
  std::shared_ptr<const DslSpec> spec_;
};

/// A spec made runnable. Owns the spec; `cfg` and `invariant` stay valid as
/// long as this object lives.
struct CompiledProtocol {
  std::shared_ptr<const DslSpec> spec;
  SystemConfig cfg;
  std::unique_ptr<DslInvariant> invariant;
};

/// Throws std::invalid_argument when dsl::validate rejects the spec.
/// Fills `cfg.symmetric_roles` with the inferred interchangeability classes
/// (see infer_symmetric_roles) so `SymmetryMode::kAuto` works out of the box.
CompiledProtocol instantiate(const DslSpec& spec);

/// Maximal classes of nodes whose rule tables are automorphic under id
/// swaps (symmetry::infer_classes over the spec's elaborated rules). Tags
/// are ignored — the reduction is unconditionally sound, so over-merging
/// only costs effectiveness, and shared per-AST-send auto tags make
/// mirrored handlers compare equal.
std::vector<std::vector<NodeId>> infer_symmetric_roles(const DslSpec& spec);

/// Decode the `state` field of a serialized DslNode.
std::uint32_t dsl_state_of(const Blob& state);

}  // namespace lmc::dsl
