#include "dsl/loader.hpp"

#include <fstream>
#include <sstream>

namespace lmc::dsl {

LoadResult load_text(std::string_view text, std::string filename, const CompileOptions& opts) {
  LoadResult res;
  res.diags = DiagList(std::move(filename));
  res.protocol = parse(text, res.diags);
  if (res.protocol) res.spec = compile(*res.protocol, res.diags, opts);
  return res;
}

LoadResult load_file(const std::string& path, const CompileOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadResult res;
    res.diags = DiagList(path);
    res.diags.error({0, 0}, "cannot open file");
    return res;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return load_text(ss.str(), path, opts);
}

}  // namespace lmc::dsl
