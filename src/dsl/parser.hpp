// Recursive-descent parser for the .lmc protocol DSL (grammar: DESIGN.md §11).
// Produces a surface AST; name resolution and envelope validation happen in
// compile.hpp. Errors carry file:line:col and the parser re-synchronizes at
// the next ';' or '}' so several mistakes surface in one pass.
#pragma once

#include <optional>
#include <string_view>

#include "dsl/ast.hpp"
#include "dsl/diag.hpp"

namespace lmc::dsl {

/// Parse one .lmc file. Returns nullopt (with at least one error in `diags`)
/// when the input is too broken to produce a protocol at all; a returned
/// protocol may still be unusable if `diags.ok()` is false.
std::optional<ast::Protocol> parse(std::string_view text, DiagList& diags);

}  // namespace lmc::dsl
