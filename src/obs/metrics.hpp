// Live metrics for long runs (observability layer, DESIGN.md §10).
//
// A MetricsSink turns the checker's internal gauges into periodic heartbeat
// records ("lmc-metrics/1" JSONL) and, opt-in, a single-line stderr progress
// report. The checker pushes a MetricsSnapshot at its natural sampling
// points (round boundaries, sweep/soundness completions); the sink decides
// whether the configured interval has elapsed and, if so, records the
// snapshot together with rates derived against the previous heartbeat
// (states/sec, I+ msgs/sec, ExecCache hit rate).
//
// Metrics are attribution only: they never feed back into exploration, so
// unlike the trace they carry no determinism contract (emission is
// wall-clock gated). Cost when detached is one null-pointer test per
// sampling point via the LMC_METRICS macro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmc::obs {

/// One sample of the checker's live gauges. All counters are cumulative
/// since the run began; the sink derives deltas itself.
struct MetricsSnapshot {
  std::string where;              ///< sampling point label ("round", "sweep", ...)
  std::uint32_t round = 0;
  std::uint64_t transitions = 0;
  std::uint64_t states_total = 0;   ///< sum of per-node LS_n sizes
  std::uint64_t iplus_total = 0;    ///< I+ message count
  std::uint64_t frontier = 0;       ///< tasks collected for the current round
  std::uint64_t deferred_depth = 0; ///< phase-2 deferral queue depth
  std::uint64_t exec_hits = 0;      ///< ExecCache hits so far
  std::uint64_t exec_misses = 0;    ///< ExecCache misses so far
  std::uint64_t combos = 0;         ///< combinations checked so far
  std::uint64_t prelim = 0;         ///< preliminary violations so far
  std::uint64_t confirmed = 0;      ///< confirmed violations so far
  std::uint64_t sym_orbits = 0;     ///< canonical orbits materialized (0 = reduction off)
  std::uint64_t sym_orbit_hits = 0; ///< orbit seen-set hits
  std::uint64_t sym_represented = 0;///< ordered combinations the orbits stand for
  std::uint64_t por_pruned = 0;     ///< deliveries pruned by POR (0 = reduction off)
  std::uint64_t por_deferred = 0;   ///< POR pairs deferred one generation
  double explore_s = 0.0;           ///< per-phase wall seconds so far…
  double sweep_s = 0.0;
  double soundness_wall_s = 0.0;
  double deferred_s = 0.0;
};

/// A recorded heartbeat: the snapshot plus derived rates.
struct MetricsRecord {
  double t = 0.0;  ///< seconds since the sink was created
  MetricsSnapshot snap;
  double states_per_s = 0.0;  ///< d(transitions)/dt vs. the previous record
  double iplus_per_s = 0.0;   ///< d(iplus_total)/dt vs. the previous record
  double exec_hit_rate = 0.0; ///< hits / (hits + misses), cumulative
};

class MetricsSink {
 public:
  /// interval_s: minimum seconds between recorded heartbeats (tick() calls
  /// inside the window are dropped). 0 records every tick — tests use this.
  explicit MetricsSink(double interval_s = 1.0, bool stderr_progress = false);

  /// Offer a sample; records it only when the interval has elapsed.
  void tick(const MetricsSnapshot& snap);
  /// Record unconditionally (run start / run end book-ends).
  void force(const MetricsSnapshot& snap);

  const std::vector<MetricsRecord>& records() const { return records_; }
  double since_start() const;

  /// Serialize as "lmc-metrics/1" JSON lines.
  std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;

 private:
  void push(const MetricsSnapshot& snap);

  double interval_s_;
  bool stderr_progress_;
  double t0_;
  double last_t_ = -1.0;
  std::vector<MetricsRecord> records_;
};

/// One metrics record as a JSONL line.
std::string to_jsonl_line(const MetricsRecord& rec);

/// Parse one "lmc-metrics/1" line; false for anything else.
bool parse_jsonl_line(const std::string& line, MetricsRecord& rec);

}  // namespace lmc::obs

/// Sampling-point guard, mirroring LMC_TRACE: evaluates `call` (a member
/// call on the sink) only when a sink is attached.
#define LMC_METRICS(sink, call)          \
  do {                                   \
    if ((sink) != nullptr) (sink)->call; \
  } while (0)
