// lmc_trace — trace tooling CLI (DESIGN.md §15).
//
//   lmc_trace export --chrome [-o OUT.json] [--profile PROF.jsonl] FILE...
//       Render trace/metrics JSONL (plus an optional lmc-prof/1 profile)
//       as a Chrome trace_event document for Perfetto / chrome://tracing.
//       Mixed files are fine: every line is dispatched by its schema, and
//       --profile files may simply be listed with the others.
//   lmc_trace validate --chrome FILE.json
//       Structural validation of an exported document (JSON parses, has a
//       traceEvents array, every event carries ph/ts/pid). Exit 0/1.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/chrome.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lmc_trace export --chrome [-o OUT.json] [--profile PROF.jsonl] FILE...\n"
               "       lmc_trace validate --chrome FILE.json\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

struct Streams {
  std::vector<lmc::obs::TraceEvent> events;
  std::vector<lmc::obs::MetricsRecord> metrics;
  lmc::obs::ProfileData prof;
};

bool ingest(const std::string& path, Streams& s) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lmc_trace: cannot read %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lmc::obs::TraceEvent ev;
    if (lmc::obs::parse_jsonl_line(line, ev)) {
      s.events.push_back(ev);
      continue;
    }
    lmc::obs::MetricsRecord rec;
    if (lmc::obs::parse_jsonl_line(line, rec)) {
      s.metrics.push_back(std::move(rec));
      continue;
    }
    lmc::obs::merge_prof_line(line, s.prof);  // other schemas: ignored
  }
  return true;
}

int run_export(int argc, char** argv) {
  bool chrome = false;
  std::string out_path;
  std::vector<std::string> inputs;
  Streams s;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--chrome") {
      chrome = true;
    } else if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--profile" && i + 1 < argc) {
      inputs.push_back(argv[++i]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "lmc_trace: unknown export option %s\n", a.c_str());
      return usage();
    } else {
      inputs.push_back(a);
    }
  }
  if (!chrome || inputs.empty()) return usage();
  for (const std::string& path : inputs)
    if (!ingest(path, s)) return 1;
  if (s.events.empty() && s.metrics.empty()) {
    std::fprintf(stderr, "lmc_trace: no lmc-trace/1 or lmc-metrics/1 lines found\n");
    return 1;
  }
  const std::string doc = lmc::obs::chrome_trace_json(
      s.events, s.metrics, s.prof.lines > 0 ? &s.prof : nullptr);
  if (out_path.empty()) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "lmc_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "lmc_trace: wrote %s (%zu events, %zu heartbeats)\n",
                 out_path.c_str(), s.events.size(), s.metrics.size());
  }
  return 0;
}

int run_validate(int argc, char** argv) {
  bool chrome = false;
  std::vector<std::string> inputs;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--chrome")
      chrome = true;
    else if (!a.empty() && a[0] == '-')
      return usage();
    else
      inputs.push_back(a);
  }
  if (!chrome || inputs.empty()) return usage();
  int rc = 0;
  for (const std::string& path : inputs) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "lmc_trace: cannot read %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::string err;
    if (!lmc::obs::validate_chrome_trace(text, &err)) {
      std::fprintf(stderr, "lmc_trace: %s: INVALID: %s\n", path.c_str(), err.c_str());
      rc = 1;
    } else {
      std::fprintf(stdout, "lmc_trace: %s: ok\n", path.c_str());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "export") return run_export(argc - 2, argv + 2);
  if (cmd == "validate") return run_validate(argc - 2, argv + 2);
  return usage();
}
