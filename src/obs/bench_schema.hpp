// The unified bench schema "lmc-bench/1" (observability layer, DESIGN.md
// §10). Every bench_* binary, lmc_fuzz, lmc_ckpt and lmc_report emit their
// machine-readable summaries as one-line JSON objects of this shape:
//
//   {"schema":"lmc-bench/1","bench":"<binary>","case":"<case label>",
//    "params":{...numbers/strings...},"metrics":{...numbers...}}
//
// so BENCH_*.json accumulates a comparable trajectory across PRs instead of
// one ad-hoc schema per tool. A record prints to stdout and, when the
// LMC_BENCH_JSON environment variable names a file, appends there too — CI
// sets it to collect every record a job produces into one artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmc::obs {

struct JsonValue;

/// Builder for one "lmc-bench/1" record. Params are the inputs that define
/// the case (depth, threads, seed...); metrics are the measured outputs and
/// must be numeric.
class BenchRecord {
 public:
  BenchRecord(std::string bench, std::string case_label);

  BenchRecord& param(const std::string& key, const std::string& value);
  BenchRecord& param(const std::string& key, std::uint64_t value);
  BenchRecord& param(const std::string& key, double value);

  BenchRecord& metric(const std::string& key, std::uint64_t value);
  BenchRecord& metric(const std::string& key, double value);

  std::string to_json() const;

  /// Print to stdout and append to the $LMC_BENCH_JSON file when set.
  void emit() const;

 private:
  std::string bench_;
  std::string case_;
  std::vector<std::pair<std::string, std::string>> params_;   ///< key → encoded value
  std::vector<std::pair<std::string, std::string>> metrics_;  ///< key → encoded number
};

/// Validate one parsed JSON document against "lmc-bench/1". On failure
/// returns false and describes the first problem in *err.
bool validate_bench_record(const JsonValue& v, std::string* err);

/// Validate one JSONL line against whichever obs schema it declares
/// ("lmc-bench/1", "lmc-trace/1", "lmc-metrics/1" or "lmc-prof/1"). Lines
/// without a "schema" key are rejected.
bool validate_obs_line(const std::string& line, std::string* err);

}  // namespace lmc::obs
