// lmc_report: where-did-time-go analysis over obs files.
//
//   lmc_report [--json] [--case LABEL] FILE...     analyze trace JSONL
//   lmc_report --validate FILE...                  schema-check obs JSONL
//   lmc_report --profile [--top K] FILE...         rank lmc-prof/1 rule costs
//   lmc_report --baseline BASE.json [--baseline ...] [--fail-over PCT] FILE...
//
// Analysis mode ingests every "lmc-trace/1" line from the given files (in
// order; other obs lines are skipped so mixed files work), prints the
// per-phase / per-rule / per-worker breakdown plus — when the files carry
// "lmc-metrics/1" heartbeats — the final symmetry/POR reduction gauges, and
// with --json also emits a machine-readable "lmc-bench/1" summary (stdout +
// $LMC_BENCH_JSON).
//
// Validation mode checks every non-empty line of each file against the obs
// schemas ("lmc-trace/1", "lmc-metrics/1", "lmc-bench/1", "lmc-prof/1") —
// CI runs it over all artifacts a job produced. Exit: 0 ok, 1 invalid
// lines, 2 usage/IO.
//
// Profile mode merges every "lmc-prof/1" line from the given files and
// prints phase walls, the counter registry, the per-shard ExecCache table
// and the top-K hottest rules (by handler wall seconds, as a share of the
// derived explore wall, with per-transition serialize/hash byte costs).
//
// Baseline mode diffs the "lmc-bench/1" records in FILE... against the
// frozen records in the --baseline file(s) (bench/baselines/BENCH_*.json),
// keyed by bench|case|params. Counter metrics are reported informationally;
// with --fail-over PCT any wall-clock metric (*_s) more than PCT% above its
// baseline makes the exit status 1.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/baseline.hpp"
#include "obs/bench_schema.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lmc_report [--json] [--case LABEL] FILE...\n"
               "       lmc_report --validate FILE...\n"
               "       lmc_report --profile [--top K] FILE...\n"
               "       lmc_report --baseline BASE.json [--fail-over PCT] FILE...\n");
  return 2;
}

bool read_lines(const std::string& path, std::vector<std::string>& lines) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty()) lines.push_back(std::move(line));
  }
  return true;
}

int run_validate(const std::vector<std::string>& files) {
  std::uint64_t total = 0, bad = 0;
  for (const std::string& path : files) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) {
      std::fprintf(stderr, "lmc_report: cannot open %s\n", path.c_str());
      return 2;
    }
    for (std::size_t i = 0; i < lines.size(); ++i) {
      ++total;
      std::string err;
      if (!lmc::obs::validate_obs_line(lines[i], &err)) {
        ++bad;
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), i + 1, err.c_str());
      }
    }
  }
  std::printf("lmc_report --validate: %" PRIu64 " line(s), %" PRIu64 " invalid\n", total, bad);
  return bad > 0 ? 1 : 0;
}

int run_profile(const std::vector<std::string>& files, std::size_t top_k) {
  lmc::obs::ProfileData prof;
  for (const std::string& path : files) {
    std::vector<std::string> lines;
    if (!read_lines(path, lines)) {
      std::fprintf(stderr, "lmc_report: cannot open %s\n", path.c_str());
      return 2;
    }
    for (const std::string& line : lines) lmc::obs::merge_prof_line(line, prof);
  }
  if (prof.lines == 0) {
    std::fprintf(stderr, "lmc_report: no lmc-prof/1 lines found\n");
    return 1;
  }
  lmc::obs::print_profile_report(prof, top_k, stdout);
  return 0;
}

int run_baseline(const std::vector<std::string>& baselines, const std::vector<std::string>& files,
                 double fail_over_pct) {
  auto load = [](const std::vector<std::string>& paths, const char* what,
                 std::map<std::string, std::map<std::string, double>>& out) {
    std::vector<std::string> lines;
    for (const std::string& p : paths)
      if (!read_lines(p, lines)) {
        std::fprintf(stderr, "lmc_report: cannot open %s file %s\n", what, p.c_str());
        return false;
      }
    out = lmc::obs::parse_bench_records(lines);
    return true;
  };
  std::map<std::string, std::map<std::string, double>> base, cur;
  if (!load(baselines, "baseline", base) || !load(files, "input", cur)) return 2;
  if (base.empty()) {
    std::fprintf(stderr, "lmc_report: no lmc-bench/1 records in the baseline file(s)\n");
    return 2;
  }
  const lmc::obs::BaselineComparison cmp = lmc::obs::compare_benches(base, cur);
  const std::size_t regressions = lmc::obs::print_baseline_report(cmp, fail_over_pct, stdout);
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false, json = false, profile = false;
  std::string case_label = "trace";
  std::vector<std::string> files, baselines;
  double fail_over_pct = -1.0;
  std::size_t top_k = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--case" && i + 1 < argc) {
      case_label = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baselines.push_back(argv[++i]);
    } else if (arg == "--fail-over" && i + 1 < argc) {
      fail_over_pct = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();
  if (validate) return run_validate(files);
  if (profile) return run_profile(files, top_k);
  if (!baselines.empty()) return run_baseline(baselines, files, fail_over_pct);

  try {
    std::vector<lmc::obs::TraceEvent> events;
    std::vector<lmc::obs::MetricsRecord> heartbeats;
    for (const std::string& path : files) {
      std::vector<lmc::obs::TraceEvent> part = lmc::obs::load_trace_file(path);
      events.insert(events.end(), part.begin(), part.end());
      std::vector<std::string> lines;
      if (read_lines(path, lines))
        for (const std::string& line : lines) {
          lmc::obs::MetricsRecord rec;
          if (lmc::obs::parse_jsonl_line(line, rec)) heartbeats.push_back(std::move(rec));
        }
    }
    if (events.empty()) {
      std::fprintf(stderr, "lmc_report: no lmc-trace/1 events found\n");
      return 1;
    }
    const lmc::obs::ReportSummary summary = lmc::obs::summarize(events);
    lmc::obs::print_report(summary, stdout);
    lmc::obs::print_metrics_reductions(heartbeats, stdout);
    if (json) std::printf("%s\n", lmc::obs::report_bench_json(summary, case_label).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lmc_report: %s\n", e.what());
    return 2;
  }
}
