#include "obs/metrics.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace lmc::obs {

namespace {

double steady_now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace

MetricsSink::MetricsSink(double interval_s, bool stderr_progress)
    : interval_s_(interval_s), stderr_progress_(stderr_progress), t0_(steady_now_s()) {}

double MetricsSink::since_start() const { return steady_now_s() - t0_; }

void MetricsSink::tick(const MetricsSnapshot& snap) {
  const double now = since_start();
  if (last_t_ >= 0.0 && now - last_t_ < interval_s_) return;
  push(snap);
}

void MetricsSink::force(const MetricsSnapshot& snap) { push(snap); }

void MetricsSink::push(const MetricsSnapshot& snap) {
  MetricsRecord rec;
  rec.t = since_start();
  rec.snap = snap;
  if (!records_.empty()) {
    const MetricsRecord& prev = records_.back();
    const double dt = rec.t - prev.t;
    if (dt > 0.0) {
      rec.states_per_s =
          static_cast<double>(snap.transitions - prev.snap.transitions) / dt;
      rec.iplus_per_s =
          static_cast<double>(snap.iplus_total - prev.snap.iplus_total) / dt;
    }
  }
  const std::uint64_t lookups = snap.exec_hits + snap.exec_misses;
  rec.exec_hit_rate =
      lookups > 0 ? static_cast<double>(snap.exec_hits) / static_cast<double>(lookups) : 0.0;
  last_t_ = rec.t;
  if (stderr_progress_) {
    std::fprintf(stderr,
                 "[lmc %7.1fs] %s r%u: %" PRIu64 " transitions (%.0f/s), %" PRIu64
                 " states, I+ %" PRIu64 ", frontier %" PRIu64 ", deferred %" PRIu64
                 ", cache %.0f%%, %" PRIu64 " confirmed\n",
                 rec.t, snap.where.c_str(), snap.round, snap.transitions, rec.states_per_s,
                 snap.states_total, snap.iplus_total, snap.frontier, snap.deferred_depth,
                 rec.exec_hit_rate * 100.0, snap.confirmed);
  }
  records_.push_back(std::move(rec));
}

std::string to_jsonl_line(const MetricsRecord& rec) {
  const MetricsSnapshot& s = rec.snap;
  std::string out = "{\"schema\":\"lmc-metrics/1\",\"t\":" + json_double(rec.t);
  out += ",\"where\":" + json_quote(s.where);
  out += ",\"round\":" + std::to_string(s.round);
  out += ",\"transitions\":" + std::to_string(s.transitions);
  out += ",\"states_total\":" + std::to_string(s.states_total);
  out += ",\"iplus_total\":" + std::to_string(s.iplus_total);
  out += ",\"frontier\":" + std::to_string(s.frontier);
  out += ",\"deferred_depth\":" + std::to_string(s.deferred_depth);
  out += ",\"exec_hits\":" + std::to_string(s.exec_hits);
  out += ",\"exec_misses\":" + std::to_string(s.exec_misses);
  out += ",\"combos\":" + std::to_string(s.combos);
  out += ",\"prelim\":" + std::to_string(s.prelim);
  out += ",\"confirmed\":" + std::to_string(s.confirmed);
  out += ",\"sym_orbits\":" + std::to_string(s.sym_orbits);
  out += ",\"sym_orbit_hits\":" + std::to_string(s.sym_orbit_hits);
  out += ",\"sym_represented\":" + std::to_string(s.sym_represented);
  out += ",\"por_pruned\":" + std::to_string(s.por_pruned);
  out += ",\"por_deferred\":" + std::to_string(s.por_deferred);
  out += ",\"explore_s\":" + json_double(s.explore_s);
  out += ",\"sweep_s\":" + json_double(s.sweep_s);
  out += ",\"soundness_wall_s\":" + json_double(s.soundness_wall_s);
  out += ",\"deferred_s\":" + json_double(s.deferred_s);
  out += ",\"states_per_s\":" + json_double(rec.states_per_s);
  out += ",\"iplus_per_s\":" + json_double(rec.iplus_per_s);
  out += ",\"exec_hit_rate\":" + json_double(rec.exec_hit_rate);
  out += "}";
  return out;
}

bool parse_jsonl_line(const std::string& line, MetricsRecord& rec) {
  JsonValue v;
  if (!json_parse(line, v) || !v.is_object()) return false;
  const JsonValue* schema = v.get("schema");
  if (schema == nullptr || !schema->is_string() || schema->str != "lmc-metrics/1") return false;
  rec = MetricsRecord{};
  auto u64 = [&](const char* key) {
    const JsonValue* f = v.get(key);
    return f != nullptr && f->is_number() ? f->as_u64() : std::uint64_t{0};
  };
  auto dbl = [&](const char* key) {
    const JsonValue* f = v.get(key);
    return f != nullptr && f->is_number() ? f->as_double() : 0.0;
  };
  rec.t = dbl("t");
  if (const JsonValue* f = v.get("where"); f != nullptr && f->is_string()) rec.snap.where = f->str;
  rec.snap.round = static_cast<std::uint32_t>(u64("round"));
  rec.snap.transitions = u64("transitions");
  rec.snap.states_total = u64("states_total");
  rec.snap.iplus_total = u64("iplus_total");
  rec.snap.frontier = u64("frontier");
  rec.snap.deferred_depth = u64("deferred_depth");
  rec.snap.exec_hits = u64("exec_hits");
  rec.snap.exec_misses = u64("exec_misses");
  rec.snap.combos = u64("combos");
  rec.snap.prelim = u64("prelim");
  rec.snap.confirmed = u64("confirmed");
  rec.snap.sym_orbits = u64("sym_orbits");
  rec.snap.sym_orbit_hits = u64("sym_orbit_hits");
  rec.snap.sym_represented = u64("sym_represented");
  rec.snap.por_pruned = u64("por_pruned");
  rec.snap.por_deferred = u64("por_deferred");
  rec.snap.explore_s = dbl("explore_s");
  rec.snap.sweep_s = dbl("sweep_s");
  rec.snap.soundness_wall_s = dbl("soundness_wall_s");
  rec.snap.deferred_s = dbl("deferred_s");
  rec.states_per_s = dbl("states_per_s");
  rec.iplus_per_s = dbl("iplus_per_s");
  rec.exec_hit_rate = dbl("exec_hit_rate");
  return true;
}

std::string MetricsSink::to_jsonl() const {
  std::string out;
  for (const MetricsRecord& rec : records_) {
    out += to_jsonl_line(rec);
    out += '\n';
  }
  return out;
}

void MetricsSink::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write metrics file " + path);
  const std::string text = to_jsonl();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace lmc::obs
