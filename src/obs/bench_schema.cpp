#include "obs/bench_schema.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace lmc::obs {

BenchRecord::BenchRecord(std::string bench, std::string case_label)
    : bench_(std::move(bench)), case_(std::move(case_label)) {}

BenchRecord& BenchRecord::param(const std::string& key, const std::string& value) {
  params_.emplace_back(key, json_quote(value));
  return *this;
}

BenchRecord& BenchRecord::param(const std::string& key, std::uint64_t value) {
  params_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchRecord& BenchRecord::param(const std::string& key, double value) {
  params_.emplace_back(key, json_double(value));
  return *this;
}

BenchRecord& BenchRecord::metric(const std::string& key, std::uint64_t value) {
  metrics_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchRecord& BenchRecord::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, json_double(value));
  return *this;
}

std::string BenchRecord::to_json() const {
  std::string out = "{\"schema\":\"lmc-bench/1\",\"bench\":" + json_quote(bench_);
  out += ",\"case\":" + json_quote(case_);
  out += ",\"params\":{";
  bool first = true;
  for (const auto& [k, v] : params_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(k) + ":" + v;
  }
  out += "},\"metrics\":{";
  first = true;
  for (const auto& [k, v] : metrics_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(k) + ":" + v;
  }
  out += "}}";
  return out;
}

void BenchRecord::emit() const {
  const std::string line = to_json();
  std::printf("%s\n", line.c_str());
  if (const char* path = std::getenv("LMC_BENCH_JSON"); path != nullptr && path[0] != '\0') {
    if (std::FILE* f = std::fopen(path, "ab"); f != nullptr) {
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
}

bool validate_bench_record(const JsonValue& v, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (!v.is_object()) return fail("record is not an object");
  const JsonValue* schema = v.get("schema");
  if (schema == nullptr || !schema->is_string() || schema->str != "lmc-bench/1")
    return fail("missing or wrong \"schema\" (want lmc-bench/1)");
  const JsonValue* bench = v.get("bench");
  if (bench == nullptr || !bench->is_string() || bench->str.empty())
    return fail("missing \"bench\" string");
  const JsonValue* case_label = v.get("case");
  if (case_label == nullptr || !case_label->is_string() || case_label->str.empty())
    return fail("missing \"case\" string");
  const JsonValue* params = v.get("params");
  if (params == nullptr || !params->is_object()) return fail("missing \"params\" object");
  for (const auto& [k, pv] : params->fields)
    if (!pv.is_number() && !pv.is_string() && !pv.is_bool())
      return fail("param \"" + k + "\" is not a number/string/bool");
  const JsonValue* metrics = v.get("metrics");
  if (metrics == nullptr || !metrics->is_object()) return fail("missing \"metrics\" object");
  if (metrics->fields.empty()) return fail("\"metrics\" is empty");
  for (const auto& [k, mv] : metrics->fields)
    if (!mv.is_number()) return fail("metric \"" + k + "\" is not a number");
  return true;
}

bool validate_obs_line(const std::string& line, std::string* err) {
  auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  JsonValue v;
  std::string perr;
  if (!json_parse(line, v, &perr)) return fail("not valid JSON: " + perr);
  if (!v.is_object()) return fail("line is not a JSON object");
  const JsonValue* schema = v.get("schema");
  if (schema == nullptr || !schema->is_string()) return fail("missing \"schema\" key");
  if (schema->str == "lmc-bench/1") return validate_bench_record(v, err);
  if (schema->str == "lmc-trace/1") {
    TraceEvent ev;
    if (!parse_jsonl_line(line, ev)) return fail("malformed lmc-trace/1 event");
    return true;
  }
  if (schema->str == "lmc-metrics/1") {
    MetricsRecord rec;
    if (!parse_jsonl_line(line, rec)) return fail("malformed lmc-metrics/1 record");
    return true;
  }
  if (schema->str == "lmc-prof/1") return validate_prof_value(v, err);
  return fail("unknown schema \"" + schema->str + "\"");
}

}  // namespace lmc::obs
