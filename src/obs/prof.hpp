// Deep performance profiling (observability layer, DESIGN.md §15).
//
// A ProfileSink attributes checker cost at (phase, node, rule/event-kind)
// granularity: a typed counter registry (bytes hashed/serialized, states
// canonicalized, ExecCache hits/misses per shard, POR prunes, orbit
// collapses, ...), per handler rule a run/byte ledger plus a log-bucketed
// wall-time histogram, and per-phase wall seconds. Like the TraceSink it
// has two append paths:
//  * count()/rule()/... — the checker's deterministic merge/apply path
//    accumulates straight into the master slab;
//  * count_worker()/time_worker() — pool workers accumulate into per-lane
//    slabs (one per thread, owner-only writes, no locks on the hot path);
//    drain_workers() folds the slabs into the master at the same
//    deterministic points where the checker merges worker results.
// Because every identity quantity (counts and byte totals) is a pure
// function of the exploration and addition commutes, the merged identity
// aggregates — identity_text() — are byte-identical at 1 vs N threads.
// Wall seconds and histograms are ATTRIBUTION: they depend on the machine
// and scheduling and are excluded from identity (exactly the trace layer's
// identity/attribution split). The sink is runtime-only state — it is never
// serialized into checkpoints, so normalized checkpoint bytes are identical
// with profiling on or off (tests/test_obs.cpp pins both obligations).
//
// Cost contract: profiling is compiled in but off by default. Hot-path call
// sites are guarded by the LMC_PROF macro below — a null-pointer test is
// the whole disabled-path cost, and no allocation happens when off.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // Phase (shared axis with the trace layer)

namespace lmc::obs {

/// The typed counter registry. Every counter is an identity quantity: its
/// final value is a pure function of the exploration (bumped only on the
/// deterministic apply/merge path or summed commutatively from worker
/// lanes), so it participates in the 1-vs-N byte-identity contract.
enum class Counter : std::uint8_t {
  kBytesHashed = 0,       ///< state-blob bytes run through hash_blob
  kBytesSerialized,       ///< result-state + sent-message bytes produced
  kStatesCanonicalized,   ///< local-state canonicalizations (symmetry)
  kOrbitCollapses,        ///< combination orbits collapsed into a seen key
  kPorPrunes,             ///< deliveries pruned by partial-order reduction
  kPorDeferrals,          ///< POR prunes deferred to the phase-2 drain
  kExecCacheHits,         ///< authoritative ExecCache lookup hits
  kExecCacheMisses,       ///< authoritative ExecCache lookup misses
  kHandlerRuns,           ///< uncached handler executions applied
  kCachedReplays,         ///< cached ExecCache replays applied
  kSoundnessJobs,         ///< soundness verification jobs completed
  kCount
};
const char* to_string(Counter c);

/// ExecCache shard fan-out mirrored by the per-shard hit/miss counters.
inline constexpr std::size_t kProfShards = 16;

/// Log-bucketed wall-time histogram. Bucket 0 counts samples below 1ns;
/// bucket i >= 1 counts samples in [2^(i-1), 2^i) nanoseconds. 48 buckets
/// reach ~78 hours — far beyond any single handler execution.
struct TimeHist {
  static constexpr std::size_t kBuckets = 48;
  std::uint64_t count[kBuckets] = {};
  double total_s = 0.0;

  void add(double secs);
  void merge(const TimeHist& o);
  std::uint64_t samples() const;
};

/// Identity of one handler rule: which node ran which kind of handler.
/// Message rules key on the protocol message type, internal rules on the
/// internal event kind (the same axes the independence analysis uses).
struct RuleKey {
  std::uint32_t node = 0;
  std::uint8_t is_message = 0;
  std::uint32_t kind = 0;

  bool operator==(const RuleKey&) const = default;
  bool operator<(const RuleKey& o) const;
};

/// Cost ledger of one handler rule. runs/cached/ser_bytes/hash_bytes are
/// identity; `time` is attribution.
struct RuleProf {
  std::uint64_t runs = 0;        ///< uncached handler executions
  std::uint64_t cached = 0;      ///< cached replays applied
  std::uint64_t ser_bytes = 0;   ///< result-state + sent-payload bytes
  std::uint64_t hash_bytes = 0;  ///< result-state bytes hashed
  TimeHist time;                 ///< handler wall time (attribution)
};

class ProfileSink {
 public:
  ProfileSink();

  // ---- deterministic-thread accumulation -------------------------------
  void count(Counter c, std::uint64_t delta = 1);
  /// Per-shard ExecCache attribution for one authoritative lookup.
  void count_shard(std::size_t shard, bool hit);
  /// One applied handler execution of `key`.
  void rule(const RuleKey& key, bool cached, std::uint64_t ser_bytes,
            std::uint64_t hash_bytes, double exec_s);
  /// Accumulate wall seconds into a phase bucket (attribution).
  void phase_wall(Phase p, double secs);
  /// Record the run's cumulative elapsed seconds (set-latest, not summed:
  /// warm/online segments report a cumulative figure).
  void run_wall(double elapsed_s);
  /// Note the configured thread count (reports want it; not identity).
  void note_threads(unsigned n) { threads_ = n; }

  // ---- worker-lane accumulation ----------------------------------------
  /// Bump a counter from a pool worker: goes to the calling thread's lane
  /// slab. Owner-only writes — no lock after the lane is registered.
  void count_worker(Counter c, std::uint64_t delta = 1);
  /// Attribute wall seconds to a phase from a pool worker.
  void time_worker(Phase p, double secs);
  /// Fold all lane slabs into the master slab. Must be called from the
  /// deterministic thread while workers are idle (after the fan-out
  /// returned) — the same points where the trace sink drains.
  void drain_workers();

  // ---- inspection ------------------------------------------------------
  std::uint64_t counter(Counter c) const;
  std::uint64_t shard_hits(std::size_t shard) const;
  std::uint64_t shard_misses(std::size_t shard) const;
  const std::map<RuleKey, RuleProf>& rules() const { return rules_; }
  double phase_seconds(Phase p) const;
  double run_seconds() const { return run_wall_s_; }
  unsigned threads() const { return threads_; }
  std::size_t lanes() const;

  void clear();

  /// Canonical rendering of the identity aggregates — every counter (in
  /// enum order), every shard's hits/misses, every rule's identity fields
  /// (sorted by key). Byte-identical at any thread count; excludes all
  /// wall-clock attribution. tests/test_obs.cpp compares these bytes.
  std::string identity_text() const;

  /// Serialize as "lmc-prof/1" JSON lines (meta, counter, shard, rule and
  /// phase records — see DESIGN.md §15).
  std::string to_jsonl() const;
  void write_jsonl(const std::string& path) const;

 private:
  /// One accumulation slab: the master and each worker lane own one.
  struct Slab {
    std::uint64_t counters[static_cast<std::size_t>(Counter::kCount)] = {};
    std::uint64_t shard_hits[kProfShards] = {};
    std::uint64_t shard_misses[kProfShards] = {};
    double phase_s[7] = {};  ///< indexed by Phase
  };
  struct Lane {
    Slab slab;
  };
  Lane* this_thread_lane();

  std::uint64_t uid_;  ///< process-unique; keys the thread-local lane cache
  unsigned threads_ = 0;
  double run_wall_s_ = 0.0;
  Slab master_;
  std::map<RuleKey, RuleProf> rules_;  ///< deterministic-thread only
  mutable std::mutex lanes_mu_;  ///< guards lane registration/growth only
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// Parsed/merged form of one or more lmc-prof/1 streams (lmc_report and the
/// Chrome exporter consume this). Merging sums identity fields and phase
/// seconds; run wall and threads take the maximum seen.
struct ProfileData {
  unsigned threads = 0;
  double run_wall_s = 0.0;
  std::uint64_t counters[static_cast<std::size_t>(Counter::kCount)] = {};
  std::uint64_t shard_hits[kProfShards] = {};
  std::uint64_t shard_misses[kProfShards] = {};
  double phase_s[7] = {};

  struct Rule {
    RuleKey key;
    std::uint64_t runs = 0, cached = 0, ser_bytes = 0, hash_bytes = 0;
    double exec_s = 0.0;
    std::uint64_t samples = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> hist;  ///< (bucket, count)
  };
  std::map<RuleKey, Rule> rules;

  std::size_t lines = 0;  ///< lmc-prof/1 lines merged in
};

/// Merge one JSONL line into `data`. Returns false for anything that is not
/// an lmc-prof/1 line (mixed files are tolerated, like the trace parser).
bool merge_prof_line(const std::string& line, ProfileData& data);

/// Structural validation of one parsed lmc-prof/1 object (lmc_report
/// --validate). `err` gets a human-readable reason on failure.
bool validate_prof_value(const struct JsonValue& v, std::string* err);

}  // namespace lmc::obs

/// Hot-path guard: evaluates `call` (a member call on the sink) only when a
/// sink is attached. `sink` must be a ProfileSink*.
#define LMC_PROF(sink, call)             \
  do {                                   \
    if ((sink) != nullptr) (sink)->call; \
  } while (0)
