// Chrome trace_event export (observability layer, DESIGN.md §15).
//
// Renders one checker run's observability streams — trace events
// (lmc-trace/1), heartbeat metrics (lmc-metrics/1) and optionally a profile
// (lmc-prof/1) — as a Chrome trace_event JSON document loadable in
// Perfetto / chrome://tracing:
//  * lanes become threads (tid 0 = the deterministic applier, tid N = pool
//    worker lane N), named via "M" metadata events;
//  * events with a duration become "X" complete events (ts = start in µs),
//    nesting under their round's span; zero-duration events become "i"
//    instants;
//  * rounds become "X" spans on the applier thread named "round N";
//  * metrics heartbeats become "C" counter events (progress + rate tracks);
//  * profile counters, when given, are emitted as one final "C" sample per
//    counter group.
// The exporter is pure (streams in, JSON text out); lmc_trace wraps it as
// `lmc_trace export --chrome`.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace lmc::obs {

/// Convert observability streams to a Chrome trace_event JSON document
/// ({"traceEvents":[...]} object format). `prof` may be null.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<MetricsRecord>& metrics,
                              const ProfileData* prof);

/// Structural validation of an exported document: parses as JSON, has a
/// "traceEvents" array, and every entry carries the required "ph", "ts"
/// (except metadata events) and "pid" keys. `err` explains a failure.
bool validate_chrome_trace(const std::string& json_text, std::string* err);

}  // namespace lmc::obs
