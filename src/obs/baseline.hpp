// Baseline diffing for "lmc-bench/1" records (lmc_report --baseline).
//
// A bench record's identity is bench|case|sorted(params): parameters are
// part of the key, so a 8-thread run never diffs against a 1-thread
// baseline. Metrics are compared per key; wall-clock metrics (name ending
// in "_s") can gate CI via a relative regression threshold, counter
// metrics are reported but never gate — counts are asserted exactly by
// tests, while time is the thing that silently rots.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace lmc::obs {

/// Parse every "lmc-bench/1" line into key -> metrics (non-bench lines and
/// unparsable lines are skipped; a later record with the same key replaces
/// an earlier one, so "last run wins" within a file list).
std::map<std::string, std::map<std::string, double>> parse_bench_records(
    const std::vector<std::string>& lines);

struct BaselineComparison {
  struct Row {
    std::string key;
    std::string metric;
    double base = 0.0;
    double current = 0.0;
    bool time_metric = false;  ///< metric name ends in "_s"
  };
  std::vector<Row> rows;                    ///< metrics present on both sides
  std::vector<std::string> missing_cases;   ///< baseline keys with NO current record at all
  std::vector<std::string> only_baseline;   ///< "key metric" present only in the baseline
  std::vector<std::string> only_current;    ///< "key metric" new in the current run
};

BaselineComparison compare_benches(
    const std::map<std::string, std::map<std::string, double>>& baseline,
    const std::map<std::string, std::map<std::string, double>>& current);

/// Print the per-metric diff table. Baseline cases that produced no current
/// record at all are printed as "missing" lines and counted in the summary
/// — informationally; a skipped bench must be visible but must not fail the
/// gate. With fail_over_pct >= 0, a time metric whose current value exceeds
/// base * (1 + pct/100) counts as a regression; returns the number of
/// regressions (0 when fail_over_pct < 0).
std::size_t print_baseline_report(const BaselineComparison& cmp, double fail_over_pct,
                                  std::FILE* out);

}  // namespace lmc::obs
