// Trace/metrics analysis behind the lmc_report CLI (DESIGN.md §10).
//
// A report ingests "lmc-trace/1" (and optionally "lmc-metrics/1") JSONL and
// rebuilds the checker's aggregate counters from first principles: phase
// wall seconds are sums of the per-event durations IN FILE ORDER — the same
// order the checker accumulated them into LocalMcStats — so for a trace
// covering a full fresh run the reproduced elapsed_s / soundness_wall_s /
// deferred_s / transition totals agree with the stats struct counter-exactly
// (bit-for-bit for the doubles; tests/test_obs.cpp pins this). Traces of
// resumed runs only cover their own segment; kRunBegin carries the base
// transition count so the report can still show run-relative totals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace lmc::obs {

/// Aggregates rebuilt from one trace stream.
struct ReportSummary {
  std::uint64_t events = 0;

  // Counters (reproduce LocalMcStats counter-exactly for full-run traces).
  std::uint64_t transitions = 0;        ///< kHandlerApply events applied (outcome != skip)
  std::uint64_t state_inserts = 0;      ///< kStateInsert events
  std::uint64_t iplus_appends = 0;      ///< kIplusAppend events
  std::uint64_t combinations = 0;       ///< sum of kComboSweep b
  std::uint64_t prelim_violations = 0;  ///< sum of kComboSweep c
  std::uint64_t soundness_jobs = 0;     ///< kSoundnessVerdict events
  std::uint64_t verdicts[5] = {0, 0, 0, 0, 0};  ///< by kVerdict* kind
  std::uint64_t schedules = 0;          ///< sum of kSoundnessVerdict b
  std::uint64_t deferrals = 0;          ///< verdicts[kVerdictDefer]
  std::uint64_t checkpoints = 0;        ///< kCheckpointSave events with a=ok
  std::uint64_t exec_cached = 0;        ///< kHandlerRun events with c=1
  std::uint64_t exec_uncached = 0;      ///< kHandlerRun events with c=0
  std::uint64_t worker_errors = 0;      ///< kWorkerError events
  std::uint64_t worker_exceptions_dropped = 0;  ///< sum of kWorkerError a
  bool por_active = false;              ///< any kPorResolve seen
  std::uint64_t por_relation_pairs = 0; ///< from the last kPorResolve `a`
  std::uint64_t por_unclassifiable = 0; ///< from the last kPorResolve `c`
  std::uint64_t por_pruned = 0;         ///< from the last kPorPrune `b` (cumulative)
  std::uint64_t por_conservative = 0;   ///< from the last kPorPrune `c` (cumulative)
  std::uint64_t por_prune_rounds = 0;   ///< kPorPrune events (rounds that pruned)
  std::uint32_t rounds = 0;             ///< max round seen
  std::uint64_t run_begins = 0, run_ends = 0;
  std::uint64_t base_transitions = 0;   ///< from the first kRunBegin (resume/warm)
  std::uint64_t final_transitions = 0;  ///< from the last kRunEnd `a`
  std::uint64_t confirmed = 0;          ///< from the last kRunEnd `b`
  bool completed = false;               ///< from the last kRunEnd `c`

  // Durations, summed in file order (= stats accumulation order).
  double elapsed_s = 0.0;         ///< last kRunEnd dur (cumulative)
  double sweep_s = 0.0;           ///< Σ kComboSweep dur  (== stats system_state_s)
  double soundness_wall_s = 0.0;  ///< Σ kSoundnessPhase dur
  double soundness_agg_s = 0.0;   ///< Σ kSoundnessVerdict dur (== stats soundness_s)
  double deferred_s = 0.0;        ///< Σ kDeferralDrain dur
  double checkpoint_s = 0.0;      ///< Σ kCheckpointSave dur
  double handler_exec_s = 0.0;    ///< Σ kHandlerRun dur (aggregate across workers)

  struct RuleLine {
    std::uint64_t runs = 0;
    std::uint64_t cached = 0;
    double exec_s = 0.0;
  };
  /// Per-rule: key = (node, is_message). Timeout rules are (node, 0).
  std::map<std::pair<std::uint32_t, std::uint64_t>, RuleLine> rules;

  struct LaneLine {
    std::uint64_t events = 0;
    double busy_s = 0.0;  ///< Σ dur of worker events on this lane
  };
  std::map<std::uint16_t, LaneLine> lanes;  ///< lane 0 = deterministic thread
};

/// Parse every "lmc-trace/1" line in `path` (other lines are skipped, so a
/// mixed obs file works). Throws on unreadable files.
std::vector<TraceEvent> load_trace_file(const std::string& path);

/// Rebuild aggregates from a trace stream (events in file order).
ReportSummary summarize(const std::vector<TraceEvent>& events);

/// Human-readable where-did-time-go breakdown.
void print_report(const ReportSummary& s, std::FILE* out);

/// The report's own "lmc-bench/1" record (bench="lmc_report", case=label).
std::string report_bench_json(const ReportSummary& s, const std::string& case_label);

/// Render a merged "lmc-prof/1" profile (lmc_report --profile): phase walls
/// with the explore share derived as run_wall - sweep - drain (the same
/// formula the metrics heartbeat uses), the typed counter registry, the
/// per-shard ExecCache table, and the top_k hottest rules by handler wall
/// seconds with per-transition serialize/hash byte costs.
void print_profile_report(const ProfileData& prof, std::size_t top_k, std::FILE* out);

/// Render the state-space-reduction gauges (symmetry orbits, POR prunes)
/// from a heartbeat stream. The fields are cumulative, so only the last
/// record is printed; no-op when `records` is empty or both reductions were
/// off for the whole run.
void print_metrics_reductions(const std::vector<MetricsRecord>& records, std::FILE* out);

}  // namespace lmc::obs
