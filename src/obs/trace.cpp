#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "obs/json.hpp"

namespace lmc::obs {

namespace {

double steady_now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::uint64_t next_sink_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kRunBegin: return "run_begin";
    case EventType::kRunEnd: return "run_end";
    case EventType::kRoundBegin: return "round_begin";
    case EventType::kRoundEnd: return "round_end";
    case EventType::kHandlerRun: return "handler_run";
    case EventType::kHandlerApply: return "handler_apply";
    case EventType::kStateInsert: return "state_insert";
    case EventType::kIplusAppend: return "iplus_append";
    case EventType::kComboSweep: return "combo_sweep";
    case EventType::kSoundnessRun: return "soundness_run";
    case EventType::kSoundnessVerdict: return "soundness_verdict";
    case EventType::kSoundnessPhase: return "soundness_phase";
    case EventType::kDeferralDrain: return "deferral_drain";
    case EventType::kCheckpointSave: return "checkpoint_save";
    case EventType::kWarmMerge: return "warm_merge";
    case EventType::kOnlinePeriod: return "online_period";
    case EventType::kWorkerError: return "worker_error";
    case EventType::kPorPrune: return "por_prune";
    case EventType::kPorResolve: return "por_resolve";
  }
  return "unknown";
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kRun: return "run";
    case Phase::kExplore: return "explore";
    case Phase::kSweep: return "sweep";
    case Phase::kSoundness: return "soundness";
    case Phase::kDrain: return "drain";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kOnline: return "online";
  }
  return "unknown";
}

TraceSink::TraceSink() : t0_(steady_now_s()), uid_(next_sink_uid()) {}

double TraceSink::since_start() const { return steady_now_s() - t0_; }

void TraceSink::record(TraceEvent ev) {
  ev.t = since_start();
  ev.lane = 0;
  events_.push_back(ev);
}

TraceSink::Lane* TraceSink::this_thread_lane() {
  // Owner-only lane lookup. The cache is keyed by the sink's uid (not its
  // address) so a sink destroyed and another allocated at the same address
  // cannot alias, and it holds the Lane* directly so growth of lanes_ by
  // other registering threads never invalidates it (Lane objects are
  // heap-allocated and stable).
  struct Cache {
    std::uint64_t uid = 0;
    Lane* lane = nullptr;
  };
  thread_local Cache cache;
  if (cache.uid == uid_) return cache.lane;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  auto lane = std::make_unique<Lane>();
  lane->id = static_cast<std::uint16_t>(lanes_.size() + 1);
  Lane* raw = lane.get();
  lanes_.push_back(std::move(lane));
  cache = Cache{uid_, raw};
  return raw;
}

void TraceSink::record_worker(TraceEvent ev) {
  ev.t = since_start();
  Lane* lane = this_thread_lane();
  ev.lane = lane->id;
  lane->buf.push_back(ev);
}

void TraceSink::drain_workers() {
  std::vector<TraceEvent> pending;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    for (auto& lane : lanes_) {
      pending.insert(pending.end(), lane->buf.begin(), lane->buf.end());
      lane->buf.clear();
    }
  }
  // seq is the deterministic task/job enumeration index, so after this sort
  // the master stream's identity content is thread-count-invariant.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const TraceEvent& x, const TraceEvent& y) { return x.seq < y.seq; });
  events_.insert(events_.end(), pending.begin(), pending.end());
}

std::size_t TraceSink::undrained() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->buf.size();
  return n;
}

std::size_t TraceSink::lanes() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  return lanes_.size();
}

void TraceSink::clear() {
  events_.clear();
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (auto& lane : lanes_) lane->buf.clear();
}

std::string to_jsonl_line(const TraceEvent& ev) {
  std::string s = "{\"schema\":\"lmc-trace/1\",\"ev\":";
  s += json_quote(to_string(ev.type));
  s += ",\"phase\":";
  s += json_quote(to_string(ev.phase));
  s += ",\"round\":" + std::to_string(ev.round);
  if (ev.node != TraceEvent::kNoNode) s += ",\"node\":" + std::to_string(ev.node);
  s += ",\"seq\":" + std::to_string(ev.seq);
  s += ",\"a\":" + std::to_string(ev.a);
  s += ",\"b\":" + std::to_string(ev.b);
  s += ",\"c\":" + std::to_string(ev.c);
  s += ",\"lane\":" + std::to_string(ev.lane);
  s += ",\"t\":" + json_double(ev.t);
  s += ",\"dur\":" + json_double(ev.dur);
  s += "}";
  return s;
}

bool parse_jsonl_line(const std::string& line, TraceEvent& ev) {
  JsonValue v;
  if (!json_parse(line, v) || !v.is_object()) return false;
  const JsonValue* schema = v.get("schema");
  if (schema == nullptr || !schema->is_string() || schema->str != "lmc-trace/1") return false;
  const JsonValue* type = v.get("ev");
  if (type == nullptr || !type->is_string()) return false;

  ev = TraceEvent{};
  bool type_ok = false;
  for (int t = 0; t <= static_cast<int>(EventType::kPorResolve); ++t) {
    if (type->str == to_string(static_cast<EventType>(t))) {
      ev.type = static_cast<EventType>(t);
      type_ok = true;
      break;
    }
  }
  if (!type_ok) return false;
  if (const JsonValue* f = v.get("phase"); f != nullptr && f->is_string()) {
    for (int p = 0; p <= static_cast<int>(Phase::kOnline); ++p) {
      if (f->str == to_string(static_cast<Phase>(p))) {
        ev.phase = static_cast<Phase>(p);
        break;
      }
    }
  }
  auto u64 = [&](const char* key, std::uint64_t dflt) {
    const JsonValue* f = v.get(key);
    return f != nullptr && f->is_number() ? f->as_u64() : dflt;
  };
  auto dbl = [&](const char* key) {
    const JsonValue* f = v.get(key);
    return f != nullptr && f->is_number() ? f->as_double() : 0.0;
  };
  ev.round = static_cast<std::uint32_t>(u64("round", 0));
  ev.node = static_cast<std::uint32_t>(u64("node", TraceEvent::kNoNode));
  ev.seq = u64("seq", 0);
  ev.a = u64("a", 0);
  ev.b = u64("b", 0);
  ev.c = u64("c", 0);
  ev.lane = static_cast<std::uint16_t>(u64("lane", 0));
  ev.t = dbl("t");
  ev.dur = dbl("dur");
  return true;
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    out += to_jsonl_line(ev);
    out += '\n';
  }
  return out;
}

void TraceSink::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write trace file " + path);
  const std::string text = to_jsonl();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

bool EventIdentity::operator<(const EventIdentity& o) const {
  return std::tie(type, phase, round, node, seq, a, b, c) <
         std::tie(o.type, o.phase, o.round, o.node, o.seq, o.a, o.b, o.c);
}

EventIdentity identity(const TraceEvent& ev) {
  EventIdentity id;
  id.type = static_cast<std::uint8_t>(ev.type);
  id.phase = static_cast<std::uint8_t>(ev.phase);
  id.round = ev.round;
  id.node = ev.node;
  id.seq = ev.seq;
  id.a = ev.a;
  id.b = ev.b;
  id.c = ev.c;
  return id;
}

std::vector<EventIdentity> identities(const std::vector<TraceEvent>& evs) {
  std::vector<EventIdentity> out;
  out.reserve(evs.size());
  for (const TraceEvent& ev : evs) out.push_back(identity(ev));
  return out;
}

}  // namespace lmc::obs
